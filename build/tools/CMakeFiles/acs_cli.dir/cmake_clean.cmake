file(REMOVE_RECURSE
  "CMakeFiles/acs_cli.dir/acs_cli.cpp.o"
  "CMakeFiles/acs_cli.dir/acs_cli.cpp.o.d"
  "acs"
  "acs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
