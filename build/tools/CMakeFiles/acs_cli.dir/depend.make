# Empty dependencies file for acs_cli.
# This may be replaced when dependencies are built.
