# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_area[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_econ[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_graphics[1]_include.cmake")
include("/root/repo/build/tests/test_historical[1]_include.cmake")
include("/root/repo/build/tests/test_package[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_tile_sim[1]_include.cmake")
include("/root/repo/build/tests/test_moe[1]_include.cmake")
include("/root/repo/build/tests/test_serve[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
