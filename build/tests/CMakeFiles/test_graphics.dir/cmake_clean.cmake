file(REMOVE_RECURSE
  "CMakeFiles/test_graphics.dir/test_graphics.cpp.o"
  "CMakeFiles/test_graphics.dir/test_graphics.cpp.o.d"
  "test_graphics"
  "test_graphics.pdb"
  "test_graphics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
