# Empty compiler generated dependencies file for test_tile_sim.
# This may be replaced when dependencies are built.
