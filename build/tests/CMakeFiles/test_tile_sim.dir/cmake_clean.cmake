file(REMOVE_RECURSE
  "CMakeFiles/test_tile_sim.dir/test_tile_sim.cpp.o"
  "CMakeFiles/test_tile_sim.dir/test_tile_sim.cpp.o.d"
  "test_tile_sim"
  "test_tile_sim.pdb"
  "test_tile_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
