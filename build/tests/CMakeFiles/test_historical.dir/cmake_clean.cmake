file(REMOVE_RECURSE
  "CMakeFiles/test_historical.dir/test_historical.cpp.o"
  "CMakeFiles/test_historical.dir/test_historical.cpp.o.d"
  "test_historical"
  "test_historical.pdb"
  "test_historical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_historical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
