file(REMOVE_RECURSE
  "CMakeFiles/test_econ.dir/test_econ.cpp.o"
  "CMakeFiles/test_econ.dir/test_econ.cpp.o.d"
  "test_econ"
  "test_econ.pdb"
  "test_econ[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
