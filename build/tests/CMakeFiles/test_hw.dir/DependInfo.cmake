
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/test_hw.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/test_hw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/acs_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/acs_area.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/acs_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/acs_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/acs_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/acs_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/acs_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/acs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/acs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
