# Empty compiler generated dependencies file for ext_power_cost.
# This may be replaced when dependencies are built.
