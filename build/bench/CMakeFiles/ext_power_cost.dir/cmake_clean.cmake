file(REMOVE_RECURSE
  "CMakeFiles/ext_power_cost.dir/ext_power_cost.cpp.o"
  "CMakeFiles/ext_power_cost.dir/ext_power_cost.cpp.o.d"
  "ext_power_cost"
  "ext_power_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_power_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
