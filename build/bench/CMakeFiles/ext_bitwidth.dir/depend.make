# Empty dependencies file for ext_bitwidth.
# This may be replaced when dependencies are built.
