file(REMOVE_RECURSE
  "CMakeFiles/ext_bitwidth.dir/ext_bitwidth.cpp.o"
  "CMakeFiles/ext_bitwidth.dir/ext_bitwidth.cpp.o.d"
  "ext_bitwidth"
  "ext_bitwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bitwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
