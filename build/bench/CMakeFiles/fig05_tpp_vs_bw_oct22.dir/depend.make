# Empty dependencies file for fig05_tpp_vs_bw_oct22.
# This may be replaced when dependencies are built.
