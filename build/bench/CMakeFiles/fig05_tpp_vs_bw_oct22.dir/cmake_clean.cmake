file(REMOVE_RECURSE
  "CMakeFiles/fig05_tpp_vs_bw_oct22.dir/fig05_tpp_vs_bw_oct22.cpp.o"
  "CMakeFiles/fig05_tpp_vs_bw_oct22.dir/fig05_tpp_vs_bw_oct22.cpp.o.d"
  "fig05_tpp_vs_bw_oct22"
  "fig05_tpp_vs_bw_oct22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_tpp_vs_bw_oct22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
