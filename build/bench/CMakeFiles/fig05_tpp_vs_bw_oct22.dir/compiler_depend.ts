# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_tpp_vs_bw_oct22.
