file(REMOVE_RECURSE
  "CMakeFiles/ext_rule_evolution.dir/ext_rule_evolution.cpp.o"
  "CMakeFiles/ext_rule_evolution.dir/ext_rule_evolution.cpp.o.d"
  "ext_rule_evolution"
  "ext_rule_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rule_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
