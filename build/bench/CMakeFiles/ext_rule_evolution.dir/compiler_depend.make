# Empty compiler generated dependencies file for ext_rule_evolution.
# This may be replaced when dependencies are built.
