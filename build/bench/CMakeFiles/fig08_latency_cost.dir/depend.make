# Empty dependencies file for fig08_latency_cost.
# This may be replaced when dependencies are built.
