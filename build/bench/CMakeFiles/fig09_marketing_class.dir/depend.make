# Empty dependencies file for fig09_marketing_class.
# This may be replaced when dependencies are built.
