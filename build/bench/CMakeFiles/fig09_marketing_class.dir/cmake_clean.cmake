file(REMOVE_RECURSE
  "CMakeFiles/fig09_marketing_class.dir/fig09_marketing_class.cpp.o"
  "CMakeFiles/fig09_marketing_class.dir/fig09_marketing_class.cpp.o.d"
  "fig09_marketing_class"
  "fig09_marketing_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_marketing_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
