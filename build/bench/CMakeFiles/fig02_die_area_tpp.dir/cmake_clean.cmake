file(REMOVE_RECURSE
  "CMakeFiles/fig02_die_area_tpp.dir/fig02_die_area_tpp.cpp.o"
  "CMakeFiles/fig02_die_area_tpp.dir/fig02_die_area_tpp.cpp.o.d"
  "fig02_die_area_tpp"
  "fig02_die_area_tpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_die_area_tpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
