# Empty dependencies file for fig02_die_area_tpp.
# This may be replaced when dependencies are built.
