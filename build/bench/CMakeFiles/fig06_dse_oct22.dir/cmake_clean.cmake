file(REMOVE_RECURSE
  "CMakeFiles/fig06_dse_oct22.dir/fig06_dse_oct22.cpp.o"
  "CMakeFiles/fig06_dse_oct22.dir/fig06_dse_oct22.cpp.o.d"
  "fig06_dse_oct22"
  "fig06_dse_oct22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dse_oct22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
