# Empty dependencies file for fig06_dse_oct22.
# This may be replaced when dependencies are built.
