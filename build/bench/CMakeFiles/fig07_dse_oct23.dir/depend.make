# Empty dependencies file for fig07_dse_oct23.
# This may be replaced when dependencies are built.
