file(REMOVE_RECURSE
  "CMakeFiles/fig07_dse_oct23.dir/fig07_dse_oct23.cpp.o"
  "CMakeFiles/fig07_dse_oct23.dir/fig07_dse_oct23.cpp.o.d"
  "fig07_dse_oct23"
  "fig07_dse_oct23.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_dse_oct23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
