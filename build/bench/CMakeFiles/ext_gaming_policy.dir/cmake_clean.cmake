file(REMOVE_RECURSE
  "CMakeFiles/ext_gaming_policy.dir/ext_gaming_policy.cpp.o"
  "CMakeFiles/ext_gaming_policy.dir/ext_gaming_policy.cpp.o.d"
  "ext_gaming_policy"
  "ext_gaming_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gaming_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
