# Empty compiler generated dependencies file for ext_gaming_policy.
# This may be replaced when dependencies are built.
