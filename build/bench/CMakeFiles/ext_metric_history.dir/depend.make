# Empty dependencies file for ext_metric_history.
# This may be replaced when dependencies are built.
