file(REMOVE_RECURSE
  "CMakeFiles/ext_metric_history.dir/ext_metric_history.cpp.o"
  "CMakeFiles/ext_metric_history.dir/ext_metric_history.cpp.o.d"
  "ext_metric_history"
  "ext_metric_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_metric_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
