file(REMOVE_RECURSE
  "CMakeFiles/ext_batch_sweep.dir/ext_batch_sweep.cpp.o"
  "CMakeFiles/ext_batch_sweep.dir/ext_batch_sweep.cpp.o.d"
  "ext_batch_sweep"
  "ext_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
