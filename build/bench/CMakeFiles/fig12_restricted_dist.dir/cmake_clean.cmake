file(REMOVE_RECURSE
  "CMakeFiles/fig12_restricted_dist.dir/fig12_restricted_dist.cpp.o"
  "CMakeFiles/fig12_restricted_dist.dir/fig12_restricted_dist.cpp.o.d"
  "fig12_restricted_dist"
  "fig12_restricted_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_restricted_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
