# Empty dependencies file for fig12_restricted_dist.
# This may be replaced when dependencies are built.
