file(REMOVE_RECURSE
  "CMakeFiles/fig01a_classification_oct22.dir/fig01a_classification_oct22.cpp.o"
  "CMakeFiles/fig01a_classification_oct22.dir/fig01a_classification_oct22.cpp.o.d"
  "fig01a_classification_oct22"
  "fig01a_classification_oct22.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_classification_oct22.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
