# Empty dependencies file for fig01a_classification_oct22.
# This may be replaced when dependencies are built.
