file(REMOVE_RECURSE
  "CMakeFiles/ext_hbm_rule.dir/ext_hbm_rule.cpp.o"
  "CMakeFiles/ext_hbm_rule.dir/ext_hbm_rule.cpp.o.d"
  "ext_hbm_rule"
  "ext_hbm_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hbm_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
