# Empty dependencies file for ext_hbm_rule.
# This may be replaced when dependencies are built.
