# Empty compiler generated dependencies file for fig11_indicator_dist.
# This may be replaced when dependencies are built.
