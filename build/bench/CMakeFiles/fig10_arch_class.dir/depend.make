# Empty dependencies file for fig10_arch_class.
# This may be replaced when dependencies are built.
