file(REMOVE_RECURSE
  "CMakeFiles/fig10_arch_class.dir/fig10_arch_class.cpp.o"
  "CMakeFiles/fig10_arch_class.dir/fig10_arch_class.cpp.o.d"
  "fig10_arch_class"
  "fig10_arch_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_arch_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
