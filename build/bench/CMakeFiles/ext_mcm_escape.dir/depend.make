# Empty dependencies file for ext_mcm_escape.
# This may be replaced when dependencies are built.
