file(REMOVE_RECURSE
  "CMakeFiles/ext_mcm_escape.dir/ext_mcm_escape.cpp.o"
  "CMakeFiles/ext_mcm_escape.dir/ext_mcm_escape.cpp.o.d"
  "ext_mcm_escape"
  "ext_mcm_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mcm_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
