file(REMOVE_RECURSE
  "CMakeFiles/abl_gemm_sim.dir/abl_gemm_sim.cpp.o"
  "CMakeFiles/abl_gemm_sim.dir/abl_gemm_sim.cpp.o.d"
  "abl_gemm_sim"
  "abl_gemm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gemm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
