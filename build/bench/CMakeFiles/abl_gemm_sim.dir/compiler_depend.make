# Empty compiler generated dependencies file for abl_gemm_sim.
# This may be replaced when dependencies are built.
