# Empty dependencies file for abl_perf_model.
# This may be replaced when dependencies are built.
