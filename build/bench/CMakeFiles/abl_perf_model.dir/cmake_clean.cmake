file(REMOVE_RECURSE
  "CMakeFiles/abl_perf_model.dir/abl_perf_model.cpp.o"
  "CMakeFiles/abl_perf_model.dir/abl_perf_model.cpp.o.d"
  "abl_perf_model"
  "abl_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
