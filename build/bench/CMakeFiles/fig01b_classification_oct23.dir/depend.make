# Empty dependencies file for fig01b_classification_oct23.
# This may be replaced when dependencies are built.
