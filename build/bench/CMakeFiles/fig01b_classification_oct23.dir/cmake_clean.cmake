file(REMOVE_RECURSE
  "CMakeFiles/fig01b_classification_oct23.dir/fig01b_classification_oct23.cpp.o"
  "CMakeFiles/fig01b_classification_oct23.dir/fig01b_classification_oct23.cpp.o.d"
  "fig01b_classification_oct23"
  "fig01b_classification_oct23.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_classification_oct23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
