file(REMOVE_RECURSE
  "CMakeFiles/ext_serving_tax.dir/ext_serving_tax.cpp.o"
  "CMakeFiles/ext_serving_tax.dir/ext_serving_tax.cpp.o.d"
  "ext_serving_tax"
  "ext_serving_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_serving_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
