# Empty dependencies file for ext_serving_tax.
# This may be replaced when dependencies are built.
