file(REMOVE_RECURSE
  "CMakeFiles/tab04_pd_cost.dir/tab04_pd_cost.cpp.o"
  "CMakeFiles/tab04_pd_cost.dir/tab04_pd_cost.cpp.o.d"
  "tab04_pd_cost"
  "tab04_pd_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_pd_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
