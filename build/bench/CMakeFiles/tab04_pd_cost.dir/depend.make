# Empty dependencies file for tab04_pd_cost.
# This may be replaced when dependencies are built.
