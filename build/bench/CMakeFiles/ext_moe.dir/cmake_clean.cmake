file(REMOVE_RECURSE
  "CMakeFiles/ext_moe.dir/ext_moe.cpp.o"
  "CMakeFiles/ext_moe.dir/ext_moe.cpp.o.d"
  "ext_moe"
  "ext_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
