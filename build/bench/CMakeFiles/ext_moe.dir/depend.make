# Empty dependencies file for ext_moe.
# This may be replaced when dependencies are built.
