# Empty compiler generated dependencies file for tab01_rule_definitions.
# This may be replaced when dependencies are built.
