file(REMOVE_RECURSE
  "CMakeFiles/tab01_rule_definitions.dir/tab01_rule_definitions.cpp.o"
  "CMakeFiles/tab01_rule_definitions.dir/tab01_rule_definitions.cpp.o.d"
  "tab01_rule_definitions"
  "tab01_rule_definitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_rule_definitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
