# Empty dependencies file for ext_deadweight_loss.
# This may be replaced when dependencies are built.
