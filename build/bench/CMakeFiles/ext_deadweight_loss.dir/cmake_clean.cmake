file(REMOVE_RECURSE
  "CMakeFiles/ext_deadweight_loss.dir/ext_deadweight_loss.cpp.o"
  "CMakeFiles/ext_deadweight_loss.dir/ext_deadweight_loss.cpp.o.d"
  "ext_deadweight_loss"
  "ext_deadweight_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_deadweight_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
