file(REMOVE_RECURSE
  "libacs_devices.a"
)
