# Empty dependencies file for acs_devices.
# This may be replaced when dependencies are built.
