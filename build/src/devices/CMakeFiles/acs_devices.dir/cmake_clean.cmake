file(REMOVE_RECURSE
  "CMakeFiles/acs_devices.dir/database.cc.o"
  "CMakeFiles/acs_devices.dir/database.cc.o.d"
  "libacs_devices.a"
  "libacs_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
