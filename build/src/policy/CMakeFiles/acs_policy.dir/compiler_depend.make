# Empty compiler generated dependencies file for acs_policy.
# This may be replaced when dependencies are built.
