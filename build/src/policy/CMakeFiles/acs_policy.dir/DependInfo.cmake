
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/acr_rules.cc" "src/policy/CMakeFiles/acs_policy.dir/acr_rules.cc.o" "gcc" "src/policy/CMakeFiles/acs_policy.dir/acr_rules.cc.o.d"
  "/root/repo/src/policy/arch_policy.cc" "src/policy/CMakeFiles/acs_policy.dir/arch_policy.cc.o" "gcc" "src/policy/CMakeFiles/acs_policy.dir/arch_policy.cc.o.d"
  "/root/repo/src/policy/historical.cc" "src/policy/CMakeFiles/acs_policy.dir/historical.cc.o" "gcc" "src/policy/CMakeFiles/acs_policy.dir/historical.cc.o.d"
  "/root/repo/src/policy/marketing.cc" "src/policy/CMakeFiles/acs_policy.dir/marketing.cc.o" "gcc" "src/policy/CMakeFiles/acs_policy.dir/marketing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/acs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
