file(REMOVE_RECURSE
  "libacs_policy.a"
)
