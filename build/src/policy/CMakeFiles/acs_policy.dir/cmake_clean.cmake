file(REMOVE_RECURSE
  "CMakeFiles/acs_policy.dir/acr_rules.cc.o"
  "CMakeFiles/acs_policy.dir/acr_rules.cc.o.d"
  "CMakeFiles/acs_policy.dir/arch_policy.cc.o"
  "CMakeFiles/acs_policy.dir/arch_policy.cc.o.d"
  "CMakeFiles/acs_policy.dir/historical.cc.o"
  "CMakeFiles/acs_policy.dir/historical.cc.o.d"
  "CMakeFiles/acs_policy.dir/marketing.cc.o"
  "CMakeFiles/acs_policy.dir/marketing.cc.o.d"
  "libacs_policy.a"
  "libacs_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
