# Empty dependencies file for acs_serve.
# This may be replaced when dependencies are built.
