file(REMOVE_RECURSE
  "CMakeFiles/acs_serve.dir/capacity.cc.o"
  "CMakeFiles/acs_serve.dir/capacity.cc.o.d"
  "libacs_serve.a"
  "libacs_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
