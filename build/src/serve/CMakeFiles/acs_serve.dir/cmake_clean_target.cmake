file(REMOVE_RECURSE
  "libacs_serve.a"
)
