file(REMOVE_RECURSE
  "libacs_dse.a"
)
