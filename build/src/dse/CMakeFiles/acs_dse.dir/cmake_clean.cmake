file(REMOVE_RECURSE
  "CMakeFiles/acs_dse.dir/analysis.cc.o"
  "CMakeFiles/acs_dse.dir/analysis.cc.o.d"
  "CMakeFiles/acs_dse.dir/evaluate.cc.o"
  "CMakeFiles/acs_dse.dir/evaluate.cc.o.d"
  "CMakeFiles/acs_dse.dir/sweep.cc.o"
  "CMakeFiles/acs_dse.dir/sweep.cc.o.d"
  "libacs_dse.a"
  "libacs_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
