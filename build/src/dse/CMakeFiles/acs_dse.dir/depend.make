# Empty dependencies file for acs_dse.
# This may be replaced when dependencies are built.
