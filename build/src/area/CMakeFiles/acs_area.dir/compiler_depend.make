# Empty compiler generated dependencies file for acs_area.
# This may be replaced when dependencies are built.
