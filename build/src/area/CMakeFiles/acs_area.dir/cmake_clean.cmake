file(REMOVE_RECURSE
  "CMakeFiles/acs_area.dir/area_model.cc.o"
  "CMakeFiles/acs_area.dir/area_model.cc.o.d"
  "CMakeFiles/acs_area.dir/cost_model.cc.o"
  "CMakeFiles/acs_area.dir/cost_model.cc.o.d"
  "CMakeFiles/acs_area.dir/package_model.cc.o"
  "CMakeFiles/acs_area.dir/package_model.cc.o.d"
  "CMakeFiles/acs_area.dir/power_model.cc.o"
  "CMakeFiles/acs_area.dir/power_model.cc.o.d"
  "libacs_area.a"
  "libacs_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
