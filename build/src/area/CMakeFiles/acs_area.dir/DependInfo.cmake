
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/area/area_model.cc" "src/area/CMakeFiles/acs_area.dir/area_model.cc.o" "gcc" "src/area/CMakeFiles/acs_area.dir/area_model.cc.o.d"
  "/root/repo/src/area/cost_model.cc" "src/area/CMakeFiles/acs_area.dir/cost_model.cc.o" "gcc" "src/area/CMakeFiles/acs_area.dir/cost_model.cc.o.d"
  "/root/repo/src/area/package_model.cc" "src/area/CMakeFiles/acs_area.dir/package_model.cc.o" "gcc" "src/area/CMakeFiles/acs_area.dir/package_model.cc.o.d"
  "/root/repo/src/area/power_model.cc" "src/area/CMakeFiles/acs_area.dir/power_model.cc.o" "gcc" "src/area/CMakeFiles/acs_area.dir/power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/acs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
