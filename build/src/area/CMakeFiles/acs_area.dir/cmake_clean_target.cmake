file(REMOVE_RECURSE
  "libacs_area.a"
)
