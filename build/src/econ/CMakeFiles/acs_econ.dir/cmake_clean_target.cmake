file(REMOVE_RECURSE
  "libacs_econ.a"
)
