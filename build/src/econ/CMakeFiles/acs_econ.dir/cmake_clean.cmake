file(REMOVE_RECURSE
  "CMakeFiles/acs_econ.dir/market.cc.o"
  "CMakeFiles/acs_econ.dir/market.cc.o.d"
  "libacs_econ.a"
  "libacs_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
