# Empty compiler generated dependencies file for acs_econ.
# This may be replaced when dependencies are built.
