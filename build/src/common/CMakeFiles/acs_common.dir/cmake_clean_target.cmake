file(REMOVE_RECURSE
  "libacs_common.a"
)
