# Empty compiler generated dependencies file for acs_common.
# This may be replaced when dependencies are built.
