file(REMOVE_RECURSE
  "libacs_model.a"
)
