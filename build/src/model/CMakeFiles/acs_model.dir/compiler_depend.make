# Empty compiler generated dependencies file for acs_model.
# This may be replaced when dependencies are built.
