file(REMOVE_RECURSE
  "CMakeFiles/acs_model.dir/graphics.cc.o"
  "CMakeFiles/acs_model.dir/graphics.cc.o.d"
  "CMakeFiles/acs_model.dir/ops.cc.o"
  "CMakeFiles/acs_model.dir/ops.cc.o.d"
  "CMakeFiles/acs_model.dir/transformer.cc.o"
  "CMakeFiles/acs_model.dir/transformer.cc.o.d"
  "libacs_model.a"
  "libacs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
