file(REMOVE_RECURSE
  "CMakeFiles/acs_core.dir/study.cc.o"
  "CMakeFiles/acs_core.dir/study.cc.o.d"
  "libacs_core.a"
  "libacs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
