
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/comm_model.cc" "src/perf/CMakeFiles/acs_perf.dir/comm_model.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/comm_model.cc.o.d"
  "/root/repo/src/perf/graphics_model.cc" "src/perf/CMakeFiles/acs_perf.dir/graphics_model.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/graphics_model.cc.o.d"
  "/root/repo/src/perf/matmul_model.cc" "src/perf/CMakeFiles/acs_perf.dir/matmul_model.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/matmul_model.cc.o.d"
  "/root/repo/src/perf/roofline.cc" "src/perf/CMakeFiles/acs_perf.dir/roofline.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/roofline.cc.o.d"
  "/root/repo/src/perf/simulator.cc" "src/perf/CMakeFiles/acs_perf.dir/simulator.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/simulator.cc.o.d"
  "/root/repo/src/perf/tile_sim.cc" "src/perf/CMakeFiles/acs_perf.dir/tile_sim.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/tile_sim.cc.o.d"
  "/root/repo/src/perf/vector_model.cc" "src/perf/CMakeFiles/acs_perf.dir/vector_model.cc.o" "gcc" "src/perf/CMakeFiles/acs_perf.dir/vector_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/acs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/acs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
