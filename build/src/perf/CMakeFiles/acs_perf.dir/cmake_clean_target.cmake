file(REMOVE_RECURSE
  "libacs_perf.a"
)
