# Empty dependencies file for acs_perf.
# This may be replaced when dependencies are built.
