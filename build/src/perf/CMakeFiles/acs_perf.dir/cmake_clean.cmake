file(REMOVE_RECURSE
  "CMakeFiles/acs_perf.dir/comm_model.cc.o"
  "CMakeFiles/acs_perf.dir/comm_model.cc.o.d"
  "CMakeFiles/acs_perf.dir/graphics_model.cc.o"
  "CMakeFiles/acs_perf.dir/graphics_model.cc.o.d"
  "CMakeFiles/acs_perf.dir/matmul_model.cc.o"
  "CMakeFiles/acs_perf.dir/matmul_model.cc.o.d"
  "CMakeFiles/acs_perf.dir/roofline.cc.o"
  "CMakeFiles/acs_perf.dir/roofline.cc.o.d"
  "CMakeFiles/acs_perf.dir/simulator.cc.o"
  "CMakeFiles/acs_perf.dir/simulator.cc.o.d"
  "CMakeFiles/acs_perf.dir/tile_sim.cc.o"
  "CMakeFiles/acs_perf.dir/tile_sim.cc.o.d"
  "CMakeFiles/acs_perf.dir/vector_model.cc.o"
  "CMakeFiles/acs_perf.dir/vector_model.cc.o.d"
  "libacs_perf.a"
  "libacs_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
