file(REMOVE_RECURSE
  "CMakeFiles/acs_hw.dir/config.cc.o"
  "CMakeFiles/acs_hw.dir/config.cc.o.d"
  "CMakeFiles/acs_hw.dir/presets.cc.o"
  "CMakeFiles/acs_hw.dir/presets.cc.o.d"
  "CMakeFiles/acs_hw.dir/serialize.cc.o"
  "CMakeFiles/acs_hw.dir/serialize.cc.o.d"
  "libacs_hw.a"
  "libacs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
