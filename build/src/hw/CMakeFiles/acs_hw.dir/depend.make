# Empty dependencies file for acs_hw.
# This may be replaced when dependencies are built.
