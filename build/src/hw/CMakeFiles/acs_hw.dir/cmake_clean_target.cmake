file(REMOVE_RECURSE
  "libacs_hw.a"
)
