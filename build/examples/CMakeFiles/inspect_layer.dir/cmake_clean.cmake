file(REMOVE_RECURSE
  "CMakeFiles/inspect_layer.dir/inspect_layer.cpp.o"
  "CMakeFiles/inspect_layer.dir/inspect_layer.cpp.o.d"
  "inspect_layer"
  "inspect_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
