# Empty dependencies file for inspect_layer.
# This may be replaced when dependencies are built.
