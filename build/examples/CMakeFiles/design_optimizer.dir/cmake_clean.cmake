file(REMOVE_RECURSE
  "CMakeFiles/design_optimizer.dir/design_optimizer.cpp.o"
  "CMakeFiles/design_optimizer.dir/design_optimizer.cpp.o.d"
  "design_optimizer"
  "design_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
