file(REMOVE_RECURSE
  "CMakeFiles/policy_designer.dir/policy_designer.cpp.o"
  "CMakeFiles/policy_designer.dir/policy_designer.cpp.o.d"
  "policy_designer"
  "policy_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
