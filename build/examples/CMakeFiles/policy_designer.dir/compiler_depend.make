# Empty compiler generated dependencies file for policy_designer.
# This may be replaced when dependencies are built.
