# Empty dependencies file for compliance_checker.
# This may be replaced when dependencies are built.
