file(REMOVE_RECURSE
  "CMakeFiles/compliance_checker.dir/compliance_checker.cpp.o"
  "CMakeFiles/compliance_checker.dir/compliance_checker.cpp.o.d"
  "compliance_checker"
  "compliance_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compliance_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
