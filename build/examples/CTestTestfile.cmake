# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compliance "/root/repo/build/examples/compliance_checker" "2399" "400" "600")
set_tests_properties(example_compliance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optimizer "/root/repo/build/examples/design_optimizer" "llama" "2400")
set_tests_properties(example_optimizer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy "/root/repo/build/examples/policy_designer")
set_tests_properties(example_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect "/root/repo/build/examples/inspect_layer" "gpt3" "decode")
set_tests_properties(example_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tour "/root/repo/build/examples/paper_tour")
set_tests_properties(example_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
