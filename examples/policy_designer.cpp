/**
 * @file
 * Policy designer: the architecture-first workflow of Sec. 5.4.
 *
 * Builds the paper's gaming-focused policy (systolic dims <= 8,
 * memory bandwidth <= 1.6 TB/s), constructs the best policy-compliant
 * gaming device, and contrasts its gaming frame rate (barely affected)
 * with its LLM decode performance (architecturally crippled) against
 * an A100-class device.
 */

#include <iostream>

#include "core/acs.hh"

using namespace acs;

namespace {

hw::HardwareConfig
gamingCompliantDevice()
{
    // Same SIMT (core/vector) resources as the A100, redesigned to
    // comply: quarter-size systolic arrays, GDDR-class 1 TB/s memory.
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "policy-compliant-gaming";
    cfg.systolicDimX = 8;
    cfg.systolicDimY = 8;
    cfg.memBandwidth = 1.0 * units::TBPS;
    cfg.memCapacityBytes = 24.0 * units::GB;
    cfg.devicePhyCount = 0; // PCIe-only gaming part
    cfg.perPhyBandwidth = 0.0;
    return cfg;
}

} // anonymous namespace

int
main()
{
    try {
        const policy::ArchPolicy policy =
            policy::ArchPolicy::gamingFocused();
        std::cout << "Policy '" << policy.name() << "' ceilings:\n";
        for (const policy::ArchLimit &limit : policy.limits()) {
            std::cout << "  " << toString(limit.param)
                      << " <= " << limit.maxValue << "\n";
        }

        const hw::HardwareConfig ai = hw::modeledA100();
        const hw::HardwareConfig gaming = gamingCompliantDevice();

        std::cout << "\nCompliance:\n  " << ai.name << ": "
                  << (policy.compliant(ai) ? "compliant" : "VIOLATES")
                  << "\n  " << gaming.name << ": "
                  << (policy.compliant(gaming) ? "compliant"
                                               : "VIOLATES")
                  << "\n";
        for (const auto &v : policy.violations(ai))
            std::cout << "    A100 violation: " << v << "\n";

        // Gaming impact: frame rates on three workloads.
        std::cout << "\nGaming impact (FPS, higher is better):\n";
        Table fps({"workload", ai.name, gaming.name, "delta"});
        for (const auto &workload :
             {model::GraphicsWorkload::esports1080p(),
              model::GraphicsWorkload::aaa1440p(),
              model::GraphicsWorkload::rayTraced4k()}) {
            const double f_ai =
                perf::GraphicsModel(ai).frameTime(workload).fps();
            const double f_gaming =
                perf::GraphicsModel(gaming).frameTime(workload).fps();
            fps.addRow({workload.name, fmt(f_ai, 0), fmt(f_gaming, 0),
                        fmtPercent(f_gaming / f_ai - 1.0)});
        }
        fps.print(std::cout);

        // AI impact: Llama 3 decode on a single device (gaming parts
        // have no multi-device interconnect).
        const model::InferenceSetting setting;
        const perf::SystemConfig solo{1};
        const auto r_ai = perf::InferenceSimulator(ai).run(
            model::llama3_8b(), setting, solo);
        const auto r_gaming = perf::InferenceSimulator(gaming).run(
            model::llama3_8b(), setting, solo);

        std::cout << "\nAI impact (Llama 3 8B, single device):\n";
        Table t({"metric", ai.name, gaming.name, "delta"});
        t.addRow({"TBT / layer (ms)", fmt(units::toMs(r_ai.tbtS), 4),
                  fmt(units::toMs(r_gaming.tbtS), 4),
                  fmtPercent(r_gaming.tbtS / r_ai.tbtS - 1.0)});
        t.addRow({"decode tokens/s",
                  fmt(r_ai.decodeThroughputTokensPerS(), 0),
                  fmt(r_gaming.decodeThroughputTokensPerS(), 0),
                  fmtPercent(r_gaming.decodeThroughputTokensPerS() /
                                 r_ai.decodeThroughputTokensPerS() -
                             1.0)});
        t.addRow({"end-to-end latency (s)",
                  fmt(r_ai.endToEndLatencyS(), 1),
                  fmt(r_gaming.endToEndLatencyS(), 1),
                  fmtPercent(r_gaming.endToEndLatencyS() /
                                 r_ai.endToEndLatencyS() -
                             1.0)});
        t.print(std::cout);

        std::cout << "\nTakeaway (Sec. 5.4): the policy-compliant "
                     "design keeps gaming performance while LLM "
                     "decode degrades sharply — an architecturally "
                     "self-enforcing export rule.\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
