/**
 * @file
 * Layer inspector: load a device description (key=value file or the
 * built-in A100), time one transformer layer operator by operator, and
 * place every operator on the roofline — the analysis view behind the
 * paper's "prefill is compute bound, decode is bandwidth bound"
 * argument.
 *
 * Usage: inspect_layer [config.kv] [gpt3|llama] [prefill|decode]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/acs.hh"

using namespace acs;

int
main(int argc, char **argv)
{
    try {
        hw::HardwareConfig cfg = hw::modeledA100();
        int arg = 1;
        if (argc > arg && std::string(argv[arg]).find('=') ==
                              std::string::npos &&
            std::string(argv[arg]).size() > 3 &&
            std::string(argv[arg]).substr(
                std::string(argv[arg]).size() - 3) == ".kv") {
            std::ifstream in(argv[arg]);
            if (!in)
                fatal(std::string("cannot open ") + argv[arg]);
            std::stringstream buf;
            buf << in.rdbuf();
            cfg = hw::configFromKeyVal(KeyVal::parse(buf.str()));
            ++arg;
        }
        const std::string which = argc > arg ? argv[arg] : "gpt3";
        ++arg;
        const std::string phase = argc > arg ? argv[arg] : "prefill";

        const core::Workload workload = core::workloadByName(which);
        const int tp = workload.system.tensorParallel;
        const model::LayerGraph graph =
            phase == "decode"
                ? model::buildDecodeGraph(workload.model,
                                          workload.setting, tp)
                : model::buildPrefillGraph(workload.model,
                                           workload.setting, tp);

        std::cout << "Device: " << cfg.name << " (TPP "
                  << fmt(cfg.tpp(), 0) << ", "
                  << fmt(cfg.memBandwidth / units::TBPS, 1)
                  << " TB/s HBM)\nLayer: " << graph.name << "\n\n";

        const perf::InferenceSimulator sim(cfg);
        const perf::LayerResult result = sim.simulateLayer(graph, tp);

        Table t({"op", "kind", "latency (us)", "share", "bound",
                 "tensor util"});
        for (const auto &op : result.ops) {
            t.addRow({op.name, toString(op.kind),
                      fmt(op.latencyS * 1e6, 1),
                      fmtPercent(op.latencyS / result.latencyS),
                      toString(op.bound),
                      op.kind == model::OpKind::MATMUL
                          ? fmtPercent(op.utilization)
                          : "-"});
        }
        t.print(std::cout);
        std::cout << "layer latency: "
                  << fmt(units::toMs(result.latencyS), 3) << " ms, MFU "
                  << fmtPercent(result.mfu(cfg.peakTensorTops() * 1e12))
                  << "\n";

        // Roofline view.
        const auto roofline =
            perf::analyzeRoofline(cfg, graph, tp);
        std::cout << "\nRoofline (ridge at "
                  << fmt(roofline.ridgeIntensity, 1)
                  << " FLOPs/byte):\n";
        Table r({"op", "intensity (FLOPs/B)", "achieved (TFLOPs)",
                 "ceiling (TFLOPs)", "regime"});
        for (const auto &p : roofline.points) {
            r.addRow({p.name, fmt(p.intensity, 1),
                      fmt(p.achievedFlops / 1e12, 1),
                      fmt(p.rooflineFlops / 1e12, 1),
                      p.computeBound ? "compute-bound"
                                     : "bandwidth-bound"});
        }
        r.print(std::cout);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
