/**
 * @file
 * Quickstart: evaluate the modeled A100 and one custom design on the
 * paper's two workloads, print latency, area, cost, and the
 * export-control classification under each rule generation.
 */

#include <iostream>

#include "core/acs.hh"

using namespace acs;

namespace {

void
reportWorkload(const core::SanctionsStudy &study,
               const core::Workload &workload,
               const hw::HardwareConfig &design)
{
    const core::DesignReport report =
        study.evaluateDesign(design, workload);

    std::cout << "\n--- " << workload.model.name << " (TP="
              << workload.system.tensorParallel << ") on "
              << design.name << " ---\n";

    Table t({"metric", design.name, report.baseline.config.name,
             "delta"});
    t.addRow({"TTFT / layer (ms)", fmt(units::toMs(report.design.ttftS)),
              fmt(units::toMs(report.baseline.ttftS)),
              fmtPercent(report.ttftDelta())});
    t.addRow({"TBT / layer (ms)", fmt(units::toMs(report.design.tbtS), 4),
              fmt(units::toMs(report.baseline.tbtS), 4),
              fmtPercent(report.tbtDelta())});
    t.addRow({"TPP", fmt(report.design.tpp, 0),
              fmt(report.baseline.tpp, 0), ""});
    t.addRow({"die area (mm^2)", fmt(report.design.dieAreaMm2, 1),
              fmt(report.baseline.dieAreaMm2, 1), ""});
    t.addRow({"perf density", fmt(report.design.perfDensity),
              fmt(report.baseline.perfDensity), ""});
    t.addRow({"die cost ($)", fmt(report.design.dieCostUsd),
              fmt(report.baseline.dieCostUsd), ""});
    t.print(std::cout);

    std::cout << "Oct 2022 rule:           "
              << toString(report.rules.oct2022) << "\n"
              << "Oct 2023 (data center):  "
              << toString(report.rules.oct2023DataCenter) << "\n"
              << "Oct 2023 (non-DC):       "
              << toString(report.rules.oct2023NonDataCenter) << "\n";
}

} // anonymous namespace

int
main()
{
    const core::SanctionsStudy study;

    // A custom Oct-2022-compliant design: A100-class TPP, 400 GB/s
    // interconnect, but 3.2 TB/s HBM and a bigger global buffer.
    hw::HardwareConfig custom = hw::modeledA100();
    custom.name = "custom-compliant";
    custom.coreCount = hw::coresForTpp(4800.0, 16, 16, 2, custom.clockHz);
    custom.lanesPerCore = 2;
    custom.l2Bytes = 64.0 * units::MIB;
    custom.memBandwidth = 3.2 * units::TBPS;
    custom.devicePhyCount = 8; // 400 GB/s

    try {
        reportWorkload(study, core::gpt3Workload(), custom);
        reportWorkload(study, core::llamaWorkload(), custom);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
