/**
 * @file
 * Paper tour: the whole argument of "Chip Architectures Under
 * Advanced Computing Sanctions" as one condensed run — from the rule
 * definitions, through the design-space findings, to the
 * architecture-first policy proposal. A narrated smoke test of every
 * major subsystem.
 */

#include <iostream>

#include "core/acs.hh"

using namespace acs;

int
main()
{
    try {
        const core::SanctionsStudy study;
        const core::Workload gpt3 = core::gpt3Workload();
        const auto a100 = study.evaluateBaseline(gpt3);

        std::cout <<
            "=== 1. The rules (Secs. 2.1-2.2) ===\n";
        const auto db_summary =
            core::SanctionsStudy::classifyDatabase(devices::Database{});
        std::cout << "Of " << db_summary.devices
                  << " real devices (2018-2024): "
                  << db_summary.regulatedOct2022
                  << " regulated under Oct 2022, "
                  << db_summary.regulatedOct2023
                  << " under Oct 2023 — the update re-captured the "
                     "A800/H800 workarounds.\n\n";

        std::cout <<
            "=== 2. Oct 2022 leaves room (Sec. 4.2) ===\n";
        const auto oct22 = dse::filterReticle(study.runSweep(
            dse::table3Space(4800.0, {600.0 * units::GBPS}), gpt3));
        const auto &best22 = dse::minTbt(oct22);
        std::cout << "Best compliant single-die design vs A100: TTFT "
                  << fmtPercent(best22.ttftS / a100.ttftS - 1.0)
                  << ", TBT "
                  << fmtPercent(best22.tbtS / a100.tbtS - 1.0)
                  << " (memory bandwidth is unregulated: "
                  << fmt(best22.config.memBandwidth / units::TBPS, 1)
                  << " TB/s HBM).\n\n";

        std::cout <<
            "=== 3. Oct 2023 closes prefill, not decode (Sec. 4.3) "
            "===\n";
        const auto oct23 = dse::filterOct2023Unregulated(
            dse::filterReticle(study.runSweep(
                dse::table3Space(2400.0, {500.0 * units::GBPS,
                                          700.0 * units::GBPS,
                                          900.0 * units::GBPS}),
                gpt3)));
        std::cout << "Fastest compliant 2400-TPP design: TTFT "
                  << fmtPercent(dse::minTtft(oct23).ttftS / a100.ttftS -
                                1.0)
                  << " (slower), TBT "
                  << fmtPercent(dse::minTbt(oct23).tbtS / a100.tbtS -
                                1.0)
                  << " (still faster) vs the A100.\n\n";

        std::cout <<
            "=== 4. Compliance is expensive (Sec. 4.4) ===\n";
        const auto &pd_design = dse::minTtft(oct23);
        const area::CostModel cost;
        std::cout << "The PD floor forces "
                  << fmt(pd_design.dieAreaMm2, 0)
                  << " mm^2 of silicon ($"
                  << fmt(pd_design.goodDieCostUsd, 0)
                  << "/good die at 7 nm, "
                  << fmt(cost.murphyYield(pd_design.dieAreaMm2) * 100,
                         0)
                  << "% yield) for performance a ~530 mm^2 die "
                     "matches.\n\n";

        std::cout <<
            "=== 5. Architecture-first policy (Secs. 5.3-5.4) ===\n";
        const auto restricted = dse::filterReticle(
            study.runSweep(dse::table5Space(), gpt3));
        const auto dists = dse::indicatorStudy(
            restricted,
            {{"0.8 TB/s memory BW",
              dse::fixedParameter(policy::ArchParameter::MEM_BANDWIDTH,
                                  0.8 * units::TBPS)}});
        std::cout << "Fixing memory bandwidth at 0.8 TB/s: median TBT "
                  << fmtPercent(dists[1].tbt.median /
                                    units::toMs(a100.tbtS) - 1.0)
                  << " vs A100 with a "
                  << fmt(dists[1].tbtNarrowing, 0)
                  << "x narrower distribution than TPP alone — a far "
                     "better policy lever.\n";

        const auto gaming = policy::ArchPolicy::gamingFocused();
        hw::HardwareConfig gaming_gpu = hw::modeledA100();
        gaming_gpu.systolicDimX = 8;
        gaming_gpu.systolicDimY = 8;
        gaming_gpu.memBandwidth = 1.0 * units::TBPS;
        const double fps_keep =
            perf::GraphicsModel(gaming_gpu)
                .frameTime(model::GraphicsWorkload::aaa1440p()).fps() /
            perf::GraphicsModel(hw::modeledA100())
                .frameTime(model::GraphicsWorkload::aaa1440p()).fps();
        std::cout << "And the gaming-scoped policy ('"
                  << gaming.name() << "') keeps "
                  << fmtPercent(fps_keep, 0)
                  << " of AAA frame rate while decode slows >2x — "
                     "export control by architecture, not by "
                     "marketing.\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
