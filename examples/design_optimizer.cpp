/**
 * @file
 * Design optimizer: search the Table-3 design space for the best
 * manufacturable, Oct-2023-unregulated accelerator for a chosen
 * workload and TPP budget, and print the TTFT/TBT Pareto frontier.
 *
 * Usage: design_optimizer [gpt3|llama] [tpp_budget]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/acs.hh"

using namespace acs;

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "gpt3";
    const double tpp = argc > 2 ? std::atof(argv[2]) : 2400.0;

    core::Workload workload = core::gpt3Workload();

    try {
        workload = core::workloadByName(which);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    std::cout << "Optimizing a " << fmt(tpp, 0) << "-TPP design for "
              << workload.model.name << " under the Oct 2023 ACR\n";

    try {
        const core::SanctionsStudy study;
        const auto baseline = study.evaluateBaseline(workload);
        const dse::SweepSpace space = dse::table3Space(
            tpp, {500.0 * units::GBPS, 700.0 * units::GBPS,
                  900.0 * units::GBPS});
        const auto designs = study.runSweep(space, workload);
        const auto compliant = dse::filterOct2023Unregulated(
            dse::filterReticle(designs));

        std::cout << designs.size() << " candidates, "
                  << compliant.size()
                  << " manufacturable + unregulated\n";
        if (compliant.empty()) {
            std::cout << "No compliant design exists at this TPP "
                         "(e.g. every 4800-TPP design violates the "
                         "performance-density floor).\n";
            return 0;
        }

        const auto front =
            dse::paretoFront(compliant, dse::ttftMs, dse::tbtMs);
        std::cout << "\nTTFT/TBT Pareto frontier ("
                  << front.size() << " designs):\n";
        Table t({"dims", "lanes", "cores", "L1 (KiB)", "L2 (MiB)",
                 "HBM (TB/s)", "TTFT (ms)", "TBT (ms)",
                 "area (mm^2)", "die $"});
        for (const auto &d : front) {
            t.addRow({std::to_string(d.config.systolicDimX) + "x" +
                          std::to_string(d.config.systolicDimY),
                      std::to_string(d.config.lanesPerCore),
                      std::to_string(d.config.coreCount),
                      fmt(d.config.l1BytesPerCore / units::KIB, 0),
                      fmt(d.config.l2Bytes / units::MIB, 0),
                      fmt(d.config.memBandwidth / units::TBPS, 1),
                      fmt(units::toMs(d.ttftS), 1),
                      fmt(units::toMs(d.tbtS), 4),
                      fmt(d.dieAreaMm2, 0), fmt(d.dieCostUsd, 0)});
        }
        t.print(std::cout);

        const auto &best_ttft = dse::minTtft(compliant);
        const auto &best_tbt = dse::minTbt(compliant);
        std::cout << "\nvs modeled A100 (TTFT "
                  << fmt(units::toMs(baseline.ttftS), 1) << " ms, TBT "
                  << fmt(units::toMs(baseline.tbtS), 4) << " ms):\n"
                  << "  best TTFT: "
                  << fmtPercent(best_ttft.ttftS / baseline.ttftS - 1.0)
                  << "\n  best TBT:  "
                  << fmtPercent(best_tbt.tbtS / baseline.tbtS - 1.0)
                  << "\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
