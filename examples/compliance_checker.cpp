/**
 * @file
 * Compliance checker: describe a device on the command line and see
 * its classification under every rule generation, the die-area floors
 * that would deregulate it, and nearest compliant variants.
 *
 * Usage:
 *   compliance_checker [tpp] [device_bw_gbps] [die_area_mm2]
 *                      [mem_gb] [mem_bw_gbps] [dc|consumer]
 * Defaults describe an A100-class device.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/acs.hh"

using namespace acs;

namespace {

void
printClassification(const policy::DeviceSpec &spec)
{
    Table t({"rule", "classification"});
    t.addRow({"Oct 2022 ACR",
              toString(policy::Oct2022Rule::classify(spec))});
    t.addRow({"Oct 2023 ACR (as marketed)",
              toString(policy::Oct2023Rule::classify(spec))});
    t.addRow({"Oct 2023 ACR (if data center)",
              toString(policy::Oct2023Rule::classifyAs(
                  spec, policy::MarketSegment::DATA_CENTER))});
    t.addRow({"Oct 2023 ACR (if consumer)",
              toString(policy::Oct2023Rule::classifyAs(
                  spec, policy::MarketSegment::CONSUMER))});
    t.addRow({"Architectural DC classifier",
              policy::ArchDataCenterClassifier::isDataCenter(spec)
                  ? "data-center"
                  : "non-data-center"});
    t.print(std::cout);
}

void
printEscapeRoutes(const policy::DeviceSpec &spec)
{
    std::cout << "\nEscape routes (data-center track):\n";
    if (spec.tpp >= policy::Oct2023Rule::TPP_LICENSE) {
        std::cout << "  TPP >= 4800: no die area escapes a license; "
                     "reduce TPP below 4800 first.\n";
        return;
    }
    const double unreg =
        policy::Oct2023Rule::minUnregulatedDieArea(spec.tpp);
    const double nac = policy::Oct2023Rule::minNacDieArea(spec.tpp);
    if (unreg == 0.0) {
        std::cout << "  TPP < 1600: unregulated at any die area.\n";
        return;
    }
    std::cout << "  unregulated at applicable die area > "
              << fmt(unreg, 1) << " mm^2 (currently "
              << fmt(spec.dieAreaMm2, 1) << ")\n";
    std::cout << "  NAC-eligible at applicable die area > "
              << fmt(nac, 1) << " mm^2\n";
    if (unreg > area::RETICLE_LIMIT_MM2) {
        std::cout << "  note: " << fmt(unreg, 0)
                  << " mm^2 exceeds the " << area::RETICLE_LIMIT_MM2
                  << " mm^2 reticle limit -> multi-chip module "
                     "required\n";
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    policy::DeviceSpec spec;
    spec.name = "user-device";
    spec.tpp = argc > 1 ? std::atof(argv[1]) : 4992.0;
    spec.deviceBandwidthGBps = argc > 2 ? std::atof(argv[2]) : 600.0;
    spec.dieAreaMm2 = argc > 3 ? std::atof(argv[3]) : 826.0;
    spec.memCapacityGB = argc > 4 ? std::atof(argv[4]) : 80.0;
    spec.memBandwidthGBps = argc > 5 ? std::atof(argv[5]) : 2039.0;
    spec.market = (argc > 6 && std::string(argv[6]) == "consumer")
                      ? policy::MarketSegment::CONSUMER
                      : policy::MarketSegment::DATA_CENTER;

    std::cout << "Device: TPP " << fmt(spec.tpp, 0) << ", "
              << fmt(spec.deviceBandwidthGBps, 0) << " GB/s interconnect, "
              << fmt(spec.dieAreaMm2, 1) << " mm^2 (PD "
              << fmt(spec.perfDensity()) << "), "
              << fmt(spec.memCapacityGB, 0) << " GB @ "
              << fmt(spec.memBandwidthGBps, 0) << " GB/s, marketed "
              << toString(spec.market) << "\n\n";

    try {
        printClassification(spec);
        printEscapeRoutes(spec);

        // Closest catalogue devices for context.
        const devices::Database db;
        std::cout << "\nNearest catalogue devices by TPP:\n";
        Table t({"device", "TPP", "Oct 2023"});
        std::vector<devices::DeviceRecord> all = db.all();
        std::sort(all.begin(), all.end(),
                  [&](const auto &a, const auto &b) {
                      return std::abs(a.tpp - spec.tpp) <
                             std::abs(b.tpp - spec.tpp);
                  });
        for (std::size_t i = 0; i < 5 && i < all.size(); ++i) {
            t.addRow({all[i].name, fmt(all[i].tpp, 0),
                      toString(policy::Oct2023Rule::classify(
                          all[i].toSpec()))});
        }
        t.print(std::cout);
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
