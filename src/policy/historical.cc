#include "historical.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acs {
namespace policy {

namespace {

// CTP word-length adjustment factor.
double
wordFactor(int bits)
{
    fatalIf(bits < 1, "CTP word length must be >= 1 bit");
    if (bits >= 32)
        return static_cast<double>(bits) / 64.0;
    return 0.3 + static_cast<double>(bits) / 96.0;
}

} // anonymous namespace

double
compositeTheoreticalPerformance(
    const std::vector<CtpResource> &resources)
{
    fatalIf(resources.empty(), "CTP requires at least one resource");
    std::vector<double> adjusted;
    adjusted.reserve(resources.size());
    for (const CtpResource &res : resources) {
        fatalIf(res.ratedMops <= 0.0,
                "CTP resource rate must be > 0");
        adjusted.push_back(res.ratedMops * wordFactor(res.wordLengthBits));
    }
    std::sort(adjusted.rbegin(), adjusted.rend());
    double ctp = adjusted.front();
    for (std::size_t i = 1; i < adjusted.size(); ++i)
        ctp += 0.75 * adjusted[i];
    return ctp;
}

double
adjustedPeakPerformance(const std::vector<AppProcessor> &processors)
{
    fatalIf(processors.empty(), "APP requires at least one processor");
    double app = 0.0;
    for (const AppProcessor &proc : processors) {
        fatalIf(proc.fp64TeraFlops < 0.0,
                "APP rate must be non-negative");
        app += (proc.isVector ? 0.9 : 0.3) * proc.fp64TeraFlops;
    }
    return app;
}

MetricHistory
metricHistory(const hw::HardwareConfig &cfg)
{
    cfg.validate();

    MetricHistory h;
    // CTP: tensor path (FP16 ops) + vector path (FP32 ops), in Mops.
    const double tensor_mops = cfg.peakTensorTops() * 1e6;
    const double vector_mops = cfg.peakVectorFlops() / 1e6;
    h.ctpMtops = compositeTheoreticalPerformance(
        {{tensor_mops, cfg.opBitwidth}, {vector_mops, 32}});

    // APP: FP64 at half the FP32 vector rate, GPU counted as one
    // vector processor per die.
    const double fp64_tflops = cfg.peakVectorFlops() / 2.0 / 1e12;
    std::vector<AppProcessor> procs(
        static_cast<std::size_t>(cfg.diesPerPackage),
        AppProcessor{fp64_tflops / cfg.diesPerPackage, true});
    h.appWt = adjustedPeakPerformance(procs);

    h.tpp = cfg.tpp();
    return h;
}

} // namespace policy
} // namespace acs
