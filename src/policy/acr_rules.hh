/**
 * @file
 * The BIS Advanced Computing Rule classifiers (Table 1) and the
 * Dec-2024 HBM rule (Sec. 2.1).
 */

#ifndef ACS_POLICY_ACR_RULES_HH
#define ACS_POLICY_ACR_RULES_HH

#include <string>

#include "policy/device_spec.hh"

namespace acs {
namespace policy {

/** Export-control outcome for a device. */
enum class Classification
{
    NOT_APPLICABLE,   //!< not covered by the rule
    NAC_ELIGIBLE,     //!< Notified Advanced Computing license exception
    LICENSE_REQUIRED, //!< regular export license required
};

/** Human-readable classification name. */
std::string toString(Classification c);

/** True when the rule covers the device at all (NAC or license). */
bool isRegulated(Classification c);

/**
 * October 2022 Advanced Computing Rule (Table 1a).
 *
 * A device requires a license iff TPP >= 4800 AND aggregate
 * bidirectional device bandwidth >= 600 GB/s. There is no NAC tier.
 */
class Oct2022Rule
{
  public:
    static constexpr double TPP_THRESHOLD = 4800.0;
    static constexpr double BANDWIDTH_THRESHOLD_GBPS = 600.0;

    /** Classify a device under the Oct-2022 specifications. */
    static Classification classify(const DeviceSpec &spec);
};

/**
 * October 2023 Advanced Computing Rule (Table 1b).
 *
 * Data-center devices:
 *   License:  TPP >= 4800, or TPP >= 1600 and PD >= 5.92.
 *   NAC:      4800 > TPP >= 2400 and 5.92 > PD >= 1.6,
 *             or TPP >= 1600 and 5.92 > PD >= 3.2.
 * Non-data-center devices:
 *   NAC:      TPP >= 4800.
 */
class Oct2023Rule
{
  public:
    static constexpr double TPP_LICENSE = 4800.0;
    static constexpr double TPP_MID = 2400.0;
    static constexpr double TPP_LOW = 1600.0;
    static constexpr double PD_LICENSE = 5.92;
    static constexpr double PD_MID = 3.2;
    static constexpr double PD_LOW = 1.6;

    /** Classify using the device's own marketing segment. */
    static Classification classify(const DeviceSpec &spec);

    /**
     * Classify as if the device were marketed in @p segment — the
     * "rebranding" probe of Sec. 5.2 / Fig. 9.
     */
    static Classification classifyAs(const DeviceSpec &spec,
                                     MarketSegment segment);

    /**
     * Minimum applicable die area (mm^2) for a data-center device of
     * @p tpp to be entirely outside the rule (Sec. 2.5 / Fig. 2):
     * the PD floors translate to die-area floors. Returns 0 when the
     * TPP alone already escapes regulation.
     *
     * Fatal for tpp >= 4800 (no die area escapes a license then).
     */
    static double minUnregulatedDieArea(double tpp);

    /**
     * Minimum applicable die area (mm^2) for a data-center device of
     * @p tpp to be (at worst) NAC eligible. Returns 0 when TPP < 1600.
     * Fatal for tpp >= 4800.
     */
    static double minNacDieArea(double tpp);
};

/** An HBM package as regulated by the Dec-2024 rule. */
struct HbmPackageSpec
{
    std::string name;
    double bandwidthGBps = 0.0; //!< package memory bandwidth
    double packageAreaMm2 = 0.0;

    /** Memory bandwidth density in GB/s/mm^2 (fatal on zero area). */
    double bandwidthDensity() const;
};

/**
 * December 2024 HBM export control (Sec. 2.1).
 *
 * Packages with memory bandwidth density > 2.0 GB/s/mm^2 are
 * controlled; those with density < 3.3 may apply for license exception
 * HBM (mapped to NAC_ELIGIBLE), denser packages require a license.
 * Does not apply to HBM installed inside computing devices pre-export.
 */
class Dec2024HbmRule
{
  public:
    static constexpr double CONTROL_DENSITY = 2.0;
    static constexpr double EXCEPTION_DENSITY = 3.3;

    /** Classify an HBM package (commodity, not device-installed). */
    static Classification classify(const HbmPackageSpec &spec);
};

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_ACR_RULES_HH
