#include "marketing.hh"

#include "common/logging.hh"

namespace acs {
namespace policy {

std::string
toString(MarketingConsistency c)
{
    switch (c) {
      case MarketingConsistency::CONSISTENT_DC:     return "consistent-dc";
      case MarketingConsistency::FALSE_DC:          return "false-dc";
      case MarketingConsistency::CONSISTENT_NON_DC:
        return "consistent-non-dc";
      case MarketingConsistency::FALSE_NON_DC:      return "false-non-dc";
    }
    panic("unknown MarketingConsistency");
}

MarketingConsistency
analyzeMarketing(const DeviceSpec &spec)
{
    const bool regulated_as_dc = isRegulated(
        Oct2023Rule::classifyAs(spec, MarketSegment::DATA_CENTER));
    const bool regulated_as_non_dc = isRegulated(
        Oct2023Rule::classifyAs(spec, MarketSegment::CONSUMER));

    if (isNonDataCenter(spec.market)) {
        // Unregulated today, but the DC track would regulate it.
        if (!regulated_as_non_dc && regulated_as_dc)
            return MarketingConsistency::FALSE_NON_DC;
        return MarketingConsistency::CONSISTENT_NON_DC;
    }
    // Regulated today, but rebranding would deregulate it.
    if (regulated_as_dc && !regulated_as_non_dc)
        return MarketingConsistency::FALSE_DC;
    return MarketingConsistency::CONSISTENT_DC;
}

MarketingSummary
summarizeMarketing(const std::vector<DeviceSpec> &specs)
{
    MarketingSummary s;
    for (const DeviceSpec &spec : specs) {
        switch (analyzeMarketing(spec)) {
          case MarketingConsistency::CONSISTENT_DC:     ++s.consistentDc;
            break;
          case MarketingConsistency::FALSE_DC:          ++s.falseDc;
            break;
          case MarketingConsistency::CONSISTENT_NON_DC:
            ++s.consistentNonDc;
            break;
          case MarketingConsistency::FALSE_NON_DC:      ++s.falseNonDc;
            break;
        }
    }
    return s;
}

bool
ArchDataCenterClassifier::isDataCenter(const DeviceSpec &spec)
{
    return spec.memCapacityGB > MEM_CAPACITY_GB ||
           spec.memBandwidthGBps > MEM_BANDWIDTH_GBPS;
}

MarketingConsistency
ArchDataCenterClassifier::analyze(const DeviceSpec &spec)
{
    const bool arch_dc = isDataCenter(spec);
    if (isNonDataCenter(spec.market)) {
        return arch_dc ? MarketingConsistency::FALSE_NON_DC
                       : MarketingConsistency::CONSISTENT_NON_DC;
    }
    return arch_dc ? MarketingConsistency::CONSISTENT_DC
                   : MarketingConsistency::FALSE_DC;
}

MarketingSummary
ArchDataCenterClassifier::summarize(const std::vector<DeviceSpec> &specs)
{
    MarketingSummary s;
    for (const DeviceSpec &spec : specs) {
        switch (analyze(spec)) {
          case MarketingConsistency::CONSISTENT_DC:     ++s.consistentDc;
            break;
          case MarketingConsistency::FALSE_DC:          ++s.falseDc;
            break;
          case MarketingConsistency::CONSISTENT_NON_DC:
            ++s.consistentNonDc;
            break;
          case MarketingConsistency::FALSE_NON_DC:      ++s.falseNonDc;
            break;
        }
    }
    return s;
}

} // namespace policy
} // namespace acs
