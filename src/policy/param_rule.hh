/**
 * @file
 * Parameterized generalizations of the ACR threshold rules, plus the
 * firmware offline-licensing mechanism (arxiv 2404.18308) modeled as
 * a throughput-throttling cap. These are the move space of the
 * regulator in the coevo arms race (src/coevo): every knob the
 * Oct-2022/Oct-2023 texts hard-code becomes a parameter the regulator
 * can tighten, and the canonical parameter vectors reproduce the
 * canonical rules bit-exactly (tests/test_coevo.cpp pins this across
 * the whole device catalogue).
 */

#ifndef ACS_POLICY_PARAM_RULE_HH
#define ACS_POLICY_PARAM_RULE_HH

#include <cmath>
#include <string>

#include "policy/acr_rules.hh"
#include "policy/device_spec.hh"

namespace acs {
namespace policy {

/**
 * A parameter vector spanning the Oct-2022 and Oct-2023 rule shapes.
 *
 * Every term is optional: setting a threshold to INFINITY disables it
 * (nothing real reaches it), which is how one classify path covers
 * both generations without drifting from either:
 *
 *   oct2022(): only the TPP&&bandwidth conjunction is live, segment
 *              blind — identical to Oct2022Rule::classify.
 *   oct2023(): conjunction dead; TPP-alone license, the density
 *              license term, the two NAC bands, and the non-data-
 *              center track — identical to Oct2023Rule::classifyAs.
 *
 * The term order in classifyAs() mirrors the canonical classifiers so
 * equality holds per comparison, not just per outcome.
 */
struct ParamRule
{
    /** Label used in CSV rows and error messages. */
    std::string name = "param-rule";

    /** Oct-2022 conjunction: LICENSE iff tpp >= tppBandwidthLicense
     *  and device bandwidth >= bandwidthGBps. */
    double tppBandwidthLicense = INFINITY;
    double bandwidthGBps = INFINITY;

    /** TPP-alone license threshold; with splitBySegment it is also
     *  the non-data-center NAC threshold. */
    double tppLicense = INFINITY;

    /** Density license: LICENSE iff tpp >= tppLow && pd >= pdLicense. */
    double pdLicense = INFINITY;

    /** NAC bands: tpp >= tppMid && pd >= pdLow, or
     *             tpp >= tppLow && pd >= pdMid. */
    double tppMid = INFINITY;
    double tppLow = INFINITY;
    double pdMid = INFINITY;
    double pdLow = INFINITY;

    /** Oct-2023 track split: non-data-center devices only face the
     *  tppLicense NAC check. Oct-2022 is segment-blind. */
    bool splitBySegment = false;

    /** Canonical Oct-2022 parameters (bit-exact vs Oct2022Rule). */
    static ParamRule oct2022();
    /** Canonical Oct-2023 parameters (bit-exact vs Oct2023Rule). */
    static ParamRule oct2023();
    /** Both rule generations in force at once (the actual regime the
     *  designer faces): Oct-2023 parameters plus the Oct-2022
     *  conjunction. The arms race starts here. */
    static ParamRule combined();

    /**
     * Reject NaN / negative / inverted thresholds with the offending
     * value in the message. Branch-then-throw: callers classify at
     * sweep rates, so validation runs once up front (and once per
     * regulator candidate), never inside classify().
     */
    void validate() const;

    /** Classify under the device's marketed segment. */
    Classification classify(const DeviceSpec &spec) const;

    /** Classify as if marketed under @p segment. */
    Classification classifyAs(const DeviceSpec &spec,
                              MarketSegment segment) const;

    /** Compact parameter summary for CSV/log rows (INFINITY prints
     *  as "-"). */
    std::string describe() const;
};

/**
 * Firmware offline licensing (arxiv 2404.18308) as an export
 * mechanism: covered devices ship with metering firmware and may be
 * exported under a license exception (mapped to NAC_ELIGIBLE), but an
 * unlicensed device's sustained throughput is capped by the firmware.
 *
 * The cap meters retired tensor operations, not the claimed TPP — in
 * FP16-equivalent TPP units (TOPS x 16). Bit-width gaming therefore
 * buys nothing: relabeling an FP16 design as INT8 halves its claimed
 * TPP but leaves its FP16-equivalent throughput (and thus its
 * throttle) unchanged. That is the structural contrast with the
 * threshold rules, where classification is the whole escape margin.
 */
struct FirmwareLicenseRule
{
    std::string name = "firmware-license";

    /** Devices at/above this FP16-equivalent TPP carry the metering
     *  firmware. */
    double coverageTpp = 4800.0;

    /** Sustained FP16-equivalent TPP an unlicensed covered device is
     *  throttled to. Must not exceed coverageTpp. */
    double throttleTpp = 4800.0;

    /** Reject NaN / negative / inverted (throttle above coverage)
     *  parameters with the offending value in the message. */
    void validate() const;

    /** True when the device must carry the metering firmware. */
    bool covered(double fp16EquivalentTpp) const;

    /** Covered devices export under the metering exception. */
    Classification classify(const DeviceSpec &spec) const;

    /**
     * Fraction of native throughput an unlicensed device retains:
     * min(1, throttleTpp / tpp) when covered, 1 otherwise.
     */
    double throughputScale(double fp16EquivalentTpp) const;

    /** Compact parameter summary for CSV/log rows. */
    std::string describe() const;
};

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_PARAM_RULE_HH
