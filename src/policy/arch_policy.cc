#include "arch_policy.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace policy {

std::string
toString(ArchParameter param)
{
    switch (param) {
      case ArchParameter::TPP:              return "tpp";
      case ArchParameter::MEM_BANDWIDTH:    return "mem-bandwidth";
      case ArchParameter::MEM_CAPACITY:     return "mem-capacity";
      case ArchParameter::L1_PER_CORE:      return "l1-per-core";
      case ArchParameter::L2_SIZE:          return "l2-size";
      case ArchParameter::DEVICE_BANDWIDTH: return "device-bandwidth";
      case ArchParameter::SYSTOLIC_DIM:     return "systolic-dim";
      case ArchParameter::LANES_PER_CORE:   return "lanes-per-core";
    }
    panic("unknown ArchParameter");
}

double
parameterValue(const hw::HardwareConfig &cfg, ArchParameter param)
{
    switch (param) {
      case ArchParameter::TPP:
        return cfg.tpp();
      case ArchParameter::MEM_BANDWIDTH:
        return cfg.memBandwidth;
      case ArchParameter::MEM_CAPACITY:
        return cfg.memCapacityBytes;
      case ArchParameter::L1_PER_CORE:
        return cfg.l1BytesPerCore;
      case ArchParameter::L2_SIZE:
        return cfg.l2Bytes;
      case ArchParameter::DEVICE_BANDWIDTH:
        return cfg.deviceBandwidth();
      case ArchParameter::SYSTOLIC_DIM:
        return std::max(cfg.systolicDimX, cfg.systolicDimY);
      case ArchParameter::LANES_PER_CORE:
        return cfg.lanesPerCore;
    }
    panic("unknown ArchParameter");
}

ArchPolicy::ArchPolicy(std::string name)
    : name_(std::move(name))
{}

ArchPolicy &
ArchPolicy::addLimit(ArchParameter param, double max_value)
{
    fatalIf(max_value < 0.0,
            name_ + ": policy ceiling must be non-negative");
    limits_.push_back({param, max_value});
    return *this;
}

bool
ArchPolicy::compliant(const hw::HardwareConfig &cfg) const
{
    for (const ArchLimit &limit : limits_) {
        if (parameterValue(cfg, limit.param) > limit.maxValue)
            return false;
    }
    return true;
}

std::vector<std::string>
ArchPolicy::violations(const hw::HardwareConfig &cfg) const
{
    std::vector<std::string> out;
    for (const ArchLimit &limit : limits_) {
        const double value = parameterValue(cfg, limit.param);
        if (value > limit.maxValue) {
            std::ostringstream oss;
            oss << toString(limit.param) << " = " << value << " > "
                << limit.maxValue;
            out.push_back(oss.str());
        }
    }
    return out;
}

ArchPolicy
ArchPolicy::gamingFocused()
{
    ArchPolicy p("gaming-focused");
    p.addLimit(ArchParameter::SYSTOLIC_DIM, 8.0);
    p.addLimit(ArchParameter::MEM_BANDWIDTH, 1.6 * units::TBPS);
    return p;
}

ArchPolicy
ArchPolicy::tppPlusMemoryBandwidth()
{
    ArchPolicy p("tpp+mem-bandwidth");
    p.addLimit(ArchParameter::TPP, 4800.0);
    p.addLimit(ArchParameter::MEM_BANDWIDTH, 0.8 * units::TBPS);
    return p;
}

ArchPolicy
ArchPolicy::tppPlusL1Cache()
{
    ArchPolicy p("tpp+l1-cache");
    p.addLimit(ArchParameter::TPP, 4800.0);
    p.addLimit(ArchParameter::L1_PER_CORE, 32.0 * units::KIB);
    return p;
}

} // namespace policy
} // namespace acs
