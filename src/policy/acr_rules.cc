#include "acr_rules.hh"

#include "common/logging.hh"

namespace acs {
namespace policy {

std::string
toString(MarketSegment segment)
{
    switch (segment) {
      case MarketSegment::DATA_CENTER: return "data-center";
      case MarketSegment::CONSUMER:    return "consumer";
      case MarketSegment::WORKSTATION: return "workstation";
    }
    panic("unknown MarketSegment");
}

bool
isNonDataCenter(MarketSegment segment)
{
    return segment != MarketSegment::DATA_CENTER;
}

double
DeviceSpec::perfDensity() const
{
    if (!nonPlanarTransistor || dieAreaMm2 <= 0.0)
        return 0.0;
    return tpp / dieAreaMm2;
}

std::string
toString(Classification c)
{
    switch (c) {
      case Classification::NOT_APPLICABLE:   return "not-applicable";
      case Classification::NAC_ELIGIBLE:     return "nac-eligible";
      case Classification::LICENSE_REQUIRED: return "license-required";
    }
    panic("unknown Classification");
}

bool
isRegulated(Classification c)
{
    return c != Classification::NOT_APPLICABLE;
}

Classification
Oct2022Rule::classify(const DeviceSpec &spec)
{
    if (spec.tpp >= TPP_THRESHOLD &&
        spec.deviceBandwidthGBps >= BANDWIDTH_THRESHOLD_GBPS) {
        return Classification::LICENSE_REQUIRED;
    }
    return Classification::NOT_APPLICABLE;
}

Classification
Oct2023Rule::classify(const DeviceSpec &spec)
{
    return classifyAs(spec, spec.market);
}

Classification
Oct2023Rule::classifyAs(const DeviceSpec &spec, MarketSegment segment)
{
    const double tpp = spec.tpp;
    const double pd = spec.perfDensity();

    if (isNonDataCenter(segment)) {
        if (tpp >= TPP_LICENSE)
            return Classification::NAC_ELIGIBLE;
        return Classification::NOT_APPLICABLE;
    }

    // Data-center track.
    if (tpp >= TPP_LICENSE || (tpp >= TPP_LOW && pd >= PD_LICENSE))
        return Classification::LICENSE_REQUIRED;
    if ((tpp >= TPP_MID && pd >= PD_LOW) ||
        (tpp >= TPP_LOW && pd >= PD_MID)) {
        return Classification::NAC_ELIGIBLE;
    }
    return Classification::NOT_APPLICABLE;
}

double
Oct2023Rule::minUnregulatedDieArea(double tpp)
{
    fatalIf(tpp >= TPP_LICENSE,
            "no die area escapes a license at TPP >= 4800");
    fatalIf(tpp < 0.0, "TPP must be non-negative");
    if (tpp >= TPP_MID)
        return tpp / PD_LOW;
    if (tpp >= TPP_LOW)
        return tpp / PD_MID;
    return 0.0;
}

double
Oct2023Rule::minNacDieArea(double tpp)
{
    fatalIf(tpp >= TPP_LICENSE,
            "no die area reaches NAC at TPP >= 4800");
    fatalIf(tpp < 0.0, "TPP must be non-negative");
    if (tpp >= TPP_LOW)
        return tpp / PD_LICENSE;
    return 0.0;
}

double
HbmPackageSpec::bandwidthDensity() const
{
    fatalIf(packageAreaMm2 <= 0.0,
            name + ": HBM package area must be > 0");
    return bandwidthGBps / packageAreaMm2;
}

Classification
Dec2024HbmRule::classify(const HbmPackageSpec &spec)
{
    const double density = spec.bandwidthDensity();
    if (density <= CONTROL_DENSITY)
        return Classification::NOT_APPLICABLE;
    if (density < EXCEPTION_DENSITY)
        return Classification::NAC_ELIGIBLE;
    return Classification::LICENSE_REQUIRED;
}

} // namespace policy
} // namespace acs
