/**
 * @file
 * The minimal device view the export-control rules operate on.
 *
 * Both real products (acs::devices) and modeled designs (acs::hw +
 * acs::area) reduce to this spec for classification.
 */

#ifndef ACS_POLICY_DEVICE_SPEC_HH
#define ACS_POLICY_DEVICE_SPEC_HH

#include <string>

namespace acs {
namespace policy {

/** How the vendor markets the device (the Oct-2023 rule's pivot). */
enum class MarketSegment
{
    DATA_CENTER,
    CONSUMER,
    WORKSTATION,
};

/** Human-readable segment name. */
std::string toString(MarketSegment segment);

/** True for the segments the Oct-2023 rule treats as non-data-center. */
bool isNonDataCenter(MarketSegment segment);

/** Datasheet-level quantities the rules consume. */
struct DeviceSpec
{
    std::string name;
    double tpp = 0.0;               //!< TOPS x bitwidth, package total
    double deviceBandwidthGBps = 0.0; //!< aggregate bidirectional I/O
    double dieAreaMm2 = 0.0;        //!< applicable (non-planar) die area
    bool nonPlanarTransistor = true;
    MarketSegment market = MarketSegment::DATA_CENTER;

    // Architectural parameters used by architecture-first policy.
    double memCapacityGB = 0.0;
    double memBandwidthGBps = 0.0;

    /**
     * BIS Performance Density: TPP over applicable die area; zero when
     * no die area is applicable (planar process).
     */
    double perfDensity() const;
};

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_DEVICE_SPEC_HH
