/**
 * @file
 * Historical export-control performance metrics (Sec. 6.1).
 *
 * Before TPP, US export controls classified computers by Composite
 * Theoretical Performance (CTP, 1991, in MTOPS) and Adjusted Peak
 * Performance (APP, 2006, in Weighted TeraFLOPS). Implementing both
 * lets the repo compare how each metric generation ranks the same
 * hardware — the paper's argument that the metrics "stem from compute
 * regulations from the 1990s" and have drifted from workload reality.
 *
 * The implementations follow the published definitions at the level of
 * detail a datasheet supports:
 *  - CTP: per execution resource, effective rate R (Mops) adjusted by
 *    a word-length factor L/64 (L >= 32; 0.3 + L/96 for shorter
 *    words), aggregated as R1' + 0.75 * sum(Ri') over remaining
 *    resources.
 *  - APP: sum of W * R over processors, R the 64-bit FLOPs rate in
 *    TFLOPS, W = 0.9 for vector processors and 0.3 otherwise.
 */

#ifndef ACS_POLICY_HISTORICAL_HH
#define ACS_POLICY_HISTORICAL_HH

#include <vector>

#include "hw/config.hh"

namespace acs {
namespace policy {

/** One execution resource as CTP sees it. */
struct CtpResource
{
    double ratedMops = 0.0; //!< theoretical ops/s in millions
    int wordLengthBits = 64;
};

/**
 * Composite Theoretical Performance in MTOPS.
 *
 * @param resources Per-unit rates, strongest first (fatal if empty or
 *        any rate is non-positive).
 */
double compositeTheoreticalPerformance(
    const std::vector<CtpResource> &resources);

/** One processor as APP sees it. */
struct AppProcessor
{
    double fp64TeraFlops = 0.0; //!< 64-bit floating-point TFLOPS
    bool isVector = false;      //!< vector processor weighting (0.9)
};

/**
 * Adjusted Peak Performance in Weighted TeraFLOPS.
 *
 * @param processors Per-processor 64-bit rates (fatal if empty or any
 *        rate is negative).
 */
double adjustedPeakPerformance(
    const std::vector<AppProcessor> &processors);

/** All three metric generations evaluated on one device. */
struct MetricHistory
{
    double ctpMtops = 0.0;
    double appWt = 0.0;
    double tpp = 0.0;
};

/**
 * Evaluate CTP, APP, and TPP for a modeled device.
 *
 * The tensor path provides the dominant CTP resource (FP16 ops) and
 * the vector path the secondary one; APP uses the device's FP64
 * capability, taken as half the FP32 vector rate (A100-like) unless
 * the device advertises none.
 */
MetricHistory metricHistory(const hw::HardwareConfig &cfg);

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_HISTORICAL_HH
