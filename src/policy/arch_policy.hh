/**
 * @file
 * The architecture-first policy framework (Sec. 5.3/5.4, Fig. 3).
 *
 * Instead of regulating only theoretical performance (TPP), a policy is
 * a set of ceilings on disclosed architectural parameters. The paper
 * shows such policies predict workload performance far better (narrower
 * latency distributions) and can be scoped to a workload-of-interest
 * (e.g. gaming devices that are inherently AI-limited).
 */

#ifndef ACS_POLICY_ARCH_POLICY_HH
#define ACS_POLICY_ARCH_POLICY_HH

#include <string>
#include <vector>

#include "hw/config.hh"

namespace acs {
namespace policy {

/** Architectural parameters a policy may constrain. */
enum class ArchParameter
{
    TPP,              //!< total processing performance (unitless)
    MEM_BANDWIDTH,    //!< HBM bandwidth, bytes/s
    MEM_CAPACITY,     //!< HBM capacity, bytes
    L1_PER_CORE,      //!< local buffer per core, bytes
    L2_SIZE,          //!< global buffer, bytes
    DEVICE_BANDWIDTH, //!< aggregate bidirectional interconnect, bytes/s
    SYSTOLIC_DIM,     //!< max(DIMX, DIMY) of the systolic arrays
    LANES_PER_CORE,   //!< lanes per core
};

/** Human-readable parameter name. */
std::string toString(ArchParameter param);

/** Read @p param from a hardware configuration, in base units. */
double parameterValue(const hw::HardwareConfig &cfg, ArchParameter param);

/** One ceiling: the parameter must stay <= maxValue to comply. */
struct ArchLimit
{
    ArchParameter param = ArchParameter::TPP;
    double maxValue = 0.0;
};

/**
 * A named set of architectural ceilings.
 *
 * Empty policies are vacuously compliant.
 */
class ArchPolicy
{
  public:
    /** @param name Policy name used in reports. */
    explicit ArchPolicy(std::string name);

    /** Add a ceiling (fatal on negative maxValue). Returns *this. */
    ArchPolicy &addLimit(ArchParameter param, double max_value);

    /** True when @p cfg satisfies every ceiling. */
    bool compliant(const hw::HardwareConfig &cfg) const;

    /** Human-readable description of every violated ceiling. */
    std::vector<std::string> violations(const hw::HardwareConfig &cfg)
        const;

    const std::string &name() const { return name_; }
    const std::vector<ArchLimit> &limits() const { return limits_; }

    /**
     * The paper's gaming-focused case study (Sec. 5.4): cap systolic
     * array dimensions at 8 and memory bandwidth at 1.6 TB/s — AI
     * (decode) performance is architecturally limited while SIMT/
     * vector resources stay unconstrained for graphics.
     */
    static ArchPolicy gamingFocused();

    /**
     * The combined TPP + memory-bandwidth policy of Sec. 5.3 (the
     * "42.4x narrower distribution" result): TPP <= 4800 and HBM
     * bandwidth <= 0.8 TB/s.
     */
    static ArchPolicy tppPlusMemoryBandwidth();

    /**
     * The combined TPP + L1-capacity policy targeting TTFT (Sec. 5.3):
     * TPP <= 4800 and L1 <= 32 KiB per core.
     */
    static ArchPolicy tppPlusL1Cache();

  private:
    std::string name_;
    std::vector<ArchLimit> limits_;
};

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_ARCH_POLICY_HH
