/**
 * @file
 * Marketing-based classification analysis (Sec. 5.2, Figs. 9/10).
 */

#ifndef ACS_POLICY_MARKETING_HH
#define ACS_POLICY_MARKETING_HH

#include <vector>

#include "policy/acr_rules.hh"
#include "policy/device_spec.hh"

namespace acs {
namespace policy {

/**
 * Consistency of a device's regulation across marketing segments.
 *
 * "False data center": a data-center-marketed device that is regulated
 * today but would be unregulated rebranded as a consumer device.
 * "False non-data center": a non-data-center device that is
 * unregulated today but would be regulated rebranded as data center.
 */
enum class MarketingConsistency
{
    CONSISTENT_DC,
    FALSE_DC,
    CONSISTENT_NON_DC,
    FALSE_NON_DC,
};

/** Human-readable consistency label. */
std::string toString(MarketingConsistency c);

/** Analyze one device under the Oct-2023 rule (Fig. 9 probe). */
MarketingConsistency analyzeMarketing(const DeviceSpec &spec);

/** Counts of each consistency class over a device set. */
struct MarketingSummary
{
    int consistentDc = 0;
    int falseDc = 0;
    int consistentNonDc = 0;
    int falseNonDc = 0;
};

/** Analyze a whole device set (Fig. 9 headline counts). */
MarketingSummary summarizeMarketing(const std::vector<DeviceSpec> &specs);

/**
 * The paper's architecture-based data-center classifier (Fig. 10):
 * a device is architecturally data-center when it has more than
 * 32 GB of memory OR more than 1600 GB/s of memory bandwidth.
 */
class ArchDataCenterClassifier
{
  public:
    static constexpr double MEM_CAPACITY_GB = 32.0;
    static constexpr double MEM_BANDWIDTH_GBPS = 1600.0;

    /** True when the architecture says "data center". */
    static bool isDataCenter(const DeviceSpec &spec);

    /**
     * Consistency of the architectural classification with the
     * marketing segment: FALSE_DC when a data-center-marketed device
     * is architecturally non-DC, FALSE_NON_DC for the reverse.
     */
    static MarketingConsistency analyze(const DeviceSpec &spec);

    /** Counts over a device set (Fig. 10 headline counts). */
    static MarketingSummary
    summarize(const std::vector<DeviceSpec> &specs);
};

} // namespace policy
} // namespace acs

#endif // ACS_POLICY_MARKETING_HH
