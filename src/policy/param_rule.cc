#include "param_rule.hh"

#include <cstdio>

#include "common/logging.hh"

namespace acs {
namespace policy {

namespace {

/** Compact numeric formatting for names/messages ("4800", "5.92",
 *  "-" for a disabled INFINITY threshold). */
std::string
fmtNum(double v)
{
    if (std::isinf(v) && v > 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** NaN / negative check shared by every threshold field. */
void
checkThreshold(const std::string &rule, const char *field, double v)
{
    if (std::isnan(v))
        fatal(rule + ": " + field + " is NaN");
    if (v < 0.0)
        fatal(rule + ": " + field + " must be >= 0, got " + fmtNum(v));
}

/** Ordering check: @p lo must not exceed @p hi. */
void
checkOrder(const std::string &rule, const char *loName, double lo,
           const char *hiName, double hi)
{
    if (lo > hi) {
        fatal(rule + ": inverted thresholds, " + loName + " (" +
              fmtNum(lo) + ") must be <= " + hiName + " (" +
              fmtNum(hi) + ")");
    }
}

} // namespace

ParamRule
ParamRule::oct2022()
{
    ParamRule r;
    r.name = "oct2022";
    r.tppBandwidthLicense = Oct2022Rule::TPP_THRESHOLD;
    r.bandwidthGBps = Oct2022Rule::BANDWIDTH_THRESHOLD_GBPS;
    return r;
}

ParamRule
ParamRule::oct2023()
{
    ParamRule r;
    r.name = "oct2023";
    r.tppLicense = Oct2023Rule::TPP_LICENSE;
    r.pdLicense = Oct2023Rule::PD_LICENSE;
    r.tppMid = Oct2023Rule::TPP_MID;
    r.tppLow = Oct2023Rule::TPP_LOW;
    r.pdMid = Oct2023Rule::PD_MID;
    r.pdLow = Oct2023Rule::PD_LOW;
    r.splitBySegment = true;
    return r;
}

ParamRule
ParamRule::combined()
{
    ParamRule r = oct2023();
    r.name = "combined";
    r.tppBandwidthLicense = Oct2022Rule::TPP_THRESHOLD;
    r.bandwidthGBps = Oct2022Rule::BANDWIDTH_THRESHOLD_GBPS;
    return r;
}

void
ParamRule::validate() const
{
    checkThreshold(name, "tppBandwidthLicense", tppBandwidthLicense);
    checkThreshold(name, "bandwidthGBps", bandwidthGBps);
    checkThreshold(name, "tppLicense", tppLicense);
    checkThreshold(name, "pdLicense", pdLicense);
    checkThreshold(name, "tppMid", tppMid);
    checkThreshold(name, "tppLow", tppLow);
    checkThreshold(name, "pdMid", pdMid);
    checkThreshold(name, "pdLow", pdLow);
    checkOrder(name, "tppLow", tppLow, "tppMid", tppMid);
    checkOrder(name, "tppMid", tppMid, "tppLicense", tppLicense);
    checkOrder(name, "pdLow", pdLow, "pdMid", pdMid);
    checkOrder(name, "pdMid", pdMid, "pdLicense", pdLicense);
}

Classification
ParamRule::classify(const DeviceSpec &spec) const
{
    return classifyAs(spec, spec.market);
}

Classification
ParamRule::classifyAs(const DeviceSpec &spec, MarketSegment segment) const
{
    const double tpp = spec.tpp;
    const double pd = spec.perfDensity();

    if (splitBySegment && isNonDataCenter(segment)) {
        if (tpp >= tppLicense)
            return Classification::NAC_ELIGIBLE;
        return Classification::NOT_APPLICABLE;
    }

    // License terms, in the canonical texts' order: the Oct-2022
    // conjunction, then the Oct-2023 TPP-alone and density terms.
    if (tpp >= tppBandwidthLicense &&
        spec.deviceBandwidthGBps >= bandwidthGBps) {
        return Classification::LICENSE_REQUIRED;
    }
    if (tpp >= tppLicense || (tpp >= tppLow && pd >= pdLicense))
        return Classification::LICENSE_REQUIRED;

    // NAC bands.
    if ((tpp >= tppMid && pd >= pdLow) ||
        (tpp >= tppLow && pd >= pdMid)) {
        return Classification::NAC_ELIGIBLE;
    }
    return Classification::NOT_APPLICABLE;
}

std::string
ParamRule::describe() const
{
    std::string s = "tpp&bw(" + fmtNum(tppBandwidthLicense) + "," +
                    fmtNum(bandwidthGBps) + ")";
    s += "|tpp(" + fmtNum(tppLicense) + ")";
    s += "|pd(" + fmtNum(pdLicense) + ")";
    s += "|nac(" + fmtNum(tppMid) + "," + fmtNum(tppLow) + "," +
         fmtNum(pdMid) + "," + fmtNum(pdLow) + ")";
    s += splitBySegment ? "|split" : "|blind";
    return s;
}

void
FirmwareLicenseRule::validate() const
{
    checkThreshold(name, "coverageTpp", coverageTpp);
    checkThreshold(name, "throttleTpp", throttleTpp);
    checkOrder(name, "throttleTpp", throttleTpp,
               "coverageTpp", coverageTpp);
}

bool
FirmwareLicenseRule::covered(double fp16EquivalentTpp) const
{
    return fp16EquivalentTpp >= coverageTpp;
}

Classification
FirmwareLicenseRule::classify(const DeviceSpec &spec) const
{
    // Catalogue TPPs are already at each device's peak bitwidth;
    // treat them as FP16-equivalent.
    if (covered(spec.tpp))
        return Classification::NAC_ELIGIBLE;
    return Classification::NOT_APPLICABLE;
}

double
FirmwareLicenseRule::throughputScale(double fp16EquivalentTpp) const
{
    if (!covered(fp16EquivalentTpp) || fp16EquivalentTpp <= 0.0)
        return 1.0;
    const double scale = throttleTpp / fp16EquivalentTpp;
    return scale < 1.0 ? scale : 1.0;
}

std::string
FirmwareLicenseRule::describe() const
{
    return "fw(cov=" + fmtNum(coverageTpp) + ",cap=" +
           fmtNum(throttleTpp) + ")";
}

} // namespace policy
} // namespace acs
