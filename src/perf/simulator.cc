#include "simulator.hh"

#include "common/logging.hh"
#include "obs/obs.hh"

namespace acs {
namespace perf {

namespace {

/** Tally which resource bound an op's modeled latency (obs only). */
void
tallyBound(Bound bound)
{
    switch (bound) {
      case Bound::COMPUTE:
        obs::counterAdd("perf.bound.compute");
        break;
      case Bound::HBM:
        obs::counterAdd("perf.bound.hbm");
        break;
      case Bound::GLOBAL_BUFFER:
        obs::counterAdd("perf.bound.l2");
        break;
      case Bound::INTERCONNECT:
        obs::counterAdd("perf.bound.interconnect");
        break;
    }
}

} // anonymous namespace

/**
 * Per-run cache of op timings keyed by operator shape/footprint.
 *
 * Graphs repeat shapes (the two layer norms, the two residual adds,
 * the attention and FFN allreduces carry identical payloads), and the
 * models are pure functions of (shape, footprint), so a repeated shape
 * can reuse the first timing bit-exactly. Lookups are a linear scan:
 * layer graphs hold ~15 ops, so a hash table would cost more than it
 * saves.
 */
class OpShapeMemo
{
  public:
    struct Timing
    {
        double latencyS;
        Bound bound;
        double utilization;
    };

    const Timing *find(const model::Op &op) const
    {
        for (const Entry &e : entries_) {
            if (matches(e.op, op))
                return &e.timing;
        }
        return nullptr;
    }

    void insert(const model::Op &op, const Timing &timing)
    {
        entries_.push_back({op, timing});
    }

  private:
    static bool matches(const model::Op &a, const model::Op &b)
    {
        return a.kind == b.kind && a.flops == b.flops &&
               a.weightBytes == b.weightBytes &&
               a.inputBytes == b.inputBytes &&
               a.outputBytes == b.outputBytes &&
               a.commBytes == b.commBytes &&
               a.memoryPasses == b.memoryPasses && a.mm.m == b.mm.m &&
               a.mm.n == b.mm.n && a.mm.k == b.mm.k &&
               a.mm.batchCount == b.mm.batchCount &&
               a.mm.weightStationary == b.mm.weightStationary;
    }

    struct Entry
    {
        model::Op op; //!< key fields only; the name is ignored
        Timing timing;
    };
    std::vector<Entry> entries_;
};

double
LayerResult::mfu(double peak_flops) const
{
    panicIf(peak_flops <= 0.0, "mfu: peak_flops must be positive");
    if (latencyS <= 0.0)
        return 0.0;
    return flops / (latencyS * peak_flops);
}

double
InferenceResult::endToEndLatencyS() const
{
    return ttftFullModelS + outputLen * tbtFullModelS;
}

double
InferenceResult::decodeThroughputTokensPerS() const
{
    panicIf(tbtFullModelS <= 0.0, "decode latency must be positive");
    return batch / tbtFullModelS;
}

double
InferenceResult::throughputTokensPerS() const
{
    const double e2e = endToEndLatencyS();
    panicIf(e2e <= 0.0, "end-to-end latency must be positive");
    return static_cast<double>(batch) * outputLen / e2e;
}

InferenceSimulator::InferenceSimulator(const hw::HardwareConfig &cfg,
                                       const PerfParams &params)
    : cfg_(cfg), params_(params), matmul_(cfg, params),
      vector_(cfg, params), comm_(cfg, params)
{
    cfg_.validate();
}

LayerResult
InferenceSimulator::simulateLayer(const model::LayerGraph &graph,
                                  int tensor_parallel) const
{
    OpShapeMemo memo;
    return simulateLayer(graph, tensor_parallel,
                         params_.memoizeOps ? &memo : nullptr);
}

LayerResult
InferenceSimulator::simulateLayer(const model::LayerGraph &graph,
                                  int tensor_parallel,
                                  OpShapeMemo *memo) const
{
    fatalIf(tensor_parallel < 1,
            "simulateLayer: tensor_parallel must be >= 1");

    LayerResult result;
    result.ops.reserve(graph.ops.size());
    for (const model::Op &op : graph.ops) {
        const obs::TraceSpan op_span(op.name);
        OpTiming timing;
        timing.name = op.name;
        timing.kind = op.kind;
        const OpShapeMemo::Timing *hit = memo ? memo->find(op) : nullptr;
        if (hit) {
            timing.latencyS = hit->latencyS;
            timing.bound = hit->bound;
            timing.utilization = hit->utilization;
            obs::counterAdd("perf.memo.hits");
        } else {
            switch (op.kind) {
              case model::OpKind::MATMUL: {
                const MatmulTiming t = matmul_.time(op);
                timing.latencyS = t.totalS;
                timing.bound = t.bound;
                timing.utilization = t.utilization;
                break;
              }
              case model::OpKind::VECTOR: {
                const VectorTiming t = vector_.time(op);
                timing.latencyS = t.totalS;
                timing.bound = t.bound;
                break;
              }
              case model::OpKind::ALLREDUCE: {
                const CommTiming t = comm_.time(op, tensor_parallel);
                timing.latencyS = t.totalS;
                timing.bound = Bound::INTERCONNECT;
                break;
              }
            }
            if (memo) {
                memo->insert(op, {timing.latencyS, timing.bound,
                                  timing.utilization});
            }
        }
        if (obs::enabled()) {
            // Memo hits still count: these tallies describe the graph
            // (how many ops run, what binds them), not model work.
            obs::counterAdd("perf.ops.timed");
            tallyBound(timing.bound);
        }
        result.latencyS += timing.latencyS;
        result.flops += op.flops;
        result.ops.push_back(std::move(timing));
    }
    return result;
}

InferenceResult
InferenceSimulator::run(const model::TransformerConfig &model_cfg,
                        const model::InferenceSetting &setting,
                        const SystemConfig &sys) const
{
    model_cfg.validate();
    setting.validate();
    fatalIf(sys.tensorParallel < 1,
            "SystemConfig: tensorParallel must be >= 1");

    const model::LayerGraph prefill =
        model::buildPrefillGraph(model_cfg, setting, sys.tensorParallel);
    const model::LayerGraph decode =
        model::buildDecodeGraph(model_cfg, setting, sys.tensorParallel);
    return run(model_cfg, setting, sys, prefill, decode);
}

InferenceResult
InferenceSimulator::run(const model::TransformerConfig &model_cfg,
                        const model::InferenceSetting &setting,
                        const SystemConfig &sys,
                        const model::LayerGraph &prefill,
                        const model::LayerGraph &decode) const
{
    fatalIf(sys.tensorParallel < 1,
            "SystemConfig: tensorParallel must be >= 1");

    // One memo for both phases: the graph builders guarantee the
    // graphs were produced for the same tensor_parallel degree.
    OpShapeMemo memo;
    OpShapeMemo *memo_ptr = params_.memoizeOps ? &memo : nullptr;

    InferenceResult r;
    {
        const obs::TraceSpan span("perf.prefill");
        r.prefill = simulateLayer(prefill, sys.tensorParallel, memo_ptr);
    }
    {
        const obs::TraceSpan span("perf.decode");
        r.decode = simulateLayer(decode, sys.tensorParallel, memo_ptr);
    }
    r.ttftS = r.prefill.latencyS;
    r.tbtS = r.decode.latencyS;
    r.ttftFullModelS = r.ttftS * model_cfg.numLayers;
    r.tbtFullModelS = r.tbtS * model_cfg.numLayers;

    r.weightBytesPerDevice =
        static_cast<double>(model_cfg.totalParams()) *
        setting.bytesPerValue / sys.tensorParallel;
    const int final_ctx = setting.inputLen + setting.outputLen;
    r.kvCacheBytesPerDevice =
        model::kvCacheBytesPerLayer(model_cfg, setting, final_ctx,
                                    sys.tensorParallel) *
        model_cfg.numLayers;
    r.fitsMemory = r.weightBytesPerDevice + r.kvCacheBytesPerDevice <=
                   cfg_.memCapacityBytes;
    r.numLayers = model_cfg.numLayers;
    r.batch = setting.batch;
    r.outputLen = setting.outputLen;
    return r;
}

} // namespace perf
} // namespace acs
