/**
 * @file
 * Tile-level GEMM latency model for the systolic-array template.
 *
 * The model captures the architecture sensitivities the paper's DSE
 * depends on:
 *  - pipeline fill/drain loss per tile wave: util ~ Tm / (Tm+DIMX+DIMY),
 *    which penalizes big arrays on skinny decode GEMMs;
 *  - tile sizes limited by the per-lane share of the local buffer, which
 *    drives both pipeline utilization and L2 traffic (the paper's
 *    "L1 size is the best TTFT indicator" result);
 *  - global-buffer blocking, which determines how many times the
 *    streamed operand re-reads from HBM (L2-size sensitivity);
 *  - HBM and global-buffer bandwidth roofs.
 */

#ifndef ACS_PERF_MATMUL_MODEL_HH
#define ACS_PERF_MATMUL_MODEL_HH

#include <cstdint>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** Where an op's latency comes from. */
enum class Bound
{
    COMPUTE,
    HBM,
    GLOBAL_BUFFER,
    INTERCONNECT,
};

/** Human-readable bound name. */
std::string toString(Bound bound);

/** Detailed timing of one GEMM. */
struct MatmulTiming
{
    double computeS = 0.0;    //!< systolic compute time
    double hbmS = 0.0;        //!< HBM streaming time
    double globalBufS = 0.0;  //!< L2 <-> L1 streaming time
    double utilization = 0.0; //!< achieved fraction of peak tensor TOPS
    long tileM = 0;           //!< chosen output-tile rows
    long tileN = 0;           //!< chosen output-tile columns
    double hbmTrafficBytes = 0.0;
    Bound bound = Bound::COMPUTE;

    /** Final latency: the binding resource (+ launch overhead). */
    double totalS = 0.0;
};

/** Output-tile shape chosen by the tiling policy. */
struct TileChoice
{
    long tileM = 1;
    long tileN = 1;
};

/**
 * The shared tiling policy: square tiles sized by the per-lane local
 * buffer budget, column tiles shrunk toward one array width when the
 * tile count cannot cover all systolic arrays (skinny decode GEMMs).
 * Used by both the closed-form MatmulModel and the wave-level tile
 * simulator so the two are directly comparable.
 */
TileChoice chooseTiles(const hw::HardwareConfig &cfg,
                       const model::MatmulShape &mm,
                       const PerfParams &params);

/**
 * HBM traffic of one GEMM under global-buffer blocking: the cheaper
 * of keeping an A panel or a B panel resident, re-streaming the other
 * operand once per panel pass (weight-stationary ops only; attention
 * GEMMs stream both operands once).
 */
double blockedHbmTraffic(const hw::HardwareConfig &cfg,
                         const model::Op &op, const PerfParams &params);

/**
 * GEMM latency estimator for one device.
 *
 * Thread-compatible: const after construction.
 */
class MatmulModel
{
  public:
    /**
     * @param cfg    Device to model (validated; copied).
     * @param params Model constants.
     */
    MatmulModel(const hw::HardwareConfig &cfg, const PerfParams &params);

    /**
     * Time one GEMM operator.
     *
     * @param op Operator with kind == MATMUL (fatal otherwise).
     * @return Detailed timing.
     */
    MatmulTiming time(const model::Op &op) const;

    /** Peak global-buffer bandwidth (bytes/s) of the modeled device. */
    double globalBufferBandwidth() const;

    /**
     * Static form of globalBufferBandwidth so sibling models
     * (VectorModel) can share the formula without constructing (and
     * copy-validating) a whole MatmulModel per design point.
     */
    static double globalBufferBandwidth(const hw::HardwareConfig &cfg,
                                        const PerfParams &params);

  private:
    hw::HardwareConfig cfg_;
    PerfParams params_;
    /**
     * fingerprintGemmParams(params_), computed once here so TILE_SIM
     * cache keys (params_.gemmCache) need no per-op re-hashing.
     */
    std::uint64_t paramsFp_ = 0;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_MATMUL_MODEL_HH
