#include "gemm_cache.hh"

#include <bit>

namespace acs {
namespace perf {

namespace {

constexpr std::uint64_t FNV_OFFSET = 14695981039346656037ull;
constexpr std::uint64_t FNV_PRIME = 1099511628211ull;

inline std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    // Byte-at-a-time FNV-1a over the 64-bit value.
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= FNV_PRIME;
    }
    return h;
}

inline std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // anonymous namespace

std::uint64_t
fingerprintGemmParams(const PerfParams &params)
{
    std::uint64_t h = FNV_OFFSET;
    h = fnvMix(h, bits(params.memEfficiency));
    h = fnvMix(h, bits(params.l2Efficiency));
    h = fnvMix(h, bits(params.l2BytesPerCyclePerFpu));
    h = fnvMix(h, bits(params.l2BlockingFraction));
    h = fnvMix(h, bits(params.l1TileFraction));
    h = fnvMix(h, bits(params.kernelOverheadS));
    h = fnvMix(h, bits(params.pipelineFillOverlap));
    h = fnvMix(h, (params.modelPipelineFill ? 1u : 0u) |
                      (params.modelTiling ? 2u : 0u) |
                      (params.modelL2Blocking ? 4u : 0u) |
                      (params.tileSimEngine == TileSimEngine::LEGACY_WALK
                           ? 8u
                           : 0u) |
                      (params.cycleEngine == CycleEngine::LEGACY_TICK
                           ? 16u
                           : 0u) |
                      (params.cycleReplay ? 32u : 0u));
    // The mode itself keys the entry: TILE_SIM and CYCLE_SIM timings
    // for the same (device, op) projection must never alias.
    h = fnvMix(h, static_cast<std::uint64_t>(params.gemmMode));
    // CYCLE_SIM memory-system knobs (no-ops for the other modes, but
    // hashing them unconditionally keeps the fingerprint branch-free).
    h = fnvMix(h, static_cast<std::uint64_t>(params.cycleDramBanks));
    h = fnvMix(h, static_cast<std::uint64_t>(params.cycleDramReqBytes));
    h = fnvMix(h, static_cast<std::uint64_t>(params.cycleDramWindow));
    return h;
}

GemmCacheKey
makeGemmCacheKey(const hw::HardwareConfig &cfg, const model::Op &op,
                 const PerfParams &params, std::uint64_t params_fp)
{
    GemmCacheKey key;
    key.dimX = cfg.systolicDimX;
    key.dimY = cfg.systolicDimY;
    key.lanes = cfg.lanesPerCore;
    key.arrays = cfg.totalSystolicArrays();
    key.clockHz = cfg.clockHz;
    key.l1BytesPerLane = cfg.l1BytesPerLane();
    // L2 capacity enters the timing only through global-buffer
    // blocking of weight-stationary operands; attention GEMMs (and
    // the no-blocking ablation) stream both operands once, so for
    // them the axis is timing-invariant and canonicalizes away.
    key.l2Bytes = op.mm.weightStationary && params.modelL2Blocking
                      ? cfg.l2Bytes
                      : 0.0;
    key.memBandwidth = cfg.memBandwidth;
    key.m = op.mm.m;
    key.n = op.mm.n;
    key.k = op.mm.k;
    key.batch = op.mm.batchCount;
    key.weightStationary = op.mm.weightStationary;
    key.flops = op.flops;
    key.weightBytes = op.weightBytes;
    key.inputBytes = op.inputBytes;
    key.outputBytes = op.outputBytes;
    key.paramsFp = params_fp;
    return key;
}

std::size_t
GemmCacheKeyHash::operator()(const GemmCacheKey &key) const
{
    std::uint64_t h = FNV_OFFSET;
    h = fnvMix(h, static_cast<std::uint64_t>(key.dimX) << 32 |
                      static_cast<std::uint32_t>(key.dimY));
    h = fnvMix(h, static_cast<std::uint64_t>(key.lanes));
    h = fnvMix(h, static_cast<std::uint64_t>(key.arrays));
    h = fnvMix(h, bits(key.clockHz));
    h = fnvMix(h, bits(key.l1BytesPerLane));
    h = fnvMix(h, bits(key.l2Bytes));
    h = fnvMix(h, bits(key.memBandwidth));
    h = fnvMix(h, static_cast<std::uint64_t>(key.m));
    h = fnvMix(h, static_cast<std::uint64_t>(key.n));
    h = fnvMix(h, static_cast<std::uint64_t>(key.k));
    h = fnvMix(h, static_cast<std::uint64_t>(key.batch) << 1 |
                      (key.weightStationary ? 1u : 0u));
    h = fnvMix(h, bits(key.flops));
    h = fnvMix(h, bits(key.weightBytes));
    h = fnvMix(h, bits(key.inputBytes));
    h = fnvMix(h, bits(key.outputBytes));
    h = fnvMix(h, key.paramsFp);
    return static_cast<std::size_t>(h);
}

} // namespace perf
} // namespace acs
