/**
 * @file
 * Frame-time proxy for rendering workloads (Sec. 5.4).
 *
 * Captures the architectural contrast the paper's gaming-policy case
 * study relies on:
 *  - shading runs on the SIMT vector units (systolic arrays idle);
 *  - texture sampling is latency-bound and irregular, so it uses only
 *    a small fraction of peak HBM bandwidth and benefits from on-chip
 *    cache (L2) capacity;
 *  - an optional DLSS-style upscaler is the only consumer of systolic
 *    arrays, and alternative upscalers can run on vector units.
 *
 * Consequently a policy that caps systolic-array dimensions and HBM
 * bandwidth (policy::ArchPolicy::gamingFocused) barely moves frame
 * rate while crippling LLM decode.
 */

#ifndef ACS_PERF_GRAPHICS_MODEL_HH
#define ACS_PERF_GRAPHICS_MODEL_HH

#include "hw/config.hh"
#include "model/graphics.hh"

namespace acs {
namespace perf {

/** Tunable constants of the frame-time proxy. */
struct GraphicsParams
{
    /**
     * Texture reads are latency-bound: the achievable texture
     * bandwidth is outstanding-bytes / memory-latency, independent of
     * peak HBM bandwidth once HBM exceeds that concurrency limit
     * (Sec. 5.4: "memory bandwidth utilization is low").
     */
    double textureInflightBytes = 256.0 * 1024;
    double memLatencyS = 700e-9;

    /** Texture hit-rate gained per doubling of L2 from 8 MiB. */
    double cacheHitBase = 0.55;
    double cacheHitPerDoubling = 0.06;
    double cacheHitMax = 0.85;

    /** Fraction of shading that overlaps texture latency. */
    double shadeTextureOverlap = 0.7;

    /** Upscaler matmul FLOPs per output pixel (DLSS-class CNN). */
    double upscaleFlopsPerPixel = 4000.0;
};

/** Per-frame timing breakdown. */
struct FrameResult
{
    double geometryS = 0.0;
    double shadeS = 0.0;
    double textureS = 0.0;
    double rasterS = 0.0;
    double upscaleS = 0.0;
    double frameS = 0.0;

    /** Frames per second. */
    double fps() const;
};

/**
 * Frame-time estimator for one device.
 *
 * Thread-compatible: const after construction.
 */
class GraphicsModel
{
  public:
    explicit GraphicsModel(const hw::HardwareConfig &cfg,
                           const GraphicsParams &params =
                               GraphicsParams{});

    /**
     * Time one frame.
     *
     * @param workload Rendering workload (validated).
     * @param use_tensor_upscaler Run a DLSS-style upscaler on the
     *        systolic arrays (adds upscaleS; requires arrays).
     */
    FrameResult frameTime(const model::GraphicsWorkload &workload,
                          bool use_tensor_upscaler = false) const;

    /** Effective texture-path bandwidth (bytes/s) of the device. */
    double textureBandwidth() const;

    /** Texture hit rate implied by the device's L2 capacity. */
    double textureHitRate() const;

  private:
    hw::HardwareConfig cfg_;
    GraphicsParams params_;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_GRAPHICS_MODEL_HH
