#include "vector_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acs {
namespace perf {

VectorModel::VectorModel(const hw::HardwareConfig &cfg,
                         const PerfParams &params)
    : cfg_(cfg), params_(params)
{
    cfg_.validate();
    globalBufBandwidth_ =
        MatmulModel::globalBufferBandwidth(cfg_, params_);
}

VectorTiming
VectorModel::time(const model::Op &op) const
{
    if (op.kind != model::OpKind::VECTOR)
        fatal("VectorModel::time requires a VECTOR op: " + op.name);

    VectorTiming t;
    t.computeS = op.flops / cfg_.peakVectorFlops();

    const int passes =
        params_.modelMultiPassVector ? std::max(1, op.memoryPasses) : 1;
    const double bytes = op.inputBytes * passes + op.outputBytes;
    t.servedByGlobalBuffer =
        bytes <= cfg_.l2Bytes * params_.l2BlockingFraction;
    const double bw = t.servedByGlobalBuffer
                          ? globalBufBandwidth_ * params_.l2Efficiency
                          : cfg_.memBandwidth * params_.memEfficiency;
    t.memoryS = bytes / bw;

    t.totalS = std::max(t.computeS, t.memoryS) + params_.kernelOverheadS;
    // Argmax over component times (ties prefer compute), mirroring the
    // bound attribution in MatmulModel::time.
    t.bound = t.computeS >= t.memoryS
                  ? Bound::COMPUTE
                  : (t.servedByGlobalBuffer ? Bound::GLOBAL_BUFFER
                                            : Bound::HBM);
    return t;
}

} // namespace perf
} // namespace acs
