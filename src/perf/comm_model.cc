#include "comm_model.hh"

#include "common/logging.hh"

namespace acs {
namespace perf {

CommModel::CommModel(const hw::HardwareConfig &cfg,
                     const PerfParams &params)
    : cfg_(cfg), params_(params)
{
    cfg_.validate();
}

CommTiming
CommModel::time(const model::Op &op, int tensor_parallel) const
{
    if (op.kind != model::OpKind::ALLREDUCE)
        fatal("CommModel::time requires an ALLREDUCE op: " + op.name);
    fatalIf(tensor_parallel < 1,
            "CommModel::time: tensor_parallel must be >= 1");

    CommTiming t;
    if (tensor_parallel == 1)
        return t;

    fatalIf(cfg_.deviceBandwidth() <= 0.0,
            "allreduce on a device with no interconnect: " + cfg_.name);

    const double p = tensor_parallel;
    const double volume = 2.0 * (p - 1.0) / p * op.commBytes;
    // Aggregate bidirectional bandwidth -> one direction carries half.
    const double link_bw = cfg_.deviceBandwidth() / 2.0 *
                           params_.interconnectEfficiency;
    t.wireS = volume / link_bw;
    t.latencyS = 2.0 * (p - 1.0) * params_.allreduceStepLatencyS;
    t.totalS = t.wireS + t.latencyS;
    return t;
}

} // namespace perf
} // namespace acs
