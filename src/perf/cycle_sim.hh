/**
 * @file
 * Event-driven cycle-level GEMM simulation.
 *
 * The third rung of the GEMM-fidelity ladder (docs/PERF.md): where
 * MatmulModel computes a closed-form roofline and the tile simulator
 * walks wave-granular schedules, the cycle simulator models each
 * systolic array's tile pipeline in integer core clocks — explicit
 * memory request/response traffic against banked DRAM with bounded
 * outstanding requests per array, a shared global-buffer fill pipe,
 * double-buffered scratchpad fills overlapping compute (serialized
 * when the tile working set exceeds the local buffer), and systolic
 * prologue/drain per tile. It exists to see the effects the closed
 * forms cannot: DRAM bank contention, scratchpad capacity stalls, and
 * fill/compute overlap truncation.
 *
 * A naive per-cycle walk of this model is 10^3-10^4x slower than
 * TILE_SIM; three layers make it sweep-capable:
 *
 *  - event coalescing: advance straight to the earliest pending
 *    pipeline transition and drain all same-cycle completions in one
 *    canonical pass (`CycleEngine::COALESCED`), instead of polling
 *    every array every cycle (`CycleEngine::LEGACY_TICK`, kept as the
 *    bit-exact reference);
 *  - per-tile-class replay: after warmup the tile stream is periodic
 *    — interior/edge/corner classes recur with a fixed column phase —
 *    so the engine snapshots the relative machine state at tile
 *    boundaries, detects a repeating period, and fast-forwards whole
 *    periods by pure time translation (run-length contention
 *    correction) instead of re-simulating identical tiles;
 *  - cross-design memoization: MatmulModel::time routes CYCLE_SIM
 *    results through perf::GemmCache under a mode-aware key.
 *
 * All timing state is integer cycles, so the coalesced engine (replay
 * on or off) is bit-identical to LEGACY_TICK — cycle counts and every
 * stall tally — which tests/test_cycle_sim.cpp pins with the same
 * randomized property pattern that guards TILE_SIM's two engines.
 */

#ifndef ACS_PERF_CYCLE_SIM_HH
#define ACS_PERF_CYCLE_SIM_HH

#include <cstdint>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/**
 * Scalar result of one cycle-simulated GEMM.
 *
 * Every cycle field is an exact integer tally shared by both engines;
 * totalS is derived from `cycles` alone, so it inherits the bit-exact
 * contract.
 */
struct CycleStats
{
    long tileM = 0;
    long tileN = 0;
    std::int64_t totalTiles = 0; //!< tile jobs scheduled

    /** Makespan in core clocks (last tile's compute drain). */
    std::int64_t cycles = 0;

    /** GEMM latency: cycles / clock + kernel launch overhead. */
    double totalS = 0.0;

    // --- Stall breakdown (cycle tallies summed over arrays) ----------
    std::int64_t computeBusyCycles = 0; //!< systolic arrays computing
    std::int64_t fillStallCycles = 0;   //!< compute idle awaiting operands
    std::int64_t dramQueueCycles = 0;   //!< requests queued on busy banks
    std::int64_t l2QueueCycles = 0;     //!< fills queued on the L2 pipe
    std::int64_t spadSerialCycles = 0;  //!< overlap lost to spad capacity

    /** Whether the double-buffered fill/compute overlap fit in L1. */
    bool overlapOk = true;

    // --- Engine accounting (also bit-exact across engines) -----------
    std::int64_t events = 0;        //!< pipeline transitions processed
    std::int64_t replayedTiles = 0; //!< tiles fast-forwarded by replay
};

/**
 * Simulate one GEMM in integer core clocks.
 *
 * Uses the same tile-selection policy (chooseTiles) and blocked HBM
 * traffic model as MatmulModel/TILE_SIM so the three modes are
 * directly comparable; derives latency from the explicit per-array
 * tile pipeline. `params.cycleEngine` selects the event loop and
 * `params.cycleReplay` the periodic fast-forward; all combinations
 * produce bit-identical CycleStats.
 *
 * @param cfg    Device (validated).
 * @param op     Operator with kind == MATMUL (fatal otherwise).
 * @param params Model constants.
 */
CycleStats simulateGemmCycles(const hw::HardwareConfig &cfg,
                              const model::Op &op,
                              const PerfParams &params = PerfParams{});

} // namespace perf
} // namespace acs

#endif // ACS_PERF_CYCLE_SIM_HH
