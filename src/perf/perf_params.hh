/**
 * @file
 * Tunable constants of the analytical performance model.
 */

#ifndef ACS_PERF_PERF_PARAMS_HH
#define ACS_PERF_PERF_PARAMS_HH

#include <string>

namespace acs {
namespace perf {

class GemmCache; // cross-design GEMM timing cache (gemm_cache.hh)

/** How GEMM latency is derived. */
enum class GemmMode
{
    ANALYTIC,  //!< closed-form roofline (fast; the default)
    TILE_SIM,  //!< wave-level schedule simulation (detailed)
    CYCLE_SIM, //!< event-driven cycle-level core model (most detailed)
};

/** Mode name as accepted by the --gemm-mode flag. */
inline const char *
toString(GemmMode mode)
{
    switch (mode) {
      case GemmMode::ANALYTIC:  return "analytic";
      case GemmMode::TILE_SIM:  return "tile_sim";
      case GemmMode::CYCLE_SIM: return "cycle_sim";
    }
    return "?";
}

/**
 * The accepted --gemm-mode values, for use in error messages. Kept
 * next to parseGemmMode so a new mode cannot be parsed without also
 * being advertised.
 */
inline const char *
gemmModeNames()
{
    return "analytic, tile_sim, or cycle_sim";
}

/**
 * Parse a --gemm-mode value (one of gemmModeNames()).
 *
 * @return false (leaving @p out untouched) on an unknown name.
 */
inline bool
parseGemmMode(const std::string &name, GemmMode *out)
{
    if (name == "analytic") {
        *out = GemmMode::ANALYTIC;
        return true;
    }
    if (name == "tile_sim") {
        *out = GemmMode::TILE_SIM;
        return true;
    }
    if (name == "cycle_sim") {
        *out = GemmMode::CYCLE_SIM;
        return true;
    }
    return false;
}

/**
 * Which implementation runs the TILE_SIM wave schedule.
 *
 * Both engines implement the same physics and produce bit-identical
 * traces (tests/test_gemm_property.cpp); they differ only in cost.
 */
enum class TileSimEngine
{
    /**
     * Closed-form wave-class aggregation (the default): every tile in
     * a wave falls into one of <= 4 shape classes, so a wave's
     * slowest-tile time and fetch bytes come from O(1) class counts
     * instead of an O(arrays) tile loop. See docs/PERF.md.
     */
    AGGREGATED,

    /**
     * The original per-tile wave walk, O(total tiles). Retained as the
     * reference for the property suite and the `microbench
     * --gemm-only` baseline; never the right choice for sweeps.
     */
    LEGACY_WALK,
};

/**
 * Which event loop runs the CYCLE_SIM core model.
 *
 * Both engines call the same per-array transition function and produce
 * bit-identical cycle counts and stall breakdowns
 * (tests/test_cycle_sim.cpp); they differ only in how they find the
 * next cycle with work in it.
 */
enum class CycleEngine
{
    /**
     * Event-coalesced loop (the default): advance straight to the
     * earliest pending transition and drain every same-cycle
     * completion in one canonical pass, skipping the provably idle
     * cycles in between. With tile-class replay (cycleReplay) this is
     * what makes cycle-level accuracy sweep-capable. See docs/PERF.md.
     */
    COALESCED,

    /**
     * The naive per-cycle tick: visit every cycle from 0 and poll all
     * arrays, ~10^3-10^4x slower. Retained as the reference for the
     * property suite and the `microbench --cycle-only` baseline; never
     * the right choice for sweeps.
     */
    LEGACY_TICK,
};

/**
 * Efficiency and microarchitectural constants.
 *
 * Defaults are calibrated so the modeled A100 reproduces the paper's
 * first-order behaviour (see DESIGN.md). The ablation bench
 * (bench/abl_perf_model) sweeps the modeling switches.
 */
struct PerfParams
{
    /** GEMM latency derivation (closed form vs wave simulation). */
    GemmMode gemmMode = GemmMode::ANALYTIC;

    /** TILE_SIM implementation (aggregated fast path vs legacy walk). */
    TileSimEngine tileSimEngine = TileSimEngine::AGGREGATED;

    /** CYCLE_SIM event loop (coalesced fast path vs naive tick). */
    CycleEngine cycleEngine = CycleEngine::COALESCED;

    /**
     * Let the coalesced CYCLE_SIM engine detect a periodic steady
     * state and fast-forward whole periods of identical tile activity
     * (per-tile-class replay with run-length contention correction)
     * instead of re-simulating them. Bit-exact — the replayed span is
     * a time-translated copy of a simulated one — so the switch exists
     * for A/B verification only (tests assert on/off equality).
     * Ignored by LEGACY_TICK.
     */
    bool cycleReplay = true;

    /**
     * DRAM bank timelines the CYCLE_SIM memory system models. Fill
     * requests interleave across banks; a request targeting a busy
     * bank queues behind it (the dramQueueCycles stall bucket).
     */
    int cycleDramBanks = 16;

    /** CYCLE_SIM memory request granule (bytes per DRAM request). */
    long cycleDramReqBytes = 4096;

    /**
     * Bounded outstanding DRAM requests per systolic array: a fill
     * issues its requests in windows of this size and waits for the
     * window to drain before issuing the next (request/response flow
     * control).
     */
    int cycleDramWindow = 4;

    /**
     * Charge vector kernels their multi-pass traffic (softmax makes
     * three passes over its tensor, normalization two). Off by
     * default: the calibrated baselines assume fused single-pass
     * kernels; the ablation bench quantifies the difference.
     */
    bool modelMultiPassVector = false;
    /** Achievable fraction of peak HBM bandwidth. */
    double memEfficiency = 0.85;

    /** Achievable fraction of peak global-buffer bandwidth. */
    double l2Efficiency = 0.9;

    /**
     * Global buffer bandwidth: bytes/cycle per systolic-array FPU
     * (the buffer is banked to feed the compute, so bandwidth scales
     * with peak tensor throughput — equal-TPP designs have equal L2
     * bandwidth and differ only in the traffic their tiling creates).
     * 1/16 B/cycle/FPU gives the modeled A100 ~9.7 TB/s, keeping
     * Table-3-class caches compute-bound while small (32-64 KiB) L1s
     * become global-buffer bound, as in the paper's Fig. 12.
     */
    double l2BytesPerCyclePerFpu = 0.0625;

    /** Fraction of L2 usable as a blocking buffer (rest is staging). */
    double l2BlockingFraction = 0.5;

    /** Fraction of L1 usable for tile operands (double buffering). */
    double l1TileFraction = 0.5;

    /**
     * Fixed per-kernel launch + pipeline-ramp overhead (seconds).
     *
     * Dominant for the tiny decode kernels (batch-32 GEMVs finish in
     * tens of microseconds), negligible for prefill kernels. This is
     * what keeps decode latency from scaling perfectly with HBM
     * bandwidth, as in the paper's Fig. 6/7 optimized-design deltas.
     */
    double kernelOverheadS = 20e-6;

    /** Per-hop latency of one allreduce ring step (seconds). */
    double allreduceStepLatencyS = 2e-6;

    /** Achievable fraction of peak interconnect bandwidth. */
    double interconnectEfficiency = 0.8;

    /** Model systolic pipeline fill/drain loss (ablation switch). */
    bool modelPipelineFill = true;

    /**
     * Fraction of the per-wave fill/drain (DIMX + DIMY cycles) hidden
     * by double-buffered weights and drain/fill overlap. 0 exposes the
     * full fill each wave; 0.875 leaves 1/8 exposed (calibrated so the
     * modeled A100 reaches ~90% prefill utilization, matching the
     * paper's "near peak FLOPs during prefill" observation).
     */
    double pipelineFillOverlap = 0.875;

    /** Model L1-capacity-limited tiling (ablation switch). */
    bool modelTiling = true;

    /**
     * Memoize op timings by shape within one simulation run: identical
     * GEMM/vector shapes (e.g. the two norms, the two residual adds,
     * the two allreduces of a decoder layer) are timed once and the
     * cached timing reused. Bit-exact — the models are deterministic —
     * so this is a pure speedup; the switch exists for A/B testing
     * (tests/test_perf.cpp asserts on/off equality).
     */
    bool memoizeOps = true;

    /** Model L2-capacity GEMM blocking for HBM traffic (ablation). */
    bool modelL2Blocking = true;

    /**
     * Cross-design simulated-GEMM timing cache (non-owning; null =
     * none installed), consulted by the TILE_SIM and CYCLE_SIM modes
     * (entries are keyed by mode — see fingerprintGemmParams — so the
     * two never alias). Where the op-shape memo above reuses timings
     * *within* one design's simulation run, this handle reuses them
     * *across* designs whose canonical projection matches (see
     * gemm_cache.hh) — sweep axes that never touch die-local GEMM
     * timing (device interconnect bandwidth) then re-simulate
     * nothing. Bit-exact: hits return the exact MatmulTiming the
     * miss path computed. The holder owns the cache and guarantees
     * it outlives every model constructed from these params.
     */
    GemmCache *gemmCache = nullptr;

    /**
     * Let sweep drivers (dse::DesignEvaluator::evaluateStream and
     * evaluatePlanIndices) evaluate ANALYTIC-mode designs through the
     * SoA batch kernel (perf/batch_eval.hh): one structure-of-arrays
     * pass per operator over a whole chunk of designs, with
     * auto-vectorizable inner loops, instead of one InferenceSimulator
     * per design. Bit-identical to the scalar path — the kernel
     * mirrors MatmulModel/VectorModel/CommModel expression for
     * expression (tests/test_batch_eval.cpp pins this) — so the
     * switch exists for A/B benchmarking only. The batched path skips
     * per-op trace spans and bound tallies; use the scalar path (or
     * runSweep) when per-op observability matters.
     */
    bool batchAnalyticEval = true;

    /**
     * Let sweep drivers (dse::DesignEvaluator's evaluateAll,
     * evaluateAllParallel, and evaluateStream) hoist a sweep-scoped
     * GemmCache automatically when gemmCache is null and gemmMode is
     * a simulating one (TILE_SIM or CYCLE_SIM). Off is for
     * A/B verification (`--gemm-cache=off` on the DSE benches):
     * outputs are bit-identical either way, only the speed differs.
     */
    bool cacheTileSimGemms = true;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_PERF_PARAMS_HH
