#include "tile_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "perf/matmul_model.hh"

namespace acs {
namespace perf {

namespace {

constexpr double ELEM_BYTES = 2.0;

long
ceilDivL(long a, long b)
{
    return (a + b - 1) / b;
}

} // anonymous namespace

long
GemmTrace::totalTiles() const
{
    long total = 0;
    for (const WaveRecord &w : waves)
        total += w.tilesInWave;
    return total;
}

GemmTrace
simulateGemm(const hw::HardwareConfig &cfg, const model::Op &op,
             const PerfParams &params)
{
    cfg.validate();
    fatalIf(op.kind != model::OpKind::MATMUL,
            "simulateGemm requires a MATMUL op: " + op.name);
    const auto &mm = op.mm;
    fatalIf(mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1,
            "simulateGemm: degenerate GEMM dims in " + op.name);

    const obs::TraceSpan span("perf.tile_sim");
    GemmTrace trace;
    const TileChoice tiles = chooseTiles(cfg, mm, params);
    trace.tileM = tiles.tileM;
    trace.tileN = tiles.tileN;

    const long m_tiles = ceilDivL(mm.m, tiles.tileM);
    const long n_tiles = ceilDivL(mm.n, tiles.tileN);
    const long jobs = mm.batchCount * m_tiles * n_tiles;
    const long arrays = cfg.totalSystolicArrays();
    const long waves = ceilDivL(jobs, arrays);

    // Remainder tile shapes at the problem edges.
    const long m_rem = mm.m - (m_tiles - 1) * tiles.tileM;
    const long n_rem = mm.n - (n_tiles - 1) * tiles.tileN;

    const double exposed_fill =
        params.modelPipelineFill
            ? (1.0 - params.pipelineFillOverlap) *
                  (cfg.systolicDimX + cfg.systolicDimY)
            : 0.0;

    // Per-tile systolic time for a (tm x tn) tile over the full k.
    auto tile_compute_s = [&](long tm, long tn) {
        const double k_waves =
            static_cast<double>(ceilDivL(mm.k, cfg.systolicDimX)) *
            ceilDivL(tn, cfg.systolicDimY);
        const double cycles = k_waves * (tm + exposed_fill);
        return cycles / cfg.clockHz;
    };

    // Amortized HBM service per tile (streaming is smooth across the
    // whole GEMM; blocking decides total traffic).
    const double hbm_total = blockedHbmTraffic(cfg, op, params);
    const double hbm_bw = cfg.memBandwidth * params.memEfficiency;
    const double hbm_per_tile =
        hbm_total / static_cast<double>(jobs) / hbm_bw;

    const double l2_bw =
        params.l2BytesPerCyclePerFpu *
        static_cast<double>(cfg.totalSystolicFpus()) * cfg.clockHz *
        params.l2Efficiency;

    // Walk the schedule. Jobs are assigned round-robin in
    // (batch, mi, ni) order; a wave's compute time is its slowest
    // tile and its fetch traffic is the operand slabs it touches
    // (lanes of a core share the local buffer, so a B slab is fetched
    // once per lane group working the same column strip).
    double l2_free = 0.0, hbm_free = 0.0, compute_free = 0.0;
    long job = 0;
    trace.waves.reserve(static_cast<std::size_t>(waves));
    for (long w = 0; w < waves; ++w) {
        WaveRecord rec;
        rec.waveIndex = w;
        rec.tilesInWave = std::min<long>(arrays, jobs - job);

        double slowest = 0.0;
        double l2_bytes = 0.0;
        const long lanes = cfg.lanesPerCore;
        for (long i = 0; i < rec.tilesInWave; ++i, ++job) {
            const long flat = job % (m_tiles * n_tiles);
            const long mi = flat / n_tiles;
            const long ni = flat % n_tiles;
            const long tm = mi + 1 == m_tiles ? m_rem : tiles.tileM;
            const long tn = ni + 1 == n_tiles ? n_rem : tiles.tileN;
            slowest = std::max(slowest, tile_compute_s(tm, tn));
            // A slab per tile; B slab shared across the core's lanes.
            l2_bytes += (static_cast<double>(tm) * mm.k +
                         static_cast<double>(mm.k) * tn / lanes) *
                        ELEM_BYTES;
        }
        rec.computeS = slowest;
        rec.globalBufS = l2_bytes / l2_bw;
        rec.hbmS = hbm_per_tile * rec.tilesInWave;

        // Double buffering: this wave's operands were fetched while
        // the previous wave computed; the fetch channels are shared
        // pipes, so waves queue on them.
        const double l2_done = l2_free + rec.globalBufS;
        const double hbm_done = hbm_free + rec.hbmS;
        l2_free = l2_done;
        hbm_free = hbm_done;
        rec.startS = std::max({compute_free, l2_done, hbm_done});
        rec.endS = rec.startS + rec.computeS;
        compute_free = rec.endS;
        trace.waves.push_back(rec);
    }
    trace.totalS = (trace.waves.empty() ? 0.0 : trace.waves.back().endS) +
                   params.kernelOverheadS;
    if (obs::enabled()) {
        obs::counterAdd("perf.tile_sim.gemms");
        obs::counterAdd("perf.tile_sim.waves",
                        static_cast<std::uint64_t>(waves));
    }
    return trace;
}

} // namespace perf
} // namespace acs
