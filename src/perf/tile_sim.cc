#include "tile_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "perf/matmul_model.hh"

namespace acs {
namespace perf {

namespace {

constexpr double ELEM_BYTES = 2.0;

long
ceilDivL(long a, long b)
{
    return (a + b - 1) / b;
}

/**
 * Tile shape classes of a wave schedule, in the canonical combine
 * order. Fixing the order fixes the floating-point summation order of
 * a wave's operand bytes, which is what lets the aggregated fast path
 * and the legacy per-tile walk produce bit-identical traces.
 */
enum TileClass : int
{
    INTERIOR = 0, //!< full (tileM x tileN) tile
    M_EDGE,       //!< last tile row: (m_rem x tileN)
    N_EDGE,       //!< last tile column: (tileM x n_rem)
    CORNER,       //!< last row and column: (m_rem x n_rem)
    NUM_CLASSES,
};

/** Per-wave operand bytes from class tallies (canonical order). */
double
waveL2Bytes(const long count[NUM_CLASSES], const double term[NUM_CLASSES])
{
    double bytes = 0.0;
    for (int c = 0; c < NUM_CLASSES; ++c) {
        if (count[c] > 0)
            bytes += static_cast<double>(count[c]) * term[c];
    }
    return bytes;
}

/** Slowest tile's systolic time from class tallies (max, order-free). */
double
waveComputeS(const long count[NUM_CLASSES], const double classS[NUM_CLASSES])
{
    double slowest = 0.0;
    for (int c = 0; c < NUM_CLASSES; ++c) {
        if (count[c] > 0)
            slowest = std::max(slowest, classS[c]);
    }
    return slowest;
}

/** Per-wave derived quantities fed into the scheduling recurrence. */
struct WaveSig
{
    long tiles = 0;
    double computeS = 0.0;
    double globalBufS = 0.0;
    double hbmS = 0.0;
};

/**
 * Geometry and per-class constants of one GEMM's wave schedule.
 *
 * A GEMM schedules `batchCount` copies of an (m_tiles x n_tiles) tile
 * grid round-robin in (batch, mi, ni) order across the device's
 * systolic arrays. Only four distinct tile shapes exist — the grid
 * interior plus the m/n remainder edges and their corner — so any
 * contiguous job range is fully described by four class counts, and
 * those counts follow in O(1) from closed-form prefix counts over the
 * flat job index.
 */
struct WaveModel
{
    // Geometry.
    long mTiles, nTiles, grid, jobs, arrays, waves;
    long mRem, nRem;

    // Per-class constants.
    double classComputeS[NUM_CLASSES];
    double l2Term[NUM_CLASSES];
    double hbmPerTileS;
    double l2Bw;

    WaveModel(const hw::HardwareConfig &cfg, const model::Op &op,
              const PerfParams &params, const TileChoice &tiles)
    {
        const auto &mm = op.mm;
        mTiles = ceilDivL(mm.m, tiles.tileM);
        nTiles = ceilDivL(mm.n, tiles.tileN);
        grid = mTiles * nTiles;
        jobs = mm.batchCount * grid;
        arrays = cfg.totalSystolicArrays();
        waves = ceilDivL(jobs, arrays);

        // Remainder tile shapes at the problem edges.
        mRem = mm.m - (mTiles - 1) * tiles.tileM;
        nRem = mm.n - (nTiles - 1) * tiles.tileN;

        const double exposed_fill =
            params.modelPipelineFill
                ? (1.0 - params.pipelineFillOverlap) *
                      (cfg.systolicDimX + cfg.systolicDimY)
                : 0.0;

        // Per-tile systolic time for a (tm x tn) tile over the full k.
        auto tile_compute_s = [&](long tm, long tn) {
            const double k_waves =
                static_cast<double>(ceilDivL(mm.k, cfg.systolicDimX)) *
                ceilDivL(tn, cfg.systolicDimY);
            const double cycles = k_waves * (tm + exposed_fill);
            return cycles / cfg.clockHz;
        };
        // A slab per tile; B slab shared across the core's lanes.
        const long lanes = cfg.lanesPerCore;
        auto l2_term = [&](long tm, long tn) {
            return (static_cast<double>(tm) * mm.k +
                    static_cast<double>(mm.k) * tn / lanes) *
                   ELEM_BYTES;
        };
        const long shape[NUM_CLASSES][2] = {
            {tiles.tileM, tiles.tileN}, // INTERIOR
            {mRem, tiles.tileN},        // M_EDGE
            {tiles.tileM, nRem},        // N_EDGE
            {mRem, nRem},               // CORNER
        };
        for (int c = 0; c < NUM_CLASSES; ++c) {
            classComputeS[c] = tile_compute_s(shape[c][0], shape[c][1]);
            l2Term[c] = l2_term(shape[c][0], shape[c][1]);
        }

        // Amortized HBM service per tile (streaming is smooth across
        // the whole GEMM; blocking decides total traffic).
        const double hbm_total = blockedHbmTraffic(cfg, op, params);
        const double hbm_bw = cfg.memBandwidth * params.memEfficiency;
        hbmPerTileS = hbm_total / static_cast<double>(jobs) / hbm_bw;

        l2Bw = params.l2BytesPerCyclePerFpu *
               static_cast<double>(cfg.totalSystolicFpus()) * cfg.clockHz *
               params.l2Efficiency;
    }

    /**
     * Class counts over the job prefix [0, x).
     *
     * Within one grid a flat index f = mi * nTiles + ni is in the last
     * tile column iff f % nTiles == nTiles - 1 (one per started row),
     * in the last row iff f >= (mTiles - 1) * nTiles, and is the
     * corner iff f == grid - 1 (so exactly one per *completed* grid).
     * Edge classes subtract the shared corner; the interior is what
     * remains.
     */
    void jobPrefix(long x, long out[NUM_CLASSES]) const
    {
        const long cycles = x / grid;
        const long rem = x % grid;
        const long last_col = cycles * mTiles + rem / nTiles;
        const long last_row =
            cycles * nTiles + std::max<long>(0, rem - (mTiles - 1) * nTiles);
        const long corner = cycles;
        out[CORNER] = corner;
        out[N_EDGE] = last_col - corner;
        out[M_EDGE] = last_row - corner;
        out[INTERIOR] = x - last_col - last_row + corner;
    }

    /** The O(1) signature of wave w. */
    WaveSig wave(long w) const
    {
        const long a = w * arrays;
        const long b = std::min(a + arrays, jobs);
        long pa[NUM_CLASSES], pb[NUM_CLASSES], count[NUM_CLASSES];
        jobPrefix(a, pa);
        jobPrefix(b, pb);
        for (int c = 0; c < NUM_CLASSES; ++c)
            count[c] = pb[c] - pa[c];

        WaveSig sig;
        sig.tiles = b - a;
        sig.computeS = waveComputeS(count, classComputeS);
        sig.globalBufS = waveL2Bytes(count, l2Term) / l2Bw;
        sig.hbmS = hbmPerTileS * sig.tiles;
        return sig;
    }
};

/**
 * Step the double-buffering recurrence over all waves.
 *
 * The recurrence itself stays sequential — ~5 flops per wave, and
 * floating-point addition has no exact closed form under repetition —
 * but each wave's signature costs O(1), and when every wave starts at
 * the same offset inside the tile grid (arrays % grid == 0: decode
 * GEMMs with grid <= arrays, batch-replicated grids) the signature is
 * computed once and reused for every full wave.
 *
 * @param trace Destination for WaveRecords, or nullptr to skip
 *              materialization entirely (the summary path).
 */
GemmSummary
runAggregated(const WaveModel &wm, const PerfParams &params, GemmTrace *trace)
{
    const bool uniform = wm.arrays % wm.grid == 0;
    double l2_free = 0.0, hbm_free = 0.0, compute_free = 0.0;
    WaveSig sig;
    bool have_sig = false;
    if (trace)
        trace->waves.reserve(static_cast<std::size_t>(wm.waves));
    for (long w = 0; w < wm.waves; ++w) {
        const bool full = (w + 1) * wm.arrays <= wm.jobs;
        if (!have_sig || !uniform || !full) {
            sig = wm.wave(w);
            have_sig = uniform && full;
        }

        // Double buffering: this wave's operands were fetched while
        // the previous wave computed; the fetch channels are shared
        // pipes, so waves queue on them.
        const double l2_done = l2_free + sig.globalBufS;
        const double hbm_done = hbm_free + sig.hbmS;
        l2_free = l2_done;
        hbm_free = hbm_done;
        const double start = std::max({compute_free, l2_done, hbm_done});
        const double end = start + sig.computeS;
        compute_free = end;

        if (trace) {
            WaveRecord rec;
            rec.waveIndex = w;
            rec.tilesInWave = sig.tiles;
            rec.computeS = sig.computeS;
            rec.globalBufS = sig.globalBufS;
            rec.hbmS = sig.hbmS;
            rec.startS = start;
            rec.endS = end;
            trace->waves.push_back(rec);
        }
    }

    GemmSummary summary;
    summary.waves = wm.waves;
    summary.totalTiles = wm.jobs;
    summary.totalS =
        (wm.waves == 0 ? 0.0 : compute_free) + params.kernelOverheadS;
    return summary;
}

/**
 * The original per-tile wave walk, retained as the O(total tiles)
 * reference implementation. Jobs are assigned round-robin in
 * (batch, mi, ni) order; a wave's compute time is its slowest tile
 * and its fetch traffic is the operand slabs it touches. The walk
 * classifies every tile individually but combines each wave's operand
 * bytes from the resulting class tallies via the same canonical-order
 * helper as the fast path, so the two paths are bit-comparable.
 */
GemmSummary
runLegacyWalk(const WaveModel &wm, const PerfParams &params, GemmTrace *trace)
{
    double l2_free = 0.0, hbm_free = 0.0, compute_free = 0.0;
    long job = 0;
    double last_end = 0.0;
    if (trace)
        trace->waves.reserve(static_cast<std::size_t>(wm.waves));
    for (long w = 0; w < wm.waves; ++w) {
        const long tiles_in_wave = std::min<long>(wm.arrays, wm.jobs - job);

        double slowest = 0.0;
        long count[NUM_CLASSES] = {0, 0, 0, 0};
        for (long i = 0; i < tiles_in_wave; ++i, ++job) {
            const long flat = job % wm.grid;
            const long mi = flat / wm.nTiles;
            const long ni = flat % wm.nTiles;
            const bool m_edge = mi + 1 == wm.mTiles;
            const bool n_edge = ni + 1 == wm.nTiles;
            const int cls = m_edge ? (n_edge ? CORNER : M_EDGE)
                                   : (n_edge ? N_EDGE : INTERIOR);
            slowest = std::max(slowest, wm.classComputeS[cls]);
            ++count[cls];
        }

        const double global_buf_s = waveL2Bytes(count, wm.l2Term) / wm.l2Bw;
        const double hbm_s = wm.hbmPerTileS * tiles_in_wave;
        const double l2_done = l2_free + global_buf_s;
        const double hbm_done = hbm_free + hbm_s;
        l2_free = l2_done;
        hbm_free = hbm_done;
        const double start = std::max({compute_free, l2_done, hbm_done});
        const double end = start + slowest;
        compute_free = end;
        last_end = end;

        if (trace) {
            WaveRecord rec;
            rec.waveIndex = w;
            rec.tilesInWave = tiles_in_wave;
            rec.computeS = slowest;
            rec.globalBufS = global_buf_s;
            rec.hbmS = hbm_s;
            rec.startS = start;
            rec.endS = end;
            trace->waves.push_back(rec);
        }
    }

    GemmSummary summary;
    summary.waves = wm.waves;
    summary.totalTiles = wm.jobs;
    summary.totalS =
        (wm.waves == 0 ? 0.0 : last_end) + params.kernelOverheadS;
    return summary;
}

/** Shared validation + dispatch for both entry points. */
GemmSummary
simulate(const hw::HardwareConfig &cfg, const model::Op &op,
         const PerfParams &params, GemmTrace *trace)
{
    cfg.validate();
    fatalIf(op.kind != model::OpKind::MATMUL,
            "simulateGemm requires a MATMUL op: " + op.name);
    const auto &mm = op.mm;
    fatalIf(mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1,
            "simulateGemm: degenerate GEMM dims in " + op.name);

    const obs::TraceSpan span("perf.tile_sim");
    const TileChoice tiles = chooseTiles(cfg, mm, params);
    const WaveModel wm(cfg, op, params, tiles);

    GemmSummary summary =
        params.tileSimEngine == TileSimEngine::LEGACY_WALK
            ? runLegacyWalk(wm, params, trace)
            : runAggregated(wm, params, trace);
    summary.tileM = tiles.tileM;
    summary.tileN = tiles.tileN;

    if (obs::enabled()) {
        obs::counterAdd("perf.tile_sim.gemms");
        obs::counterAdd("perf.tile_sim.waves",
                        static_cast<std::uint64_t>(summary.waves));
    }
    return summary;
}

} // anonymous namespace

GemmTrace
simulateGemm(const hw::HardwareConfig &cfg, const model::Op &op,
             const PerfParams &params)
{
    GemmTrace trace;
    const GemmSummary summary = simulate(cfg, op, params, &trace);
    trace.tileM = summary.tileM;
    trace.tileN = summary.tileN;
    trace.totalS = summary.totalS;
    trace.scheduledTiles = summary.totalTiles;
    return trace;
}

GemmSummary
simulateGemmSummary(const hw::HardwareConfig &cfg, const model::Op &op,
                    const PerfParams &params)
{
    return simulate(cfg, op, params, nullptr);
}

} // namespace perf
} // namespace acs
