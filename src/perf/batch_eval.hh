/**
 * @file
 * SoA batch evaluation of the analytic performance model.
 *
 * The scalar path (InferenceSimulator -> MatmulModel/VectorModel/
 * CommModel) evaluates one design at a time: every op re-loads the
 * same shape constants and branches per design. At streaming-DSE
 * rates the model arithmetic itself becomes the hot path, and its
 * structure is embarrassingly data-parallel across designs — the op
 * shapes are shared by construction (one layer graph per sweep), only
 * the hardware parameters vary. This file restructures that hot path
 * into structure-of-arrays kernels: one call times one operator for N
 * designs with contiguous, branch-light, auto-vectorizable inner
 * loops.
 *
 * Bit-identity contract: every kernel mirrors its scalar model
 * expression for expression, in the same evaluation order, so each
 * lane's result is the exact double the scalar model produces
 * (tests/test_batch_eval.cpp pins this with EXPECT_DOUBLE_EQ across
 * the fig06 op shapes). ANALYTIC mode only — TILE_SIM latencies come
 * from the wave scheduler, which is per-design by nature and already
 * served by perf::GemmCache.
 */

#ifndef ACS_PERF_BATCH_EVAL_HH
#define ACS_PERF_BATCH_EVAL_HH

#include <cstddef>
#include <vector>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/**
 * Structure-of-arrays view of N hardware designs: exactly the derived
 * quantities the analytic op models consume, precomputed once per
 * design at push() with the same expressions the scalar models use
 * (so downstream arithmetic sees identical doubles).
 */
struct DesignBatch
{
    std::vector<double> clockHz;
    std::vector<double> l1BytesPerLane;    //!< cfg.l1BytesPerLane()
    std::vector<double> l2Bytes;
    std::vector<double> memBandwidth;
    std::vector<double> deviceBandwidth;   //!< cfg.deviceBandwidth()
    std::vector<double> peakTensorFlops;   //!< cfg.peakTensorTops()*1e12
    std::vector<double> peakVectorFlops;   //!< cfg.peakVectorFlops()
    std::vector<double> systolicFpus;      //!< cfg.totalSystolicFpus()
    std::vector<double> arraysD;           //!< totalSystolicArrays()
    std::vector<long> arraysL;             //!< same, integer form
    std::vector<long> systolicDimX;
    std::vector<long> systolicDimY;
    std::vector<long> lanesPerCore;

    std::size_t size() const { return clockHz.size(); }
    void clear();
    void reserve(std::size_t n);

    /** Append one design (validated by the caller, as plan.point does). */
    void push(const hw::HardwareConfig &cfg);
};

/**
 * Time one MATMUL op for every design in @p batch (ANALYTIC roofline;
 * mirrors MatmulModel::time minus the TILE_SIM branch).
 *
 * @param out totalS per design, length batch.size().
 */
void batchMatmulTotalS(const DesignBatch &batch, const model::Op &op,
                       const PerfParams &params, double *out);

/** Time one VECTOR op for every design (mirrors VectorModel::time). */
void batchVectorTotalS(const DesignBatch &batch, const model::Op &op,
                       const PerfParams &params, double *out);

/**
 * Time one ALLREDUCE op for every design (mirrors CommModel::time).
 * Zero at tensor_parallel == 1; fatal on a zero-interconnect design
 * otherwise, like the scalar model.
 */
void batchAllreduceTotalS(const DesignBatch &batch, const model::Op &op,
                          int tensor_parallel, const PerfParams &params,
                          double *out);

/**
 * Batched counterpart of InferenceSimulator::simulateLayer +
 * OpShapeMemo: sums per-op latencies of a layer graph across N
 * designs, memoizing repeated op shapes (when params.memoizeOps) so a
 * shape repeated within one evaluation is timed once per batch.
 *
 * Usage per design chunk: reset(), then one layerLatency call per
 * graph (prefill, decode) — the memo spans the calls exactly like the
 * scalar per-run OpShapeMemo spans both phases of one
 * InferenceSimulator::run.
 *
 * Not thread-safe; sweep workers keep one evaluator each.
 */
class BatchEvaluator
{
  public:
    explicit BatchEvaluator(const PerfParams &params) : params_(params) {}

    /** Drop memoized shapes (call when the batch contents change). */
    void reset() { memo_.clear(); }

    /**
     * Accumulate the summed op latency of @p graph into @p out:
     * out[i] += latency of each op in graph order, for every design i
     * of @p batch. The caller zeroes @p out first; the += order
     * matches the scalar `result.latencyS += timing.latencyS` fold,
     * so the final sums are bit-identical to InferenceSimulator's.
     */
    void layerLatency(const model::LayerGraph &graph, int tensor_parallel,
                      const DesignBatch &batch, double *out);

  private:
    struct MemoEntry
    {
        model::Op op; //!< key fields only; the name is ignored
        std::vector<double> latencyS;
    };

    const std::vector<double> *findMemo(const model::Op &op) const;

    PerfParams params_;
    std::vector<MemoEntry> memo_;
    std::vector<double> scratch_;
};

/** True when params route sweep evaluation through the SoA kernels. */
inline bool
batchEvalEligible(const PerfParams &params)
{
    return params.gemmMode == GemmMode::ANALYTIC &&
           params.batchAnalyticEval;
}

} // namespace perf
} // namespace acs

#endif // ACS_PERF_BATCH_EVAL_HH
