/**
 * @file
 * Roofline analysis of a layer graph (Sec. 3.1 background; [81]).
 *
 * Places every operator on the classic roofline: arithmetic intensity
 * (FLOPs per HBM byte) against achieved throughput, with the device's
 * compute and bandwidth ceilings. Reproduces the paper's framing that
 * prefill GEMMs sit right of the ridge (compute-bound, near peak)
 * while decode GEMMs and the softmax/norm operators sit deep in the
 * bandwidth-limited region.
 */

#ifndef ACS_PERF_ROOFLINE_HH
#define ACS_PERF_ROOFLINE_HH

#include <string>
#include <vector>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** One operator placed on the roofline. */
struct RooflinePoint
{
    std::string name;
    double intensity = 0.0;      //!< FLOPs per HBM byte
    double achievedFlops = 0.0;  //!< FLOPs / modeled latency
    double rooflineFlops = 0.0;  //!< ceiling at this intensity
    bool computeBound = false;   //!< right of the ridge point
};

/** Roofline summary of one layer graph on one device. */
struct RooflineAnalysis
{
    double peakFlops = 0.0;      //!< tensor peak (FLOPs/s)
    double memBandwidth = 0.0;   //!< effective HBM bandwidth (B/s)
    double ridgeIntensity = 0.0; //!< peak / bandwidth (FLOPs/B)
    std::vector<RooflinePoint> points;
};

/**
 * Analyze @p graph on @p cfg.
 *
 * Communication ops carry no FLOPs and are skipped; vector ops use
 * the vector peak for their ceiling comparison but are placed on the
 * same chart.
 *
 * @param cfg             Device (validated).
 * @param graph           Operator sequence.
 * @param tensor_parallel TP degree used when timing collectives.
 * @param params          Performance-model constants.
 */
RooflineAnalysis analyzeRoofline(const hw::HardwareConfig &cfg,
                                 const model::LayerGraph &graph,
                                 int tensor_parallel,
                                 const PerfParams &params =
                                     PerfParams{});

} // namespace perf
} // namespace acs

#endif // ACS_PERF_ROOFLINE_HH
