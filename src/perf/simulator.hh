/**
 * @file
 * The per-layer LLM inference simulator (the LLMCompass substitute).
 *
 * Composes the GEMM, vector, and collective models over an operator
 * graph. As in the paper (Sec. 3.2), results are reported for a single
 * decoder layer: TTFT is the prefill latency of one layer, TBT the
 * decode latency of one layer; full-model numbers multiply by layer
 * count (transformer layers are identical).
 */

#ifndef ACS_PERF_SIMULATOR_HH
#define ACS_PERF_SIMULATOR_HH

#include <vector>

#include "hw/config.hh"
#include "model/ops.hh"
#include "model/transformer.hh"
#include "perf/comm_model.hh"
#include "perf/matmul_model.hh"
#include "perf/perf_params.hh"
#include "perf/vector_model.hh"

namespace acs {
namespace perf {

class OpShapeMemo; // per-run op-timing cache (internal to simulator.cc)

/** Multi-device execution configuration. */
struct SystemConfig
{
    /** Megatron-style tensor-parallel degree (>= 1). */
    int tensorParallel = 1;
};

/** Resolved timing of one operator. */
struct OpTiming
{
    std::string name;
    model::OpKind kind = model::OpKind::VECTOR;
    double latencyS = 0.0;
    Bound bound = Bound::COMPUTE;
    double utilization = 0.0; //!< GEMMs only: fraction of peak TOPS
};

/** Timing of one full layer graph. */
struct LayerResult
{
    double latencyS = 0.0;
    double flops = 0.0;
    std::vector<OpTiming> ops;

    /**
     * Model FLOPs utilization (Sec. 3.1): achieved throughput over the
     * device's peak tensor throughput.
     */
    double mfu(double peak_flops) const;
};

/** End-to-end result for one (model, setting, system) evaluation. */
struct InferenceResult
{
    LayerResult prefill;
    LayerResult decode;

    /** TTFT as reported by the paper: one layer's prefill latency. */
    double ttftS = 0.0;
    /** TBT as reported by the paper: one layer's decode latency. */
    double tbtS = 0.0;

    /** Full-stack latencies (layer latency x layer count). */
    double ttftFullModelS = 0.0;
    double tbtFullModelS = 0.0;

    /** Per-device weight + KV-cache footprint at end of generation. */
    double weightBytesPerDevice = 0.0;
    double kvCacheBytesPerDevice = 0.0;
    /** Whether that footprint fits device memory capacity. */
    bool fitsMemory = true;

    // Captured from the evaluated (model, setting) pair so derived
    // metrics (Sec. 3.1) need no extra arguments.
    int numLayers = 0;
    int batch = 0;
    int outputLen = 0;

    /** Full-request latency: prefill + outputLen decode steps. */
    double endToEndLatencyS() const;

    /** Steady-state decode throughput in tokens/second (all users). */
    double decodeThroughputTokensPerS() const;

    /** End-to-end generation throughput in tokens/second. */
    double throughputTokensPerS() const;
};

/**
 * Per-layer inference simulator for one device configuration.
 *
 * Thread-compatible: const after construction; safe to share across
 * threads running different queries.
 */
class InferenceSimulator
{
  public:
    /**
     * @param cfg    Device to simulate (validated; copied).
     * @param params Performance-model constants.
     */
    explicit InferenceSimulator(const hw::HardwareConfig &cfg,
                                const PerfParams &params = PerfParams{});

    /**
     * Time an arbitrary layer graph.
     *
     * Operators run back-to-back (unfused kernels, as in LLMCompass);
     * latency is the sum of operator latencies.
     *
     * @param graph           Operator sequence for one device.
     * @param tensor_parallel TP degree used for collectives.
     */
    LayerResult simulateLayer(const model::LayerGraph &graph,
                              int tensor_parallel) const;

    /**
     * Evaluate a model under the standard setting: builds the prefill
     * and decode graphs and produces the paper's TTFT/TBT metrics.
     */
    InferenceResult run(const model::TransformerConfig &model_cfg,
                        const model::InferenceSetting &setting,
                        const SystemConfig &sys) const;

    /**
     * Prebuilt-graph overload: the layer graphs are hardware
     * independent, so sweep callers (dse::DesignEvaluator) build them
     * once per (model, setting, tensorParallel) and evaluate thousands
     * of devices against the same pair instead of rebuilding both
     * graphs per design.
     *
     * @param prefill Graph from buildPrefillGraph(model_cfg, setting,
     *                sys.tensorParallel).
     * @param decode  Graph from buildDecodeGraph with the same
     *                arguments. Results are bit-identical to the
     *                graph-building overload.
     */
    InferenceResult run(const model::TransformerConfig &model_cfg,
                        const model::InferenceSetting &setting,
                        const SystemConfig &sys,
                        const model::LayerGraph &prefill,
                        const model::LayerGraph &decode) const;

    /** The modeled device. */
    const hw::HardwareConfig &device() const { return cfg_; }

    /** The model constants in use. */
    const PerfParams &params() const { return params_; }

  private:
    /**
     * simulateLayer with an optional cross-call memo: identical op
     * shapes (Q/K/V projections, the paired norms/residuals, repeated
     * allreduce payloads) are timed once per run. @p memo may be null
     * (no memoization) and must only be shared between calls with the
     * same tensor_parallel (collective timings depend on it).
     */
    LayerResult simulateLayer(const model::LayerGraph &graph,
                              int tensor_parallel,
                              OpShapeMemo *memo) const;

    hw::HardwareConfig cfg_;
    PerfParams params_;
    MatmulModel matmul_;
    VectorModel vector_;
    CommModel comm_;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_SIMULATOR_HH
