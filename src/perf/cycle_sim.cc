#include "cycle_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "perf/matmul_model.hh"

namespace acs {
namespace perf {

namespace {

// FP16 element size; the tensor path the TPP definition regulates.
constexpr std::int64_t ELEM_BYTES = 2;

std::int64_t
ceilDivI(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Tile shape classes — the same <= 4-class insight TILE_SIM's
 * aggregation uses: with a fixed (tileM, tileN) grid, every tile job
 * is interior, m-edge, n-edge, or corner, so all per-tile constants
 * collapse to four precomputed values.
 */
enum TileClass
{
    INTERIOR = 0,
    M_EDGE,
    N_EDGE,
    CORNER,
    NUM_CLASSES,
};

/**
 * Every integer constant both engines read, computed once from
 * (device, op, params) so the coalesced and naive loops cannot
 * diverge. Timing is integer core clocks throughout: that is what
 * makes the bit-exactness contract (and exact replay) tractable.
 */
struct CycleModel
{
    long tileM = 0, tileN = 0;
    std::int64_t mTiles = 0, nTiles = 0;
    std::int64_t grid = 0; //!< tiles per batch slice (mTiles * nTiles)
    std::int64_t jobs = 0; //!< total tile jobs (batch * grid)
    int arrays = 0;        //!< systolic arrays (static job round-robin)
    bool hasMRem = false;  //!< last tile row is a true remainder
    bool hasNRem = false;  //!< last tile column is a true remainder
    bool overlapOk = true; //!< next-tile fill overlaps current compute

    /** Systolic cycles per tile: k/n passes + one-time fill/drain. */
    std::int64_t computeCycles[NUM_CLASSES] = {};
    /** Shared L2->scratchpad pipe occupancy per tile fill. */
    std::int64_t l2Cycles[NUM_CLASSES] = {};

    std::int64_t fillReqs = 0;  //!< DRAM requests per tile fill
    std::int64_t svcCycles = 0; //!< bank service time per request
    int banks = 1;              //!< DRAM bank timelines
    int window = 1;             //!< max outstanding requests per array

    int
    classOf(std::int64_t job) const
    {
        const std::int64_t g = job % grid;
        const bool m_edge = hasMRem && g / nTiles == mTiles - 1;
        const bool n_edge = hasNRem && g % nTiles == nTiles - 1;
        return m_edge ? (n_edge ? CORNER : M_EDGE)
                      : (n_edge ? N_EDGE : INTERIOR);
    }
};

CycleModel
buildModel(const hw::HardwareConfig &cfg, const model::Op &op,
           const PerfParams &params)
{
    const auto &mm = op.mm;
    CycleModel cm;

    // Same tile-selection policy as MatmulModel/TILE_SIM, so the three
    // modes time the same schedule and stay directly comparable.
    const TileChoice tiles = chooseTiles(cfg, mm, params);
    cm.tileM = tiles.tileM;
    cm.tileN = tiles.tileN;
    cm.mTiles = ceilDivI(mm.m, cm.tileM);
    cm.nTiles = ceilDivI(mm.n, cm.tileN);
    cm.grid = cm.mTiles * cm.nTiles;
    cm.jobs = static_cast<std::int64_t>(mm.batchCount) * cm.grid;
    cm.arrays = cfg.totalSystolicArrays();

    const std::int64_t m_rem = mm.m - (cm.mTiles - 1) * cm.tileM;
    const std::int64_t n_rem = mm.n - (cm.nTiles - 1) * cm.tileN;
    cm.hasMRem = m_rem != cm.tileM;
    cm.hasNRem = n_rem != cm.tileN;
    const std::int64_t tm[NUM_CLASSES] = {cm.tileM, m_rem, cm.tileM,
                                          m_rem};
    const std::int64_t tn[NUM_CLASSES] = {cm.tileN, cm.tileN, n_rem,
                                          n_rem};

    // Compute: each of the ceil(k/DIMX) x ceil(tn/DIMY) passes streams
    // tm rows through the array plus the exposed fraction of the
    // fill/drain bubble; one full fill + drain is charged per tile
    // (the prologue/drain the closed forms amortize away).
    const std::int64_t pipe_depth = cfg.systolicDimX + cfg.systolicDimY;
    const std::int64_t exposed_fill =
        params.modelPipelineFill
            ? static_cast<std::int64_t>(
                  std::ceil((1.0 - params.pipelineFillOverlap) *
                            static_cast<double>(pipe_depth)))
            : 0;
    // L2->scratchpad fill pipe: shared across arrays, sized like the
    // global-buffer bandwidth the analytic model uses. A fetches once
    // per tile, the B slab is shared by the core's lanes.
    const double l2_bytes_per_cycle =
        params.l2BytesPerCyclePerFpu *
        static_cast<double>(cfg.totalSystolicFpus()) * params.l2Efficiency;
    panicIf(l2_bytes_per_cycle <= 0.0,
            "cycle_sim: global-buffer bandwidth must be positive");
    const std::int64_t k_chunks = ceilDivI(mm.k, cfg.systolicDimX);
    for (int c = 0; c < NUM_CLASSES; ++c) {
        const std::int64_t n_chunks = ceilDivI(tn[c], cfg.systolicDimY);
        cm.computeCycles[c] =
            k_chunks * n_chunks * (tm[c] + exposed_fill) + pipe_depth;
        const std::int64_t l2_bytes =
            (tm[c] * mm.k + ceilDivI(mm.k * tn[c], cfg.lanesPerCore)) *
            ELEM_BYTES;
        cm.l2Cycles[c] = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::ceil(
                   static_cast<double>(l2_bytes) / l2_bytes_per_cycle)));
    }

    // DRAM: every tile fill carries a uniform share of the blocked HBM
    // traffic (the same L2-blocking model the other modes charge),
    // split into bounded-size requests interleaved across banks.
    cm.banks = std::max(1, params.cycleDramBanks);
    cm.window = std::max(1, params.cycleDramWindow);
    const std::int64_t req_bytes =
        std::max<long>(1, params.cycleDramReqBytes);
    const double hbm_total = blockedHbmTraffic(cfg, op, params);
    const std::int64_t tile_bytes = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(hbm_total / static_cast<double>(cm.jobs))));
    cm.fillReqs = ceilDivI(tile_bytes, req_bytes);
    const double bank_bytes_per_cycle = cfg.memBandwidth *
                                        params.memEfficiency /
                                        cm.banks / cfg.clockHz;
    panicIf(bank_bytes_per_cycle <= 0.0,
            "cycle_sim: HBM bandwidth must be positive");
    cm.svcCycles = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(static_cast<double>(req_bytes) /
                         bank_bytes_per_cycle)));

    // Double-buffered fill/compute overlap needs two tile working sets
    // (A chunk, B chunk, C accumulator) resident per lane; when they
    // do not fit, the next fill waits for the current compute to drain
    // — the scratchpad-capacity stall regime the closed forms miss.
    const std::int64_t k_chunk = std::min<std::int64_t>(mm.k, cm.tileM);
    const std::int64_t footprint =
        (cm.tileM * k_chunk + k_chunk * cm.tileN + cm.tileM * cm.tileN) *
        ELEM_BYTES;
    cm.overlapOk = 2.0 * static_cast<double>(footprint) <=
                   cfg.l1BytesPerLane();
    return cm;
}

/** Per-array tile pipeline position. */
enum class Stage : std::uint8_t
{
    FILL_ISSUE, //!< issuing the next window of DRAM requests
    FILL_L2,    //!< operands queued on the L2->scratchpad pipe
    COMPUTE,    //!< waiting to start (or starting) systolic compute
    DONE,       //!< no jobs left
};

struct ArrayState
{
    Stage stage = Stage::DONE;
    std::int64_t due = 0;         //!< when the pending transition fires
    std::int64_t fillJob = 0;     //!< job being filled (global index)
    std::int64_t reqsDone = 0;    //!< DRAM requests retired for the fill
    std::int64_t spadReady = 0;   //!< when the fill lands in scratchpad
    std::int64_t computeFree = 0; //!< when the array's MACs go idle
};

/** The full mutable simulation state both engines advance. */
struct Machine
{
    std::vector<ArrayState> arr;
    std::vector<std::int64_t> bankFree;
    std::int64_t l2Free = 0;
    std::int64_t makespan = 0;
    int live = 0;
    CycleStats stats;
};

void
initMachine(const CycleModel &cm, Machine &m)
{
    m.arr.assign(static_cast<std::size_t>(cm.arrays), ArrayState{});
    m.bankFree.assign(static_cast<std::size_t>(cm.banks), 0);
    const int active =
        static_cast<int>(std::min<std::int64_t>(cm.arrays, cm.jobs));
    for (int a = 0; a < active; ++a) {
        ArrayState &st = m.arr[static_cast<std::size_t>(a)];
        st.stage = Stage::FILL_ISSUE;
        st.due = 0;
        st.fillJob = a;
    }
    m.live = active;
    m.stats.tileM = cm.tileM;
    m.stats.tileN = cm.tileN;
    m.stats.totalTiles = cm.jobs;
    m.stats.overlapOk = cm.overlapOk;
}

/**
 * Fire array @p a's pending transition at time @p now (== due).
 *
 * This is the single transition function both engines share: the
 * naive tick reaches it by polling every cycle, the coalesced loop by
 * jumping straight to the due time. All scheduling decisions read
 * only integer machine state, so the two orders are identical.
 */
void
process(const CycleModel &cm, Machine &m, int a, std::int64_t now,
        bool *array0_fresh_fill)
{
    ArrayState &st = m.arr[static_cast<std::size_t>(a)];
    ++m.stats.events;
    switch (st.stage) {
      case Stage::FILL_ISSUE: {
        // Issue one window of requests; the next window waits for this
        // one to drain (bounded outstanding requests per array).
        const std::int64_t todo = std::min<std::int64_t>(
            cm.window, cm.fillReqs - st.reqsDone);
        std::int64_t group_end = now;
        for (std::int64_t i = 0; i < todo; ++i) {
            const std::size_t bank = static_cast<std::size_t>(
                (a + st.reqsDone + i) % cm.banks);
            const std::int64_t start =
                std::max(now, m.bankFree[bank]);
            m.stats.dramQueueCycles += start - now;
            m.bankFree[bank] = start + cm.svcCycles;
            group_end = std::max(group_end, start + cm.svcCycles);
        }
        st.reqsDone += todo;
        st.stage = st.reqsDone < cm.fillReqs ? Stage::FILL_ISSUE
                                             : Stage::FILL_L2;
        st.due = group_end;
        break;
      }
      case Stage::FILL_L2: {
        // Responses drained; the fill occupies the shared
        // L2->scratchpad pipe (one fill at a time, FIFO by due time).
        const int c = cm.classOf(st.fillJob);
        const std::int64_t start = std::max(now, m.l2Free);
        m.stats.l2QueueCycles += start - now;
        m.l2Free = start + cm.l2Cycles[c];
        st.spadReady = m.l2Free;
        st.stage = Stage::COMPUTE;
        st.due = std::max(st.computeFree, st.spadReady);
        break;
      }
      case Stage::COMPUTE: {
        // Compute starts; any gap since the MACs went idle was spent
        // waiting on operands.
        const int c = cm.classOf(st.fillJob);
        m.stats.fillStallCycles += now - st.computeFree;
        st.computeFree = now + cm.computeCycles[c];
        m.stats.computeBusyCycles += cm.computeCycles[c];
        m.makespan = std::max(m.makespan, st.computeFree);
        const std::int64_t next = st.fillJob + cm.arrays;
        if (next >= cm.jobs) {
            st.stage = Stage::DONE;
            --m.live;
        } else {
            st.fillJob = next;
            st.reqsDone = 0;
            st.spadReady = 0;
            st.stage = Stage::FILL_ISSUE;
            if (cm.overlapOk) {
                st.due = now; // fill the second buffer under compute
            } else {
                st.due = st.computeFree; // serialize on spad capacity
                m.stats.spadSerialCycles += cm.computeCycles[c];
            }
            if (a == 0 && array0_fresh_fill)
                *array0_fresh_fill = true;
        }
        break;
      }
      case Stage::DONE:
        panic("cycle_sim: transition fired on a DONE array");
    }
}

/**
 * Drain every transition due at @p now: arrays in canonical order,
 * each array's same-cycle cascade (compute start -> next fill issue)
 * resolved before moving on. Both engines call exactly this, so
 * coalescing cannot reorder same-cycle work.
 */
void
drainCycle(const CycleModel &cm, Machine &m, std::int64_t now,
           bool *array0_fresh_fill)
{
    const int n = static_cast<int>(m.arr.size());
    for (int a = 0; a < n; ++a) {
        ArrayState &st = m.arr[static_cast<std::size_t>(a)];
        while (st.stage != Stage::DONE && st.due == now)
            process(cm, m, a, now, array0_fresh_fill);
    }
}

/** Earliest pending transition (m.live > 0 guarantees one exists). */
std::int64_t
nextDue(const Machine &m)
{
    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (const ArrayState &st : m.arr)
        if (st.stage != Stage::DONE)
            next = std::min(next, st.due);
    return next;
}

// ---- Periodic replay (COALESCED + cycleReplay only) ------------------
//
// After warmup the machine is periodic: job classes depend only on the
// tile-column phase (plus, for batched GEMMs, the slice phase), and
// the contention pattern across banks/L2 settles into a repeating
// steady state. The engine snapshots the *relative* machine state
// every time array 0 begins a fresh tile fill; when a snapshot recurs
// exactly, one period has been measured and k more periods are applied
// as a pure time translation: every clock advances by k*deltaT, every
// job index by k*deltaJobs, every stall tally by k*deltaStats. The
// translated state is behaviorally identical to the one live
// simulation would reach (transitions are deterministic and
// time-translation-invariant, and all resource reads clamp to `now`),
// so the remaining live tail — including the remainder-row edge
// classes the phase signature cannot see — produces bit-identical
// results. replayedTiles is the only CycleStats field replay changes.

struct Checkpoint
{
    std::vector<std::int64_t> sig;
    std::int64_t now = 0;
    std::vector<std::int64_t> fillJob;
    CycleStats stats;
};

struct ReplayState
{
    bool armed = false;
    bool spent = false;          //!< one fast-forward per GEMM
    std::int64_t phaseMod = 1;   //!< job phase that fixes the class
    std::int64_t safeLimit = 0;  //!< first job replay must not reach
    std::unordered_map<std::uint64_t, Checkpoint> seen;

    /** Snapshot-history cap; past it, fall back to live simulation. */
    static constexpr std::size_t MAX_CHECKPOINTS = 4096;
};

ReplayState
makeReplay(const CycleModel &cm, const model::MatmulShape &mm,
           const PerfParams &params)
{
    ReplayState r;
    r.armed = params.cycleReplay &&
              params.cycleEngine == CycleEngine::COALESCED &&
              cm.jobs > cm.arrays;
    // Within one batch slice the class of a job is fixed by its tile
    // column alone as long as it stays off the remainder row, so
    // unbatched GEMMs match on the column phase and guard the last
    // row into the live tail; batched GEMMs interleave remainder rows
    // periodically and need the full slice phase.
    if (mm.batchCount > 1) {
        r.phaseMod = cm.grid;
        r.safeLimit = cm.jobs;
    } else {
        r.phaseMod = cm.nTiles;
        r.safeLimit = cm.hasMRem ? (cm.mTiles - 1) * cm.nTiles : cm.jobs;
    }
    return r;
}

std::vector<std::int64_t>
signature(const Machine &m, std::int64_t now, std::int64_t phase_mod)
{
    std::vector<std::int64_t> sig;
    sig.reserve(m.arr.size() * 5 + m.bankFree.size() + 2);
    for (const ArrayState &st : m.arr) {
        sig.push_back(static_cast<std::int64_t>(st.stage));
        if (st.stage == Stage::DONE) {
            sig.push_back(0);
            sig.push_back(-1);
            sig.push_back(0);
        } else {
            sig.push_back(st.due - now);
            sig.push_back(st.fillJob % phase_mod);
            sig.push_back(st.reqsDone);
        }
        // Raw (unclamped): the compute-start transition reads the
        // true idle gap for the fill-stall tally.
        sig.push_back(st.computeFree - now);
    }
    // Bank and pipe timelines are only ever read through
    // max(now, free), so anything at or before `now` is equivalent.
    for (const std::int64_t free : m.bankFree)
        sig.push_back(std::max<std::int64_t>(free - now, 0));
    sig.push_back(std::max<std::int64_t>(m.l2Free - now, 0));
    sig.push_back(m.makespan - now);
    return sig;
}

std::uint64_t
hashSig(const std::vector<std::int64_t> &sig)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const std::int64_t v : sig) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
    }
    return h;
}

/** Apply k periods of (deltaT, deltaJobs, deltaStats). @return k. */
std::int64_t
tryReplay(const CycleModel &cm, Machine &m, std::int64_t now,
          const Checkpoint &prev, const ReplayState &r)
{
    const std::int64_t dt = now - prev.now;
    if (dt <= 0)
        return 0;
    const std::size_t n = m.arr.size();
    std::vector<std::int64_t> dj(n, 0);
    std::int64_t k = std::numeric_limits<std::int64_t>::max();
    std::int64_t tiles_per_period = 0;
    for (std::size_t a = 0; a < n; ++a) {
        const ArrayState &st = m.arr[a];
        dj[a] = st.fillJob - prev.fillJob[a];
        if (st.stage == Stage::DONE && dj[a] == 0)
            continue; // permanently idle (jobs < arrays)
        if (dj[a] <= 0)
            return 0; // not a steady period
        tiles_per_period += dj[a] / cm.arrays;
        // Keep one spare period of live simulation between the
        // fast-forwarded span and the guarded tail.
        k = std::min(k, (r.safeLimit - 1 - st.fillJob) / dj[a] - 1);
    }
    if (k == std::numeric_limits<std::int64_t>::max() || k <= 0)
        return 0;

    const std::int64_t shift = k * dt;
    for (std::size_t a = 0; a < n; ++a) {
        ArrayState &st = m.arr[a];
        st.due += shift;
        st.computeFree += shift;
        st.spadReady += shift;
        st.fillJob += k * dj[a];
    }
    for (std::int64_t &free : m.bankFree)
        free += shift;
    m.l2Free += shift;
    m.makespan += shift;

    CycleStats &s = m.stats;
    const CycleStats &p = prev.stats;
    s.computeBusyCycles += k * (s.computeBusyCycles - p.computeBusyCycles);
    s.fillStallCycles += k * (s.fillStallCycles - p.fillStallCycles);
    s.dramQueueCycles += k * (s.dramQueueCycles - p.dramQueueCycles);
    s.l2QueueCycles += k * (s.l2QueueCycles - p.l2QueueCycles);
    s.spadSerialCycles += k * (s.spadSerialCycles - p.spadSerialCycles);
    s.events += k * (s.events - p.events);
    s.replayedTiles += k * tiles_per_period;
    return k;
}

/**
 * Checkpoint hook: called after a coalesced pass in which array 0
 * began a fresh tile fill. Either matches an earlier snapshot (and
 * fast-forwards) or records this one.
 */
void
onCheckpoint(const CycleModel &cm, Machine &m, std::int64_t now,
             ReplayState &r)
{
    if (!r.armed || r.spent)
        return;
    std::vector<std::int64_t> sig = signature(m, now, r.phaseMod);
    const std::uint64_t h = hashSig(sig);
    const auto it = r.seen.find(h);
    if (it != r.seen.end()) {
        if (it->second.sig == sig &&
            tryReplay(cm, m, now, it->second, r) > 0) {
            r.spent = true;
            r.seen.clear();
        }
        return; // keep the earliest snapshot per hash
    }
    if (r.seen.size() >= ReplayState::MAX_CHECKPOINTS) {
        // No period found within the history budget: give up and
        // simulate live — slower, never wrong.
        r.armed = false;
        r.seen.clear();
        return;
    }
    Checkpoint cp;
    cp.sig = std::move(sig);
    cp.now = now;
    cp.fillJob.reserve(m.arr.size());
    for (const ArrayState &st : m.arr)
        cp.fillJob.push_back(st.fillJob);
    cp.stats = m.stats;
    r.seen.emplace(h, std::move(cp));
}

} // anonymous namespace

CycleStats
simulateGemmCycles(const hw::HardwareConfig &cfg, const model::Op &op,
                   const PerfParams &params)
{
    if (op.kind != model::OpKind::MATMUL)
        fatal("simulateGemmCycles requires a MATMUL op: " + op.name);
    const auto &mm = op.mm;
    if (mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1)
        fatal("simulateGemmCycles: degenerate GEMM dims in " + op.name);
    cfg.validate();

    const obs::TraceSpan span("perf.cycle_sim");

    const CycleModel cm = buildModel(cfg, op, params);
    Machine m;
    initMachine(cm, m);

    std::int64_t ticks = 0;
    if (params.cycleEngine == CycleEngine::LEGACY_TICK) {
        // The naive reference: visit every cycle and poll all arrays.
        for (std::int64_t now = 0; m.live > 0; ++now) {
            drainCycle(cm, m, now, nullptr);
            ++ticks;
        }
    } else {
        ReplayState replay = makeReplay(cm, mm, params);
        while (m.live > 0) {
            const std::int64_t now = nextDue(m);
            bool fresh = false;
            drainCycle(cm, m, now, replay.armed ? &fresh : nullptr);
            if (fresh)
                onCheckpoint(cm, m, now, replay);
        }
    }

    m.stats.cycles = m.makespan;
    m.stats.totalS = static_cast<double>(m.makespan) / cfg.clockHz +
                     params.kernelOverheadS;
    if (obs::enabled()) {
        obs::counterAdd("perf.cycle.gemms");
        obs::counterAdd("perf.cycle.tiles",
                        static_cast<std::uint64_t>(cm.jobs));
        obs::counterAdd("perf.cycle.events",
                        static_cast<std::uint64_t>(m.stats.events));
        if (m.stats.replayedTiles > 0)
            obs::counterAdd(
                "perf.cycle.replayed_tiles",
                static_cast<std::uint64_t>(m.stats.replayedTiles));
        if (ticks > 0)
            obs::counterAdd("perf.cycle.ticks",
                            static_cast<std::uint64_t>(ticks));
    }
    return m.stats;
}

} // namespace perf
} // namespace acs
