/**
 * @file
 * Cross-design memoization of simulated GEMM timings (TILE_SIM and
 * CYCLE_SIM; entries are keyed by mode through the params
 * fingerprint, so the two never alias).
 *
 * A DSE sweep is a cartesian product over architectural axes, and the
 * wave- or cycle-level GEMM simulation reads only a *projection* of a
 * design:
 * the interconnect axes (`deviceBandwidths`, per-PHY realization) and
 * memory capacity never touch die-local GEMM timing at all, and
 * several compute axes collapse under the TPP constraint (equal-TPP
 * designs share FPU count and therefore peak TOPS and global-buffer
 * bandwidth). Keying simulated timings by that projection — the
 * canonical GemmCacheKey — lets every design sharing it reuse one
 * simulation bit-for-bit across the whole sweep, which is what closes
 * most of the TILE_SIM-vs-analytic sweep-throughput gap (docs/PERF.md,
 * "Cross-design GEMM memoization").
 *
 * Scope and invalidation: a GemmCache is valid for exactly one set of
 * performance-model constants. The key embeds a fingerprint of every
 * PerfParams field the GEMM models read, so mixing params sets in one
 * cache cannot alias — entries from a stale params set simply stop
 * being hit. Sweep drivers (dse::DesignEvaluator) hoist one cache per
 * sweep by default; callers wanting reuse across sweeps (repeated
 * studies over overlapping spaces) install a longer-lived handle in
 * PerfParams::gemmCache themselves.
 */

#ifndef ACS_PERF_GEMM_CACHE_HH
#define ACS_PERF_GEMM_CACHE_HH

#include <cstdint>

#include "common/sharded_cache.hh"
#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/matmul_model.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/**
 * The canonical projection of (device, op, params) that determines a
 * TILE_SIM GEMM timing. Two designs with equal keys receive
 * bit-identical MatmulTiming results, so equality must cover — and
 * only cover — what MatmulModel::time and simulateGemmSummary read.
 *
 * Deliberately absent: devicePhyCount / perPhyBandwidth (interconnect
 * only), memCapacityBytes, process/package fields, the design *name*,
 * and coreCount/diesPerPackage individually (they matter only through
 * the totalSystolicArrays product, which is the canonical field).
 */
struct GemmCacheKey
{
    // --- Device projection -------------------------------------------
    std::int32_t dimX = 0;      //!< systolic array rows
    std::int32_t dimY = 0;      //!< systolic array columns
    std::int32_t lanes = 0;     //!< lanes sharing one L1 (B-slab reuse)
    std::int64_t arrays = 0;    //!< total systolic arrays (cores x lanes x dies)
    double clockHz = 0.0;
    double l1BytesPerLane = 0.0; //!< tiling budget (chooseTiles)
    /**
     * Global-buffer capacity, canonicalized to 0 when the op streams
     * both operands (attention GEMMs, or the no-blocking ablation): L2
     * size then never enters the timing, so designs differing only in
     * L2 share the entry.
     */
    double l2Bytes = 0.0;
    double memBandwidth = 0.0;

    // --- Op projection -----------------------------------------------
    std::int64_t m = 0, n = 0, k = 0, batch = 0;
    bool weightStationary = false;
    double flops = 0.0;
    double weightBytes = 0.0;
    double inputBytes = 0.0;
    double outputBytes = 0.0;

    // --- Model-constant fingerprint ----------------------------------
    /**
     * Hash of every PerfParams field the GEMM path reads (see
     * fingerprintGemmParams). Embedding it keys entries to their
     * params set, so one cache can never serve timings computed under
     * different constants.
     */
    std::uint64_t paramsFp = 0;

    bool operator==(const GemmCacheKey &other) const = default;
};

/** Hash functor for GemmCacheKey (FNV-1a over the raw fields). */
struct GemmCacheKeyHash
{
    std::size_t operator()(const GemmCacheKey &key) const;
};

/**
 * Fingerprint of the PerfParams fields that influence GEMM timing
 * (tiling fractions, efficiencies, overheads, modeling switches, and
 * the TILE_SIM engine selection). Stable within a process run; not a
 * serialization format.
 */
std::uint64_t fingerprintGemmParams(const PerfParams &params);

/**
 * Build the canonical key for timing @p op (kind == MATMUL) on
 * @p cfg. @p params_fp is the precomputed fingerprintGemmParams value
 * (MatmulModel computes it once at construction, not per op).
 */
GemmCacheKey makeGemmCacheKey(const hw::HardwareConfig &cfg,
                              const model::Op &op,
                              const PerfParams &params,
                              std::uint64_t params_fp);

/**
 * The sweep-scoped concurrent cache: canonical key to full
 * MatmulTiming. Thread-safe (lock-striped); values are pure functions
 * of their keys, so racing inserts are benign (first writer wins,
 * both carry identical bits).
 */
class GemmCache
    : public common::ShardedCache<GemmCacheKey, MatmulTiming,
                                  GemmCacheKeyHash>
{
  public:
    using common::ShardedCache<GemmCacheKey, MatmulTiming,
                               GemmCacheKeyHash>::ShardedCache;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_GEMM_CACHE_HH
