/**
 * @file
 * Device-device interconnect model (ring allreduce).
 *
 * Tensor parallelism issues one allreduce after each row-parallel GEMM.
 * A ring allreduce moves 2 (p-1)/p of the payload through each device's
 * links and pays 2 (p-1) hop latencies. The device's *aggregate
 * bidirectional* bandwidth (the quantity the Oct-2022 ACR regulates) is
 * split evenly between the send and receive directions.
 */

#ifndef ACS_PERF_COMM_MODEL_HH
#define ACS_PERF_COMM_MODEL_HH

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** Timing of one collective. */
struct CommTiming
{
    double wireS = 0.0;    //!< bandwidth-proportional term
    double latencyS = 0.0; //!< hop-latency term
    double totalS = 0.0;
};

/**
 * Collective latency estimator.
 *
 * Thread-compatible: const after construction.
 */
class CommModel
{
  public:
    CommModel(const hw::HardwareConfig &cfg, const PerfParams &params);

    /**
     * Time one ring allreduce across @p tensor_parallel devices.
     *
     * @param op              Operator with kind == ALLREDUCE.
     * @param tensor_parallel Participating devices (>= 1). A single
     *                        device needs no communication (zero time).
     */
    CommTiming time(const model::Op &op, int tensor_parallel) const;

  private:
    hw::HardwareConfig cfg_;
    PerfParams params_;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_COMM_MODEL_HH
