#include "batch_eval.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace acs {
namespace perf {

namespace {

// FP16 element size — must match matmul_model.cc's constant.
constexpr double ELEM_BYTES = 2.0;

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

long
ceilDivL(long a, long b)
{
    return (a + b - 1) / b;
}

/** Op-shape equality on the fields the models read (OpShapeMemo's). */
bool
sameShape(const model::Op &a, const model::Op &b)
{
    return a.kind == b.kind && a.flops == b.flops &&
           a.weightBytes == b.weightBytes &&
           a.inputBytes == b.inputBytes &&
           a.outputBytes == b.outputBytes && a.commBytes == b.commBytes &&
           a.memoryPasses == b.memoryPasses && a.mm.m == b.mm.m &&
           a.mm.n == b.mm.n && a.mm.k == b.mm.k &&
           a.mm.batchCount == b.mm.batchCount &&
           a.mm.weightStationary == b.mm.weightStationary;
}

} // anonymous namespace

void
DesignBatch::clear()
{
    clockHz.clear();
    l1BytesPerLane.clear();
    l2Bytes.clear();
    memBandwidth.clear();
    deviceBandwidth.clear();
    peakTensorFlops.clear();
    peakVectorFlops.clear();
    systolicFpus.clear();
    arraysD.clear();
    arraysL.clear();
    systolicDimX.clear();
    systolicDimY.clear();
    lanesPerCore.clear();
}

void
DesignBatch::reserve(std::size_t n)
{
    clockHz.reserve(n);
    l1BytesPerLane.reserve(n);
    l2Bytes.reserve(n);
    memBandwidth.reserve(n);
    deviceBandwidth.reserve(n);
    peakTensorFlops.reserve(n);
    peakVectorFlops.reserve(n);
    systolicFpus.reserve(n);
    arraysD.reserve(n);
    arraysL.reserve(n);
    systolicDimX.reserve(n);
    systolicDimY.reserve(n);
    lanesPerCore.reserve(n);
}

void
DesignBatch::push(const hw::HardwareConfig &cfg)
{
    // Derived quantities use the config's own accessors so every lane
    // starts from the exact doubles the scalar models start from.
    clockHz.push_back(cfg.clockHz);
    l1BytesPerLane.push_back(cfg.l1BytesPerLane());
    l2Bytes.push_back(cfg.l2Bytes);
    memBandwidth.push_back(cfg.memBandwidth);
    deviceBandwidth.push_back(cfg.deviceBandwidth());
    peakTensorFlops.push_back(cfg.peakTensorTops() * 1e12);
    peakVectorFlops.push_back(cfg.peakVectorFlops());
    systolicFpus.push_back(static_cast<double>(cfg.totalSystolicFpus()));
    arraysD.push_back(cfg.totalSystolicArrays());
    arraysL.push_back(cfg.totalSystolicArrays());
    systolicDimX.push_back(cfg.systolicDimX);
    systolicDimY.push_back(cfg.systolicDimY);
    lanesPerCore.push_back(cfg.lanesPerCore);
}

void
batchMatmulTotalS(const DesignBatch &batch, const model::Op &op,
                  const PerfParams &params, double *out)
{
    if (op.kind != model::OpKind::MATMUL)
        fatal("batchMatmulTotalS requires a MATMUL op: " + op.name);
    const auto &mm = op.mm;
    if (mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1)
        fatal("batchMatmulTotalS: degenerate GEMM dims in " + op.name);

    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
        // ---- Tiling (mirrors chooseTiles) ---------------------------
        long tile = 256;
        if (params.modelTiling) {
            const double budget_elems = batch.l1BytesPerLane[i] *
                                        params.l1TileFraction /
                                        ELEM_BYTES;
            tile = static_cast<long>(std::floor(
                std::sqrt(std::max(1.0, budget_elems / 3.0))));
            tile = std::max<long>(tile, 1);
        }
        long tile_m = std::min<long>(tile, mm.m);
        long tile_n = std::min<long>(
            std::max<long>(tile, batch.systolicDimY[i]), mm.n);
        const long dim_y = batch.systolicDimY[i];
        if (tile_n > dim_y) {
            const long arrays = batch.arraysL[i];
            const long row_tiles = static_cast<long>(mm.batchCount) *
                                   ceilDivL(mm.m, tile_m);
            if (row_tiles * ceilDivL(mm.n, tile_n) < arrays) {
                const long need_cols = ceilDivL(arrays, row_tiles);
                const long t_max =
                    (mm.n + need_cols - 2) / (need_cols - 1) - 1;
                const long target = std::max(t_max, dim_y);
                if (tile_n > target) {
                    const int shift =
                        std::bit_width(static_cast<unsigned long long>(
                            tile_n / (target + 1)));
                    tile_n >>= shift;
                }
                tile_n = std::max(tile_n, dim_y);
            }
        }

        // ---- Compute time (mirrors MatmulModel::time) ---------------
        double pipe_util = 1.0;
        if (params.modelPipelineFill) {
            const double exposed_fill =
                (1.0 - params.pipelineFillOverlap) *
                (batch.systolicDimX[i] + batch.systolicDimY[i]);
            pipe_util =
                static_cast<double>(tile_m) / (tile_m + exposed_fill);
        }
        const double arrays = batch.arraysD[i];
        const double tiles =
            static_cast<double>(mm.batchCount) *
            ceilDiv(static_cast<double>(mm.m), tile_m) *
            ceilDiv(static_cast<double>(mm.n), tile_n);
        const double tile_util =
            tiles / (ceilDiv(tiles, arrays) * arrays);
        const double utilization = pipe_util * tile_util;
        const double peak_flops = batch.peakTensorFlops[i];
        const double compute_s = op.flops / (peak_flops * utilization);

        // ---- HBM time (mirrors blockedHbmTraffic) -------------------
        double hbm_traffic;
        if (!mm.weightStationary || !params.modelL2Blocking) {
            hbm_traffic =
                op.weightBytes + op.inputBytes + op.outputBytes;
        } else {
            const double budget =
                batch.l2Bytes[i] * params.l2BlockingFraction;
            const double k_bytes =
                static_cast<double>(mm.k) * ELEM_BYTES;
            const double panel_rows =
                std::max(1.0, std::floor(budget / k_bytes));
            const double passes_b =
                ceilDiv(static_cast<double>(mm.m), panel_rows);
            const double passes_a =
                ceilDiv(static_cast<double>(mm.n), panel_rows);
            const double strat_a_resident =
                op.inputBytes + op.weightBytes * passes_b;
            const double strat_b_resident =
                op.weightBytes + op.inputBytes * passes_a;
            hbm_traffic = std::min(strat_a_resident, strat_b_resident) +
                          op.outputBytes;
        }
        const double hbm_s =
            hbm_traffic / (batch.memBandwidth[i] * params.memEfficiency);

        // ---- Global-buffer time -------------------------------------
        const double k_elems = static_cast<double>(mm.k);
        const double l2_traffic =
            static_cast<double>(mm.batchCount) *
                (ceilDiv(static_cast<double>(mm.n), tile_n) *
                     static_cast<double>(mm.m) * k_elems +
                 ceilDiv(static_cast<double>(mm.m),
                         static_cast<double>(batch.lanesPerCore[i]) *
                             tile_m) *
                     static_cast<double>(mm.n) * k_elems) *
                ELEM_BYTES +
            op.outputBytes;
        const double gbuf_bw = params.l2BytesPerCyclePerFpu *
                               batch.systolicFpus[i] * batch.clockHz[i];
        const double gbuf_s =
            l2_traffic / (gbuf_bw * params.l2Efficiency);

        out[i] = std::max({compute_s, hbm_s, gbuf_s}) +
                 params.kernelOverheadS;
    }
}

void
batchVectorTotalS(const DesignBatch &batch, const model::Op &op,
                  const PerfParams &params, double *out)
{
    if (op.kind != model::OpKind::VECTOR)
        fatal("batchVectorTotalS requires a VECTOR op: " + op.name);

    const int passes =
        params.modelMultiPassVector ? std::max(1, op.memoryPasses) : 1;
    const double bytes = op.inputBytes * passes + op.outputBytes;
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double compute_s = op.flops / batch.peakVectorFlops[i];
        const bool served_by_gbuf =
            bytes <= batch.l2Bytes[i] * params.l2BlockingFraction;
        const double gbuf_bw = params.l2BytesPerCyclePerFpu *
                               batch.systolicFpus[i] * batch.clockHz[i];
        const double bw =
            served_by_gbuf
                ? gbuf_bw * params.l2Efficiency
                : batch.memBandwidth[i] * params.memEfficiency;
        const double memory_s = bytes / bw;
        out[i] = std::max(compute_s, memory_s) + params.kernelOverheadS;
    }
}

void
batchAllreduceTotalS(const DesignBatch &batch, const model::Op &op,
                     int tensor_parallel, const PerfParams &params,
                     double *out)
{
    if (op.kind != model::OpKind::ALLREDUCE)
        fatal("batchAllreduceTotalS requires an ALLREDUCE op: " +
              op.name);
    fatalIf(tensor_parallel < 1,
            "batchAllreduceTotalS: tensor_parallel must be >= 1");

    const std::size_t n = batch.size();
    if (tensor_parallel == 1) {
        std::fill(out, out + n, 0.0);
        return;
    }
    const double p = tensor_parallel;
    const double volume = 2.0 * (p - 1.0) / p * op.commBytes;
    const double latency_s =
        2.0 * (p - 1.0) * params.allreduceStepLatencyS;
    for (std::size_t i = 0; i < n; ++i) {
        fatalIf(batch.deviceBandwidth[i] <= 0.0,
                "allreduce on a device with no interconnect");
        const double link_bw = batch.deviceBandwidth[i] / 2.0 *
                               params.interconnectEfficiency;
        out[i] = volume / link_bw + latency_s;
    }
}

const std::vector<double> *
BatchEvaluator::findMemo(const model::Op &op) const
{
    for (const MemoEntry &e : memo_) {
        if (sameShape(e.op, op))
            return &e.latencyS;
    }
    return nullptr;
}

void
BatchEvaluator::layerLatency(const model::LayerGraph &graph,
                             int tensor_parallel,
                             const DesignBatch &batch, double *out)
{
    fatalIf(tensor_parallel < 1,
            "BatchEvaluator: tensor_parallel must be >= 1");
    const std::size_t n = batch.size();
    scratch_.resize(n);
    for (const model::Op &op : graph.ops) {
        const std::vector<double> *hit =
            params_.memoizeOps ? findMemo(op) : nullptr;
        const double *lat;
        if (hit) {
            lat = hit->data();
        } else {
            switch (op.kind) {
              case model::OpKind::MATMUL:
                batchMatmulTotalS(batch, op, params_, scratch_.data());
                break;
              case model::OpKind::VECTOR:
                batchVectorTotalS(batch, op, params_, scratch_.data());
                break;
              case model::OpKind::ALLREDUCE:
                batchAllreduceTotalS(batch, op, tensor_parallel,
                                     params_, scratch_.data());
                break;
            }
            lat = scratch_.data();
            if (params_.memoizeOps)
                memo_.push_back({op, scratch_});
        }
        // Accumulate in graph order: same adds, same order as the
        // scalar `result.latencyS += timing.latencyS` fold.
        for (std::size_t i = 0; i < n; ++i)
            out[i] += lat[i];
    }
    if (obs::enabled())
        obs::counterAdd("dse.batch.ops", graph.ops.size() * n);
}

} // namespace perf
} // namespace acs
