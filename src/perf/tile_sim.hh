/**
 * @file
 * Wave-level discrete GEMM simulation.
 *
 * Where MatmulModel computes a closed-form roofline estimate, the tile
 * simulator actually walks the schedule: tile jobs are assigned to
 * systolic arrays in waves, each wave's compute and its (double
 * buffered) operand transfers contend for the global buffer and HBM,
 * and edge waves carry their true remainder shapes. It exists to
 * cross-validate the analytical model (tests assert agreement) and to
 * expose a per-wave trace for inspection.
 */

#ifndef ACS_PERF_TILE_SIM_HH
#define ACS_PERF_TILE_SIM_HH

#include <vector>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** One scheduling wave across all systolic arrays. */
struct WaveRecord
{
    long waveIndex = 0;
    long tilesInWave = 0;   //!< may be short on the last wave
    double computeS = 0.0;  //!< slowest tile's systolic time
    double globalBufS = 0.0;//!< operand traffic service time
    double hbmS = 0.0;      //!< HBM share of the wave's traffic
    double startS = 0.0;    //!< when the wave's compute begins
    double endS = 0.0;      //!< when the wave completes
};

/** Full trace of one simulated GEMM. */
struct GemmTrace
{
    std::vector<WaveRecord> waves;
    long tileM = 0;
    long tileN = 0;
    double totalS = 0.0;

    /** Total tiles scheduled. */
    long totalTiles() const;
};

/**
 * Simulate one GEMM wave by wave.
 *
 * Uses the same tile-selection policy as MatmulModel (so the two are
 * directly comparable) but derives timing from the explicit schedule:
 * wave i's operand fetches overlap wave i-1's compute (double
 * buffering), so each wave completes at
 *   end_i = max(end_{i-1}, fetch_ready_i) + compute_i
 * with fetch_ready_i tracking the shared global-buffer and HBM
 * service queues.
 *
 * @param cfg    Device (validated).
 * @param op     Operator with kind == MATMUL (fatal otherwise).
 * @param params Model constants.
 */
GemmTrace simulateGemm(const hw::HardwareConfig &cfg,
                       const model::Op &op,
                       const PerfParams &params = PerfParams{});

} // namespace perf
} // namespace acs

#endif // ACS_PERF_TILE_SIM_HH
