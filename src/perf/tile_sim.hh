/**
 * @file
 * Wave-level discrete GEMM simulation.
 *
 * Where MatmulModel computes a closed-form roofline estimate, the tile
 * simulator actually walks the schedule: tile jobs are assigned to
 * systolic arrays in waves, each wave's compute and its (double
 * buffered) operand transfers contend for the global buffer and HBM,
 * and edge waves carry their true remainder shapes. It exists to
 * cross-validate the analytical model (tests assert agreement), to
 * expose a per-wave trace for inspection, and — since the closed-form
 * wave-class aggregation rewrite — to back `GemmMode::TILE_SIM`
 * sweeps at full DSE throughput (see docs/PERF.md).
 *
 * Two entry points share one engine:
 *  - simulateGemm materializes the full per-wave trace;
 *  - simulateGemmSummary returns only the scalars a sweep needs
 *    (latency, wave count, tile count) without allocating WaveRecords.
 */

#ifndef ACS_PERF_TILE_SIM_HH
#define ACS_PERF_TILE_SIM_HH

#include <vector>

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** One scheduling wave across all systolic arrays. */
struct WaveRecord
{
    long waveIndex = 0;
    long tilesInWave = 0;   //!< may be short on the last wave
    double computeS = 0.0;  //!< slowest tile's systolic time
    double globalBufS = 0.0;//!< operand traffic service time
    double hbmS = 0.0;      //!< HBM share of the wave's traffic
    double startS = 0.0;    //!< when the wave's compute begins
    double endS = 0.0;      //!< when the wave completes
};

/** Full trace of one simulated GEMM. */
struct GemmTrace
{
    std::vector<WaveRecord> waves;
    long tileM = 0;
    long tileN = 0;
    double totalS = 0.0;

    /** Tile jobs scheduled, recorded at simulation time. */
    long scheduledTiles = 0;

    /** Total tiles scheduled (O(1)). */
    long totalTiles() const { return scheduledTiles; }
};

/**
 * Scalar result of one simulated GEMM: what a sweep consumes, without
 * the per-wave trace. Field-for-field bit-identical to the trace the
 * same simulation would materialize.
 */
struct GemmSummary
{
    long tileM = 0;
    long tileN = 0;
    long waves = 0;      //!< scheduling waves
    long totalTiles = 0; //!< tile jobs scheduled
    double totalS = 0.0; //!< GEMM latency incl. kernel overhead
};

/**
 * Simulate one GEMM wave by wave.
 *
 * Uses the same tile-selection policy as MatmulModel (so the two are
 * directly comparable) but derives timing from the explicit schedule:
 * wave i's operand fetches overlap wave i-1's compute (double
 * buffering), so each wave completes at
 *   end_i = max(end_{i-1}, fetch_ready_i) + compute_i
 * with fetch_ready_i tracking the shared global-buffer and HBM
 * service queues.
 *
 * `params.tileSimEngine` selects the implementation: AGGREGATED (the
 * default) derives each wave from O(1) shape-class counts; LEGACY_WALK
 * is the original O(total tiles) per-tile walk. Both produce
 * bit-identical traces.
 *
 * @param cfg    Device (validated).
 * @param op     Operator with kind == MATMUL (fatal otherwise).
 * @param params Model constants.
 */
GemmTrace simulateGemm(const hw::HardwareConfig &cfg,
                       const model::Op &op,
                       const PerfParams &params = PerfParams{});

/**
 * Simulate one GEMM without materializing the per-wave trace.
 *
 * Same schedule, same recurrence, same doubles as simulateGemm — only
 * the WaveRecord vector is skipped, which is what makes TILE_SIM mode
 * cheap enough to sit inside a DSE sweep (`MatmulModel::time` calls
 * this when `params.gemmMode == GemmMode::TILE_SIM`).
 */
GemmSummary simulateGemmSummary(const hw::HardwareConfig &cfg,
                                const model::Op &op,
                                const PerfParams &params = PerfParams{});

} // namespace perf
} // namespace acs

#endif // ACS_PERF_TILE_SIM_HH
