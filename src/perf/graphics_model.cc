#include "graphics_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace perf {

double
FrameResult::fps() const
{
    panicIf(frameS <= 0.0, "frame time must be positive");
    return 1.0 / frameS;
}

GraphicsModel::GraphicsModel(const hw::HardwareConfig &cfg,
                             const GraphicsParams &params)
    : cfg_(cfg), params_(params)
{
    cfg_.validate();
    fatalIf(params_.textureInflightBytes <= 0.0 ||
            params_.memLatencyS <= 0.0,
            "GraphicsParams: texture concurrency/latency must be > 0");
    fatalIf(params_.cacheHitBase < 0.0 || params_.cacheHitMax > 1.0 ||
            params_.cacheHitBase > params_.cacheHitMax,
            "GraphicsParams: inconsistent cache hit-rate bounds");
}

double
GraphicsModel::textureHitRate() const
{
    const double doublings = std::max(
        0.0, std::log2(cfg_.l2Bytes / (8.0 * units::MIB)));
    return std::min(params_.cacheHitMax,
                    params_.cacheHitBase +
                        params_.cacheHitPerDoubling * doublings);
}

double
GraphicsModel::textureBandwidth() const
{
    // Irregular accesses are latency-bound: the achievable bandwidth
    // is capped by request concurrency regardless of how fast the
    // memory is, which is exactly why capping HBM bandwidth does not
    // hurt gaming (Sec. 5.4).
    const double latency_bound =
        params_.textureInflightBytes / params_.memLatencyS;
    return std::min(cfg_.memBandwidth, latency_bound);
}

FrameResult
GraphicsModel::frameTime(const model::GraphicsWorkload &workload,
                         bool use_tensor_upscaler) const
{
    workload.validate();

    FrameResult r;
    const double vector_flops = cfg_.peakVectorFlops();

    r.geometryS = workload.geometryFlopsPerFrame / vector_flops;
    r.shadeS = workload.fragments() * workload.shadeFlopsPerFragment /
               vector_flops;

    const double miss_rate = 1.0 - textureHitRate();
    const double texture_bytes =
        workload.fragments() * workload.textureBytesPerFragment *
        miss_rate;
    r.textureS = texture_bytes / textureBandwidth();

    r.rasterS = workload.pixels() * workload.rasterBytesPerPixel /
                cfg_.memBandwidth; // streaming writes: full bandwidth

    if (use_tensor_upscaler) {
        fatalIf(cfg_.totalSystolicFpus() <= 0,
                "tensor upscaler requires systolic arrays");
        r.upscaleS = workload.pixels() * params_.upscaleFlopsPerPixel /
                     (cfg_.peakTensorTops() * 1e12 * 0.5);
    }

    // Shading overlaps texture latency (warps switch while waiting);
    // geometry, raster, and upscale serialize with the overlapped
    // core.
    const double overlapped =
        std::max(r.shadeS, r.textureS) +
        (1.0 - params_.shadeTextureOverlap) *
            std::min(r.shadeS, r.textureS);
    r.frameS = r.geometryS + overlapped + r.rasterS + r.upscaleS;
    return r;
}

} // namespace perf
} // namespace acs
