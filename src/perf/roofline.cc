#include "roofline.hh"

#include <algorithm>

#include "common/logging.hh"
#include "perf/simulator.hh"

namespace acs {
namespace perf {

RooflineAnalysis
analyzeRoofline(const hw::HardwareConfig &cfg,
                const model::LayerGraph &graph, int tensor_parallel,
                const PerfParams &params)
{
    cfg.validate();
    const InferenceSimulator sim(cfg, params);
    const LayerResult timing =
        sim.simulateLayer(graph, tensor_parallel);
    panicIf(timing.ops.size() != graph.ops.size(),
            "op/timing size mismatch");

    RooflineAnalysis analysis;
    analysis.peakFlops = cfg.peakTensorTops() * 1e12;
    analysis.memBandwidth = cfg.memBandwidth * params.memEfficiency;
    analysis.ridgeIntensity =
        analysis.peakFlops / analysis.memBandwidth;

    for (std::size_t i = 0; i < graph.ops.size(); ++i) {
        const model::Op &op = graph.ops[i];
        if (op.kind == model::OpKind::ALLREDUCE || op.flops <= 0.0)
            continue;
        const double bytes =
            op.weightBytes + op.inputBytes + op.outputBytes;
        if (bytes <= 0.0)
            continue;

        RooflinePoint point;
        point.name = op.name;
        point.intensity = op.flops / bytes;
        const double latency = timing.ops[i].latencyS;
        panicIf(latency <= 0.0, "op latency must be positive");
        point.achievedFlops = op.flops / latency;
        point.rooflineFlops =
            std::min(analysis.peakFlops,
                     point.intensity * analysis.memBandwidth);
        point.computeBound =
            point.intensity >= analysis.ridgeIntensity;
        analysis.points.push_back(std::move(point));
    }
    return analysis;
}

} // namespace perf
} // namespace acs
