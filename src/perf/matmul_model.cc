#include "matmul_model.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "perf/cycle_sim.hh"
#include "perf/gemm_cache.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {

namespace {

// FP16 element size; the tensor path the TPP definition regulates.
constexpr double ELEM_BYTES = 2.0;

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

long
ceilDivL(long a, long b)
{
    return (a + b - 1) / b;
}

} // anonymous namespace

std::string
toString(Bound bound)
{
    switch (bound) {
      case Bound::COMPUTE:       return "compute";
      case Bound::HBM:           return "hbm";
      case Bound::GLOBAL_BUFFER: return "global-buffer";
      case Bound::INTERCONNECT:  return "interconnect";
    }
    panic("unknown Bound");
}

MatmulModel::MatmulModel(const hw::HardwareConfig &cfg,
                         const PerfParams &params)
    : cfg_(cfg), params_(params)
{
    cfg_.validate();
    // Hash the model constants once: with a GEMM cache installed
    // every time() call embeds this fingerprint in its key.
    if (params_.gemmCache)
        paramsFp_ = fingerprintGemmParams(params_);
}

TileChoice
chooseTiles(const hw::HardwareConfig &cfg, const model::MatmulShape &mm,
            const PerfParams &params)
{
    fatalIf(mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1,
            "chooseTiles: degenerate GEMM dims");

    // Per-lane local-buffer budget holds A tile (Tm x Tk), B tile
    // (Tk x Tn), and the C accumulator (Tm x Tn); double buffered. A
    // square Tm = Tn choice balances pipeline utilization and global-
    // buffer traffic. The no-tiling ablation ignores L1 capacity and
    // assumes a generous fixed kernel tile instead.
    long tile = 256;
    if (params.modelTiling) {
        const double budget_elems =
            cfg.l1BytesPerLane() * params.l1TileFraction / ELEM_BYTES;
        tile = static_cast<long>(std::floor(std::sqrt(
            std::max(1.0, budget_elems / 3.0))));
        tile = std::max<long>(tile, 1);
    }

    TileChoice choice;
    choice.tileM = std::min<long>(tile, mm.m);
    choice.tileN = std::min<long>(
        std::max<long>(tile, cfg.systolicDimY), mm.n);

    // Skinny GEMMs (decode): shrink the column tile toward one array
    // width so the tile count can cover all systolic arrays, as real
    // GEMM kernels do with reduced-N / split-N scheduling. The
    // historical halving cascade
    //   while (tiles() < arrays && tileN > DIMY)
    //       tileN = max(tileN / 2, DIMY);
    // has a closed form: tiles() is monotone in tileN, so the loop
    // stops at the first right-shift that lands at or below
    // max(t_max, DIMY), where t_max is the largest tileN still giving
    // >= arrays tiles. One bit_width computes that shift count.
    const long dim_y = cfg.systolicDimY;
    if (choice.tileN > dim_y) {
        const long arrays = cfg.totalSystolicArrays();
        const long row_tiles = static_cast<long>(mm.batchCount) *
                               ceilDivL(mm.m, choice.tileM);
        if (row_tiles * ceilDivL(mm.n, choice.tileN) < arrays) {
            // row_tiles < arrays here, so the needed column-tile count
            // K is >= 2 and t_max = ceil(n / (K - 1)) - 1 is well
            // defined (possibly 0 when no tileN reaches K columns).
            const long need_cols = ceilDivL(arrays, row_tiles);
            const long t_max = (mm.n + need_cols - 2) / (need_cols - 1) - 1;
            const long target = std::max(t_max, dim_y);
            long tile_n = choice.tileN;
            if (tile_n > target) {
                const int shift = std::bit_width(
                    static_cast<unsigned long long>(tile_n / (target + 1)));
                tile_n >>= shift;
            }
            choice.tileN = std::max(tile_n, dim_y);
        }
    }
    return choice;
}

double
blockedHbmTraffic(const hw::HardwareConfig &cfg, const model::Op &op,
                  const PerfParams &params)
{
    const auto &mm = op.mm;
    if (!mm.weightStationary || !params.modelL2Blocking) {
        // Attention GEMMs (and the no-blocking ablation) stream both
        // operands once.
        return op.weightBytes + op.inputBytes + op.outputBytes;
    }
    // Choose the better blocking orientation: keep a panel of one
    // operand resident in the global buffer and stream the other
    // operand once per panel.
    const double budget = cfg.l2Bytes * params.l2BlockingFraction;
    const double k_bytes = static_cast<double>(mm.k) * ELEM_BYTES;
    const double panel_rows =
        std::max(1.0, std::floor(budget / k_bytes));
    const double passes_b =
        ceilDiv(static_cast<double>(mm.m), panel_rows);
    const double passes_a =
        ceilDiv(static_cast<double>(mm.n), panel_rows);
    const double strat_a_resident =
        op.inputBytes + op.weightBytes * passes_b;
    const double strat_b_resident =
        op.weightBytes + op.inputBytes * passes_a;
    return std::min(strat_a_resident, strat_b_resident) +
           op.outputBytes;
}

double
MatmulModel::globalBufferBandwidth() const
{
    return globalBufferBandwidth(cfg_, params_);
}

double
MatmulModel::globalBufferBandwidth(const hw::HardwareConfig &cfg,
                                   const PerfParams &params)
{
    return params.l2BytesPerCyclePerFpu *
           static_cast<double>(cfg.totalSystolicFpus()) * cfg.clockHz;
}

MatmulTiming
MatmulModel::time(const model::Op &op) const
{
    // Messages only on the failure path: time() runs per op per
    // design in DSE sweeps, and eager concatenation is measurable.
    if (op.kind != model::OpKind::MATMUL)
        fatal("MatmulModel::time requires a MATMUL op: " + op.name);
    const auto &mm = op.mm;
    if (mm.m < 1 || mm.n < 1 || mm.k < 1 || mm.batchCount < 1)
        fatal("MatmulModel::time: degenerate GEMM dims in " + op.name);

    // Cross-design memoization (simulating modes only — the analytic
    // closed form is cheaper than a lookup): consult the sweep-scoped
    // cache before doing any modeling. Hits return the exact bits the
    // miss path stored, so cached and uncached sweeps are
    // byte-identical; the params fingerprint keys entries by mode, so
    // TILE_SIM and CYCLE_SIM timings never alias.
    GemmCache *const cache =
        params_.gemmMode != GemmMode::ANALYTIC ? params_.gemmCache
                                               : nullptr;
    GemmCacheKey cache_key;
    if (cache) {
        cache_key = makeGemmCacheKey(cfg_, op, params_, paramsFp_);
        MatmulTiming cached;
        if (cache->find(cache_key, &cached)) {
            if (obs::enabled()) {
                obs::counterAdd("perf.gemm_cache.hits");
                obs::counterAdd("perf.matmul.timed");
            }
            return cached;
        }
    }

    MatmulTiming t;

    const TileChoice tiles_choice = chooseTiles(cfg_, mm, params_);
    t.tileM = tiles_choice.tileM;
    t.tileN = tiles_choice.tileN;
    const double arrays_avail = cfg_.totalSystolicArrays();
    auto tile_count = [&]() {
        return static_cast<double>(mm.batchCount) *
               ceilDiv(static_cast<double>(mm.m), t.tileM) *
               ceilDiv(static_cast<double>(mm.n), t.tileN);
    };

    // ---- Compute time --------------------------------------------------
    // Pipeline-fill loss: each (k-slice, n-slice) wave streams tileM
    // rows through a DIMX x DIMY array and pays DIMX + DIMY cycles of
    // fill/drain.
    double pipe_util = 1.0;
    if (params_.modelPipelineFill) {
        const double exposed_fill =
            (1.0 - params_.pipelineFillOverlap) *
            (cfg_.systolicDimX + cfg_.systolicDimY);
        pipe_util = static_cast<double>(t.tileM) /
                    (t.tileM + exposed_fill);
    }

    // Work-distribution loss: the last wave of tiles may not fill all
    // systolic arrays.
    const double arrays = arrays_avail;
    const double tiles = tile_count();
    const double tile_util = tiles / (ceilDiv(tiles, arrays) * arrays);

    t.utilization = pipe_util * tile_util;
    const double peak_flops = cfg_.peakTensorTops() * 1e12;
    panicIf(peak_flops <= 0.0, "peak tensor throughput must be positive");
    t.computeS = op.flops / (peak_flops * t.utilization);

    const double hbm_traffic = blockedHbmTraffic(cfg_, op, params_);
    t.hbmTrafficBytes = hbm_traffic;
    t.hbmS = hbm_traffic / (cfg_.memBandwidth * params_.memEfficiency);

    // ---- Global-buffer traffic ------------------------------------------
    // Lanes within a core share the local buffer, so a core's lanes
    // process adjacent Tm-slices against a shared (k x Tn) B slab: A
    // re-reads once per column strip, B once per (lanes x Tm) row
    // group.
    const double k_elems = static_cast<double>(mm.k);
    const double l2_traffic =
        static_cast<double>(mm.batchCount) *
            (ceilDiv(static_cast<double>(mm.n), t.tileN) *
                 static_cast<double>(mm.m) * k_elems +
             ceilDiv(static_cast<double>(mm.m),
                     static_cast<double>(cfg_.lanesPerCore) * t.tileM) *
                 static_cast<double>(mm.n) * k_elems) *
            ELEM_BYTES +
        op.outputBytes;
    t.globalBufS = l2_traffic /
                   (globalBufferBandwidth() * params_.l2Efficiency);

    // ---- Roofline combination -------------------------------------------
    t.totalS = std::max({t.computeS, t.hbmS, t.globalBufS}) +
               params_.kernelOverheadS;
    // Attribute the bound by argmax over the component times directly
    // (ties prefer compute, then HBM) rather than reconstructing and
    // float-comparing totalS, which is brittle under FP rounding.
    if (t.computeS >= t.hbmS && t.computeS >= t.globalBufS)
        t.bound = Bound::COMPUTE;
    else if (t.hbmS >= t.globalBufS)
        t.bound = Bound::HBM;
    else
        t.bound = Bound::GLOBAL_BUFFER;

    if (obs::enabled())
        obs::counterAdd("perf.matmul.timed");

    // Detailed modes: take the latency from the explicit schedule —
    // wave-granular (TILE_SIM) or cycle-level (CYCLE_SIM) — while the
    // analytic decomposition above still labels the binding resource
    // and utilization. The summary paths skip trace materialization,
    // and the per-run op-shape memo (PerfParams::memoizeOps, applied
    // above this model in simulateLayer) caches simulated timings
    // exactly like analytic ones.
    if (params_.gemmMode != GemmMode::ANALYTIC) {
        t.totalS = params_.gemmMode == GemmMode::TILE_SIM
                       ? simulateGemmSummary(cfg_, op, params_).totalS
                       : simulateGemmCycles(cfg_, op, params_).totalS;
        if (cache) {
            cache->insert(cache_key, t);
            if (obs::enabled())
                obs::counterAdd("perf.gemm_cache.misses");
        }
    }
    return t;
}

} // namespace perf
} // namespace acs
