/**
 * @file
 * Latency model for elementwise/reduction vector operators.
 *
 * Softmax, LayerNorm, activations, and residual adds have low arithmetic
 * intensity (Sec. 3.1): their latency is the max of vector-throughput
 * time and memory-streaming time, with the streaming level chosen by
 * whether the working set fits the global buffer.
 */

#ifndef ACS_PERF_VECTOR_MODEL_HH
#define ACS_PERF_VECTOR_MODEL_HH

#include "hw/config.hh"
#include "model/ops.hh"
#include "perf/matmul_model.hh"
#include "perf/perf_params.hh"

namespace acs {
namespace perf {

/** Timing of one vector op. */
struct VectorTiming
{
    double computeS = 0.0; //!< vector-unit time
    double memoryS = 0.0;  //!< streaming time at the serving level
    bool servedByGlobalBuffer = false;
    Bound bound = Bound::COMPUTE;
    double totalS = 0.0;
};

/**
 * Vector-op latency estimator for one device.
 *
 * Thread-compatible: const after construction.
 */
class VectorModel
{
  public:
    VectorModel(const hw::HardwareConfig &cfg, const PerfParams &params);

    /**
     * Time one vector operator.
     *
     * @param op Operator with kind == VECTOR (fatal otherwise).
     */
    VectorTiming time(const model::Op &op) const;

  private:
    hw::HardwareConfig cfg_;
    PerfParams params_;
    double globalBufBandwidth_;
};

} // namespace perf
} // namespace acs

#endif // ACS_PERF_VECTOR_MODEL_HH
