#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace acs {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    fatalIf(headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != headers_.size(),
            "Table row has " + std::to_string(cells.size()) +
            " cells, expected " + std::to_string(headers_.size()));
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    };

    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
fmtPercent(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

} // namespace acs
