#include "thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace acs {
namespace common {

namespace {

/**
 * Nonzero while the current thread is executing batch items; a
 * parallelFor() issued from inside a batch runs inline instead of
 * re-entering the pool (which would deadlock on the batch mutex).
 */
thread_local int batchDepth = 0;

unsigned
defaultWorkerCount()
{
    if (const char *env = std::getenv("ACS_THREADS")) {
        const long n = std::atol(env);
        if (n >= 1)
            return static_cast<unsigned>(n - 1);
        warn("ACS_THREADS must be >= 1; using hardware concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
}

} // anonymous namespace

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkerCount();
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            batch = current_;
        }
        runBatch(*batch);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--workersBusy_ == 0)
                doneCv_.notify_all();
        }
    }
}

void
ThreadPool::runBatch(Batch &batch)
{
    ++batchDepth;
    for (;;) {
        if (batch.failed.load(std::memory_order_relaxed))
            break;
        const std::size_t start =
            batch.next.fetch_add(batch.chunk, std::memory_order_relaxed);
        if (start >= batch.count)
            break;
        const std::size_t end =
            std::min(start + batch.chunk, batch.count);
        try {
            for (std::size_t i = start; i < end; ++i)
                (*batch.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!batch.error)
                batch.error = std::current_exception();
            batch.failed.store(true, std::memory_order_relaxed);
        }
    }
    --batchDepth;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t chunk)
{
    if (count == 0)
        return;
    panicIf(!fn, "ThreadPool::parallelFor: null function");

    Batch batch;
    batch.fn = &fn;
    batch.count = count;
    if (chunk == 0) {
        // ~8 chunks per lane balances stealing granularity against
        // cursor contention; capped so huge batches still rebalance.
        chunk = count / (static_cast<std::size_t>(concurrency()) * 8);
        chunk = std::clamp<std::size_t>(chunk, 1, 64);
    }
    batch.chunk = chunk;

    // Serial fast path: nothing to fan out to (or we are already
    // inside a batch and re-entering the pool would deadlock).
    if (workers_.empty() || count <= chunk || batchDepth > 0) {
        runBatch(batch);
        if (batch.error)
            std::rethrow_exception(batch.error);
        return;
    }

    std::lock_guard<std::mutex> batchLock(batchMu_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        current_ = &batch;
        ++generation_;
        workersBusy_ = workerCount();
    }
    workCv_.notify_all();
    runBatch(batch);
    {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] { return workersBusy_ == 0; });
        current_ = nullptr;
    }
    if (batch.error)
        std::rethrow_exception(batch.error);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

} // namespace common
} // namespace acs
