/**
 * @file
 * A lock-striped concurrent hash map for hot-path result reuse.
 *
 * The DSE pipeline re-derives identical intermediate results from
 * many threads at once (the same (device-tiling, op-shape) GEMM is
 * simulated for thousands of sweep neighbours); a single-mutex map
 * would serialize exactly the path the cache exists to accelerate.
 * ShardedCache stripes the key space over a fixed power-of-two number
 * of independently locked shards, so concurrent lookups of different
 * keys contend only when their hashes land in the same stripe.
 *
 * Design points:
 *  - fixed shard count (chosen at construction, rounded up to a power
 *    of two) — no resizing coordination, no global locks, ever;
 *  - per-shard std::mutex guarding a std::unordered_map — insertions
 *    are first-writer-wins, so racing computations of the same key
 *    are benign when the value is a pure function of the key;
 *  - per-shard hit/miss tallies recorded under the shard lock and
 *    summed on demand, so stats stay exact without atomic traffic.
 *
 * Thread-safe: all member functions may be called concurrently.
 */

#ifndef ACS_COMMON_SHARDED_CACHE_HH
#define ACS_COMMON_SHARDED_CACHE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace acs {
namespace common {

/**
 * Lock-striped concurrent cache from Key to Value.
 *
 * @tparam Key   Copyable, equality-comparable key.
 * @tparam Value Copyable cached result.
 * @tparam Hash  Hash functor for Key (also selects the shard).
 */
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache
{
  public:
    /** Exact aggregate statistics at one point in time. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0; //!< find() misses + insert-creating calls
        std::size_t entries = 0;

        /** Hits over lookups, 0 when nothing was looked up. */
        double hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total == 0 ? 0.0
                              : static_cast<double>(hits) /
                                    static_cast<double>(total);
        }
    };

    /**
     * @param shards Stripe count; rounded up to a power of two, floor
     *               1. The default (64) keeps the chance of two of a
     *               dozen sweep workers colliding on a stripe small
     *               without bloating the footprint of short sweeps.
     */
    explicit ShardedCache(std::size_t shards = 64)
        : mask_(std::bit_ceil(shards < 1 ? std::size_t{1} : shards) - 1),
          shards_(std::make_unique<Shard[]>(mask_ + 1))
    {}

    /** Stripes actually allocated. */
    std::size_t shardCount() const { return mask_ + 1; }

    /**
     * Look @p key up; on a hit copy the cached value into @p out.
     *
     * @return true on a hit. Tallies the hit or miss either way.
     */
    bool find(const Key &key, Value *out) const
    {
        Shard &shard = shardFor(key);
        const std::lock_guard<std::mutex> lock(shard.mu);
        const auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.misses;
            return false;
        }
        ++shard.hits;
        *out = it->second;
        return true;
    }

    /**
     * Insert @p value under @p key unless the key is already present
     * (first-writer-wins: with deterministic values both writers carry
     * identical bits, so dropping the loser changes nothing).
     *
     * @return true when this call created the entry.
     */
    bool insert(const Key &key, const Value &value)
    {
        Shard &shard = shardFor(key);
        const std::lock_guard<std::mutex> lock(shard.mu);
        return shard.map.emplace(key, value).second;
    }

    /**
     * The cached value for @p key, computing and caching it via
     * @p compute() on a miss. Racing computations of one key are
     * allowed (the lock is not held while computing); the first
     * completed insert wins and every caller returns that entry's
     * value bit-for-bit once it lands.
     */
    template <typename Fn>
    Value getOrCompute(const Key &key, Fn &&compute)
    {
        Value value;
        if (find(key, &value))
            return value;
        value = compute();
        Shard &shard = shardFor(key);
        const std::lock_guard<std::mutex> lock(shard.mu);
        return shard.map.emplace(key, value).first->second;
    }

    /** Exact totals across all shards (locks each in turn). */
    Stats stats() const
    {
        Stats s;
        for (std::size_t i = 0; i <= mask_; ++i) {
            const std::lock_guard<std::mutex> lock(shards_[i].mu);
            s.hits += shards_[i].hits;
            s.misses += shards_[i].misses;
            s.entries += shards_[i].map.size();
        }
        return s;
    }

    /** Cached entries across all shards. */
    std::size_t size() const { return stats().entries; }

    /** Drop every entry and zero the tallies. */
    void clear()
    {
        for (std::size_t i = 0; i <= mask_; ++i) {
            const std::lock_guard<std::mutex> lock(shards_[i].mu);
            shards_[i].map.clear();
            shards_[i].hits = 0;
            shards_[i].misses = 0;
        }
    }

  private:
    /**
     * One stripe, padded to its own cache lines so neighbouring
     * shards' mutexes never false-share under concurrent traffic.
     */
    struct alignas(64) Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key, Value, Hash> map;
        std::uint64_t hits = 0;   //!< guarded by mu
        std::uint64_t misses = 0; //!< guarded by mu
    };

    Shard &shardFor(const Key &key) const
    {
        // Fold the high bits in: unordered_map already consumes the
        // low bits for bucketing, so sharding on them alone would put
        // a stripe's worth of keys in the same bucket chain.
        const std::size_t h = Hash{}(key);
        return shards_[(h ^ (h >> 16)) & mask_];
    }

    std::size_t mask_;
    std::unique_ptr<Shard[]> shards_;
};

} // namespace common
} // namespace acs

#endif // ACS_COMMON_SHARDED_CACHE_HH
