/**
 * @file
 * A reusable fixed-size worker pool with chunked work-stealing.
 *
 * The DSE pipeline evaluates hundreds of thousands of design points
 * in batches (one batch per sweep, several sweeps per bench); spawning
 * a fresh std::thread crew per batch wastes both startup latency and
 * scheduler warm-up. ThreadPool keeps one set of workers alive for the
 * process and hands them batches through parallelFor(): items are
 * claimed in chunks off a shared atomic cursor, so imbalanced items
 * (big prefill graphs next to tiny decode graphs) still spread evenly.
 *
 * The calling thread always participates in the batch, so a pool with
 * N workers executes with N+1-way concurrency and a pool with zero
 * workers (single-core hosts) degrades to a plain serial loop with no
 * synchronization beyond one atomic.
 */

#ifndef ACS_COMMON_THREAD_POOL_HH
#define ACS_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acs {
namespace common {

/**
 * Fixed-size reusable worker pool.
 *
 * Thread-safe: concurrent parallelFor() calls are serialized (one
 * batch owns the pool at a time). A parallelFor() issued from inside a
 * pool worker runs the nested batch inline on the calling thread
 * instead of deadlocking on the pool.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Worker thread count; 0 sizes the pool to
     *                hardware_concurrency() - 1 (the caller supplies
     *                the remaining lane), so a 1-core host gets a
     *                zero-worker, purely serial pool.
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers (waits for an in-flight batch to finish). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Pool threads (excluding the batch-submitting caller). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Concurrent lanes a batch can use: workers + the caller. */
    unsigned concurrency() const { return workerCount() + 1; }

    /**
     * Run fn(i) for every i in [0, count) and block until all are
     * done. The caller participates; workers claim `chunk` indices at
     * a time off a shared cursor (chunk 0 picks a size that yields
     * ~8 chunks per lane, clamped to [1, 64]).
     *
     * If any invocation throws, the remaining unclaimed chunks are
     * abandoned, in-flight chunks finish, and the first exception is
     * rethrown here; the pool remains usable afterwards.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t chunk = 0);

    /**
     * The process-wide shared pool, sized on first use from the
     * ACS_THREADS environment variable when set (worker count =
     * ACS_THREADS - 1) or hardware concurrency otherwise. All library
     * batch entry points (dse::DesignEvaluator::evaluateAllParallel,
     * evaluateStream) route through it so benches and tools reuse one
     * warm crew across every sweep.
     */
    static ThreadPool &shared();

  private:
    /** One submitted batch; lives on the submitter's stack. */
    struct Batch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t count = 0;
        std::size_t chunk = 1;
        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error; //!< guarded by the pool mutex
    };

    void workerLoop();
    void runBatch(Batch &batch);

    std::vector<std::thread> workers_;
    std::mutex mu_;                  //!< guards the fields below
    std::condition_variable workCv_; //!< new batch or shutdown
    std::condition_variable doneCv_; //!< all workers left the batch
    Batch *current_ = nullptr;
    std::uint64_t generation_ = 0;
    unsigned workersBusy_ = 0;
    bool stop_ = false;

    std::mutex batchMu_; //!< serializes concurrent parallelFor calls
};

} // namespace common
} // namespace acs

#endif // ACS_COMMON_THREAD_POOL_HH
