/**
 * @file
 * Aligned plain-text table writer used by benches to print the paper's
 * tables, plus a CSV emitter for downstream plotting.
 */

#ifndef ACS_COMMON_TABLE_HH
#define ACS_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace acs {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Design", "TTFT (ms)", "TBT (ms)"});
 *   t.addRow({"A100", "275.1", "1.43"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /**
     * Append one row.
     *
     * @param cells One cell per column; fatal on column-count mismatch.
     */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with headers, a separator rule, and aligned columns. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p precision digits after the decimal point. */
std::string fmt(double value, int precision = 2);

/** Format a double as "x.xx%" (value 0.042 -> "4.20%"). */
std::string fmtPercent(double fraction, int precision = 1);

} // namespace acs

#endif // ACS_COMMON_TABLE_HH
