/**
 * @file
 * Unit conversion constants and strong-ish unit helpers.
 *
 * The library keeps all quantities in SI-flavoured base units:
 * bytes, bytes/second, seconds, hertz, mm^2, operations/second.
 * Named multipliers below make call sites self-documenting:
 * e.g. `2.0 * units::TBPS` for 2 TB/s of HBM bandwidth.
 */

#ifndef ACS_COMMON_UNITS_HH
#define ACS_COMMON_UNITS_HH

#include <cstdint>

namespace acs {
namespace units {

// Decimal byte multipliers (datasheet convention: 1 GB/s = 1e9 B/s).
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

// Binary byte multipliers (SRAM capacities: 192 KiB L1 etc.).
constexpr double KIB = 1024.0;
constexpr double MIB = 1024.0 * 1024.0;
constexpr double GIB = 1024.0 * 1024.0 * 1024.0;

// Bandwidths.
constexpr double GBPS = 1e9;  //!< bytes/second
constexpr double TBPS = 1e12; //!< bytes/second

// Rates and counts.
constexpr double MHZ = 1e6;
constexpr double GHZ = 1e9;
constexpr double TERA = 1e12;
constexpr double GIGA = 1e9;

// Times.
constexpr double MS = 1e-3;
constexpr double US = 1e-6;
constexpr double NS = 1e-9;

/** Convert seconds to milliseconds (for reporting). */
constexpr double
toMs(double seconds)
{
    return seconds / MS;
}

/** Convert bytes/second to GB/s (for reporting). */
constexpr double
toGBps(double bytes_per_s)
{
    return bytes_per_s / GBPS;
}

} // namespace units
} // namespace acs

#endif // ACS_COMMON_UNITS_HH
