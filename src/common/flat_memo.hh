/**
 * @file
 * Fixed-capacity, lock-free, insert-only memo from a non-zero 64-bit
 * key to a double value.
 *
 * The serving simulator's hot loop consults its iteration-cost memo
 * once per scheduler iteration — millions of times per trace-scale
 * run — so the memo must cost a couple of cache hits, not a mutex
 * plus a red-black-tree walk. This table is open addressing with
 * linear probing over (atomic key, atomic value-bits) slots:
 *
 *  - find() is entirely lock-free: one hash, a short probe of
 *    acquire-loads, done. No reader ever blocks a writer.
 *  - insert() claims a slot by CASing the key from 0, then publishes
 *    the value bits with a release store. A reader that races the
 *    publication sees the kPending sentinel and treats the probe as a
 *    miss — it recomputes and stores the *identical* bits (the
 *    caller's contract: values are pure functions of the key), so
 *    there is no torn or wrong value to observe, and ThreadSanitizer
 *    sees only atomics.
 *  - capacity is fixed at construction (the table never rehashes, so
 *    readers never chase a resize). When the table fills up, insert()
 *    returns false and tallies an overflow; callers layer an
 *    unbounded fallback (e.g. common::ShardedCache) behind it.
 *
 * Key 0 marks an empty slot, so callers must map their key space onto
 * non-zero values (a tag bit does it).
 */

#ifndef ACS_COMMON_FLAT_MEMO_HH
#define ACS_COMMON_FLAT_MEMO_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace acs {
namespace common {

class AtomicFlatMemo
{
  public:
    /** Capacity is rounded up to a power of two (>= 64). */
    explicit AtomicFlatMemo(std::size_t capacity = 1 << 12)
        : slots_(std::bit_ceil(capacity < 64 ? std::size_t{64}
                                             : capacity)),
          mask_(slots_.size() - 1)
    {}

    /**
     * Look @p key up; true stores the memoized value in @p out.
     * Lock-free. A concurrently inserting key whose value bits are
     * not yet published reads as a miss.
     */
    bool
    find(std::uint64_t key, double *out) const
    {
        for (std::size_t i = 0; i <= mask_; ++i) {
            const Slot &s = slots_[probe(key, i)];
            const std::uint64_t k =
                s.key.load(std::memory_order_acquire);
            if (k == 0)
                return false;
            if (k == key) {
                const std::uint64_t bits =
                    s.bits.load(std::memory_order_acquire);
                if (bits == kPending)
                    return false;
                *out = std::bit_cast<double>(bits);
                return true;
            }
        }
        return false;
    }

    /**
     * Memoize @p value under @p key (non-zero; @p value must be a
     * pure function of @p key and must not be a NaN — NaN bit
     * patterns are reserved for the pending sentinel). Returns false
     * when the table is full and the pair was dropped.
     */
    bool
    insert(std::uint64_t key, double value)
    {
        if (key == 0)
            panic("AtomicFlatMemo: key 0 is reserved");
        const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
        if (bits == kPending)
            panic("AtomicFlatMemo: value collides with the pending "
                  "sentinel");
        for (std::size_t i = 0; i <= mask_; ++i) {
            Slot &s = slots_[probe(key, i)];
            std::uint64_t k = s.key.load(std::memory_order_acquire);
            if (k == 0 &&
                s.key.compare_exchange_strong(
                    k, key, std::memory_order_acq_rel)) {
                s.bits.store(bits, std::memory_order_release);
                entries_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            if (k == key) {
                // A racing compute of the same key: identical bits by
                // contract, so this store is idempotent (and also
                // completes a publication the claimer has not
                // finished yet).
                s.bits.store(bits, std::memory_order_release);
                return true;
            }
        }
        overflows_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    /** Distinct keys successfully claimed so far. */
    std::size_t
    entries() const
    {
        return entries_.load(std::memory_order_relaxed);
    }

    /** Inserts dropped because every probe slot was taken. */
    std::size_t
    overflows() const
    {
        return overflows_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    struct Slot
    {
        std::atomic<std::uint64_t> key{0};
        std::atomic<std::uint64_t> bits{kPending};
    };

    /** Quiet-NaN payload no finite latency value can alias. */
    static constexpr std::uint64_t kPending = 0x7ff8dead'beefdeadULL;

    /** SplitMix64-style mix, then linear probe offset @p i. */
    std::size_t
    probe(std::uint64_t key, std::size_t i) const
    {
        std::uint64_t h = key;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return (static_cast<std::size_t>(h) + i) & mask_;
    }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::atomic<std::size_t> entries_{0};
    std::atomic<std::size_t> overflows_{0};
};

} // namespace common
} // namespace acs

#endif // ACS_COMMON_FLAT_MEMO_HH
