#include "logging.hh"

#include <atomic>
#include <iostream>

namespace acs {

namespace {

std::atomic<bool> verboseEnabled{true};

} // anonymous namespace

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    if (verboseEnabled.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

} // namespace acs
