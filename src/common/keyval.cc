#include "keyval.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace acs {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // anonymous namespace

KeyVal
KeyVal::parse(const std::string &text)
{
    KeyVal kv;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::string stripped = trim(line);
        if (stripped.empty())
            continue;
        const std::size_t eq = stripped.find('=');
        fatalIf(eq == std::string::npos,
                "keyval: line " + std::to_string(line_no) +
                " has no '=': " + stripped);
        const std::string key = trim(stripped.substr(0, eq));
        const std::string value = trim(stripped.substr(eq + 1));
        fatalIf(key.empty(), "keyval: empty key at line " +
                std::to_string(line_no));
        kv.set(key, value);
    }
    return kv;
}

std::string
KeyVal::serialize() const
{
    std::ostringstream out;
    for (const auto &[key, value] : values_)
        out << key << " = " << value << "\n";
    return out.str();
}

void
KeyVal::set(const std::string &key, const std::string &value)
{
    fatalIf(key.empty(), "keyval: key must be non-empty");
    fatalIf(value.find('\n') != std::string::npos,
            "keyval: value must be single-line: " + key);
    values_[key] = value;
}

void
KeyVal::setDouble(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    set(key, oss.str());
}

void
KeyVal::setInt(const std::string &key, long value)
{
    set(key, std::to_string(value));
}

void
KeyVal::setBool(const std::string &key, bool value)
{
    set(key, value ? "true" : "false");
}

bool
KeyVal::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
KeyVal::getString(const std::string &key) const
{
    const auto it = values_.find(key);
    fatalIf(it == values_.end(), "keyval: missing key '" + key + "'");
    return it->second;
}

double
KeyVal::getDouble(const std::string &key) const
{
    const std::string raw = getString(key);
    char *end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    fatalIf(end == raw.c_str() || *end != '\0',
            "keyval: '" + key + "' is not a number: " + raw);
    return value;
}

long
KeyVal::getInt(const std::string &key) const
{
    const std::string raw = getString(key);
    char *end = nullptr;
    const long value = std::strtol(raw.c_str(), &end, 10);
    fatalIf(end == raw.c_str() || *end != '\0',
            "keyval: '" + key + "' is not an integer: " + raw);
    return value;
}

bool
KeyVal::getBool(const std::string &key) const
{
    const std::string raw = getString(key);
    if (raw == "true" || raw == "1")
        return true;
    if (raw == "false" || raw == "0")
        return false;
    fatal("keyval: '" + key + "' is not a boolean: " + raw);
}

double
KeyVal::getDouble(const std::string &key, double fallback) const
{
    return has(key) ? getDouble(key) : fallback;
}

long
KeyVal::getInt(const std::string &key, long fallback) const
{
    return has(key) ? getInt(key) : fallback;
}

} // namespace acs
