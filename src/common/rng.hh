/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * Simulation results must be reproducible across platforms, so the library
 * never uses std::random_device or platform-dependent distributions.
 * SplitMix64 passes BigCrush and is trivially portable.
 */

#ifndef ACS_COMMON_RNG_HH
#define ACS_COMMON_RNG_HH

#include <cstdint>

namespace acs {

/** Deterministic 64-bit PRNG (SplitMix64, Steele et al.). */
class Rng
{
  public:
    /** Seed the generator; identical seeds give identical streams. */
    explicit Rng(std::uint64_t seed)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

  private:
    std::uint64_t state_;
};

} // namespace acs

#endif // ACS_COMMON_RNG_HH
