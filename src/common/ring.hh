/**
 * @file
 * A FIFO queue over a power-of-two ring buffer.
 *
 * std::deque reaches steady state still allocating: libstdc++ slides
 * a map of ~512-byte nodes, so every few push/pop pairs hit the heap.
 * The serving simulator's admission queues push and pop millions of
 * times per trace-scale run, and the fast-path contract is zero
 * steady-state allocations — a ring buffer only ever allocates when
 * the high-water mark grows, after which push_back/pop_front are an
 * index increment each.
 *
 * Only the operations the simulator needs: FIFO push/pop, front,
 * size, and a reserve() warm-up hook. Not thread-safe.
 */

#ifndef ACS_COMMON_RING_HH
#define ACS_COMMON_RING_HH

#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace acs {
namespace common {

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &
    front()
    {
        if (count_ == 0)
            panic("RingQueue: front on empty queue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        if (count_ == 0)
            panic("RingQueue: front on empty queue");
        return buf_[head_];
    }

    void
    push_back(T value)
    {
        if (count_ == buf_.size())
            grow(count_ ? count_ * 2 : kMinCapacity);
        buf_[(head_ + count_) & (buf_.size() - 1)] =
            std::move(value);
        ++count_;
    }

    void
    pop_front()
    {
        if (count_ == 0)
            panic("RingQueue: pop_front on empty queue");
        buf_[head_] = T{}; // release resources held by the slot
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
    }

    /** Pre-size the ring so pushes up to @p n never allocate. */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            grow(n);
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    /** Re-seat the live range contiguously at the front. */
    void
    grow(std::size_t at_least)
    {
        std::vector<T> next(std::bit_ceil(
            at_least < kMinCapacity ? kMinCapacity : at_least));
        for (std::size_t i = 0; i < count_; ++i)
            next[i] =
                std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace common
} // namespace acs

#endif // ACS_COMMON_RING_HH
