/**
 * @file
 * Minimal key=value configuration text format.
 *
 * One `key = value` pair per line; `#` starts a comment; blank lines
 * ignored. Used to serialize HardwareConfig so tools can load design
 * points from files without external dependencies.
 */

#ifndef ACS_COMMON_KEYVAL_HH
#define ACS_COMMON_KEYVAL_HH

#include <map>
#include <string>

namespace acs {

/**
 * An ordered key -> string-value map with typed accessors.
 *
 * Accessors are strict: a missing key or an unparsable value is a
 * fatal (user) error naming the key.
 */
class KeyVal
{
  public:
    KeyVal() = default;

    /** Parse the text format (fatal on malformed lines). */
    static KeyVal parse(const std::string &text);

    /** Serialize back to the text format (keys sorted). */
    std::string serialize() const;

    /** Set a key (any printable value without newlines). */
    void set(const std::string &key, const std::string &value);
    void setDouble(const std::string &key, double value);
    void setInt(const std::string &key, long value);
    void setBool(const std::string &key, bool value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Typed getters: fatal when missing or unparsable. */
    std::string getString(const std::string &key) const;
    double getDouble(const std::string &key) const;
    long getInt(const std::string &key) const;
    bool getBool(const std::string &key) const;

    /** Typed getters with defaults for absent keys. */
    double getDouble(const std::string &key, double fallback) const;
    long getInt(const std::string &key, long fallback) const;

    /** Number of keys. */
    std::size_t size() const { return values_.size(); }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace acs

#endif // ACS_COMMON_KEYVAL_HH
