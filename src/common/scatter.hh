/**
 * @file
 * ASCII scatter plots so the figure benches can render the paper's
 * figures directly into the terminal / bench_output.txt.
 *
 * Each series has a one-character glyph; later series overdraw earlier
 * ones at collisions. Axes are linear with numeric tick labels.
 */

#ifndef ACS_COMMON_SCATTER_HH
#define ACS_COMMON_SCATTER_HH

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace acs {

/** One named point series on a ScatterPlot. */
struct ScatterSeries
{
    std::string name;   //!< legend label
    char glyph = '*';   //!< character drawn for each point
    std::vector<double> xs;
    std::vector<double> ys;
};

/** Axis-limit overrides; any unset bound is derived from the data. */
struct ScatterLimits
{
    std::optional<double> xMin;
    std::optional<double> xMax;
    std::optional<double> yMin;
    std::optional<double> yMax;
};

/**
 * A fixed-size character-grid scatter plot.
 *
 * Intended for the classification scatters (Figs 1, 2, 9, 10) and DSE
 * clouds (Figs 5-8) — enough fidelity to see regions and crossovers.
 */
class ScatterPlot
{
  public:
    /**
     * @param title  Plot title printed above the grid.
     * @param x_label X-axis label.
     * @param y_label Y-axis label.
     * @param width  Grid width in characters (>= 16, fatal otherwise).
     * @param height Grid height in characters (>= 8, fatal otherwise).
     */
    ScatterPlot(std::string title, std::string x_label, std::string y_label,
                int width = 72, int height = 24);

    /** Add a point series; empty series are allowed and skipped. */
    void addSeries(ScatterSeries series);

    /** Override automatic axis limits. */
    void setLimits(const ScatterLimits &limits) { limits_ = limits; }

    /** Render the plot, axes, and legend. No-op warning if no points. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    int width_;
    int height_;
    ScatterLimits limits_;
    std::vector<ScatterSeries> series_;
};

} // namespace acs

#endif // ACS_COMMON_SCATTER_HH
