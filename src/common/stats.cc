#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "logging.hh"

namespace acs {

namespace {

// Percentile of an already-sorted sample via linear interpolation.
double
sortedPercentile(const std::vector<double> &sorted, double q)
{
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // anonymous namespace

SummaryStats
summarize(const std::vector<double> &samples)
{
    fatalIf(samples.empty(), "summarize() requires a non-empty sample");

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    SummaryStats s;
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
             static_cast<double>(sorted.size());
    s.median = sortedPercentile(sorted, 50.0);
    s.p25 = sortedPercentile(sorted, 25.0);
    s.p75 = sortedPercentile(sorted, 75.0);

    double var = 0.0;
    for (double v : sorted)
        var += (v - s.mean) * (v - s.mean);
    var /= static_cast<double>(sorted.size());
    s.stddev = std::sqrt(var);
    return s;
}

double
narrowingFactor(const SummaryStats &baseline, const SummaryStats &constrained)
{
    const double base = baseline.range();
    const double narrow = constrained.range();
    if (narrow == 0.0) {
        return base == 0.0 ? 1.0
                           : std::numeric_limits<double>::infinity();
    }
    return base / narrow;
}

double
percentile(std::vector<double> samples, double q)
{
    fatalIf(samples.empty(), "percentile() requires a non-empty sample");
    fatalIf(q < 0.0 || q > 100.0, "percentile rank must be in [0, 100]");
    std::sort(samples.begin(), samples.end());
    return sortedPercentile(samples, q);
}

} // namespace acs
