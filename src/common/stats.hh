/**
 * @file
 * Summary statistics over sample vectors.
 *
 * The paper quantifies how well an architectural constraint predicts
 * workload performance by how much it *narrows* the latency distribution
 * of a design-space sweep (e.g. "42.4x narrower"). SummaryStats provides
 * the range/median/percentile machinery and narrowingFactor() computes the
 * paper's headline ratio.
 */

#ifndef ACS_COMMON_STATS_HH
#define ACS_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace acs {

/** Order statistics and moments of a non-empty sample. */
struct SummaryStats
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0; //!< population standard deviation
    double p25 = 0.0;    //!< first quartile
    double p75 = 0.0;    //!< third quartile

    /** Full spread of the sample (max - min). */
    double range() const { return max - min; }

    /** Interquartile range (p75 - p25). */
    double iqr() const { return p75 - p25; }
};

/**
 * Compute summary statistics of @p samples.
 *
 * Percentiles use linear interpolation between closest ranks.
 *
 * @param samples Sample values; must be non-empty (fatal otherwise).
 * @return Summary statistics of the sample.
 */
SummaryStats summarize(const std::vector<double> &samples);

/**
 * The paper's distribution-narrowing factor.
 *
 * How many times narrower the @p constrained distribution's range is
 * compared to the @p baseline distribution's range. Values > 1 mean the
 * architectural constraint is a better performance predictor.
 *
 * @param baseline    Stats of the unconstrained (e.g. TPP-only) sweep.
 * @param constrained Stats of the sweep with one parameter fixed.
 * @return baseline.range() / constrained.range(); infinity if the
 *         constrained range is zero and the baseline range is not.
 */
double narrowingFactor(const SummaryStats &baseline,
                       const SummaryStats &constrained);

/**
 * Interpolated percentile of a sample (q in [0, 100]).
 *
 * @param samples Non-empty sample values.
 * @param q       Percentile rank in [0, 100]; fatal outside the range.
 */
double percentile(std::vector<double> samples, double q);

} // namespace acs

#endif // ACS_COMMON_STATS_HH
