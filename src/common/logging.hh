/**
 * @file
 * Status and error reporting helpers following the gem5 idiom.
 *
 * fatal() is for user errors (bad configuration, invalid arguments): the
 * program cannot continue but the library itself is not broken. panic() is
 * for conditions that should never happen regardless of user input, i.e. a
 * library bug. warn() and inform() report conditions without stopping.
 */

#ifndef ACS_COMMON_LOGGING_HH
#define ACS_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace acs {

/** Exception thrown by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic(): an internal library invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/**
 * Report an unrecoverable user error.
 *
 * Throws FatalError so that library users (and tests) can catch it;
 * standalone tools let it propagate and terminate with a message.
 *
 * @param msg Human-readable description of the configuration problem.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a bug in this library).
 *
 * @param msg Human-readable description of the broken invariant.
 */
[[noreturn]] void panic(const std::string &msg);

/** Print a warning to stderr without stopping. */
void warn(const std::string &msg);

/** Print an informational message to stderr without stopping. */
void inform(const std::string &msg);

/** Enable/disable inform() output (warnings are always printed). */
void setVerbose(bool verbose);

/**
 * fatal() unless @p cond holds.
 *
 * @param cond Condition that must be true for a valid configuration.
 * @param msg  Message used when the condition fails.
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** panic() if @p cond holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace acs

#endif // ACS_COMMON_LOGGING_HH
