#include "scatter.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "logging.hh"

namespace acs {

ScatterPlot::ScatterPlot(std::string title, std::string x_label,
                         std::string y_label, int width, int height)
    : title_(std::move(title)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label)), width_(width), height_(height)
{
    fatalIf(width_ < 16, "ScatterPlot width must be >= 16");
    fatalIf(height_ < 8, "ScatterPlot height must be >= 8");
}

void
ScatterPlot::addSeries(ScatterSeries series)
{
    fatalIf(series.xs.size() != series.ys.size(),
            "ScatterSeries '" + series.name + "' has mismatched x/y sizes");
    series_.push_back(std::move(series));
}

void
ScatterPlot::print(std::ostream &os) const
{
    double x_min = std::numeric_limits<double>::infinity();
    double x_max = -x_min, y_min = x_min * 1.0, y_max = -x_min;
    y_min = std::numeric_limits<double>::infinity();
    std::size_t points = 0;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            x_min = std::min(x_min, s.xs[i]);
            x_max = std::max(x_max, s.xs[i]);
            y_min = std::min(y_min, s.ys[i]);
            y_max = std::max(y_max, s.ys[i]);
            ++points;
        }
    }
    if (points == 0) {
        warn("ScatterPlot '" + title_ + "' has no points; skipping");
        return;
    }

    if (limits_.xMin) x_min = *limits_.xMin;
    if (limits_.xMax) x_max = *limits_.xMax;
    if (limits_.yMin) y_min = *limits_.yMin;
    if (limits_.yMax) y_max = *limits_.yMax;
    if (x_max <= x_min) x_max = x_min + 1.0;
    if (y_max <= y_min) y_max = y_min + 1.0;

    // Pad ranges slightly so extreme points are not on the border.
    const double x_pad = 0.02 * (x_max - x_min);
    const double y_pad = 0.05 * (y_max - y_min);
    x_min -= x_pad; x_max += x_pad;
    y_min -= y_pad; y_max += y_pad;

    std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            const double fx = (s.xs[i] - x_min) / (x_max - x_min);
            const double fy = (s.ys[i] - y_min) / (y_max - y_min);
            if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0)
                continue; // clipped by explicit limits
            auto col = static_cast<int>(std::lround(fx * (width_ - 1)));
            auto row = static_cast<int>(std::lround((1.0 - fy) *
                                                    (height_ - 1)));
            grid[static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col)] = s.glyph;
        }
    }

    auto num = [](double v) {
        std::ostringstream oss;
        if (std::abs(v) >= 1000.0)
            oss << std::fixed << std::setprecision(0) << v;
        else
            oss << std::setprecision(4) << v;
        return oss.str();
    };

    os << "\n== " << title_ << " ==\n";
    os << "y: " << yLabel_ << "   x: " << xLabel_ << "\n";
    const std::string top = num(y_max), bottom = num(y_min);
    const std::size_t margin = std::max(top.size(), bottom.size()) + 1;
    for (int r = 0; r < height_; ++r) {
        std::string label;
        if (r == 0)
            label = top;
        else if (r == height_ - 1)
            label = bottom;
        os << std::right << std::setw(static_cast<int>(margin)) << label
           << "|" << grid[static_cast<std::size_t>(r)] << "\n";
    }
    os << std::string(margin, ' ') << "+"
       << std::string(static_cast<std::size_t>(width_), '-') << "\n";
    os << std::string(margin + 1, ' ') << std::left << num(x_min)
       << std::string(static_cast<std::size_t>(std::max(
              1, width_ - static_cast<int>(num(x_min).size()) -
              static_cast<int>(num(x_max).size()))), ' ')
       << num(x_max) << "\n";
    os << "legend:";
    for (const auto &s : series_) {
        if (!s.xs.empty())
            os << "  [" << s.glyph << "] " << s.name
               << " (" << s.xs.size() << ")";
    }
    os << "\n";
}

} // namespace acs
