#include "serialize.hh"

#include "common/logging.hh"

namespace acs {
namespace hw {

KeyVal
toKeyVal(const HardwareConfig &cfg)
{
    KeyVal kv;
    kv.set("name", cfg.name);
    kv.setInt("core_count", cfg.coreCount);
    kv.setInt("lanes_per_core", cfg.lanesPerCore);
    kv.setInt("systolic_dim_x", cfg.systolicDimX);
    kv.setInt("systolic_dim_y", cfg.systolicDimY);
    kv.setInt("vector_width", cfg.vectorWidth);
    kv.setDouble("clock_hz", cfg.clockHz);
    kv.setInt("op_bitwidth", cfg.opBitwidth);
    kv.setDouble("l1_bytes_per_core", cfg.l1BytesPerCore);
    kv.setDouble("l2_bytes", cfg.l2Bytes);
    kv.setDouble("mem_capacity_bytes", cfg.memCapacityBytes);
    kv.setDouble("mem_bandwidth", cfg.memBandwidth);
    kv.setInt("device_phy_count", cfg.devicePhyCount);
    kv.setDouble("per_phy_bandwidth", cfg.perPhyBandwidth);
    kv.set("process", toString(cfg.process));
    kv.setBool("non_planar", cfg.nonPlanarTransistor);
    kv.setInt("dies_per_package", cfg.diesPerPackage);
    return kv;
}

ProcessNode
processFromString(const std::string &name)
{
    if (name == "16nm")
        return ProcessNode::N16;
    if (name == "12nm")
        return ProcessNode::N12;
    if (name == "7nm")
        return ProcessNode::N7;
    if (name == "5nm")
        return ProcessNode::N5;
    fatal("unknown process node: " + name);
}

HardwareConfig
configFromKeyVal(const KeyVal &kv)
{
    HardwareConfig cfg;
    if (kv.has("name"))
        cfg.name = kv.getString("name");
    cfg.coreCount =
        static_cast<int>(kv.getInt("core_count", cfg.coreCount));
    cfg.lanesPerCore = static_cast<int>(
        kv.getInt("lanes_per_core", cfg.lanesPerCore));
    cfg.systolicDimX = static_cast<int>(
        kv.getInt("systolic_dim_x", cfg.systolicDimX));
    cfg.systolicDimY = static_cast<int>(
        kv.getInt("systolic_dim_y", cfg.systolicDimY));
    cfg.vectorWidth =
        static_cast<int>(kv.getInt("vector_width", cfg.vectorWidth));
    cfg.clockHz = kv.getDouble("clock_hz", cfg.clockHz);
    cfg.opBitwidth =
        static_cast<int>(kv.getInt("op_bitwidth", cfg.opBitwidth));
    cfg.l1BytesPerCore =
        kv.getDouble("l1_bytes_per_core", cfg.l1BytesPerCore);
    cfg.l2Bytes = kv.getDouble("l2_bytes", cfg.l2Bytes);
    cfg.memCapacityBytes =
        kv.getDouble("mem_capacity_bytes", cfg.memCapacityBytes);
    cfg.memBandwidth = kv.getDouble("mem_bandwidth", cfg.memBandwidth);
    cfg.devicePhyCount = static_cast<int>(
        kv.getInt("device_phy_count", cfg.devicePhyCount));
    cfg.perPhyBandwidth =
        kv.getDouble("per_phy_bandwidth", cfg.perPhyBandwidth);
    if (kv.has("process"))
        cfg.process = processFromString(kv.getString("process"));
    if (kv.has("non_planar"))
        cfg.nonPlanarTransistor = kv.getBool("non_planar");
    cfg.diesPerPackage = static_cast<int>(
        kv.getInt("dies_per_package", cfg.diesPerPackage));
    cfg.validate();
    return cfg;
}

} // namespace hw
} // namespace acs
