/**
 * @file
 * HardwareConfig <-> key=value serialization, so design points can be
 * stored in files and loaded by the tools.
 */

#ifndef ACS_HW_SERIALIZE_HH
#define ACS_HW_SERIALIZE_HH

#include "common/keyval.hh"
#include "hw/config.hh"

namespace acs {
namespace hw {

/** Serialize every field of @p cfg. */
KeyVal toKeyVal(const HardwareConfig &cfg);

/**
 * Build a config from a KeyVal.
 *
 * Absent keys keep the HardwareConfig default (the A100-class
 * template values); present keys must parse (fatal otherwise). The
 * result is validated before returning.
 */
HardwareConfig configFromKeyVal(const KeyVal &kv);

/** Parse a ProcessNode name ("7nm"); fatal on unknown names. */
ProcessNode processFromString(const std::string &name);

} // namespace hw
} // namespace acs

#endif // ACS_HW_SERIALIZE_HH
