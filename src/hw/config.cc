#include "config.hh"

#include <cmath>

#include "common/logging.hh"

namespace acs {
namespace hw {

std::string
toString(ProcessNode node)
{
    switch (node) {
      case ProcessNode::N16: return "16nm";
      case ProcessNode::N12: return "12nm";
      case ProcessNode::N7:  return "7nm";
      case ProcessNode::N5:  return "5nm";
    }
    panic("unknown ProcessNode");
}

int
HardwareConfig::totalSystolicArrays() const
{
    return coreCount * lanesPerCore * diesPerPackage;
}

long
HardwareConfig::totalSystolicFpus() const
{
    return static_cast<long>(systolicDimX) * systolicDimY *
           totalSystolicArrays();
}

double
HardwareConfig::peakTensorTops() const
{
    // Each MAC unit retires one multiply-accumulate per cycle; the BIS
    // guidelines count a fused multiply-add as two operations.
    return 2.0 * static_cast<double>(totalSystolicFpus()) * clockHz / 1e12;
}

double
HardwareConfig::peakVectorFlops() const
{
    return 2.0 * static_cast<double>(coreCount) * lanesPerCore *
           vectorWidth * diesPerPackage * clockHz;
}

double
HardwareConfig::tpp() const
{
    return peakTensorTops() * opBitwidth;
}

double
HardwareConfig::deviceBandwidth() const
{
    return static_cast<double>(devicePhyCount) * perPhyBandwidth;
}

double
HardwareConfig::l1BytesPerLane() const
{
    return l1BytesPerCore / lanesPerCore;
}

void
HardwareConfig::validate() const
{
    // Messages are formatted only on the failure path: validate() runs
    // on every model construction (several times per DSE design
    // point), and eagerly concatenating fourteen strings per call
    // dominated sweep throughput.
    if (coreCount < 1)
        fatal(name + ": coreCount must be >= 1");
    if (lanesPerCore < 1)
        fatal(name + ": lanesPerCore must be >= 1");
    if (systolicDimX < 1 || systolicDimY < 1)
        fatal(name + ": systolic array dims must be >= 1");
    if (vectorWidth < 1)
        fatal(name + ": vectorWidth must be >= 1");
    if (clockHz <= 0.0)
        fatal(name + ": clockHz must be > 0");
    if (opBitwidth < 1)
        fatal(name + ": opBitwidth must be >= 1");
    if (l1BytesPerCore <= 0.0)
        fatal(name + ": L1 size must be > 0");
    if (l2Bytes <= 0.0)
        fatal(name + ": L2 size must be > 0");
    if (memCapacityBytes <= 0.0)
        fatal(name + ": HBM capacity must be > 0");
    if (memBandwidth <= 0.0)
        fatal(name + ": HBM bandwidth must be > 0");
    if (devicePhyCount < 0)
        fatal(name + ": PHY count must be >= 0");
    if (perPhyBandwidth < 0.0)
        fatal(name + ": PHY bandwidth must be >= 0");
    if (diesPerPackage < 1)
        fatal(name + ": diesPerPackage must be >= 1");
}

long
fpMaxForTpp(double tpp_limit, double clock_hz, int bitwidth)
{
    fatalIf(tpp_limit <= 0.0, "fpMaxForTpp: TPP limit must be > 0");
    fatalIf(clock_hz <= 0.0, "fpMaxForTpp: clock must be > 0");
    fatalIf(bitwidth < 1, "fpMaxForTpp: bitwidth must be >= 1");
    // TPP = 2 * FPUs * clock / 1e12 * bitwidth  =>  FPUs <= ...
    const double fpus = tpp_limit * 1e12 / (2.0 * clock_hz * bitwidth);
    return static_cast<long>(std::floor(fpus));
}

int
coresForTpp(double tpp_limit, int systolic_dim_x, int systolic_dim_y,
            int lanes_per_core, double clock_hz, int bitwidth)
{
    fatalIf(systolic_dim_x < 1 || systolic_dim_y < 1,
            "coresForTpp: systolic dims must be >= 1");
    fatalIf(lanes_per_core < 1, "coresForTpp: lanes must be >= 1");
    const long fp_max = fpMaxForTpp(tpp_limit, clock_hz, bitwidth);
    const long per_core = static_cast<long>(systolic_dim_x) *
                          systolic_dim_y * lanes_per_core;
    return static_cast<int>(fp_max / per_core);
}

} // namespace hw
} // namespace acs
