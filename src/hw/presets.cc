#include "presets.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace hw {

HardwareConfig
modeledA100()
{
    HardwareConfig cfg;
    cfg.name = "modeled-A100";
    cfg.coreCount = 108;
    cfg.lanesPerCore = 4;
    cfg.systolicDimX = 16;
    cfg.systolicDimY = 16;
    cfg.vectorWidth = 32;
    cfg.clockHz = 1410.0 * units::MHZ;
    cfg.opBitwidth = 16;
    cfg.l1BytesPerCore = 192.0 * units::KIB;
    cfg.l2Bytes = 40.0 * units::MIB;
    cfg.memCapacityBytes = 80.0 * units::GB;
    cfg.memBandwidth = 2.0 * units::TBPS;
    cfg.devicePhyCount = 12;
    cfg.perPhyBandwidth = 50.0 * units::GBPS; // 12 x 50 = 600 GB/s
    cfg.process = ProcessNode::N7;
    cfg.nonPlanarTransistor = true;
    cfg.diesPerPackage = 1;
    return cfg;
}

HardwareConfig
modeledA800()
{
    HardwareConfig cfg = modeledA100();
    cfg.name = "modeled-A800";
    cfg.devicePhyCount = 8; // 8 x 50 = 400 GB/s
    return cfg;
}

HardwareConfig
modeledH100()
{
    HardwareConfig cfg;
    cfg.name = "modeled-H100";
    cfg.coreCount = 132;
    cfg.lanesPerCore = 4;
    cfg.systolicDimX = 32; // Hopper's 2x-throughput tensor cores
    cfg.systolicDimY = 16;
    cfg.vectorWidth = 32;
    cfg.clockHz = 1830.0 * units::MHZ;
    cfg.opBitwidth = 16;
    cfg.l1BytesPerCore = 256.0 * units::KIB;
    cfg.l2Bytes = 50.0 * units::MIB;
    cfg.memCapacityBytes = 80.0 * units::GB;
    cfg.memBandwidth = 3.35 * units::TBPS;
    cfg.devicePhyCount = 18;
    cfg.perPhyBandwidth = 50.0 * units::GBPS; // 18 x 50 = 900 GB/s
    cfg.process = ProcessNode::N5;
    cfg.nonPlanarTransistor = true;
    cfg.diesPerPackage = 1;
    return cfg;
}

HardwareConfig
modeledH20Style()
{
    HardwareConfig cfg = modeledA100();
    cfg.name = "modeled-H20-style";
    // Cap TPP well under 4800 by disabling cores, keep rich memory.
    cfg.coreCount = 20;
    cfg.memBandwidth = 4.0 * units::TBPS;
    cfg.devicePhyCount = 18; // 900 GB/s NVLink-class interconnect
    return cfg;
}

HardwareConfig
presetByName(const std::string &name)
{
    if (name == "a100")
        return modeledA100();
    if (name == "a800")
        return modeledA800();
    if (name == "h100")
        return modeledH100();
    if (name == "h20")
        return modeledH20Style();
    fatal("presetByName: unknown preset '" + name +
          "' (expected a100, a800, h100, or h20)");
}

} // namespace hw
} // namespace acs
