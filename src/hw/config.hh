/**
 * @file
 * The hardware template of Sec. 3.2/3.3 (LLMCompass-style).
 *
 * A Device has multiple Cores and a shared global buffer (L2) connected to
 * off-chip HBM and a device-device interconnect. Each Core has multiple
 * Lanes sharing a local buffer (L1); each Lane is one systolic array plus
 * one vector unit. Total Processing Performance (TPP) follows the BIS
 * definition: peak TOPS x operation bitwidth, MAC counted as two ops,
 * aggregated over all dies in the package.
 */

#ifndef ACS_HW_CONFIG_HH
#define ACS_HW_CONFIG_HH

#include <string>

namespace acs {
namespace hw {

/** Fabrication process of the compute die(s). */
enum class ProcessNode
{
    N16, //!< 16 nm FinFET
    N12, //!< 12 nm FinFET
    N7,  //!< 7 nm FinFET (GA100-class; default for the paper's DSE)
    N5,  //!< 5 nm FinFET
};

/** Human-readable name of a process node ("7nm"). */
std::string toString(ProcessNode node);

/**
 * Full architectural description of one accelerator device.
 *
 * All bandwidths are bytes/second, capacities bytes, clock Hz. Device
 * bandwidth is the *aggregate bidirectional* I/O rate the ACR regulates
 * (phy count x per-phy bidirectional bandwidth).
 */
struct HardwareConfig
{
    std::string name = "unnamed";

    // --- Compute hierarchy -------------------------------------------
    int coreCount = 108;      //!< cores (SM-equivalents) per device
    int lanesPerCore = 4;     //!< lanes sharing one local buffer
    int systolicDimX = 16;    //!< systolic array rows
    int systolicDimY = 16;    //!< systolic array columns
    int vectorWidth = 32;     //!< FP ALUs per lane's vector unit
    double clockHz = 1.41e9;  //!< device clock frequency

    /** Bitwidth of the op achieving max TOPS (FP16 tensor path). */
    int opBitwidth = 16;

    // --- Memory hierarchy --------------------------------------------
    double l1BytesPerCore = 192.0 * 1024;     //!< local buffer per core
    double l2Bytes = 40.0 * 1024 * 1024;      //!< shared global buffer
    double memCapacityBytes = 80e9;           //!< HBM capacity
    double memBandwidth = 2.0e12;             //!< HBM bandwidth (B/s)

    // --- Device-device interconnect ----------------------------------
    int devicePhyCount = 12;        //!< interconnect PHY instances
    double perPhyBandwidth = 50e9;  //!< bidirectional B/s per PHY

    // --- Package / process -------------------------------------------
    ProcessNode process = ProcessNode::N7;
    bool nonPlanarTransistor = true; //!< counts toward PD die area
    int diesPerPackage = 1;          //!< compute chiplets in the package

    // --- Derived metrics ----------------------------------------------

    /** Systolic arrays in the whole package. */
    int totalSystolicArrays() const;

    /** Systolic-array FPUs (MAC units) in the whole package. */
    long totalSystolicFpus() const;

    /**
     * Peak tensor throughput in tera-operations/second (non-sparse,
     * MAC = 2 ops), aggregated over all dies in the package.
     */
    double peakTensorTops() const;

    /** Peak vector throughput in FLOPs/second (FMA = 2 ops). */
    double peakVectorFlops() const;

    /** BIS Total Processing Performance: peak TOPS x op bitwidth. */
    double tpp() const;

    /** Aggregate bidirectional device interconnect bandwidth (B/s). */
    double deviceBandwidth() const;

    /** Local buffer available to one systolic array (bytes). */
    double l1BytesPerLane() const;

    /**
     * Validate the configuration.
     *
     * Fatal on non-positive structural parameters or a zero clock; the
     * DSE relies on this to reject malformed sweep points early.
     */
    void validate() const;
};

/**
 * Maximum systolic-array FPU count for a TPP budget (Eq. 1).
 *
 * FPmax(TPP) is the largest DIMX*DIMY*LC*CD product such that the device
 * TPP stays within @p tpp_limit at clock @p clock_hz and @p bitwidth.
 *
 * @param tpp_limit Target TPP ceiling (> 0, fatal otherwise).
 * @param clock_hz  Device clock (> 0, fatal otherwise).
 * @param bitwidth  Operation bitwidth used for TPP.
 * @return Maximum total FPU (MAC unit) count.
 */
long fpMaxForTpp(double tpp_limit, double clock_hz, int bitwidth = 16);

/**
 * Largest core count keeping a design at or under a TPP target (Eq. 1).
 *
 * Used throughout the DSE: systolic dims and lanes/core are swept and the
 * core count is chosen "accordingly to keep design points within TPP
 * targets" (Sec. 3.3).
 *
 * @param tpp_limit      TPP ceiling.
 * @param systolic_dim_x Systolic array rows.
 * @param systolic_dim_y Systolic array columns.
 * @param lanes_per_core Lanes per core.
 * @param clock_hz       Device clock.
 * @param bitwidth       TPP operation bitwidth.
 * @return Largest compliant core count (possibly 0 if even one core
 *         exceeds the limit).
 */
int coresForTpp(double tpp_limit, int systolic_dim_x, int systolic_dim_y,
                int lanes_per_core, double clock_hz, int bitwidth = 16);

} // namespace hw
} // namespace acs

#endif // ACS_HW_CONFIG_HH
