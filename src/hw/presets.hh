/**
 * @file
 * Named hardware presets used throughout the paper's experiments.
 */

#ifndef ACS_HW_PRESETS_HH
#define ACS_HW_PRESETS_HH

#include "hw/config.hh"

namespace acs {
namespace hw {

/**
 * The paper's modeled NVIDIA A100 (Sec. 3.3, Table 3).
 *
 * 108 cores, 4 lanes/core, 16x16 FP16 systolic arrays, 192 KiB L1/core,
 * 40 MiB L2, 80 GB HBM at 2 TB/s, 600 GB/s NVLink, 1410 MHz — giving
 * TPP ~= 4990 and the baseline every DSE compares against.
 */
HardwareConfig modeledA100();

/**
 * A modeled NVIDIA A800: the A100 die with device bandwidth reduced to
 * 400 GB/s to duck the Oct-2022 rule (Sec. 2.2).
 */
HardwareConfig modeledA800();

/**
 * A modeled NVIDIA H100 SXM (extension): 132 cores with Hopper's
 * doubled-throughput tensor cores (32x16 systolic arrays) at
 * 1830 MHz, 50 MiB L2, 80 GB HBM3 at 3.35 TB/s, 900 GB/s NVLink —
 * the flagship baseline the serving-simulator benches compare
 * sanctioned fleets against.
 */
HardwareConfig modeledH100();

/**
 * A modeled NVIDIA H20-style device: TPP capped under 4800 * (~900 ->
 * 4 TB/s-class memory retained), used in discussions of the Oct-2023
 * adaptation strategy (Sec. 4.1).
 */
HardwareConfig modeledH20Style();

/**
 * Look a preset up by its CLI spelling: "a100", "a800", "h100", or
 * "h20" (case-sensitive). Fatal on unknown names, listing the valid
 * ones — the single parser the acs CLI and the benches share, so
 * fleet specs like "a100:4,h20:8" mean the same device everywhere.
 */
HardwareConfig presetByName(const std::string &name);

} // namespace hw
} // namespace acs

#endif // ACS_HW_PRESETS_HH
