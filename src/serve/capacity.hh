/**
 * @file
 * Serving-capacity planning on top of the inference simulator.
 *
 * The paper's economics sections reason about sanctions "reducing the
 * supply of computing" (Sec. 2.4); this module turns per-layer
 * latencies into fleet arithmetic: whether a device meets latency
 * SLOs, its serving throughput, and how many devices (and how much
 * silicon spend) a demand level requires — the concrete "sanctions
 * tax" on an inference provider.
 */

#ifndef ACS_SERVE_CAPACITY_HH
#define ACS_SERVE_CAPACITY_HH

#include "perf/simulator.hh"

namespace acs {
namespace serve {

/** Interactive-serving latency objectives (full model, seconds). */
struct Slo
{
    double ttftMaxS = 10.0;  //!< max time to first token
    double tbtMaxS = 0.200;  //!< max time between tokens

    /** Fatal unless both bounds are positive. */
    void validate() const;
};

/** Serving characteristics of one system (tp devices). */
struct ServingEstimate
{
    double ttftS = 0.0;              //!< full-model prefill latency
    double tbtS = 0.0;               //!< full-model per-token latency
    bool meetsTtftSlo = false;
    bool meetsTbtSlo = false;
    double tokensPerSecondPerDevice = 0.0;

    /** Both SLOs satisfied. */
    bool meetsSlo() const { return meetsTtftSlo && meetsTbtSlo; }
};

/**
 * Evaluate serving behaviour of one system.
 *
 * @param result          Simulator output for the workload.
 * @param tensor_parallel Devices in the serving unit.
 * @param slo             Latency objectives (validated).
 */
ServingEstimate estimateServing(const perf::InferenceResult &result,
                                int tensor_parallel, const Slo &slo);

/** A provisioned fleet for a demand level. */
struct FleetPlan
{
    long devices = 0;          //!< total devices provisioned
    double utilization = 0.0;  //!< demand / provisioned throughput
    bool feasible = false;     //!< SLOs met by the building block
};

/**
 * Devices needed to serve @p demand_tokens_per_s.
 *
 * @param estimate        Per-device serving characteristics.
 * @param tensor_parallel Devices per serving unit (fleet grows in
 *                        units of this).
 * @param demand_tokens_per_s Aggregate generation demand (> 0).
 */
FleetPlan planFleet(const ServingEstimate &estimate,
                    int tensor_parallel, double demand_tokens_per_s);

} // namespace serve
} // namespace acs

#endif // ACS_SERVE_CAPACITY_HH
