/**
 * @file
 * Percentile-aware capacity planning on top of the request-level
 * simulator (acs::sim).
 *
 * serve/capacity.hh answers "does the building block meet the SLO and
 * how many devices does mean throughput require"; this header answers
 * the operationally meaningful version: how many devices hold the
 * p99 TTFT/TBT objectives under bursty load. planFleetPercentile runs
 * both estimators — sim::sizeFleet as the headline number, the
 * closed-form planFleet as the cross-check — so the divergence
 * ("burst tax") is always visible next to the steady-state answer.
 */

#ifndef ACS_SERVE_PERCENTILE_HH
#define ACS_SERVE_PERCENTILE_HH

#include "serve/capacity.hh"
#include "sim/fleet.hh"

namespace acs {
namespace serve {

/** Percentile latency objectives of an interactive serving fleet. */
struct PercentileSlo
{
    double ttftP99MaxS = 10.0;  //!< bound on the TTFT percentile
    double tbtP99MaxS = 0.200;  //!< bound on the TBT percentile
    double percentile = 99.0;   //!< percentile the bounds apply to

    /** The simulator's target form. */
    sim::SloTargets targets() const;

    /**
     * The closed-form Slo with the same bounds (the steady-state path
     * checks its single latency against them).
     */
    Slo meanSlo() const { return Slo{ttftP99MaxS, tbtP99MaxS}; }

    /** Fatal unless bounds are positive and percentile in (0, 100]. */
    void validate() const { targets().validate(); }
};

/** Side-by-side simulated and closed-form fleet plans. */
struct PercentileFleetPlan
{
    sim::FleetSizingResult simulated; //!< the percentile-aware plan
    FleetPlan closedForm;             //!< steady-state cross-check
    long closedFormDevices = 0;       //!< closedForm.devices (alias)

    /**
     * Simulated over closed-form device count: the factor by which
     * steady-state arithmetic understates the fleet (>= 1 whenever
     * both are feasible; 0 when either is not).
     */
    double burstFactor() const;
};

/**
 * Plan a fleet for @p demand with percentile objectives.
 *
 * Converts the request demand into the closed-form token demand
 * (rate x mean output length), plans the steady-state fleet as the
 * cross-check and as the simulator's starting hint, then sizes the
 * fleet by simulation (sim::sizeFleet).
 *
 * @param cost         Iteration oracle of the design under study.
 * @param demand       Aggregate request-level demand.
 * @param sched        Continuous-batching policy per replica.
 * @param slo          Percentile objectives.
 * @param max_replicas Simulation search ceiling.
 */
PercentileFleetPlan
planFleetPercentile(const sim::IterationCostModel &cost,
                    const sim::FleetDemand &demand,
                    const sim::SchedulerConfig &sched,
                    const PercentileSlo &slo,
                    int max_replicas = 4096);

/** Disaggregated plan next to its monolithic baseline. */
struct DisaggPercentilePlan
{
    /** Two-pool plan from sim::sizeDisaggFleet. */
    sim::DisaggFleetPlan disagg;

    /**
     * Monolithic baseline: the prefill-pool design bought for
     * everything, sized by sim::sizeFleet under the same demand and
     * objectives.
     */
    sim::FleetSizingResult monolithic;

    /**
     * Disaggregated over monolithic device count: < 1 when splitting
     * the purchase saves silicon, 0 when either plan is infeasible.
     */
    double deviceRatio() const;
};

/**
 * Plan a disaggregated fleet for @p demand and put the monolithic
 * alternative beside it.
 *
 * The monolithic baseline buys @p prefill's design for both phases
 * (the colocated status quo); the disaggregated plan sizes
 * @p prefill and @p decode pools independently with @p kv charged
 * between the phases. Comparing the two at identical demand and
 * objectives is the bench-level "sanctions tax under disaggregated
 * purchasing" table (bench/ext_disagg_tax.cpp).
 */
DisaggPercentilePlan
planDisaggFleetPercentile(const sim::DisaggPoolSpec &prefill,
                          const sim::DisaggPoolSpec &decode,
                          const sim::KvTransferConfig &kv,
                          const sim::FleetDemand &demand,
                          const PercentileSlo &slo,
                          int max_replicas = 4096);

} // namespace serve
} // namespace acs

#endif // ACS_SERVE_PERCENTILE_HH
