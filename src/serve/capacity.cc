#include "capacity.hh"

#include <cmath>

#include "common/logging.hh"

namespace acs {
namespace serve {

void
Slo::validate() const
{
    fatalIf(ttftMaxS <= 0.0, "Slo: ttftMaxS must be > 0");
    fatalIf(tbtMaxS <= 0.0, "Slo: tbtMaxS must be > 0");
}

ServingEstimate
estimateServing(const perf::InferenceResult &result, int tensor_parallel,
                const Slo &slo)
{
    slo.validate();
    fatalIf(tensor_parallel < 1,
            "estimateServing: tensor_parallel must be >= 1");
    fatalIf(result.tbtFullModelS <= 0.0 || result.ttftFullModelS <= 0.0,
            "estimateServing: result carries no latencies");

    ServingEstimate e;
    e.ttftS = result.ttftFullModelS;
    e.tbtS = result.tbtFullModelS;
    e.meetsTtftSlo = e.ttftS <= slo.ttftMaxS;
    e.meetsTbtSlo = e.tbtS <= slo.tbtMaxS;
    e.tokensPerSecondPerDevice =
        result.throughputTokensPerS() / tensor_parallel;
    return e;
}

FleetPlan
planFleet(const ServingEstimate &estimate, int tensor_parallel,
          double demand_tokens_per_s)
{
    fatalIf(tensor_parallel < 1,
            "planFleet: tensor_parallel must be >= 1");
    fatalIf(demand_tokens_per_s <= 0.0,
            "planFleet: demand must be > 0");

    FleetPlan plan;
    plan.feasible = estimate.meetsSlo();
    if (estimate.tokensPerSecondPerDevice <= 0.0)
        return plan;

    const double unit_throughput =
        estimate.tokensPerSecondPerDevice * tensor_parallel;
    const long units = static_cast<long>(
        std::ceil(demand_tokens_per_s / unit_throughput));
    plan.devices = units * tensor_parallel;
    plan.utilization =
        demand_tokens_per_s /
        (static_cast<double>(units) * unit_throughput);
    return plan;
}

} // namespace serve
} // namespace acs
