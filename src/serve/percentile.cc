#include "percentile.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace acs {
namespace serve {

sim::SloTargets
PercentileSlo::targets() const
{
    sim::SloTargets t;
    t.ttftMaxS = ttftP99MaxS;
    t.tbtMaxS = tbtP99MaxS;
    t.percentile = percentile;
    return t;
}

double
PercentileFleetPlan::burstFactor() const
{
    if (!simulated.feasible || closedFormDevices <= 0)
        return 0.0;
    return static_cast<double>(simulated.devices) /
           static_cast<double>(closedFormDevices);
}

PercentileFleetPlan
planFleetPercentile(const sim::IterationCostModel &cost,
                    const sim::FleetDemand &demand,
                    const sim::SchedulerConfig &sched,
                    const PercentileSlo &slo, int max_replicas)
{
    const obs::TraceSpan span("serve.planFleetPercentile");
    demand.validate();
    slo.validate();

    PercentileFleetPlan plan;

    // Steady-state cross-check: the old estimator at the reference
    // setting, fed the equivalent token demand.
    const int tp = cost.system().tensorParallel;
    const perf::InferenceResult result = cost.simulator().run(
        cost.model(), cost.reference(), cost.system());
    const ServingEstimate estimate =
        estimateServing(result, tp, slo.meanSlo());
    const double token_demand =
        demand.ratePerS * demand.outputLen.meanLen();
    plan.closedForm = planFleet(estimate, tp, token_demand);
    plan.closedFormDevices = plan.closedForm.devices;

    // Simulated plan, starting the search at the closed-form size
    // (the simulator can only need more, never fewer probes there).
    const int hint = std::max<long>(1, plan.closedForm.devices / tp);
    plan.simulated =
        sizeFleet(cost, demand, sched, slo.targets(), max_replicas,
                  static_cast<int>(hint));
    return plan;
}

double
DisaggPercentilePlan::deviceRatio() const
{
    if (!disagg.feasible || !monolithic.feasible ||
        monolithic.devices <= 0)
        return 0.0;
    return static_cast<double>(disagg.devices) /
           static_cast<double>(monolithic.devices);
}

DisaggPercentilePlan
planDisaggFleetPercentile(const sim::DisaggPoolSpec &prefill,
                          const sim::DisaggPoolSpec &decode,
                          const sim::KvTransferConfig &kv,
                          const sim::FleetDemand &demand,
                          const PercentileSlo &slo, int max_replicas)
{
    const obs::TraceSpan span("serve.planDisaggFleetPercentile");
    prefill.validate();
    decode.validate();
    demand.validate();
    slo.validate();

    DisaggPercentilePlan plan;
    plan.monolithic =
        sizeFleet(*prefill.cost, demand, prefill.scheduler,
                  slo.targets(), max_replicas);
    plan.disagg = sizeDisaggFleet(prefill, decode, kv, demand,
                                  slo.targets(),
                                  sim::RoutingPolicyKind::
                                      JOIN_SHORTEST_QUEUE,
                                  max_replicas);
    return plan;
}

} // namespace serve
} // namespace acs
