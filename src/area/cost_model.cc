#include "cost_model.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace acs {
namespace area {

double
waferPriceUsd(hw::ProcessNode node)
{
    // 300 mm wafer prices, CSET "AI Chips" (2020) estimates.
    switch (node) {
      case hw::ProcessNode::N16: return 3984.0;
      case hw::ProcessNode::N12: return 3984.0;
      case hw::ProcessNode::N7:  return 9346.0;
      case hw::ProcessNode::N5:  return 16988.0;
    }
    panic("unknown ProcessNode");
}

CostModel::CostModel()
    : CostModel(CostParams{})
{}

CostModel::CostModel(const CostParams &params)
    : params_(params)
{
    fatalIf(params_.waferDiameterMm <= 0.0,
            "CostParams: wafer diameter must be > 0");
    fatalIf(params_.defectDensityPerMm2 < 0.0,
            "CostParams: defect density must be >= 0");
}

int
CostModel::diesPerWafer(double die_area_mm2) const
{
    fatalIf(die_area_mm2 <= 0.0, "diesPerWafer: area must be > 0");
    const double d = params_.waferDiameterMm;
    const double gross =
        std::numbers::pi * (d / 2.0) * (d / 2.0) / die_area_mm2 -
        std::numbers::pi * d / std::sqrt(2.0 * die_area_mm2);
    return gross <= 0.0 ? 0 : static_cast<int>(std::floor(gross));
}

double
CostModel::murphyYield(double die_area_mm2) const
{
    fatalIf(die_area_mm2 <= 0.0, "murphyYield: area must be > 0");
    const double ad = die_area_mm2 * params_.defectDensityPerMm2;
    if (ad == 0.0)
        return 1.0;
    const double term = (1.0 - std::exp(-ad)) / ad;
    return term * term;
}

double
CostModel::dieCostUsd(double die_area_mm2, hw::ProcessNode node) const
{
    const int dies = diesPerWafer(die_area_mm2);
    fatalIf(dies <= 0,
            "die of " + std::to_string(die_area_mm2) +
            " mm^2 does not fit the wafer");
    return waferPriceUsd(node) / dies;
}

double
CostModel::goodDieCostUsd(double die_area_mm2, hw::ProcessNode node) const
{
    return dieCostUsd(die_area_mm2, node) / murphyYield(die_area_mm2);
}

double
CostModel::costForGoodDiesUsd(double die_area_mm2, hw::ProcessNode node,
                              double good_dies) const
{
    fatalIf(good_dies < 0.0, "costForGoodDiesUsd: count must be >= 0");
    return goodDieCostUsd(die_area_mm2, node) * good_dies;
}

} // namespace area
} // namespace acs
