/**
 * @file
 * Silicon area model for the hardware template (LLMCompass-style).
 *
 * A linear per-component model at a 7 nm baseline, with per-node scale
 * factors. Calibrated so that (a) the modeled A100 lands in GA100's
 * class, and (b) the Table 4 pair of 2400-TPP designs reproduces the
 * paper's 753 mm^2 vs 523 mm^2 split, which is dominated by the on-chip
 * SRAM delta (151 MB vs 52 MB).
 */

#ifndef ACS_AREA_AREA_MODEL_HH
#define ACS_AREA_AREA_MODEL_HH

#include "hw/config.hh"

namespace acs {
namespace area {

/** Per-component area contributions of one die (mm^2). */
struct AreaBreakdown
{
    double systolicMacs = 0.0;  //!< MAC units across all arrays
    double systolicCtrl = 0.0;  //!< per-array sequencing/control
    double vectorUnits = 0.0;   //!< vector ALUs
    double l1Sram = 0.0;        //!< local buffers
    double l2Sram = 0.0;        //!< global buffer
    double coreOverhead = 0.0;  //!< per-core scheduler/LSU/RF
    double memPhy = 0.0;        //!< HBM PHY + controllers
    double devicePhy = 0.0;     //!< device-device interconnect PHYs
    double noc = 0.0;           //!< on-die crossbar/NoC
    double misc = 0.0;          //!< PCIe, media, global control

    /** Total die area (mm^2). */
    double total() const;
};

/** Tunable technology constants (7 nm baseline values). */
struct AreaParams
{
    double macAreaMm2 = 0.002;        //!< per FP16 MAC unit
    double arrayCtrlMm2 = 0.05;       //!< per systolic array
    double vectorAluMm2 = 0.003;      //!< per FP32 vector ALU
    double sramMm2PerMib = 2.2;       //!< cache incl. tags/control
    double coreOverheadMm2 = 1.0;     //!< per core
    double memPhyMm2PerTBps = 35.0;   //!< HBM PHY area per TB/s
    double devicePhyMm2 = 1.7;        //!< per interconnect PHY
    double nocMm2PerCore = 0.3;       //!< crossbar slice per core
    double miscMm2 = 40.0;            //!< fixed uncore
};

/**
 * Computes die area and performance density for a HardwareConfig.
 *
 * Thread-compatible: const after construction.
 */
class AreaModel
{
  public:
    /** Model with default (paper-calibrated) technology constants. */
    AreaModel();

    /** Model with custom constants (fatal on non-positive values). */
    explicit AreaModel(const AreaParams &params);

    /** Per-component area of a single die of @p cfg (mm^2). */
    AreaBreakdown breakdown(const hw::HardwareConfig &cfg) const;

    /**
     * Total package compute-die area (mm^2): single-die area times
     * diesPerPackage (chiplets are modeled as identical dies).
     */
    double dieArea(const hw::HardwareConfig &cfg) const;

    /**
     * BIS Performance Density: TPP / applicable die area.
     *
     * Only dies built on a non-planar transistor process count toward
     * applicable area (Sec. 2.1); a planar-process device has PD 0 by
     * convention here (it is never regulated on PD).
     */
    double perfDensity(const hw::HardwareConfig &cfg) const;

    /**
     * perfDensity with an already-computed dieArea(cfg): sweep callers
     * always need both, and the breakdown is the expensive half.
     * Bit-identical to the recomputing overload.
     */
    double perfDensity(const hw::HardwareConfig &cfg,
                       double die_area_mm2) const;

    /** The technology constants in use. */
    const AreaParams &params() const { return params_; }

    /**
     * Area scale factor of @p node relative to the 7 nm baseline
     * (N7 = 1.0; older nodes are larger, newer smaller).
     */
    static double processScale(hw::ProcessNode node);

  private:
    AreaParams params_;
};

/** EUV single-die reticle limit used throughout the paper (mm^2). */
constexpr double RETICLE_LIMIT_MM2 = 860.0;

} // namespace area
} // namespace acs

#endif // ACS_AREA_AREA_MODEL_HH
