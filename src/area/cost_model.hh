/**
 * @file
 * Silicon manufacturing cost model (Sec. 4.4, Table 4).
 *
 * Die cost = wafer price / dies-per-wafer, with the classic circular-
 * wafer edge-loss formula; good-die cost additionally divides by Murphy
 * yield. Calibrated to reproduce Table 4: a 753 mm^2 die costs ~$134, a
 * 523 mm^2 die ~$88 on a $9,346 7 nm wafer, and the 1M-good-dies cost
 * ratio is ~2x.
 */

#ifndef ACS_AREA_COST_MODEL_HH
#define ACS_AREA_COST_MODEL_HH

#include "hw/config.hh"

namespace acs {
namespace area {

/** Wafer-level manufacturing assumptions. */
struct CostParams
{
    double waferDiameterMm = 300.0;
    /** Defect density in defects/mm^2 (0.0015 = 0.15 defects/cm^2). */
    double defectDensityPerMm2 = 0.0015;
};

/** Foundry wafer price in USD for a process node (CSET 2020 figures). */
double waferPriceUsd(hw::ProcessNode node);

/**
 * Manufacturing cost calculator.
 *
 * Thread-compatible: const after construction.
 */
class CostModel
{
  public:
    CostModel();
    explicit CostModel(const CostParams &params);

    /**
     * Gross dies per wafer for a die of @p die_area_mm2:
     * pi (d/2)^2 / A  -  pi d / sqrt(2 A).
     *
     * @param die_area_mm2 Die area (> 0, fatal otherwise).
     * @return Whole dies per wafer (floored; >= 0).
     */
    int diesPerWafer(double die_area_mm2) const;

    /**
     * Murphy die yield: ((1 - e^{-A D}) / (A D))^2.
     *
     * @param die_area_mm2 Die area (> 0, fatal otherwise).
     * @return Yield in (0, 1].
     */
    double murphyYield(double die_area_mm2) const;

    /**
     * Raw (unyielded) silicon cost of one die — the paper's
     * "Silicon Die Cost" row in Table 4.
     *
     * Fatal if the die is too large to fit a single wafer.
     */
    double dieCostUsd(double die_area_mm2, hw::ProcessNode node) const;

    /** Expected cost of one *good* die: raw cost / Murphy yield. */
    double goodDieCostUsd(double die_area_mm2, hw::ProcessNode node) const;

    /**
     * Cost of manufacturing @p good_dies functional dies — the paper's
     * "1M Good Dies Cost" row in Table 4.
     */
    double costForGoodDiesUsd(double die_area_mm2, hw::ProcessNode node,
                              double good_dies) const;

    const CostParams &params() const { return params_; }

  private:
    CostParams params_;
};

} // namespace area
} // namespace acs

#endif // ACS_AREA_COST_MODEL_HH
