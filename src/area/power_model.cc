#include "power_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace area {

PowerModel::PowerModel()
    : PowerModel(AreaModel{}, PowerParams{})
{}

PowerModel::PowerModel(const AreaModel &area_model,
                       const PowerParams &params)
    : areaModel_(area_model), params_(params)
{
    fatalIf(params_.sramLeakageWPerMib < 0.0 ||
            params_.logicLeakageWPerMm2 < 0.0 ||
            params_.energyPerFlopJ < 0.0 ||
            params_.energyPerHbmByteJ < 0.0 ||
            params_.energyPerSramByteJ < 0.0,
            "PowerParams: negative energy constant");
}

PowerBreakdown
PowerModel::power(const hw::HardwareConfig &cfg,
                  const ActivityProfile &activity) const
{
    cfg.validate();
    fatalIf(activity.computeUtilization < 0.0 ||
            activity.computeUtilization > 1.0 ||
            activity.memoryUtilization < 0.0 ||
            activity.memoryUtilization > 1.0,
            "ActivityProfile: utilizations must be in [0, 1]");
    fatalIf(activity.sramTrafficRatio < 0.0,
            "ActivityProfile: sramTrafficRatio must be >= 0");

    const AreaBreakdown area = areaModel_.breakdown(cfg);

    PowerBreakdown p;
    const double sram_mib =
        (cfg.coreCount * cfg.l1BytesPerCore + cfg.l2Bytes) /
        units::MIB * cfg.diesPerPackage;
    p.sramLeakageW = sram_mib * params_.sramLeakageWPerMib;

    const double logic_area =
        (area.total() - area.l1Sram - area.l2Sram) * cfg.diesPerPackage;
    p.logicLeakageW = logic_area * params_.logicLeakageWPerMm2;

    const double sustained_flops = cfg.peakTensorTops() * 1e12 *
                                   activity.computeUtilization;
    p.computeW = sustained_flops * params_.energyPerFlopJ;

    const double hbm_bytes =
        cfg.memBandwidth * activity.memoryUtilization;
    p.hbmW = hbm_bytes * params_.energyPerHbmByteJ;
    p.sramDynamicW = hbm_bytes * activity.sramTrafficRatio *
                     params_.energyPerSramByteJ;
    return p;
}

double
PowerModel::operatingCostUsdPerYear(double watts, double usd_per_kwh,
                                    double pue)
{
    fatalIf(watts < 0.0, "operating cost: watts must be >= 0");
    fatalIf(usd_per_kwh < 0.0, "operating cost: price must be >= 0");
    fatalIf(pue < 1.0, "operating cost: PUE must be >= 1");
    const double hours_per_year = 24.0 * 365.0;
    return watts / 1000.0 * pue * hours_per_year * usd_per_kwh;
}

} // namespace area
} // namespace acs
