#include "area_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace area {

double
AreaBreakdown::total() const
{
    return systolicMacs + systolicCtrl + vectorUnits + l1Sram + l2Sram +
           coreOverhead + memPhy + devicePhy + noc + misc;
}

AreaModel::AreaModel()
    : AreaModel(AreaParams{})
{}

AreaModel::AreaModel(const AreaParams &params)
    : params_(params)
{
    fatalIf(params_.macAreaMm2 <= 0.0, "AreaParams: macAreaMm2 must be > 0");
    fatalIf(params_.sramMm2PerMib <= 0.0,
            "AreaParams: sramMm2PerMib must be > 0");
    fatalIf(params_.memPhyMm2PerTBps <= 0.0,
            "AreaParams: memPhyMm2PerTBps must be > 0");
    fatalIf(params_.coreOverheadMm2 < 0.0 || params_.arrayCtrlMm2 < 0.0 ||
            params_.vectorAluMm2 < 0.0 || params_.devicePhyMm2 < 0.0 ||
            params_.nocMm2PerCore < 0.0 || params_.miscMm2 < 0.0,
            "AreaParams: negative component constant");
}

double
AreaModel::processScale(hw::ProcessNode node)
{
    switch (node) {
      case hw::ProcessNode::N16: return 2.0;
      case hw::ProcessNode::N12: return 1.6;
      case hw::ProcessNode::N7:  return 1.0;
      case hw::ProcessNode::N5:  return 0.62;
    }
    panic("unknown ProcessNode");
}

AreaBreakdown
AreaModel::breakdown(const hw::HardwareConfig &cfg) const
{
    cfg.validate();

    // Per-die counts: the package totals divided over identical dies.
    const double cores = static_cast<double>(cfg.coreCount);
    const double arrays = cores * cfg.lanesPerCore;
    const double macs = arrays * cfg.systolicDimX * cfg.systolicDimY;
    const double alus = cores * cfg.lanesPerCore * cfg.vectorWidth;
    const double l1_mib = cores * cfg.l1BytesPerCore / units::MIB;
    const double l2_mib = cfg.l2Bytes / units::MIB;

    // MAC area scales quadratically with operand bitwidth relative to
    // the FP16 baseline (multiplier-array dominated).
    const double bit_scale = (cfg.opBitwidth / 16.0) *
                             (cfg.opBitwidth / 16.0);

    AreaBreakdown b;
    b.systolicMacs = macs * params_.macAreaMm2 * bit_scale;
    b.systolicCtrl = arrays * params_.arrayCtrlMm2;
    b.vectorUnits = alus * params_.vectorAluMm2;
    b.l1Sram = l1_mib * params_.sramMm2PerMib;
    b.l2Sram = l2_mib * params_.sramMm2PerMib;
    b.coreOverhead = cores * params_.coreOverheadMm2;
    b.memPhy = (cfg.memBandwidth / units::TBPS) * params_.memPhyMm2PerTBps;
    b.devicePhy = cfg.devicePhyCount * params_.devicePhyMm2;
    b.noc = cores * params_.nocMm2PerCore;
    b.misc = params_.miscMm2;

    const double scale = processScale(cfg.process);
    b.systolicMacs *= scale;
    b.systolicCtrl *= scale;
    b.vectorUnits *= scale;
    b.l1Sram *= scale;
    b.l2Sram *= scale;
    b.coreOverhead *= scale;
    b.noc *= scale;
    // PHYs and uncore shrink far less with process; keep them fixed.
    return b;
}

double
AreaModel::dieArea(const hw::HardwareConfig &cfg) const
{
    return breakdown(cfg).total() * cfg.diesPerPackage;
}

double
AreaModel::perfDensity(const hw::HardwareConfig &cfg) const
{
    return perfDensity(cfg, dieArea(cfg));
}

double
AreaModel::perfDensity(const hw::HardwareConfig &cfg,
                       double die_area_mm2) const
{
    if (!cfg.nonPlanarTransistor)
        return 0.0;
    panicIf(die_area_mm2 <= 0.0, "die area must be positive");
    return cfg.tpp() / die_area_mm2;
}

} // namespace area
} // namespace acs
