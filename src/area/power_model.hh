/**
 * @file
 * Device power and operating-cost model (Sec. 4.4).
 *
 * The paper notes that PD-compliant designs carry ~3x the on-chip
 * SRAM, and "if all are turned on, these caches increase static and
 * dynamic power which increase operating costs". This model quantifies
 * that: leakage proportional to SRAM capacity and logic area, dynamic
 * power from achieved compute throughput and memory traffic, and a
 * $/year operating cost at data-center electricity prices.
 */

#ifndef ACS_AREA_POWER_MODEL_HH
#define ACS_AREA_POWER_MODEL_HH

#include "area/area_model.hh"
#include "hw/config.hh"

namespace acs {
namespace area {

/** Technology/energy constants (7 nm-class defaults). */
struct PowerParams
{
    /** SRAM leakage per MiB (W). */
    double sramLeakageWPerMib = 0.08;
    /** Logic leakage per mm^2 of non-SRAM area (W). */
    double logicLeakageWPerMm2 = 0.06;
    /** Energy per FP16 MAC-op (J); 2 ops per MAC. */
    double energyPerFlopJ = 0.4e-12;
    /** HBM access energy per byte (J). */
    double energyPerHbmByteJ = 32e-12;
    /** On-chip SRAM access energy per byte moved (J). */
    double energyPerSramByteJ = 4e-12;
};

/** Average utilization levels used for dynamic power. */
struct ActivityProfile
{
    /** Fraction of peak tensor throughput sustained. */
    double computeUtilization = 0.5;
    /** Fraction of peak HBM bandwidth sustained. */
    double memoryUtilization = 0.5;
    /** On-chip bytes moved per HBM byte (reuse multiplier). */
    double sramTrafficRatio = 4.0;
};

/** Power breakdown in watts. */
struct PowerBreakdown
{
    double sramLeakageW = 0.0;
    double logicLeakageW = 0.0;
    double computeW = 0.0;
    double hbmW = 0.0;
    double sramDynamicW = 0.0;

    double staticW() const { return sramLeakageW + logicLeakageW; }
    double dynamicW() const
    {
        return computeW + hbmW + sramDynamicW;
    }
    double totalW() const { return staticW() + dynamicW(); }
};

/**
 * Device power estimator.
 *
 * Thread-compatible: const after construction.
 */
class PowerModel
{
  public:
    PowerModel();
    PowerModel(const AreaModel &area_model, const PowerParams &params);

    /** Power of @p cfg under @p activity. */
    PowerBreakdown power(const hw::HardwareConfig &cfg,
                         const ActivityProfile &activity) const;

    /**
     * Yearly electricity cost of running at @p watts continuously.
     *
     * @param watts          Average device power (>= 0).
     * @param usd_per_kwh    Electricity price (default $0.10/kWh).
     * @param pue            Data-center power usage effectiveness.
     */
    static double operatingCostUsdPerYear(double watts,
                                          double usd_per_kwh = 0.10,
                                          double pue = 1.3);

    const PowerParams &params() const { return params_; }

  private:
    AreaModel areaModel_;
    PowerParams params_;
};

} // namespace area
} // namespace acs

#endif // ACS_AREA_POWER_MODEL_HH
