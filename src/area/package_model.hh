/**
 * @file
 * Multi-chip-module packaging cost model (Sec. 2.3).
 *
 * The paper observes that (a) compliant large-area designs must be
 * multi-chip modules once the die-area floor exceeds the reticle limit
 * (a 4799-TPP unregulated device needs > 3000 mm^2, Sec. 2.5), and
 * (b) chiplets trade better die yield against packaging cost. This
 * model prices a package of N identical known-good dies: tested dies,
 * substrate area, per-die bonding, and a per-die assembly yield.
 */

#ifndef ACS_AREA_PACKAGE_MODEL_HH
#define ACS_AREA_PACKAGE_MODEL_HH

#include "area/cost_model.hh"
#include "hw/config.hh"

namespace acs {
namespace area {

/** Packaging/assembly assumptions. */
struct PackageParams
{
    /** Substrate/interposer cost per mm^2 of carried silicon. */
    double substrateCostPerMm2 = 0.12;
    /** Substrate area per mm^2 of silicon (fan-out margin). */
    double substrateAreaFactor = 1.4;
    /** Assembly cost per bonded die. */
    double perDieBondingCost = 3.0;
    /** Fixed per-package assembly/test cost. */
    double basePackageCost = 15.0;
    /** Probability one die survives assembly (per-die, compounding). */
    double assemblyYieldPerDie = 0.99;
};

/** Cost breakdown of one good packaged device. */
struct PackageCost
{
    double siliconUsd = 0.0;   //!< known-good dies
    double substrateUsd = 0.0;
    double assemblyUsd = 0.0;  //!< bonding + base, pre-yield
    double assemblyYield = 1.0;
    double totalUsd = 0.0;     //!< all-in cost per good device
};

/**
 * Prices packages of identical chiplets.
 *
 * Thread-compatible: const after construction.
 */
class PackageCostModel
{
  public:
    PackageCostModel();
    PackageCostModel(const CostModel &die_cost,
                     const PackageParams &params);

    /**
     * Cost of one good packaged device.
     *
     * @param dies             Identical chiplets in the package (>= 1).
     * @param area_per_die_mm2 Chiplet area (> 0; must fit the wafer).
     * @param node             Process node of the chiplets.
     */
    PackageCost packagedDeviceCost(int dies, double area_per_die_mm2,
                                   hw::ProcessNode node) const;

    /**
     * Chiplet count minimizing packaged cost for a total silicon
     * budget: splits @p total_area_mm2 into n identical dies for n in
     * [min_dies, max_dies], skipping splits whose chiplet exceeds the
     * reticle limit. Fatal if no split is feasible.
     */
    int bestChipletCount(double total_area_mm2, hw::ProcessNode node,
                         int min_dies = 1, int max_dies = 16) const;

    const PackageParams &params() const { return params_; }
    const CostModel &dieCostModel() const { return dieCost_; }

  private:
    CostModel dieCost_;
    PackageParams params_;
};

} // namespace area
} // namespace acs

#endif // ACS_AREA_PACKAGE_MODEL_HH
