#include "package_model.hh"

#include <cmath>
#include <limits>

#include "area/area_model.hh"
#include "common/logging.hh"

namespace acs {
namespace area {

PackageCostModel::PackageCostModel()
    : PackageCostModel(CostModel{}, PackageParams{})
{}

PackageCostModel::PackageCostModel(const CostModel &die_cost,
                                   const PackageParams &params)
    : dieCost_(die_cost), params_(params)
{
    fatalIf(params_.assemblyYieldPerDie <= 0.0 ||
            params_.assemblyYieldPerDie > 1.0,
            "PackageParams: assembly yield must be in (0, 1]");
    fatalIf(params_.substrateCostPerMm2 < 0.0 ||
            params_.perDieBondingCost < 0.0 ||
            params_.basePackageCost < 0.0 ||
            params_.substrateAreaFactor < 1.0,
            "PackageParams: malformed cost constants");
}

PackageCost
PackageCostModel::packagedDeviceCost(int dies, double area_per_die_mm2,
                                     hw::ProcessNode node) const
{
    fatalIf(dies < 1, "package needs at least one die");
    fatalIf(area_per_die_mm2 <= 0.0, "chiplet area must be > 0");

    PackageCost cost;
    // Known-good-die flow: dies are tested before assembly, so die
    // yield is already paid in goodDieCostUsd.
    cost.siliconUsd =
        dies * dieCost_.goodDieCostUsd(area_per_die_mm2, node);
    cost.substrateUsd = dies * area_per_die_mm2 *
                        params_.substrateAreaFactor *
                        params_.substrateCostPerMm2;
    cost.assemblyUsd =
        dies * params_.perDieBondingCost + params_.basePackageCost;
    cost.assemblyYield =
        std::pow(params_.assemblyYieldPerDie, dies);
    cost.totalUsd =
        (cost.siliconUsd + cost.substrateUsd + cost.assemblyUsd) /
        cost.assemblyYield;
    return cost;
}

int
PackageCostModel::bestChipletCount(double total_area_mm2,
                                   hw::ProcessNode node, int min_dies,
                                   int max_dies) const
{
    fatalIf(total_area_mm2 <= 0.0, "total silicon area must be > 0");
    fatalIf(min_dies < 1 || max_dies < min_dies,
            "bestChipletCount: invalid die-count range");

    int best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int n = min_dies; n <= max_dies; ++n) {
        const double per_die = total_area_mm2 / n;
        if (per_die > RETICLE_LIMIT_MM2)
            continue;
        const double cost =
            packagedDeviceCost(n, per_die, node).totalUsd;
        if (cost < best_cost) {
            best_cost = cost;
            best = n;
        }
    }
    fatalIf(best == 0,
            "no feasible chiplet split: even max_dies chiplets exceed "
            "the reticle limit");
    return best;
}

} // namespace area
} // namespace acs
