/**
 * @file
 * Distribution and Pareto analysis over evaluated designs
 * (Figs. 8, 11, 12).
 */

#ifndef ACS_DSE_ANALYSIS_HH
#define ACS_DSE_ANALYSIS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "dse/evaluate.hh"
#include "policy/arch_policy.hh"

namespace acs {
namespace dse {

/** Extract a metric from a design (for generic analyses). */
using Metric = std::function<double(const EvaluatedDesign &)>;

/** The TTFT metric in milliseconds. */
double ttftMs(const EvaluatedDesign &d);
/** The TBT metric in milliseconds. */
double tbtMs(const EvaluatedDesign &d);

/** One column of a Fig. 11/12-style distribution plot. */
struct IndicatorDistribution
{
    std::string label;          //!< e.g. "1 Lane", "2.8 TB/s M. BW"
    SummaryStats ttft;          //!< TTFT distribution (ms)
    SummaryStats tbt;           //!< TBT distribution (ms)
    double ttftNarrowing = 1.0; //!< vs the baseline TTFT range
    double tbtNarrowing = 1.0;  //!< vs the baseline TBT range
    std::size_t designCount = 0;
};

/**
 * The paper's distribution study: start from the full @p designs set
 * ("TPP only" column) and add one column per (label, predicate) pair
 * holding designs where one architectural parameter is fixed.
 *
 * @param designs    Baseline design set (fatal if empty).
 * @param groups     Label + membership predicate per column.
 * @return Columns in input order, baseline first.
 */
std::vector<IndicatorDistribution> indicatorStudy(
    const std::vector<EvaluatedDesign> &designs,
    const std::vector<std::pair<
        std::string, std::function<bool(const EvaluatedDesign &)>>>
        &groups);

/**
 * Membership predicate for "parameter == value" columns.
 *
 * @param param Architectural parameter to pin.
 * @param value Pinned value in base units (exact compare with small
 *              relative tolerance for floating-point fields).
 */
std::function<bool(const EvaluatedDesign &)>
fixedParameter(policy::ArchParameter param, double value);

/**
 * Pareto frontier minimizing (x, y): the subset of designs not
 * dominated by any other design (smaller-or-equal on both metrics and
 * strictly smaller on one). Returned sorted by x.
 */
std::vector<EvaluatedDesign>
paretoFront(const std::vector<EvaluatedDesign> &designs, const Metric &x,
            const Metric &y);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_ANALYSIS_HH
