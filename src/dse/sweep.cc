#include "sweep.hh"

#include <charconv>
#include <sstream>

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "obs/obs.hh"

namespace acs {
namespace dse {

std::size_t
SweepSpace::size() const
{
    return systolicDims.size() * lanesPerCore.size() *
           l1BytesPerCore.size() * l2Bytes.size() * memBandwidths.size() *
           deviceBandwidths.size() * diesPerPackage.size();
}

namespace {

/** FNV-1a over raw bytes (fingerprints below; not cryptographic). */
std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

template <typename T>
std::uint64_t
fnvValue(const T &v, std::uint64_t h)
{
    return fnv1a(&v, sizeof(v), h);
}

template <typename T>
std::uint64_t
fnvList(const std::vector<T> &values, std::uint64_t h)
{
    const std::size_t n = values.size();
    h = fnvValue(n, h);
    for (const T &v : values)
        h = fnvValue(v, h);
    return h;
}

/**
 * Fingerprint of every field feasibleSize() depends on: the parameter
 * lists (their sizes fix the product; dims/lanes/dies also gate
 * feasibility), the TPP target, and the base clock/bitwidth that
 * enter coresForTpp.
 */
std::uint64_t
feasibilityFingerprint(const SweepSpace &space)
{
    std::uint64_t h = 14695981039346656037ull;
    h = fnvValue(space.tppTarget, h);
    h = fnvValue(space.base.clockHz, h);
    h = fnvValue(space.base.opBitwidth, h);
    h = fnvList(space.systolicDims, h);
    h = fnvList(space.lanesPerCore, h);
    h = fnvList(space.l1BytesPerCore, h);
    h = fnvList(space.l2Bytes, h);
    h = fnvList(space.memBandwidths, h);
    h = fnvList(space.deviceBandwidths, h);
    h = fnvList(space.diesPerPackage, h);
    return h;
}

} // anonymous namespace

std::size_t
SweepSpace::feasibleSize() const
{
    const std::uint64_t fp = feasibilityFingerprint(*this);
    if (feasibleCached_ && feasibleFp_ == fp)
        return feasibleCount_;
    feasibleCount_ = SweepPlan(*this).pointCount();
    feasibleFp_ = fp;
    feasibleCached_ = true;
    return feasibleCount_;
}

std::vector<SweepAxis>
SweepSpace::axes() const
{
    // Enumeration order, outermost first. Comm-only axes must stay
    // innermost (SweepPlan relies on this for commOnlyRunLength();
    // tests/test_dse.cpp asserts the resulting adjacency).
    return {
        {"diesPerPackage", AxisEffect::COMPUTE, diesPerPackage.size()},
        {"systolicDims", AxisEffect::COMPUTE, systolicDims.size()},
        {"lanesPerCore", AxisEffect::COMPUTE, lanesPerCore.size()},
        {"l1BytesPerCore", AxisEffect::COMPUTE, l1BytesPerCore.size()},
        {"l2Bytes", AxisEffect::COMPUTE, l2Bytes.size()},
        {"memBandwidths", AxisEffect::COMPUTE, memBandwidths.size()},
        {"deviceBandwidths", AxisEffect::COMM_ONLY,
         deviceBandwidths.size()},
    };
}

namespace {

constexpr double PHY_BW = 50.0 * units::GBPS;

/**
 * Append an integer to @p s, matching ostream's formatting.
 */
void
appendNum(std::string &s, long v)
{
    char buf[24];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    s.append(buf, r.ptr);
}

/**
 * Append a double to @p s. to_chars with chars_format::general at
 * precision 6 is specified to produce printf-%g bytes in the C locale
 * — exactly ostream's default float formatting — so names built here
 * are byte-identical to the historical ostringstream ones;
 * tests/test_dse.cpp asserts this against a stream-built reference.
 */
void
appendNum(std::string &s, double v)
{
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 6);
    s.append(buf, r.ptr);
}

/**
 * Fill the swept hardware fields of one design point into @p out
 * (name and validation are the caller's job — SweepPlan::point
 * assembles the name from fragments precompiled per axis value).
 */
void
fillFields(const SweepSpace &space, int dies, int dim, int lanes,
           int cores, double l1, double l2, double mem_bw, double dev_bw,
           hw::HardwareConfig *out)
{
    hw::HardwareConfig &cfg = *out;
    cfg = space.base;
    cfg.systolicDimX = dim;
    cfg.systolicDimY = dim;
    cfg.lanesPerCore = lanes;
    cfg.coreCount = cores;
    cfg.l1BytesPerCore = l1;
    cfg.l2Bytes = l2;
    cfg.memBandwidth = mem_bw;
    // Round to the nearest whole PHY but never below one: bandwidths
    // under half a PHY (25 GB/s) would otherwise round to an
    // interconnect-less design.
    cfg.devicePhyCount =
        std::max(1, static_cast<int>(dev_bw / PHY_BW + 0.5));
    cfg.perPhyBandwidth = PHY_BW;
    cfg.diesPerPackage = dies;
}

} // anonymous namespace

SweepPlan::SweepPlan(const SweepSpace &space)
    : space_(space)
{
    fatalIf(space.systolicDims.empty() || space.lanesPerCore.empty() ||
            space.l1BytesPerCore.empty() || space.l2Bytes.empty() ||
            space.memBandwidths.empty() ||
            space.deviceBandwidths.empty() ||
            space.diesPerPackage.empty(),
            "SweepSpace: every parameter list must be non-empty");
    fatalIf(space.tppTarget <= 0.0, "SweepSpace: tppTarget must be > 0");

    for (int dies : space.diesPerPackage) {
      fatalIf(dies < 1, "SweepSpace: diesPerPackage entries must be >= 1");
      // TPP aggregates over the package; each die gets an equal share
      // of the budget (Sec. 2.1).
      for (int dim : space.systolicDims) {
        for (int lanes : space.lanesPerCore) {
            const int cores = hw::coresForTpp(
                space.tppTarget / dies, dim, dim, lanes,
                space.base.clockHz, space.base.opBitwidth);
            if (cores < 1) {
                std::ostringstream oss;
                oss << "skipping " << dim << "x" << dim << " x" << lanes
                    << " lanes: one core already exceeds TPP "
                    << space.tppTarget;
                warn(oss.str());
                continue;
            }
            OuterPoint o{dies, dim, lanes, cores, {}, {}};
            o.namePrefix = "dse-";
            appendNum(o.namePrefix, static_cast<long>(dim));
            o.namePrefix += 'x';
            appendNum(o.namePrefix, static_cast<long>(dim));
            o.namePrefix += "-l";
            appendNum(o.namePrefix, static_cast<long>(lanes));
            o.namePrefix += "-c";
            appendNum(o.namePrefix, static_cast<long>(cores));
            o.namePrefix += "-L1.";
            if (dies > 1) {
                o.diesSuffix = "-d";
                appendNum(o.diesSuffix, static_cast<long>(dies));
            }
            outers_.push_back(std::move(o));
        }
      }
    }
    innerBlock_ = space.l1BytesPerCore.size() * space.l2Bytes.size() *
                  space.memBandwidths.size() *
                  space.deviceBandwidths.size();
    pointCount_ = outers_.size() * innerBlock_;

    // Compile the per-axis name fragments once: every inner tail is
    // "<l1>K-L2.<l2>M-hbm<mem>T-dev<dev>G", so four small fragment
    // tables cover any inner-block size with zero per-point number
    // formatting (glibc's float printf serializes across sweep
    // workers).
    //
    // Axis order inside the inner block is l1 -> l2 -> mem -> dev
    // with dev varying fastest: the one comm-only axis
    // (SweepSpace::axes()) sits innermost so designs sharing every
    // die-local compute parameter occupy contiguous runs of
    // commOnlyRunLength() indices. Sweep evaluators lean on that
    // adjacency — a cross-design GEMM cache warms on the first design
    // of each run and hits for the rest of it.
    l1Frags_.reserve(space.l1BytesPerCore.size());
    for (const double l1 : space.l1BytesPerCore) {
        std::string f;
        appendNum(f, l1 / units::KIB);
        f += "K-L2.";
        l1Frags_.push_back(std::move(f));
    }
    l2Frags_.reserve(space.l2Bytes.size());
    for (const double l2 : space.l2Bytes) {
        std::string f;
        appendNum(f, l2 / units::MIB);
        f += "M-hbm";
        l2Frags_.push_back(std::move(f));
    }
    memFrags_.reserve(space.memBandwidths.size());
    for (const double mem_bw : space.memBandwidths) {
        std::string f;
        appendNum(f, mem_bw / units::TBPS);
        f += "T-dev";
        memFrags_.push_back(std::move(f));
    }
    devFrags_.reserve(space.deviceBandwidths.size());
    for (const double dev_bw : space.deviceBandwidths) {
        std::string f;
        appendNum(f, dev_bw / units::GBPS);
        f += 'G';
        devFrags_.push_back(std::move(f));
    }

    // Whole-tail table on top of the fragments for exhaustive-scale
    // spaces only: splicing one precompiled tail beats three extra
    // appends per point, but the table is O(innerBlock_) strings —
    // prohibitive for fine-grained adaptive spaces (dse::fineSpace has
    // ~1.5M inner points per outer cell), which sample the block too
    // sparsely to amortize it anyway. Names are byte-identical either
    // way; tests/test_dse.cpp pins both paths against a stream-built
    // reference.
    if (innerBlock_ <= 65536) {
        innerSuffixes_.resize(innerBlock_);
        for (std::size_t rem = 0; rem < innerBlock_; ++rem) {
            std::size_t r = rem;
            const std::size_t n_dev = space.deviceBandwidths.size();
            const std::size_t n_mem = space.memBandwidths.size();
            const std::size_t n_l2 = space.l2Bytes.size();
            const std::size_t dev = r % n_dev;
            r /= n_dev;
            const std::size_t mem = r % n_mem;
            r /= n_mem;
            const std::size_t l2 = r % n_l2;
            r /= n_l2;
            std::string &tail = innerSuffixes_[rem];
            tail.reserve(l1Frags_[r].size() + l2Frags_[l2].size() +
                         memFrags_[mem].size() + devFrags_[dev].size());
            tail.append(l1Frags_[r]);
            tail.append(l2Frags_[l2]);
            tail.append(memFrags_[mem]);
            tail.append(devFrags_[dev]);
        }
    }
}

hw::HardwareConfig
SweepPlan::point(std::size_t index) const
{
    hw::HardwareConfig cfg;
    point(index, &cfg);
    return cfg;
}

void
SweepPlan::point(std::size_t index, hw::HardwareConfig *out) const
{
    fatalIf(index >= pointCount_, "SweepPlan::point: index out of range");
    const OuterPoint &o = outers_[index / innerBlock_];
    const std::size_t inner = index % innerBlock_;
    std::size_t rem = inner;
    const std::size_t n_dev = space_.deviceBandwidths.size();
    const std::size_t n_mem = space_.memBandwidths.size();
    const std::size_t n_l2 = space_.l2Bytes.size();
    const std::size_t dev = rem % n_dev;
    rem /= n_dev;
    const std::size_t mem = rem % n_mem;
    rem /= n_mem;
    const std::size_t l2 = rem % n_l2;
    rem /= n_l2;
    const std::size_t l1 = rem;
    fillFields(space_, o.dies, o.dim, o.lanes, o.cores,
               space_.l1BytesPerCore[l1], space_.l2Bytes[l2],
               space_.memBandwidths[mem], space_.deviceBandwidths[dev],
               out);
    // Assemble the name from the precompiled fragments, reusing the
    // caller's string storage (no allocation once warm).
    out->name.assign(o.namePrefix);
    if (!innerSuffixes_.empty()) {
        out->name.append(innerSuffixes_[inner]);
    } else {
        out->name.append(l1Frags_[l1]);
        out->name.append(l2Frags_[l2]);
        out->name.append(memFrags_[mem]);
        out->name.append(devFrags_[dev]);
    }
    out->name.append(o.diesSuffix);
    out->validate();
}

void
SweepSpace::forEach(const std::function<void(const hw::HardwareConfig &,
                                             std::size_t)> &fn) const
{
    const SweepPlan plan(*this);
    hw::HardwareConfig cfg;
    for (std::size_t i = 0; i < plan.pointCount(); ++i) {
        plan.point(i, &cfg);
        fn(cfg, i);
    }
    obs::counterAdd("dse.sweep.points", plan.pointCount());
}

std::vector<hw::HardwareConfig>
SweepSpace::generate() const
{
    const obs::TraceSpan span("dse.sweep.generate");
    std::vector<hw::HardwareConfig> out;
    out.reserve(size());
    forEach([&out](const hw::HardwareConfig &cfg, std::size_t) {
        out.push_back(cfg);
    });
    return out;
}

SweepSpace
table3Space(double tpp_target, std::vector<double> device_bandwidths)
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = tpp_target;
    space.systolicDims = {16, 32};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {192.0 * units::KIB, 256.0 * units::KIB,
                            512.0 * units::KIB, 1024.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB, 48.0 * units::MIB,
                     64.0 * units::MIB, 80.0 * units::MIB};
    space.memBandwidths = {2.0 * units::TBPS, 2.4 * units::TBPS,
                           2.8 * units::TBPS, 3.2 * units::TBPS};
    space.deviceBandwidths = std::move(device_bandwidths);
    return space;
}

SweepSpace
table5Space()
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = 4800.0;
    space.systolicDims = {4, 8, 16};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {32.0 * units::KIB, 64.0 * units::KIB,
                            128.0 * units::KIB, 192.0 * units::KIB};
    space.l2Bytes = {8.0 * units::MIB, 16.0 * units::MIB,
                     32.0 * units::MIB, 40.0 * units::MIB};
    space.memBandwidths = {0.8 * units::TBPS, 1.2 * units::TBPS,
                           1.6 * units::TBPS, 2.0 * units::TBPS};
    space.deviceBandwidths = {400.0 * units::GBPS, 500.0 * units::GBPS,
                              600.0 * units::GBPS};
    return space;
}

SweepSpace
fineSpace(double tpp_target)
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = tpp_target;
    // Outer axes: Table 3 densified. 7 dims x 8 lane counts x 2
    // chiplet counts = 112 outer combinations.
    space.systolicDims = {8, 12, 16, 20, 24, 28, 32};
    space.lanesPerCore = {1, 2, 3, 4, 5, 6, 7, 8};
    space.diesPerPackage = {1, 2};
    // Inner axes: dense uniform grids spanning (and exceeding) the
    // Table 3 ranges. 29 x 41 x 35 x 37 = ~1.5M inner points per
    // outer cell, ~1.7e8 designs total.
    for (int i = 0; i < 29; ++i)
        space.l1BytesPerCore.push_back((192.0 + 32.0 * i) * units::KIB);
    for (int i = 0; i < 41; ++i)
        space.l2Bytes.push_back((16.0 + 2.0 * i) * units::MIB);
    for (int i = 0; i < 35; ++i)
        space.memBandwidths.push_back((1.5 + 0.05 * i) * units::TBPS);
    for (int i = 0; i < 37; ++i)
        space.deviceBandwidths.push_back((100.0 + 25.0 * i) *
                                         units::GBPS);
    return space;
}

} // namespace dse
} // namespace acs
