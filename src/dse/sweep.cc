#include "sweep.hh"

#include <sstream>

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "obs/obs.hh"

namespace acs {
namespace dse {

std::size_t
SweepSpace::size() const
{
    return systolicDims.size() * lanesPerCore.size() *
           l1BytesPerCore.size() * l2Bytes.size() * memBandwidths.size() *
           deviceBandwidths.size() * diesPerPackage.size();
}

namespace {

constexpr double PHY_BW = 50.0 * units::GBPS;

/** Build one named, validated design point (shared by plan/generate). */
hw::HardwareConfig
makePoint(const SweepSpace &space, int dies, int dim, int lanes,
          int cores, double l1, double l2, double mem_bw, double dev_bw)
{
    hw::HardwareConfig cfg = space.base;
    cfg.systolicDimX = dim;
    cfg.systolicDimY = dim;
    cfg.lanesPerCore = lanes;
    cfg.coreCount = cores;
    cfg.l1BytesPerCore = l1;
    cfg.l2Bytes = l2;
    cfg.memBandwidth = mem_bw;
    // Round to the nearest whole PHY but never below one: bandwidths
    // under half a PHY (25 GB/s) would otherwise round to an
    // interconnect-less design.
    cfg.devicePhyCount =
        std::max(1, static_cast<int>(dev_bw / PHY_BW + 0.5));
    cfg.perPhyBandwidth = PHY_BW;
    cfg.diesPerPackage = dies;
    std::ostringstream name;
    name << "dse-" << dim << "x" << dim << "-l" << lanes << "-c"
         << cores << "-L1." << l1 / units::KIB << "K-L2."
         << l2 / units::MIB << "M-hbm" << mem_bw / units::TBPS
         << "T-dev" << dev_bw / units::GBPS << "G";
    if (dies > 1)
        name << "-d" << dies;
    cfg.name = name.str();
    cfg.validate();
    return cfg;
}

} // anonymous namespace

SweepPlan::SweepPlan(const SweepSpace &space)
    : space_(space)
{
    fatalIf(space.systolicDims.empty() || space.lanesPerCore.empty() ||
            space.l1BytesPerCore.empty() || space.l2Bytes.empty() ||
            space.memBandwidths.empty() ||
            space.deviceBandwidths.empty() ||
            space.diesPerPackage.empty(),
            "SweepSpace: every parameter list must be non-empty");
    fatalIf(space.tppTarget <= 0.0, "SweepSpace: tppTarget must be > 0");

    for (int dies : space.diesPerPackage) {
      fatalIf(dies < 1, "SweepSpace: diesPerPackage entries must be >= 1");
      // TPP aggregates over the package; each die gets an equal share
      // of the budget (Sec. 2.1).
      for (int dim : space.systolicDims) {
        for (int lanes : space.lanesPerCore) {
            const int cores = hw::coresForTpp(
                space.tppTarget / dies, dim, dim, lanes,
                space.base.clockHz, space.base.opBitwidth);
            if (cores < 1) {
                std::ostringstream oss;
                oss << "skipping " << dim << "x" << dim << " x" << lanes
                    << " lanes: one core already exceeds TPP "
                    << space.tppTarget;
                warn(oss.str());
                continue;
            }
            outers_.push_back({dies, dim, lanes, cores});
        }
      }
    }
    innerBlock_ = space.l1BytesPerCore.size() * space.l2Bytes.size() *
                  space.memBandwidths.size() *
                  space.deviceBandwidths.size();
    pointCount_ = outers_.size() * innerBlock_;
}

hw::HardwareConfig
SweepPlan::point(std::size_t index) const
{
    fatalIf(index >= pointCount_, "SweepPlan::point: index out of range");
    const OuterPoint &o = outers_[index / innerBlock_];
    std::size_t rem = index % innerBlock_;
    const std::size_t n_dev = space_.deviceBandwidths.size();
    const std::size_t n_mem = space_.memBandwidths.size();
    const std::size_t n_l2 = space_.l2Bytes.size();
    const double dev_bw = space_.deviceBandwidths[rem % n_dev];
    rem /= n_dev;
    const double mem_bw = space_.memBandwidths[rem % n_mem];
    rem /= n_mem;
    const double l2 = space_.l2Bytes[rem % n_l2];
    rem /= n_l2;
    const double l1 = space_.l1BytesPerCore[rem];
    return makePoint(space_, o.dies, o.dim, o.lanes, o.cores, l1, l2,
                     mem_bw, dev_bw);
}

void
SweepSpace::forEach(const std::function<void(const hw::HardwareConfig &,
                                             std::size_t)> &fn) const
{
    const SweepPlan plan(*this);
    for (std::size_t i = 0; i < plan.pointCount(); ++i)
        fn(plan.point(i), i);
    obs::counterAdd("dse.sweep.points", plan.pointCount());
}

std::vector<hw::HardwareConfig>
SweepSpace::generate() const
{
    const obs::TraceSpan span("dse.sweep.generate");
    std::vector<hw::HardwareConfig> out;
    out.reserve(size());
    forEach([&out](const hw::HardwareConfig &cfg, std::size_t) {
        out.push_back(cfg);
    });
    return out;
}

SweepSpace
table3Space(double tpp_target, std::vector<double> device_bandwidths)
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = tpp_target;
    space.systolicDims = {16, 32};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {192.0 * units::KIB, 256.0 * units::KIB,
                            512.0 * units::KIB, 1024.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB, 48.0 * units::MIB,
                     64.0 * units::MIB, 80.0 * units::MIB};
    space.memBandwidths = {2.0 * units::TBPS, 2.4 * units::TBPS,
                           2.8 * units::TBPS, 3.2 * units::TBPS};
    space.deviceBandwidths = std::move(device_bandwidths);
    return space;
}

SweepSpace
table5Space()
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = 4800.0;
    space.systolicDims = {4, 8, 16};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {32.0 * units::KIB, 64.0 * units::KIB,
                            128.0 * units::KIB, 192.0 * units::KIB};
    space.l2Bytes = {8.0 * units::MIB, 16.0 * units::MIB,
                     32.0 * units::MIB, 40.0 * units::MIB};
    space.memBandwidths = {0.8 * units::TBPS, 1.2 * units::TBPS,
                           1.6 * units::TBPS, 2.0 * units::TBPS};
    space.deviceBandwidths = {400.0 * units::GBPS, 500.0 * units::GBPS,
                              600.0 * units::GBPS};
    return space;
}

} // namespace dse
} // namespace acs
