#include "sweep.hh"

#include <sstream>

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "obs/obs.hh"

namespace acs {
namespace dse {

std::size_t
SweepSpace::size() const
{
    return systolicDims.size() * lanesPerCore.size() *
           l1BytesPerCore.size() * l2Bytes.size() * memBandwidths.size() *
           deviceBandwidths.size() * diesPerPackage.size();
}

std::vector<hw::HardwareConfig>
SweepSpace::generate() const
{
    fatalIf(systolicDims.empty() || lanesPerCore.empty() ||
            l1BytesPerCore.empty() || l2Bytes.empty() ||
            memBandwidths.empty() || deviceBandwidths.empty() ||
            diesPerPackage.empty(),
            "SweepSpace: every parameter list must be non-empty");
    fatalIf(tppTarget <= 0.0, "SweepSpace: tppTarget must be > 0");

    constexpr double PHY_BW = 50.0 * units::GBPS;

    const obs::TraceSpan span("dse.sweep.generate");
    std::vector<hw::HardwareConfig> out;
    out.reserve(size());
    for (int dies : diesPerPackage) {
      fatalIf(dies < 1, "SweepSpace: diesPerPackage entries must be >= 1");
      // TPP aggregates over the package; each die gets an equal share
      // of the budget (Sec. 2.1).
      for (int dim : systolicDims) {
        for (int lanes : lanesPerCore) {
            const int cores = hw::coresForTpp(tppTarget / dies, dim,
                                              dim, lanes, base.clockHz,
                                              base.opBitwidth);
            if (cores < 1) {
                std::ostringstream oss;
                oss << "skipping " << dim << "x" << dim << " x" << lanes
                    << " lanes: one core already exceeds TPP "
                    << tppTarget;
                warn(oss.str());
                continue;
            }
            for (double l1 : l1BytesPerCore) {
                for (double l2 : l2Bytes) {
                    for (double mem_bw : memBandwidths) {
                        for (double dev_bw : deviceBandwidths) {
                            hw::HardwareConfig cfg = base;
                            cfg.systolicDimX = dim;
                            cfg.systolicDimY = dim;
                            cfg.lanesPerCore = lanes;
                            cfg.coreCount = cores;
                            cfg.l1BytesPerCore = l1;
                            cfg.l2Bytes = l2;
                            cfg.memBandwidth = mem_bw;
                            // Round to the nearest whole PHY but
                            // never below one: bandwidths under half
                            // a PHY (25 GB/s) would otherwise round
                            // to an interconnect-less design.
                            cfg.devicePhyCount = std::max(
                                1, static_cast<int>(dev_bw / PHY_BW +
                                                    0.5));
                            cfg.perPhyBandwidth = PHY_BW;
                            cfg.diesPerPackage = dies;
                            std::ostringstream name;
                            name << "dse-" << dim << "x" << dim << "-l"
                                 << lanes << "-c" << cores << "-L1."
                                 << l1 / units::KIB << "K-L2."
                                 << l2 / units::MIB << "M-hbm"
                                 << mem_bw / units::TBPS << "T-dev"
                                 << dev_bw / units::GBPS << "G";
                            if (dies > 1)
                                name << "-d" << dies;
                            cfg.name = name.str();
                            cfg.validate();
                            out.push_back(cfg);
                        }
                    }
                }
            }
        }
      }
    }
    obs::counterAdd("dse.sweep.points", out.size());
    return out;
}

SweepSpace
table3Space(double tpp_target, std::vector<double> device_bandwidths)
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = tpp_target;
    space.systolicDims = {16, 32};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {192.0 * units::KIB, 256.0 * units::KIB,
                            512.0 * units::KIB, 1024.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB, 48.0 * units::MIB,
                     64.0 * units::MIB, 80.0 * units::MIB};
    space.memBandwidths = {2.0 * units::TBPS, 2.4 * units::TBPS,
                           2.8 * units::TBPS, 3.2 * units::TBPS};
    space.deviceBandwidths = std::move(device_bandwidths);
    return space;
}

SweepSpace
table5Space()
{
    SweepSpace space;
    space.base = hw::modeledA100();
    space.tppTarget = 4800.0;
    space.systolicDims = {4, 8, 16};
    space.lanesPerCore = {1, 2, 4, 8};
    space.l1BytesPerCore = {32.0 * units::KIB, 64.0 * units::KIB,
                            128.0 * units::KIB, 192.0 * units::KIB};
    space.l2Bytes = {8.0 * units::MIB, 16.0 * units::MIB,
                     32.0 * units::MIB, 40.0 * units::MIB};
    space.memBandwidths = {0.8 * units::TBPS, 1.2 * units::TBPS,
                           1.6 * units::TBPS, 2.0 * units::TBPS};
    space.deviceBandwidths = {400.0 * units::GBPS, 500.0 * units::GBPS,
                              600.0 * units::GBPS};
    return space;
}

} // namespace dse
} // namespace acs
