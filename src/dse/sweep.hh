/**
 * @file
 * Design-space sweep generation (Sec. 3.3, Tables 3 and 5).
 *
 * A SweepSpace is the cartesian product of architectural parameter
 * lists at a fixed TPP target: systolic dims and lanes/core are swept
 * and the core count is solved from Eq. 1 to stay at/under the target.
 */

#ifndef ACS_DSE_SWEEP_HH
#define ACS_DSE_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "hw/config.hh"

namespace acs {
namespace dse {

class SweepPlan;

/**
 * How a sweep axis influences an evaluated design.
 *
 * COMPUTE axes change die-local timing (GEMM/vector latencies):
 * varying one invalidates any cached per-op simulation result.
 * COMM_ONLY axes change only the device-device interconnect (and the
 * classification metrics derived from it) — die-local GEMM timing is
 * invariant along them, which is what lets a sweep-scoped GEMM cache
 * (perf::GemmCache) reuse one simulation across the entire axis. See
 * docs/PERF.md ("Cross-design GEMM memoization").
 */
enum class AxisEffect
{
    COMPUTE,
    COMM_ONLY,
};

/** One sweep axis: its name, effect class, and value count. */
struct SweepAxis
{
    const char *name;
    AxisEffect effect;
    std::size_t count;
};

/** Parameter lists whose cartesian product is the design space. */
struct SweepSpace
{
    /** Base configuration supplying every non-swept field. */
    hw::HardwareConfig base;

    /** TPP ceiling; core count is maximized under it (Eq. 1). */
    double tppTarget = 4800.0;

    std::vector<int> systolicDims;          //!< square DIMX = DIMY
    std::vector<int> lanesPerCore;
    std::vector<double> l1BytesPerCore;
    std::vector<double> l2Bytes;
    std::vector<double> memBandwidths;      //!< bytes/s
    std::vector<double> deviceBandwidths;   //!< bytes/s, bidirectional
    std::vector<int> diesPerPackage = {1};  //!< chiplet counts

    /**
     * The *raw* cartesian-product size of the parameter lists — an
     * upper bound on what the space generates. generate() (and every
     * SweepPlan-backed enumeration) skips infeasible outer
     * combinations whose TPP budget cannot fit even one core, so the
     * actual point count is feasibleSize() <= size(). Spaces whose
     * lists all admit at least one core (the paper's Table 3/5
     * spaces) have feasibleSize() == size().
     */
    std::size_t size() const;

    /**
     * The number of design points the space actually enumerates:
     * size() minus the points of infeasible (dies, dim, lanes) outer
     * combinations. Exactly generate().size().
     *
     * Memoized: the first call compiles a SweepPlan (emitting its
     * one-per-combination skip warnings); repeat calls pay only a
     * fingerprint of the parameter lists, recomputed so mutating any
     * swept field (or tppTarget / the base clock) invalidates the
     * cached count automatically.
     */
    std::size_t feasibleSize() const;

    /**
     * feasibleSize() memo (fingerprint of the fields the count
     * depends on, plus the cached value). Mutable bookkeeping only —
     * public because SweepSpace is an aggregate; not part of the API.
     */
    mutable std::uint64_t feasibleFp_ = 0;
    mutable std::size_t feasibleCount_ = 0;
    mutable bool feasibleCached_ = false;

    /**
     * The sweep axes in enumeration order, outermost first, each
     * tagged compute-affecting or comm-only. The enumeration
     * invariant (held by SweepPlan and asserted in tests/test_dse.cpp)
     * is that comm-only axes are innermost: designs sharing all
     * die-local compute parameters occupy contiguous index runs, so a
     * cross-design GEMM cache hits on every design of a run after its
     * first.
     */
    std::vector<SweepAxis> axes() const;

    /**
     * Materialize every design point.
     *
     * Points whose TPP budget cannot fit even one core are skipped
     * with a warning (they cannot exist). Device bandwidth is realized
     * as 50 GB/s PHYs.
     */
    std::vector<hw::HardwareConfig> generate() const;

    /**
     * Streaming enumeration: invoke @p fn with every design point
     * generate() would materialize — same points, same order, same
     * names — plus the point's enumeration index, without ever holding
     * more than one config alive. This is the O(1)-memory producer the
     * fused sweep pipeline (DesignEvaluator::evaluateStream) builds
     * on.
     */
    void forEach(const std::function<void(const hw::HardwareConfig &,
                                          std::size_t)> &fn) const;
};

/**
 * A compiled sweep space: the feasible (dies, systolicDim, lanes,
 * cores) outer combinations, each spanning one contiguous block of
 * |l1| x |l2| x |memBw| x |devBw| enumeration indices.
 *
 * Solving the outer loop once makes every design point independently
 * addressable by its flat index (point(i)), which is what lets sweep
 * workers claim chunks of the space off an atomic cursor and build
 * only the points they own — the cartesian product is never
 * materialized. Construction performs the feasibility checks (and
 * emits the one-per-combination warnings) that generate() does.
 *
 * Thread-compatible: const after construction.
 */
class SweepPlan
{
  public:
    /** Compiles @p space (fatal on empty parameter lists). */
    explicit SweepPlan(const SweepSpace &space);

    /** Design points the plan enumerates (== generate().size()). */
    std::size_t pointCount() const { return pointCount_; }

    /** Feasible (dies, dim, lanes, cores) outer combinations. */
    std::size_t outerCount() const { return outers_.size(); }

    /**
     * Points per outer combination: |l1| x |l2| x |memBw| x |devBw|.
     * Outer cell o spans flat indices [o * innerBlockSize(), (o + 1) *
     * innerBlockSize()) — the natural shard boundary (dse::ShardSpec):
     * no compute-class run, and no inner-axis refinement neighborhood,
     * ever crosses an outer cell.
     */
    std::size_t innerBlockSize() const { return innerBlock_; }

    /**
     * Build the design point at flat index @p index (bounds-checked;
     * identical to generate()[index]).
     */
    hw::HardwareConfig point(std::size_t index) const;

    /**
     * Length of one compute-class run: the number of consecutive
     * enumeration indices that share every compute-affecting
     * parameter and differ only along comm-only axes (currently the
     * deviceBandwidths axis, which SweepPlan keeps innermost — see
     * SweepSpace::axes()). Designs i and j share die-local GEMM
     * timing whenever i / commOnlyRunLength() == j /
     * commOnlyRunLength().
     */
    std::size_t commOnlyRunLength() const
    {
        return space_.deviceBandwidths.size();
    }

    /**
     * Build the design point at flat index @p index into @p out.
     *
     * Same point as the returning overload, but reusing the caller's
     * config — and in particular its name string's heap buffer. Sweep
     * workers build one design per enumeration step; with a fresh
     * config each step the name allocation dominates the build under
     * thread contention (the allocator serializes at streaming
     * rates), so hot loops keep one scratch config per worker and
     * fill it in place.
     */
    void point(std::size_t index, hw::HardwareConfig *out) const;

    /** The compiled space (kept by reference; must outlive the plan). */
    const SweepSpace &space() const { return space_; }

  private:
    struct OuterPoint
    {
        int dies;
        int dim;
        int lanes;
        int cores;
        std::string namePrefix; //!< "dse-<dim>x<dim>-l<lanes>-c<cores>-L1."
        std::string diesSuffix; //!< "-d<dies>", empty for single-die
    };

    const SweepSpace &space_;
    std::vector<OuterPoint> outers_;
    /**
     * Per inner-index name tail "<l1>K-L2.<l2>M-hbm<mem>T-dev<dev>G":
     * every design name is namePrefix + innerSuffix + diesSuffix, so
     * compiling the fragments here keeps all number formatting out of
     * point() (glibc's float printf serializes across sweep workers).
     *
     * Only built while innerBlock_ stays small (the paper's Table 3/5
     * spaces): a fine-grained adaptive space (dse::fineSpace) has
     * millions of inner points per outer cell, where a full suffix
     * table would cost hundreds of megabytes to enumerate a space the
     * adaptive engine then samples sparsely. Above the threshold
     * point() splices four per-axis fragments instead — byte-identical
     * names (same fragments, same order), one extra append per axis.
     */
    std::vector<std::string> innerSuffixes_;
    std::vector<std::string> l1Frags_;  //!< "<l1>K-L2."
    std::vector<std::string> l2Frags_;  //!< "<l2>M-hbm"
    std::vector<std::string> memFrags_; //!< "<mem>T-dev"
    std::vector<std::string> devFrags_; //!< "<dev>G"
    std::size_t innerBlock_ = 0; //!< points per OuterPoint
    std::size_t pointCount_ = 0;
};

/**
 * The Table 3 space used for Figs. 6 and 7.
 *
 * @param tpp_target       4800 (Fig. 6) or one of {1600, 2400, 4800}
 *                         (Fig. 7).
 * @param device_bandwidths Device-bandwidth list in bytes/s:
 *                         {600 GB/s} for Fig. 6,
 *                         {500, 700, 900 GB/s} for Fig. 7.
 */
SweepSpace table3Space(double tpp_target,
                       std::vector<double> device_bandwidths);

/**
 * The Table 5 restricted space used for Fig. 12 (parameters at or
 * below the modeled A100; 2304 points).
 */
SweepSpace table5Space();

/**
 * A fine-grained Table-3-style space for the adaptive DSE engine
 * (docs/DSE.md): the Table 3 outer axes densified (systolic dims in
 * steps of 4, all lane counts, 1- and 2-die packages) and dense inner
 * grids — L1 in 32 KiB steps, L2 in 2 MiB steps, HBM bandwidth in
 * 0.05 TB/s steps, device bandwidth in 25 GB/s steps. ~1.7 x 10^8
 * feasible designs: three-plus orders of magnitude finer than Table 3,
 * sized for AdaptiveSearch (exhaustive enumeration at the streaming
 * rate would take most of an hour; see results/BENCH_dse.json).
 */
SweepSpace fineSpace(double tpp_target = 4800.0);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_SWEEP_HH
