#include "adaptive.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_set>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace acs {
namespace dse {

namespace {

/** FNV-1a (same scheme as sweep.cc's feasibility fingerprint). */
std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

template <typename T>
std::uint64_t
fnvValue(const T &v, std::uint64_t h)
{
    return fnv1a(&v, sizeof(v), h);
}

template <typename T>
std::uint64_t
fnvList(const std::vector<T> &values, std::uint64_t h)
{
    const std::size_t n = values.size();
    h = fnvValue(n, h);
    for (const T &v : values)
        h = fnvValue(v, h);
    return h;
}

/**
 * Initial refinement stride of an inner axis with @p n values
 * (power of two, halved once per refinement round).
 *
 * Short axes (the Table 3/5 lists) start from their corners — the
 * largest power of two under the axis span, so one halving already
 * probes the interior. Dense axes (fineSpace) start from the stride
 * that puts about five points on the coarse sub-lattice.
 */
std::size_t
coarseStride(std::size_t n)
{
    if (n <= 1)
        return 1;
    if (n <= 7)
        return std::bit_floor(n - 1);
    std::size_t s = 1;
    while ((n - 2 + s) / s + 1 > 5) // ceil((n-1)/s) + 1 grid points
        s <<= 1;
    return s;
}

/** Round-0 sample indices of an axis: corners, or a strided grid
 *  (multiples of coarseStride plus the endpoint). */
std::vector<std::size_t>
coarseGrid(std::size_t n)
{
    if (n <= 1)
        return {0};
    if (n <= 7)
        return {0, n - 1};
    std::vector<std::size_t> grid;
    const std::size_t s = coarseStride(n);
    for (std::size_t i = 0; i < n - 1; i += s)
        grid.push_back(i);
    grid.push_back(n - 1);
    return grid;
}

bool
strictlyAscending(const std::vector<double> &v)
{
    for (std::size_t i = 1; i < v.size(); ++i) {
        if (!(v[i - 1] < v[i]))
            return false;
    }
    return true;
}

std::uint32_t
sampleFlags(const PointSample &s)
{
    return (s.kept ? POINT_KEPT : 0u) |
           (s.underReticle ? POINT_UNDER_RETICLE : 0u) |
           (s.oct2023Unregulated ? POINT_UNREGULATED : 0u);
}

} // anonymous namespace

/** Per compute-class run bookkeeping: the run's base flat index
 *  (its dev=0 point) and its best metrics over evaluated kept
 *  points. */
struct AdaptiveSearch::RunState
{
    std::size_t base = 0;
    double bestTtft = 0.0;
    double bestTbt = 0.0;
    bool hasKept = false;
    /** Smallest stride-sum this run has spawned neighborhoods at
     *  (pattern-search gate: spawn once per refinement level). */
    std::size_t spawnedAt = std::numeric_limits<std::size_t>::max();
};

AdaptiveSearch::AdaptiveSearch(const DesignEvaluator &evaluator,
                               const SweepSpace &space,
                               AdaptiveConfig cfg)
    : evaluator_(evaluator), space_(space), cfg_(std::move(cfg)),
      plan_(space)
{
}

std::uint64_t
AdaptiveSearch::searchFingerprint(const SweepSpace &space,
                                  const perf::PerfParams &params,
                                  const AdaptiveConfig &cfg)
{
    std::uint64_t h = 14695981039346656037ull;
    // The space (same fields as SweepSpace's feasibility fingerprint).
    h = fnvValue(space.tppTarget, h);
    h = fnvValue(space.base.clockHz, h);
    h = fnvValue(space.base.opBitwidth, h);
    h = fnvList(space.systolicDims, h);
    h = fnvList(space.lanesPerCore, h);
    h = fnvList(space.l1BytesPerCore, h);
    h = fnvList(space.l2Bytes, h);
    h = fnvList(space.memBandwidths, h);
    h = fnvList(space.deviceBandwidths, h);
    h = fnvList(space.diesPerPackage, h);
    // Every perf constant that reaches a timing expression. The
    // bit-identical speed switches (batchAnalyticEval,
    // cacheTileSimGemms, the cache handle) are deliberately excluded:
    // they change cost, never results.
    h = fnvValue(static_cast<int>(params.gemmMode), h);
    h = fnvValue(static_cast<int>(params.tileSimEngine), h);
    h = fnvValue(params.modelMultiPassVector, h);
    h = fnvValue(params.memEfficiency, h);
    h = fnvValue(params.l2Efficiency, h);
    h = fnvValue(params.l2BytesPerCyclePerFpu, h);
    h = fnvValue(params.l2BlockingFraction, h);
    h = fnvValue(params.l1TileFraction, h);
    h = fnvValue(params.kernelOverheadS, h);
    h = fnvValue(params.allreduceStepLatencyS, h);
    h = fnvValue(params.interconnectEfficiency, h);
    h = fnvValue(params.modelPipelineFill, h);
    h = fnvValue(params.pipelineFillOverlap, h);
    h = fnvValue(params.modelTiling, h);
    h = fnvValue(params.memoizeOps, h);
    h = fnvValue(params.modelL2Blocking, h);
    // The workload and the trajectory-shaping adaptive knobs. Shard
    // assignment and checkpoint cadence are excluded on purpose:
    // shards of one search must share a fingerprint, and pausing a
    // search must not invalidate its own snapshot.
    h = fnvValue(cfg.workloadTag.size(), h);
    h = fnv1a(cfg.workloadTag.data(), cfg.workloadTag.size(), h);
    h = fnvValue(cfg.bandFraction, h);
    h = fnvValue(cfg.topK, h);
    h = fnvValue(cfg.cellTopK, h);
    h = fnvValue(cfg.maxSurvivors, h);
    h = fnvValue(cfg.bracketCommAxis, h);
    return h;
}

AdaptiveResult
AdaptiveSearch::run(const DesignEvaluator::StreamPredicate &predicate)
{
    const std::size_t n1 = space_.l1BytesPerCore.size();
    const std::size_t n2 = space_.l2Bytes.size();
    const std::size_t n3 = space_.memBandwidths.size();
    const std::size_t n4 = space_.deviceBandwidths.size();
    const std::size_t inner_block = plan_.innerBlockSize();
    const auto [o_begin, o_end] =
        shardOuterRange(cfg_.shard, plan_.outerCount());
    const std::uint64_t fp =
        searchFingerprint(space_, evaluator_.params(), cfg_);

    // Bracketing preconditions: metrics must be monotone along the
    // dev axis (ascending bandwidth list) and the argmin must be over
    // the full run (no keep-predicate carving holes in the plateau).
    const bool bracket = cfg_.bracketCommAxis && predicate == nullptr &&
                         n4 > 1 &&
                         strictlyAscending(space_.deviceBandwidths);

    // ---- Trajectory state -------------------------------------------
    std::unordered_map<std::size_t, PointSample> cache;
    std::unordered_set<std::size_t> visited; // run base indices
    std::vector<RunState> runs;              // deterministic order
    std::size_t new_evals = 0;               // evaluated by this call
    std::size_t since_ckpt = 0;
    std::size_t waves = 0;
    bool stopped = false;

    // ---- Resume -----------------------------------------------------
    if (!cfg_.checkpointPath.empty()) {
        Checkpoint ck;
        if (readCheckpoint(cfg_.checkpointPath, &ck)) {
            fatalIf(ck.fingerprint != fp,
                    "adaptive resume: checkpoint fingerprint mismatch "
                    "(different space/params/workload/knobs): " +
                        cfg_.checkpointPath);
            fatalIf(!(ck.shard == cfg_.shard),
                    "adaptive resume: checkpoint belongs to shard " +
                        std::to_string(ck.shard.index) + "/" +
                        std::to_string(ck.shard.count) + ", not " +
                        std::to_string(cfg_.shard.index) + "/" +
                        std::to_string(cfg_.shard.count));
            cache.reserve(ck.points.size());
            for (const CheckpointPoint &p : ck.points) {
                PointSample s;
                s.ttftS = p.ttftS;
                s.tbtS = p.tbtS;
                s.kept = (p.flags & POINT_KEPT) != 0;
                s.underReticle = (p.flags & POINT_UNDER_RETICLE) != 0;
                s.oct2023Unregulated =
                    (p.flags & POINT_UNREGULATED) != 0;
                cache.emplace(p.index, s);
            }
            inform("adaptive: resumed " +
                 std::to_string(ck.points.size()) + " points from " +
                 cfg_.checkpointPath);
        }
    }

    // ---- Wave machinery ---------------------------------------------
    const auto sortedPoints = [&]() {
        std::vector<CheckpointPoint> pts;
        pts.reserve(cache.size());
        for (const auto &[idx, s] : cache)
            pts.push_back({idx, s.ttftS, s.tbtS, sampleFlags(s)});
        std::sort(pts.begin(), pts.end(),
                  [](const CheckpointPoint &a, const CheckpointPoint &b) {
                      return a.index < b.index;
                  });
        return pts;
    };

    const auto writeCkpt = [&](bool complete) {
        if (cfg_.checkpointPath.empty())
            return;
        Checkpoint ck;
        ck.fingerprint = fp;
        ck.shard = cfg_.shard;
        ck.spacePoints = plan_.pointCount();
        ck.complete = complete;
        ck.waves = waves;
        ck.points = sortedPoints();
        writeCheckpoint(cfg_.checkpointPath, ck);
        since_ckpt = 0;
    };

    // Evaluate one wave of plan indices against the cache. Returns
    // false when the evaluation budget is exhausted (wave-aligned
    // stop: the wave is not evaluated at all, so a resumed run replays
    // it whole).
    const auto evalWave = [&](std::vector<std::size_t> &idxs) {
        ++waves;
        std::sort(idxs.begin(), idxs.end());
        idxs.erase(std::unique(idxs.begin(), idxs.end()), idxs.end());
        std::vector<std::size_t> misses;
        misses.reserve(idxs.size());
        for (std::size_t idx : idxs) {
            if (!cache.count(idx))
                misses.push_back(idx);
        }
        if (misses.empty())
            return true;
        if (cfg_.maxEvaluations != 0 &&
            new_evals + misses.size() > cfg_.maxEvaluations) {
            stopped = true;
            return false;
        }
        std::vector<PointSample> out(misses.size());
        evaluator_.evaluatePlanIndices(plan_, misses.data(),
                                       misses.size(), predicate,
                                       out.data(), cfg_.threads);
        for (std::size_t i = 0; i < misses.size(); ++i)
            cache.emplace(misses[i], out[i]);
        new_evals += misses.size();
        since_ckpt += misses.size();
        if (obs::enabled())
            obs::counterAdd("dse.prune.points.evaluated", misses.size());
        if (cfg_.checkpointEveryPoints != 0 &&
            since_ckpt >= cfg_.checkpointEveryPoints)
            writeCkpt(false);
        return true;
    };

    // Evaluate the dev axis of each newly discovered run and append
    // its RunState. Bracketing path: evaluate the top of the axis
    // (the run's best — metrics are non-increasing in bandwidth),
    // then lock-step binary searches find the first index attaining
    // each metric's plateau, i.e. exactly the in-run index exhaustive
    // first-wins argmin selection would keep.
    const auto processRuns = [&](const std::vector<std::size_t> &bases) {
        if (bases.empty())
            return true;
        if (obs::enabled())
            obs::counterAdd("dse.prune.runs.visited", bases.size());
        if (!bracket) {
            std::vector<std::size_t> wave;
            wave.reserve(bases.size() * n4);
            for (std::size_t base : bases) {
                for (std::size_t j = 0; j < n4; ++j)
                    wave.push_back(base + j);
            }
            if (!evalWave(wave))
                return false;
            for (std::size_t base : bases) {
                RunState r;
                r.base = base;
                for (std::size_t j = 0; j < n4; ++j) {
                    const PointSample &s = cache.at(base + j);
                    if (!s.kept)
                        continue;
                    if (!r.hasKept) {
                        r.bestTtft = s.ttftS;
                        r.bestTbt = s.tbtS;
                        r.hasKept = true;
                    } else {
                        r.bestTtft = std::min(r.bestTtft, s.ttftS);
                        r.bestTbt = std::min(r.bestTbt, s.tbtS);
                    }
                }
                runs.push_back(r);
            }
            return true;
        }

        std::vector<std::size_t> wave;
        wave.reserve(bases.size());
        for (std::size_t base : bases)
            wave.push_back(base + n4 - 1);
        if (!evalWave(wave))
            return false;

        struct Bracket
        {
            std::size_t loT = 0, hiT = 0, loB = 0, hiB = 0;
            double bestT = 0.0, bestB = 0.0;
        };
        std::vector<Bracket> st(bases.size());
        for (std::size_t i = 0; i < bases.size(); ++i) {
            const PointSample &top = cache.at(bases[i] + n4 - 1);
            st[i] = {0, n4 - 1, 0, n4 - 1, top.ttftS, top.tbtS};
        }
        for (;;) {
            wave.clear();
            for (std::size_t i = 0; i < bases.size(); ++i) {
                if (st[i].loT < st[i].hiT)
                    wave.push_back(bases[i] +
                                   (st[i].loT + st[i].hiT) / 2);
                if (st[i].loB < st[i].hiB)
                    wave.push_back(bases[i] +
                                   (st[i].loB + st[i].hiB) / 2);
            }
            if (wave.empty())
                break;
            if (!evalWave(wave))
                return false;
            for (std::size_t i = 0; i < bases.size(); ++i) {
                Bracket &b = st[i];
                if (b.loT < b.hiT) {
                    const std::size_t mid = (b.loT + b.hiT) / 2;
                    if (cache.at(bases[i] + mid).ttftS == b.bestT)
                        b.hiT = mid;
                    else
                        b.loT = mid + 1;
                }
                if (b.loB < b.hiB) {
                    const std::size_t mid = (b.loB + b.hiB) / 2;
                    if (cache.at(bases[i] + mid).tbtS == b.bestB)
                        b.hiB = mid;
                    else
                        b.loB = mid + 1;
                }
            }
        }
        for (std::size_t i = 0; i < bases.size(); ++i) {
            RunState r;
            r.base = bases[i];
            r.bestTtft = st[i].bestT;
            r.bestTbt = st[i].bestB;
            r.hasKept = true; // no predicate on the bracketing path
            runs.push_back(r);
        }
        return true;
    };

    // Global survivor selection: top-k per metric plus the band
    // around each incumbent best, capped, deterministically ordered.
    const auto selectSurvivors = [&]() {
        std::vector<std::size_t> cand;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (runs[i].hasKept)
                cand.push_back(i);
        }
        std::vector<std::size_t> out;
        if (cand.empty())
            return out;
        auto by_ttft = cand;
        std::sort(by_ttft.begin(), by_ttft.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (runs[a].bestTtft != runs[b].bestTtft)
                          return runs[a].bestTtft < runs[b].bestTtft;
                      return runs[a].base < runs[b].base;
                  });
        auto by_tbt = cand;
        std::sort(by_tbt.begin(), by_tbt.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (runs[a].bestTbt != runs[b].bestTbt)
                          return runs[a].bestTbt < runs[b].bestTbt;
                      return runs[a].base < runs[b].base;
                  });
        std::unordered_set<std::size_t> chosen;
        const auto addEscort = [&](std::size_t i) {
            if (chosen.insert(i).second)
                out.push_back(i);
        };
        // Per-cell escort first: uncapped, so every outer cell keeps
        // descending toward its own local optimum even when its runs
        // rank poorly globally.
        if (cfg_.cellTopK > 0) {
            std::unordered_map<std::size_t, std::size_t> cell_count;
            for (std::size_t i : by_ttft) {
                const std::size_t cell = runs[i].base / inner_block;
                if (cell_count[cell]++ < cfg_.cellTopK)
                    addEscort(i);
            }
            cell_count.clear();
            for (std::size_t i : by_tbt) {
                const std::size_t cell = runs[i].base / inner_block;
                if (cell_count[cell]++ < cfg_.cellTopK)
                    addEscort(i);
            }
        }
        const std::size_t escorts = out.size();
        const auto add = [&](std::size_t i) {
            if (out.size() < escorts + cfg_.maxSurvivors &&
                chosen.insert(i).second)
                out.push_back(i);
        };
        for (std::size_t i = 0; i < std::min(cfg_.topK, by_ttft.size());
             ++i)
            add(by_ttft[i]);
        for (std::size_t i = 0; i < std::min(cfg_.topK, by_tbt.size());
             ++i)
            add(by_tbt[i]);
        const double band_t =
            runs[by_ttft.front()].bestTtft * (1.0 + cfg_.bandFraction);
        const double band_b =
            runs[by_tbt.front()].bestTbt * (1.0 + cfg_.bandFraction);
        for (std::size_t i : by_ttft) {
            if (out.size() >= escorts + cfg_.maxSurvivors)
                break;
            if (runs[i].bestTtft <= band_t || runs[i].bestTbt <= band_b)
                add(i);
        }
        std::sort(out.begin(), out.end(),
                  [&](std::size_t a, std::size_t b) {
                      return runs[a].base < runs[b].base;
                  });
        return out;
    };

    // ---- Round 0: the coarse sub-lattice ----------------------------
    const std::vector<std::size_t> g1 = coarseGrid(n1);
    const std::vector<std::size_t> g2 = coarseGrid(n2);
    const std::vector<std::size_t> g3 = coarseGrid(n3);
    std::size_t s1 = coarseStride(n1);
    std::size_t s2 = coarseStride(n2);
    std::size_t s3 = coarseStride(n3);

    const auto runBase = [&](std::size_t o, std::size_t i1,
                             std::size_t i2, std::size_t i3) {
        return o * inner_block + ((i1 * n2 + i2) * n3 + i3) * n4;
    };

    std::vector<std::size_t> pending;
    for (std::size_t o = o_begin; o < o_end; ++o) {
        for (std::size_t i1 : g1) {
            for (std::size_t i2 : g2) {
                for (std::size_t i3 : g3)
                    pending.push_back(runBase(o, i1, i2, i3));
            }
        }
    }
    for (std::size_t base : pending)
        visited.insert(base);

    // ---- Refinement loop --------------------------------------------
    while (!pending.empty()) {
        if (!processRuns(pending))
            break; // budget exhausted (wave-aligned)

        const std::vector<std::size_t> survivors = selectSurvivors();

        s1 = std::max<std::size_t>(s1 / 2, 1);
        s2 = std::max<std::size_t>(s2 / 2, 1);
        s3 = std::max<std::size_t>(s3 / 2, 1);
        const std::size_t level = s1 + s2 + s3;

        pending.clear();
        for (std::size_t run_idx : survivors) {
            RunState &r = runs[run_idx];
            if (r.spawnedAt <= level)
                continue; // already expanded at this refinement level
            r.spawnedAt = level;

            const std::size_t o = r.base / inner_block;
            std::size_t rem = (r.base % inner_block) / n4;
            const std::size_t i3 = rem % n3;
            rem /= n3;
            const std::size_t i2 = rem % n2;
            const std::size_t i1 = rem / n2;

            const auto clampAxis = [](long v, std::size_t n) {
                if (v < 0)
                    return std::size_t{0};
                if (v >= static_cast<long>(n))
                    return n - 1;
                return static_cast<std::size_t>(v);
            };
            // Axis-aligned (compass) moves only: ±stride along one
            // axis at a time. Diagonal descent still happens — over
            // two rounds via an intermediate survivor — while the
            // expansion stays at 6 candidates per survivor instead of
            // the 26 of a full cross-product neighborhood, which is
            // what keeps the evaluated fraction low on the small
            // Table 3 axes.
            const long moves[][3] = {
                {-static_cast<long>(s1), 0, 0},
                {static_cast<long>(s1), 0, 0},
                {0, -static_cast<long>(s2), 0},
                {0, static_cast<long>(s2), 0},
                {0, 0, -static_cast<long>(s3)},
                {0, 0, static_cast<long>(s3)},
            };
            for (const long *m : moves) {
                const std::size_t base = runBase(
                    o, clampAxis(static_cast<long>(i1) + m[0], n1),
                    clampAxis(static_cast<long>(i2) + m[1], n2),
                    clampAxis(static_cast<long>(i3) + m[2], n3));
                if (visited.insert(base).second)
                    pending.push_back(base);
            }
        }
        std::sort(pending.begin(), pending.end());
    }

    // ---- Final snapshot + result ------------------------------------
    const bool complete = !stopped;
    writeCkpt(complete);

    AdaptiveResult res;
    res.spacePoints = plan_.pointCount();
    res.shardPoints = (o_end - o_begin) * inner_block;
    res.complete = complete;
    res.waves = waves;

    const std::vector<CheckpointPoint> pts = sortedPoints();
    res.evaluated = pts.size();
    bool have_t = false, have_b = false;
    double best_t = 0.0, best_b = 0.0;
    for (const CheckpointPoint &p : pts) {
        if (!(p.flags & POINT_KEPT))
            continue;
        ++res.kept;
        if (p.flags & POINT_UNDER_RETICLE)
            ++res.underReticle;
        if (p.flags & POINT_UNREGULATED)
            ++res.oct2023Unregulated;
        // Ascending index scan with strict <: ties resolve to the
        // lowest index, matching StreamStats::absorb / min_element.
        if (!have_t || p.ttftS < best_t) {
            best_t = p.ttftS;
            res.bestTtftIndex = p.index;
            have_t = true;
        }
        if (!have_b || p.tbtS < best_b) {
            best_b = p.tbtS;
            res.bestTbtIndex = p.index;
            have_b = true;
        }
    }
    res.fractionEvaluated =
        res.shardPoints == 0
            ? 0.0
            : static_cast<double>(res.evaluated) /
                  static_cast<double>(res.shardPoints);
    res.frontier = frontierOfPoints(pts);
    if (have_t)
        res.bestTtft = evaluator_.evaluate(plan_.point(res.bestTtftIndex));
    if (have_b)
        res.bestTbt = evaluator_.evaluate(plan_.point(res.bestTbtIndex));

    if (obs::enabled()) {
        obs::counterAdd("dse.prune.waves", waves);
        obs::counterAdd("dse.prune.points.skipped",
                        res.shardPoints - res.evaluated);
    }
    return res;
}

std::vector<FrontierPoint>
frontierOfPoints(const std::vector<CheckpointPoint> &points)
{
    std::vector<FrontierPoint> kept;
    for (const CheckpointPoint &p : points) {
        if (p.flags & POINT_KEPT)
            kept.push_back({p.index, p.ttftS, p.tbtS});
    }
    std::sort(kept.begin(), kept.end(),
              [](const FrontierPoint &a, const FrontierPoint &b) {
                  if (a.ttftS != b.ttftS)
                      return a.ttftS < b.ttftS;
                  if (a.tbtS != b.tbtS)
                      return a.tbtS < b.tbtS;
                  return a.index < b.index;
              });
    std::vector<FrontierPoint> out;
    double best_tbt = std::numeric_limits<double>::infinity();
    for (const FrontierPoint &f : kept) {
        if (f.tbtS < best_tbt) {
            out.push_back(f);
            best_tbt = f.tbtS;
        }
    }
    return out;
}

} // namespace dse
} // namespace acs
