/**
 * @file
 * Coarse-to-fine adaptive design-space search (docs/DSE.md).
 *
 * Exhaustive streaming (DesignEvaluator::evaluateStream) is the right
 * tool up to ~10^6 designs; the fine-grained spaces this engine
 * targets (dse::fineSpace, 10^8-10^9 points) need pruning. The
 * engine exploits the sweep's AxisEffect factorization:
 *
 *  - Outer (dies, dim, lanes, cores) combinations are enumerated
 *    exactly — there are only hundreds, and die-local timing is
 *    discontinuous across them.
 *  - The inner COMPUTE axes (L1, L2, HBM bandwidth) are searched
 *    coarse-to-fine: a strided sub-lattice first, then survivors —
 *    the global top-k per metric plus everything within a band of the
 *    incumbent best — seed recursively refined neighborhoods at
 *    halved strides, down to stride 1 (pattern-search closure).
 *  - The COMM_ONLY device-bandwidth axis is never scanned: metrics
 *    are monotone non-increasing along it (wire time is volume over
 *    bandwidth), so per compute-class run a lock-step binary search
 *    brackets the first index attaining the run's best metric — the
 *    exact point exhaustive first-wins argmin selection would pick.
 *
 * Evaluation happens in deterministic waves (batches of plan indices
 * handed to DesignEvaluator::evaluatePlanIndices) against a point
 * cache, which makes the search a replay machine: resuming from a
 * checkpoint (dse/checkpoint.hh) replays the same wave sequence with
 * cache hits for completed work and lands in a byte-identical final
 * state. Shards (contiguous outer-cell ranges) run independently and
 * merge deterministically.
 */

#ifndef ACS_DSE_ADAPTIVE_HH
#define ACS_DSE_ADAPTIVE_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dse/checkpoint.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"

namespace acs {
namespace dse {

/** Tuning knobs of AdaptiveSearch (defaults pass the exactness
 *  property tests on the Table 3 and Fig. 7 spaces while evaluating
 *  well under 30% of either space; tests/test_adaptive.cpp). */
struct AdaptiveConfig
{
    /**
     * Survivor band: every compute-class run whose best metric is
     * within (1 + bandFraction) of the incumbent best survives into
     * the next refinement round.
     */
    double bandFraction = 0.001;

    /** Global top-k runs per metric that always survive. */
    std::size_t topK = 2;

    /**
     * Per-outer-cell top-k runs per metric that always survive
     * (exempt from maxSurvivors). Outer cells are discontinuous
     * compute regimes — core count jumps with dies/dim/lanes — so a
     * cell whose coarse corners look mediocre can still hide the
     * global argmin at an interior point (the Table 5 space does
     * exactly this on the L1 axis). The escort guarantees every cell
     * completes its own local descent.
     */
    std::size_t cellTopK = 1;

    /** Cap on globally selected survivors per round (deterministic
     *  metric ordering; the per-cell escort is exempt). */
    std::size_t maxSurvivors = 16;

    /**
     * Bracket the COMM_ONLY device-bandwidth axis by binary search
     * instead of scanning it. Automatically disabled per search when
     * its preconditions fail: a keep-predicate is installed (kept-set
     * argmins need not be monotone) or the deviceBandwidths list is
     * not strictly ascending.
     */
    bool bracketCommAxis = true;

    /**
     * Stop (wave-aligned) once this many points have been evaluated
     * by this call; 0 = unlimited. A stopped search writes an
     * incomplete checkpoint and returns complete=false — this is the
     * preemption path (and how the tests simulate kill/resume).
     */
    std::size_t maxEvaluations = 0;

    /**
     * Snapshot cadence: write a checkpoint whenever this many new
     * points accumulated since the last write (checked at wave
     * boundaries). 0 = only at completion/stop.
     */
    std::size_t checkpointEveryPoints = 0;

    /**
     * Checkpoint file (dse::checkpointShardFile naming when driven
     * through the CLI). Empty disables checkpointing; when set, an
     * existing file is loaded and resumed from.
     */
    std::string checkpointPath;

    /** This process's shard (default: the whole space). */
    ShardSpec shard;

    /**
     * Caller-supplied workload identity mixed into the search
     * fingerprint (the evaluator itself is opaque); e.g.
     * "gpt3-tp8-batch4".
     */
    std::string workloadTag;

    /** Worker threads per evaluation wave; 0 = pool concurrency. */
    unsigned threads = 0;
};

/** One point of the evaluated Pareto frontier (TTFT vs TBT). */
struct FrontierPoint
{
    std::size_t index = 0; //!< flat plan index
    double ttftS = 0.0;
    double tbtS = 0.0;
};

/** Outcome of an adaptive search over one shard. */
struct AdaptiveResult
{
    std::size_t spacePoints = 0; //!< feasible points, whole space
    std::size_t shardPoints = 0; //!< feasible points in this shard
    std::size_t evaluated = 0;   //!< distinct points evaluated
    std::size_t kept = 0;        //!< evaluated && passed predicate
    std::size_t underReticle = 0;
    std::size_t oct2023Unregulated = 0;

    /** evaluated / shardPoints — the pruning headline. */
    double fractionEvaluated = 0.0;

    /**
     * Argmin designs over the evaluated kept set, materialized in
     * full (area/cost/compliance). On the spaces covered by the
     * exactness tests these equal the exhaustive stream's argmins
     * bit-for-bit, tie-broken to the lowest enumeration index.
     */
    std::optional<EvaluatedDesign> bestTtft;
    std::optional<EvaluatedDesign> bestTbt;
    std::size_t bestTtftIndex = 0;
    std::size_t bestTbtIndex = 0;

    /** Pareto frontier (TTFT vs TBT) over evaluated kept points,
     *  ascending TTFT / descending TBT, deduplicated, lowest-index
     *  representative per (ttft, tbt). */
    std::vector<FrontierPoint> frontier;

    /** False when maxEvaluations stopped the search early. */
    bool complete = true;

    /** Evaluation waves walked (cached waves included). */
    std::size_t waves = 0;
};

/**
 * The adaptive engine. Thread-compatible inputs (evaluator and space
 * must outlive the search); run() itself is single-threaded at the
 * orchestration level and parallelizes inside evaluation waves.
 */
class AdaptiveSearch
{
  public:
    /**
     * @param evaluator Workload-bound evaluator (shared layer graphs).
     * @param space     Space to search; compiled once into a plan.
     * @param cfg       Tuning knobs; see AdaptiveConfig.
     */
    AdaptiveSearch(const DesignEvaluator &evaluator,
                   const SweepSpace &space, AdaptiveConfig cfg = {});

    /**
     * Run the search (resuming from cfg.checkpointPath when the file
     * exists — fatal if its fingerprint does not match this search).
     *
     * @param predicate Keep-filter, as in evaluateStream. Installing
     *                  one disables COMM_ONLY bracketing (full dev
     *                  scans) — exactness over the kept set needs it.
     */
    AdaptiveResult
    run(const DesignEvaluator::StreamPredicate &predicate = nullptr);

    /**
     * Fingerprint of everything the search trajectory depends on:
     * space lists and base config, TPP target, the perf-model
     * constants, the workload tag, and the adaptive knobs — but NOT
     * the shard assignment or checkpoint cadence, so shards of one
     * search share a fingerprint and a pause/resume cycle never
     * invalidates its own snapshot.
     */
    static std::uint64_t
    searchFingerprint(const SweepSpace &space,
                      const perf::PerfParams &params,
                      const AdaptiveConfig &cfg);

    /** The compiled plan (for materializing frontier designs). */
    const SweepPlan &plan() const { return plan_; }

  private:
    struct RunState;    // per compute-class run bookkeeping
    struct SearchState; // full trajectory state (adaptive.cc)

    const DesignEvaluator &evaluator_;
    const SweepSpace &space_;
    AdaptiveConfig cfg_;
    SweepPlan plan_;
};

/**
 * Build the pareto frontier of a merged checkpoint (or any point set)
 * without re-evaluating: kept points only, ascending TTFT with
 * strictly descending TBT, lowest index per coordinate pair.
 */
std::vector<FrontierPoint>
frontierOfPoints(const std::vector<CheckpointPoint> &points);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_ADAPTIVE_HH
