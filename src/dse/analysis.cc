#include "analysis.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.hh"
#include "common/units.hh"

namespace acs {
namespace dse {

double
ttftMs(const EvaluatedDesign &d)
{
    return units::toMs(d.ttftS);
}

double
tbtMs(const EvaluatedDesign &d)
{
    return units::toMs(d.tbtS);
}

namespace {

SummaryStats
statsOf(const std::vector<EvaluatedDesign> &designs, const Metric &metric)
{
    std::vector<double> values;
    values.reserve(designs.size());
    for (const EvaluatedDesign &d : designs)
        values.push_back(metric(d));
    return summarize(values);
}

} // anonymous namespace

std::vector<IndicatorDistribution>
indicatorStudy(
    const std::vector<EvaluatedDesign> &designs,
    const std::vector<std::pair<
        std::string, std::function<bool(const EvaluatedDesign &)>>>
        &groups)
{
    fatalIf(designs.empty(), "indicatorStudy: empty baseline design set");

    std::vector<IndicatorDistribution> out;

    IndicatorDistribution baseline;
    baseline.label = "TPP Only";
    baseline.ttft = statsOf(designs, ttftMs);
    baseline.tbt = statsOf(designs, tbtMs);
    baseline.designCount = designs.size();
    out.push_back(baseline);

    for (const auto &[label, predicate] : groups) {
        std::vector<EvaluatedDesign> subset;
        for (const EvaluatedDesign &d : designs) {
            if (predicate(d))
                subset.push_back(d);
        }
        if (subset.empty()) {
            warn("indicatorStudy: group '" + label + "' is empty");
            continue;
        }
        IndicatorDistribution dist;
        dist.label = label;
        dist.ttft = statsOf(subset, ttftMs);
        dist.tbt = statsOf(subset, tbtMs);
        dist.ttftNarrowing = narrowingFactor(baseline.ttft, dist.ttft);
        dist.tbtNarrowing = narrowingFactor(baseline.tbt, dist.tbt);
        dist.designCount = subset.size();
        out.push_back(std::move(dist));
    }
    return out;
}

std::function<bool(const EvaluatedDesign &)>
fixedParameter(policy::ArchParameter param, double value)
{
    return [param, value](const EvaluatedDesign &d) {
        const double v = policy::parameterValue(d.config, param);
        const double tol = 1e-9 * std::max(std::abs(v), std::abs(value));
        return std::abs(v - value) <= std::max(tol, 1e-12);
    };
}

std::vector<EvaluatedDesign>
paretoFront(const std::vector<EvaluatedDesign> &designs, const Metric &x,
            const Metric &y)
{
    std::vector<EvaluatedDesign> sorted = designs;
    std::sort(sorted.begin(), sorted.end(),
              [&](const EvaluatedDesign &a, const EvaluatedDesign &b) {
                  const double xa = x(a), xb = x(b);
                  if (xa != xb)
                      return xa < xb;
                  return y(a) < y(b);
              });

    std::vector<EvaluatedDesign> front;
    double best_y = std::numeric_limits<double>::infinity();
    for (const EvaluatedDesign &d : sorted) {
        const double yd = y(d);
        if (yd < best_y) {
            front.push_back(d);
            best_y = yd;
        }
    }
    return front;
}

} // namespace dse
} // namespace acs
