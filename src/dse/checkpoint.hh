/**
 * @file
 * Sharded checkpoint/resume for adaptive DSE sweeps (docs/DSE.md).
 *
 * A billion-design sweep does not fit one sitting: it is split into
 * shards (contiguous outer-cell ranges of one SweepPlan, so no
 * compute-class run or refinement neighborhood ever crosses a shard)
 * and each shard periodically snapshots every point it has evaluated.
 * A snapshot is enough to resume, because the adaptive engine is a
 * deterministic replay machine: re-running the search from round 0
 * with the snapshot preloaded as an evaluation cache walks the exact
 * same wave sequence, hitting the cache for work already done — the
 * resumed run's final state is byte-identical to an uninterrupted one.
 *
 * The on-disk format is versioned line-oriented text. Doubles are
 * stored as IEEE-754 bit patterns in hex, never as decimal, so a
 * write/read round trip is bit-exact by construction and merged
 * frontiers compare byte-identical across machines. A fingerprint of
 * the search inputs (space, perf params, workload, adaptive knobs —
 * everything except the shard assignment) guards against resuming a
 * checkpoint into a different search.
 */

#ifndef ACS_DSE_CHECKPOINT_HH
#define ACS_DSE_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace acs {
namespace dse {

/** Checkpoint file format version (first line of every file). */
constexpr std::uint32_t CHECKPOINT_VERSION = 1;

/**
 * One shard of a sweep: shard @p index of @p count. Shard i owns the
 * contiguous outer-cell range [i*O/n, (i+1)*O/n) of the plan's O
 * outer cells (shardOuterRange), i.e. a contiguous flat-index range —
 * the adaptive engine's refinement moves never leave it.
 */
struct ShardSpec
{
    std::size_t index = 0;
    std::size_t count = 1;

    bool operator==(const ShardSpec &o) const
    {
        return index == o.index && count == o.count;
    }
};

/** Parse "i/n" (e.g. "2/8"); fatal on malformed input or i >= n. */
ShardSpec parseShardSpec(const std::string &text);

/**
 * Outer-cell range [first, last) owned by @p shard over a plan with
 * @p outer_count outer cells. Ranges of shards 0..n-1 partition
 * [0, outer_count) contiguously; earlier shards get the remainder
 * cells. Fatal when count == 0 or index >= count.
 */
std::pair<std::size_t, std::size_t>
shardOuterRange(const ShardSpec &shard, std::size_t outer_count);

/** CheckpointPoint::flags bits. */
constexpr std::uint32_t POINT_KEPT = 1u;          //!< passed predicate
constexpr std::uint32_t POINT_UNDER_RETICLE = 2u; //!< area <= reticle
constexpr std::uint32_t POINT_UNREGULATED = 4u;   //!< Oct-2023 N/A

/** One evaluated design point: flat plan index, metrics, flags. */
struct CheckpointPoint
{
    std::size_t index = 0;
    double ttftS = 0.0;
    double tbtS = 0.0;
    std::uint32_t flags = 0;
};

/** A shard's snapshot: search identity + every evaluated point. */
struct Checkpoint
{
    std::uint32_t version = CHECKPOINT_VERSION;

    /** Search-input fingerprint (AdaptiveSearch::searchFingerprint). */
    std::uint64_t fingerprint = 0;

    ShardSpec shard;

    /** Feasible point count of the full space (merge sanity check). */
    std::size_t spacePoints = 0;

    /** True once the shard's search ran to convergence. */
    bool complete = false;

    /** Evaluation waves replayed to produce this state. */
    std::size_t waves = 0;

    /** Every evaluated point, ascending by index (writer sorts). */
    std::vector<CheckpointPoint> points;
};

/**
 * Write @p ck to @p path atomically: the bytes go to "<path>.tmp"
 * which is renamed over @p path only after a successful close, so a
 * preemption mid-write never corrupts the previous snapshot. Fatal on
 * I/O errors.
 */
void writeCheckpoint(const std::string &path, const Checkpoint &ck);

/**
 * Read a checkpoint. Returns false when @p path does not exist (a
 * fresh start); fatal on a malformed file or a version the reader
 * does not understand. Fingerprint validation is the caller's job
 * (the reader cannot know the intended search).
 */
bool readCheckpoint(const std::string &path, Checkpoint *out);

/**
 * Canonical per-shard file name under directory @p dir:
 * "<dir>/shard-<index>-of-<count>.ckpt".
 */
std::string checkpointShardFile(const std::string &dir,
                                const ShardSpec &shard);

/**
 * Deterministically merge completed shard checkpoints into one.
 *
 * Validates that every shard is present exactly once (0..n-1 of the
 * same count), complete, and agrees on fingerprint and spacePoints —
 * fatal otherwise. Points concatenate in ascending shard order (shard
 * flat-index ranges are disjoint and ordered, so the result is
 * ascending by index) and the merged checkpoint covers the whole
 * space (shard 0/1). Input order does not matter.
 */
Checkpoint
mergeShardCheckpoints(const std::vector<Checkpoint> &shards);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_CHECKPOINT_HH
