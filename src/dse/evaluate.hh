/**
 * @file
 * Design-point evaluation: performance + area + cost + compliance.
 */

#ifndef ACS_DSE_EVALUATE_HH
#define ACS_DSE_EVALUATE_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "area/area_model.hh"
#include "area/cost_model.hh"
#include "dse/sweep.hh"
#include "hw/config.hh"
#include "model/ops.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"
#include "policy/acr_rules.hh"

namespace acs {
namespace dse {

/** One fully evaluated design point. */
struct EvaluatedDesign
{
    hw::HardwareConfig config;

    double tpp = 0.0;
    double dieAreaMm2 = 0.0;
    double perfDensity = 0.0;
    double dieCostUsd = 0.0;     //!< raw (unyielded) silicon cost
    double goodDieCostUsd = 0.0; //!< yield-adjusted cost

    double ttftS = 0.0; //!< per-layer prefill latency
    double tbtS = 0.0;  //!< per-layer decode latency

    /** Single-die manufacturability (area <= 860 mm^2). */
    bool underReticle = false;

    /** Latency-cost products (Fig. 8), in ms * $. */
    double ttftCostProduct() const;
    double tbtCostProduct() const;

    /** Reduce to a classification spec (marketed as data center). */
    policy::DeviceSpec toSpec() const;
};

/**
 * Light per-point record produced by
 * DesignEvaluator::evaluatePlanIndices: the metrics and flags the
 * adaptive search engine (dse/adaptive.hh) needs per evaluated point,
 * without carrying a full EvaluatedDesign (whose config name alone
 * dominates the record). kept applies the caller's predicate;
 * underReticle / oct2023Unregulated mirror the StreamStats tallies.
 */
struct PointSample
{
    double ttftS = 0.0;
    double tbtS = 0.0;
    bool kept = false;
    bool underReticle = false;
    bool oct2023Unregulated = false;
};

/**
 * Running reduction over a streamed sweep (dse::evaluateStream).
 *
 * Tracks what the materializing pipeline computes with full design
 * vectors — best-TTFT/TBT designs, reticle and Oct-2023 compliance
 * counts — but incrementally, so a sweep needs O(threads) live
 * designs instead of O(|space|). Argmins tie-break on the lower
 * enumeration index, making the merged result identical to
 * minTtft/minTbt over the materialized (filtered) vector regardless
 * of thread count or scheduling.
 */
struct StreamStats
{
    std::size_t evaluated = 0;         //!< designs evaluated
    std::size_t kept = 0;              //!< designs passing the predicate
    std::size_t underReticle = 0;      //!< kept && underReticle
    std::size_t oct2023Unregulated = 0;//!< kept && NOT_APPLICABLE

    /** Min-TTFT / min-TBT designs among the kept set. */
    std::optional<EvaluatedDesign> bestTtft;
    std::optional<EvaluatedDesign> bestTbt;
    std::size_t bestTtftIndex = 0; //!< enumeration index of bestTtft
    std::size_t bestTbtIndex = 0;  //!< enumeration index of bestTbt

    /** Fold one evaluated design (with its enumeration index) in. */
    void absorb(const EvaluatedDesign &design, std::size_t index,
                bool keep);

    /** Merge another partial (commutative up to the index tie-break). */
    void merge(const StreamStats &other);
};

/**
 * Evaluates designs for one (workload, system) context.
 *
 * The hardware-independent prefill/decode layer graphs are built once
 * at construction and shared by every evaluate call, so a sweep pays
 * graph construction once per (model, setting, tensorParallel), not
 * once per design point.
 *
 * Thread-compatible: const after construction.
 */
class DesignEvaluator
{
  public:
    /**
     * @param model_cfg Workload architecture.
     * @param setting   Inference setting (batch/sequence/precision).
     * @param sys       Tensor-parallel system configuration.
     * @param params    Performance-model constants.
     */
    DesignEvaluator(const model::TransformerConfig &model_cfg,
                    const model::InferenceSetting &setting,
                    const perf::SystemConfig &sys,
                    const perf::PerfParams &params = perf::PerfParams{});

    /** Evaluate one design. */
    EvaluatedDesign evaluate(const hw::HardwareConfig &cfg) const;

    /**
     * Evaluate a batch of designs.
     *
     * Like every batch entry point (evaluateAllParallel,
     * evaluateStream), hoists one sweep-scoped perf::GemmCache over
     * the whole batch when the params ask for a simulating GEMM mode
     * (TILE_SIM or CYCLE_SIM) and
     * cacheTileSimGemms (and no caller-installed cache) — designs
     * sharing a canonical GEMM projection then simulate each GEMM
     * once. Bit-identical to the uncached path.
     */
    std::vector<EvaluatedDesign>
    evaluateAll(const std::vector<hw::HardwareConfig> &cfgs) const;

    /**
     * Evaluate a batch of designs across worker threads.
     *
     * Deterministic: results are in input order, identical to
     * evaluateAll (the models are const and thread-compatible).
     *
     * @param cfgs    Designs to evaluate.
     * @param threads Worker count; 0 uses the hardware concurrency.
     */
    std::vector<EvaluatedDesign>
    evaluateAllParallel(const std::vector<hw::HardwareConfig> &cfgs,
                        unsigned threads = 0) const;

    /** Keep-filter over evaluated designs (true = design is kept). */
    using StreamPredicate = std::function<bool(const EvaluatedDesign &)>;

    /**
     * Per-design hook invoked for every *kept* design with its
     * enumeration index. May run concurrently from sweep workers: the
     * callable must be thread-safe (the built-in StreamStats reduction
     * does not need this hook).
     */
    using StreamVisitor =
        std::function<void(const EvaluatedDesign &, std::size_t)>;

    /**
     * Fused generate → evaluate → filter → reduce over a sweep space.
     *
     * Design points stream out of @p space (SweepSpace::forEach
     * order), are evaluated in parallel on the shared thread pool, and
     * fold into per-thread StreamStats partials that are merged at the
     * end — peak memory is O(threads) EvaluatedDesigns instead of the
     * materializing pipeline's O(|space|). The result is bit-identical
     * to evaluateAll(space.generate()) + filtering + minTtft/minTbt,
     * independent of thread count (argmin ties resolve to the lowest
     * enumeration index, matching std::min_element).
     *
     * Under a simulating GEMM mode one sweep-scoped perf::GemmCache is
     * hoisted over the whole stream (unless the params install their
     * own handle or clear cacheTileSimGemms): the SweepPlan keeps
     * comm-only axes innermost, so all designs of one compute-class
     * run — the entire deviceBandwidths axis — reuse each die-local
     * GEMM simulation from the run's first design, bit-exactly.
     *
     * @param space     Sweep space to stream.
     * @param predicate Keep-filter; designs failing it still count in
     *                  `evaluated` but not in `kept`/argmins. Null
     *                  keeps everything.
     * @param visitor   Optional thread-safe hook for kept designs.
     * @param threads   Worker cap; 0 uses the shared pool's full
     *                  concurrency.
     */
    StreamStats
    evaluateStream(const SweepSpace &space,
                   const StreamPredicate &predicate = nullptr,
                   const StreamVisitor &visitor = nullptr,
                   unsigned threads = 0) const;

    /**
     * Evaluate an explicit set of plan indices in parallel, writing a
     * PointSample per position: out[pos] describes plan point
     * indices[pos]. This is the adaptive engine's evaluation wave —
     * the indices are whatever the coarse-to-fine planner asks for,
     * generally non-contiguous.
     *
     * Shares the streaming pipeline's machinery: designs build via
     * plan.point into per-worker scratch, ANALYTIC-mode designs
     * evaluate through the SoA batch kernel
     * (PerfParams::batchAnalyticEval), simulated-GEMM designs get a
     * call-scoped GemmCache hoist. Deterministic: out[pos] depends
     * only on indices[pos], never on scheduling.
     *
     * @param plan      Compiled space (must outlive the call).
     * @param indices   Plan indices to evaluate (any order; repeats
     *                  allowed and evaluated repeatedly).
     * @param count     Number of indices.
     * @param predicate Keep-filter recorded in PointSample::kept.
     * @param out       Caller-allocated array of @p count samples.
     * @param threads   Worker cap; 0 uses the pool's concurrency.
     */
    void evaluatePlanIndices(const SweepPlan &plan,
                             const std::size_t *indices,
                             std::size_t count,
                             const StreamPredicate &predicate,
                             PointSample *out,
                             unsigned threads = 0) const;

    /** The prebuilt per-layer graphs (hardware independent). */
    const model::LayerGraph &prefillGraph() const { return prefill_; }
    const model::LayerGraph &decodeGraph() const { return decode_; }

    /** The evaluator's perf-model constants (fingerprinting). */
    const perf::PerfParams &params() const { return params_; }

  private:
    /**
     * evaluate() against an explicit params set: the batch entry
     * points pass a copy of params_ carrying the hoisted sweep-scoped
     * GemmCache handle (perf_params.hh). Must be bit-identical to
     * evaluate() whenever @p params differs from params_ only in its
     * cache handle.
     */
    EvaluatedDesign evaluateWith(const hw::HardwareConfig &cfg,
                                 const perf::PerfParams &params) const;

    /** The non-timing fields of evaluate(): area, cost, reticle. */
    void fillStaticFields(const hw::HardwareConfig &cfg,
                          EvaluatedDesign *d) const;

    struct ChunkScratch; // per-worker buffers (evaluate.cc)

    /**
     * Per-design completion hook of evaluateChunk: (design, plan
     * index, position). Position is base + offset — the slot in the
     * caller's index/output arrays.
     */
    using ChunkSink = std::function<void(
        const EvaluatedDesign &, std::size_t, std::size_t)>;

    /**
     * Evaluate one worker-claimed chunk: positions [base, base+count)
     * mapping to plan indices indices[pos] (or pos itself when
     * indices is null — the streaming pipeline's contiguous claim).
     * Routes through the SoA batch kernel when the params allow
     * (perf::batchEvalEligible), the scalar evaluateWith otherwise;
     * both deliver identical designs to @p sink in position order.
     */
    void evaluateChunk(const SweepPlan &plan, std::size_t base,
                       std::size_t count, const std::size_t *indices,
                       const perf::PerfParams &params,
                       ChunkScratch &scratch,
                       const ChunkSink &sink) const;

    model::TransformerConfig modelCfg_;
    model::InferenceSetting setting_;
    perf::SystemConfig sys_;
    perf::PerfParams params_;
    area::AreaModel areaModel_;
    area::CostModel costModel_;
    model::LayerGraph prefill_; //!< built once; shared by all designs
    model::LayerGraph decode_;
};

/** Keep only designs with area at or under the reticle limit. */
std::vector<EvaluatedDesign>
filterReticle(const std::vector<EvaluatedDesign> &designs);

/**
 * Rvalue overload: filters in place and returns the same storage, so
 * pipeline spellings like filterReticle(study.runSweep(...)) never
 * deep-copy the design set.
 */
std::vector<EvaluatedDesign>
filterReticle(std::vector<EvaluatedDesign> &&designs);

/**
 * Keep only designs entirely unregulated under the Oct-2023
 * data-center rule (the paper's compliance bar in Sec. 4.3: NAC
 * devices may be denied, so compliant means NOT_APPLICABLE).
 */
std::vector<EvaluatedDesign>
filterOct2023Unregulated(const std::vector<EvaluatedDesign> &designs);

/** Rvalue overload: filters in place (see filterReticle). */
std::vector<EvaluatedDesign>
filterOct2023Unregulated(std::vector<EvaluatedDesign> &&designs);

/** The design with minimum TTFT (fatal on empty input). */
const EvaluatedDesign &
minTtft(const std::vector<EvaluatedDesign> &designs);

/** The design with minimum TBT (fatal on empty input). */
const EvaluatedDesign &
minTbt(const std::vector<EvaluatedDesign> &designs);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_EVALUATE_HH
