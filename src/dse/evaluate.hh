/**
 * @file
 * Design-point evaluation: performance + area + cost + compliance.
 */

#ifndef ACS_DSE_EVALUATE_HH
#define ACS_DSE_EVALUATE_HH

#include <vector>

#include "area/area_model.hh"
#include "area/cost_model.hh"
#include "hw/config.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"
#include "policy/acr_rules.hh"

namespace acs {
namespace dse {

/** One fully evaluated design point. */
struct EvaluatedDesign
{
    hw::HardwareConfig config;

    double tpp = 0.0;
    double dieAreaMm2 = 0.0;
    double perfDensity = 0.0;
    double dieCostUsd = 0.0;     //!< raw (unyielded) silicon cost
    double goodDieCostUsd = 0.0; //!< yield-adjusted cost

    double ttftS = 0.0; //!< per-layer prefill latency
    double tbtS = 0.0;  //!< per-layer decode latency

    /** Single-die manufacturability (area <= 860 mm^2). */
    bool underReticle = false;

    /** Latency-cost products (Fig. 8), in ms * $. */
    double ttftCostProduct() const;
    double tbtCostProduct() const;

    /** Reduce to a classification spec (marketed as data center). */
    policy::DeviceSpec toSpec() const;
};

/**
 * Evaluates designs for one (workload, system) context.
 *
 * Thread-compatible: const after construction.
 */
class DesignEvaluator
{
  public:
    /**
     * @param model_cfg Workload architecture.
     * @param setting   Inference setting (batch/sequence/precision).
     * @param sys       Tensor-parallel system configuration.
     * @param params    Performance-model constants.
     */
    DesignEvaluator(const model::TransformerConfig &model_cfg,
                    const model::InferenceSetting &setting,
                    const perf::SystemConfig &sys,
                    const perf::PerfParams &params = perf::PerfParams{});

    /** Evaluate one design. */
    EvaluatedDesign evaluate(const hw::HardwareConfig &cfg) const;

    /** Evaluate a batch of designs. */
    std::vector<EvaluatedDesign>
    evaluateAll(const std::vector<hw::HardwareConfig> &cfgs) const;

    /**
     * Evaluate a batch of designs across worker threads.
     *
     * Deterministic: results are in input order, identical to
     * evaluateAll (the models are const and thread-compatible).
     *
     * @param cfgs    Designs to evaluate.
     * @param threads Worker count; 0 uses the hardware concurrency.
     */
    std::vector<EvaluatedDesign>
    evaluateAllParallel(const std::vector<hw::HardwareConfig> &cfgs,
                        unsigned threads = 0) const;

  private:
    model::TransformerConfig modelCfg_;
    model::InferenceSetting setting_;
    perf::SystemConfig sys_;
    perf::PerfParams params_;
    area::AreaModel areaModel_;
    area::CostModel costModel_;
};

/** Keep only designs with area at or under the reticle limit. */
std::vector<EvaluatedDesign>
filterReticle(const std::vector<EvaluatedDesign> &designs);

/**
 * Keep only designs entirely unregulated under the Oct-2023
 * data-center rule (the paper's compliance bar in Sec. 4.3: NAC
 * devices may be denied, so compliant means NOT_APPLICABLE).
 */
std::vector<EvaluatedDesign>
filterOct2023Unregulated(const std::vector<EvaluatedDesign> &designs);

/** The design with minimum TTFT (fatal on empty input). */
const EvaluatedDesign &
minTtft(const std::vector<EvaluatedDesign> &designs);

/** The design with minimum TBT (fatal on empty input). */
const EvaluatedDesign &
minTbt(const std::vector<EvaluatedDesign> &designs);

} // namespace dse
} // namespace acs

#endif // ACS_DSE_EVALUATE_HH
