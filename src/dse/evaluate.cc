#include "evaluate.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "common/units.hh"
#include "model/ops.hh"
#include "obs/obs.hh"
#include "perf/batch_eval.hh"
#include "perf/gemm_cache.hh"

namespace acs {
namespace dse {

namespace {

/**
 * Sweep-scoped GEMM-cache hoist: a params copy for one batch call,
 * with a batch-lifetime perf::GemmCache installed when the base
 * params run a simulating GEMM mode (TILE_SIM or CYCLE_SIM), allow
 * caching, and carry no caller-installed
 * handle. In every other case `params` is a plain copy and the unused
 * cache costs only its (empty) shard array. Results are bit-identical
 * with or without the hoist; only the sweep's cost changes.
 */
struct SweepCacheScope
{
    perf::GemmCache cache;
    perf::PerfParams params;

    explicit SweepCacheScope(const perf::PerfParams &base) : params(base)
    {
        if (params.gemmMode != perf::GemmMode::ANALYTIC &&
            params.cacheTileSimGemms && !params.gemmCache) {
            params.gemmCache = &cache;
        }
    }

    /** Report hit/miss totals to obs (call once, after the batch). */
    void report() const
    {
        if (!obs::enabled() || params.gemmCache != &cache)
            return;
        const perf::GemmCache::Stats stats = cache.stats();
        obs::counterAdd("dse.gemm_cache.hits", stats.hits);
        obs::counterAdd("dse.gemm_cache.misses", stats.misses);
        obs::counterAdd("dse.gemm_cache.entries", stats.entries);
    }
};

} // anonymous namespace

double
EvaluatedDesign::ttftCostProduct() const
{
    return units::toMs(ttftS) * dieCostUsd;
}

double
EvaluatedDesign::tbtCostProduct() const
{
    return units::toMs(tbtS) * dieCostUsd;
}

policy::DeviceSpec
EvaluatedDesign::toSpec() const
{
    policy::DeviceSpec spec;
    spec.name = config.name;
    spec.tpp = tpp;
    spec.deviceBandwidthGBps = units::toGBps(config.deviceBandwidth());
    spec.dieAreaMm2 = dieAreaMm2;
    spec.nonPlanarTransistor = config.nonPlanarTransistor;
    spec.market = policy::MarketSegment::DATA_CENTER;
    spec.memCapacityGB = config.memCapacityBytes / units::GB;
    spec.memBandwidthGBps = units::toGBps(config.memBandwidth);
    return spec;
}

DesignEvaluator::DesignEvaluator(const model::TransformerConfig &model_cfg,
                                 const model::InferenceSetting &setting,
                                 const perf::SystemConfig &sys,
                                 const perf::PerfParams &params)
    : modelCfg_(model_cfg), setting_(setting), sys_(sys), params_(params)
{
    modelCfg_.validate();
    setting_.validate();
    fatalIf(sys_.tensorParallel < 1,
            "DesignEvaluator: tensorParallel must be >= 1");
    // The layer graphs depend only on (model, setting, tensorParallel),
    // never on the hardware under evaluation: build them once here so
    // a sweep shares one pair across every design point.
    prefill_ = model::buildPrefillGraph(modelCfg_, setting_,
                                        sys_.tensorParallel);
    decode_ = model::buildDecodeGraph(modelCfg_, setting_,
                                      sys_.tensorParallel);
}

EvaluatedDesign
DesignEvaluator::evaluate(const hw::HardwareConfig &cfg) const
{
    return evaluateWith(cfg, params_);
}

void
DesignEvaluator::fillStaticFields(const hw::HardwareConfig &cfg,
                                  EvaluatedDesign *d) const
{
    d->config = cfg;
    d->tpp = cfg.tpp();
    d->dieAreaMm2 = areaModel_.dieArea(cfg);
    d->perfDensity = areaModel_.perfDensity(cfg, d->dieAreaMm2);
    d->underReticle = d->dieAreaMm2 <= area::RETICLE_LIMIT_MM2;
    // Assign unconditionally: the batched chunk path reuses one
    // EvaluatedDesign across designs, so stale costs must never leak
    // from a previous (wafer-fitting) design into an oversized one.
    d->dieCostUsd = 0.0;
    d->goodDieCostUsd = 0.0;
    if (costModel_.diesPerWafer(d->dieAreaMm2) > 0) {
        d->dieCostUsd = costModel_.dieCostUsd(d->dieAreaMm2, cfg.process);
        d->goodDieCostUsd =
            costModel_.goodDieCostUsd(d->dieAreaMm2, cfg.process);
    }
}

EvaluatedDesign
DesignEvaluator::evaluateWith(const hw::HardwareConfig &cfg,
                              const perf::PerfParams &params) const
{
    const obs::ScopedTimer timer("dse.evaluate");
    EvaluatedDesign d;
    fillStaticFields(cfg, &d);

    const perf::InferenceSimulator sim(cfg, params);
    const perf::InferenceResult result =
        sim.run(modelCfg_, setting_, sys_, prefill_, decode_);
    d.ttftS = result.ttftS;
    d.tbtS = result.tbtS;
    return d;
}

/**
 * Per-worker chunk evaluation buffers: the materialized configs (name
 * buffers reused across chunks), the SoA view, the per-phase latency
 * accumulators, and the batch evaluator holding the op-shape memo.
 */
struct DesignEvaluator::ChunkScratch
{
    std::vector<hw::HardwareConfig> cfgs;
    perf::DesignBatch batch;
    std::vector<double> prefillS;
    std::vector<double> decodeS;
    std::unique_ptr<perf::BatchEvaluator> batchEval;
    hw::HardwareConfig cfg; //!< scalar-path scratch config
    EvaluatedDesign design; //!< batched-path scratch design
};

void
DesignEvaluator::evaluateChunk(const SweepPlan &plan, std::size_t base,
                               std::size_t count,
                               const std::size_t *indices,
                               const perf::PerfParams &params,
                               ChunkScratch &scratch,
                               const ChunkSink &sink) const
{
    const auto planIndex = [&](std::size_t j) {
        return indices ? indices[base + j] : base + j;
    };
    if (perf::batchEvalEligible(params) && count >= 2) {
        if (!scratch.batchEval) {
            scratch.batchEval =
                std::make_unique<perf::BatchEvaluator>(params);
        }
        if (scratch.cfgs.size() < count)
            scratch.cfgs.resize(count);
        scratch.batch.clear();
        scratch.batch.reserve(count);
        for (std::size_t j = 0; j < count; ++j) {
            plan.point(planIndex(j), &scratch.cfgs[j]);
            scratch.batch.push(scratch.cfgs[j]);
        }
        // One SoA pass per op per phase; the memo spans both phases
        // like the scalar per-run OpShapeMemo.
        scratch.prefillS.assign(count, 0.0);
        scratch.decodeS.assign(count, 0.0);
        scratch.batchEval->reset();
        scratch.batchEval->layerLatency(prefill_, sys_.tensorParallel,
                                        scratch.batch,
                                        scratch.prefillS.data());
        scratch.batchEval->layerLatency(decode_, sys_.tensorParallel,
                                        scratch.batch,
                                        scratch.decodeS.data());
        if (obs::enabled()) {
            obs::counterAdd("dse.batch.designs", count);
            obs::counterAdd("dse.batch.chunks");
        }
        for (std::size_t j = 0; j < count; ++j) {
            fillStaticFields(scratch.cfgs[j], &scratch.design);
            scratch.design.ttftS = scratch.prefillS[j];
            scratch.design.tbtS = scratch.decodeS[j];
            sink(scratch.design, planIndex(j), base + j);
        }
    } else {
        for (std::size_t j = 0; j < count; ++j) {
            plan.point(planIndex(j), &scratch.cfg);
            sink(evaluateWith(scratch.cfg, params), planIndex(j),
                 base + j);
        }
    }
}

std::vector<EvaluatedDesign>
DesignEvaluator::evaluateAll(const std::vector<hw::HardwareConfig> &cfgs)
    const
{
    const obs::TraceSpan span("dse.evaluateAll");
    obs::counterAdd("dse.designs.evaluated", cfgs.size());
    SweepCacheScope scope(params_);
    std::vector<EvaluatedDesign> out;
    out.reserve(cfgs.size());
    for (const hw::HardwareConfig &cfg : cfgs)
        out.push_back(evaluateWith(cfg, scope.params));
    scope.report();
    return out;
}

std::vector<EvaluatedDesign>
DesignEvaluator::evaluateAllParallel(
    const std::vector<hw::HardwareConfig> &cfgs, unsigned threads) const
{
    common::ThreadPool &pool = common::ThreadPool::shared();
    if (threads == 0)
        threads = pool.concurrency();
    threads = std::min<unsigned>(
        threads, std::max<std::size_t>(1, cfgs.size()));
    if (threads <= 1 || cfgs.size() < 2)
        return evaluateAll(cfgs);

    const obs::TraceSpan span("dse.evaluateAllParallel");
    obs::counterAdd("dse.designs.evaluated", cfgs.size());
    obs::counterAdd("dse.parallel.threads", threads);
    const auto wall_start = std::chrono::steady_clock::now();

    // `threads` tasks on the shared pool, each claiming designs in
    // chunks off one atomic cursor: this caps concurrency at the
    // requested level even when the pool is wider, and reuses the
    // warm worker crew instead of spawning a crew per batch.
    SweepCacheScope scope(params_);
    std::vector<EvaluatedDesign> out(cfgs.size());
    std::atomic<std::size_t> next{0};
    const std::size_t chunk = std::clamp<std::size_t>(
        cfgs.size() / (static_cast<std::size_t>(threads) * 8), 1, 64);
    pool.parallelFor(
        threads,
        [&](std::size_t) {
            // Per-worker tallies land in obs's per-thread buffers, so
            // the summary exposes work-stealing balance across the
            // pool.
            for (;;) {
                const std::size_t start = next.fetch_add(chunk);
                if (start >= cfgs.size())
                    break;
                const std::size_t end =
                    std::min(start + chunk, cfgs.size());
                for (std::size_t i = start; i < end; ++i) {
                    out[i] = evaluateWith(cfgs[i], scope.params);
                    obs::counterAdd("dse.worker.designs");
                }
            }
        },
        1);
    scope.report();

    if (obs::enabled()) {
        // Batch wall time; designs/sec = dse.designs.evaluated over
        // this series' total (kept as a histogram so repeated sweeps
        // stay distinguishable).
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        obs::recordDuration("dse.parallel.batch_wall", wall_s);
    }
    return out;
}

// ---- streaming pipeline ----------------------------------------------------

void
StreamStats::absorb(const EvaluatedDesign &design, std::size_t index,
                    bool keep)
{
    ++evaluated;
    if (!keep)
        return;
    ++kept;
    if (design.underReticle)
        ++underReticle;
    if (policy::Oct2023Rule::classify(design.toSpec()) ==
        policy::Classification::NOT_APPLICABLE) {
        ++oct2023Unregulated;
    }
    // Strict-< with an index tie-break reproduces std::min_element's
    // first-wins semantics over the enumeration order.
    if (!bestTtft || design.ttftS < bestTtft->ttftS ||
        (design.ttftS == bestTtft->ttftS && index < bestTtftIndex)) {
        bestTtft = design;
        bestTtftIndex = index;
    }
    if (!bestTbt || design.tbtS < bestTbt->tbtS ||
        (design.tbtS == bestTbt->tbtS && index < bestTbtIndex)) {
        bestTbt = design;
        bestTbtIndex = index;
    }
}

void
StreamStats::merge(const StreamStats &other)
{
    evaluated += other.evaluated;
    kept += other.kept;
    underReticle += other.underReticle;
    oct2023Unregulated += other.oct2023Unregulated;
    if (other.bestTtft &&
        (!bestTtft || other.bestTtft->ttftS < bestTtft->ttftS ||
         (other.bestTtft->ttftS == bestTtft->ttftS &&
          other.bestTtftIndex < bestTtftIndex))) {
        bestTtft = other.bestTtft;
        bestTtftIndex = other.bestTtftIndex;
    }
    if (other.bestTbt &&
        (!bestTbt || other.bestTbt->tbtS < bestTbt->tbtS ||
         (other.bestTbt->tbtS == bestTbt->tbtS &&
          other.bestTbtIndex < bestTbtIndex))) {
        bestTbt = other.bestTbt;
        bestTbtIndex = other.bestTbtIndex;
    }
}

StreamStats
DesignEvaluator::evaluateStream(const SweepSpace &space,
                                const StreamPredicate &predicate,
                                const StreamVisitor &visitor,
                                unsigned threads) const
{
    const obs::TraceSpan span("dse.evaluateStream");
    const SweepPlan plan(space);
    const std::size_t n = plan.pointCount();
    obs::counterAdd("dse.sweep.points", n);
    if (n == 0)
        return StreamStats{};

    common::ThreadPool &pool = common::ThreadPool::shared();
    if (threads == 0)
        threads = pool.concurrency();
    threads = std::min<unsigned>(threads, n);
    threads = std::max(threads, 1u);

    obs::counterAdd("dse.designs.evaluated", n);
    obs::counterAdd("dse.parallel.threads", threads);
    const auto wall_start = std::chrono::steady_clock::now();

    // One partial reduction per streaming task; designs are claimed
    // in chunks off the atomic cursor, built via plan.point(i), and
    // folded immediately — at no point does more than one design per
    // task exist. Partials are padded to cache lines: absorb() writes
    // its partial on every design, and unpadded adjacent StreamStats
    // would false-share, which is measurable at streaming rates
    // (results/BENCH_gemm.json's TILE_SIM rows stream > 100k
    // designs/s through here).
    struct alignas(64) PaddedStreamStats
    {
        StreamStats stats;
    };
    // One GEMM cache for the whole stream (simulating modes only):
    // the plan
    // enumerates comm-only axes innermost, so each compute-class run
    // of commOnlyRunLength() designs simulates its GEMMs once.
    SweepCacheScope scope(params_);
    std::vector<PaddedStreamStats> partials(threads);
    std::atomic<std::size_t> next{0};
    // Larger claims than the materializing path: workers touch no
    // shared output array, so the only cursor pressure is the claim
    // itself — 4 claims per worker amortizes it without risking
    // imbalance on these homogeneous design points.
    const std::size_t chunk = std::clamp<std::size_t>(
        n / (static_cast<std::size_t>(threads) * 4), 1, 64);
    pool.parallelFor(
        threads,
        [&](std::size_t task) {
            StreamStats &local = partials[task].stats;
            // Per-worker scratch buffers: in-place point() reuses
            // name buffers, keeping the per-design build off the
            // allocator (which serializes across workers). ANALYTIC
            // chunks route through the SoA batch kernel inside
            // evaluateChunk; results are bit-identical either way.
            ChunkScratch scratch;
            const ChunkSink sink = [&](const EvaluatedDesign &d,
                                       std::size_t i, std::size_t) {
                const bool keep = !predicate || predicate(d);
                local.absorb(d, i, keep);
                if (keep && visitor)
                    visitor(d, i);
                obs::counterAdd("dse.worker.designs");
            };
            for (;;) {
                const std::size_t start = next.fetch_add(chunk);
                if (start >= n)
                    break;
                const std::size_t end = std::min(start + chunk, n);
                evaluateChunk(plan, start, end - start, nullptr,
                              scope.params, scratch, sink);
            }
        },
        1);

    StreamStats out;
    for (const PaddedStreamStats &p : partials)
        out.merge(p.stats);
    scope.report();

    if (obs::enabled()) {
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        obs::recordDuration("dse.parallel.batch_wall", wall_s);
        obs::counterAdd("dse.stream.kept", out.kept);
    }
    return out;
}

void
DesignEvaluator::evaluatePlanIndices(const SweepPlan &plan,
                                     const std::size_t *indices,
                                     std::size_t count,
                                     const StreamPredicate &predicate,
                                     PointSample *out,
                                     unsigned threads) const
{
    if (count == 0)
        return;
    common::ThreadPool &pool = common::ThreadPool::shared();
    if (threads == 0)
        threads = pool.concurrency();
    threads = std::min<unsigned>(threads, count);
    threads = std::max(threads, 1u);

    obs::counterAdd("dse.designs.evaluated", count);

    // Same scaffolding as evaluateStream, but positions map through
    // the caller's index array and results land in out[pos] — each
    // slot written by exactly one worker, so no reduction is needed
    // and the output is scheduling-independent.
    SweepCacheScope scope(params_);
    std::atomic<std::size_t> next{0};
    const std::size_t chunk = std::clamp<std::size_t>(
        count / (static_cast<std::size_t>(threads) * 4), 1, 64);
    pool.parallelFor(
        threads,
        [&](std::size_t) {
            ChunkScratch scratch;
            const ChunkSink sink = [&](const EvaluatedDesign &d,
                                       std::size_t, std::size_t pos) {
                PointSample &s = out[pos];
                s.ttftS = d.ttftS;
                s.tbtS = d.tbtS;
                s.kept = !predicate || predicate(d);
                s.underReticle = d.underReticle;
                s.oct2023Unregulated =
                    policy::Oct2023Rule::classify(d.toSpec()) ==
                    policy::Classification::NOT_APPLICABLE;
                obs::counterAdd("dse.worker.designs");
            };
            for (;;) {
                const std::size_t start = next.fetch_add(chunk);
                if (start >= count)
                    break;
                const std::size_t end = std::min(start + chunk, count);
                evaluateChunk(plan, start, end - start, indices,
                              scope.params, scratch, sink);
            }
        },
        1);
    scope.report();
}

std::vector<EvaluatedDesign>
filterReticle(const std::vector<EvaluatedDesign> &designs)
{
    std::vector<EvaluatedDesign> out;
    for (const EvaluatedDesign &d : designs) {
        if (d.underReticle)
            out.push_back(d);
    }
    return out;
}

std::vector<EvaluatedDesign>
filterReticle(std::vector<EvaluatedDesign> &&designs)
{
    designs.erase(std::remove_if(designs.begin(), designs.end(),
                                 [](const EvaluatedDesign &d) {
                                     return !d.underReticle;
                                 }),
                  designs.end());
    return std::move(designs);
}

std::vector<EvaluatedDesign>
filterOct2023Unregulated(const std::vector<EvaluatedDesign> &designs)
{
    const obs::TraceSpan span("dse.filterOct2023");
    obs::counterAdd("policy.classified.oct2023", designs.size());
    std::vector<EvaluatedDesign> out;
    for (const EvaluatedDesign &d : designs) {
        if (policy::Oct2023Rule::classify(d.toSpec()) ==
            policy::Classification::NOT_APPLICABLE) {
            out.push_back(d);
        }
    }
    obs::counterAdd("policy.unregulated.oct2023", out.size());
    return out;
}

std::vector<EvaluatedDesign>
filterOct2023Unregulated(std::vector<EvaluatedDesign> &&designs)
{
    const obs::TraceSpan span("dse.filterOct2023");
    obs::counterAdd("policy.classified.oct2023", designs.size());
    designs.erase(
        std::remove_if(designs.begin(), designs.end(),
                       [](const EvaluatedDesign &d) {
                           return policy::Oct2023Rule::classify(
                                      d.toSpec()) !=
                                  policy::Classification::NOT_APPLICABLE;
                       }),
        designs.end());
    obs::counterAdd("policy.unregulated.oct2023", designs.size());
    return std::move(designs);
}

const EvaluatedDesign &
minTtft(const std::vector<EvaluatedDesign> &designs)
{
    fatalIf(designs.empty(), "minTtft: empty design set");
    return *std::min_element(designs.begin(), designs.end(),
                             [](const EvaluatedDesign &a,
                                const EvaluatedDesign &b) {
                                 return a.ttftS < b.ttftS;
                             });
}

const EvaluatedDesign &
minTbt(const std::vector<EvaluatedDesign> &designs)
{
    fatalIf(designs.empty(), "minTbt: empty design set");
    return *std::min_element(designs.begin(), designs.end(),
                             [](const EvaluatedDesign &a,
                                const EvaluatedDesign &b) {
                                 return a.tbtS < b.tbtS;
                             });
}

} // namespace dse
} // namespace acs
