#include "evaluate.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "common/units.hh"
#include "obs/obs.hh"

namespace acs {
namespace dse {

double
EvaluatedDesign::ttftCostProduct() const
{
    return units::toMs(ttftS) * dieCostUsd;
}

double
EvaluatedDesign::tbtCostProduct() const
{
    return units::toMs(tbtS) * dieCostUsd;
}

policy::DeviceSpec
EvaluatedDesign::toSpec() const
{
    policy::DeviceSpec spec;
    spec.name = config.name;
    spec.tpp = tpp;
    spec.deviceBandwidthGBps = units::toGBps(config.deviceBandwidth());
    spec.dieAreaMm2 = dieAreaMm2;
    spec.nonPlanarTransistor = config.nonPlanarTransistor;
    spec.market = policy::MarketSegment::DATA_CENTER;
    spec.memCapacityGB = config.memCapacityBytes / units::GB;
    spec.memBandwidthGBps = units::toGBps(config.memBandwidth);
    return spec;
}

DesignEvaluator::DesignEvaluator(const model::TransformerConfig &model_cfg,
                                 const model::InferenceSetting &setting,
                                 const perf::SystemConfig &sys,
                                 const perf::PerfParams &params)
    : modelCfg_(model_cfg), setting_(setting), sys_(sys), params_(params)
{
    modelCfg_.validate();
    setting_.validate();
    fatalIf(sys_.tensorParallel < 1,
            "DesignEvaluator: tensorParallel must be >= 1");
}

EvaluatedDesign
DesignEvaluator::evaluate(const hw::HardwareConfig &cfg) const
{
    const obs::ScopedTimer timer("dse.evaluate");
    EvaluatedDesign d;
    d.config = cfg;
    d.tpp = cfg.tpp();
    d.dieAreaMm2 = areaModel_.dieArea(cfg);
    d.perfDensity = areaModel_.perfDensity(cfg);
    d.underReticle = d.dieAreaMm2 <= area::RETICLE_LIMIT_MM2;
    if (costModel_.diesPerWafer(d.dieAreaMm2) > 0) {
        d.dieCostUsd = costModel_.dieCostUsd(d.dieAreaMm2, cfg.process);
        d.goodDieCostUsd =
            costModel_.goodDieCostUsd(d.dieAreaMm2, cfg.process);
    }

    const perf::InferenceSimulator sim(cfg, params_);
    const perf::InferenceResult result =
        sim.run(modelCfg_, setting_, sys_);
    d.ttftS = result.ttftS;
    d.tbtS = result.tbtS;
    return d;
}

std::vector<EvaluatedDesign>
DesignEvaluator::evaluateAll(const std::vector<hw::HardwareConfig> &cfgs)
    const
{
    const obs::TraceSpan span("dse.evaluateAll");
    obs::counterAdd("dse.designs.evaluated", cfgs.size());
    std::vector<EvaluatedDesign> out;
    out.reserve(cfgs.size());
    for (const hw::HardwareConfig &cfg : cfgs)
        out.push_back(evaluate(cfg));
    return out;
}

std::vector<EvaluatedDesign>
DesignEvaluator::evaluateAllParallel(
    const std::vector<hw::HardwareConfig> &cfgs, unsigned threads) const
{
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, std::max<std::size_t>(1, cfgs.size()));
    if (threads <= 1 || cfgs.size() < 2)
        return evaluateAll(cfgs);

    const obs::TraceSpan span("dse.evaluateAllParallel");
    obs::counterAdd("dse.designs.evaluated", cfgs.size());
    obs::counterAdd("dse.parallel.threads", threads);
    const auto wall_start = std::chrono::steady_clock::now();

    std::vector<EvaluatedDesign> out(cfgs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        // Per-worker tallies land in obs's per-thread buffers, so the
        // summary exposes work-stealing balance across the pool.
        for (std::size_t i = next.fetch_add(1); i < cfgs.size();
             i = next.fetch_add(1)) {
            out[i] = evaluate(cfgs[i]);
            obs::counterAdd("dse.worker.designs");
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (obs::enabled()) {
        // Batch wall time; designs/sec = dse.designs.evaluated over
        // this series' total (kept as a histogram so repeated sweeps
        // stay distinguishable).
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wall_start)
                .count();
        obs::recordDuration("dse.parallel.batch_wall", wall_s);
    }
    return out;
}

std::vector<EvaluatedDesign>
filterReticle(const std::vector<EvaluatedDesign> &designs)
{
    std::vector<EvaluatedDesign> out;
    for (const EvaluatedDesign &d : designs) {
        if (d.underReticle)
            out.push_back(d);
    }
    return out;
}

std::vector<EvaluatedDesign>
filterOct2023Unregulated(const std::vector<EvaluatedDesign> &designs)
{
    const obs::TraceSpan span("dse.filterOct2023");
    obs::counterAdd("policy.classified.oct2023", designs.size());
    std::vector<EvaluatedDesign> out;
    for (const EvaluatedDesign &d : designs) {
        if (policy::Oct2023Rule::classify(d.toSpec()) ==
            policy::Classification::NOT_APPLICABLE) {
            out.push_back(d);
        }
    }
    obs::counterAdd("policy.unregulated.oct2023", out.size());
    return out;
}

const EvaluatedDesign &
minTtft(const std::vector<EvaluatedDesign> &designs)
{
    fatalIf(designs.empty(), "minTtft: empty design set");
    return *std::min_element(designs.begin(), designs.end(),
                             [](const EvaluatedDesign &a,
                                const EvaluatedDesign &b) {
                                 return a.ttftS < b.ttftS;
                             });
}

const EvaluatedDesign &
minTbt(const std::vector<EvaluatedDesign> &designs)
{
    fatalIf(designs.empty(), "minTbt: empty design set");
    return *std::min_element(designs.begin(), designs.end(),
                             [](const EvaluatedDesign &a,
                                const EvaluatedDesign &b) {
                                 return a.tbtS < b.tbtS;
                             });
}

} // namespace dse
} // namespace acs
