#include "checkpoint.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace acs {
namespace dse {

namespace {

/** Doubles travel as IEEE-754 bit patterns: bit-exact round trips. */
std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
bitsDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
parseHex64(const std::string &text, const std::string &what)
{
    std::uint64_t v = 0;
    std::istringstream in(text);
    in >> std::hex >> v;
    fatalIf(in.fail() || !in.eof(),
            "checkpoint: malformed hex field (" + what + "): " + text);
    return v;
}

} // anonymous namespace

ShardSpec
parseShardSpec(const std::string &text)
{
    const std::size_t slash = text.find('/');
    fatalIf(slash == std::string::npos,
            "shard spec must be i/n (e.g. 2/8): " + text);
    ShardSpec shard;
    try {
        shard.index = std::stoull(text.substr(0, slash));
        shard.count = std::stoull(text.substr(slash + 1));
    } catch (const std::exception &) {
        fatal("shard spec must be i/n with numeric i, n: " + text);
    }
    fatalIf(shard.count == 0, "shard spec: n must be >= 1: " + text);
    fatalIf(shard.index >= shard.count,
            "shard spec: i must be < n: " + text);
    return shard;
}

std::pair<std::size_t, std::size_t>
shardOuterRange(const ShardSpec &shard, std::size_t outer_count)
{
    fatalIf(shard.count == 0, "shardOuterRange: shard count is 0");
    fatalIf(shard.index >= shard.count,
            "shardOuterRange: shard index out of range");
    // Earlier shards absorb the remainder: sizes differ by at most 1
    // and the ranges partition [0, outer_count) in order.
    const std::size_t base = outer_count / shard.count;
    const std::size_t extra = outer_count % shard.count;
    const std::size_t first =
        shard.index * base + std::min(shard.index, extra);
    const std::size_t len = base + (shard.index < extra ? 1 : 0);
    return {first, first + len};
}

void
writeCheckpoint(const std::string &path, const Checkpoint &ck)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        fatalIf(!out, "checkpoint: cannot open for writing: " + tmp);
        out << "acs-dse-checkpoint v" << ck.version << "\n";
        out << "fingerprint " << std::hex << ck.fingerprint << std::dec
            << "\n";
        out << "shard " << ck.shard.index << " " << ck.shard.count
            << "\n";
        out << "space_points " << ck.spacePoints << "\n";
        out << "complete " << (ck.complete ? 1 : 0) << "\n";
        out << "waves " << ck.waves << "\n";
        out << "points " << ck.points.size() << "\n";
        out << std::hex;
        for (const CheckpointPoint &p : ck.points) {
            out << "p " << std::dec << p.index << std::hex << " "
                << doubleBits(p.ttftS) << " " << doubleBits(p.tbtS)
                << " " << p.flags << "\n";
        }
        out << std::dec << "end\n";
        out.flush();
        fatalIf(!out, "checkpoint: write failed: " + tmp);
    }
    fatalIf(std::rename(tmp.c_str(), path.c_str()) != 0,
            "checkpoint: rename failed: " + tmp + " -> " + path);
}

bool
readCheckpoint(const std::string &path, Checkpoint *out)
{
    std::ifstream in(path);
    if (!in)
        return false;

    Checkpoint ck;
    std::string line;
    const auto next = [&](const char *what) {
        fatalIf(!std::getline(in, line),
                std::string("checkpoint: truncated file (expected ") +
                    what + "): " + path);
        return line;
    };
    const auto expectKey = [&](const std::string &got,
                               const std::string &key) -> std::string {
        fatalIf(got.rfind(key + " ", 0) != 0,
                "checkpoint: expected '" + key + " ...', got '" + got +
                    "': " + path);
        return got.substr(key.size() + 1);
    };

    const std::string header = next("header");
    fatalIf(header.rfind("acs-dse-checkpoint v", 0) != 0,
            "checkpoint: not a checkpoint file: " + path);
    ck.version = static_cast<std::uint32_t>(
        std::stoul(header.substr(std::string("acs-dse-checkpoint v")
                                     .size())));
    fatalIf(ck.version != CHECKPOINT_VERSION,
            "checkpoint: unsupported version " +
                std::to_string(ck.version) + " (reader supports v" +
                std::to_string(CHECKPOINT_VERSION) + "): " + path);

    ck.fingerprint =
        parseHex64(expectKey(next("fingerprint"), "fingerprint"),
                   "fingerprint");
    {
        std::istringstream sh(expectKey(next("shard"), "shard"));
        sh >> ck.shard.index >> ck.shard.count;
        fatalIf(sh.fail(), "checkpoint: malformed shard line: " + path);
    }
    ck.spacePoints =
        std::stoull(expectKey(next("space_points"), "space_points"));
    ck.complete =
        std::stoul(expectKey(next("complete"), "complete")) != 0;
    ck.waves = std::stoull(expectKey(next("waves"), "waves"));
    const std::size_t n_points =
        std::stoull(expectKey(next("points"), "points"));

    ck.points.reserve(n_points);
    for (std::size_t i = 0; i < n_points; ++i) {
        std::istringstream ps(next("point"));
        std::string tag, ttft_hex, tbt_hex, flags_hex;
        CheckpointPoint p;
        ps >> tag >> p.index >> ttft_hex >> tbt_hex >> flags_hex;
        fatalIf(ps.fail() || tag != "p",
                "checkpoint: malformed point line " + std::to_string(i) +
                    ": " + path);
        p.ttftS = bitsDouble(parseHex64(ttft_hex, "ttft"));
        p.tbtS = bitsDouble(parseHex64(tbt_hex, "tbt"));
        p.flags =
            static_cast<std::uint32_t>(parseHex64(flags_hex, "flags"));
        ck.points.push_back(p);
    }
    fatalIf(next("end") != "end",
            "checkpoint: missing end marker: " + path);

    *out = std::move(ck);
    return true;
}

std::string
checkpointShardFile(const std::string &dir, const ShardSpec &shard)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "shard-" + std::to_string(shard.index) + "-of-" +
            std::to_string(shard.count) + ".ckpt";
    return path;
}

Checkpoint
mergeShardCheckpoints(const std::vector<Checkpoint> &shards)
{
    fatalIf(shards.empty(), "mergeShardCheckpoints: no shards");

    const std::size_t count = shards.front().shard.count;
    std::vector<const Checkpoint *> by_index(count, nullptr);
    for (const Checkpoint &ck : shards) {
        fatalIf(ck.shard.count != count,
                "mergeShardCheckpoints: shard counts disagree (" +
                    std::to_string(ck.shard.count) + " vs " +
                    std::to_string(count) + ")");
        fatalIf(ck.shard.index >= count,
                "mergeShardCheckpoints: shard index out of range");
        fatalIf(by_index[ck.shard.index] != nullptr,
                "mergeShardCheckpoints: duplicate shard " +
                    std::to_string(ck.shard.index));
        fatalIf(ck.fingerprint != shards.front().fingerprint,
                "mergeShardCheckpoints: fingerprint mismatch on shard " +
                    std::to_string(ck.shard.index) +
                    " (checkpoints come from different searches)");
        fatalIf(ck.spacePoints != shards.front().spacePoints,
                "mergeShardCheckpoints: space size mismatch on shard " +
                    std::to_string(ck.shard.index));
        fatalIf(!ck.complete,
                "mergeShardCheckpoints: shard " +
                    std::to_string(ck.shard.index) +
                    " is incomplete (resume it first)");
        by_index[ck.shard.index] = &ck;
    }
    for (std::size_t i = 0; i < count; ++i)
        fatalIf(by_index[i] == nullptr,
                "mergeShardCheckpoints: missing shard " +
                    std::to_string(i) + "/" + std::to_string(count));

    Checkpoint merged;
    merged.fingerprint = shards.front().fingerprint;
    merged.shard = ShardSpec{0, 1};
    merged.spacePoints = shards.front().spacePoints;
    merged.complete = true;
    for (std::size_t i = 0; i < count; ++i) {
        merged.waves = std::max(merged.waves, by_index[i]->waves);
        // Shard flat-index ranges are disjoint and ascending, so
        // appending in shard order keeps points sorted by index.
        merged.points.insert(merged.points.end(),
                             by_index[i]->points.begin(),
                             by_index[i]->points.end());
    }
    return merged;
}

} // namespace dse
} // namespace acs
