/**
 * @file
 * Stylized real-time rendering workloads (Sec. 5.4).
 *
 * The paper's externality-aware policy argument rests on gaming and AI
 * workloads stressing different architectural resources: graphics
 * rendering is SIMT-compute and latency-bound irregular-memory work
 * that barely uses systolic arrays or sustained HBM bandwidth, so a
 * policy capping matmul hardware and memory bandwidth leaves gaming
 * performance intact. These workload descriptions drive the
 * perf::GraphicsModel proxy used by the gaming-policy bench.
 */

#ifndef ACS_MODEL_GRAPHICS_HH
#define ACS_MODEL_GRAPHICS_HH

#include <string>

namespace acs {
namespace model {

/** Per-frame resource footprint of a rendering workload. */
struct GraphicsWorkload
{
    std::string name;
    int width = 1920;
    int height = 1080;

    /** SIMT shading FLOPs per output fragment. */
    double shadeFlopsPerFragment = 2500.0;
    /** Average fragments shaded per output pixel (overdraw). */
    double overdraw = 2.2;
    /** Texture/geometry bytes sampled per fragment (irregular). */
    double textureBytesPerFragment = 48.0;
    /** Geometry/vertex FLOPs per frame. */
    double geometryFlopsPerFrame = 4.0e9;
    /** Raster/blend bytes written per output pixel. */
    double rasterBytesPerPixel = 16.0;

    /** Output pixels per frame. */
    double pixels() const;
    /** Shaded fragments per frame. */
    double fragments() const;
    /** Fatal unless all fields are positive. */
    void validate() const;

    /** AAA single-player title at 2560x1440, heavy shading. */
    static GraphicsWorkload aaa1440p();
    /** Competitive esports title at 1920x1080, light shading. */
    static GraphicsWorkload esports1080p();
    /** Ray-traced showcase at 3840x2160 with heavy irregular reads. */
    static GraphicsWorkload rayTraced4k();
};

} // namespace model
} // namespace acs

#endif // ACS_MODEL_GRAPHICS_HH
