#include "graphics.hh"

#include "common/logging.hh"

namespace acs {
namespace model {

double
GraphicsWorkload::pixels() const
{
    return static_cast<double>(width) * height;
}

double
GraphicsWorkload::fragments() const
{
    return pixels() * overdraw;
}

void
GraphicsWorkload::validate() const
{
    fatalIf(width < 1 || height < 1,
            name + ": resolution must be positive");
    fatalIf(shadeFlopsPerFragment <= 0.0,
            name + ": shadeFlopsPerFragment must be > 0");
    fatalIf(overdraw <= 0.0, name + ": overdraw must be > 0");
    fatalIf(textureBytesPerFragment <= 0.0,
            name + ": textureBytesPerFragment must be > 0");
    fatalIf(geometryFlopsPerFrame <= 0.0,
            name + ": geometryFlopsPerFrame must be > 0");
    fatalIf(rasterBytesPerPixel <= 0.0,
            name + ": rasterBytesPerPixel must be > 0");
}

GraphicsWorkload
GraphicsWorkload::aaa1440p()
{
    GraphicsWorkload w;
    w.name = "AAA 1440p";
    w.width = 2560;
    w.height = 1440;
    w.shadeFlopsPerFragment = 3200.0;
    w.overdraw = 2.4;
    w.textureBytesPerFragment = 56.0;
    w.geometryFlopsPerFrame = 6.0e9;
    w.rasterBytesPerPixel = 20.0;
    return w;
}

GraphicsWorkload
GraphicsWorkload::esports1080p()
{
    GraphicsWorkload w;
    w.name = "esports 1080p";
    w.width = 1920;
    w.height = 1080;
    w.shadeFlopsPerFragment = 1200.0;
    w.overdraw = 1.8;
    w.textureBytesPerFragment = 32.0;
    w.geometryFlopsPerFrame = 2.0e9;
    w.rasterBytesPerPixel = 12.0;
    return w;
}

GraphicsWorkload
GraphicsWorkload::rayTraced4k()
{
    GraphicsWorkload w;
    w.name = "ray-traced 4K";
    w.width = 3840;
    w.height = 2160;
    w.shadeFlopsPerFragment = 5200.0;
    w.overdraw = 1.6;
    w.textureBytesPerFragment = 96.0;
    w.geometryFlopsPerFrame = 9.0e9;
    w.rasterBytesPerPixel = 24.0;
    return w;
}

} // namespace model
} // namespace acs
