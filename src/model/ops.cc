#include "ops.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acs {
namespace model {

namespace {

// FLOPs per element of the common vector kernels.
constexpr double LAYERNORM_FLOPS = 5.0;
constexpr double SOFTMAX_FLOPS = 5.0;
constexpr double GELU_FLOPS = 8.0;
constexpr double SWIGLU_FLOPS = 6.0; // SiLU + elementwise gate multiply
constexpr double ADD_FLOPS = 1.0;

// Build a weight-stationary GEMM op: activations(m x k) * W(k x n).
Op
weightMatmul(std::string name, long m, long n, long k, int elem_bytes)
{
    Op op;
    op.name = std::move(name);
    op.kind = OpKind::MATMUL;
    op.mm = {m, n, k, 1, true};
    op.flops = 2.0 * static_cast<double>(m) * n * k;
    op.weightBytes = static_cast<double>(k) * n * elem_bytes;
    op.inputBytes = static_cast<double>(m) * k * elem_bytes;
    op.outputBytes = static_cast<double>(m) * n * elem_bytes;
    return op;
}

// Build a vector op over `elements` values with `inputs` input streams.
Op
vectorOp(std::string name, double elements, double flops_per_elem,
         int inputs, int elem_bytes)
{
    Op op;
    op.name = std::move(name);
    op.kind = OpKind::VECTOR;
    op.flops = elements * flops_per_elem;
    op.inputBytes = elements * inputs * elem_bytes;
    op.outputBytes = elements * elem_bytes;
    return op;
}

Op
allReduce(std::string name, double payload_bytes)
{
    Op op;
    op.name = std::move(name);
    op.kind = OpKind::ALLREDUCE;
    op.commBytes = payload_bytes;
    return op;
}

void
checkParallelism(const TransformerConfig &cfg, int tp)
{
    fatalIf(tp < 1, cfg.name + ": tensor_parallel must be >= 1");
    fatalIf(cfg.numHeads % tp != 0,
            cfg.name + ": tensor_parallel must divide numHeads");
    fatalIf(cfg.numKvHeads % tp != 0,
            cfg.name + ": tensor_parallel must divide numKvHeads "
            "(KV heads are replicated otherwise; unsupported)");
    fatalIf(cfg.ffnDim % tp != 0,
            cfg.name + ": tensor_parallel must divide ffnDim");
}

/*
 * Shared layer skeleton. Prefill and decode differ only in the number
 * of query tokens per sequence (q_len) and the attended context length
 * (ctx_len): prefill has q_len = inputLen, ctx_len = inputLen; decode
 * has q_len = 1, ctx_len = decodeContextLen().
 */
LayerGraph
buildLayer(const TransformerConfig &cfg, const InferenceSetting &setting,
           int tp, long q_len, long ctx_len, const std::string &phase)
{
    cfg.validate();
    setting.validate();
    checkParallelism(cfg, tp);

    const int eb = setting.bytesPerValue;
    const long b = setting.batch;
    const long d = cfg.modelDim;
    const long hd = cfg.headDim();
    const long heads = cfg.numHeads / tp;
    const long kv_heads = cfg.numKvHeads / tp;
    const long kv = cfg.kvDim() / tp;      // sharded K/V width
    const long q_width = d / tp;           // sharded Q width
    const long ffn = cfg.ffnDim / tp;
    const long tokens = b * q_len;

    LayerGraph g;
    g.name = cfg.name + " " + phase + " layer";

    // --- Attention block --------------------------------------------
    g.ops.push_back(vectorOp("pre-norm", static_cast<double>(tokens) * d,
                             LAYERNORM_FLOPS, 1, eb));
    g.ops.back().memoryPasses = 2;

    // Fused column-parallel QKV projection.
    g.ops.push_back(weightMatmul("qkv-proj", tokens, q_width + 2 * kv, d,
                                 eb));
    // KV-cache append for the new tokens.
    g.ops.back().outputBytes +=
        2.0 * static_cast<double>(b) * q_len * kv * eb;

    // Attention scores Q K^T: per query head, (q_len x hd)(hd x ctx).
    {
        Op op;
        op.name = "attn-score";
        op.kind = OpKind::MATMUL;
        op.mm = {q_len, ctx_len, hd, b * heads, false};
        op.flops = 2.0 * static_cast<double>(b) * heads * q_len * ctx_len *
                   hd;
        // Q operand per query head; K operand shared by GQA groups.
        op.inputBytes = static_cast<double>(b) * heads * q_len * hd * eb +
                        static_cast<double>(b) * kv_heads * ctx_len * hd *
                        eb;
        op.outputBytes = static_cast<double>(b) * heads * q_len * ctx_len *
                         eb;
        g.ops.push_back(op);
    }

    g.ops.push_back(vectorOp(
        "softmax",
        static_cast<double>(b) * heads * q_len * ctx_len, SOFTMAX_FLOPS, 1,
        eb));
    g.ops.back().memoryPasses = 3;

    // Attention-weighted values: (q_len x ctx)(ctx x hd) per head.
    {
        Op op;
        op.name = "attn-value";
        op.kind = OpKind::MATMUL;
        op.mm = {q_len, hd, ctx_len, b * heads, false};
        op.flops = 2.0 * static_cast<double>(b) * heads * q_len * hd *
                   ctx_len;
        op.inputBytes = static_cast<double>(b) * heads * q_len * ctx_len *
                        eb +
                        static_cast<double>(b) * kv_heads * ctx_len * hd *
                        eb;
        op.outputBytes = static_cast<double>(b) * heads * q_len * hd * eb;
        g.ops.push_back(op);
    }

    // Row-parallel output projection, then allreduce across TP ranks.
    g.ops.push_back(weightMatmul("out-proj", tokens, d, q_width, eb));
    if (tp > 1) {
        g.ops.push_back(allReduce("attn-allreduce",
                                  static_cast<double>(tokens) * d * eb));
    }
    g.ops.push_back(vectorOp("residual-1",
                             static_cast<double>(tokens) * d, ADD_FLOPS, 2,
                             eb));

    // --- FFN block ----------------------------------------------------
    g.ops.push_back(vectorOp("post-norm",
                             static_cast<double>(tokens) * d,
                             LAYERNORM_FLOPS, 1, eb));
    g.ops.back().memoryPasses = 2;

    if (cfg.isMoe()) {
        // Router: tiny (tokens x E) projection + top-k selection.
        g.ops.push_back(weightMatmul("moe-router", tokens,
                                     cfg.numExperts, d, eb));
        g.ops.push_back(vectorOp(
            "moe-topk",
            static_cast<double>(tokens) * cfg.numExperts,
            SOFTMAX_FLOPS, 1, eb));
        g.ops.push_back(vectorOp("moe-dispatch",
                                 static_cast<double>(tokens) * d,
                                 ADD_FLOPS, 1, eb));

        // Each token visits expertsPerToken experts; every touched
        // expert streams its (TP-sharded) weights from HBM — with few
        // tokens (decode) the weight traffic dwarfs the math, making
        // MoE decode even more bandwidth-bound than dense FFNs.
        const long routed = tokens * cfg.expertsPerToken;
        const long touched = std::min<long>(cfg.numExperts, routed);
        const long rows_per_expert =
            (routed + touched - 1) / touched;
        const bool swiglu = cfg.activation == Activation::SWIGLU;
        const long up_cols = swiglu ? 2 * ffn : ffn;

        Op up;
        up.name = swiglu ? "moe-expert-gate-up" : "moe-expert-up";
        up.kind = OpKind::MATMUL;
        up.mm = {rows_per_expert, up_cols, d, touched, true};
        up.flops = 2.0 * static_cast<double>(routed) * up_cols * d;
        up.weightBytes =
            static_cast<double>(touched) * d * up_cols * eb;
        up.inputBytes = static_cast<double>(routed) * d * eb;
        up.outputBytes = static_cast<double>(routed) * up_cols * eb;
        g.ops.push_back(up);

        g.ops.push_back(vectorOp(swiglu ? "moe-swiglu" : "moe-gelu",
                                 static_cast<double>(routed) * ffn,
                                 swiglu ? SWIGLU_FLOPS : GELU_FLOPS,
                                 swiglu ? 2 : 1, eb));

        Op down;
        down.name = "moe-expert-down";
        down.kind = OpKind::MATMUL;
        down.mm = {rows_per_expert, d, ffn, touched, true};
        down.flops = 2.0 * static_cast<double>(routed) * d * ffn;
        down.weightBytes =
            static_cast<double>(touched) * ffn * d * eb;
        down.inputBytes = static_cast<double>(routed) * ffn * eb;
        down.outputBytes = static_cast<double>(routed) * d * eb;
        g.ops.push_back(down);

        // Weighted combine of the k expert outputs per token.
        g.ops.push_back(vectorOp(
            "moe-combine", static_cast<double>(tokens) * d,
            2.0 * cfg.expertsPerToken, cfg.expertsPerToken, eb));
    } else if (cfg.activation == Activation::SWIGLU) {
        // Fused gate+up projection (column parallel).
        g.ops.push_back(weightMatmul("ffn-gate-up", tokens, 2 * ffn, d,
                                     eb));
        g.ops.push_back(vectorOp("swiglu",
                                 static_cast<double>(tokens) * ffn,
                                 SWIGLU_FLOPS, 2, eb));
    } else {
        g.ops.push_back(weightMatmul("ffn-up", tokens, ffn, d, eb));
        g.ops.push_back(vectorOp("gelu",
                                 static_cast<double>(tokens) * ffn,
                                 GELU_FLOPS, 1, eb));
    }

    if (!cfg.isMoe())
        g.ops.push_back(weightMatmul("ffn-down", tokens, d, ffn, eb));
    if (tp > 1) {
        g.ops.push_back(allReduce("ffn-allreduce",
                                  static_cast<double>(tokens) * d * eb));
    }
    g.ops.push_back(vectorOp("residual-2",
                             static_cast<double>(tokens) * d, ADD_FLOPS, 2,
                             eb));
    return g;
}

} // anonymous namespace

std::string
toString(OpKind kind)
{
    switch (kind) {
      case OpKind::MATMUL:    return "matmul";
      case OpKind::VECTOR:    return "vector";
      case OpKind::ALLREDUCE: return "allreduce";
    }
    panic("unknown OpKind");
}

double
LayerGraph::totalFlops() const
{
    double sum = 0.0;
    for (const Op &op : ops)
        sum += op.flops;
    return sum;
}

double
LayerGraph::totalWeightBytes() const
{
    double sum = 0.0;
    for (const Op &op : ops)
        sum += op.weightBytes;
    return sum;
}

LayerGraph
buildPrefillGraph(const TransformerConfig &cfg,
                  const InferenceSetting &setting, int tensor_parallel)
{
    return buildLayer(cfg, setting, tensor_parallel, setting.inputLen,
                      setting.inputLen, "prefill");
}

LayerGraph
buildDecodeGraph(const TransformerConfig &cfg,
                 const InferenceSetting &setting, int tensor_parallel)
{
    return buildLayer(cfg, setting, tensor_parallel, 1,
                      setting.decodeContextLen(), "decode");
}

} // namespace model
} // namespace acs
