/**
 * @file
 * Per-layer operator graphs for transformer inference.
 *
 * The builders emit the operator sequence one device executes for one
 * decoder layer, with dimensions already sharded for Megatron-style
 * tensor parallelism (column-parallel QKV/FFN-up, row-parallel
 * out-proj/FFN-down, one allreduce after each row-parallel matmul).
 * The performance model (acs::perf) assigns latency to each op.
 */

#ifndef ACS_MODEL_OPS_HH
#define ACS_MODEL_OPS_HH

#include <string>
#include <vector>

#include "model/transformer.hh"

namespace acs {
namespace model {

/** Operator classes the performance model distinguishes. */
enum class OpKind
{
    MATMUL,    //!< dense GEMM (systolic arrays)
    VECTOR,    //!< elementwise / reduction op (vector units)
    ALLREDUCE, //!< tensor-parallel collective (device interconnect)
};

/** Human-readable op-kind name. */
std::string toString(OpKind kind);

/** GEMM dimensions: batchCount independent (m x k)(k x n) products. */
struct MatmulShape
{
    long m = 0;
    long n = 0;
    long k = 0;
    long batchCount = 1;
    /** True when the B operand is a resident weight matrix. */
    bool weightStationary = false;
};

/**
 * One operator with its resource footprint.
 *
 * Byte fields partition memory traffic by source so the performance
 * model can reason about residency: weights always stream from HBM;
 * activations may be served by the global buffer when they fit.
 */
struct Op
{
    std::string name;
    OpKind kind = OpKind::VECTOR;
    MatmulShape mm;           //!< valid iff kind == MATMUL

    double flops = 0.0;       //!< floating point operations (MAC = 2)
    double weightBytes = 0.0; //!< resident weights read from HBM
    double inputBytes = 0.0;  //!< activation/KV-cache operand bytes
    double outputBytes = 0.0; //!< activation result bytes
    double commBytes = 0.0;   //!< ALLREDUCE payload per device

    /**
     * Passes an unfused vector kernel makes over its tensor (softmax
     * reads its input three times: max, exp-sum, normalize; norms
     * twice). Consumed only when PerfParams::modelMultiPassVector is
     * set.
     */
    int memoryPasses = 1;
};

/** A named operator sequence for one decoder layer on one device. */
struct LayerGraph
{
    std::string name;
    std::vector<Op> ops;

    /** Sum of op FLOPs. */
    double totalFlops() const;

    /** Sum of weight bytes (the per-layer weight working set). */
    double totalWeightBytes() const;
};

/**
 * Operator graph for the prefill phase of one decoder layer.
 *
 * All setting.batch x setting.inputLen tokens are processed at once.
 *
 * @param cfg             Model architecture (validated).
 * @param setting         Batch/sequence/precision setting (validated).
 * @param tensor_parallel TP degree; must divide numHeads, numKvHeads
 *                        and ffnDim (fatal otherwise).
 */
LayerGraph buildPrefillGraph(const TransformerConfig &cfg,
                             const InferenceSetting &setting,
                             int tensor_parallel);

/**
 * Operator graph for one auto-regressive decode step of one layer, at
 * the representative mid-generation context length
 * (setting.decodeContextLen()).
 *
 * @see buildPrefillGraph for parameter requirements.
 */
LayerGraph buildDecodeGraph(const TransformerConfig &cfg,
                            const InferenceSetting &setting,
                            int tensor_parallel);

} // namespace model
} // namespace acs

#endif // ACS_MODEL_OPS_HH
