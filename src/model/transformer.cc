#include "transformer.hh"

#include "common/logging.hh"

namespace acs {
namespace model {

std::string
toString(Activation act)
{
    switch (act) {
      case Activation::GELU:   return "GELU";
      case Activation::SWIGLU: return "SwiGLU";
    }
    panic("unknown Activation");
}

long
TransformerConfig::paramsPerLayer() const
{
    const long d = modelDim;
    const long kv = kvDim();
    // Attention: Q (d x d), K and V (d x kv each), output (d x d).
    long attn = d * d + 2 * d * kv + d * d;
    // FFN: GELU has up+down; SwiGLU has gate+up+down; MoE replicates
    // the FFN per expert and adds a (d x E) router.
    long ffn_mats = activation == Activation::SWIGLU ? 3 : 2;
    long ffn = ffn_mats * d * static_cast<long>(ffnDim);
    if (isMoe())
        ffn = ffn * numExperts + d * numExperts;
    return attn + ffn;
}

long
TransformerConfig::totalParams() const
{
    return paramsPerLayer() * numLayers;
}

void
TransformerConfig::validate() const
{
    fatalIf(numLayers < 1, name + ": numLayers must be >= 1");
    fatalIf(modelDim < 1, name + ": modelDim must be >= 1");
    fatalIf(ffnDim < 1, name + ": ffnDim must be >= 1");
    fatalIf(numHeads < 1, name + ": numHeads must be >= 1");
    fatalIf(numKvHeads < 1, name + ": numKvHeads must be >= 1");
    fatalIf(modelDim % numHeads != 0,
            name + ": modelDim must be divisible by numHeads");
    fatalIf(numHeads % numKvHeads != 0,
            name + ": numHeads must be divisible by numKvHeads");
    fatalIf(numExperts < 0, name + ": numExperts must be >= 0");
    if (isMoe()) {
        fatalIf(expertsPerToken < 1 || expertsPerToken > numExperts,
                name + ": expertsPerToken must be in [1, numExperts]");
    }
}

TransformerConfig
gpt3_175b()
{
    TransformerConfig cfg;
    cfg.name = "GPT-3 175B";
    cfg.numLayers = 96;
    cfg.modelDim = 12288;
    cfg.ffnDim = 49152;
    cfg.numHeads = 96;
    cfg.numKvHeads = 96;
    cfg.activation = Activation::GELU;
    return cfg;
}

TransformerConfig
llama3_70b()
{
    TransformerConfig cfg;
    cfg.name = "Llama 3 70B";
    cfg.numLayers = 80;
    cfg.modelDim = 8192;
    cfg.ffnDim = 28672;
    cfg.numHeads = 64;
    cfg.numKvHeads = 8;
    cfg.activation = Activation::SWIGLU;
    return cfg;
}

TransformerConfig
llama3_8b()
{
    TransformerConfig cfg;
    cfg.name = "Llama 3 8B";
    cfg.numLayers = 32;
    cfg.modelDim = 4096;
    cfg.ffnDim = 14336;
    cfg.numHeads = 32;
    cfg.numKvHeads = 8;
    cfg.activation = Activation::SWIGLU;
    return cfg;
}

TransformerConfig
mixtral_8x7b()
{
    TransformerConfig cfg = llama3_8b();
    cfg.name = "Mixtral 8x7B";
    cfg.numExperts = 8;
    cfg.expertsPerToken = 2;
    return cfg;
}

void
InferenceSetting::validate() const
{
    fatalIf(batch < 1, "InferenceSetting: batch must be >= 1");
    fatalIf(inputLen < 1, "InferenceSetting: inputLen must be >= 1");
    fatalIf(outputLen < 1, "InferenceSetting: outputLen must be >= 1");
    fatalIf(bytesPerValue < 1,
            "InferenceSetting: bytesPerValue must be >= 1");
}

double
kvCacheBytesPerLayer(const TransformerConfig &cfg,
                     const InferenceSetting &setting, int ctx_len,
                     int tensor_parallel)
{
    cfg.validate();
    setting.validate();
    fatalIf(ctx_len < 1, "kvCacheBytesPerLayer: ctx_len must be >= 1");
    fatalIf(tensor_parallel < 1,
            "kvCacheBytesPerLayer: tensor_parallel must be >= 1");
    // K and V, one vector of kvDim per token, sharded over TP ranks.
    return 2.0 * setting.batch * static_cast<double>(ctx_len) *
           cfg.kvDim() * setting.bytesPerValue / tensor_parallel;
}

} // namespace model
} // namespace acs
