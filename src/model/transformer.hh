/**
 * @file
 * Decoder-only transformer model descriptions (Sec. 3.1/3.2, Table 2).
 */

#ifndef ACS_MODEL_TRANSFORMER_HH
#define ACS_MODEL_TRANSFORMER_HH

#include <string>

namespace acs {
namespace model {

/** FFN activation function variant. */
enum class Activation
{
    GELU,   //!< GPT-3 style: FFN is (d -> ffn) GELU (ffn -> d)
    SWIGLU, //!< Llama style: gate+up (d -> 2*ffn), SiLU*gate, down
};

/** Human-readable activation name. */
std::string toString(Activation act);

/**
 * Architecture of a decoder-only transformer (Table 2).
 *
 * Grouped-query attention is expressed by numKvHeads < numHeads
 * (numKvHeads == numHeads is standard multi-head attention).
 */
struct TransformerConfig
{
    std::string name = "unnamed";
    int numLayers = 0;
    int modelDim = 0;   //!< hidden size d
    int ffnDim = 0;     //!< FFN intermediate size
    int numHeads = 0;   //!< attention (query) heads
    int numKvHeads = 0; //!< key/value heads (GQA groups)
    Activation activation = Activation::GELU;

    // Mixture-of-experts FFN (the trillion-parameter scaling route the
    // paper's introduction cites). 0 experts = dense FFN.
    int numExperts = 0;      //!< expert FFNs per layer (0 = dense)
    int expertsPerToken = 0; //!< top-k routing fan-out

    /** True when the FFN is a routed mixture of experts. */
    bool isMoe() const { return numExperts > 0; }

    /** Per-head dimension (modelDim / numHeads). */
    int headDim() const { return modelDim / numHeads; }

    /** K/V projection width (numKvHeads * headDim). */
    int kvDim() const { return numKvHeads * headDim(); }

    /** Weight parameters in one decoder layer (attention + FFN). */
    long paramsPerLayer() const;

    /** Weight parameters in the full stack (excluding embeddings). */
    long totalParams() const;

    /** Fatal unless dimensions are consistent (divisibility etc.). */
    void validate() const;
};

/** GPT-3 175B (Table 2): 96 layers, d 12288, ffn 49152, 96/96 heads. */
TransformerConfig gpt3_175b();

/** Llama 3 8B (Table 2): 32 layers, d 4096, ffn 14336, 32/8 heads. */
TransformerConfig llama3_8b();

/**
 * Llama 3 70B (extension): 80 layers, d 8192, ffn 28672, 64/8 heads —
 * a mid-size GQA model between the paper's two evaluation points.
 */
TransformerConfig llama3_70b();

/**
 * Mixtral-8x7B-class MoE (extension): the Llama-architecture layer
 * with 8 SwiGLU experts, top-2 routing — exercises the
 * mixture-of-experts path whose decode is even more memory-bandwidth
 * bound than dense models.
 */
TransformerConfig mixtral_8x7b();

/**
 * The paper's standard inference setting (Sec. 3.2): batch 32, input
 * sequence 2048, output sequence 1024, FP16 weights/activations.
 */
struct InferenceSetting
{
    int batch = 32;
    int inputLen = 2048;
    int outputLen = 1024;
    int bytesPerValue = 2; //!< FP16

    /** Fatal unless all fields are positive. */
    void validate() const;

    /**
     * Context length used for the representative decode step: the
     * midpoint of generation (inputLen + outputLen / 2).
     */
    int decodeContextLen() const { return inputLen + outputLen / 2; }
};

/**
 * KV-cache bytes per layer per device at context length @p ctx_len
 * with tensor parallelism @p tensor_parallel (K and V, all batches).
 */
double kvCacheBytesPerLayer(const TransformerConfig &cfg,
                            const InferenceSetting &setting, int ctx_len,
                            int tensor_parallel);

} // namespace model
} // namespace acs

#endif // ACS_MODEL_TRANSFORMER_HH
