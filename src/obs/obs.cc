#include "obs.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/logging.hh"

namespace acs {
namespace obs {

namespace detail {

std::atomic<bool> enabledFlag{false};

} // namespace detail

namespace {

/** Per-thread trace-event cap (complete spans are ~100 B each). */
constexpr std::size_t MAX_EVENTS_PER_THREAD = 1 << 20;

/** One buffered Chrome-trace complete event. */
struct TraceEvent
{
    std::string name;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
};

/** Accumulator behind one named duration series on one thread. */
struct TimerAccum
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = 0;
    std::uint64_t maxNs = 0;
    std::uint64_t buckets[HISTOGRAM_BUCKETS] = {};

    void add(std::uint64_t ns)
    {
        if (count == 0 || ns < minNs)
            minNs = ns;
        if (ns > maxNs)
            maxNs = ns;
        ++count;
        totalNs += ns;
        int b = 0;
        while (b + 1 < HISTOGRAM_BUCKETS &&
               ns >= (std::uint64_t{1} << (b + 1)))
            ++b;
        ++buckets[b];
    }
};

/**
 * One recording thread's private buffer. Owned by the registry (so
 * data outlives the thread); the mutex is only contended at report
 * time.
 */
struct ThreadBuf
{
    std::mutex mu;
    int tid = 0;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, TimerAccum> timers;
    std::vector<TraceEvent> events;
    std::uint64_t droppedEvents = 0;

    void clear()
    {
        counters.clear();
        timers.clear();
        events.clear();
        events.shrink_to_fit();
        droppedEvents = 0;
    }
};

struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
};

Registry &
registry()
{
    // Intentionally leaked: recording may race static destruction
    // (atexit report hooks, detached threads), so the registry must
    // never be torn down.
    static Registry *r = new Registry;
    return *r;
}

ThreadBuf &
threadBuf()
{
    thread_local ThreadBuf *buf = [] {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.bufs.push_back(std::make_unique<ThreadBuf>());
        r.bufs.back()->tid = static_cast<int>(r.bufs.size()) - 1;
        return r.bufs.back().get();
    }();
    return *buf;
}

std::uint64_t
nowNs()
{
    // Anchored to first use so Chrome-trace timestamps start near 0.
    static const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Run @p fn over every thread buffer, each under its own lock. */
template <typename Fn>
void
forEachBuf(Fn fn)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &buf : r.bufs) {
        std::lock_guard<std::mutex> buf_lock(buf->mu);
        fn(*buf);
    }
}

} // anonymous namespace

void
setEnabled(bool on)
{
    detail::enabledFlag.store(on, std::memory_order_relaxed);
    if (on)
        nowNs(); // anchor the clock before the first span
}

std::string
enableFromEnv()
{
    const char *path = std::getenv("ACS_TRACE");
    if (!path || !*path)
        return "";
    setEnabled(true);
    return path;
}

void
detail::counterAddImpl(const std::string &name, std::uint64_t delta)
{
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.counters[name] += delta;
}

std::uint64_t
counterValue(const std::string &name)
{
    std::uint64_t total = 0;
    forEachBuf([&](ThreadBuf &buf) {
        auto it = buf.counters.find(name);
        if (it != buf.counters.end())
            total += it->second;
    });
    return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
counterValues()
{
    std::map<std::string, std::uint64_t> merged;
    forEachBuf([&](ThreadBuf &buf) {
        for (const auto &[name, value] : buf.counters)
            merged[name] += value;
    });
    return {merged.begin(), merged.end()};
}

std::vector<std::pair<int, std::uint64_t>>
counterValuesPerThread(const std::string &name)
{
    std::vector<std::pair<int, std::uint64_t>> out;
    forEachBuf([&](ThreadBuf &buf) {
        auto it = buf.counters.find(name);
        if (it != buf.counters.end())
            out.emplace_back(buf.tid, it->second);
    });
    std::sort(out.begin(), out.end());
    return out;
}

void
recordDuration(const std::string &name, double seconds)
{
    if (!enabled())
        return;
    const std::uint64_t ns = seconds <= 0.0
                                 ? 0
                                 : static_cast<std::uint64_t>(
                                       seconds * 1e9 + 0.5);
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.timers[name].add(ns);
}

namespace {

std::map<std::string, TimerAccum>
mergedTimers()
{
    std::map<std::string, TimerAccum> merged;
    forEachBuf([&](ThreadBuf &buf) {
        for (const auto &[name, acc] : buf.timers) {
            TimerAccum &m = merged[name];
            if (m.count == 0) {
                m = acc;
                continue;
            }
            m.minNs = std::min(m.minNs, acc.minNs);
            m.maxNs = std::max(m.maxNs, acc.maxNs);
            m.count += acc.count;
            m.totalNs += acc.totalNs;
            for (int b = 0; b < HISTOGRAM_BUCKETS; ++b)
                m.buckets[b] += acc.buckets[b];
        }
    });
    return merged;
}

TimerStat
toStat(const std::string &name, const TimerAccum &acc)
{
    TimerStat s;
    s.name = name;
    s.count = acc.count;
    s.totalS = static_cast<double>(acc.totalNs) * 1e-9;
    s.minS = static_cast<double>(acc.minNs) * 1e-9;
    s.maxS = static_cast<double>(acc.maxNs) * 1e-9;
    std::copy(std::begin(acc.buckets), std::end(acc.buckets),
              std::begin(s.buckets));
    return s;
}

} // anonymous namespace

std::vector<TimerStat>
timerStats()
{
    std::vector<TimerStat> out;
    for (const auto &[name, acc] : mergedTimers())
        out.push_back(toStat(name, acc));
    return out;
}

TimerStat
timerStat(const std::string &name)
{
    const auto merged = mergedTimers();
    auto it = merged.find(name);
    if (it == merged.end())
        return TimerStat{};
    return toStat(name, it->second);
}

void
ScopedTimer::start(const char *name)
{
    name_ = name;
    startNs_ = nowNs() + 1; // +1 so 0 keeps meaning "disabled"
}

void
ScopedTimer::finish()
{
    const std::uint64_t end = nowNs();
    const std::uint64_t start = startNs_ - 1;
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.timers[name_].add(end > start ? end - start : 0);
}

void
TraceSpan::start(const char *name)
{
    name_ = name;
    startNs_ = nowNs() + 1;
}

void
TraceSpan::finish()
{
    const std::uint64_t end = nowNs();
    const std::uint64_t start = startNs_ - 1;
    const std::uint64_t dur = end > start ? end - start : 0;
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.timers[name_].add(dur);
    if (buf.events.size() >= MAX_EVENTS_PER_THREAD) {
        ++buf.droppedEvents;
        return;
    }
    buf.events.push_back(TraceEvent{std::move(name_), start, dur});
}

std::size_t
traceEventCount()
{
    std::size_t total = 0;
    forEachBuf([&](ThreadBuf &buf) { total += buf.events.size(); });
    return total;
}

std::uint64_t
droppedEventCount()
{
    std::uint64_t total = 0;
    forEachBuf([&](ThreadBuf &buf) { total += buf.droppedEvents; });
    return total;
}

void
writeChromeTrace(std::ostream &os)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped = 0;
    forEachBuf([&](ThreadBuf &buf) {
        dropped += buf.droppedEvents;
        for (const TraceEvent &e : buf.events) {
            if (!first)
                os << ",";
            first = false;
            // Timestamps are microseconds in the Trace Event Format.
            os << "\n{\"name\":\"" << jsonEscape(e.name)
               << "\",\"cat\":\"acs\",\"ph\":\"X\",\"ts\":"
               << static_cast<double>(e.startNs) / 1e3
               << ",\"dur\":" << static_cast<double>(e.durNs) / 1e3
               << ",\"pid\":1,\"tid\":" << buf.tid << "}";
        }
    });
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
    if (dropped > 0)
        warn("chrome trace truncated: " + std::to_string(dropped) +
             " spans dropped (per-thread buffer cap)");
}

bool
writeChromeTraceFile(const std::string &path)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace file " + path);
        return false;
    }
    writeChromeTrace(out);
    return out.good();
}

Table
summaryTable()
{
    Table t({"stage", "count", "total (ms)", "mean (us)", "min (us)",
             "max (us)"});
    for (const TimerStat &s : timerStats()) {
        t.addRow({s.name, std::to_string(s.count),
                  fmt(s.totalS * 1e3, 3), fmt(s.meanS() * 1e6, 2),
                  fmt(s.minS * 1e6, 2), fmt(s.maxS * 1e6, 2)});
    }
    for (const auto &[name, value] : counterValues())
        t.addRow({name, std::to_string(value), "", "", "", ""});
    return t;
}

void
reset()
{
    // Buffers are cleared, never destroyed: other threads hold
    // pointers to theirs.
    forEachBuf([](ThreadBuf &buf) { buf.clear(); });
}

} // namespace obs
} // namespace acs
