/**
 * @file
 * Observability layer: process-wide named counters, latency
 * histograms, RAII scoped timers, and Chrome-trace spans.
 *
 * Everything funnels through per-thread buffers so the instrumented
 * hot paths (the inference simulator, the DSE evaluator, the policy
 * classifiers) never contend on a shared lock while recording; the
 * buffers are aggregated only at report time. When observability is
 * disabled (the default) every entry point reduces to one relaxed
 * atomic load and a branch, so instrumentation can stay compiled into
 * release binaries.
 *
 * Typical use:
 * @code
 *   obs::setEnabled(true);
 *   {
 *       obs::TraceSpan span("dse.evaluateAll");
 *       obs::counterAdd("dse.designs.evaluated", cfgs.size());
 *       ...
 *   }
 *   obs::summaryTable().print(std::cout);
 *   obs::writeChromeTraceFile("results/run.trace.json");
 * @endcode
 *
 * The trace file loads directly in chrome://tracing or Perfetto
 * (https://ui.perfetto.dev): events use the Trace Event Format's
 * complete ("ph":"X") form with microsecond timestamps.
 */

#ifndef ACS_OBS_OBS_HH
#define ACS_OBS_OBS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"

namespace acs {
namespace obs {

namespace detail {
/** Backing flag for enabled(); use setEnabled() to change it. */
extern std::atomic<bool> enabledFlag;
/** Out-of-line counter record (call only when enabled). */
void counterAddImpl(const std::string &name, std::uint64_t delta);
} // namespace detail

/** Whether recording is active (relaxed load; safe on hot paths). */
inline bool
enabled()
{
    return detail::enabledFlag.load(std::memory_order_relaxed);
}

/** Turn recording on or off process-wide. */
void setEnabled(bool on);

/**
 * Enable recording if the ACS_TRACE environment variable is set.
 *
 * @return The value of ACS_TRACE (the requested trace-file path), or
 *         an empty string when the variable is unset.
 */
std::string enableFromEnv();

// ---- counters --------------------------------------------------------------

/** Add @p delta to the named process-wide counter (no-op if disabled). */
inline void
counterAdd(const std::string &name, std::uint64_t delta = 1)
{
    if (enabled())
        detail::counterAddImpl(name, delta);
}

/**
 * Literal-name overload: when disabled, no std::string is ever
 * constructed, keeping instrumented hot loops at one load + branch.
 */
inline void
counterAdd(const char *name, std::uint64_t delta = 1)
{
    if (enabled())
        detail::counterAddImpl(name, delta);
}

/** Aggregated value of one counter across all threads (0 if unknown). */
std::uint64_t counterValue(const std::string &name);

/** All counters, aggregated across threads, sorted by name. */
std::vector<std::pair<std::string, std::uint64_t>> counterValues();

/**
 * Per-thread breakdown of one counter: (thread id, value) pairs for
 * every recording thread that touched it, sorted by thread id. Thread
 * ids are small integers assigned in first-use order (0 is the first
 * recording thread, usually main).
 */
std::vector<std::pair<int, std::uint64_t>>
counterValuesPerThread(const std::string &name);

// ---- timers and histograms -------------------------------------------------

/** Number of power-of-two nanosecond buckets kept per histogram. */
constexpr int HISTOGRAM_BUCKETS = 40;

/** Aggregated statistics of one named duration series. */
struct TimerStat
{
    std::string name;
    std::uint64_t count = 0;
    double totalS = 0.0;
    double minS = 0.0;
    double maxS = 0.0;

    /**
     * Log2 latency histogram: bucket i counts samples with duration
     * in [2^i, 2^(i+1)) nanoseconds (the last bucket absorbs the
     * tail).
     */
    std::uint64_t buckets[HISTOGRAM_BUCKETS] = {};

    /** Mean duration in seconds (0 when empty). */
    double meanS() const { return count ? totalS / count : 0.0; }
};

/** Record one duration sample into the named histogram. */
void recordDuration(const std::string &name, double seconds);

/** All duration series, aggregated across threads, sorted by name. */
std::vector<TimerStat> timerStats();

/** Stats of one series (count == 0 when the name is unknown). */
TimerStat timerStat(const std::string &name);

/**
 * Times a scope into the named histogram.
 *
 * Cheap when disabled: the constructor is one atomic load and the
 * destructor one branch. Does not emit a trace event; use TraceSpan
 * when the interval should also appear on the timeline.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const std::string &name)
    {
        if (enabled())
            start(name.c_str());
    }

    /** Literal-name overload (no string built on the disabled path). */
    explicit ScopedTimer(const char *name)
    {
        if (enabled())
            start(name);
    }

    ~ScopedTimer()
    {
        if (startNs_ != 0)
            finish();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    void start(const char *name);
    void finish();

    std::string name_;
    std::uint64_t startNs_ = 0;
};

// ---- trace spans -----------------------------------------------------------

/**
 * Times a scope AND emits a Chrome-trace complete event for it, so
 * the interval shows up both in summaryTable() and on the Perfetto
 * timeline (one track per recording thread).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const std::string &name)
    {
        if (enabled())
            start(name.c_str());
    }

    /** Literal-name overload (no string built on the disabled path). */
    explicit TraceSpan(const char *name)
    {
        if (enabled())
            start(name);
    }

    ~TraceSpan()
    {
        if (startNs_ != 0)
            finish();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    void start(const char *name);
    void finish();

    std::string name_;
    std::uint64_t startNs_ = 0;
};

/** Total trace events currently buffered across all threads. */
std::size_t traceEventCount();

/**
 * Events dropped because a thread hit its buffer cap (reported so a
 * truncated trace is never mistaken for a complete one).
 */
std::uint64_t droppedEventCount();

// ---- reporting -------------------------------------------------------------

/**
 * Write every buffered span as Chrome-trace JSON (Trace Event
 * Format, "traceEvents" array of "ph":"X" records). The output loads
 * in chrome://tracing and Perfetto.
 *
 * Call after worker threads have been joined; recording threads may
 * otherwise contribute partially.
 */
void writeChromeTrace(std::ostream &os);

/**
 * writeChromeTrace to @p path, creating parent directories.
 *
 * @return true on success (warns and returns false on I/O failure).
 */
bool writeChromeTraceFile(const std::string &path);

/**
 * Per-stage summary: one row per duration series (count, total ms,
 * mean/min/max us) followed by one row per counter.
 */
Table summaryTable();

/** Drop all recorded data (counters, histograms, spans) everywhere. */
void reset();

} // namespace obs
} // namespace acs

#endif // ACS_OBS_OBS_HH
