/**
 * @file
 * Per-request records and percentile rollups of a simulated serving
 * run.
 *
 * The simulator's contribution over the closed-form path in src/serve
 * is exactly these distributions: steady-state arithmetic yields one
 * TTFT/TBT number per design, while bursty arrivals and continuous
 * batching make the p99 several times the median. Everything here is
 * plain data + order-independent reductions, so fleet aggregation
 * merges replica results identically regardless of which worker
 * finished first.
 */

#ifndef ACS_SIM_METRICS_HH
#define ACS_SIM_METRICS_HH

#include <cstdint>
#include <vector>

namespace acs {
namespace sim {

/** Lifecycle timestamps of one completed request (virtual seconds). */
struct RequestRecord
{
    std::uint64_t id = 0;      //!< arrival order within the replica
    double arrivalS = 0.0;     //!< joined the admission queue
    double admitS = 0.0;       //!< scheduler admitted it (prefill start)
    double firstTokenS = 0.0;  //!< prefill finished (first token out)
    double finishS = 0.0;      //!< last token out
    int promptLen = 0;
    int outputLen = 0;

    /** Time to first token: queueing delay + prefill. */
    double ttftS() const { return firstTokenS - arrivalS; }

    /**
     * Mean time between tokens over the decode phase (0 for
     * single-token outputs, which have no decode phase).
     */
    double
    meanTbtS() const
    {
        if (outputLen < 2)
            return 0.0;
        return (finishS - firstTokenS) / (outputLen - 1);
    }
};

/** Order statistics of one latency sample set (seconds). */
struct LatencyRollup
{
    std::size_t count = 0;
    double meanS = 0.0;
    double p50S = 0.0;
    double p95S = 0.0;
    double p99S = 0.0;
    double maxS = 0.0;

    /** Rollup of @p samples (all zeros when empty). */
    static LatencyRollup fromSamples(const std::vector<double> &samples);
};

/**
 * Log2 histogram of admission-queue depth, sampled at every scheduler
 * iteration start. Bucket i counts samples with depth in
 * [2^(i-1), 2^i); bucket 0 counts an empty queue.
 */
struct QueueDepthHistogram
{
    std::vector<std::uint64_t> buckets;
    std::uint64_t maxDepth = 0;
    std::uint64_t samples = 0;

    /** Record one observation of @p depth. */
    void record(std::uint64_t depth);

    /** Fold another histogram in (commutative and associative). */
    void merge(const QueueDepthHistogram &other);
};

/**
 * Streaming latency histogram with bounded relative error.
 *
 * HDR-style bucketing: each power-of-two octave of seconds splits
 * into 32 linear sub-buckets, so any recorded value lands in a bucket
 * whose representative midpoint is within ~1.6% of it. Memory is O(1)
 * in the sample count — the trace-scale alternative to keeping every
 * decode gap of a multi-million-request run in a vector — and merge
 * is a commutative bucket-wise sum, preserving the index-order
 * aggregation contract.
 */
struct LatencyHistogram
{
    /** Linear sub-buckets per power-of-two octave. */
    static constexpr int kSubBuckets = 32;

    std::vector<std::uint64_t> buckets; //!< grown on demand
    std::uint64_t count = 0;            //!< total recorded samples
    double sumS = 0.0;                  //!< sum of recorded values
    double maxS = 0.0;                  //!< largest recorded value

    /** Record one latency sample (seconds; <= 0 lands in bucket 0). */
    void record(double s);

    /**
     * One-entry bucket memo: decode gaps repeat (every request of a
     * batch shares the iteration's gap), so the common case skips the
     * frexp bucket math. Pure cache — no effect on recorded data.
     */
    double lastS = -1.0;
    std::size_t lastBucket = 0;

    /** Fold another histogram in (commutative and associative). */
    void merge(const LatencyHistogram &other);

    /**
     * Approximate percentile @p pct in (0, 100]: the representative
     * midpoint of the bucket holding the rank, clamped to the
     * recorded maximum (0 when empty). Within ~1.6% of the exact
     * order statistic.
     */
    double percentileS(double pct) const;

    /** Mean of recorded samples (0 when empty). */
    double meanS() const { return count ? sumS / count : 0.0; }
};

/** Percentile latency objectives for a serving fleet. */
struct SloTargets
{
    double ttftMaxS = 10.0;   //!< bound on the TTFT percentile
    double tbtMaxS = 0.200;   //!< bound on the TBT percentile
    double percentile = 99.0; //!< which percentile must meet the bound

    /** Fatal unless bounds are positive and percentile in (0, 100]. */
    void validate() const;
};

/** Everything one replica simulation produced. */
struct ReplicaMetrics
{
    /**
     * Completed requests in completion order. Populated only when
     * the run records per-request data (ReplicaConfig::
     * recordRequests, on by default); trace-scale runs turn it off
     * and read `completed` + the streaming histograms instead.
     */
    std::vector<RequestRecord> requests;

    /**
     * Every decode-token gap (seconds), including stalls while the
     * scheduler ran prefill iterations — the interference the
     * closed-form TBT cannot see. Subject to ReplicaConfig::
     * recordTbtGaps, like `requests` above.
     */
    std::vector<double> tbtGapsS;

    /**
     * Streaming TTFT / decode-gap distributions, populated by
     * simulateReplica regardless of the record switches — the O(1)-
     * memory percentile source for trace-scale runs (the cluster
     * keeps its own pair in ClusterMetrics).
     */
    LatencyHistogram ttftHist;
    LatencyHistogram tbtHist;

    QueueDepthHistogram queueDepth;

    std::uint64_t prefillIterations = 0;
    std::uint64_t decodeIterations = 0;
    std::uint64_t generatedTokens = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0; //!< requests retired (always counted)
    double lastEventS = 0.0; //!< virtual time of the final event

    /** TTFT rollup over completed requests. */
    LatencyRollup ttft() const;

    /** TBT rollup over all decode-token gaps. */
    LatencyRollup tbt() const;

    /**
     * Fraction of completed requests meeting both SLO bounds
     * individually (TTFT, and mean TBT for multi-token outputs);
     * 1.0 when no requests completed.
     */
    double attainment(const SloTargets &slo) const;

    /**
     * Tokens per second of SLO-attaining requests over the simulated
     * span — throughput that actually counts toward the objectives.
     */
    double goodputTokensPerS(const SloTargets &slo) const;

    /** Whether the run's percentiles meet @p slo. */
    bool meetsSlo(const SloTargets &slo) const;

    /**
     * Fold another replica's results in. Aggregation is a sum/concat,
     * so merging in replica-index order yields identical bytes
     * regardless of which thread simulated which replica.
     */
    void merge(const ReplicaMetrics &other);
};

} // namespace sim
} // namespace acs

#endif // ACS_SIM_METRICS_HH
