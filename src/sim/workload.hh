/**
 * @file
 * Request-level serving workloads: arrival processes and length
 * distributions.
 *
 * Two client models cover the operating regimes the steady-state
 * arithmetic in src/serve cannot distinguish:
 *
 *  - open loop: requests arrive in a Poisson stream at a fixed offered
 *    rate regardless of how the system is doing — the overload regime
 *    where queues grow without bound;
 *  - closed loop: a fixed population of clients each keeps one request
 *    in flight and thinks between requests — the self-throttling
 *    regime where load tracks completion.
 *
 * All randomness flows through common/rng.hh (SplitMix64), so a
 * workload is byte-reproducible from its seed on every platform.
 */

#ifndef ACS_SIM_WORKLOAD_HH
#define ACS_SIM_WORKLOAD_HH

#include <cstdint>

#include "common/rng.hh"

namespace acs {
namespace sim {

/**
 * Distribution of a token count (prompt or output length).
 *
 * Sampled lengths are rounded up to a multiple of @c quantum. The
 * quantum exists for the iteration cost model: per-iteration latencies
 * are memoized by (batch, prompt length), so quantizing drawn lengths
 * bounds the number of distinct simulator evaluations a run performs
 * (docs/SERVING.md) without changing the distribution's scale.
 */
struct LengthDistribution
{
    enum class Kind
    {
        FIXED,   //!< every request draws exactly fixedLen tokens
        UNIFORM, //!< uniform integer in [minLen, maxLen]
    };

    Kind kind = Kind::FIXED;
    int fixedLen = 512; //!< FIXED: the constant length
    int minLen = 0;     //!< UNIFORM: inclusive lower bound
    int maxLen = 0;     //!< UNIFORM: inclusive upper bound
    int quantum = 1;    //!< round samples up to this multiple

    /** A FIXED distribution of @p len tokens. */
    static LengthDistribution fixed(int len);

    /**
     * A UNIFORM distribution on [lo, hi], quantized to @p quantum.
     */
    static LengthDistribution uniform(int lo, int hi, int quantum = 16);

    /** Draw one length (validated; always >= 1). */
    int sample(Rng &rng) const;

    /** Expected length before quantization (UNIFORM: midpoint). */
    double meanLen() const;

    /** Largest length the distribution can produce. */
    int maxPossibleLen() const;

    /** Fatal unless bounds/quantum are consistent and positive. */
    void validate() const;
};

/** One serving replica's offered workload. */
struct WorkloadSpec
{
    /**
     * Open-loop Poisson arrival rate in requests/second. Used only
     * when closedLoopClients == 0.
     */
    double arrivalRatePerS = 0.1;

    /**
     * Closed-loop client population; 0 selects the open-loop Poisson
     * stream instead.
     */
    int closedLoopClients = 0;

    /** Closed-loop think time between completion and next request. */
    double thinkTimeS = 0.0;

    LengthDistribution promptLen = LengthDistribution::fixed(2048);
    LengthDistribution outputLen = LengthDistribution::fixed(256);

    /**
     * Arrival horizon: no new requests are generated at or after this
     * virtual time. Requests already in the system drain to
     * completion, so the simulated span can exceed the horizon.
     */
    double horizonS = 600.0;

    /** Seed of every RNG stream the replica run uses. */
    std::uint64_t seed = 1;

    /** True when the workload is the open-loop Poisson stream. */
    bool openLoop() const { return closedLoopClients == 0; }

    /** Fatal unless rates/population/horizon are consistent. */
    void validate() const;
};

/**
 * Deterministically derive the seed of substream @p stream from a
 * master @p seed (replica fan-out, arrival vs length streams). One
 * SplitMix64 step of the mixed pair, so nearby (seed, stream) pairs
 * give statistically unrelated streams.
 */
std::uint64_t substreamSeed(std::uint64_t seed, std::uint64_t stream);

/**
 * Draw an exponential inter-arrival gap with rate @p rate_per_s
 * (inverse-CDF of the uniform draw; rate must be > 0).
 */
double sampleExponentialS(Rng &rng, double rate_per_s);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_WORKLOAD_HH
