#include "routing.hh"

#include "common/logging.hh"

namespace acs {
namespace sim {

std::string
toString(PoolRole role)
{
    switch (role) {
      case PoolRole::MONOLITHIC:
        return "monolithic";
      case PoolRole::PREFILL:
        return "prefill";
      case PoolRole::DECODE:
        return "decode";
    }
    panic("toString: unhandled PoolRole");
}

std::string
toString(RoutingPolicyKind kind)
{
    switch (kind) {
      case RoutingPolicyKind::JOIN_SHORTEST_QUEUE:
        return "jsq";
      case RoutingPolicyKind::PHASE_AFFINITY:
        return "phase-affinity";
      case RoutingPolicyKind::COST_WEIGHTED:
        return "cost-weighted";
    }
    panic("toString: unhandled RoutingPolicyKind");
}

RoutingPolicyKind
parseRoutingPolicy(const std::string &name)
{
    if (name == "jsq")
        return RoutingPolicyKind::JOIN_SHORTEST_QUEUE;
    if (name == "phase-affinity")
        return RoutingPolicyKind::PHASE_AFFINITY;
    if (name == "cost-weighted")
        return RoutingPolicyKind::COST_WEIGHTED;
    fatal("parseRoutingPolicy: unknown policy '" + name +
          "' (expected jsq, phase-affinity, or cost-weighted)");
}

namespace {

/**
 * Shared argmin scaffold: score every candidate, keep the first
 * strict improvement. Candidates arrive in ascending member index
 * order, so "first wins" is the lowest-index tie-break every policy
 * promises.
 */
template <typename Score>
std::size_t
argminScore(const std::vector<MemberView> &candidates,
            const Score &score)
{
    panicIf(candidates.empty(),
            "RoutingPolicy: pick called with no candidates");
    std::size_t best = 0;
    double best_score = score(candidates[0]);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double s = score(candidates[i]);
        if (s < best_score) {
            best = i;
            best_score = s;
        }
    }
    return best;
}

/** Classic join-shortest-queue over queued + in-flight requests. */
class JsqPolicy final : public RoutingPolicy
{
  public:
    std::string
    name() const override
    {
        return toString(RoutingPolicyKind::JOIN_SHORTEST_QUEUE);
    }

    std::size_t
    pick(RoutePhase, const RouteRequest &,
         const std::vector<MemberView> &candidates) const override
    {
        return argminScore(candidates, [](const MemberView &m) {
            return static_cast<double>(m.queued + m.inFlight);
        });
    }
};

/**
 * Phase affinity: expected wait proxy (load + 1) / phase service
 * rate, steering prompts toward compute-strong members and decode
 * toward bandwidth-strong ones in a mixed fleet.
 */
class PhaseAffinityPolicy final : public RoutingPolicy
{
  public:
    std::string
    name() const override
    {
        return toString(RoutingPolicyKind::PHASE_AFFINITY);
    }

    std::size_t
    pick(RoutePhase, const RouteRequest &,
         const std::vector<MemberView> &candidates) const override
    {
        return argminScore(candidates, [](const MemberView &m) {
            panicIf(m.phaseServiceRatePerS <= 0.0,
                    "phase-affinity: member has no service rate");
            return static_cast<double>(m.queued + m.inFlight + 1) /
                   m.phaseServiceRatePerS;
        });
    }
};

/**
 * Cost-weighted: the phase-affinity wait proxy scaled by the
 * member's hourly cost, preferring the cheapest capable hardware and
 * spilling to expensive members only under load.
 */
class CostWeightedPolicy final : public RoutingPolicy
{
  public:
    std::string
    name() const override
    {
        return toString(RoutingPolicyKind::COST_WEIGHTED);
    }

    std::size_t
    pick(RoutePhase, const RouteRequest &,
         const std::vector<MemberView> &candidates) const override
    {
        return argminScore(candidates, [](const MemberView &m) {
            panicIf(m.phaseServiceRatePerS <= 0.0,
                    "cost-weighted: member has no service rate");
            panicIf(m.hourlyCostUsd < 0.0,
                    "cost-weighted: member has negative cost");
            return static_cast<double>(m.queued + m.inFlight + 1) *
                   m.hourlyCostUsd / m.phaseServiceRatePerS;
        });
    }
};

} // anonymous namespace

const RoutingPolicy *
routingPolicy(RoutingPolicyKind kind)
{
    static const JsqPolicy jsq;
    static const PhaseAffinityPolicy affinity;
    static const CostWeightedPolicy cost;
    switch (kind) {
      case RoutingPolicyKind::JOIN_SHORTEST_QUEUE:
        return &jsq;
      case RoutingPolicyKind::PHASE_AFFINITY:
        return &affinity;
      case RoutingPolicyKind::COST_WEIGHTED:
        return &cost;
    }
    panic("routingPolicy: unhandled RoutingPolicyKind");
}

} // namespace sim
} // namespace acs
