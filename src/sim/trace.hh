/**
 * @file
 * Streaming trace-replay workloads for the datacenter simulator.
 *
 * A TraceWorkload is a single-pass, pull-based request source: the
 * cluster event loop (sim/cluster.hh) keeps exactly one pending
 * arrival in flight and asks for the next record only after the
 * previous one entered the system, so a trace of millions of requests
 * is never materialized — memory stays O(in-flight requests), not
 * O(trace length).
 *
 * Three sources cover the operating regimes:
 *
 *  - Poisson: the open-loop stream the single-replica simulator uses,
 *    exposed as a trace so monolithic and disaggregated runs consume
 *    byte-identical arrival sequences;
 *  - diurnal/bursty synthetic generator: a sinusoidal day/night rate
 *    envelope with a two-state (calm/burst) Markov modulation, drawn
 *    by thinning a homogeneous Poisson stream over common/rng.hh
 *    substreams, so a trace is byte-reproducible from its seed;
 *  - CSV replay: `arrival_s,prompt_len,output_len` rows streamed from
 *    a file or any std::istream.
 *
 * All sources yield arrivals in non-decreasing time order (fatal
 * otherwise, checked by the consumer-facing next()).
 */

#ifndef ACS_SIM_TRACE_HH
#define ACS_SIM_TRACE_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/workload.hh"

namespace acs {
namespace sim {

/** One request of a replayed or generated trace. */
struct TraceRequest
{
    double arrivalS = 0.0; //!< arrival time (virtual seconds, >= 0)
    int promptLen = 1;     //!< prompt tokens (>= 1)
    int outputLen = 1;     //!< output tokens (>= 1)
};

/**
 * Synthetic diurnal/bursty trace parameters.
 *
 * The instantaneous arrival rate is a sinusoidal envelope around
 * @c baseRatePerS whose peak:trough ratio is @c peakToTrough over one
 * @c periodS cycle, multiplied by @c burstMultiplier whenever the
 * two-state Markov modulation is in its burst state (exponential
 * dwell times @c burstMeanS / @c calmMeanS). The mean envelope rate
 * equals @c baseRatePerS, so fleet-sizing comparisons against a plain
 * Poisson stream at the same rate isolate the *shape* of the traffic.
 */
struct DiurnalTraceSpec
{
    double baseRatePerS = 1.0;   //!< mean arrival rate (> 0)
    double peakToTrough = 3.0;   //!< peak:trough rate ratio (>= 1)
    double periodS = 3600.0;     //!< one diurnal cycle (> 0)

    double burstMultiplier = 1.0; //!< rate multiplier in bursts (>= 1)
    double burstMeanS = 30.0;     //!< mean burst dwell (> 0)
    double calmMeanS = 300.0;     //!< mean calm dwell (> 0)

    LengthDistribution promptLen = LengthDistribution::fixed(512);
    LengthDistribution outputLen = LengthDistribution::fixed(128);

    double horizonS = 600.0;  //!< no arrivals at or after this time
    std::uint64_t seed = 1;   //!< master seed (substreams derive)

    /** Instantaneous rate at time @p t in the given burst state. */
    double rateAt(double t, bool in_burst) const;

    /** Fatal unless every parameter is in range. */
    void validate() const;
};

/**
 * Single-pass streaming request source.
 *
 * Implementations yield requests one at a time in non-decreasing
 * arrival order and are exhausted once next() returns false. They are
 * deliberately not resettable: re-running a study builds a fresh
 * source from the same spec/seed (byte-identical by construction).
 */
class TraceWorkload
{
  public:
    virtual ~TraceWorkload() = default;

    /**
     * Produce the next request into @p out.
     *
     * @return false when the trace is exhausted (out untouched).
     *         Fatal if a source yields decreasing arrival times or
     *         non-positive lengths.
     */
    bool next(TraceRequest &out);

    /** Requests yielded so far. */
    std::uint64_t produced() const { return produced_; }

    /**
     * Open-loop Poisson stream at @p rate_per_s until @p horizon_s:
     * the same arrival process WorkloadSpec's open loop uses, in
     * streaming form.
     */
    static std::unique_ptr<TraceWorkload>
    poisson(double rate_per_s, const LengthDistribution &prompt,
            const LengthDistribution &output, double horizon_s,
            std::uint64_t seed);

    /** Diurnal/bursty synthetic generator (spec validated). */
    static std::unique_ptr<TraceWorkload>
    diurnal(const DiurnalTraceSpec &spec);

    /**
     * Replay a CSV file of `arrival_s,prompt_len,output_len` rows
     * (header row and blank lines skipped; fatal on unreadable paths
     * or malformed rows). Lengths are rounded up to a multiple of
     * @p length_quantum, which bounds the iteration-cost memo key
     * space exactly like LengthDistribution::quantum does.
     */
    static std::unique_ptr<TraceWorkload>
    fromCsvFile(const std::string &path, int length_quantum = 16);

    /** CSV replay from an owned stream (@p label names it in errors). */
    static std::unique_ptr<TraceWorkload>
    fromCsv(std::unique_ptr<std::istream> in, const std::string &label,
            int length_quantum = 16);

    /**
     * Replay a fixed in-memory schedule (sorted by arrival; fatal
     * otherwise). For tests and sanity constructions, not scale.
     */
    static std::unique_ptr<TraceWorkload>
    fixedSchedule(std::vector<TraceRequest> requests);

  protected:
    /** Implementation hook: yield the next raw record. */
    virtual bool produce(TraceRequest &out) = 0;

  private:
    std::uint64_t produced_ = 0;
    double lastArrivalS_ = 0.0;
};

} // namespace sim
} // namespace acs

#endif // ACS_SIM_TRACE_HH
