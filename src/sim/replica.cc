#include "replica.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/ring.hh"
#include "obs/obs.hh"
#include "sim/event.hh"
#include "sim/trace.hh"

namespace acs {
namespace sim {

void
SchedulerConfig::validate() const
{
    fatalIf(maxBatch < 1, "SchedulerConfig: maxBatch must be >= 1");
    fatalIf(maxPrefillBatch < 1,
            "SchedulerConfig: maxPrefillBatch must be >= 1");
    fatalIf(kvMemoryFraction <= 0.0 || kvMemoryFraction > 1.0,
            "SchedulerConfig: kvMemoryFraction must be in (0, 1]");
}

namespace {

/** A request the replica has generated but not yet completed. */
struct InFlight
{
    RequestRecord rec;
    double lastTokenS = 0.0; //!< when its most recent token came out
    int tokensLeft = 0;      //!< decode tokens still to generate
    double kvBytes = 0.0;    //!< reserved full-context KV footprint
};

/** The replica's mutable scheduling state plus result accumulators. */
class ReplicaState
{
  public:
    ReplicaState(const IterationCostModel &cost,
                 const ReplicaConfig &cfg)
        : cost_(cost), cfg_(cfg),
          arrivalRng_(substreamSeed(cfg.workload.seed, 0)),
          lengthRng_(substreamSeed(cfg.workload.seed, 1)),
          kvBudget_(cost.kvBudgetBytes() *
                    cfg.scheduler.kvMemoryFraction),
          events_(cfg.scheduler.queueEngine)
    {}

    /**
     * Trace-replay mode: arrivals and lengths come verbatim from
     * @p trace; the WorkloadSpec (and its RNG streams) is unused.
     */
    ReplicaState(const IterationCostModel &cost,
                 const ReplicaConfig &cfg, TraceWorkload &trace)
        : cost_(cost), cfg_(cfg), trace_(&trace),
          arrivalRng_(substreamSeed(cfg.workload.seed, 0)),
          lengthRng_(substreamSeed(cfg.workload.seed, 1)),
          kvBudget_(cost.kvBudgetBytes() *
                    cfg.scheduler.kvMemoryFraction),
          events_(cfg.scheduler.queueEngine)
    {}

    ReplicaMetrics run();

  private:
    void seedArrivals();
    void generateRequest(double now);
    void scheduleNextOpenLoopArrival(double now);
    void startIteration(double now);
    void finishIteration(double now);
    void retire(InFlight &r, double now);

    const IterationCostModel &cost_;
    const ReplicaConfig &cfg_;
    TraceWorkload *trace_ = nullptr; //!< non-null in replay mode
    TraceRequest pendingTrace_;      //!< next record not yet arrived
    Rng arrivalRng_;
    Rng lengthRng_;
    const double kvBudget_;

    EventQueue events_;
    common::RingQueue<InFlight> waiting_; //!< FIFO admission queue
    std::vector<InFlight> prefilling_; //!< admitted, prefill in flight
    std::vector<InFlight> active_;     //!< decode-phase requests
    double kvUsed_ = 0.0;
    bool busy_ = false;           //!< an iteration is in flight
    bool prefillInFlight_ = false; //!< kind of the busy iteration
    std::uint64_t nextId_ = 0;

    ReplicaMetrics metrics_;
};

void
ReplicaState::seedArrivals()
{
    if (trace_) {
        if (trace_->next(pendingTrace_))
            events_.push(pendingTrace_.arrivalS,
                         EventKind::ARRIVAL);
        return;
    }
    const WorkloadSpec &w = cfg_.workload;
    if (w.openLoop()) {
        const double first =
            sampleExponentialS(arrivalRng_, w.arrivalRatePerS);
        if (first < w.horizonS)
            events_.push(first, EventKind::ARRIVAL);
        return;
    }
    // Closed loop: every client issues its first request at t = 0;
    // the queue's FIFO tie-break keeps the order deterministic.
    for (int c = 0; c < w.closedLoopClients; ++c)
        events_.push(0.0, EventKind::ARRIVAL);
}

void
ReplicaState::generateRequest(double now)
{
    const WorkloadSpec &w = cfg_.workload;
    InFlight r;
    r.rec.id = nextId_++;
    r.rec.arrivalS = now;
    if (trace_) {
        r.rec.promptLen = pendingTrace_.promptLen;
        r.rec.outputLen = pendingTrace_.outputLen;
    } else {
        r.rec.promptLen = w.promptLen.sample(lengthRng_);
        r.rec.outputLen = w.outputLen.sample(lengthRng_);
    }
    r.kvBytes = cost_.kvBytesPerTokenPerDevice() *
                (r.rec.promptLen + r.rec.outputLen);
    // Branch-then-throw: fatalIf would build the message (two
    // to_string calls and a heap string) on every request.
    if (r.kvBytes > kvBudget_) {
        fatal("simulateReplica: a single request's KV footprint (" +
              std::to_string(r.kvBytes) +
              " B/device) exceeds the KV budget (" +
              std::to_string(kvBudget_) +
              " B/device); the workload cannot be served");
    }
    waiting_.push_back(std::move(r));
    ++metrics_.arrivals;
}

void
ReplicaState::scheduleNextOpenLoopArrival(double now)
{
    if (trace_) {
        if (trace_->next(pendingTrace_))
            events_.push(pendingTrace_.arrivalS,
                         EventKind::ARRIVAL);
        return;
    }
    const WorkloadSpec &w = cfg_.workload;
    const double next =
        now + sampleExponentialS(arrivalRng_, w.arrivalRatePerS);
    if (next < w.horizonS)
        events_.push(next, EventKind::ARRIVAL);
}

void
ReplicaState::startIteration(double now)
{
    if (busy_)
        return;
    const SchedulerConfig &s = cfg_.scheduler;

    // Admit waiting prompts first (prefill priority): up to the
    // prefill cap, the running-request cap, and the KV budget, in
    // arrival order (no reordering past the FIFO head).
    int admitted = 0;
    int max_prompt = 0;
    while (!waiting_.empty() && admitted < s.maxPrefillBatch &&
           static_cast<int>(active_.size() + prefilling_.size()) <
               s.maxBatch) {
        InFlight &head = waiting_.front();
        if (kvUsed_ + head.kvBytes > kvBudget_)
            break;
        kvUsed_ += head.kvBytes;
        head.rec.admitS = now;
        max_prompt = std::max(max_prompt, head.rec.promptLen);
        prefilling_.push_back(std::move(head));
        waiting_.pop_front();
        ++admitted;
    }

    if (admitted > 0) {
        metrics_.queueDepth.record(waiting_.size());
        const double latency =
            cost_.prefillS(admitted, max_prompt);
        ++metrics_.prefillIterations;
        busy_ = true;
        prefillInFlight_ = true;
        events_.push(now + latency, EventKind::ITER_DONE);
        return;
    }

    if (!active_.empty()) {
        metrics_.queueDepth.record(waiting_.size());
        const double latency =
            cost_.decodeStepS(static_cast<int>(active_.size()));
        ++metrics_.decodeIterations;
        busy_ = true;
        prefillInFlight_ = false;
        events_.push(now + latency, EventKind::ITER_DONE);
    }
    // Otherwise idle: the next ARRIVAL/CLIENT_WAKE restarts us.
}

void
ReplicaState::retire(InFlight &r, double now)
{
    r.rec.finishS = now;
    kvUsed_ -= r.kvBytes;
    ++metrics_.completed;
    metrics_.ttftHist.record(r.rec.ttftS());
    if (cfg_.recordRequests)
        metrics_.requests.push_back(r.rec);
    if (!cfg_.workload.openLoop()) {
        const double wake = now + cfg_.workload.thinkTimeS;
        if (wake < cfg_.workload.horizonS)
            events_.push(wake, EventKind::CLIENT_WAKE);
    }
}

void
ReplicaState::finishIteration(double now)
{
    busy_ = false;
    if (prefillInFlight_) {
        // Every admitted prompt emits its first token now.
        metrics_.generatedTokens += prefilling_.size();
        for (InFlight &r : prefilling_) {
            r.rec.firstTokenS = now;
            r.lastTokenS = now;
            r.tokensLeft = r.rec.outputLen - 1;
            if (r.tokensLeft == 0)
                retire(r, now);
            else
                active_.push_back(std::move(r));
        }
        prefilling_.clear();
        return;
    }

    // One decode token per running request; retire finished ones
    // in place (stable compaction keeps batch order deterministic).
    metrics_.generatedTokens += active_.size();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
        InFlight &r = active_[i];
        const double gap = now - r.lastTokenS;
        metrics_.tbtHist.record(gap);
        if (cfg_.recordTbtGaps)
            metrics_.tbtGapsS.push_back(gap);
        r.lastTokenS = now;
        --r.tokensLeft;
        if (r.tokensLeft == 0) {
            retire(r, now);
        } else {
            if (keep != i)
                active_[keep] = std::move(r);
            ++keep;
        }
    }
    active_.resize(keep);
}

ReplicaMetrics
ReplicaState::run()
{
    const obs::TraceSpan span("sim.replica.run");
    cfg_.workload.validate();
    cfg_.scheduler.validate();
    fatalIf(kvBudget_ <= 0.0,
            "simulateReplica: model weights leave no HBM for KV "
            "cache on this device");

    // Steady-state in-flight events: one ITER_DONE plus one pending
    // arrival (or every closed-loop client's wake-up). Warming the
    // queue and the batch vectors up front keeps the event loop
    // allocation-free.
    events_.reserve(
        4 + static_cast<std::size_t>(
                std::max(0, cfg_.workload.closedLoopClients)));
    prefilling_.reserve(
        static_cast<std::size_t>(cfg_.scheduler.maxPrefillBatch));
    active_.reserve(static_cast<std::size_t>(cfg_.scheduler.maxBatch));

    seedArrivals();
    double now = 0.0;
    while (!events_.empty()) {
        const Event e = events_.pop();
        now = e.timeS;
        switch (e.kind) {
          case EventKind::ARRIVAL:
            generateRequest(now);
            if (cfg_.workload.openLoop())
                scheduleNextOpenLoopArrival(now);
            startIteration(now);
            break;
          case EventKind::CLIENT_WAKE:
            generateRequest(now);
            startIteration(now);
            break;
          case EventKind::ITER_DONE:
            finishIteration(now);
            startIteration(now);
            break;
          case EventKind::KV_DONE:
            panic("simulateReplica: KV_DONE is a cluster-level "
                  "event; replicas never schedule it");
        }
    }
    panicIf(!waiting_.empty() || !active_.empty() ||
                !prefilling_.empty(),
            "simulateReplica: event queue drained with requests "
            "still in flight");
    metrics_.lastEventS = now;

    if (obs::enabled()) {
        obs::counterAdd("sim.iterations.prefill",
                        metrics_.prefillIterations);
        obs::counterAdd("sim.iterations.decode",
                        metrics_.decodeIterations);
        obs::counterAdd("sim.requests.completed",
                        metrics_.completed);
        obs::counterAdd("sim.tokens.generated",
                        metrics_.generatedTokens);
    }
    return metrics_;
}

} // anonymous namespace

ReplicaMetrics
simulateReplica(const IterationCostModel &cost,
                const ReplicaConfig &cfg)
{
    return ReplicaState(cost, cfg).run();
}

ReplicaMetrics
simulateReplica(const IterationCostModel &cost,
                const SchedulerConfig &sched, TraceWorkload &trace)
{
    ReplicaConfig cfg;
    cfg.scheduler = sched;
    return ReplicaState(cost, cfg, trace).run();
}

ReplicaMetrics
simulateReplica(const IterationCostModel &cost,
                const ReplicaConfig &cfg, TraceWorkload &trace)
{
    return ReplicaState(cost, cfg, trace).run();
}

} // namespace sim
} // namespace acs
