#include "cost_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "model/ops.hh"
#include "obs/obs.hh"

namespace acs {
namespace sim {

IterationCostModel::IterationCostModel(
    const hw::HardwareConfig &cfg,
    const model::TransformerConfig &model_cfg,
    const model::InferenceSetting &reference,
    const perf::SystemConfig &sys, const perf::PerfParams &params)
    : sim_(cfg, params), modelCfg_(model_cfg), ref_(reference),
      sys_(sys)
{
    modelCfg_.validate();
    ref_.validate();
    fatalIf(sys_.tensorParallel < 1,
            "IterationCostModel: tensorParallel must be >= 1");

    weightBytes_ = static_cast<double>(modelCfg_.totalParams()) *
                   ref_.bytesPerValue / sys_.tensorParallel;

    // KV bytes per token of one request, per device: the per-layer
    // helper at batch 1 and context 1 isolates exactly that.
    model::InferenceSetting one = ref_;
    one.batch = 1;
    kvBytesPerToken_ =
        model::kvCacheBytesPerLayer(modelCfg_, one, 1,
                                    sys_.tensorParallel) *
        modelCfg_.numLayers;

    kvBudget_ = std::max(0.0, cfg.memCapacityBytes - weightBytes_);
}

double
IterationCostModel::prefillS(int batch, int prompt_len) const
{
    fatalIf(batch < 1, "prefillS: batch must be >= 1");
    fatalIf(prompt_len < 1, "prefillS: prompt_len must be >= 1");

    const std::pair<int, int> key{batch, prompt_len};
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = prefillMemo_.find(key);
        if (it != prefillMemo_.end()) {
            obs::counterAdd("sim.cost.prefill_hits");
            return it->second;
        }
    }

    // Same computation as InferenceSimulator::run's TTFT: one layer's
    // prefill latency times the layer count (bit-exact; the pinning
    // test in tests/test_sim.cpp relies on it).
    model::InferenceSetting setting = ref_;
    setting.batch = batch;
    setting.inputLen = prompt_len;
    const model::LayerGraph graph = model::buildPrefillGraph(
        modelCfg_, setting, sys_.tensorParallel);
    const double latency =
        sim_.simulateLayer(graph, sys_.tensorParallel).latencyS *
        modelCfg_.numLayers;

    obs::counterAdd("sim.cost.prefill_misses");
    std::lock_guard<std::mutex> lock(mu_);
    prefillMemo_.emplace(key, latency);
    return latency;
}

double
IterationCostModel::decodeStepS(int batch) const
{
    fatalIf(batch < 1, "decodeStepS: batch must be >= 1");

    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = decodeMemo_.find(batch);
        if (it != decodeMemo_.end()) {
            obs::counterAdd("sim.cost.decode_hits");
            return it->second;
        }
    }

    // Mirrors InferenceSimulator::run's TBT: the decode graph at the
    // reference setting's representative context length.
    model::InferenceSetting setting = ref_;
    setting.batch = batch;
    const model::LayerGraph graph = model::buildDecodeGraph(
        modelCfg_, setting, sys_.tensorParallel);
    const double latency =
        sim_.simulateLayer(graph, sys_.tensorParallel).latencyS *
        modelCfg_.numLayers;

    obs::counterAdd("sim.cost.decode_misses");
    std::lock_guard<std::mutex> lock(mu_);
    decodeMemo_.emplace(batch, latency);
    return latency;
}

std::size_t
IterationCostModel::memoMisses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return prefillMemo_.size() + decodeMemo_.size();
}

} // namespace sim
} // namespace acs
