#include "cost_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "model/ops.hh"
#include "obs/obs.hh"

namespace acs {
namespace sim {

namespace {

/**
 * Non-zero packed keys for the flat tables: tag bit 62 for prefill
 * (batch in the high word, length in the low), bit 63 for decode.
 * batch and prompt_len are positive ints, so they fit and the spaces
 * never collide.
 */
std::uint64_t
prefillKey(int batch, int prompt_len)
{
    return (1ULL << 62) |
           (static_cast<std::uint64_t>(batch) << 32) |
           static_cast<std::uint64_t>(prompt_len);
}

std::uint64_t
decodeKey(int batch)
{
    return (1ULL << 63) | static_cast<std::uint64_t>(batch);
}

} // anonymous namespace

IterationCostModel::IterationCostModel(
    const hw::HardwareConfig &cfg,
    const model::TransformerConfig &model_cfg,
    const model::InferenceSetting &reference,
    const perf::SystemConfig &sys, const perf::PerfParams &params,
    MemoEngine memo)
    : sim_(cfg, params), modelCfg_(model_cfg), ref_(reference),
      sys_(sys), memo_(memo)
{
    modelCfg_.validate();
    ref_.validate();
    fatalIf(sys_.tensorParallel < 1,
            "IterationCostModel: tensorParallel must be >= 1");

    weightBytes_ = static_cast<double>(modelCfg_.totalParams()) *
                   ref_.bytesPerValue / sys_.tensorParallel;

    // KV bytes per token of one request, per device: the per-layer
    // helper at batch 1 and context 1 isolates exactly that.
    model::InferenceSetting one = ref_;
    one.batch = 1;
    kvBytesPerToken_ =
        model::kvCacheBytesPerLayer(modelCfg_, one, 1,
                                    sys_.tensorParallel) *
        modelCfg_.numLayers;

    kvBudget_ = std::max(0.0, cfg.memCapacityBytes - weightBytes_);
}

double
IterationCostModel::computePrefillS(int batch, int prompt_len) const
{
    // Same computation as InferenceSimulator::run's TTFT: one layer's
    // prefill latency times the layer count (bit-exact; the pinning
    // test in tests/test_sim.cpp relies on it).
    model::InferenceSetting setting = ref_;
    setting.batch = batch;
    setting.inputLen = prompt_len;
    const model::LayerGraph graph = model::buildPrefillGraph(
        modelCfg_, setting, sys_.tensorParallel);
    return sim_.simulateLayer(graph, sys_.tensorParallel).latencyS *
           modelCfg_.numLayers;
}

double
IterationCostModel::computeDecodeStepS(int batch) const
{
    // Mirrors InferenceSimulator::run's TBT: the decode graph at the
    // reference setting's representative context length.
    model::InferenceSetting setting = ref_;
    setting.batch = batch;
    const model::LayerGraph graph = model::buildDecodeGraph(
        modelCfg_, setting, sys_.tensorParallel);
    return sim_.simulateLayer(graph, sys_.tensorParallel).latencyS *
           modelCfg_.numLayers;
}

double
IterationCostModel::prefillS(int batch, int prompt_len) const
{
    // Branch-then-throw: fatalIf would build its message string on
    // every lookup, and this runs once per scheduler iteration.
    if (batch < 1)
        fatal("prefillS: batch must be >= 1");
    if (prompt_len < 1)
        fatal("prefillS: prompt_len must be >= 1");

    if (memo_ == MemoEngine::FLAT) {
        const std::uint64_t key = prefillKey(batch, prompt_len);
        double value = 0.0;
        if (prefillFlat_.find(key, &value)) {
            obs::counterAdd("sim.cost.prefill_hits");
            return value;
        }
        if (prefillFlat_.overflows() > 0 &&
            overflow_.find(key, &value)) {
            obs::counterAdd("sim.cost.prefill_hits");
            return value;
        }
        value = computePrefillS(batch, prompt_len);
        obs::counterAdd("sim.cost.prefill_misses");
        if (!prefillFlat_.insert(key, value))
            overflow_.insert(key, value);
        return value;
    }

    const std::pair<int, int> key{batch, prompt_len};
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = prefillMemo_.find(key);
        if (it != prefillMemo_.end()) {
            obs::counterAdd("sim.cost.prefill_hits");
            return it->second;
        }
    }
    const double latency = computePrefillS(batch, prompt_len);
    obs::counterAdd("sim.cost.prefill_misses");
    std::lock_guard<std::mutex> lock(mu_);
    prefillMemo_.emplace(key, latency);
    return latency;
}

double
IterationCostModel::decodeStepS(int batch) const
{
    if (batch < 1)
        fatal("decodeStepS: batch must be >= 1");

    if (memo_ == MemoEngine::FLAT) {
        const std::uint64_t key = decodeKey(batch);
        double value = 0.0;
        if (decodeFlat_.find(key, &value)) {
            obs::counterAdd("sim.cost.decode_hits");
            return value;
        }
        if (decodeFlat_.overflows() > 0 &&
            overflow_.find(key, &value)) {
            obs::counterAdd("sim.cost.decode_hits");
            return value;
        }
        value = computeDecodeStepS(batch);
        obs::counterAdd("sim.cost.decode_misses");
        if (!decodeFlat_.insert(key, value))
            overflow_.insert(key, value);
        return value;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = decodeMemo_.find(batch);
        if (it != decodeMemo_.end()) {
            obs::counterAdd("sim.cost.decode_hits");
            return it->second;
        }
    }
    const double latency = computeDecodeStepS(batch);
    obs::counterAdd("sim.cost.decode_misses");
    std::lock_guard<std::mutex> lock(mu_);
    decodeMemo_.emplace(batch, latency);
    return latency;
}

std::size_t
IterationCostModel::memoMisses() const
{
    if (memo_ == MemoEngine::FLAT)
        return prefillFlat_.entries() + decodeFlat_.entries() +
               overflow_.stats().entries;
    std::lock_guard<std::mutex> lock(mu_);
    return prefillMemo_.size() + decodeMemo_.size();
}

} // namespace sim
} // namespace acs
