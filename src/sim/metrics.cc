#include "metrics.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace acs {
namespace sim {

LatencyRollup
LatencyRollup::fromSamples(const std::vector<double> &samples)
{
    LatencyRollup r;
    r.count = samples.size();
    if (samples.empty())
        return r;
    double total = 0.0;
    for (double s : samples) {
        total += s;
        r.maxS = std::max(r.maxS, s);
    }
    r.meanS = total / samples.size();
    r.p50S = percentile(samples, 50.0);
    r.p95S = percentile(samples, 95.0);
    r.p99S = percentile(samples, 99.0);
    return r;
}

void
QueueDepthHistogram::record(std::uint64_t depth)
{
    const std::size_t bucket = std::bit_width(depth);
    if (buckets.size() <= bucket)
        buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
    maxDepth = std::max(maxDepth, depth);
    ++samples;
}

void
QueueDepthHistogram::merge(const QueueDepthHistogram &other)
{
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    maxDepth = std::max(maxDepth, other.maxDepth);
    samples += other.samples;
}

namespace {

/**
 * Bucket index of latency @p s: octaves are frexp exponents clamped
 * to [-64, 64] (covering ~5e-20 s to ~1.8e19 s), each split into
 * kSubBuckets linear slices of the mantissa range [0.5, 1). Bucket 0
 * collects non-positive samples.
 */
std::size_t
latencyBucket(double s)
{
    if (s <= 0.0)
        return 0;
    int exp = 0;
    const double mantissa = std::frexp(s, &exp); // in [0.5, 1)
    exp = std::clamp(exp, -64, 64);
    const int sub = std::min(
        LatencyHistogram::kSubBuckets - 1,
        static_cast<int>((mantissa - 0.5) * 2.0 *
                         LatencyHistogram::kSubBuckets));
    return 1 +
           static_cast<std::size_t>(exp + 64) *
               LatencyHistogram::kSubBuckets +
           static_cast<std::size_t>(sub);
}

/** Representative (midpoint) latency of bucket @p bucket. */
double
latencyBucketMidS(std::size_t bucket)
{
    if (bucket == 0)
        return 0.0;
    const std::size_t i = bucket - 1;
    const int exp =
        static_cast<int>(i / LatencyHistogram::kSubBuckets) - 64;
    const int sub =
        static_cast<int>(i % LatencyHistogram::kSubBuckets);
    const double mantissa =
        0.5 + (sub + 0.5) /
                  (2.0 * LatencyHistogram::kSubBuckets);
    return std::ldexp(mantissa, exp);
}

} // anonymous namespace

void
LatencyHistogram::record(double s)
{
    // The memo's initial state is consistent: -1.0 is non-positive,
    // so it maps to bucket 0 like every s <= 0.
    if (s != lastS) {
        lastS = s;
        lastBucket = latencyBucket(s);
    }
    const std::size_t bucket = lastBucket;
    if (buckets.size() <= bucket)
        buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
    ++count;
    sumS += s;
    maxS = std::max(maxS, s);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (std::size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sumS += other.sumS;
    maxS = std::max(maxS, other.maxS);
}

double
LatencyHistogram::percentileS(double pct) const
{
    fatalIf(pct <= 0.0 || pct > 100.0,
            "LatencyHistogram: percentile must be in (0, 100]");
    if (count == 0)
        return 0.0;
    // Rank of the order statistic: the smallest bucket whose
    // cumulative count covers pct% of the samples.
    const double target = pct / 100.0 * static_cast<double>(count);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (static_cast<double>(cum) >= target)
            return std::min(latencyBucketMidS(i), maxS);
    }
    return maxS;
}

void
SloTargets::validate() const
{
    fatalIf(ttftMaxS <= 0.0, "SloTargets: ttftMaxS must be > 0");
    fatalIf(tbtMaxS <= 0.0, "SloTargets: tbtMaxS must be > 0");
    fatalIf(percentile <= 0.0 || percentile > 100.0,
            "SloTargets: percentile must be in (0, 100]");
}

LatencyRollup
ReplicaMetrics::ttft() const
{
    std::vector<double> samples;
    samples.reserve(requests.size());
    for (const RequestRecord &r : requests)
        samples.push_back(r.ttftS());
    return LatencyRollup::fromSamples(samples);
}

LatencyRollup
ReplicaMetrics::tbt() const
{
    return LatencyRollup::fromSamples(tbtGapsS);
}

double
ReplicaMetrics::attainment(const SloTargets &slo) const
{
    slo.validate();
    if (requests.empty())
        return 1.0;
    std::size_t met = 0;
    for (const RequestRecord &r : requests) {
        const bool ttft_ok = r.ttftS() <= slo.ttftMaxS;
        const bool tbt_ok =
            r.outputLen < 2 || r.meanTbtS() <= slo.tbtMaxS;
        met += ttft_ok && tbt_ok;
    }
    return static_cast<double>(met) / requests.size();
}

double
ReplicaMetrics::goodputTokensPerS(const SloTargets &slo) const
{
    slo.validate();
    if (lastEventS <= 0.0)
        return 0.0;
    double tokens = 0.0;
    for (const RequestRecord &r : requests) {
        const bool ttft_ok = r.ttftS() <= slo.ttftMaxS;
        const bool tbt_ok =
            r.outputLen < 2 || r.meanTbtS() <= slo.tbtMaxS;
        if (ttft_ok && tbt_ok)
            tokens += r.outputLen;
    }
    return tokens / lastEventS;
}

bool
ReplicaMetrics::meetsSlo(const SloTargets &slo) const
{
    slo.validate();
    if (requests.empty())
        return true;
    std::vector<double> ttft_samples;
    ttft_samples.reserve(requests.size());
    for (const RequestRecord &r : requests)
        ttft_samples.push_back(r.ttftS());
    if (percentile(ttft_samples, slo.percentile) > slo.ttftMaxS)
        return false;
    if (tbtGapsS.empty())
        return true;
    return percentile(tbtGapsS, slo.percentile) <= slo.tbtMaxS;
}

void
ReplicaMetrics::merge(const ReplicaMetrics &other)
{
    requests.insert(requests.end(), other.requests.begin(),
                    other.requests.end());
    tbtGapsS.insert(tbtGapsS.end(), other.tbtGapsS.begin(),
                    other.tbtGapsS.end());
    ttftHist.merge(other.ttftHist);
    tbtHist.merge(other.tbtHist);
    queueDepth.merge(other.queueDepth);
    prefillIterations += other.prefillIterations;
    decodeIterations += other.decodeIterations;
    generatedTokens += other.generatedTokens;
    arrivals += other.arrivals;
    completed += other.completed;
    lastEventS = std::max(lastEventS, other.lastEventS);
}

} // namespace sim
} // namespace acs
