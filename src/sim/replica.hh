/**
 * @file
 * One tensor-parallel serving replica under continuous batching.
 *
 * The replica owns an admission queue, a set of in-flight requests,
 * and a KV-cache memory budget. Scheduling follows the
 * continuous-batching discipline of production inference engines
 * (Orca/vLLM): iterations are scheduled back to back; each iteration
 * is either a prefill step over newly admitted prompts or one decode
 * step emitting one token for every running request. Prefill takes
 * priority — which is exactly what creates the decode stalls
 * ("prefill/decode interference") whose tail the closed-form model in
 * src/serve cannot represent.
 *
 * The event loop is strictly single-threaded and deterministic: two
 * runs with the same WorkloadSpec (same seed) produce byte-identical
 * metrics. Fleet-level parallelism happens across replicas
 * (sim/fleet.hh), never inside one.
 */

#ifndef ACS_SIM_REPLICA_HH
#define ACS_SIM_REPLICA_HH

#include "sim/cost_model.hh"
#include "sim/event.hh"
#include "sim/metrics.hh"
#include "sim/workload.hh"

namespace acs {
namespace sim {

class TraceWorkload;

/** Continuous-batching policy knobs. */
struct SchedulerConfig
{
    /**
     * Maximum concurrently running requests (decode batch cap). The
     * analytical decode model saturates near the reference batch, so
     * the default matches the paper's standard setting.
     */
    int maxBatch = 32;

    /**
     * Maximum prompts admitted into a single prefill iteration.
     * Larger values amortize prefill over more requests but lengthen
     * the decode stall each prefill causes.
     */
    int maxPrefillBatch = 4;

    /**
     * Fraction of the post-weights HBM capacity usable for KV cache
     * (the rest models activations/fragmentation headroom). Admission
     * reserves a request's full-context footprint up front, so an
     * admitted request can never be evicted mid-generation.
     */
    double kvMemoryFraction = 0.9;

    /**
     * Pending-event structure of the simulation this scheduler
     * drives. Purely a performance switch: both engines pop in
     * identical (time, seq) order, so results are bit-identical
     * (docs/SERVING.md). Rides along here because SchedulerConfig
     * reaches every simulation entry point — replica, fleet sizing,
     * and cluster pools.
     */
    QueueEngine queueEngine = QueueEngine::CALENDAR;

    /** Fatal unless caps are positive and the fraction in (0, 1]. */
    void validate() const;
};

/** Inputs of one replica simulation. */
struct ReplicaConfig
{
    WorkloadSpec workload;
    SchedulerConfig scheduler;

    /**
     * Keep per-request records / per-gap samples in the metrics.
     * Exact percentiles need them; trace-scale runs (millions of
     * requests) turn them off — the counters and the streaming
     * histograms are populated either way — to keep memory O(batch)
     * and skip the gigabyte-scale vector growth and O(n log n)
     * percentile sorts. attainment()/goodputTokensPerS()/meetsSlo()
     * need recordRequests/recordTbtGaps respectively.
     */
    bool recordRequests = true;
    bool recordTbtGaps = true;
};

/**
 * Simulate one replica to completion and return its metrics.
 *
 * Runs the discrete-event loop: arrivals (open- or closed-loop) feed
 * the admission queue, the scheduler issues prefill/decode iterations
 * whose latencies come from @p cost, and every completed request is
 * recorded. Arrivals stop at the workload horizon; the queue then
 * drains, so all generated requests complete.
 *
 * Deterministic: a pure function of (@p cost's inputs, @p cfg).
 */
ReplicaMetrics simulateReplica(const IterationCostModel &cost,
                               const ReplicaConfig &cfg);

/**
 * Simulate one replica replaying @p trace instead of sampling a
 * WorkloadSpec: arrivals and lengths come verbatim from the trace
 * (consumed single-pass), scheduling is identical to the
 * WorkloadSpec overload. This is the monolithic reference the
 * disaggregated cluster (sim/cluster.hh) is pinned against: a
 * single-member cluster on the same trace reproduces this function's
 * metrics bit-exactly (tests/test_cluster.cpp).
 */
ReplicaMetrics simulateReplica(const IterationCostModel &cost,
                               const SchedulerConfig &sched,
                               TraceWorkload &trace);

/**
 * Trace-replay overload taking a full ReplicaConfig so callers can
 * set the record switches (cfg.workload is ignored — arrivals and
 * lengths come from the trace).
 */
ReplicaMetrics simulateReplica(const IterationCostModel &cost,
                               const ReplicaConfig &cfg,
                               TraceWorkload &trace);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_REPLICA_HH
