#include "workload.hh"

#include <cmath>

#include "common/logging.hh"

namespace acs {
namespace sim {

LengthDistribution
LengthDistribution::fixed(int len)
{
    LengthDistribution d;
    d.kind = Kind::FIXED;
    d.fixedLen = len;
    d.validate();
    return d;
}

LengthDistribution
LengthDistribution::uniform(int lo, int hi, int quantum)
{
    LengthDistribution d;
    d.kind = Kind::UNIFORM;
    d.minLen = lo;
    d.maxLen = hi;
    d.quantum = quantum;
    d.validate();
    return d;
}

namespace {

/** Round @p len up to a positive multiple of @p quantum. */
int
quantize(int len, int quantum)
{
    if (len < 1)
        len = 1;
    const int rem = len % quantum;
    return rem == 0 ? len : len + (quantum - rem);
}

} // anonymous namespace

int
LengthDistribution::sample(Rng &rng) const
{
    validate();
    switch (kind) {
      case Kind::FIXED:
        return quantize(fixedLen, quantum);
      case Kind::UNIFORM: {
        const auto span =
            static_cast<std::uint64_t>(maxLen - minLen) + 1;
        const int len =
            minLen + static_cast<int>(rng.below(span));
        return quantize(len, quantum);
      }
    }
    panic("LengthDistribution: unhandled kind");
}

double
LengthDistribution::meanLen() const
{
    validate();
    if (kind == Kind::FIXED)
        return quantize(fixedLen, quantum);
    return (static_cast<double>(minLen) + maxLen) / 2.0;
}

int
LengthDistribution::maxPossibleLen() const
{
    validate();
    const int raw = kind == Kind::FIXED ? fixedLen : maxLen;
    return quantize(raw, quantum);
}

void
LengthDistribution::validate() const
{
    // Branch-then-throw: sample() validates per draw, so fatalIf's
    // eager message strings would allocate on every arrival.
    if (quantum < 1)
        fatal("LengthDistribution: quantum must be >= 1");
    if (kind == Kind::FIXED) {
        if (fixedLen < 1)
            fatal("LengthDistribution: fixedLen must be >= 1");
        return;
    }
    if (minLen < 1)
        fatal("LengthDistribution: minLen must be >= 1");
    if (maxLen < minLen)
        fatal("LengthDistribution: maxLen must be >= minLen");
}

void
WorkloadSpec::validate() const
{
    fatalIf(closedLoopClients < 0,
            "WorkloadSpec: closedLoopClients must be >= 0");
    if (openLoop()) {
        fatalIf(arrivalRatePerS <= 0.0,
                "WorkloadSpec: open-loop arrivalRatePerS must be > 0");
    } else {
        fatalIf(thinkTimeS < 0.0,
                "WorkloadSpec: thinkTimeS must be >= 0");
    }
    fatalIf(horizonS <= 0.0, "WorkloadSpec: horizonS must be > 0");
    promptLen.validate();
    outputLen.validate();
}

std::uint64_t
substreamSeed(std::uint64_t seed, std::uint64_t stream)
{
    // Decorrelate the pair with one extra SplitMix64 step; the golden
    // ratio multiplier spreads adjacent stream indices across the
    // whole state space.
    return Rng(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1))).next();
}

double
sampleExponentialS(Rng &rng, double rate_per_s)
{
    if (rate_per_s <= 0.0)
        panic("sampleExponentialS: rate must be > 0");
    // uniform() is in [0, 1): log1p(-u) is finite for every draw.
    return -std::log1p(-rng.uniform()) / rate_per_s;
}

} // namespace sim
} // namespace acs
