/**
 * @file
 * Pluggable request-routing policies for heterogeneous serving
 * clusters.
 *
 * A cluster (sim/cluster.hh) holds pools of replicas built from
 * different hw presets; every request (and, under disaggregation,
 * every phase of it) must be assigned to one member. The policy sees
 * a deterministic snapshot of each eligible member — queue depth,
 * in-flight count, single-request phase service rate, hourly cost —
 * and picks one. All built-in policies break ties on the lowest
 * member index, so a routing decision is a pure function of the
 * snapshot and the cluster's byte-reproducibility contract carries
 * through mixed fleets.
 */

#ifndef ACS_SIM_ROUTING_HH
#define ACS_SIM_ROUTING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace acs {
namespace sim {

/** What a pool's members do in the disaggregated split. */
enum class PoolRole
{
    MONOLITHIC, //!< runs both phases (classic colocated serving)
    PREFILL,    //!< prompt processing only; KV ships out afterwards
    DECODE,     //!< token generation from shipped-in KV
};

/** Readable name of @p role ("monolithic" / "prefill" / "decode"). */
std::string toString(PoolRole role);

/** Which phase of a request is being placed. */
enum class RoutePhase
{
    PREFILL, //!< initial placement at arrival
    DECODE,  //!< placement of the decode phase after KV transfer
};

/** Built-in routing policies. */
enum class RoutingPolicyKind
{
    JOIN_SHORTEST_QUEUE, //!< fewest queued + in-flight requests
    PHASE_AFFINITY,      //!< least load per unit phase service rate
    COST_WEIGHTED,       //!< least load-weighted $/unit service rate
};

/** Readable name of @p kind ("jsq" / "phase-affinity" / ...). */
std::string toString(RoutingPolicyKind kind);

/** Inverse of toString (fatal on unknown names). */
RoutingPolicyKind parseRoutingPolicy(const std::string &name);

/** Deterministic snapshot of one eligible member at decision time. */
struct MemberView
{
    int pool = 0;   //!< pool index within the cluster
    int member = 0; //!< flattened member index (global, unique)
    PoolRole role = PoolRole::MONOLITHIC;

    std::uint64_t queued = 0;   //!< requests waiting for admission
    std::uint64_t inFlight = 0; //!< admitted, not yet phase-complete

    /**
     * Single-request service rate of the phase being routed
     * (1 / prefillS(1, promptLen) or 1 / decodeStepS(1)); a
     * batch-free measure of how fast this hardware runs this phase.
     */
    double phaseServiceRatePerS = 0.0;

    /** Amortized capex + power of one replica ($/hour). */
    double hourlyCostUsd = 0.0;
};

/** The request being placed (lengths known at arrival). */
struct RouteRequest
{
    std::uint64_t id = 0;
    int promptLen = 1;
    int outputLen = 1;
};

/**
 * A routing decision rule. Implementations must be stateless (the
 * built-ins are shared const singletons) and must pick purely from
 * the arguments so runs stay deterministic.
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    /** Policy name for logs and CSV columns. */
    virtual std::string name() const = 0;

    /**
     * Choose one of @p candidates (non-empty, in ascending member
     * index order) for @p phase of @p req. Returns an index into
     * @p candidates.
     */
    virtual std::size_t
    pick(RoutePhase phase, const RouteRequest &req,
         const std::vector<MemberView> &candidates) const = 0;
};

/** Shared singleton of the built-in policy @p kind (never null). */
const RoutingPolicy *routingPolicy(RoutingPolicyKind kind);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_ROUTING_HH
