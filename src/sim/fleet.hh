/**
 * @file
 * Fleet sizing against percentile SLOs: how many replicas does it
 * take to serve an aggregate request rate?
 *
 * This is the simulator's headline "sanctions tax" estimator: where
 * serve::planFleet divides demand by steady-state throughput,
 * sizeFleet binary-searches the smallest replica count whose
 * *simulated* p99 TTFT/TBT meet the objectives under Poisson load —
 * queueing, batching, and prefill interference included. The two
 * agree in the low-load limit and diverge exactly when burstiness
 * binds (asserted in tests/test_sim.cpp).
 */

#ifndef ACS_SIM_FLEET_HH
#define ACS_SIM_FLEET_HH

#include "sim/cost_model.hh"
#include "sim/metrics.hh"
#include "sim/replica.hh"

namespace acs {
namespace common {
class ThreadPool;
} // namespace common

namespace sim {

/** Aggregate demand offered to a whole fleet. */
struct FleetDemand
{
    /** Aggregate open-loop request rate across the fleet (req/s). */
    double ratePerS = 1.0;

    LengthDistribution promptLen = LengthDistribution::fixed(2048);
    LengthDistribution outputLen = LengthDistribution::fixed(256);

    /** Arrival horizon of each probe simulation (virtual seconds). */
    double horizonS = 600.0;

    /** Master seed; replica i runs substream i deterministically. */
    std::uint64_t seed = 1;

    /** Fatal unless rate/horizon are positive. */
    void validate() const;
};

/** Outcome of a fleet-sizing search. */
struct FleetSizingResult
{
    bool feasible = false; //!< an SLO-meeting size was found
    int replicas = 0;      //!< smallest SLO-meeting replica count
    long devices = 0;      //!< replicas x tensorParallel
    int probes = 0;        //!< fleet sizes simulated by the search

    /**
     * Merged metrics of all replicas at the chosen size (replica-
     * index merge order, so identical regardless of thread count).
     */
    ReplicaMetrics aggregate;
};

/**
 * Smallest replica count meeting @p slo at @p demand.
 *
 * The aggregate Poisson stream splits evenly across replicas
 * (probabilistic routing: each replica sees an independent Poisson
 * stream at rate/R). Feasibility is monotone in R — fewer requests
 * per replica can only shrink the tails — so the search probes
 * geometrically up from @p hint_replicas until feasible, then binary
 * searches the bracket. Replica simulations of one probe fan out on
 * @p pool; per-replica results land in index-addressed slots and
 * merge in index order, so the result is byte-identical for any
 * worker count (tests/test_sim.cpp asserts this).
 *
 * @param cost          Iteration latency/memory oracle of the design.
 * @param demand        Aggregate offered load.
 * @param sched         Continuous-batching policy of every replica.
 * @param slo           Percentile objectives.
 * @param max_replicas  Search ceiling; result.feasible is false when
 *                      even this many replicas miss the SLO.
 * @param hint_replicas Starting size (e.g. the closed-form plan from
 *                      serve::planFleet); clamped to [1, max].
 * @param pool          Worker pool; null uses ThreadPool::shared().
 */
FleetSizingResult
sizeFleet(const IterationCostModel &cost, const FleetDemand &demand,
          const SchedulerConfig &sched, const SloTargets &slo,
          int max_replicas = 4096, int hint_replicas = 1,
          common::ThreadPool *pool = nullptr);

/**
 * Simulate one fixed fleet size without searching: @p replicas
 * independent replicas at rate/R each, merged in index order.
 */
ReplicaMetrics
simulateFleet(const IterationCostModel &cost,
              const FleetDemand &demand, const SchedulerConfig &sched,
              int replicas, common::ThreadPool *pool = nullptr);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_FLEET_HH
