/**
 * @file
 * Fleet sizing against percentile SLOs: how many replicas does it
 * take to serve an aggregate request rate?
 *
 * This is the simulator's headline "sanctions tax" estimator: where
 * serve::planFleet divides demand by steady-state throughput,
 * sizeFleet binary-searches the smallest replica count whose
 * *simulated* p99 TTFT/TBT meet the objectives under Poisson load —
 * queueing, batching, and prefill interference included. The two
 * agree in the low-load limit and diverge exactly when burstiness
 * binds (asserted in tests/test_sim.cpp).
 */

#ifndef ACS_SIM_FLEET_HH
#define ACS_SIM_FLEET_HH

#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/metrics.hh"
#include "sim/replica.hh"

namespace acs {
namespace common {
class ThreadPool;
} // namespace common

namespace sim {

/** Aggregate demand offered to a whole fleet. */
struct FleetDemand
{
    /** Aggregate open-loop request rate across the fleet (req/s). */
    double ratePerS = 1.0;

    LengthDistribution promptLen = LengthDistribution::fixed(2048);
    LengthDistribution outputLen = LengthDistribution::fixed(256);

    /** Arrival horizon of each probe simulation (virtual seconds). */
    double horizonS = 600.0;

    /** Master seed; replica i runs substream i deterministically. */
    std::uint64_t seed = 1;

    /** Fatal unless rate/horizon are positive. */
    void validate() const;
};

/** Outcome of a fleet-sizing search. */
struct FleetSizingResult
{
    bool feasible = false; //!< an SLO-meeting size was found
    int replicas = 0;      //!< smallest SLO-meeting replica count
    long devices = 0;      //!< replicas x tensorParallel
    int probes = 0;        //!< fleet sizes simulated by the search

    /**
     * Merged metrics of all replicas at the chosen size (replica-
     * index merge order, so identical regardless of thread count).
     */
    ReplicaMetrics aggregate;
};

/**
 * Smallest replica count meeting @p slo at @p demand.
 *
 * The aggregate Poisson stream splits evenly across replicas
 * (probabilistic routing: each replica sees an independent Poisson
 * stream at rate/R). Feasibility is monotone in R — fewer requests
 * per replica can only shrink the tails — so the search probes
 * geometrically up from @p hint_replicas until feasible, then binary
 * searches the bracket. Replica simulations of one probe fan out on
 * @p pool; per-replica results land in index-addressed slots and
 * merge in index order, so the result is byte-identical for any
 * worker count (tests/test_sim.cpp asserts this).
 *
 * @param cost          Iteration latency/memory oracle of the design.
 * @param demand        Aggregate offered load.
 * @param sched         Continuous-batching policy of every replica.
 * @param slo           Percentile objectives.
 * @param max_replicas  Search ceiling; result.feasible is false when
 *                      even this many replicas miss the SLO.
 * @param hint_replicas Starting size (e.g. the closed-form plan from
 *                      serve::planFleet); clamped to [1, max].
 * @param pool          Worker pool; null uses ThreadPool::shared().
 */
FleetSizingResult
sizeFleet(const IterationCostModel &cost, const FleetDemand &demand,
          const SchedulerConfig &sched, const SloTargets &slo,
          int max_replicas = 4096, int hint_replicas = 1,
          common::ThreadPool *pool = nullptr);

/**
 * Simulate one fixed fleet size without searching: @p replicas
 * independent replicas at rate/R each, merged in index order.
 */
ReplicaMetrics
simulateFleet(const IterationCostModel &cost,
              const FleetDemand &demand, const SchedulerConfig &sched,
              int replicas, common::ThreadPool *pool = nullptr);

/** One side (prefill or decode) of a disaggregated purchase. */
struct DisaggPoolSpec
{
    /** Iteration oracle of the pool's design (not owned). */
    const IterationCostModel *cost = nullptr;

    SchedulerConfig scheduler;

    /** Amortized capex + power of one replica, $/hour (>= 0). */
    double hourlyCostUsdPerReplica = 0.0;

    /** Fatal unless the spec is well-formed. */
    void validate() const;
};

/** Outcome of a two-pool disaggregated sizing search. */
struct DisaggFleetPlan
{
    bool feasible = false;   //!< an SLO-meeting sizing was found
    int prefillReplicas = 0; //!< smallest TTFT-meeting prefill pool
    int decodeReplicas = 0;  //!< smallest TBT-meeting decode pool
    long devices = 0;        //!< sum of replicas x tensorParallel
    int probes = 0;          //!< cluster simulations performed

    /** Cluster metrics at the chosen (prefill, decode) sizes. */
    ClusterMetrics aggregate;
};

/**
 * Size a disaggregated two-pool fleet against @p slo at @p demand.
 *
 * Exploits the model's phase separability: prefill members are never
 * blocked by decode members (handoff queues are unbounded and source
 * KV frees at transfer completion), so the TTFT distribution depends
 * only on the prefill pool size. The search therefore sizes the
 * prefill pool first against the TTFT bound alone (decode pool
 * pinned at 1), then sizes the decode pool against the full SLO with
 * the prefill pool fixed — two independent monotone searches instead
 * of a joint grid, each a geometric bracket + binary search with
 * per-phase probe memoization (every (P, D) pair simulates at most
 * once).
 *
 * Each probe replays a fresh Poisson trace built from @p demand
 * (same seed, so probes are comparable and the search is
 * deterministic). Workload shape beyond Poisson — diurnal traces,
 * CSV replay — is sized by probing simulateCluster directly.
 *
 * @param prefill      Design and policy of the prefill pool.
 * @param decode       Design and policy of the decode pool.
 * @param kv           KV transfer cost between the pools.
 * @param demand       Aggregate offered load.
 * @param slo          Percentile objectives.
 * @param routing      Routing policy used inside each probe.
 * @param max_replicas Per-pool search ceiling.
 */
DisaggFleetPlan
sizeDisaggFleet(const DisaggPoolSpec &prefill,
                const DisaggPoolSpec &decode,
                const KvTransferConfig &kv, const FleetDemand &demand,
                const SloTargets &slo,
                RoutingPolicyKind routing =
                    RoutingPolicyKind::JOIN_SHORTEST_QUEUE,
                int max_replicas = 4096);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_FLEET_HH
