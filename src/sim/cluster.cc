#include "cluster.hh"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "common/ring.hh"
#include "common/stats.hh"
#include "hw/config.hh"
#include "obs/obs.hh"
#include "sim/event.hh"

namespace acs {
namespace sim {

KvTransferConfig
KvTransferConfig::free()
{
    KvTransferConfig kv;
    kv.latencyS = 0.0;
    // bytes / inf == 0.0 exactly, so a free transfer adds literally
    // nothing to any event time — the bit-exactness hinge of the
    // monolithic-equivalence tests.
    kv.bandwidthBytesPerS = std::numeric_limits<double>::infinity();
    return kv;
}

void
KvTransferConfig::validate() const
{
    fatalIf(latencyS < 0.0,
            "KvTransferConfig: latencyS must be >= 0");
    fatalIf(bandwidthBytesPerS < 0.0,
            "KvTransferConfig: bandwidthBytesPerS must be >= 0");
}

void
PoolConfig::validate() const
{
    fatalIf(cost == nullptr,
            "PoolConfig: every pool needs an IterationCostModel");
    fatalIf(replicas < 1, "PoolConfig: replicas must be >= 1");
    fatalIf(hourlyCostUsdPerReplica < 0.0,
            "PoolConfig: hourlyCostUsdPerReplica must be >= 0");
    scheduler.validate();
}

void
ClusterConfig::validate() const
{
    fatalIf(pools.empty(), "ClusterConfig: at least one pool");
    kvTransfer.validate();
    slo.validate();
    bool entry = false;
    bool prefill = false;
    bool decode = false;
    for (const PoolConfig &p : pools) {
        p.validate();
        entry |= p.role != PoolRole::DECODE;
        prefill |= p.role == PoolRole::PREFILL;
        decode |= p.role == PoolRole::DECODE;
    }
    fatalIf(!entry,
            "ClusterConfig: need a MONOLITHIC or PREFILL pool to "
            "accept arrivals");
    fatalIf(prefill != decode,
            "ClusterConfig: PREFILL and DECODE pools only make sense "
            "together");
}

double
ClusterMetrics::ttftPercentileS(double pct) const
{
    if (!aggregate.requests.empty()) {
        std::vector<double> samples;
        samples.reserve(aggregate.requests.size());
        for (const RequestRecord &r : aggregate.requests)
            samples.push_back(r.ttftS());
        return percentile(samples, pct);
    }
    return ttftHist.percentileS(pct);
}

double
ClusterMetrics::tbtPercentileS(double pct) const
{
    if (!aggregate.tbtGapsS.empty())
        return percentile(aggregate.tbtGapsS, pct);
    return tbtHist.percentileS(pct);
}

bool
ClusterMetrics::meetsSlo(const SloTargets &slo) const
{
    slo.validate();
    if (completedRequests == 0)
        return true;
    if (ttftPercentileS(slo.percentile) > slo.ttftMaxS)
        return false;
    if (tbtHist.count == 0)
        return true;
    return tbtPercentileS(slo.percentile) <= slo.tbtMaxS;
}

double
ClusterMetrics::attainment() const
{
    if (completedRequests == 0)
        return 1.0;
    return static_cast<double>(sloAttainedRequests) /
           static_cast<double>(completedRequests);
}

double
ClusterMetrics::goodputTokensPerS() const
{
    if (aggregate.lastEventS <= 0.0)
        return 0.0;
    return sloAttainedTokens / aggregate.lastEventS;
}

double
ClusterMetrics::usdPerMillionGoodTokens() const
{
    const double goodput = goodputTokensPerS();
    if (goodput <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fleetHourlyUsd / 3600.0 / goodput * 1e6;
}

namespace {

/** A request somewhere inside the cluster. */
struct ClusterRequest
{
    RequestRecord rec;
    double lastTokenS = 0.0; //!< when its most recent token came out
    int tokensLeft = 0;      //!< decode tokens still to generate
    double kvBytes = 0.0;    //!< KV reserved on the current member
};

/**
 * A KV migration in flight between two members. Lives in a slot-map
 * (vector + free list) keyed by slot index — the KV_DONE event's
 * payload — so the steady-state event loop reuses slots instead of
 * allocating and freeing tree nodes per transfer.
 */
struct PendingTransfer
{
    ClusterRequest req;
    int srcMember = 0;
    int dstMember = 0;
    double srcKvBytes = 0.0; //!< held on the source until KV_DONE
    double bytes = 0.0;      //!< shipped over the interconnect
    double durationS = 0.0;
    bool active = false;     //!< slot occupancy (false = on free list)
};

/** One replica-equivalent member of a pool. */
struct Member
{
    int pool = 0;
    int index = 0; //!< flattened global index
    const PoolConfig *cfg = nullptr;
    double kvBudget = 0.0;

    common::RingQueue<ClusterRequest> waiting;       //!< prompt admission
    common::RingQueue<ClusterRequest> decodeWaiting; //!< KV handoffs
    std::vector<ClusterRequest> prefilling;
    std::vector<ClusterRequest> active;
    double kvUsed = 0.0;
    bool busy = false;
    bool prefillInFlight = false;
    std::uint64_t pendingIncoming = 0; //!< transfers headed here

    ReplicaMetrics metrics;
};

/**
 * The cluster's mutable state: one global event loop over all
 * members, mirroring ReplicaState's per-member scheduling arithmetic
 * operation-for-operation so a MONOLITHIC member is bit-identical to
 * simulateReplica on the same request sequence.
 */
class ClusterState
{
  public:
    ClusterState(const ClusterConfig &cfg, TraceWorkload &trace)
        : cfg_(cfg), trace_(trace),
          policy_(cfg.customPolicy ? cfg.customPolicy
                                   : routingPolicy(cfg.routing)),
          events_(cfg.queueEngine)
    {
        cfg_.validate();
        for (std::size_t p = 0; p < cfg_.pools.size(); ++p) {
            const PoolConfig &pool = cfg_.pools[p];
            const double budget =
                pool.cost->kvBudgetBytes() *
                pool.scheduler.kvMemoryFraction;
            fatalIf(budget <= 0.0,
                    "simulateCluster: model weights leave no HBM "
                    "for KV cache in pool '" + pool.name + "'");
            for (int r = 0; r < pool.replicas; ++r) {
                Member m;
                m.pool = static_cast<int>(p);
                m.index = static_cast<int>(members_.size());
                m.cfg = &pool;
                m.kvBudget = budget;
                // Batch vectors never exceed the scheduler caps:
                // reserving them here keeps the event loop free of
                // vector growth.
                m.prefilling.reserve(static_cast<std::size_t>(
                    pool.scheduler.maxPrefillBatch));
                m.active.reserve(static_cast<std::size_t>(
                    pool.scheduler.maxBatch));
                members_.push_back(std::move(m));
            }
        }
        // Steady state holds at most one ITER_DONE per member, one
        // pending ARRIVAL, and some KV_DONEs.
        events_.reserve(2 * members_.size() + 8);
    }

    ClusterMetrics run();

  private:
    void handleArrival(double now);
    void startIteration(Member &m, double now);
    void finishIteration(Member &m, double now);
    void handleKvDone(std::uint64_t id, double now);
    void beginTransfer(Member &src, ClusterRequest &&r, double now);
    void retire(Member &m, ClusterRequest &r, double now);
    std::size_t routePhase(RoutePhase phase, const ClusterRequest &r);

    const ClusterConfig &cfg_;
    TraceWorkload &trace_;
    const RoutingPolicy *policy_;

    std::vector<Member> members_;
    EventQueue events_;
    TraceRequest pendingArrival_;

    /**
     * Slot-map of in-flight transfers: KV_DONE payloads index
     * directly into @c transfers_, retired slots go on the free list
     * for reuse. @c activeTransfers_ backs the drain assertion.
     */
    std::vector<PendingTransfer> transfers_;
    std::vector<std::uint64_t> freeTransferSlots_;
    std::uint64_t activeTransfers_ = 0;
    std::uint64_t nextRequestId_ = 0;

    ClusterMetrics result_;
};

std::size_t
ClusterState::routePhase(RoutePhase phase, const ClusterRequest &r)
{
    // Candidates in ascending member index order: the policies'
    // lowest-index tie-break depends on it.
    std::vector<MemberView> views;
    std::vector<std::size_t> indices;
    for (const Member &m : members_) {
        const PoolRole role = m.cfg->role;
        const bool eligible =
            phase == RoutePhase::PREFILL
                ? role != PoolRole::DECODE
                : role == PoolRole::DECODE;
        if (!eligible)
            continue;
        MemberView v;
        v.pool = m.pool;
        v.member = m.index;
        v.role = role;
        if (phase == RoutePhase::PREFILL) {
            v.queued = m.waiting.size();
            v.inFlight = m.prefilling.size() + m.active.size();
            v.phaseServiceRatePerS =
                1.0 / m.cfg->cost->prefillS(1, r.rec.promptLen);
        } else {
            v.queued = m.decodeWaiting.size() + m.pendingIncoming;
            v.inFlight = m.active.size();
            v.phaseServiceRatePerS =
                1.0 / m.cfg->cost->decodeStepS(1);
        }
        v.hourlyCostUsd = m.cfg->hourlyCostUsdPerReplica;
        views.push_back(v);
        indices.push_back(static_cast<std::size_t>(m.index));
    }
    if (views.empty())
        panic("simulateCluster: no eligible member for a phase "
              "(validated away, so this is a bug)");
    RouteRequest req;
    req.id = r.rec.id;
    req.promptLen = r.rec.promptLen;
    req.outputLen = r.rec.outputLen;
    const std::size_t pick = policy_->pick(phase, req, views);
    if (pick >= views.size())
        panic("RoutingPolicy: pick returned an out-of-range index");
    return indices[pick];
}

void
ClusterState::handleArrival(double now)
{
    ClusterRequest r;
    r.rec.id = nextRequestId_++;
    r.rec.arrivalS = now;
    r.rec.promptLen = pendingArrival_.promptLen;
    r.rec.outputLen = pendingArrival_.outputLen;

    const std::size_t target = routePhase(RoutePhase::PREFILL, r);
    Member &m = members_[target];

    // Reservation made at admission: the full context for a
    // monolithic member (identical to simulateReplica), the prompt
    // alone for a prefill member (its KV leaves after the transfer).
    const double per_tok = m.cfg->cost->kvBytesPerTokenPerDevice();
    r.kvBytes = m.cfg->role == PoolRole::PREFILL
                    ? per_tok * r.rec.promptLen
                    : per_tok * (r.rec.promptLen + r.rec.outputLen);
    // Branch-then-throw: fatalIf would build this multi-part
    // message on every arrival.
    if (r.kvBytes > m.kvBudget) {
        fatal("simulateCluster: a single request's KV footprint (" +
              std::to_string(r.kvBytes) + " B/device) exceeds member " +
              std::to_string(m.index) + "'s KV budget (" +
              std::to_string(m.kvBudget) +
              " B/device); the workload cannot be served");
    }

    ++result_.pools[static_cast<std::size_t>(m.pool)].routedPrefill;
    m.waiting.push_back(std::move(r));
    ++m.metrics.arrivals;

    // Stream the next trace record in before starting iterations, so
    // the single outstanding ARRIVAL invariant holds.
    if (trace_.next(pendingArrival_))
        events_.push(pendingArrival_.arrivalS, EventKind::ARRIVAL);

    startIteration(m, now);
}

void
ClusterState::startIteration(Member &m, double now)
{
    if (m.busy)
        return;
    const SchedulerConfig &s = m.cfg->scheduler;

    if (m.cfg->role == PoolRole::DECODE) {
        // Admission from the KV handoff queue is free of charge (the
        // prefill and the transfer already happened); only the batch
        // cap and the KV budget gate it.
        while (!m.decodeWaiting.empty() &&
               static_cast<int>(m.active.size()) < s.maxBatch) {
            ClusterRequest &head = m.decodeWaiting.front();
            if (m.kvUsed + head.kvBytes > m.kvBudget) {
                if (m.active.empty())
                    fatal("simulateCluster: a transferred request's "
                          "KV footprint exceeds the decode member's "
                          "budget; the workload cannot be served");
                break;
            }
            m.kvUsed += head.kvBytes;
            m.active.push_back(std::move(head));
            m.decodeWaiting.pop_front();
        }
        if (!m.active.empty()) {
            m.metrics.queueDepth.record(m.decodeWaiting.size());
            const double latency = m.cfg->cost->decodeStepS(
                static_cast<int>(m.active.size()));
            ++m.metrics.decodeIterations;
            m.busy = true;
            m.prefillInFlight = false;
            events_.push(now + latency, EventKind::ITER_DONE,
                         static_cast<std::uint64_t>(m.index));
        }
        return;
    }

    // MONOLITHIC and PREFILL members: simulateReplica's admission
    // loop verbatim (prefill priority, FIFO head, KV budget).
    int admitted = 0;
    int max_prompt = 0;
    while (!m.waiting.empty() && admitted < s.maxPrefillBatch &&
           static_cast<int>(m.active.size() + m.prefilling.size()) <
               s.maxBatch) {
        ClusterRequest &head = m.waiting.front();
        if (m.kvUsed + head.kvBytes > m.kvBudget)
            break;
        m.kvUsed += head.kvBytes;
        head.rec.admitS = now;
        max_prompt = std::max(max_prompt, head.rec.promptLen);
        m.prefilling.push_back(std::move(head));
        m.waiting.pop_front();
        ++admitted;
    }

    if (admitted > 0) {
        m.metrics.queueDepth.record(m.waiting.size());
        const double latency =
            m.cfg->cost->prefillS(admitted, max_prompt);
        ++m.metrics.prefillIterations;
        m.busy = true;
        m.prefillInFlight = true;
        events_.push(now + latency, EventKind::ITER_DONE,
                     static_cast<std::uint64_t>(m.index));
        return;
    }

    if (!m.active.empty()) {
        m.metrics.queueDepth.record(m.waiting.size());
        const double latency = m.cfg->cost->decodeStepS(
            static_cast<int>(m.active.size()));
        ++m.metrics.decodeIterations;
        m.busy = true;
        m.prefillInFlight = false;
        events_.push(now + latency, EventKind::ITER_DONE,
                     static_cast<std::uint64_t>(m.index));
    }
}

void
ClusterState::retire(Member &m, ClusterRequest &r, double now)
{
    r.rec.finishS = now;
    m.kvUsed -= r.kvBytes;
    ++m.metrics.completed;
    m.metrics.ttftHist.record(r.rec.ttftS());
    result_.ttftHist.record(r.rec.ttftS());
    ++result_.completedRequests;
    const bool ttft_ok = r.rec.ttftS() <= cfg_.slo.ttftMaxS;
    const bool tbt_ok =
        r.rec.outputLen < 2 || r.rec.meanTbtS() <= cfg_.slo.tbtMaxS;
    if (ttft_ok && tbt_ok) {
        ++result_.sloAttainedRequests;
        result_.sloAttainedTokens += r.rec.outputLen;
    }
    if (cfg_.recordRequests)
        m.metrics.requests.push_back(r.rec);
}

void
ClusterState::beginTransfer(Member &src, ClusterRequest &&r,
                            double now)
{
    // Destination chosen at transfer start so its interconnect can
    // bound the modeled bandwidth.
    const std::size_t target = routePhase(RoutePhase::DECODE, r);
    Member &dst = members_[target];
    ++result_.pools[static_cast<std::size_t>(dst.pool)].routedDecode;

    PendingTransfer t;
    t.srcMember = src.index;
    t.dstMember = dst.index;
    t.srcKvBytes = r.kvBytes;

    // The prompt's full KV (all tensor-parallel shards) crosses the
    // interconnect; per-request cost, no contention (docs/
    // DATACENTER.md).
    t.bytes = src.cfg->cost->kvBytesPerTokenPerDevice() *
              src.cfg->cost->system().tensorParallel *
              r.rec.promptLen;
    double bw = cfg_.kvTransfer.bandwidthBytesPerS;
    if (bw == 0.0)
        bw = std::min(src.cfg->cost->device().deviceBandwidth(),
                      dst.cfg->cost->device().deviceBandwidth());
    t.durationS = cfg_.kvTransfer.latencyS + t.bytes / bw;

    // The decode member holds the full context for the rest of the
    // request's life, exactly like a monolithic admission.
    r.kvBytes = dst.cfg->cost->kvBytesPerTokenPerDevice() *
                (r.rec.promptLen + r.rec.outputLen);
    t.req = std::move(r);

    ++dst.pendingIncoming;
    t.active = true;
    std::uint64_t id = 0;
    if (!freeTransferSlots_.empty()) {
        id = freeTransferSlots_.back();
        freeTransferSlots_.pop_back();
        transfers_[static_cast<std::size_t>(id)] = std::move(t);
    } else {
        id = transfers_.size();
        transfers_.push_back(std::move(t));
    }
    ++activeTransfers_;
    events_.push(
        now + transfers_[static_cast<std::size_t>(id)].durationS,
        EventKind::KV_DONE, id);
}

void
ClusterState::handleKvDone(std::uint64_t id, double now)
{
    if (id >= transfers_.size() ||
        !transfers_[static_cast<std::size_t>(id)].active)
        panic("simulateCluster: KV_DONE for an unknown transfer");
    PendingTransfer t =
        std::move(transfers_[static_cast<std::size_t>(id)]);
    // Reset the slot (releasing the moved-out request) and recycle it.
    transfers_[static_cast<std::size_t>(id)] = PendingTransfer{};
    freeTransferSlots_.push_back(id);
    --activeTransfers_;

    // The source's prompt KV is only now reclaimable (it backed the
    // transfer), so release it here, not at prefill completion.
    Member &src = members_[static_cast<std::size_t>(t.srcMember)];
    src.kvUsed -= t.srcKvBytes;

    ++result_.kvTransfers;
    result_.kvBytesTransferred += t.bytes;
    result_.kvTransferTotalS += t.durationS;

    Member &dst = members_[static_cast<std::size_t>(t.dstMember)];
    --dst.pendingIncoming;
    dst.decodeWaiting.push_back(std::move(t.req));

    // Freed KV may unblock the source's admission queue too.
    startIteration(dst, now);
    startIteration(src, now);
}

void
ClusterState::finishIteration(Member &m, double now)
{
    m.busy = false;
    if (m.prefillInFlight) {
        PoolUsage &usage =
            result_.pools[static_cast<std::size_t>(m.pool)];
        for (ClusterRequest &r : m.prefilling) {
            r.rec.firstTokenS = now;
            r.lastTokenS = now;
            r.tokensLeft = r.rec.outputLen - 1;
            ++m.metrics.generatedTokens;
            ++usage.generatedTokens;
            if (r.tokensLeft == 0) {
                // Single-token outputs have no decode phase — done,
                // no matter the role.
                retire(m, r, now);
            } else if (m.cfg->role == PoolRole::PREFILL) {
                beginTransfer(m, std::move(r), now);
            } else {
                m.active.push_back(std::move(r));
            }
        }
        m.prefilling.clear();
        return;
    }

    PoolUsage &usage =
        result_.pools[static_cast<std::size_t>(m.pool)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < m.active.size(); ++i) {
        ClusterRequest &r = m.active[i];
        const double gap = now - r.lastTokenS;
        m.metrics.tbtHist.record(gap);
        if (cfg_.recordTbtGaps)
            m.metrics.tbtGapsS.push_back(gap);
        result_.tbtHist.record(gap);
        r.lastTokenS = now;
        --r.tokensLeft;
        ++m.metrics.generatedTokens;
        ++usage.generatedTokens;
        if (r.tokensLeft == 0) {
            retire(m, r, now);
        } else {
            if (keep != i)
                m.active[keep] = std::move(r);
            ++keep;
        }
    }
    m.active.resize(keep);
}

ClusterMetrics
ClusterState::run()
{
    const obs::TraceSpan span("sim.cluster.run");

    result_.pools.resize(cfg_.pools.size());
    for (std::size_t p = 0; p < cfg_.pools.size(); ++p) {
        PoolUsage &u = result_.pools[p];
        u.name = cfg_.pools[p].name;
        u.role = cfg_.pools[p].role;
        u.replicas = cfg_.pools[p].replicas;
        u.hourlyCostUsd = cfg_.pools[p].replicas *
                          cfg_.pools[p].hourlyCostUsdPerReplica;
        result_.fleetHourlyUsd += u.hourlyCostUsd;
    }

    if (trace_.next(pendingArrival_))
        events_.push(pendingArrival_.arrivalS, EventKind::ARRIVAL);

    double now = 0.0;
    while (!events_.empty()) {
        const Event e = events_.pop();
        now = e.timeS;
        switch (e.kind) {
          case EventKind::ARRIVAL:
            handleArrival(now);
            break;
          case EventKind::ITER_DONE: {
            Member &m =
                members_[static_cast<std::size_t>(e.payload)];
            finishIteration(m, now);
            startIteration(m, now);
            break;
          }
          case EventKind::KV_DONE:
            handleKvDone(e.payload, now);
            break;
          case EventKind::CLIENT_WAKE:
            panic("simulateCluster: CLIENT_WAKE is a replica-level "
                  "event; clusters replay traces");
        }
    }

    for (const Member &m : members_)
        panicIf(!m.waiting.empty() || !m.decodeWaiting.empty() ||
                    !m.prefilling.empty() || !m.active.empty(),
                "simulateCluster: event queue drained with requests "
                "still in flight");
    panicIf(activeTransfers_ != 0,
            "simulateCluster: event queue drained with KV transfers "
            "still in flight");

    // Member-index merge order: byte-identical aggregate regardless
    // of anything (the loop itself is single-threaded by design).
    result_.aggregate = std::move(members_.front().metrics);
    for (std::size_t i = 1; i < members_.size(); ++i)
        result_.aggregate.merge(members_[i].metrics);
    result_.aggregate.lastEventS = now;

    if (obs::enabled()) {
        obs::counterAdd("sim.cluster.requests.completed",
                        result_.completedRequests);
        obs::counterAdd("sim.cluster.kv.transfers",
                        result_.kvTransfers);
        obs::counterAdd("sim.cluster.tokens.generated",
                        result_.aggregate.generatedTokens);
    }
    return result_;
}

} // anonymous namespace

ClusterMetrics
simulateCluster(const ClusterConfig &cfg, TraceWorkload &trace)
{
    return ClusterState(cfg, trace).run();
}

} // namespace sim
} // namespace acs
