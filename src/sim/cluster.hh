/**
 * @file
 * Datacenter-level serving simulation: heterogeneous pools, routing,
 * and prefill/decode disaggregation.
 *
 * Where sim/replica.hh models one tensor-parallel serving instance,
 * a cluster is a set of *pools* — groups of identical replicas built
 * from one hw preset — that jointly serve a single request stream. A
 * pool plays one of three roles: MONOLITHIC members run both phases
 * (classic colocated serving); PREFILL members run only the prompt
 * phase and ship the finished KV cache to a DECODE member over the
 * modeled interconnect, the request migrating through the shared
 * event queue via a KV_DONE event. This is the disaggregated
 * purchasing question the paper's sanctions analysis motivates:
 * prefill capacity is TPP-capped, decode capacity is HBM-rule-capped,
 * and splitting the fleet lets each pool buy exactly the silicon its
 * phase is bound by.
 *
 * Determinism contract (carried over from the replica level): the
 * cluster event loop is single-threaded, members are addressed by
 * flattened (pool, replica) index, routing decisions are pure
 * functions of deterministic member snapshots, and final metrics
 * merge in member-index order — so a run is byte-identical for every
 * ACS_THREADS value (tests/test_cluster.cpp asserts this).
 */

#ifndef ACS_SIM_CLUSTER_HH
#define ACS_SIM_CLUSTER_HH

#include <string>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/metrics.hh"
#include "sim/replica.hh"
#include "sim/routing.hh"
#include "sim/trace.hh"

namespace acs {
namespace sim {

/**
 * Cost of shipping one request's KV cache from a prefill member to a
 * decode member.
 *
 * Transfer time = latencyS + bytes / bandwidth, where bytes is the
 * prompt's full KV footprint (all tensor-parallel shards) on the
 * source design. Transfers do not contend with each other or with
 * iteration compute — the interconnect is modeled as wide enough
 * that the per-request cost, not queueing, dominates
 * (docs/DATACENTER.md discusses the limitation).
 */
struct KvTransferConfig
{
    /** Fixed per-transfer latency (setup + switching), seconds. */
    double latencyS = 2e-3;

    /**
     * Transfer bandwidth in bytes/second. 0 selects the modeled
     * interconnect: min(source, destination) aggregate device
     * bandwidth from hw::HardwareConfig::deviceBandwidth().
     */
    double bandwidthBytesPerS = 0.0;

    /**
     * The zero-cost transfer: no latency, infinite bandwidth. With
     * this config a disaggregated request pays exactly 0.0 seconds
     * between phases, which is what makes the monolithic-equivalence
     * sanity checks bit-exact.
     */
    static KvTransferConfig free();

    /** Fatal unless latency and bandwidth are non-negative. */
    void validate() const;
};

/** One pool: @c replicas identical members of one hardware design. */
struct PoolConfig
{
    std::string name;          //!< label for reports ("a100", ...)
    PoolRole role = PoolRole::MONOLITHIC;

    /**
     * Iteration oracle of this pool's design (not owned; must
     * outlive the simulation). Pools may share one model or each
     * bring their own — that is what makes the fleet heterogeneous.
     */
    const IterationCostModel *cost = nullptr;

    int replicas = 1;          //!< members in this pool (>= 1)
    SchedulerConfig scheduler; //!< per-member batching policy

    /** Amortized capex + power of one member, $/hour (>= 0). */
    double hourlyCostUsdPerReplica = 0.0;

    /** Fatal unless the pool is well-formed. */
    void validate() const;
};

/** A whole cluster: pools + transfer cost + routing + objectives. */
struct ClusterConfig
{
    std::vector<PoolConfig> pools;
    KvTransferConfig kvTransfer;

    /** Built-in policy used when customPolicy is null. */
    RoutingPolicyKind routing =
        RoutingPolicyKind::JOIN_SHORTEST_QUEUE;

    /** Optional caller-supplied policy (not owned; overrides). */
    const RoutingPolicy *customPolicy = nullptr;

    /** Objectives for the online attainment/goodput counters. */
    SloTargets slo;

    /**
     * Keep per-request records / per-gap samples in the aggregate
     * metrics. Exact percentiles need them; trace-scale runs
     * (millions of requests) turn them off and read the streaming
     * histograms instead.
     */
    bool recordRequests = true;
    bool recordTbtGaps = true;

    /**
     * Pending-event structure of the shared cluster event queue.
     * Purely a performance switch — both engines pop in identical
     * (time, seq) order (sim/event.hh), so results are bit-identical.
     * Pools keep their own SchedulerConfig::queueEngine untouched;
     * only this field drives the cluster's single global queue.
     */
    QueueEngine queueEngine = QueueEngine::CALENDAR;

    /**
     * Fatal unless pools are well-formed and the role mix is
     * serviceable (at least one MONOLITHIC or PREFILL pool; PREFILL
     * and DECODE pools only ever appear together).
     */
    void validate() const;
};

/** Per-pool accounting of one cluster run. */
struct PoolUsage
{
    std::string name;
    PoolRole role = PoolRole::MONOLITHIC;
    int replicas = 0;

    std::uint64_t routedPrefill = 0; //!< prompt phases placed here
    std::uint64_t routedDecode = 0;  //!< decode phases placed here
    std::uint64_t generatedTokens = 0;
    double hourlyCostUsd = 0.0;      //!< replicas x per-replica cost
};

/** Everything one cluster simulation produced. */
struct ClusterMetrics
{
    /**
     * All member metrics merged in flattened (pool, replica) index
     * order. requests/tbtGapsS are populated only when the config's
     * record flags are on.
     */
    ReplicaMetrics aggregate;

    /** Streaming distributions, populated regardless of recording. */
    LatencyHistogram ttftHist;
    LatencyHistogram tbtHist;

    std::vector<PoolUsage> pools; //!< one entry per configured pool

    std::uint64_t kvTransfers = 0;     //!< completed KV migrations
    double kvBytesTransferred = 0.0;   //!< total bytes shipped
    double kvTransferTotalS = 0.0;     //!< summed transfer times

    std::uint64_t completedRequests = 0;
    std::uint64_t sloAttainedRequests = 0; //!< met both SLO bounds
    double sloAttainedTokens = 0.0;        //!< their output tokens
    double fleetHourlyUsd = 0.0;           //!< whole-fleet $/hour

    /**
     * TTFT percentile: exact order statistic when per-request
     * records were kept, the streaming histogram otherwise.
     */
    double ttftPercentileS(double pct) const;

    /** TBT percentile with the same exact-or-histogram fallback. */
    double tbtPercentileS(double pct) const;

    /** Whether the run's percentiles meet @p slo. */
    bool meetsSlo(const SloTargets &slo) const;

    /** Fraction of completed requests meeting both SLO bounds. */
    double attainment() const;

    /** SLO-attaining output tokens per simulated second. */
    double goodputTokensPerS() const;

    /**
     * Fleet cost per million SLO-attaining tokens (the paper's
     * $/good-token economics); +inf when goodput is zero.
     */
    double usdPerMillionGoodTokens() const;
};

/**
 * Simulate @p cfg serving @p trace to completion.
 *
 * One global discrete-event loop drives all members: ARRIVAL events
 * consume the trace one request at a time (streaming — the trace is
 * never materialized), the routing policy places each prompt on a
 * MONOLITHIC or PREFILL member, per-member continuous batching is
 * bit-identical to simulateReplica, and disaggregated requests
 * migrate to a DECODE member through a KV_DONE event charged with
 * the configured transfer cost.
 *
 * Deterministic: a pure function of (@p cfg's inputs, the trace).
 * A single-member MONOLITHIC cluster reproduces the replica
 * trace-replay overload bit-exactly.
 */
ClusterMetrics simulateCluster(const ClusterConfig &cfg,
                               TraceWorkload &trace);

} // namespace sim
} // namespace acs

#endif // ACS_SIM_CLUSTER_HH
