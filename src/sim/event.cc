#include "event.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace acs {
namespace sim {

namespace {

/** Exact (time, seq) ordering shared by both engines. */
bool
earlier(const Event &a, const Event &b)
{
    if (a.timeS != b.timeS)
        return a.timeS < b.timeS;
    return a.seq < b.seq;
}

/**
 * Abs-bucket ceiling: times whose floor(t / width) would overflow
 * 64 bits all collapse into this one far-future index. Monotone, so
 * ordering inside the clamped bucket still resolves by exact
 * (time, seq) comparison.
 */
constexpr std::uint64_t kMaxAbs = 9'000'000'000'000'000'000ULL;

} // anonymous namespace

EventQueue::EventQueue(QueueEngine engine) : engine_(engine)
{
    if (engine_ == QueueEngine::CALENDAR)
        buckets_.resize(4);
}

std::uint64_t
EventQueue::absIndexOf(double time_s) const
{
    const double q = time_s / width_;
    if (!(q < 9.0e18))
        return kMaxAbs;
    return static_cast<std::uint64_t>(q);
}

void
EventQueue::reserve(std::size_t expected)
{
    if (engine_ == QueueEngine::LEGACY_HEAP) {
        heap_.reserve(expected);
        return;
    }
    const std::size_t target =
        std::bit_ceil(std::max<std::size_t>(4, expected));
    if (target > buckets_.size())
        rebuild(target);
}

void
EventQueue::push(double time_s, EventKind kind, std::uint64_t payload)
{
    // Branch-then-throw: panicIf would materialize the message
    // string on every push, and push is the hottest call in a
    // trace-scale run.
    if (std::isnan(time_s))
        panic("EventQueue: event time is NaN");
    if (!(time_s >= 0.0))
        panic("EventQueue: event time must be >= 0, got " +
              std::to_string(time_s));
    const Event e{time_s, nextSeq_++, kind, payload};
    if (engine_ == QueueEngine::LEGACY_HEAP) {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), After{});
    } else {
        calendarPush(e);
    }
    ++size_;
}

void
EventQueue::calendarPush(const Event &e)
{
    if (size_ + 1 > 2 * buckets_.size())
        rebuild(buckets_.size() * 2);
    const std::uint64_t abs = absIndexOf(e.timeS);
    // An event behind the scan cursor pulls it back, preserving the
    // invariant that every pending event has abs >= cursor_.
    if (abs < cursor_)
        cursor_ = abs;
    buckets_[abs & (buckets_.size() - 1)].push_back(Slot{e, abs});
}

std::pair<std::size_t, std::size_t>
EventQueue::locate() const
{
    const std::size_t nb = buckets_.size();
    // One lap of the calendar: take the (time, seq) minimum among
    // events of the cursor's absolute bucket; empty laps advance the
    // cursor persistently.
    for (std::size_t attempts = 0; attempts < nb; ++attempts) {
        const std::size_t b =
            static_cast<std::size_t>(cursor_ & (nb - 1));
        const std::vector<Slot> &bucket = buckets_[b];
        std::size_t best = bucket.size();
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (bucket[i].abs > cursor_)
                continue; // a later lap of this bucket
            if (best == bucket.size() ||
                earlier(bucket[i].ev, bucket[best].ev))
                best = i;
        }
        if (best != bucket.size())
            return {b, best};
        ++cursor_;
    }
    // Sparse tail (e.g. one think-time wake-up far in the future):
    // direct search for the global minimum, then jump the cursor to
    // it instead of walking empty laps.
    std::size_t best_b = nb;
    std::size_t best_i = 0;
    for (std::size_t b = 0; b < nb; ++b) {
        const std::vector<Slot> &bucket = buckets_[b];
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            if (best_b == nb ||
                earlier(bucket[i].ev, buckets_[best_b][best_i].ev)) {
                best_b = b;
                best_i = i;
            }
        }
    }
    if (best_b == nb)
        panic("EventQueue: locate on empty calendar");
    cursor_ = buckets_[best_b][best_i].abs;
    return {best_b, best_i};
}

Event
EventQueue::pop()
{
    if (size_ == 0)
        panic("EventQueue: pop on empty queue");
    --size_;
    if (engine_ == QueueEngine::LEGACY_HEAP) {
        std::pop_heap(heap_.begin(), heap_.end(), After{});
        const Event e = heap_.back();
        heap_.pop_back();
        return e;
    }
    const auto [b, i] = locate();
    std::vector<Slot> &bucket = buckets_[b];
    const Event e = bucket[i].ev;
    bucket[i] = bucket.back(); // selection is by value, order is free
    bucket.pop_back();
    return e;
}

const Event &
EventQueue::peek() const
{
    if (size_ == 0)
        panic("EventQueue: peek on empty queue");
    if (engine_ == QueueEngine::LEGACY_HEAP)
        return heap_.front();
    const auto [b, i] = locate();
    return buckets_[b][i].ev;
}

void
EventQueue::rebuild(std::size_t nbuckets)
{
    std::vector<Slot> all;
    all.reserve(size_);
    for (std::vector<Slot> &bucket : buckets_) {
        all.insert(all.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    buckets_.resize(std::bit_ceil(std::max<std::size_t>(4, nbuckets)));

    // Re-estimate the bucket width from the observed inter-event
    // gaps near the front of the schedule (a deterministic sample:
    // far-future outliers such as think-time wake-ups would otherwise
    // stretch the width until everything aliased into one bucket).
    if (all.size() >= 2) {
        std::vector<double> times;
        times.reserve(all.size());
        for (const Slot &s : all)
            times.push_back(s.ev.timeS);
        std::sort(times.begin(), times.end());
        const std::size_t sample =
            std::min<std::size_t>(times.size(), 65);
        double gap_sum = 0.0;
        std::size_t gaps = 0;
        for (std::size_t i = 1; i < sample; ++i) {
            const double gap = times[i] - times[i - 1];
            if (gap > 0.0) {
                gap_sum += gap;
                ++gaps;
            }
        }
        if (gaps > 0 && gap_sum > 0.0)
            width_ = 2.0 * gap_sum / static_cast<double>(gaps);
    }

    cursor_ = kMaxAbs;
    for (const Slot &s : all) {
        const std::uint64_t abs = absIndexOf(s.ev.timeS);
        cursor_ = std::min(cursor_, abs);
        buckets_[abs & (buckets_.size() - 1)].push_back(
            Slot{s.ev, abs});
    }
    if (all.empty())
        cursor_ = 0;
}

} // namespace sim
} // namespace acs
