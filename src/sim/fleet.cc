#include "fleet.hh"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/obs.hh"

namespace acs {
namespace sim {

void
FleetDemand::validate() const
{
    fatalIf(ratePerS <= 0.0, "FleetDemand: ratePerS must be > 0");
    fatalIf(horizonS <= 0.0, "FleetDemand: horizonS must be > 0");
    promptLen.validate();
    outputLen.validate();
}

ReplicaMetrics
simulateFleet(const IterationCostModel &cost,
              const FleetDemand &demand, const SchedulerConfig &sched,
              int replicas, common::ThreadPool *pool)
{
    demand.validate();
    sched.validate();
    fatalIf(replicas < 1, "simulateFleet: replicas must be >= 1");

    ReplicaConfig base;
    base.scheduler = sched;
    base.workload.closedLoopClients = 0;
    base.workload.arrivalRatePerS = demand.ratePerS / replicas;
    base.workload.promptLen = demand.promptLen;
    base.workload.outputLen = demand.outputLen;
    base.workload.horizonS = demand.horizonS;

    // Index-addressed slots: each replica writes its own entry, and
    // the merge below walks them in index order, so the aggregate is
    // independent of which worker simulated which replica.
    std::vector<ReplicaMetrics> slots(replicas);
    common::ThreadPool &crew =
        pool ? *pool : common::ThreadPool::shared();
    crew.parallelFor(
        static_cast<std::size_t>(replicas),
        [&](std::size_t i) {
            ReplicaConfig cfg = base;
            cfg.workload.seed = substreamSeed(demand.seed, i);
            slots[i] = simulateReplica(cost, cfg);
        },
        1);

    ReplicaMetrics aggregate = std::move(slots.front());
    for (std::size_t i = 1; i < slots.size(); ++i)
        aggregate.merge(slots[i]);
    return aggregate;
}

FleetSizingResult
sizeFleet(const IterationCostModel &cost, const FleetDemand &demand,
          const SchedulerConfig &sched, const SloTargets &slo,
          int max_replicas, int hint_replicas,
          common::ThreadPool *pool)
{
    const obs::TraceSpan span("sim.sizeFleet");
    demand.validate();
    sched.validate();
    slo.validate();
    fatalIf(max_replicas < 1, "sizeFleet: max_replicas must be >= 1");

    FleetSizingResult result;

    // Probe one size, remembering the best (smallest) feasible
    // aggregate seen so the chosen size never re-simulates. The
    // verdict memo guarantees every size simulates at most once no
    // matter how the bracket and the binary search revisit it. It is
    // a flat array indexed by replica count — the domain is exactly
    // [1, max_replicas], so a byte per size beats a node-allocating
    // tree: 0 = unknown, 1 = feasible, 2 = infeasible.
    int best = 0;
    ReplicaMetrics best_metrics;
    std::vector<signed char> verdicts(
        static_cast<std::size_t>(max_replicas) + 1, 0);
    const auto feasible = [&](int replicas) {
        signed char &seen =
            verdicts[static_cast<std::size_t>(replicas)];
        if (seen != 0)
            return seen == 1;
        ReplicaMetrics m =
            simulateFleet(cost, demand, sched, replicas, pool);
        ++result.probes;
        obs::counterAdd("sim.fleet.probes");
        const bool ok = m.meetsSlo(slo);
        seen = ok ? 1 : 2;
        if (ok && (best == 0 || replicas < best)) {
            best = replicas;
            best_metrics = std::move(m);
        }
        return ok;
    };

    // Bracket: geometric growth from the hint until feasible.
    int lo = 1;
    int hi = std::clamp(hint_replicas, 1, max_replicas);
    while (!feasible(hi)) {
        lo = hi + 1;
        if (hi >= max_replicas)
            return result; // infeasible even at the ceiling
        hi = std::min(max_replicas, hi * 2);
    }

    // Shrink: binary search the smallest feasible size in [lo, hi].
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid + 1;
    }

    result.feasible = true;
    result.replicas = best;
    result.devices =
        static_cast<long>(best) * cost.system().tensorParallel;
    result.aggregate = std::move(best_metrics);
    return result;
}

void
DisaggPoolSpec::validate() const
{
    fatalIf(cost == nullptr,
            "DisaggPoolSpec: cost model must be set");
    fatalIf(hourlyCostUsdPerReplica < 0.0,
            "DisaggPoolSpec: hourlyCostUsdPerReplica must be >= 0");
    scheduler.validate();
}

DisaggFleetPlan
sizeDisaggFleet(const DisaggPoolSpec &prefill,
                const DisaggPoolSpec &decode,
                const KvTransferConfig &kv, const FleetDemand &demand,
                const SloTargets &slo, RoutingPolicyKind routing,
                int max_replicas)
{
    const obs::TraceSpan span("sim.sizeDisaggFleet");
    prefill.validate();
    decode.validate();
    kv.validate();
    demand.validate();
    slo.validate();
    fatalIf(max_replicas < 1,
            "sizeDisaggFleet: max_replicas must be >= 1");

    DisaggFleetPlan plan;

    ClusterConfig base;
    base.pools.resize(2);
    base.pools[0].name = "prefill";
    base.pools[0].role = PoolRole::PREFILL;
    base.pools[0].cost = prefill.cost;
    base.pools[0].scheduler = prefill.scheduler;
    base.pools[0].hourlyCostUsdPerReplica =
        prefill.hourlyCostUsdPerReplica;
    base.pools[1].name = "decode";
    base.pools[1].role = PoolRole::DECODE;
    base.pools[1].cost = decode.cost;
    base.pools[1].scheduler = decode.scheduler;
    base.pools[1].hourlyCostUsdPerReplica =
        decode.hourlyCostUsdPerReplica;
    base.kvTransfer = kv;
    base.routing = routing;
    base.slo = slo;
    // The cluster's shared event queue inherits the prefill pool's
    // engine choice, so a LEGACY_HEAP caller gets the reference path
    // end to end.
    base.queueEngine = prefill.scheduler.queueEngine;

    // Every (P, D) pair simulates at most once, fed by a fresh
    // Poisson trace from the same seed so probes are comparable.
    // Flat-hashed on the packed (P, D) key: both searches revisit
    // pairs a handful of times, and reserving up front keeps the
    // memo rehash-free.
    std::unordered_map<std::uint64_t, ClusterMetrics> probes;
    probes.reserve(64);
    const auto probe = [&](int p, int d) -> const ClusterMetrics & {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(p) << 32) |
            static_cast<std::uint64_t>(d);
        const auto it = probes.find(key);
        if (it != probes.end())
            return it->second;
        ClusterConfig cfg = base;
        cfg.pools[0].replicas = p;
        cfg.pools[1].replicas = d;
        const auto trace = TraceWorkload::poisson(
            demand.ratePerS, demand.promptLen, demand.outputLen,
            demand.horizonS, demand.seed);
        ++plan.probes;
        obs::counterAdd("sim.disagg.probes");
        return probes
            .emplace(key, simulateCluster(cfg, *trace))
            .first->second;
    };

    // Phase 1: TTFT depends only on the prefill pool (decode never
    // backpressures it), so size it alone with the decode pool
    // pinned at one replica.
    const auto ttft_ok = [&](int p) {
        return probe(p, 1).ttftPercentileS(slo.percentile) <=
               slo.ttftMaxS;
    };
    int lo = 1;
    int hi = 1;
    while (!ttft_ok(hi)) {
        lo = hi + 1;
        if (hi >= max_replicas)
            return plan; // TTFT infeasible even at the ceiling
        hi = std::min(max_replicas, hi * 2);
    }
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (ttft_ok(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    const int best_prefill = hi;

    // Phase 2: with the prefill pool fixed, the decode pool size
    // only moves the TBT tail — the second monotone search.
    const auto slo_ok = [&](int d) {
        return probe(best_prefill, d).meetsSlo(slo);
    };
    lo = 1;
    hi = 1;
    while (!slo_ok(hi)) {
        lo = hi + 1;
        if (hi >= max_replicas)
            return plan; // TBT infeasible even at the ceiling
        hi = std::min(max_replicas, hi * 2);
    }
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (slo_ok(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    const int best_decode = hi;

    plan.feasible = true;
    plan.prefillReplicas = best_prefill;
    plan.decodeReplicas = best_decode;
    plan.devices =
        static_cast<long>(best_prefill) *
            prefill.cost->system().tensorParallel +
        static_cast<long>(best_decode) *
            decode.cost->system().tensorParallel;
    plan.aggregate = probe(best_prefill, best_decode);
    return plan;
}

} // namespace sim
} // namespace acs
