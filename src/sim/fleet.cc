#include "fleet.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/obs.hh"

namespace acs {
namespace sim {

void
FleetDemand::validate() const
{
    fatalIf(ratePerS <= 0.0, "FleetDemand: ratePerS must be > 0");
    fatalIf(horizonS <= 0.0, "FleetDemand: horizonS must be > 0");
    promptLen.validate();
    outputLen.validate();
}

ReplicaMetrics
simulateFleet(const IterationCostModel &cost,
              const FleetDemand &demand, const SchedulerConfig &sched,
              int replicas, common::ThreadPool *pool)
{
    demand.validate();
    sched.validate();
    fatalIf(replicas < 1, "simulateFleet: replicas must be >= 1");

    ReplicaConfig base;
    base.scheduler = sched;
    base.workload.closedLoopClients = 0;
    base.workload.arrivalRatePerS = demand.ratePerS / replicas;
    base.workload.promptLen = demand.promptLen;
    base.workload.outputLen = demand.outputLen;
    base.workload.horizonS = demand.horizonS;

    // Index-addressed slots: each replica writes its own entry, and
    // the merge below walks them in index order, so the aggregate is
    // independent of which worker simulated which replica.
    std::vector<ReplicaMetrics> slots(replicas);
    common::ThreadPool &crew =
        pool ? *pool : common::ThreadPool::shared();
    crew.parallelFor(
        static_cast<std::size_t>(replicas),
        [&](std::size_t i) {
            ReplicaConfig cfg = base;
            cfg.workload.seed = substreamSeed(demand.seed, i);
            slots[i] = simulateReplica(cost, cfg);
        },
        1);

    ReplicaMetrics aggregate = std::move(slots.front());
    for (std::size_t i = 1; i < slots.size(); ++i)
        aggregate.merge(slots[i]);
    return aggregate;
}

FleetSizingResult
sizeFleet(const IterationCostModel &cost, const FleetDemand &demand,
          const SchedulerConfig &sched, const SloTargets &slo,
          int max_replicas, int hint_replicas,
          common::ThreadPool *pool)
{
    const obs::TraceSpan span("sim.sizeFleet");
    demand.validate();
    sched.validate();
    slo.validate();
    fatalIf(max_replicas < 1, "sizeFleet: max_replicas must be >= 1");

    FleetSizingResult result;

    // Probe one size, remembering the best (smallest) feasible
    // aggregate seen so the chosen size never re-simulates.
    int best = 0;
    ReplicaMetrics best_metrics;
    const auto feasible = [&](int replicas) {
        ReplicaMetrics m =
            simulateFleet(cost, demand, sched, replicas, pool);
        ++result.probes;
        obs::counterAdd("sim.fleet.probes");
        const bool ok = m.meetsSlo(slo);
        if (ok && (best == 0 || replicas < best)) {
            best = replicas;
            best_metrics = std::move(m);
        }
        return ok;
    };

    // Bracket: geometric growth from the hint until feasible.
    int lo = 1;
    int hi = std::clamp(hint_replicas, 1, max_replicas);
    while (!feasible(hi)) {
        lo = hi + 1;
        if (hi >= max_replicas)
            return result; // infeasible even at the ceiling
        hi = std::min(max_replicas, hi * 2);
    }

    // Shrink: binary search the smallest feasible size in [lo, hi].
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid + 1;
    }

    result.feasible = true;
    result.replicas = best;
    result.devices =
        static_cast<long>(best) * cost.system().tensorParallel;
    result.aggregate = std::move(best_metrics);
    return result;
}

} // namespace sim
} // namespace acs
