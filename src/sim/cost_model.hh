/**
 * @file
 * Iteration latencies for the serving simulator, memoized over the
 * per-layer analytical model.
 *
 * The event loop charges every scheduler iteration a latency obtained
 * from perf::InferenceSimulator — the same model the DSE uses — so the
 * request-level results stay consistent with the paper's steady-state
 * numbers by construction: a batch-1, zero-queueing run reproduces
 * serve::ServingEstimate exactly (tests/test_sim.cpp pins this).
 *
 * Simulating a layer graph costs microseconds while an event loop
 * executes hundreds of thousands of iterations, so lookups are
 * memoized by (batch, prompt length) for prefill and by batch for
 * decode; workload length quantization (sim::LengthDistribution) keeps
 * the key space small. Values are pure functions of the key, so the
 * memo is a bit-exact speedup, shared safely across the replica
 * simulations a fleet-sizing search fans out.
 *
 * Two interchangeable memo engines (same LEGACY reference pattern as
 * the event queue):
 *
 *  - FLAT (default): lock-free open-addressing tables
 *    (common::AtomicFlatMemo) over the quantized key space — a hit is
 *    a hash plus a couple of atomic loads, with no mutex on the hot
 *    path. The tables are fixed-capacity; should a pathological
 *    workload overflow them, misses spill into an unbounded
 *    common::ShardedCache tier (lock-striped, read-mostly), so
 *    memoization never silently degrades to recompute-every-call.
 *    Both tiers live in the model itself, which sizeFleet /
 *    sizeDisaggFleet share across every replica they fan out — one
 *    probe's misses are all later probes' hits.
 *  - LEGACY_MAP: the original mutex + std::map path, kept as the
 *    bit-identity reference (tests compare the two engines
 *    EXPECT_DOUBLE_EQ on randomized key sequences).
 */

#ifndef ACS_SIM_COST_MODEL_HH
#define ACS_SIM_COST_MODEL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "common/flat_memo.hh"
#include "common/sharded_cache.hh"
#include "perf/simulator.hh"

namespace acs {
namespace sim {

/** Which memo structure an IterationCostModel runs on. */
enum class MemoEngine
{
    FLAT,       //!< lock-free flat tables + sharded overflow (fast)
    LEGACY_MAP, //!< original mutex + std::map reference
};

/**
 * Memoized per-iteration latency and memory footprint oracle for one
 * (device, model, system) triple.
 *
 * Thread-safe: FLAT reads are lock-free and inserts are atomic
 * first-writer-wins; the LEGACY_MAP engine guards its maps with a
 * mutex. Either way a racing double-compute stores identical bits
 * (values are deterministic), so concurrent replica simulations can
 * share one model freely.
 */
class IterationCostModel
{
  public:
    /**
     * @param cfg       Device to serve on (validated; copied).
     * @param model_cfg Transformer served by the replica (validated).
     * @param reference Reference setting: supplies precision and the
     *                  representative sequence lengths for the decode
     *                  context (its batch field is ignored — iteration
     *                  batches come from the scheduler).
     * @param sys       Tensor-parallel system configuration.
     * @param params    Performance-model constants.
     * @param memo      Memo engine (FLAT unless A/B-testing).
     */
    IterationCostModel(const hw::HardwareConfig &cfg,
                       const model::TransformerConfig &model_cfg,
                       const model::InferenceSetting &reference,
                       const perf::SystemConfig &sys,
                       const perf::PerfParams &params =
                           perf::PerfParams{},
                       MemoEngine memo = MemoEngine::FLAT);

    /**
     * Full-model latency of one prefill iteration processing @p batch
     * prompts padded to @p prompt_len tokens. Equals the analytical
     * TTFT of an InferenceSetting with that batch and input length.
     */
    double prefillS(int batch, int prompt_len) const;

    /**
     * Full-model latency of one decode iteration over @p batch
     * requests, at the reference setting's representative
     * mid-generation context (model::InferenceSetting::
     * decodeContextLen()). Equals the analytical TBT at that batch.
     */
    double decodeStepS(int batch) const;

    /** Per-device weight footprint of the served model (bytes). */
    double weightBytesPerDevice() const { return weightBytes_; }

    /** Per-device KV-cache bytes one request consumes per token. */
    double kvBytesPerTokenPerDevice() const { return kvBytesPerToken_; }

    /**
     * Per-device HBM bytes available for KV cache after weights
     * (never negative; 0 means the model does not fit at all).
     */
    double kvBudgetBytes() const { return kvBudget_; }

    /** Distinct simulator evaluations performed so far (memo misses). */
    std::size_t memoMisses() const;

    MemoEngine memoEngine() const { return memo_; }

    const hw::HardwareConfig &device() const { return sim_.device(); }
    const model::TransformerConfig &model() const { return modelCfg_; }
    const model::InferenceSetting &reference() const { return ref_; }
    const perf::SystemConfig &system() const { return sys_; }
    const perf::InferenceSimulator &simulator() const { return sim_; }

  private:
    double computePrefillS(int batch, int prompt_len) const;
    double computeDecodeStepS(int batch) const;

    perf::InferenceSimulator sim_;
    model::TransformerConfig modelCfg_;
    model::InferenceSetting ref_;
    perf::SystemConfig sys_;
    MemoEngine memo_;
    double weightBytes_ = 0.0;
    double kvBytesPerToken_ = 0.0;
    double kvBudget_ = 0.0;

    // FLAT engine: lock-free first tier + unbounded spill tier.
    mutable common::AtomicFlatMemo prefillFlat_{1 << 13};
    mutable common::AtomicFlatMemo decodeFlat_{1 << 10};
    mutable common::ShardedCache<std::uint64_t, double> overflow_{8};

    // LEGACY_MAP engine.
    mutable std::mutex mu_; //!< guards both memo maps
    mutable std::map<std::pair<int, int>, double> prefillMemo_;
    mutable std::map<int, double> decodeMemo_;
};

} // namespace sim
} // namespace acs

#endif // ACS_SIM_COST_MODEL_HH
