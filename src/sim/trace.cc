#include "trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "common/logging.hh"

namespace acs {
namespace sim {

double
DiurnalTraceSpec::rateAt(double t, bool in_burst) const
{
    // Sinusoid with mean baseRatePerS and amplitude a chosen so that
    // peak/trough == peakToTrough: a = (r - 1) / (r + 1).
    const double a = (peakToTrough - 1.0) / (peakToTrough + 1.0);
    const double envelope =
        baseRatePerS *
        (1.0 + a * std::sin(2.0 * M_PI * t / periodS));
    return in_burst ? envelope * burstMultiplier : envelope;
}

void
DiurnalTraceSpec::validate() const
{
    fatalIf(baseRatePerS <= 0.0,
            "DiurnalTraceSpec: baseRatePerS must be > 0");
    fatalIf(peakToTrough < 1.0,
            "DiurnalTraceSpec: peakToTrough must be >= 1");
    fatalIf(periodS <= 0.0, "DiurnalTraceSpec: periodS must be > 0");
    fatalIf(burstMultiplier < 1.0,
            "DiurnalTraceSpec: burstMultiplier must be >= 1");
    fatalIf(burstMeanS <= 0.0,
            "DiurnalTraceSpec: burstMeanS must be > 0");
    fatalIf(calmMeanS <= 0.0,
            "DiurnalTraceSpec: calmMeanS must be > 0");
    fatalIf(horizonS <= 0.0, "DiurnalTraceSpec: horizonS must be > 0");
    promptLen.validate();
    outputLen.validate();
}

bool
TraceWorkload::next(TraceRequest &out)
{
    TraceRequest r;
    if (!produce(r))
        return false;
    // Branch-then-throw: fatalIf would build the message (two
    // to_string calls) on every generated request.
    if (r.arrivalS < lastArrivalS_) {
        fatal("TraceWorkload: arrivals must be non-decreasing (got " +
              std::to_string(r.arrivalS) + " after " +
              std::to_string(lastArrivalS_) + ")");
    }
    if (r.promptLen < 1 || r.outputLen < 1)
        fatal("TraceWorkload: prompt/output lengths must be >= 1");
    lastArrivalS_ = r.arrivalS;
    ++produced_;
    out = r;
    return true;
}

namespace {

/** Open-loop Poisson stream in streaming form. */
class PoissonTrace final : public TraceWorkload
{
  public:
    PoissonTrace(double rate_per_s, const LengthDistribution &prompt,
                 const LengthDistribution &output, double horizon_s,
                 std::uint64_t seed)
        : rate_(rate_per_s), prompt_(prompt), output_(output),
          horizon_(horizon_s),
          arrivalRng_(substreamSeed(seed, 0)),
          lengthRng_(substreamSeed(seed, 1))
    {
        fatalIf(rate_ <= 0.0,
                "TraceWorkload::poisson: rate must be > 0");
        fatalIf(horizon_ <= 0.0,
                "TraceWorkload::poisson: horizon must be > 0");
        prompt_.validate();
        output_.validate();
    }

  protected:
    bool
    produce(TraceRequest &out) override
    {
        nextS_ += sampleExponentialS(arrivalRng_, rate_);
        if (nextS_ >= horizon_)
            return false;
        out.arrivalS = nextS_;
        out.promptLen = prompt_.sample(lengthRng_);
        out.outputLen = output_.sample(lengthRng_);
        return true;
    }

  private:
    double rate_;
    LengthDistribution prompt_;
    LengthDistribution output_;
    double horizon_;
    Rng arrivalRng_;
    Rng lengthRng_;
    double nextS_ = 0.0;
};

/**
 * Diurnal sinusoid x two-state burst modulation, sampled by thinning:
 * draw candidate arrivals from a homogeneous Poisson stream at the
 * maximum achievable rate and accept each with probability
 * rate(t)/maxRate. The burst state evolves on its own substream with
 * exponential dwell times, advanced lazily to each candidate time.
 */
class DiurnalTrace final : public TraceWorkload
{
  public:
    explicit DiurnalTrace(const DiurnalTraceSpec &spec) : spec_(spec)
    {
        spec_.validate();
        arrivalRng_ = Rng(substreamSeed(spec_.seed, 0));
        lengthRng_ = Rng(substreamSeed(spec_.seed, 1));
        stateRng_ = Rng(substreamSeed(spec_.seed, 2));
        const double a =
            (spec_.peakToTrough - 1.0) / (spec_.peakToTrough + 1.0);
        maxRate_ =
            spec_.baseRatePerS * (1.0 + a) * spec_.burstMultiplier;
        nextToggleS_ =
            sampleExponentialS(stateRng_, 1.0 / spec_.calmMeanS);
    }

  protected:
    bool
    produce(TraceRequest &out) override
    {
        for (;;) {
            candidateS_ +=
                sampleExponentialS(arrivalRng_, maxRate_);
            if (candidateS_ >= spec_.horizonS)
                return false;
            advanceStateTo(candidateS_);
            const double accept =
                spec_.rateAt(candidateS_, inBurst_) / maxRate_;
            if (arrivalRng_.uniform() < accept) {
                out.arrivalS = candidateS_;
                out.promptLen = spec_.promptLen.sample(lengthRng_);
                out.outputLen = spec_.outputLen.sample(lengthRng_);
                return true;
            }
        }
    }

  private:
    void
    advanceStateTo(double t)
    {
        while (nextToggleS_ <= t) {
            inBurst_ = !inBurst_;
            const double mean =
                inBurst_ ? spec_.burstMeanS : spec_.calmMeanS;
            nextToggleS_ +=
                sampleExponentialS(stateRng_, 1.0 / mean);
        }
    }

    DiurnalTraceSpec spec_;
    Rng arrivalRng_{0};
    Rng lengthRng_{0};
    Rng stateRng_{0};
    double maxRate_ = 0.0;
    double candidateS_ = 0.0;
    bool inBurst_ = false;
    double nextToggleS_ = 0.0;
};

/** Round @p len up to a positive multiple of @p quantum. */
int
quantizeLen(int len, int quantum)
{
    if (len < 1)
        len = 1;
    const int rem = len % quantum;
    return rem == 0 ? len : len + (quantum - rem);
}

/** Streaming CSV replay: one row parsed per produce() call. */
class CsvTrace final : public TraceWorkload
{
  public:
    CsvTrace(std::unique_ptr<std::istream> in, std::string label,
             int length_quantum)
        : in_(std::move(in)), label_(std::move(label)),
          quantum_(length_quantum)
    {
        fatalIf(!in_ || !*in_,
                "TraceWorkload: cannot read trace '" + label_ + "'");
        fatalIf(quantum_ < 1,
                "TraceWorkload: length_quantum must be >= 1");
    }

  protected:
    bool
    produce(TraceRequest &out) override
    {
        std::string line;
        while (std::getline(*in_, line)) {
            ++lineNo_;
            // Skip blank lines and a leading header row.
            if (line.empty() ||
                line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            if (lineNo_ == 1 &&
                line.find_first_not_of("0123456789.,eE+- \t\r") !=
                    std::string::npos)
                continue;
            std::istringstream row(line);
            double arrival = 0.0;
            long prompt = 0;
            long output = 0;
            char c1 = 0;
            char c2 = 0;
            row >> arrival >> c1 >> prompt >> c2 >> output;
            fatalIf(row.fail() || c1 != ',' || c2 != ',',
                    "TraceWorkload: malformed row " +
                        std::to_string(lineNo_) + " in '" + label_ +
                        "': expected arrival_s,prompt_len,output_len");
            out.arrivalS = arrival;
            out.promptLen =
                quantizeLen(static_cast<int>(prompt), quantum_);
            out.outputLen =
                quantizeLen(static_cast<int>(output), quantum_);
            return true;
        }
        return false;
    }

  private:
    std::unique_ptr<std::istream> in_;
    std::string label_;
    int quantum_;
    std::uint64_t lineNo_ = 0;
};

/** In-memory replay of a pre-built schedule. */
class FixedTrace final : public TraceWorkload
{
  public:
    explicit FixedTrace(std::vector<TraceRequest> requests)
        : requests_(std::move(requests))
    {
        fatalIf(!std::is_sorted(requests_.begin(), requests_.end(),
                                [](const TraceRequest &a,
                                   const TraceRequest &b) {
                                    return a.arrivalS < b.arrivalS;
                                }),
                "TraceWorkload::fixedSchedule: requests must be "
                "sorted by arrival time");
    }

  protected:
    bool
    produce(TraceRequest &out) override
    {
        if (next_ >= requests_.size())
            return false;
        out = requests_[next_++];
        return true;
    }

  private:
    std::vector<TraceRequest> requests_;
    std::size_t next_ = 0;
};

} // anonymous namespace

std::unique_ptr<TraceWorkload>
TraceWorkload::poisson(double rate_per_s,
                       const LengthDistribution &prompt,
                       const LengthDistribution &output,
                       double horizon_s, std::uint64_t seed)
{
    return std::make_unique<PoissonTrace>(rate_per_s, prompt, output,
                                          horizon_s, seed);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::diurnal(const DiurnalTraceSpec &spec)
{
    return std::make_unique<DiurnalTrace>(spec);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromCsvFile(const std::string &path, int length_quantum)
{
    auto in = std::make_unique<std::ifstream>(path);
    fatalIf(!*in, "TraceWorkload: cannot open trace file '" + path +
                      "'");
    return std::make_unique<CsvTrace>(std::move(in), path,
                                      length_quantum);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromCsv(std::unique_ptr<std::istream> in,
                       const std::string &label, int length_quantum)
{
    return std::make_unique<CsvTrace>(std::move(in), label,
                                      length_quantum);
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fixedSchedule(std::vector<TraceRequest> requests)
{
    return std::make_unique<FixedTrace>(std::move(requests));
}

} // namespace sim
} // namespace acs
