/**
 * @file
 * The discrete-event engine: a virtual clock and a deterministic
 * event queue.
 *
 * Everything in acs::sim advances on simulated seconds, never wall
 * time. The queue is a min-heap ordered by (time, insertion sequence):
 * two events at the same instant pop in the order they were pushed, so
 * a run's event interleaving — and therefore every downstream metric —
 * is a pure function of the inputs and the RNG seed.
 */

#ifndef ACS_SIM_EVENT_HH
#define ACS_SIM_EVENT_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/logging.hh"

namespace acs {
namespace sim {

/** What a scheduled event means to the replica loop. */
enum class EventKind
{
    ARRIVAL,     //!< a request joins the admission queue
    ITER_DONE,   //!< the in-flight scheduler iteration completes
    CLIENT_WAKE, //!< a closed-loop client finishes its think time
    KV_DONE,     //!< a prefill->decode KV transfer completes (cluster)
};

/** One scheduled occurrence on the virtual timeline. */
struct Event
{
    double timeS = 0.0;        //!< virtual time of the occurrence
    std::uint64_t seq = 0;     //!< insertion order (FIFO tie-break)
    EventKind kind = EventKind::ARRIVAL;
    std::uint64_t payload = 0; //!< kind-specific (e.g. client index)
};

/**
 * Deterministic min-heap of pending events.
 *
 * Not thread-safe: one queue belongs to one replica simulation, and
 * the event loop itself is single-threaded by design (fleet-sizing
 * parallelism is across independent replicas, never within one).
 */
class EventQueue
{
  public:
    /** Schedule @p kind at virtual time @p time_s (>= 0, finite). */
    void
    push(double time_s, EventKind kind, std::uint64_t payload = 0)
    {
        panicIf(!(time_s >= 0.0), "EventQueue: event time must be >= 0");
        heap_.push(Event{time_s, nextSeq_++, kind, payload});
    }

    /** Remove and return the earliest event (fatal when empty). */
    Event
    pop()
    {
        panicIf(heap_.empty(), "EventQueue: pop on empty queue");
        Event e = heap_.top();
        heap_.pop();
        return e;
    }

    /** Earliest pending event without removing it (fatal when empty). */
    const Event &
    peek() const
    {
        panicIf(heap_.empty(), "EventQueue: peek on empty queue");
        return heap_.top();
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

  private:
    /** Later (time, seq) sorts lower, making top() the earliest. */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.timeS != b.timeS)
                return a.timeS > b.timeS;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, After> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sim
} // namespace acs

#endif // ACS_SIM_EVENT_HH
