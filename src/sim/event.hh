/**
 * @file
 * The discrete-event engine: a virtual clock and a deterministic
 * event queue.
 *
 * Everything in acs::sim advances on simulated seconds, never wall
 * time. The queue pops in (time, insertion sequence) order: two
 * events at the same instant pop in the order they were pushed, so a
 * run's event interleaving — and therefore every downstream metric —
 * is a pure function of the inputs and the RNG seed.
 *
 * Two interchangeable engines implement that contract (the PR 3
 * LEGACY_WALK pattern: keep the slow reference selectable and
 * property-test bit-identity against it):
 *
 *  - CALENDAR (default): an indexed calendar/bucket queue. Virtual
 *    time is cut into fixed-width buckets; an event lands in bucket
 *    floor(time / width) mod nbuckets, and pop scans forward from a
 *    persistent cursor, taking the (time, seq)-minimum among events
 *    whose absolute bucket index equals the cursor. Push and pop are
 *    amortized O(1) instead of the heap's O(log n), and — decisive
 *    for the trace-scale fast path — popping the minimum is a
 *    swap-with-back from a small vector, not a sift-down. The bucket
 *    array doubles (and the width re-estimates from the observed
 *    inter-event gaps) when occupancy outgrows it. Ordering never
 *    depends on the bucket geometry: eligibility is an exact integer
 *    comparison of floor(time / width) values computed identically
 *    at push and scan time, and the (time, seq) minimum is selected
 *    with exact comparisons, so the pop sequence is bit-identical to
 *    the heap's for every width/bucket-count state.
 *
 *  - LEGACY_HEAP: the original binary min-heap, kept as the
 *    reference implementation. tests/test_sim.cpp property-tests
 *    identical pop order on randomized schedules.
 */

#ifndef ACS_SIM_EVENT_HH
#define ACS_SIM_EVENT_HH

#include <cstdint>
#include <vector>

namespace acs {
namespace sim {

/** What a scheduled event means to the replica loop. */
enum class EventKind
{
    ARRIVAL,     //!< a request joins the admission queue
    ITER_DONE,   //!< the in-flight scheduler iteration completes
    CLIENT_WAKE, //!< a closed-loop client finishes its think time
    KV_DONE,     //!< a prefill->decode KV transfer completes (cluster)
};

/** One scheduled occurrence on the virtual timeline. */
struct Event
{
    double timeS = 0.0;        //!< virtual time of the occurrence
    std::uint64_t seq = 0;     //!< insertion order (FIFO tie-break)
    EventKind kind = EventKind::ARRIVAL;
    std::uint64_t payload = 0; //!< kind-specific (e.g. client index)
};

/** Which pending-event structure an EventQueue runs on. */
enum class QueueEngine
{
    CALENDAR,    //!< indexed calendar/bucket queue (the fast path)
    LEGACY_HEAP, //!< original binary min-heap reference
};

/**
 * Deterministic queue of pending events (see the file comment for
 * the two engines; both pop in exact (time, seq) order).
 *
 * Not thread-safe: one queue belongs to one replica simulation, and
 * the event loop itself is single-threaded by design (fleet-sizing
 * parallelism is across independent replicas, never within one).
 */
class EventQueue
{
  public:
    explicit EventQueue(QueueEngine engine = QueueEngine::CALENDAR);

    /**
     * Pre-size the internal storage for about @p expected pending
     * events, so the steady-state loop never allocates. Replica and
     * cluster setup call this with their in-flight high-water
     * estimate; calling it mid-run is allowed.
     */
    void reserve(std::size_t expected);

    /**
     * Schedule @p kind at virtual time @p time_s. Panics (with the
     * offending value in the message) on NaN or negative times.
     */
    void push(double time_s, EventKind kind, std::uint64_t payload = 0);

    /** Remove and return the earliest event (fatal when empty). */
    Event pop();

    /** Earliest pending event without removing it (fatal when empty). */
    const Event &peek() const;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    QueueEngine engine() const { return engine_; }

  private:
    /** Calendar slot: the event plus its precomputed abs. bucket. */
    struct Slot
    {
        Event ev;
        std::uint64_t abs = 0; //!< floor(timeS / width_) at push time
    };

    std::uint64_t absIndexOf(double time_s) const;
    void calendarPush(const Event &e);
    /** (bucket, index) of the earliest calendar event. */
    std::pair<std::size_t, std::size_t> locate() const;
    /** Re-bucket everything into @p nbuckets, re-estimating width. */
    void rebuild(std::size_t nbuckets);

    QueueEngine engine_;
    std::uint64_t nextSeq_ = 0;
    std::size_t size_ = 0;

    // --- CALENDAR state ---
    std::vector<std::vector<Slot>> buckets_;
    double width_ = 1.0; //!< seconds of virtual time per bucket
    /**
     * Scan cursor: every pending event has abs >= cursor_ (pushes
     * behind the cursor pull it back). locate() advances it past
     * exhausted buckets, so the state persists across pops; mutable
     * because peek() shares the scan.
     */
    mutable std::uint64_t cursor_ = 0;

    // --- LEGACY_HEAP state ---
    /** Later (time, seq) sorts lower, making front() the earliest. */
    struct After
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.timeS != b.timeS)
                return a.timeS > b.timeS;
            return a.seq > b.seq;
        }
    };

    std::vector<Event> heap_;
};

} // namespace sim
} // namespace acs

#endif // ACS_SIM_EVENT_HH
