#include "database.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acs {
namespace devices {

namespace {

using policy::MarketSegment;

constexpr MarketSegment DC = MarketSegment::DATA_CENTER;
constexpr MarketSegment CONS = MarketSegment::CONSUMER;
constexpr MarketSegment WORK = MarketSegment::WORKSTATION;

/*
 * Catalogue rows (65 devices: 14 data-center + 51 non-data-center,
 * matching the paper's Sec. 5.2 population):
 * {name, vendor, year, month, segment,
 *  tpp, devBW GB/s, die mm^2, non-planar, mem GB, memBW GB/s}
 *
 * TPP uses the vendor's advertised dense (non-sparse) tensor peak
 * times bitwidth: FP16-accumulate rate for Ada/Hopper/CDNA parts and
 * data-center Ampere, the FP32-accumulate headline rate for GeForce
 * Ampere, packed-FP16 vector rate for pre-tensor-core parts, and the
 * FP8-basis figure for the L4. Device bandwidth is the aggregate
 * bidirectional interconnect (NVLink / Infinity Fabric; PCIe-only
 * parts list the PCIe x16 bidirectional rate).
 */
const DeviceRecord CATALOGUE[] = {
    // ---- Data center (14) ---------------------------------------------
    {"NVIDIA A100 80GB", Vendor::NVIDIA, 2020, 11, DC,
     4992.0, 600.0, 826.0, true, 80.0, 2039.0},
    {"NVIDIA A800", Vendor::NVIDIA, 2022, 8, DC,
     4992.0, 400.0, 826.0, true, 80.0, 2039.0},
    {"NVIDIA A30", Vendor::NVIDIA, 2021, 4, DC,
     2640.0, 200.0, 826.0, true, 24.0, 933.0},
    {"NVIDIA A40", Vendor::NVIDIA, 2020, 10, DC,
     2395.0, 112.5, 628.0, true, 48.0, 696.0},
    {"NVIDIA H100 SXM", Vendor::NVIDIA, 2023, 3, DC,
     15824.0, 900.0, 814.0, true, 80.0, 3350.0},
    {"NVIDIA H800", Vendor::NVIDIA, 2023, 3, DC,
     15824.0, 400.0, 814.0, true, 80.0, 3350.0},
    {"NVIDIA H20", Vendor::NVIDIA, 2023, 11, DC,
     2368.0, 900.0, 814.0, true, 96.0, 4000.0},
    {"NVIDIA L40", Vendor::NVIDIA, 2022, 10, DC,
     2898.0, 64.0, 608.5, true, 48.0, 864.0},
    {"NVIDIA L20", Vendor::NVIDIA, 2023, 11, DC,
     1912.0, 64.0, 608.5, true, 48.0, 864.0},
    {"NVIDIA L4", Vendor::NVIDIA, 2023, 3, DC,
     968.0, 64.0, 294.5, true, 24.0, 300.0},
    {"NVIDIA L2", Vendor::NVIDIA, 2023, 12, DC,
     1552.0, 64.0, 294.5, true, 24.0, 300.0},
    {"AMD Instinct MI210", Vendor::AMD, 2021, 12, DC,
     2896.0, 300.0, 724.0, true, 64.0, 1638.0},
    {"AMD Instinct MI250X", Vendor::AMD, 2021, 11, DC,
     6128.0, 800.0, 1448.0, true, 128.0, 3277.0},
    {"AMD Instinct MI300X", Vendor::AMD, 2023, 12, DC,
     20918.0, 1024.0, 2400.0, true, 192.0, 5300.0},

    // ---- NVIDIA consumer (24) ------------------------------------------
    {"NVIDIA RTX 2080 Ti", Vendor::NVIDIA, 2018, 9, CONS,
     1722.0, 100.0, 754.0, true, 11.0, 616.0},
    {"NVIDIA RTX 2080 Super", Vendor::NVIDIA, 2019, 7, CONS,
     1427.0, 50.0, 545.0, true, 8.0, 496.0},
    {"NVIDIA RTX 2080", Vendor::NVIDIA, 2018, 9, CONS,
     1288.0, 50.0, 545.0, true, 8.0, 448.0},
    {"NVIDIA RTX 2070 Super", Vendor::NVIDIA, 2019, 7, CONS,
     1160.0, 0.0, 545.0, true, 8.0, 448.0},
    {"NVIDIA RTX 2070", Vendor::NVIDIA, 2018, 10, CONS,
     1007.0, 0.0, 445.0, true, 8.0, 448.0},
    {"NVIDIA RTX 2060 Super", Vendor::NVIDIA, 2019, 7, CONS,
     918.0, 0.0, 445.0, true, 8.0, 448.0},
    {"NVIDIA RTX 2060", Vendor::NVIDIA, 2019, 1, CONS,
     826.0, 0.0, 445.0, true, 6.0, 336.0},
    {"NVIDIA GTX 1660 Ti", Vendor::NVIDIA, 2019, 2, CONS,
     178.0, 0.0, 284.0, true, 6.0, 288.0},
    {"NVIDIA RTX 3090 Ti", Vendor::NVIDIA, 2022, 3, CONS,
     1280.0, 0.0, 628.0, true, 24.0, 1008.0},
    {"NVIDIA RTX 3090", Vendor::NVIDIA, 2020, 9, CONS,
     1136.0, 112.5, 628.0, true, 24.0, 936.0},
    {"NVIDIA RTX 3080 Ti", Vendor::NVIDIA, 2021, 6, CONS,
     1093.0, 0.0, 628.0, true, 12.0, 912.0},
    {"NVIDIA RTX 3080", Vendor::NVIDIA, 2020, 9, CONS,
     952.0, 0.0, 628.0, true, 10.0, 760.0},
    {"NVIDIA RTX 3070 Ti", Vendor::NVIDIA, 2021, 6, CONS,
     696.0, 0.0, 392.0, true, 8.0, 608.0},
    {"NVIDIA RTX 3070", Vendor::NVIDIA, 2020, 10, CONS,
     650.0, 0.0, 392.0, true, 8.0, 448.0},
    {"NVIDIA RTX 3060 Ti", Vendor::NVIDIA, 2020, 12, CONS,
     518.0, 0.0, 392.0, true, 8.0, 448.0},
    {"NVIDIA RTX 3060", Vendor::NVIDIA, 2021, 2, CONS,
     410.0, 0.0, 276.0, true, 12.0, 360.0},
    {"NVIDIA RTX 3050", Vendor::NVIDIA, 2022, 1, CONS,
     291.0, 0.0, 276.0, true, 8.0, 224.0},
    {"NVIDIA RTX 4090", Vendor::NVIDIA, 2022, 10, CONS,
     5285.0, 63.0, 608.5, true, 24.0, 1008.0},
    {"NVIDIA RTX 4090D", Vendor::NVIDIA, 2023, 12, CONS,
     4708.0, 63.0, 608.5, true, 24.0, 1008.0},
    {"NVIDIA RTX 4080", Vendor::NVIDIA, 2022, 11, CONS,
     3118.0, 63.0, 378.6, true, 16.0, 717.0},
    {"NVIDIA RTX 4070 Ti", Vendor::NVIDIA, 2023, 1, CONS,
     2566.0, 63.0, 294.5, true, 12.0, 504.0},
    {"NVIDIA RTX 4070", Vendor::NVIDIA, 2023, 4, CONS,
     1866.0, 63.0, 294.5, true, 12.0, 504.0},
    {"NVIDIA RTX 4060 Ti", Vendor::NVIDIA, 2023, 5, CONS,
     1418.0, 63.0, 187.8, true, 8.0, 288.0},
    {"NVIDIA RTX 4060", Vendor::NVIDIA, 2023, 6, CONS,
     974.0, 63.0, 158.7, true, 8.0, 272.0},

    // ---- NVIDIA workstation (6) ------------------------------------------
    {"NVIDIA TITAN RTX", Vendor::NVIDIA, 2018, 12, WORK,
     2088.0, 100.0, 754.0, true, 24.0, 672.0},
    {"NVIDIA RTX A5000", Vendor::NVIDIA, 2021, 4, WORK,
     1778.0, 112.5, 628.0, true, 24.0, 768.0},
    {"NVIDIA RTX A4000", Vendor::NVIDIA, 2021, 4, WORK,
     1227.0, 0.0, 392.0, true, 16.0, 448.0},
    {"NVIDIA RTX A2000", Vendor::NVIDIA, 2021, 8, WORK,
     510.0, 0.0, 276.0, true, 12.0, 288.0},
    {"NVIDIA RTX 5000 Ada", Vendor::NVIDIA, 2023, 8, WORK,
     4181.0, 63.0, 608.5, true, 32.0, 576.0},
    {"NVIDIA RTX 4000 Ada", Vendor::NVIDIA, 2023, 8, WORK,
     1530.0, 63.0, 294.5, true, 20.0, 360.0},

    // ---- AMD consumer (18) -----------------------------------------------
    {"AMD Radeon VII", Vendor::AMD, 2019, 2, CONS,
     430.0, 0.0, 331.0, true, 16.0, 1024.0},
    {"AMD RX 5700 XT", Vendor::AMD, 2019, 7, CONS,
     312.0, 0.0, 251.0, true, 8.0, 448.0},
    {"AMD RX 5600 XT", Vendor::AMD, 2020, 1, CONS,
     230.0, 0.0, 251.0, true, 6.0, 336.0},
    {"AMD RX 5500 XT", Vendor::AMD, 2019, 12, CONS,
     166.0, 0.0, 158.0, true, 8.0, 224.0},
    {"AMD RX 6900 XT", Vendor::AMD, 2020, 12, CONS,
     738.0, 0.0, 520.0, true, 16.0, 512.0},
    {"AMD RX 6950 XT", Vendor::AMD, 2022, 5, CONS,
     757.0, 0.0, 520.0, true, 16.0, 576.0},
    {"AMD RX 6800 XT", Vendor::AMD, 2020, 11, CONS,
     664.0, 0.0, 520.0, true, 16.0, 512.0},
    {"AMD RX 6800", Vendor::AMD, 2020, 11, CONS,
     517.0, 0.0, 520.0, true, 16.0, 512.0},
    {"AMD RX 6750 XT", Vendor::AMD, 2022, 5, CONS,
     443.0, 0.0, 335.0, true, 12.0, 432.0},
    {"AMD RX 6700 XT", Vendor::AMD, 2021, 3, CONS,
     423.0, 0.0, 335.0, true, 12.0, 384.0},
    {"AMD RX 6600 XT", Vendor::AMD, 2021, 8, CONS,
     339.0, 0.0, 237.0, true, 8.0, 256.0},
    {"AMD RX 6600", Vendor::AMD, 2021, 10, CONS,
     286.0, 0.0, 237.0, true, 8.0, 224.0},
    {"AMD RX 6500 XT", Vendor::AMD, 2022, 1, CONS,
     184.0, 0.0, 107.0, true, 4.0, 144.0},
    {"AMD RX 7900 XTX", Vendor::AMD, 2022, 12, CONS,
     1965.0, 0.0, 522.0, true, 24.0, 960.0},
    {"AMD RX 7900 XT", Vendor::AMD, 2022, 12, CONS,
     1648.0, 0.0, 487.0, true, 20.0, 800.0},
    {"AMD RX 7800 XT", Vendor::AMD, 2023, 9, CONS,
     1195.0, 0.0, 350.0, true, 16.0, 624.0},
    {"AMD RX 7700 XT", Vendor::AMD, 2023, 9, CONS,
     1120.0, 0.0, 312.0, true, 12.0, 432.0},
    {"AMD RX 7600 XT", Vendor::AMD, 2024, 1, CONS,
     721.0, 0.0, 204.0, true, 16.0, 288.0},

    // (RX 7600 completes the AMD consumer set at 19 entries? No —
    // see count note below; the 7600 keeps the catalogue at 65.)
    {"AMD RX 7600", Vendor::AMD, 2023, 5, CONS,
     696.0, 0.0, 204.0, true, 8.0, 288.0},

    // ---- AMD workstation (2) ----------------------------------------------
    {"AMD Radeon Pro W6800", Vendor::AMD, 2021, 6, WORK,
     570.0, 0.0, 520.0, true, 32.0, 512.0},
    {"AMD Radeon Pro W7800", Vendor::AMD, 2023, 4, WORK,
     1430.0, 0.0, 464.0, true, 32.0, 576.0},
};

} // anonymous namespace

std::string
toString(Vendor vendor)
{
    switch (vendor) {
      case Vendor::NVIDIA: return "NVIDIA";
      case Vendor::AMD:    return "AMD";
    }
    panic("unknown Vendor");
}

policy::DeviceSpec
DeviceRecord::toSpec() const
{
    policy::DeviceSpec spec;
    spec.name = name;
    spec.tpp = tpp;
    spec.deviceBandwidthGBps = deviceBandwidthGBps;
    spec.dieAreaMm2 = dieAreaMm2;
    spec.nonPlanarTransistor = nonPlanarTransistor;
    spec.market = market;
    spec.memCapacityGB = memCapacityGB;
    spec.memBandwidthGBps = memBandwidthGBps;
    return spec;
}

Database::Database()
    : Database(std::vector<DeviceRecord>(std::begin(CATALOGUE),
                                         std::end(CATALOGUE)))
{}

Database::Database(std::vector<DeviceRecord> records)
    : records_(std::move(records))
{
    std::sort(records_.begin(), records_.end(),
              [](const DeviceRecord &a, const DeviceRecord &b) {
                  if (a.releaseYear != b.releaseYear)
                      return a.releaseYear < b.releaseYear;
                  if (a.releaseMonth != b.releaseMonth)
                      return a.releaseMonth < b.releaseMonth;
                  return a.name < b.name;
              });
    for (const DeviceRecord &rec : records_) {
        fatalIf(rec.tpp < 0.0 || rec.dieAreaMm2 <= 0.0 ||
                rec.memCapacityGB <= 0.0 || rec.memBandwidthGBps <= 0.0,
                "malformed catalogue row: " + rec.name);
    }
}

std::optional<DeviceRecord>
Database::byName(const std::string &name) const
{
    for (const DeviceRecord &rec : records_) {
        if (rec.name == name)
            return rec;
    }
    return std::nullopt;
}

std::vector<DeviceRecord>
Database::bySegment(policy::MarketSegment segment) const
{
    std::vector<DeviceRecord> out;
    for (const DeviceRecord &rec : records_) {
        if (rec.market == segment)
            out.push_back(rec);
    }
    return out;
}

std::vector<DeviceRecord>
Database::byVendor(Vendor vendor) const
{
    std::vector<DeviceRecord> out;
    for (const DeviceRecord &rec : records_) {
        if (rec.vendor == vendor)
            out.push_back(rec);
    }
    return out;
}

std::vector<DeviceRecord>
Database::byYearRange(int first_year, int last_year) const
{
    fatalIf(first_year > last_year,
            "byYearRange: first_year must be <= last_year");
    std::vector<DeviceRecord> out;
    for (const DeviceRecord &rec : records_) {
        if (rec.releaseYear >= first_year && rec.releaseYear <= last_year)
            out.push_back(rec);
    }
    return out;
}

std::vector<policy::DeviceSpec>
Database::allSpecs() const
{
    std::vector<policy::DeviceSpec> out;
    out.reserve(records_.size());
    for (const DeviceRecord &rec : records_)
        out.push_back(rec.toSpec());
    return out;
}

} // namespace devices
} // namespace acs
