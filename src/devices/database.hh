/**
 * @file
 * Database of real AMD/NVIDIA devices (2018-2024) used by the
 * classification studies (Figs. 1, 2, 9, 10).
 *
 * Values come from vendor datasheets/whitepapers and the public spec
 * databases the paper cites. TPP is the dense (non-sparse) peak tensor
 * throughput times operation bitwidth; for pre-tensor-core devices the
 * packed FP16 vector peak is used. Die area is the compute die(s)
 * total; all listed devices use non-planar (FinFET) processes.
 */

#ifndef ACS_DEVICES_DATABASE_HH
#define ACS_DEVICES_DATABASE_HH

#include <optional>
#include <string>
#include <vector>

#include "policy/device_spec.hh"

namespace acs {
namespace devices {

/** Device vendor. */
enum class Vendor
{
    NVIDIA,
    AMD,
};

/** Human-readable vendor name. */
std::string toString(Vendor vendor);

/** One catalogued product. */
struct DeviceRecord
{
    std::string name;
    Vendor vendor = Vendor::NVIDIA;
    int releaseYear = 0;
    int releaseMonth = 0; //!< 1-12
    policy::MarketSegment market = policy::MarketSegment::DATA_CENTER;

    double tpp = 0.0;
    double deviceBandwidthGBps = 0.0; //!< aggregate bidirectional
    double dieAreaMm2 = 0.0;
    bool nonPlanarTransistor = true;
    double memCapacityGB = 0.0;
    double memBandwidthGBps = 0.0;

    /** Reduce to the classification view. */
    policy::DeviceSpec toSpec() const;
};

/**
 * The full catalogue.
 *
 * Thread-compatible: immutable after construction.
 */
class Database
{
  public:
    /** Build the built-in catalogue. */
    Database();

    /**
     * Build a custom catalogue (e.g. to study a hypothetical product
     * line). Records are validated and date-sorted like the built-in
     * set; fatal on malformed rows.
     */
    explicit Database(std::vector<DeviceRecord> records);

    /** All records, release-date ordered. */
    const std::vector<DeviceRecord> &all() const { return records_; }

    /** Record count. */
    std::size_t size() const { return records_.size(); }

    /** Find by exact name; empty when absent. */
    std::optional<DeviceRecord> byName(const std::string &name) const;

    /** Records in one market segment. */
    std::vector<DeviceRecord> bySegment(policy::MarketSegment segment)
        const;

    /** Records by vendor. */
    std::vector<DeviceRecord> byVendor(Vendor vendor) const;

    /** Records released in [first_year, last_year]. */
    std::vector<DeviceRecord> byYearRange(int first_year, int last_year)
        const;

    /** All records as classification specs. */
    std::vector<policy::DeviceSpec> allSpecs() const;

  private:
    std::vector<DeviceRecord> records_;
};

} // namespace devices
} // namespace acs

#endif // ACS_DEVICES_DATABASE_HH
