#include "arms_race.hh"

#include <cmath>
#include <cstring>

#include "area/area_model.hh"
#include "common/logging.hh"
#include "core/study.hh"

namespace acs {
namespace coevo {

namespace {

/** FP16-equivalent TPP of a design: retired operations x 16,
 *  independent of the claimed operand bitwidth — what the firmware
 *  meter counts. */
double
fp16EquivalentTpp(const hw::HardwareConfig &cfg)
{
    return cfg.peakTensorTops() * 16.0;
}

/** Single-die manufacturability for (possibly) multi-chip packages:
 *  EvaluatedDesign::dieAreaMm2 is the package total. */
bool
perDieUnderReticle(const dse::EvaluatedDesign &d)
{
    const int dies = d.config.diesPerPackage > 0 ? d.config.diesPerPackage : 1;
    return d.dieAreaMm2 / dies <= area::RETICLE_LIMIT_MM2;
}

/** One regulator move: a label and the tightened rule. */
template <typename Rule>
struct Candidate
{
    std::string label;
    Rule rule;
};

/** Per-knob multiplicative tightenings of a threshold rule, "hold"
 *  first. Dependent thresholds are clamped so the ordering invariants
 *  (validate()) keep holding. */
std::vector<Candidate<policy::ParamRule>>
thresholdCandidates(const policy::ParamRule &cur, double step)
{
    std::vector<Candidate<policy::ParamRule>> out;
    out.push_back({"hold", cur});

    auto add = [&](const char *label, auto &&tighten) {
        policy::ParamRule r = cur;
        tighten(r);
        r.validate();
        out.push_back({label, r});
    };

    if (std::isfinite(cur.tppLicense)) {
        add("tppLicense", [&](policy::ParamRule &r) {
            r.tppLicense *= step;
            r.tppMid = std::min(r.tppMid, r.tppLicense);
            r.tppLow = std::min(r.tppLow, r.tppMid);
        });
    }
    if (std::isfinite(cur.tppBandwidthLicense)) {
        add("tppBwLicense", [&](policy::ParamRule &r) {
            r.tppBandwidthLicense *= step;
        });
    }
    if (std::isfinite(cur.bandwidthGBps)) {
        add("bandwidthGBps", [&](policy::ParamRule &r) {
            r.bandwidthGBps *= step;
        });
    }
    if (std::isfinite(cur.pdLicense)) {
        add("pdLicense", [&](policy::ParamRule &r) {
            r.pdLicense *= step;
            r.pdMid = std::min(r.pdMid, r.pdLicense);
            r.pdLow = std::min(r.pdLow, r.pdMid);
        });
    }
    if (std::isfinite(cur.tppMid)) {
        add("tppMid", [&](policy::ParamRule &r) {
            r.tppMid *= step;
            r.tppLow = std::min(r.tppLow, r.tppMid);
        });
    }
    if (std::isfinite(cur.tppLow)) {
        add("tppLow", [&](policy::ParamRule &r) { r.tppLow *= step; });
    }
    if (std::isfinite(cur.pdMid)) {
        add("pdMid", [&](policy::ParamRule &r) {
            r.pdMid *= step;
            r.pdLow = std::min(r.pdLow, r.pdMid);
        });
    }
    if (std::isfinite(cur.pdLow)) {
        add("pdLow", [&](policy::ParamRule &r) { r.pdLow *= step; });
    }
    return out;
}

/** Firmware moves: widen coverage or lower the cap. */
std::vector<Candidate<policy::FirmwareLicenseRule>>
firmwareCandidates(const policy::FirmwareLicenseRule &cur, double step)
{
    std::vector<Candidate<policy::FirmwareLicenseRule>> out;
    out.push_back({"hold", cur});

    policy::FirmwareLicenseRule cov = cur;
    cov.coverageTpp *= step;
    cov.throttleTpp = std::min(cov.throttleTpp, cov.coverageTpp);
    cov.validate();
    out.push_back({"coverage", cov});

    policy::FirmwareLicenseRule cap = cur;
    cap.throttleTpp *= step;
    cap.validate();
    out.push_back({"throttle", cap});
    return out;
}

} // namespace

std::string
toString(Mechanism m)
{
    switch (m) {
      case Mechanism::THRESHOLD: return "threshold";
      case Mechanism::FIRMWARE:  return "firmware";
    }
    panic("unknown Mechanism");
}

Mechanism
mechanismFromString(const std::string &s)
{
    if (s == "threshold")
        return Mechanism::THRESHOLD;
    if (s == "firmware")
        return Mechanism::FIRMWARE;
    fatal("unknown mechanism '" + s + "' (threshold|firmware)");
}

ArmsRace::ArmsRace(ArmsRaceConfig cfg) : cfg_(std::move(cfg))
{
    fatalIf(cfg_.rounds < 1, "coevo: rounds must be >= 1, got " +
                                 std::to_string(cfg_.rounds));
    if (std::isnan(cfg_.collateralBudget))
        fatal("coevo: collateralBudget is NaN");
    fatalIf(cfg_.collateralBudget < 0.0,
            "coevo: collateralBudget must be >= 0, got " +
                std::to_string(cfg_.collateralBudget));
    fatalIf(!(cfg_.tightenStep > 0.0 && cfg_.tightenStep < 1.0),
            "coevo: tightenStep must be in (0, 1), got " +
                std::to_string(cfg_.tightenStep));

    const core::Workload w = core::workloadByName(cfg_.workload);
    evaluator_ = std::make_unique<dse::DesignEvaluator>(w.model, w.setting,
                                                        w.system);
}

dse::AdaptiveResult
ArmsRace::searchSpace(const dse::SweepSpace &space,
                      const dse::DesignEvaluator::StreamPredicate &predicate)
{
    dse::AdaptiveConfig acfg;
    acfg.threads = cfg_.threads;
    acfg.maxEvaluations = cfg_.maxEvaluations;
    acfg.workloadTag = "coevo-" + cfg_.workload;
    dse::AdaptiveSearch search(*evaluator_, space, acfg);
    dse::AdaptiveResult r = search.run(predicate);
    totalEvaluated_ += r.evaluated;
    totalSpacePoints_ += r.spacePoints;
    return r;
}

double
ArmsRace::referenceTtftS()
{
    if (haveReference_)
        return referenceTtftS_;
    const dse::AdaptiveResult r = searchSpace(
        unconstrainedReferenceSpace(),
        [](const dse::EvaluatedDesign &d) { return perDieUnderReticle(d); });
    fatalIf(!r.bestTtft.has_value(),
            "coevo: unconstrained reference space has no feasible design");
    referenceTtftS_ = r.bestTtft->ttftS;
    referenceTbtS_ = r.bestTtft->tbtS;
    haveReference_ = true;
    return referenceTtftS_;
}

double
ArmsRace::referenceTbtS()
{
    referenceTtftS();
    return referenceTbtS_;
}

BestResponse
ArmsRace::designerResponse(const policy::ParamRule &rule)
{
    rule.validate();
    const std::string key = "t:" + rule.describe();
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;

    const double ref = referenceTtftS();
    BestResponse best;
    for (const EscapeSpace &es : designerEscapeSpaces(rule)) {
        const policy::MarketSegment seg = es.marketedAs;
        const dse::AdaptiveResult r = searchSpace(
            es.space, [&rule, seg](const dse::EvaluatedDesign &d) {
                if (!perDieUnderReticle(d))
                    return false;
                return rule.classifyAs(d.toSpec(), seg) ==
                       policy::Classification::NOT_APPLICABLE;
            });
        best.evaluated += r.evaluated;
        best.spacePoints += r.spacePoints;
        if (r.bestTtft.has_value() && r.bestTtft->ttftS < best.ttftS) {
            best.ttftS = r.bestTtft->ttftS;
            best.tbtS = r.bestTtft->tbtS;
            best.spaceLabel = es.label;
            best.designName = r.bestTtft->config.name;
            best.fp16Tpp = fp16EquivalentTpp(r.bestTtft->config);
        }
    }
    if (std::isfinite(best.ttftS))
        best.escapedPerf = ref / best.ttftS;
    ++bestResponses_;
    memo_[key] = best;
    return best;
}

BestResponse
ArmsRace::designerResponse(const policy::FirmwareLicenseRule &rule)
{
    rule.validate();
    const std::string key = "f:" + rule.describe();
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;

    const double ref = referenceTtftS();
    BestResponse best;
    for (const EscapeSpace &es : designerEscapeSpaces(rule)) {
        const dse::AdaptiveResult r = searchSpace(
            es.space,
            [](const dse::EvaluatedDesign &d) { return perDieUnderReticle(d); });
        best.evaluated += r.evaluated;
        best.spacePoints += r.spacePoints;
        if (!r.bestTtft.has_value())
            continue;
        // The cap scales sustained throughput; within one sub-space
        // the FP16-equivalent TPP is nearly uniform (same target and
        // bitwidth), so the space's raw-TTFT argmin is its scaled
        // argmin too.
        const double tpp16 = fp16EquivalentTpp(r.bestTtft->config);
        const double scale = rule.throughputScale(tpp16);
        const double eff_ttft = r.bestTtft->ttftS / scale;
        if (eff_ttft < best.ttftS) {
            best.ttftS = eff_ttft;
            best.tbtS = r.bestTtft->tbtS / scale;
            best.spaceLabel = es.label;
            best.designName = r.bestTtft->config.name;
            best.fp16Tpp = tpp16;
        }
    }
    if (std::isfinite(best.ttftS))
        best.escapedPerf = ref / best.ttftS;
    ++bestResponses_;
    memo_[key] = best;
    return best;
}

double
ArmsRace::collateralDamage(const policy::ParamRule &rule) const
{
    // A gaming/graphics device is collateral when the candidate rule
    // burdens it and the canonical (combined) rule did not.
    const policy::ParamRule baseline = policy::ParamRule::combined();
    std::size_t gaming = 0, newly = 0;
    for (const auto &rec : db_.all()) {
        const policy::DeviceSpec spec = rec.toSpec();
        if (!policy::isNonDataCenter(spec.market))
            continue;
        ++gaming;
        if (policy::isRegulated(rule.classify(spec)) &&
            !policy::isRegulated(baseline.classify(spec))) {
            ++newly;
        }
    }
    return gaming == 0 ? 0.0 : static_cast<double>(newly) / gaming;
}

double
ArmsRace::collateralDamage(const policy::FirmwareLicenseRule &rule) const
{
    // Metering firmware is the burden: a gaming device is collateral
    // when the mechanism covers it and the canonical threshold
    // regime did not already burden it — same baseline as the
    // threshold mechanism, so the two frontiers share axes.
    const policy::ParamRule baseline = policy::ParamRule::combined();
    std::size_t gaming = 0, newly = 0;
    for (const auto &rec : db_.all()) {
        const policy::DeviceSpec spec = rec.toSpec();
        if (!policy::isNonDataCenter(spec.market))
            continue;
        ++gaming;
        if (policy::isRegulated(rule.classify(spec)) &&
            !policy::isRegulated(baseline.classify(spec))) {
            ++newly;
        }
    }
    return gaming == 0 ? 0.0 : static_cast<double>(newly) / gaming;
}

ArmsRaceResult
ArmsRace::runThreshold(double budget)
{
    ArmsRaceResult res;
    res.config = cfg_;
    res.config.mechanism = Mechanism::THRESHOLD;
    res.config.collateralBudget = budget;
    res.referenceTtftS = referenceTtftS();
    res.referenceTbtS = referenceTbtS();

    policy::ParamRule cur = policy::ParamRule::combined();
    res.rounds.push_back({0, cur.describe(), "start",
                          collateralDamage(cur), designerResponse(cur)});

    for (int round = 1; round <= cfg_.rounds; ++round) {
        const auto cands = thresholdCandidates(cur, cfg_.tightenStep);
        std::size_t best_idx = 0;
        double best_col = collateralDamage(cands[0].rule);
        BestResponse best_br = designerResponse(cands[0].rule);
        for (std::size_t i = 1; i < cands.size(); ++i) {
            const double col = collateralDamage(cands[i].rule);
            if (col > budget + 1e-12)
                continue;
            const BestResponse br = designerResponse(cands[i].rule);
            if (br.escapedPerf < best_br.escapedPerf) {
                best_idx = i;
                best_col = col;
                best_br = br;
            }
        }
        cur = cands[best_idx].rule;
        if (best_idx == 0 && res.roundsToFixedPoint < 0)
            res.roundsToFixedPoint = round;
        res.rounds.push_back({round, cur.describe(),
                              cands[best_idx].label, best_col, best_br});
    }
    res.bestResponses = bestResponses_;
    res.totalEvaluated = totalEvaluated_;
    res.totalSpacePoints = totalSpacePoints_;
    return res;
}

ArmsRaceResult
ArmsRace::runFirmware(double budget)
{
    ArmsRaceResult res;
    res.config = cfg_;
    res.config.mechanism = Mechanism::FIRMWARE;
    res.config.collateralBudget = budget;
    res.referenceTtftS = referenceTtftS();
    res.referenceTbtS = referenceTbtS();

    policy::FirmwareLicenseRule cur;
    res.rounds.push_back({0, cur.describe(), "start",
                          collateralDamage(cur), designerResponse(cur)});

    for (int round = 1; round <= cfg_.rounds; ++round) {
        const auto cands = firmwareCandidates(cur, cfg_.tightenStep);
        std::size_t best_idx = 0;
        double best_col = collateralDamage(cands[0].rule);
        BestResponse best_br = designerResponse(cands[0].rule);
        for (std::size_t i = 1; i < cands.size(); ++i) {
            const double col = collateralDamage(cands[i].rule);
            if (col > budget + 1e-12)
                continue;
            const BestResponse br = designerResponse(cands[i].rule);
            if (br.escapedPerf < best_br.escapedPerf) {
                best_idx = i;
                best_col = col;
                best_br = br;
            }
        }
        cur = cands[best_idx].rule;
        if (best_idx == 0 && res.roundsToFixedPoint < 0)
            res.roundsToFixedPoint = round;
        res.rounds.push_back({round, cur.describe(),
                              cands[best_idx].label, best_col, best_br});
    }
    res.bestResponses = bestResponses_;
    res.totalEvaluated = totalEvaluated_;
    res.totalSpacePoints = totalSpacePoints_;
    return res;
}

ArmsRaceResult
ArmsRace::run()
{
    return cfg_.mechanism == Mechanism::THRESHOLD
               ? runThreshold(cfg_.collateralBudget)
               : runFirmware(cfg_.collateralBudget);
}

std::vector<FrontierPoint>
ArmsRace::frontier(const std::vector<double> &budgets)
{
    std::vector<FrontierPoint> out;
    for (const Mechanism m : {Mechanism::THRESHOLD, Mechanism::FIRMWARE}) {
        for (const double budget : budgets) {
            const ArmsRaceResult res = m == Mechanism::THRESHOLD
                                           ? runThreshold(budget)
                                           : runFirmware(budget);
            const RoundRecord &last = res.rounds.back();
            out.push_back({m, budget, last.collateral,
                           last.designer.escapedPerf, last.ruleDesc});
        }
    }
    return out;
}

std::uint64_t
ArmsRaceResult::fingerprint() const
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix_bytes = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    auto mix_u64 = [&](std::uint64_t v) { mix_bytes(&v, sizeof(v)); };
    auto mix_d = [&](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix_u64(bits);
    };
    auto mix_s = [&](const std::string &s) {
        mix_u64(s.size());
        mix_bytes(s.data(), s.size());
    };

    mix_d(referenceTtftS);
    mix_d(referenceTbtS);
    for (const RoundRecord &r : rounds) {
        mix_u64(static_cast<std::uint64_t>(r.round));
        mix_s(r.ruleDesc);
        mix_s(r.moveLabel);
        mix_d(r.collateral);
        mix_d(r.designer.tbtS);
        mix_d(r.designer.escapedPerf);
        mix_s(r.designer.spaceLabel);
        mix_s(r.designer.designName);
    }
    return h;
}

} // namespace coevo
} // namespace acs
