/**
 * @file
 * The designer's escape space: the canonical enumerations behind the
 * one-shot escape benches (ext_mcm_escape / ext_gaming_policy /
 * ext_rule_evolution) promoted to a single shared module, plus the
 * sweep-space portfolio the arms-race designer searches each round.
 *
 * The static benches source their candidate lists from here (so the
 * probes and the closed-loop engine can never drift apart), and
 * designerEscapeSpaces() turns the same lists into SweepSpaces for
 * dse::AdaptiveSearch — one sub-space per escape channel: MCM
 * scale-out with area padding, off-package (HBM) memory, bit-width
 * gaming, interconnect just under the bandwidth threshold, and
 * consumer rebranding.
 */

#ifndef ACS_COEVO_ESCAPE_HH
#define ACS_COEVO_ESCAPE_HH

#include <string>
#include <vector>

#include "dse/sweep.hh"
#include "policy/param_rule.hh"

namespace acs {
namespace coevo {

/** Chiplet counts the MCM area-padding escape considers (the
 *  ext_mcm_escape sweep list). */
const std::vector<int> &mcmChipletCounts();

/** SRAM inflation grid (MiB) used to clear a PD area floor. */
struct L2PaddingGrid
{
    double startMib = 40.0;
    double stopMib = 2048.0;
    double stepMib = 8.0;
};

/** The ext_mcm_escape global-buffer padding grid. */
L2PaddingGrid l2PaddingGrid();

/** Systolic dims the gaming-segment escape probes (ext_gaming_policy). */
const std::vector<int> &gamingEscapeDims();

/** HBM bandwidths (TB/s) the gaming-segment escape probes. */
const std::vector<double> &gamingEscapeMemTbps();

/** One real-world compliance SKU: flagship -> knob-turned escape
 *  (the Sec. 2.2 genealogy narrated by ext_rule_evolution). */
struct ComplianceSku
{
    const char *flagship;
    const char *sku;
    const char *knob;
};

/** The compliance-SKU genealogy, in release order. */
const std::vector<ComplianceSku> &complianceSkuGenealogy();

/** FP16-equivalent TPP of the unconstrained reference design point
 *  (one generation past the flagship threshold, 2 x 4800). */
constexpr double UNCONSTRAINED_TPP = 9600.0;

/** One searchable escape sub-space with its claimed market segment. */
struct EscapeSpace
{
    std::string label;
    policy::MarketSegment marketedAs = policy::MarketSegment::DATA_CENTER;
    dse::SweepSpace space;
};

/**
 * The escape portfolio for a threshold rule: data-center spaces at
 * TPP targets one under each live rule tier (padding/MCM/memory/
 * interconnect axes inside), an INT8 twin of the top space (bit-width
 * gaming), and a consumer-rebranding space. Deterministic in the rule
 * parameters alone.
 */
std::vector<EscapeSpace> designerEscapeSpaces(const policy::ParamRule &rule);

/**
 * The escape portfolio for the firmware mechanism: a coverage-ducking
 * space one TPP under coverage, plus capped FP16/INT8 spaces at the
 * unconstrained target (the INT8 twin demonstrates that bit-width
 * relabeling buys nothing against an operations-metering cap).
 */
std::vector<EscapeSpace>
designerEscapeSpaces(const policy::FirmwareLicenseRule &rule);

/** The predicate-free reference space normalizing escaped
 *  performance (UNCONSTRAINED_TPP, FP16). */
dse::SweepSpace unconstrainedReferenceSpace();

} // namespace coevo
} // namespace acs

#endif // ACS_COEVO_ESCAPE_HH
