/**
 * @file
 * The regulator-vs-designer arms race (ROADMAP item 4): N rounds of
 * alternating best responses between a rule-tightening regulator and
 * an escape-seeking designer, over the parameterized rule family in
 * policy/param_rule.hh — the quantitative version of Whack-a-Chip's
 * futility thesis, with the firmware offline-licensing mechanism as
 * a structurally different control arm.
 *
 * Round structure:
 *   designer  maximizes compliant decode throughput over the escape
 *             portfolio (coevo/escape.hh) with dse::AdaptiveSearch as
 *             the inner evaluator;
 *   regulator picks, among per-knob tightenings of the current rule
 *             (and "hold"), the one minimizing the designer's escaped
 *             performance subject to a collateral-damage budget on
 *             the gaming/graphics segment (device DB ground truth).
 *
 * "Hold" is always a candidate and the designer oracle is a
 * deterministic function of the rule alone, so the chosen minimum can
 * never exceed the previous round's value: the escaped-performance
 * trajectory is monotonically non-increasing by construction, and the
 * first held round is a fixed point (candidates repeat verbatim
 * afterwards). Iterates are deterministic and ACS_THREADS-independent
 * (the inner search is; the outer loop is serial).
 */

#ifndef ACS_COEVO_ARMS_RACE_HH
#define ACS_COEVO_ARMS_RACE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coevo/escape.hh"
#include "devices/database.hh"
#include "dse/adaptive.hh"
#include "dse/evaluate.hh"
#include "policy/param_rule.hh"

namespace acs {
namespace coevo {

/** The regulator's instrument. */
enum class Mechanism
{
    THRESHOLD, //!< classification thresholds (ParamRule)
    FIRMWARE,  //!< offline-licensing throughput cap (FirmwareLicenseRule)
};

std::string toString(Mechanism m);

/** Parse "threshold" / "firmware" (fatal on anything else). */
Mechanism mechanismFromString(const std::string &s);

/** Arms-race tuning knobs. */
struct ArmsRaceConfig
{
    Mechanism mechanism = Mechanism::THRESHOLD;

    /** Regulator/designer rounds after the opening designer move. */
    int rounds = 8;

    /**
     * Collateral-damage budget: the fraction of gaming/graphics
     * catalogue devices a candidate rule may newly regulate (for the
     * firmware mechanism: may cover) relative to the canonical
     * baseline.
     */
    double collateralBudget = 0.10;

    /** Multiplicative per-knob tightening step per candidate. */
    double tightenStep = 0.85;

    /** Echoed into outputs; reserved for stochastic designer
     *  strategies — the base engine's iterates are seed-free. */
    std::uint64_t seed = 0;

    /** Worker threads for the inner search; 0 = shared pool. */
    unsigned threads = 0;

    /** Workload the designer optimizes (core::workloadByName). */
    std::string workload = "gpt3";

    /** Forwarded to AdaptiveConfig::maxEvaluations (0 = unlimited). */
    std::size_t maxEvaluations = 0;
};

/**
 * The designer's best compliant design against one rule.
 *
 * The designer objective is prefill latency (TTFT): prefill is the
 * compute-bound phase where TPP actually binds. Decode is memory-
 * bandwidth-bound and HBM is unregulated, so decode throughput is
 * nearly rule-immune (the flat TBT column the race emits is itself a
 * finding — Fig. 5's bandwidth insensitivity, closed-loop).
 */
struct BestResponse
{
    /** Effective latencies of the best escape (firmware: after the
     *  throttle); INFINITY when no compliant design exists. */
    double ttftS = INFINITY;
    double tbtS = INFINITY;

    std::string spaceLabel; //!< winning escape sub-space
    std::string designName; //!< winning design point

    /** Prefill throughput retained vs the unconstrained reference:
     *  referenceTtftS / ttftS (0 when no escape exists). */
    double escapedPerf = 0.0;

    /** Winner's FP16-equivalent TPP (operations x 16). */
    double fp16Tpp = 0.0;

    std::size_t evaluated = 0;   //!< points evaluated, all sub-spaces
    std::size_t spacePoints = 0; //!< feasible points, all sub-spaces
};

/** One round of the race. */
struct RoundRecord
{
    int round = 0;         //!< 0 = canonical starting rule
    std::string ruleDesc;  //!< rule parameters after this round's move
    std::string moveLabel; //!< knob the regulator turned ("hold", ...)
    double collateral = 0.0;
    BestResponse designer; //!< best response to ruleDesc
};

/** A (collateral, escaped-performance) frontier point. */
struct FrontierPoint
{
    Mechanism mechanism = Mechanism::THRESHOLD;
    double budget = 0.0;
    double collateral = 0.0;  //!< realized at the final rule
    double escapedPerf = 0.0; //!< final-round designer response
    std::string ruleDesc;
};

/** Full race outcome. */
struct ArmsRaceResult
{
    ArmsRaceConfig config;
    double referenceTtftS = 0.0; //!< unconstrained best prefill
    double referenceTbtS = 0.0;  //!< its decode latency

    /** rounds.size() == config.rounds + 1 (round 0 included). */
    std::vector<RoundRecord> rounds;

    /** First held round (a fixed point); -1 if none within budget. */
    int roundsToFixedPoint = -1;

    /** FNV-1a over the trajectory (rules, moves, responses) — the
     *  determinism fingerprint pinned across thread counts. */
    std::uint64_t fingerprint() const;

    // Bench accounting (memoized repeats not re-counted).
    std::size_t bestResponses = 0;
    std::size_t totalEvaluated = 0;
    std::size_t totalSpacePoints = 0;
};

/**
 * The race driver. Holds the workload-bound evaluator, the device
 * database, the unconstrained reference, and a best-response memo
 * keyed on rule parameters (the "hold" candidate and the fixed-point
 * tail replay from it at zero cost).
 */
class ArmsRace
{
  public:
    explicit ArmsRace(ArmsRaceConfig cfg = {});

    /** Run config.rounds regulator/designer rounds. */
    ArmsRaceResult run();

    /**
     * The final (collateral, escaped-performance) point of a full
     * race at each budget, for both mechanisms — the threshold-vs-
     * firmware frontier. Best-response memos are shared across
     * budgets.
     */
    std::vector<FrontierPoint> frontier(const std::vector<double> &budgets);

    /** Designer best response to a threshold rule (memoized). */
    BestResponse designerResponse(const policy::ParamRule &rule);

    /** Designer best response to the firmware mechanism (memoized). */
    BestResponse designerResponse(const policy::FirmwareLicenseRule &rule);

    /** Fraction of gaming/graphics devices newly regulated vs the
     *  canonical combined rule. */
    double collateralDamage(const policy::ParamRule &rule) const;

    /** Fraction of gaming/graphics devices covered by the metering
     *  firmware. */
    double collateralDamage(const policy::FirmwareLicenseRule &rule) const;

    /** Best unconstrained prefill latency (computed once, lazily);
     *  referenceTbtS() is the same design's decode latency. */
    double referenceTtftS();
    double referenceTbtS();

    const ArmsRaceConfig &config() const { return cfg_; }

  private:
    dse::AdaptiveResult searchSpace(const dse::SweepSpace &space,
                                    const dse::DesignEvaluator::StreamPredicate
                                        &predicate);
    ArmsRaceResult runThreshold(double budget);
    ArmsRaceResult runFirmware(double budget);

    ArmsRaceConfig cfg_;
    devices::Database db_;
    std::unique_ptr<dse::DesignEvaluator> evaluator_;
    double referenceTtftS_ = 0.0;
    double referenceTbtS_ = 0.0;
    bool haveReference_ = false;
    std::map<std::string, BestResponse> memo_;
    std::size_t bestResponses_ = 0;
    std::size_t totalEvaluated_ = 0;
    std::size_t totalSpacePoints_ = 0;
};

} // namespace coevo
} // namespace acs

#endif // ACS_COEVO_ARMS_RACE_HH
