#include "escape.hh"

#include <cmath>

#include "common/units.hh"
#include "hw/presets.hh"

namespace acs {
namespace coevo {

const std::vector<int> &
mcmChipletCounts()
{
    static const std::vector<int> counts = {4, 5, 6, 8};
    return counts;
}

L2PaddingGrid
l2PaddingGrid()
{
    return L2PaddingGrid{};
}

const std::vector<int> &
gamingEscapeDims()
{
    static const std::vector<int> dims = {4, 8, 16, 32};
    return dims;
}

const std::vector<double> &
gamingEscapeMemTbps()
{
    static const std::vector<double> tbps = {0.8, 1.2, 1.6, 2.0, 2.8};
    return tbps;
}

const std::vector<ComplianceSku> &
complianceSkuGenealogy()
{
    static const std::vector<ComplianceSku> skus = {
        {"NVIDIA A100 80GB", "NVIDIA A800",
         "device BW 600 -> 400 GB/s"},
        {"NVIDIA H100 SXM", "NVIDIA H800",
         "device BW 900 -> 400 GB/s"},
        {"NVIDIA H100 SXM", "NVIDIA H20",
         "TPP 15824 -> 2368 (cores disabled)"},
        {"NVIDIA L40", "NVIDIA L20", "TPP 2898 -> 1912"},
        {"NVIDIA L4", "NVIDIA L2", "TPP trimmed under 1600"},
        {"NVIDIA RTX 4090", "NVIDIA RTX 4090D",
         "TPP 5285 -> 4708 (114 of 128 cores)"},
    };
    return skus;
}

namespace {

/** Padding subsample for the sweep L2 axis. The full 8-MiB grid
 *  (l2PaddingGrid) is for the one-dimensional feasibility walk in
 *  ext_mcm_escape; the multi-axis search only spans the range that
 *  can matter per die — beyond ~256 MiB the L2 alone pushes any die
 *  past the reticle, so larger values would be dead weight on every
 *  axis combination. The top value is deliberately the list's corner:
 *  AdaptiveSearch samples short axes at their corners first, and the
 *  padded-compliance pocket (pd under the NAC floor via die area)
 *  must be visible in that round-0 lattice to seed refinement. */
std::vector<double>
escapeL2Bytes()
{
    const L2PaddingGrid g = l2PaddingGrid();
    return {g.startMib * units::MIB, 96 * units::MIB, 160 * units::MIB,
            224 * units::MIB, 256 * units::MIB};
}

/** Off-package memory axis: HBM bandwidth is unregulated, so the
 *  escape list reaches well past the A100's 2.0 TB/s. */
std::vector<double>
escapeMemBandwidths()
{
    std::vector<double> out;
    for (double tbps : gamingEscapeMemTbps())
        out.push_back(tbps * units::TBPS);
    return out;
}

/** Interconnect axis spanning the Oct-2022 threshold: 550 GB/s is
 *  the largest PHY multiple under 600 (the A800 move), 600 sits at
 *  it. Ascending, as SweepSpace requires. */
std::vector<double>
escapeDeviceBandwidths()
{
    return {300 * units::GBPS, 400 * units::GBPS, 550 * units::GBPS,
            600 * units::GBPS};
}

/** Chiplet axis: monolithic plus the MCM escape counts. */
std::vector<int>
escapeDies()
{
    std::vector<int> dies = {1};
    for (int d : mcmChipletCounts())
        dies.push_back(d);
    return dies;
}

/** A data-center escape space at @p tppTarget and @p bitwidth. */
dse::SweepSpace
dcSpace(double tppTarget, int bitwidth)
{
    dse::SweepSpace s;
    s.base = hw::modeledA100();
    s.base.opBitwidth = bitwidth;
    s.tppTarget = tppTarget;
    s.systolicDims = {16, 32};
    s.lanesPerCore = {4};
    s.l1BytesPerCore = {192 * units::KIB};
    s.l2Bytes = escapeL2Bytes();
    s.memBandwidths = escapeMemBandwidths();
    s.deviceBandwidths = escapeDeviceBandwidths();
    s.diesPerPackage = escapeDies();
    return s;
}

/** The consumer-rebranding space: gaming-shaped compute (the
 *  ext_gaming_policy grid), monolithic, stock buffers. */
dse::SweepSpace
consumerSpace(double tppTarget)
{
    dse::SweepSpace s;
    s.base = hw::modeledA100();
    s.tppTarget = tppTarget;
    s.systolicDims = gamingEscapeDims();
    s.lanesPerCore = {4};
    s.l1BytesPerCore = {192 * units::KIB};
    s.l2Bytes = {40 * units::MIB};
    s.memBandwidths = escapeMemBandwidths();
    s.deviceBandwidths = escapeDeviceBandwidths();
    return s;
}

/** Compact TPP label ("4799", "2399"). */
std::string
tppLabel(double tpp)
{
    return std::to_string(static_cast<long long>(tpp));
}

} // namespace

std::vector<EscapeSpace>
designerEscapeSpaces(const policy::ParamRule &rule)
{
    // TPP targets one under each live tier. The conjunction's TPP
    // threshold does not cap the top target: the bandwidth axis
    // carries that escape (ship above it with < bandwidthGBps
    // interconnect, the A800 move).
    const double top = (std::isfinite(rule.tppLicense)
                            ? rule.tppLicense
                            : UNCONSTRAINED_TPP) -
                       1.0;

    std::vector<EscapeSpace> out;
    out.push_back({"dc-fp16@" + tppLabel(top),
                   policy::MarketSegment::DATA_CENTER, dcSpace(top, 16)});
    out.push_back({"dc-int8@" + tppLabel(top),
                   policy::MarketSegment::DATA_CENTER, dcSpace(top, 8)});
    if (std::isfinite(rule.tppMid) && rule.tppMid - 1.0 < top) {
        const double mid = rule.tppMid - 1.0;
        out.push_back({"dc-fp16@" + tppLabel(mid),
                       policy::MarketSegment::DATA_CENTER,
                       dcSpace(mid, 16)});
    }
    if (std::isfinite(rule.tppLow) && rule.tppLow - 1.0 < top &&
        (!std::isfinite(rule.tppMid) || rule.tppLow < rule.tppMid)) {
        const double low = rule.tppLow - 1.0;
        out.push_back({"dc-fp16@" + tppLabel(low),
                       policy::MarketSegment::DATA_CENTER,
                       dcSpace(low, 16)});
    }
    out.push_back({"consumer-fp16@" + tppLabel(top),
                   policy::MarketSegment::CONSUMER, consumerSpace(top)});
    return out;
}

std::vector<EscapeSpace>
designerEscapeSpaces(const policy::FirmwareLicenseRule &rule)
{
    const double free_tpp = rule.coverageTpp - 1.0;
    const double capped = UNCONSTRAINED_TPP - 1.0;

    std::vector<EscapeSpace> out;
    if (free_tpp > 0.0) {
        out.push_back({"fw-free-fp16@" + tppLabel(free_tpp),
                       policy::MarketSegment::DATA_CENTER,
                       dcSpace(free_tpp, 16)});
    }
    out.push_back({"fw-capped-fp16@" + tppLabel(capped),
                   policy::MarketSegment::DATA_CENTER,
                   dcSpace(capped, 16)});
    out.push_back({"fw-capped-int8@" + tppLabel(capped),
                   policy::MarketSegment::DATA_CENTER,
                   dcSpace(capped, 8)});
    return out;
}

dse::SweepSpace
unconstrainedReferenceSpace()
{
    return dcSpace(UNCONSTRAINED_TPP, 16);
}

} // namespace coevo
} // namespace acs
