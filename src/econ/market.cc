#include "market.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acs {
namespace econ {

void
LinearMarket::validate() const
{
    fatalIf(demandSlope <= 0.0, "LinearMarket: demand slope must be > 0");
    fatalIf(supplySlope < 0.0, "LinearMarket: supply slope must be >= 0");
    fatalIf(demandIntercept <= supplyIntercept,
            "LinearMarket: demand choke price must exceed the minimum "
            "viable supply price (the market never clears otherwise)");
}

double
LinearMarket::equilibriumQuantity() const
{
    validate();
    return (demandIntercept - supplyIntercept) /
           (demandSlope + supplySlope);
}

double
LinearMarket::equilibriumPrice() const
{
    return demandIntercept - demandSlope * equilibriumQuantity();
}

namespace {

// Surplus integrals at traded quantity q with buyers paying the
// demand-curve price (the sanction is a quantity restriction, so the
// scarcity rent accrues to sellers).
Welfare
welfareAt(const LinearMarket &m, double q)
{
    Welfare w;
    w.quantity = q;
    w.buyerPrice = m.demandIntercept - m.demandSlope * q;
    w.consumerSurplus = 0.5 * m.demandSlope * q * q;
    w.producerSurplus = w.buyerPrice * q -
                        (m.supplyIntercept * q +
                         0.5 * m.supplySlope * q * q);
    w.totalSurplus = w.consumerSurplus + w.producerSurplus;
    return w;
}

} // anonymous namespace

Welfare
restrictedWelfare(const LinearMarket &market, double quantity_cap)
{
    market.validate();
    fatalIf(quantity_cap < 0.0,
            "restrictedWelfare: quantity cap must be >= 0");

    const double q_star = market.equilibriumQuantity();
    const double q = std::min(quantity_cap, q_star);
    Welfare w = welfareAt(market, q);
    const Welfare optimal = welfareAt(market, q_star);
    w.deadweightLoss = optimal.totalSurplus - w.totalSurplus;
    return w;
}

double
deadweightFraction(const LinearMarket &market, double quantity_cap)
{
    const Welfare w = restrictedWelfare(market, quantity_cap);
    const Welfare optimal =
        restrictedWelfare(market, market.equilibriumQuantity());
    panicIf(optimal.totalSurplus <= 0.0,
            "free-market surplus must be positive");
    return w.deadweightLoss / optimal.totalSurplus;
}

LinearMarket
marketFromAnchors(double unit_price, double annual_volume,
                  double demand_elasticity, double supply_elasticity)
{
    fatalIf(unit_price <= 0.0, "marketFromAnchors: price must be > 0");
    fatalIf(annual_volume <= 0.0, "marketFromAnchors: volume must be > 0");
    fatalIf(demand_elasticity >= 0.0,
            "marketFromAnchors: demand elasticity must be < 0");
    fatalIf(supply_elasticity <= 0.0,
            "marketFromAnchors: supply elasticity must be > 0");

    LinearMarket m;
    m.demandSlope = -unit_price / (demand_elasticity * annual_volume);
    m.demandIntercept = unit_price + m.demandSlope * annual_volume;
    m.supplySlope = unit_price / (supply_elasticity * annual_volume);
    m.supplyIntercept = unit_price - m.supplySlope * annual_volume;
    m.validate();
    return m;
}

} // namespace econ
} // namespace acs
