#include "serving_cost.hh"

#include <limits>

#include "common/logging.hh"

namespace acs {
namespace econ {

void
AmortizedCost::validate() const
{
    fatalIf(capexUsd < 0.0, "AmortizedCost: capexUsd must be >= 0");
    fatalIf(amortYears <= 0.0,
            "AmortizedCost: amortYears must be > 0");
    fatalIf(powerW < 0.0, "AmortizedCost: powerW must be >= 0");
    fatalIf(usdPerKwh < 0.0,
            "AmortizedCost: usdPerKwh must be >= 0");
    fatalIf(pue < 1.0, "AmortizedCost: pue must be >= 1");
}

double
AmortizedCost::hourlyUsd() const
{
    validate();
    const double hours_per_year = 24.0 * 365.0;
    const double capex_hourly =
        capexUsd / (amortYears * hours_per_year);
    const double power_hourly =
        powerW * pue / 1000.0 * usdPerKwh;
    return capex_hourly + power_hourly;
}

double
usdPerMillionTokens(double fleet_hourly_usd, double tokens_per_s)
{
    fatalIf(fleet_hourly_usd < 0.0,
            "usdPerMillionTokens: fleet cost must be >= 0");
    if (tokens_per_s <= 0.0)
        return std::numeric_limits<double>::infinity();
    return fleet_hourly_usd / 3600.0 / tokens_per_s * 1e6;
}

} // namespace econ
} // namespace acs
