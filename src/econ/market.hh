/**
 * @file
 * Linear supply/demand market model quantifying the economic language
 * of Secs. 2.4 and 5.1: sanctions act as a supply restriction
 * (quantity cap); the model computes the resulting price, consumer and
 * producer surplus, and deadweight loss.
 *
 * This is the repo's quantitative stand-in for the paper's qualitative
 * externality discussion (documented in DESIGN.md): it lets the
 * externality bench compare rule variants by how much total surplus
 * each destroys.
 */

#ifndef ACS_ECON_MARKET_HH
#define ACS_ECON_MARKET_HH

namespace acs {
namespace econ {

/**
 * A linear market: inverse demand P = a - b Q, inverse supply
 * P = c + d Q, with a > c (the market clears at positive quantity).
 */
struct LinearMarket
{
    double demandIntercept = 0.0; //!< a: choke price
    double demandSlope = 0.0;     //!< b > 0
    double supplyIntercept = 0.0; //!< c: minimum viable price
    double supplySlope = 0.0;     //!< d >= 0

    /** Fatal unless the market is well-formed and clears. */
    void validate() const;

    /** Free-market equilibrium quantity. */
    double equilibriumQuantity() const;

    /** Free-market equilibrium price. */
    double equilibriumPrice() const;
};

/** Welfare at a (possibly restricted) traded quantity. */
struct Welfare
{
    double quantity = 0.0;
    double buyerPrice = 0.0;       //!< price buyers pay (demand curve)
    double consumerSurplus = 0.0;
    double producerSurplus = 0.0;
    double totalSurplus = 0.0;
    double deadweightLoss = 0.0;   //!< vs the free-market optimum
};

/**
 * Welfare under a binding quantity cap (the sanction).
 *
 * @param market Market definition (validated).
 * @param quantity_cap Maximum tradable quantity (>= 0); caps above the
 *        equilibrium do not bind.
 */
Welfare restrictedWelfare(const LinearMarket &market, double quantity_cap);

/**
 * Deadweight loss as a fraction of free-market total surplus.
 *
 * @return Value in [0, 1].
 */
double deadweightFraction(const LinearMarket &market, double quantity_cap);

/**
 * Build a market for a device class from observable anchors.
 *
 * @param unit_price     Free-market price per device (> 0).
 * @param annual_volume  Free-market volume (> 0).
 * @param demand_elasticity Price elasticity of demand at equilibrium
 *        (< 0, e.g. -1.5); steeper demand means scarcer substitutes.
 * @param supply_elasticity Price elasticity of supply at equilibrium
 *        (> 0, e.g. 1.0).
 */
LinearMarket marketFromAnchors(double unit_price, double annual_volume,
                               double demand_elasticity,
                               double supply_elasticity);

} // namespace econ
} // namespace acs

#endif // ACS_ECON_MARKET_HH
