/**
 * @file
 * Dollars per served token: amortized hardware economics for the
 * fleet-sizing results.
 *
 * The sanctions tax only becomes a business quantity once a fleet
 * plan (replica counts from sim::sizeFleet / sim::sizeDisaggFleet)
 * is priced: capex amortized over a service life plus electricity at
 * datacenter PUE, divided by the goodput the SLOs actually credit.
 * This module is that last conversion step — deliberately tiny, so
 * every bench prices fleets with identical arithmetic.
 */

#ifndef ACS_ECON_SERVING_COST_HH
#define ACS_ECON_SERVING_COST_HH

namespace acs {
namespace econ {

/** Ownership cost of one serving replica (all its devices). */
struct AmortizedCost
{
    double capexUsd = 0.0;    //!< purchase price of the replica
    double amortYears = 3.0;  //!< straight-line service life (> 0)
    double powerW = 0.0;      //!< average wall power drawn (>= 0)
    double usdPerKwh = 0.10;  //!< electricity price (>= 0)
    double pue = 1.3;         //!< datacenter power overhead (>= 1)

    /**
     * Hourly ownership cost: straight-line capex amortization plus
     * PUE-scaled electricity.
     */
    double hourlyUsd() const;

    /** Fatal unless every parameter is in range. */
    void validate() const;
};

/**
 * Fleet cost per million tokens: @p fleet_hourly_usd of hardware
 * producing @p tokens_per_s. +inf when throughput is zero — an
 * infeasible fleet serves nothing at any price.
 */
double usdPerMillionTokens(double fleet_hourly_usd,
                           double tokens_per_s);

} // namespace econ
} // namespace acs

#endif // ACS_ECON_SERVING_COST_HH
