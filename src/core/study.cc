#include "study.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "obs/obs.hh"
#include "policy/device_spec.hh"
#include "policy/marketing.hh"

namespace acs {
namespace core {

Workload
gpt3Workload()
{
    Workload w;
    w.model = model::gpt3_175b();
    w.setting = model::InferenceSetting{};
    w.system.tensorParallel = 4;
    return w;
}

Workload
llamaWorkload()
{
    Workload w;
    w.model = model::llama3_8b();
    w.setting = model::InferenceSetting{};
    // Same 4-device system as GPT-3 (TP=4 divides the 8 KV heads);
    // reproduces the paper's Llama 3 TTFT baseline of ~46 ms/layer.
    w.system.tensorParallel = 4;
    return w;
}

Workload
workloadByName(const std::string &name)
{
    if (name == "gpt3")
        return gpt3Workload();
    if (name == "llama")
        return llamaWorkload();
    Workload w = llamaWorkload();
    if (name == "llama70b") {
        w.model = model::llama3_70b();
        return w;
    }
    if (name == "mixtral") {
        w.model = model::mixtral_8x7b();
        return w;
    }
    fatal("unknown workload '" + name +
          "' (expected gpt3, llama, llama70b, or mixtral)");
}

double
DesignReport::ttftDelta() const
{
    panicIf(baseline.ttftS <= 0.0, "baseline TTFT must be positive");
    return design.ttftS / baseline.ttftS - 1.0;
}

double
DesignReport::tbtDelta() const
{
    panicIf(baseline.tbtS <= 0.0, "baseline TBT must be positive");
    return design.tbtS / baseline.tbtS - 1.0;
}

SanctionsStudy::SanctionsStudy(const perf::PerfParams &params)
    : params_(params)
{}

dse::EvaluatedDesign
SanctionsStudy::evaluateBaseline(const Workload &workload) const
{
    const dse::DesignEvaluator evaluator(workload.model, workload.setting,
                                         workload.system, params_);
    return evaluator.evaluate(hw::modeledA100());
}

DesignReport
SanctionsStudy::evaluateDesign(const hw::HardwareConfig &cfg,
                               const Workload &workload) const
{
    const dse::DesignEvaluator evaluator(workload.model, workload.setting,
                                         workload.system, params_);
    DesignReport report;
    report.design = evaluator.evaluate(cfg);
    report.baseline = evaluator.evaluate(hw::modeledA100());
    report.rules = classify(report.design);
    return report;
}

std::vector<dse::EvaluatedDesign>
SanctionsStudy::runSweep(const dse::SweepSpace &space,
                         const Workload &workload) const
{
    const obs::TraceSpan span("core.runSweep");
    const dse::DesignEvaluator evaluator(workload.model, workload.setting,
                                         workload.system, params_);
    // Parallel evaluation is deterministic and identical to the
    // serial path (evaluators are const); on one hardware thread it
    // degrades to evaluateAll.
    return evaluator.evaluateAllParallel(space.generate());
}

dse::AdaptiveResult
SanctionsStudy::runAdaptiveSweep(const dse::SweepSpace &space,
                                 const Workload &workload,
                                 dse::AdaptiveConfig cfg) const
{
    const obs::TraceSpan span("core.runAdaptiveSweep");
    if (cfg.workloadTag.empty()) {
        cfg.workloadTag =
            workload.model.name + "-b" +
            std::to_string(workload.setting.batch) + "-i" +
            std::to_string(workload.setting.inputLen) + "-o" +
            std::to_string(workload.setting.outputLen) + "-tp" +
            std::to_string(workload.system.tensorParallel);
    }
    const dse::DesignEvaluator evaluator(workload.model, workload.setting,
                                         workload.system, params_);
    dse::AdaptiveSearch search(evaluator, space, std::move(cfg));
    return search.run();
}

ServingStudyPoint
servingPointAt(const sim::IterationCostModel &cost,
               const ServingStudyConfig &config, double ratePerS)
{
    sim::ReplicaConfig rc;
    rc.scheduler = config.scheduler;
    rc.workload.arrivalRatePerS = ratePerS;
    rc.workload.promptLen = config.promptLen;
    rc.workload.outputLen = config.outputLen;
    rc.workload.horizonS = config.horizonS;
    rc.workload.seed = config.seed;
    const sim::ReplicaMetrics m = sim::simulateReplica(cost, rc);

    const sim::SloTargets targets = config.slo.targets();
    ServingStudyPoint point;
    point.ratePerS = ratePerS;
    point.ttft = m.ttft();
    point.tbt = m.tbt();
    point.attainment = m.attainment(targets);
    point.goodputTokensPerS = m.goodputTokensPerS(targets);
    point.completed = m.requests.size();
    point.maxQueueDepth = m.queueDepth.maxDepth;
    return point;
}

ServingStudyResult
SanctionsStudy::runServingStudy(const hw::HardwareConfig &cfg,
                                const Workload &workload,
                                const ServingStudyConfig &config) const
{
    const obs::TraceSpan span("core.runServingStudy");
    fatalIf(config.ratesPerS.empty() && config.fleetRatePerS <= 0.0,
            "runServingStudy: no rates and no fleet demand given");

    const sim::IterationCostModel cost = makeCostModel(cfg, workload);

    ServingStudyResult result;
    // Rates are independent single-replica simulations sharing the
    // read-mostly cost-model memo; index-addressed slots make the
    // curve byte-identical for every ACS_THREADS value.
    result.curve.resize(config.ratesPerS.size());
    common::ThreadPool::shared().parallelFor(
        config.ratesPerS.size(),
        [&](std::size_t i) {
            result.curve[i] =
                servingPointAt(cost, config, config.ratesPerS[i]);
        },
        1);

    if (config.fleetRatePerS > 0.0) {
        sim::FleetDemand demand;
        demand.ratePerS = config.fleetRatePerS;
        demand.promptLen = config.promptLen;
        demand.outputLen = config.outputLen;
        demand.horizonS = config.horizonS;
        demand.seed = config.seed;
        result.fleet = serve::planFleetPercentile(
            cost, demand, config.scheduler, config.slo,
            config.maxReplicas);
        result.fleetSized = true;
    }
    return result;
}

RuleOutcomes
SanctionsStudy::classify(const dse::EvaluatedDesign &design) const
{
    obs::counterAdd("policy.classified.designs");
    RuleOutcomes outcomes;
    policy::DeviceSpec spec = design.toSpec();
    outcomes.oct2022 = policy::Oct2022Rule::classify(spec);
    outcomes.oct2023DataCenter = policy::Oct2023Rule::classifyAs(
        spec, policy::MarketSegment::DATA_CENTER);
    outcomes.oct2023NonDataCenter = policy::Oct2023Rule::classifyAs(
        spec, policy::MarketSegment::CONSUMER);
    return outcomes;
}

SanctionsStudy::DatabaseSummary
SanctionsStudy::classifyDatabase(const devices::Database &db)
{
    const obs::TraceSpan span("core.classifyDatabase");
    DatabaseSummary summary;
    const auto specs = db.allSpecs();
    summary.devices = specs.size();
    obs::counterAdd("policy.classified.devices", specs.size());
    for (const auto &spec : specs) {
        summary.regulatedOct2022 +=
            policy::isRegulated(policy::Oct2022Rule::classify(spec));
        summary.regulatedOct2023 +=
            policy::isRegulated(policy::Oct2023Rule::classify(spec));
    }
    summary.marketing = policy::summarizeMarketing(specs);
    summary.architectural =
        policy::ArchDataCenterClassifier::summarize(specs);
    return summary;
}

sim::IterationCostModel
SanctionsStudy::makeCostModel(const hw::HardwareConfig &cfg,
                              const Workload &workload,
                              sim::MemoEngine memo) const
{
    return sim::IterationCostModel(cfg, workload.model,
                                   workload.setting, workload.system,
                                   params_, memo);
}

} // namespace core
} // namespace acs
