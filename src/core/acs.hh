/**
 * @file
 * Umbrella header: the full public API of the library.
 */

#ifndef ACS_CORE_ACS_HH
#define ACS_CORE_ACS_HH

#include "area/area_model.hh"
#include "area/cost_model.hh"
#include "area/package_model.hh"
#include "area/power_model.hh"
#include "common/keyval.hh"
#include "common/logging.hh"
#include "common/scatter.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "core/study.hh"
#include "devices/database.hh"
#include "dse/analysis.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "econ/market.hh"
#include "econ/serving_cost.hh"
#include "hw/config.hh"
#include "hw/serialize.hh"
#include "hw/presets.hh"
#include "model/graphics.hh"
#include "model/ops.hh"
#include "model/transformer.hh"
#include "obs/obs.hh"
#include "perf/cycle_sim.hh"
#include "perf/graphics_model.hh"
#include "perf/roofline.hh"
#include "perf/simulator.hh"
#include "perf/tile_sim.hh"
#include "policy/acr_rules.hh"
#include "policy/arch_policy.hh"
#include "policy/historical.hh"
#include "policy/marketing.hh"
#include "serve/capacity.hh"
#include "serve/percentile.hh"
#include "sim/cluster.hh"
#include "sim/cost_model.hh"
#include "sim/event.hh"
#include "sim/fleet.hh"
#include "sim/metrics.hh"
#include "sim/replica.hh"
#include "sim/routing.hh"
#include "sim/trace.hh"
#include "sim/workload.hh"

#endif // ACS_CORE_ACS_HH
