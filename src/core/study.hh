/**
 * @file
 * High-level API of the paper's study: standard workloads, baseline
 * comparison, sweep execution, and rule classification of a design.
 *
 * This is the entry point downstream users should start from (see
 * examples/quickstart.cpp).
 */

#ifndef ACS_CORE_STUDY_HH
#define ACS_CORE_STUDY_HH

#include <vector>

#include "dse/adaptive.hh"
#include "dse/analysis.hh"
#include "dse/evaluate.hh"
#include "devices/database.hh"
#include "dse/sweep.hh"
#include "hw/config.hh"
#include "hw/presets.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"
#include "policy/acr_rules.hh"
#include "policy/marketing.hh"
#include "serve/percentile.hh"
#include "sim/replica.hh"

namespace acs {
namespace core {

/** A workload: model + setting + system mapping. */
struct Workload
{
    model::TransformerConfig model;
    model::InferenceSetting setting;
    perf::SystemConfig system;
};

/**
 * GPT-3 175B under the paper's standard setting, tensor-parallel over
 * 4 devices (one device cannot hold the model; see DESIGN.md).
 */
Workload gpt3Workload();

/**
 * Llama 3 8B under the standard setting, tensor-parallel over the same
 * 4-device system as GPT-3.
 */
Workload llamaWorkload();

/**
 * Workload registry: "gpt3", "llama", "llama70b", "mixtral" (all at
 * the standard setting, TP=4). Fatal on unknown names; tools use this
 * to map CLI arguments.
 */
Workload workloadByName(const std::string &name);

/**
 * Configuration of a request-level serving study (the sim-backed
 * counterpart of the closed-form capacity arithmetic).
 */
struct ServingStudyConfig
{
    /** Per-replica offered loads for the latency-vs-load curve. */
    std::vector<double> ratesPerS = {0.05, 0.1, 0.2, 0.4};

    sim::LengthDistribution promptLen =
        sim::LengthDistribution::fixed(2048);
    sim::LengthDistribution outputLen =
        sim::LengthDistribution::fixed(256);

    double horizonS = 600.0;  //!< arrival horizon per simulation
    std::uint64_t seed = 1;   //!< master seed (byte-reproducible runs)

    serve::PercentileSlo slo;
    sim::SchedulerConfig scheduler;

    /**
     * Aggregate demand for the fleet-sizing step (req/s across the
     * fleet); 0 skips fleet sizing and produces only the curve.
     */
    double fleetRatePerS = 0.0;

    /** Fleet-sizing search ceiling. */
    int maxReplicas = 4096;
};

/** One offered-load point of a serving study. */
struct ServingStudyPoint
{
    double ratePerS = 0.0; //!< per-replica offered load
    sim::LatencyRollup ttft;
    sim::LatencyRollup tbt;
    double attainment = 0.0;         //!< SLO-attaining request share
    double goodputTokensPerS = 0.0;  //!< SLO-attaining token rate
    std::uint64_t completed = 0;     //!< requests completed
    std::uint64_t maxQueueDepth = 0; //!< admission-queue high-water
};

/** Full output of SanctionsStudy::runServingStudy. */
struct ServingStudyResult
{
    std::vector<ServingStudyPoint> curve; //!< one point per rate
    bool fleetSized = false; //!< fleet plan below is populated
    serve::PercentileFleetPlan fleet;
};

/**
 * One point of the latency-vs-load curve: simulate a single replica
 * of @p cost at per-replica offered load @p ratePerS under
 * @p config's workload shape and roll the metrics up.
 *
 * This is the unit both SanctionsStudy::runServingStudy and the
 * scenario-grid benchmarks fan out over: a pure function of its
 * arguments, so any scheduling of calls that collects results in
 * input order reproduces the serial curve byte-identically.
 */
ServingStudyPoint servingPointAt(const sim::IterationCostModel &cost,
                                 const ServingStudyConfig &config,
                                 double ratePerS);

/** Rule outcomes for one design evaluated as a data-center product. */
struct RuleOutcomes
{
    policy::Classification oct2022 =
        policy::Classification::NOT_APPLICABLE;
    policy::Classification oct2023DataCenter =
        policy::Classification::NOT_APPLICABLE;
    policy::Classification oct2023NonDataCenter =
        policy::Classification::NOT_APPLICABLE;
};

/** Full report for one design on one workload. */
struct DesignReport
{
    dse::EvaluatedDesign design;
    dse::EvaluatedDesign baseline; //!< the modeled A100
    RuleOutcomes rules;

    /** Relative TTFT vs baseline: negative means faster. */
    double ttftDelta() const;
    /** Relative TBT vs baseline: negative means faster. */
    double tbtDelta() const;
};

/**
 * The paper's study harness.
 *
 * Thread-compatible: const after construction.
 */
class SanctionsStudy
{
  public:
    explicit SanctionsStudy(const perf::PerfParams &params =
                                perf::PerfParams{});

    /** Evaluate the modeled A100 baseline on @p workload. */
    dse::EvaluatedDesign evaluateBaseline(const Workload &workload) const;

    /** Evaluate any design on @p workload with baseline + rules. */
    DesignReport evaluateDesign(const hw::HardwareConfig &cfg,
                                const Workload &workload) const;

    /** Evaluate every point of a sweep space on @p workload. */
    std::vector<dse::EvaluatedDesign>
    runSweep(const dse::SweepSpace &space, const Workload &workload)
        const;

    /**
     * Adaptive coarse-to-fine search of @p space on @p workload
     * (dse::AdaptiveSearch): prunes the space instead of enumerating
     * it, supports sharding and checkpoint/resume via @p cfg, and on
     * the exactness-tested spaces returns the same argmin designs as
     * runSweep + minTtft/minTbt while evaluating a fraction of the
     * points. An empty cfg.workloadTag is filled in from the workload
     * (model name, setting, TP degree) so checkpoints are guarded
     * against resuming under a different workload.
     */
    dse::AdaptiveResult
    runAdaptiveSweep(const dse::SweepSpace &space,
                     const Workload &workload,
                     dse::AdaptiveConfig cfg = {}) const;

    /** Classify a design under all rule generations. */
    RuleOutcomes classify(const dse::EvaluatedDesign &design) const;

    /**
     * Request-level serving study of one design on @p workload: a
     * latency-vs-load percentile curve (one single-replica simulation
     * per configured rate) plus, when config.fleetRatePerS > 0, the
     * percentile-aware fleet plan with its closed-form cross-check.
     *
     * Deterministic: byte-identical results for identical inputs,
     * independent of ACS_THREADS (see docs/SERVING.md).
     */
    ServingStudyResult
    runServingStudy(const hw::HardwareConfig &cfg,
                    const Workload &workload,
                    const ServingStudyConfig &config) const;

    /**
     * Iteration latency/memory oracle of @p cfg serving @p workload
     * with this study's performance params — the building block of
     * every request-level estimator (single replica, homogeneous
     * fleet, heterogeneous cluster pool). Callers keep it alive for
     * the lifetime of any simulation using it; one oracle per
     * (device, workload) pair can be shared across pools and
     * searches, compounding the memoization. @p memo selects the
     * memo structure (sim::MemoEngine::LEGACY_MAP is the mutex+map
     * reference path; results are identical either way).
     */
    sim::IterationCostModel
    makeCostModel(const hw::HardwareConfig &cfg,
                  const Workload &workload,
                  sim::MemoEngine memo = sim::MemoEngine::FLAT) const;

    /** Per-rule regulated counts over a device catalogue. */
    struct DatabaseSummary
    {
        std::size_t devices = 0;
        std::size_t regulatedOct2022 = 0;
        std::size_t regulatedOct2023 = 0;
        policy::MarketingSummary marketing;      //!< Fig. 9 counts
        policy::MarketingSummary architectural;  //!< Fig. 10 counts
    };

    /** Run the Sec. 5.2 classification study over a catalogue. */
    static DatabaseSummary
    classifyDatabase(const devices::Database &db);

    const perf::PerfParams &params() const { return params_; }

  private:
    perf::PerfParams params_;
};

} // namespace core
} // namespace acs

#endif // ACS_CORE_STUDY_HH
