/**
 * @file
 * High-level API of the paper's study: standard workloads, baseline
 * comparison, sweep execution, and rule classification of a design.
 *
 * This is the entry point downstream users should start from (see
 * examples/quickstart.cpp).
 */

#ifndef ACS_CORE_STUDY_HH
#define ACS_CORE_STUDY_HH

#include <vector>

#include "dse/analysis.hh"
#include "dse/evaluate.hh"
#include "devices/database.hh"
#include "dse/sweep.hh"
#include "hw/config.hh"
#include "hw/presets.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"
#include "policy/acr_rules.hh"
#include "policy/marketing.hh"

namespace acs {
namespace core {

/** A workload: model + setting + system mapping. */
struct Workload
{
    model::TransformerConfig model;
    model::InferenceSetting setting;
    perf::SystemConfig system;
};

/**
 * GPT-3 175B under the paper's standard setting, tensor-parallel over
 * 4 devices (one device cannot hold the model; see DESIGN.md).
 */
Workload gpt3Workload();

/**
 * Llama 3 8B under the standard setting, tensor-parallel over the same
 * 4-device system as GPT-3.
 */
Workload llamaWorkload();

/**
 * Workload registry: "gpt3", "llama", "llama70b", "mixtral" (all at
 * the standard setting, TP=4). Fatal on unknown names; tools use this
 * to map CLI arguments.
 */
Workload workloadByName(const std::string &name);

/** Rule outcomes for one design evaluated as a data-center product. */
struct RuleOutcomes
{
    policy::Classification oct2022 =
        policy::Classification::NOT_APPLICABLE;
    policy::Classification oct2023DataCenter =
        policy::Classification::NOT_APPLICABLE;
    policy::Classification oct2023NonDataCenter =
        policy::Classification::NOT_APPLICABLE;
};

/** Full report for one design on one workload. */
struct DesignReport
{
    dse::EvaluatedDesign design;
    dse::EvaluatedDesign baseline; //!< the modeled A100
    RuleOutcomes rules;

    /** Relative TTFT vs baseline: negative means faster. */
    double ttftDelta() const;
    /** Relative TBT vs baseline: negative means faster. */
    double tbtDelta() const;
};

/**
 * The paper's study harness.
 *
 * Thread-compatible: const after construction.
 */
class SanctionsStudy
{
  public:
    explicit SanctionsStudy(const perf::PerfParams &params =
                                perf::PerfParams{});

    /** Evaluate the modeled A100 baseline on @p workload. */
    dse::EvaluatedDesign evaluateBaseline(const Workload &workload) const;

    /** Evaluate any design on @p workload with baseline + rules. */
    DesignReport evaluateDesign(const hw::HardwareConfig &cfg,
                                const Workload &workload) const;

    /** Evaluate every point of a sweep space on @p workload. */
    std::vector<dse::EvaluatedDesign>
    runSweep(const dse::SweepSpace &space, const Workload &workload)
        const;

    /** Classify a design under all rule generations. */
    RuleOutcomes classify(const dse::EvaluatedDesign &design) const;

    /** Per-rule regulated counts over a device catalogue. */
    struct DatabaseSummary
    {
        std::size_t devices = 0;
        std::size_t regulatedOct2022 = 0;
        std::size_t regulatedOct2023 = 0;
        policy::MarketingSummary marketing;      //!< Fig. 9 counts
        policy::MarketingSummary architectural;  //!< Fig. 10 counts
    };

    /** Run the Sec. 5.2 classification study over a catalogue. */
    static DatabaseSummary
    classifyDatabase(const devices::Database &db);

    const perf::PerfParams &params() const { return params_; }

  private:
    perf::PerfParams params_;
};

} // namespace core
} // namespace acs

#endif // ACS_CORE_STUDY_HH
