/**
 * @file
 * Unit tests for acs_devices: catalogue integrity and the paper's
 * classification headlines over the real-device population.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "devices/database.hh"
#include "policy/acr_rules.hh"
#include "policy/marketing.hh"

namespace acs {
namespace devices {
namespace {

class DatabaseFixture : public ::testing::Test
{
  protected:
    Database db_;
};

// ---- catalogue integrity -----------------------------------------------------

TEST_F(DatabaseFixture, HasSixtyFiveDevices)
{
    // Sec. 5.2: "we calculated TPP and PD for 65 GPUs".
    EXPECT_EQ(db_.size(), 65u);
}

TEST_F(DatabaseFixture, FourteenDataCenterDevices)
{
    // Sec. 5.2: 14 data-center marketed, 51 consumer/workstation.
    EXPECT_EQ(db_.bySegment(policy::MarketSegment::DATA_CENTER).size(),
              14u);
    EXPECT_EQ(db_.bySegment(policy::MarketSegment::CONSUMER).size() +
                  db_.bySegment(policy::MarketSegment::WORKSTATION)
                      .size(),
              51u);
}

TEST_F(DatabaseFixture, AllRecordsWellFormed)
{
    for (const DeviceRecord &rec : db_.all()) {
        EXPECT_FALSE(rec.name.empty());
        EXPECT_GE(rec.releaseYear, 2018) << rec.name;
        EXPECT_LE(rec.releaseYear, 2024) << rec.name;
        EXPECT_GE(rec.releaseMonth, 1) << rec.name;
        EXPECT_LE(rec.releaseMonth, 12) << rec.name;
        EXPECT_GT(rec.tpp, 0.0) << rec.name;
        EXPECT_GE(rec.deviceBandwidthGBps, 0.0) << rec.name;
        EXPECT_GT(rec.dieAreaMm2, 0.0) << rec.name;
        EXPECT_GT(rec.memCapacityGB, 0.0) << rec.name;
        EXPECT_GT(rec.memBandwidthGBps, 0.0) << rec.name;
    }
}

TEST_F(DatabaseFixture, SortedByReleaseDate)
{
    const auto &all = db_.all();
    for (std::size_t i = 1; i < all.size(); ++i) {
        const bool ordered =
            all[i - 1].releaseYear < all[i].releaseYear ||
            (all[i - 1].releaseYear == all[i].releaseYear &&
             all[i - 1].releaseMonth <= all[i].releaseMonth);
        EXPECT_TRUE(ordered) << all[i - 1].name << " vs " << all[i].name;
    }
}

TEST_F(DatabaseFixture, NamesAreUnique)
{
    std::vector<std::string> names;
    for (const DeviceRecord &rec : db_.all())
        names.push_back(rec.name);
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end());
}

TEST_F(DatabaseFixture, LookupByName)
{
    const auto a100 = db_.byName("NVIDIA A100 80GB");
    ASSERT_TRUE(a100.has_value());
    EXPECT_DOUBLE_EQ(a100->tpp, 4992.0);
    EXPECT_DOUBLE_EQ(a100->deviceBandwidthGBps, 600.0);
    EXPECT_DOUBLE_EQ(a100->dieAreaMm2, 826.0);
    EXPECT_FALSE(db_.byName("NVIDIA B200").has_value());
}

TEST_F(DatabaseFixture, VendorSplit)
{
    const auto nv = db_.byVendor(Vendor::NVIDIA);
    const auto amd = db_.byVendor(Vendor::AMD);
    EXPECT_EQ(nv.size() + amd.size(), db_.size());
    EXPECT_GT(nv.size(), amd.size());
}

TEST_F(DatabaseFixture, YearRangeFilter)
{
    const auto in_2023 = db_.byYearRange(2023, 2023);
    for (const DeviceRecord &rec : in_2023)
        EXPECT_EQ(rec.releaseYear, 2023);
    EXPECT_EQ(db_.byYearRange(2018, 2024).size(), db_.size());
    EXPECT_THROW(db_.byYearRange(2024, 2018), FatalError);
}

TEST_F(DatabaseFixture, ToSpecPreservesFields)
{
    const auto rec = db_.byName("NVIDIA H20");
    ASSERT_TRUE(rec.has_value());
    const policy::DeviceSpec spec = rec->toSpec();
    EXPECT_EQ(spec.name, rec->name);
    EXPECT_DOUBLE_EQ(spec.tpp, rec->tpp);
    EXPECT_DOUBLE_EQ(spec.memBandwidthGBps, rec->memBandwidthGBps);
    EXPECT_EQ(spec.market, rec->market);
}

// ---- paper classification headlines ---------------------------------------------

TEST_F(DatabaseFixture, Oct2022RegulatesOnlyFlagships)
{
    // Paper Fig. 1a: A100, H100-class, MI250X, MI300X.
    std::vector<std::string> licensed;
    for (const auto &spec : db_.allSpecs()) {
        if (policy::isRegulated(policy::Oct2022Rule::classify(spec)))
            licensed.push_back(spec.name);
    }
    EXPECT_EQ(licensed.size(), 4u);
    for (const char *name :
         {"NVIDIA A100 80GB", "NVIDIA H100 SXM", "AMD Instinct MI250X",
          "AMD Instinct MI300X"}) {
        EXPECT_NE(std::find(licensed.begin(), licensed.end(), name),
                  licensed.end())
            << name;
    }
}

TEST_F(DatabaseFixture, A800EscapedOct2022ButNotOct2023)
{
    // Sec. 2.2: the A800 was the Oct-2022 workaround; Oct 2023
    // (PD 6.04) sanctions it.
    const auto spec = db_.byName("NVIDIA A800")->toSpec();
    EXPECT_EQ(policy::Oct2022Rule::classify(spec),
              policy::Classification::NOT_APPLICABLE);
    EXPECT_EQ(policy::Oct2023Rule::classify(spec),
              policy::Classification::LICENSE_REQUIRED);
}

TEST_F(DatabaseFixture, H800EscapedOct2022ButNotOct2023)
{
    const auto spec = db_.byName("NVIDIA H800")->toSpec();
    EXPECT_EQ(policy::Oct2022Rule::classify(spec),
              policy::Classification::NOT_APPLICABLE);
    EXPECT_EQ(policy::Oct2023Rule::classify(spec),
              policy::Classification::LICENSE_REQUIRED);
    EXPECT_NEAR(spec.perfDensity(), 19.45, 0.1); // paper's H800 PD
}

TEST_F(DatabaseFixture, Mi210NowNeedsNac)
{
    // Sec. 2.2: "previously unregulated, but now requires NAC".
    const auto spec = db_.byName("AMD Instinct MI210")->toSpec();
    EXPECT_EQ(policy::Oct2022Rule::classify(spec),
              policy::Classification::NOT_APPLICABLE);
    EXPECT_EQ(policy::Oct2023Rule::classify(spec),
              policy::Classification::NAC_ELIGIBLE);
}

TEST_F(DatabaseFixture, Rtx4090NowNeedsNac)
{
    // Sec. 2.2: the RTX 4090 (5285 TPP) now requires NAC exceptions.
    const auto spec = db_.byName("NVIDIA RTX 4090")->toSpec();
    EXPECT_EQ(policy::Oct2023Rule::classify(spec),
              policy::Classification::NAC_ELIGIBLE);
}

TEST_F(DatabaseFixture, Rtx4090DDucksTheNonDcThreshold)
{
    // Sec. 2.2: the 4090D (4708 TPP) disables cores to duck 4800.
    const auto spec = db_.byName("NVIDIA RTX 4090D")->toSpec();
    EXPECT_EQ(policy::Oct2023Rule::classify(spec),
              policy::Classification::NOT_APPLICABLE);
}

TEST_F(DatabaseFixture, H20AndL20ComplyWithOct2023)
{
    // Sec. 2.2: NVIDIA's Nov-2023 compliant China SKUs.
    for (const char *name : {"NVIDIA H20", "NVIDIA L20", "NVIDIA L2"}) {
        const auto spec = db_.byName(name)->toSpec();
        EXPECT_EQ(policy::Oct2023Rule::classify(spec),
                  policy::Classification::NOT_APPLICABLE)
            << name;
    }
}

TEST_F(DatabaseFixture, MarketingSummaryMatchesPaperCounts)
{
    // Fig. 9: 4 false data center, 7 false non-data center.
    const auto summary = policy::summarizeMarketing(db_.allSpecs());
    EXPECT_EQ(summary.falseDc, 4);
    EXPECT_EQ(summary.falseNonDc, 7);
}

TEST_F(DatabaseFixture, FalseDataCenterDevicesIncludeL40AndA40)
{
    // Sec. 5.2 names the L40 and A40 explicitly.
    for (const char *name : {"NVIDIA L40", "NVIDIA A40"}) {
        const auto spec = db_.byName(name)->toSpec();
        EXPECT_EQ(policy::analyzeMarketing(spec),
                  policy::MarketingConsistency::FALSE_DC)
            << name;
    }
}

TEST_F(DatabaseFixture, FalseNonDcIncludes4080And7900Xtx)
{
    // Sec. 5.2 names the RTX 4080 and RX 7900 XTX explicitly.
    for (const char *name :
         {"NVIDIA RTX 4080", "AMD RX 7900 XTX"}) {
        const auto spec = db_.byName(name)->toSpec();
        EXPECT_EQ(policy::analyzeMarketing(spec),
                  policy::MarketingConsistency::FALSE_NON_DC)
            << name;
    }
}

TEST_F(DatabaseFixture, ArchClassifierNearlyEliminatesInconsistency)
{
    // Fig. 10: no false non-DC; the only false DC are small-memory
    // AD104-class data-center parts (L4/L2; the A30 also trips the
    // >32 GB test in our catalogue).
    const auto summary =
        policy::ArchDataCenterClassifier::summarize(db_.allSpecs());
    EXPECT_EQ(summary.falseNonDc, 0);
    EXPECT_LE(summary.falseDc, 3);
    for (const char *name : {"NVIDIA L4", "NVIDIA L2"}) {
        EXPECT_EQ(policy::ArchDataCenterClassifier::analyze(
                      db_.byName(name)->toSpec()),
                  policy::MarketingConsistency::FALSE_DC)
            << name;
    }
}

TEST_F(DatabaseFixture, VendorNames)
{
    EXPECT_EQ(toString(Vendor::NVIDIA), "NVIDIA");
    EXPECT_EQ(toString(Vendor::AMD), "AMD");
}

} // anonymous namespace
} // namespace devices
} // namespace acs
