/**
 * @file
 * Unit tests for the key=value format and HardwareConfig
 * serialization.
 */

#include <gtest/gtest.h>

#include "common/keyval.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "hw/serialize.hh"

namespace acs {
namespace {

// ---- KeyVal --------------------------------------------------------------

TEST(KeyVal, ParseBasics)
{
    const KeyVal kv = KeyVal::parse(
        "a = 1\n"
        "  b=hello world \n"
        "\n"
        "# comment line\n"
        "c = 2.5 # trailing comment\n");
    EXPECT_EQ(kv.size(), 3u);
    EXPECT_EQ(kv.getInt("a"), 1);
    EXPECT_EQ(kv.getString("b"), "hello world");
    EXPECT_DOUBLE_EQ(kv.getDouble("c"), 2.5);
}

TEST(KeyVal, ParseRejectsMalformedLines)
{
    EXPECT_THROW(KeyVal::parse("no equals sign"), FatalError);
    EXPECT_THROW(KeyVal::parse("= value without key"), FatalError);
}

TEST(KeyVal, MissingKeyIsFatal)
{
    const KeyVal kv = KeyVal::parse("a = 1\n");
    EXPECT_THROW(kv.getString("missing"), FatalError);
    EXPECT_THROW(kv.getDouble("missing"), FatalError);
}

TEST(KeyVal, TypeErrorsAreFatal)
{
    const KeyVal kv = KeyVal::parse("s = abc\nf = 1.5\n");
    EXPECT_THROW(kv.getDouble("s"), FatalError);
    EXPECT_THROW(kv.getInt("f"), FatalError);
    EXPECT_THROW(kv.getBool("s"), FatalError);
}

TEST(KeyVal, BoolForms)
{
    const KeyVal kv = KeyVal::parse("a = true\nb = 0\nc = 1\nd=false\n");
    EXPECT_TRUE(kv.getBool("a"));
    EXPECT_FALSE(kv.getBool("b"));
    EXPECT_TRUE(kv.getBool("c"));
    EXPECT_FALSE(kv.getBool("d"));
}

TEST(KeyVal, DefaultsForAbsentKeys)
{
    const KeyVal kv = KeyVal::parse("a = 1\n");
    EXPECT_DOUBLE_EQ(kv.getDouble("nope", 7.5), 7.5);
    EXPECT_EQ(kv.getInt("nope", 9), 9);
    EXPECT_DOUBLE_EQ(kv.getDouble("a", 7.5), 1.0);
}

TEST(KeyVal, SerializeParseRoundTrip)
{
    KeyVal kv;
    kv.set("name", "my device");
    kv.setDouble("bw", 2.0e12);
    kv.setInt("cores", 108);
    kv.setBool("finfet", true);
    const KeyVal back = KeyVal::parse(kv.serialize());
    EXPECT_EQ(back.getString("name"), "my device");
    EXPECT_DOUBLE_EQ(back.getDouble("bw"), 2.0e12);
    EXPECT_EQ(back.getInt("cores"), 108);
    EXPECT_TRUE(back.getBool("finfet"));
}

TEST(KeyVal, RejectsMultilineValuesAndEmptyKeys)
{
    KeyVal kv;
    EXPECT_THROW(kv.set("", "x"), FatalError);
    EXPECT_THROW(kv.set("k", "line1\nline2"), FatalError);
}

TEST(KeyVal, LastValueWins)
{
    const KeyVal kv = KeyVal::parse("a = 1\na = 2\n");
    EXPECT_EQ(kv.getInt("a"), 2);
}

// ---- HardwareConfig serialization -------------------------------------------

TEST(HwSerialize, RoundTripPreservesEveryField)
{
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "round trip";
    cfg.systolicDimX = 32;
    cfg.opBitwidth = 8;
    cfg.process = hw::ProcessNode::N5;
    cfg.nonPlanarTransistor = false;
    cfg.diesPerPackage = 2;

    const hw::HardwareConfig back =
        hw::configFromKeyVal(hw::toKeyVal(cfg));
    EXPECT_EQ(back.name, cfg.name);
    EXPECT_EQ(back.coreCount, cfg.coreCount);
    EXPECT_EQ(back.lanesPerCore, cfg.lanesPerCore);
    EXPECT_EQ(back.systolicDimX, cfg.systolicDimX);
    EXPECT_EQ(back.systolicDimY, cfg.systolicDimY);
    EXPECT_EQ(back.vectorWidth, cfg.vectorWidth);
    EXPECT_DOUBLE_EQ(back.clockHz, cfg.clockHz);
    EXPECT_EQ(back.opBitwidth, cfg.opBitwidth);
    EXPECT_DOUBLE_EQ(back.l1BytesPerCore, cfg.l1BytesPerCore);
    EXPECT_DOUBLE_EQ(back.l2Bytes, cfg.l2Bytes);
    EXPECT_DOUBLE_EQ(back.memCapacityBytes, cfg.memCapacityBytes);
    EXPECT_DOUBLE_EQ(back.memBandwidth, cfg.memBandwidth);
    EXPECT_EQ(back.devicePhyCount, cfg.devicePhyCount);
    EXPECT_DOUBLE_EQ(back.perPhyBandwidth, cfg.perPhyBandwidth);
    EXPECT_EQ(back.process, cfg.process);
    EXPECT_EQ(back.nonPlanarTransistor, cfg.nonPlanarTransistor);
    EXPECT_EQ(back.diesPerPackage, cfg.diesPerPackage);
    EXPECT_DOUBLE_EQ(back.tpp(), cfg.tpp());
}

TEST(HwSerialize, PartialFileUsesTemplateDefaults)
{
    const KeyVal kv = KeyVal::parse(
        "name = partial\n"
        "mem_bandwidth = 3.2e12\n"
        "core_count = 96\n");
    const hw::HardwareConfig cfg = hw::configFromKeyVal(kv);
    EXPECT_EQ(cfg.name, "partial");
    EXPECT_EQ(cfg.coreCount, 96);
    EXPECT_DOUBLE_EQ(cfg.memBandwidth, 3.2e12);
    EXPECT_EQ(cfg.lanesPerCore, 4);        // template default
    EXPECT_EQ(cfg.systolicDimX, 16);       // template default
}

TEST(HwSerialize, InvalidLoadedConfigIsFatal)
{
    EXPECT_THROW(
        hw::configFromKeyVal(KeyVal::parse("core_count = 0\n")),
        FatalError);
}

TEST(HwSerialize, ProcessNames)
{
    EXPECT_EQ(hw::processFromString("7nm"), hw::ProcessNode::N7);
    EXPECT_EQ(hw::processFromString("16nm"), hw::ProcessNode::N16);
    EXPECT_EQ(hw::processFromString("5nm"), hw::ProcessNode::N5);
    EXPECT_THROW(hw::processFromString("3nm"), FatalError);
}

} // anonymous namespace
} // namespace acs
