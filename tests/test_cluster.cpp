/**
 * @file
 * Tests for the datacenter-level serving simulator: streaming traces
 * (sim/trace.hh), routing policies (sim/routing.hh), heterogeneous
 * and disaggregated clusters (sim/cluster.hh), and the two-pool
 * sizing search (sim::sizeDisaggFleet).
 *
 * The load-bearing assertions are the equivalence pins: a
 * single-member MONOLITHIC cluster is bit-exact against the replica
 * simulator, and a batch-1 disaggregated run with the zero-cost KV
 * transfer reproduces the monolithic TTFT/TBT double for double —
 * the migration machinery must add exactly nothing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <memory>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/study.hh"
#include "hw/presets.hh"
#include "sim/cluster.hh"
#include "sim/fleet.hh"
#include "sim/replica.hh"
#include "sim/routing.hh"
#include "sim/trace.hh"

namespace acs {
namespace sim {
namespace {

// ---- shared fixtures -------------------------------------------------------

/** Llama-8B at TP=4 keeps every simulator call cheap. */
core::Workload
testWorkload()
{
    core::Workload w = core::llamaWorkload();
    w.setting.batch = 1;
    w.setting.inputLen = 512;
    w.setting.outputLen = 64;
    return w;
}

IterationCostModel
testCost(const core::Workload &w,
         const hw::HardwareConfig &cfg = hw::modeledA100())
{
    return IterationCostModel(cfg, w.model, w.setting, w.system);
}

/** Full-precision serialization: any bit difference shows up. */
std::string
fingerprint(const ReplicaMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << m.arrivals << '/' << m.prefillIterations << '/'
       << m.decodeIterations << '/' << m.generatedTokens << '/'
       << m.lastEventS << '\n';
    for (const RequestRecord &r : m.requests) {
        os << r.id << ',' << r.arrivalS << ',' << r.admitS << ','
           << r.firstTokenS << ',' << r.finishS << ',' << r.promptLen
           << ',' << r.outputLen << '\n';
    }
    for (double g : m.tbtGapsS)
        os << g << '\n';
    for (std::uint64_t b : m.queueDepth.buckets)
        os << b << ' ';
    return os.str();
}

std::string
fingerprint(const ClusterMetrics &m)
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << fingerprint(m.aggregate) << '\n'
       << m.kvTransfers << ',' << m.kvBytesTransferred << ','
       << m.kvTransferTotalS << ',' << m.completedRequests << ','
       << m.sloAttainedRequests << ',' << m.sloAttainedTokens << '\n';
    for (const PoolUsage &p : m.pools) {
        os << p.name << ',' << p.routedPrefill << ',' << p.routedDecode
           << ',' << p.generatedTokens << '\n';
    }
    for (std::uint64_t b : m.ttftHist.buckets)
        os << b << ' ';
    for (std::uint64_t b : m.tbtHist.buckets)
        os << b << ' ';
    return os.str();
}

// ---- traces ----------------------------------------------------------------

TEST(Trace, PoissonMatchesOpenLoopReplicaBitExactly)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const LengthDistribution prompt =
        LengthDistribution::uniform(256, 768, 64);
    const LengthDistribution output =
        LengthDistribution::uniform(32, 96, 16);

    ReplicaConfig rc;
    rc.workload.arrivalRatePerS = 1.5;
    rc.workload.promptLen = prompt;
    rc.workload.outputLen = output;
    rc.workload.horizonS = 200.0;
    rc.workload.seed = 17;
    const ReplicaMetrics spec_driven = simulateReplica(cost, rc);

    const auto trace =
        TraceWorkload::poisson(1.5, prompt, output, 200.0, 17);
    const ReplicaMetrics trace_driven =
        simulateReplica(cost, rc.scheduler, *trace);

    // The trace is the open-loop stream in streaming form: identical
    // substream use, so identical arrivals, lengths, and bytes.
    EXPECT_EQ(fingerprint(spec_driven), fingerprint(trace_driven));
}

TEST(Trace, CsvReplayParsesQuantizesAndCounts)
{
    const std::string text = "arrival_s,prompt_len,output_len\n"
                             "0.0,100,20\n"
                             "\n"
                             "1.5,512,64\n"
                             "3.0,1,1\n";
    auto trace = TraceWorkload::fromCsv(
        std::make_unique<std::istringstream>(text), "inline", 16);

    TraceRequest r;
    ASSERT_TRUE(trace->next(r));
    EXPECT_DOUBLE_EQ(r.arrivalS, 0.0);
    EXPECT_EQ(r.promptLen, 112); // 100 rounded up to the quantum
    EXPECT_EQ(r.outputLen, 32);
    ASSERT_TRUE(trace->next(r));
    EXPECT_EQ(r.promptLen, 512);
    ASSERT_TRUE(trace->next(r));
    EXPECT_EQ(r.promptLen, 16); // lengths clamp up to one quantum
    EXPECT_FALSE(trace->next(r));
    EXPECT_EQ(trace->produced(), 3u);
}

TEST(Trace, CsvMalformedRowIsFatal)
{
    // Line 1 may be a header, so the malformed row sits on line 2.
    auto trace = TraceWorkload::fromCsv(
        std::make_unique<std::istringstream>(
            "0.0,16,4\n1.0,not_a_number,4\n"),
        "bad");
    TraceRequest r;
    ASSERT_TRUE(trace->next(r));
    EXPECT_THROW(trace->next(r), FatalError);
}

TEST(Trace, DiurnalIsSeedDeterministicAndOrdered)
{
    DiurnalTraceSpec spec;
    spec.baseRatePerS = 4.0;
    spec.peakToTrough = 3.0;
    spec.periodS = 300.0;
    spec.burstMultiplier = 4.0;
    spec.burstMeanS = 10.0;
    spec.calmMeanS = 50.0;
    spec.horizonS = 300.0;
    spec.seed = 7;

    const auto drain = [&spec]() {
        auto t = TraceWorkload::diurnal(spec);
        std::ostringstream os;
        os << std::setprecision(17);
        TraceRequest r;
        double last = 0.0;
        while (t->next(r)) {
            EXPECT_GE(r.arrivalS, last);
            EXPECT_LT(r.arrivalS, spec.horizonS);
            last = r.arrivalS;
            os << r.arrivalS << ',' << r.promptLen << ','
               << r.outputLen << '\n';
        }
        return os.str();
    };
    const std::string a = drain();
    EXPECT_EQ(a, drain());
    EXPECT_FALSE(a.empty());

    spec.seed = 8;
    EXPECT_NE(a, drain());
}

TEST(Trace, DiurnalRateEnvelopeHasConfiguredRatio)
{
    DiurnalTraceSpec spec;
    spec.baseRatePerS = 2.0;
    spec.peakToTrough = 3.0;
    spec.periodS = 400.0;
    const double peak = spec.rateAt(spec.periodS / 4, false);
    const double trough = spec.rateAt(3 * spec.periodS / 4, false);
    EXPECT_NEAR(peak / trough, 3.0, 1e-9);
    EXPECT_NEAR((peak + trough) / 2, spec.baseRatePerS, 1e-9);
    // The burst state multiplies the envelope.
    EXPECT_NEAR(spec.rateAt(0.0, true),
                spec.burstMultiplier * spec.rateAt(0.0, false), 1e-12);
}

TEST(Trace, FixedScheduleRejectsUnsortedAndEnforcesOrder)
{
    EXPECT_THROW(TraceWorkload::fixedSchedule(
                     {{1.0, 16, 16}, {0.5, 16, 16}}),
                 FatalError);

    // A source that misbehaves after construction is caught by next().
    class Decreasing : public TraceWorkload
    {
      protected:
        bool produce(TraceRequest &out) override
        {
            out.arrivalS = 10.0 - 5.0 * n_;
            out.promptLen = 16;
            out.outputLen = 16;
            return n_++ < 2;
        }

      private:
        int n_ = 0;
    };
    Decreasing bad;
    TraceRequest r;
    ASSERT_TRUE(bad.next(r));
    EXPECT_THROW(bad.next(r), FatalError);
}

// ---- routing policies ------------------------------------------------------

TEST(Routing, KindNamesRoundTrip)
{
    for (RoutingPolicyKind kind :
         {RoutingPolicyKind::JOIN_SHORTEST_QUEUE,
          RoutingPolicyKind::PHASE_AFFINITY,
          RoutingPolicyKind::COST_WEIGHTED}) {
        EXPECT_EQ(parseRoutingPolicy(toString(kind)), kind);
        EXPECT_EQ(routingPolicy(kind)->name(), toString(kind));
    }
    EXPECT_THROW(parseRoutingPolicy("round-robin"), FatalError);
}

TEST(Routing, JsqPicksLeastLoadedWithLowestIndexTies)
{
    const RoutingPolicy *jsq =
        routingPolicy(RoutingPolicyKind::JOIN_SHORTEST_QUEUE);
    std::vector<MemberView> members(3);
    for (int i = 0; i < 3; ++i)
        members[i].member = i;
    members[0].queued = 2;
    members[1].queued = 1;
    members[2].queued = 1;
    const RouteRequest req{1, 512, 64};
    // Members 1 and 2 tie; the lowest index wins.
    EXPECT_EQ(jsq->pick(RoutePhase::PREFILL, req, members), 1u);
    members[1].inFlight = 5;
    EXPECT_EQ(jsq->pick(RoutePhase::PREFILL, req, members), 2u);
}

TEST(Routing, PhaseAffinityPrefersFasterHardware)
{
    const RoutingPolicy *aff =
        routingPolicy(RoutingPolicyKind::PHASE_AFFINITY);
    std::vector<MemberView> members(2);
    members[0].member = 0;
    members[0].phaseServiceRatePerS = 1.0; // slow prefill
    members[1].member = 1;
    members[1].phaseServiceRatePerS = 10.0; // fast prefill
    const RouteRequest req{1, 512, 64};
    EXPECT_EQ(aff->pick(RoutePhase::PREFILL, req, members), 1u);
    // Enough queued load flips the decision back to the slow member.
    members[1].queued = 30;
    EXPECT_EQ(aff->pick(RoutePhase::PREFILL, req, members), 0u);
}

TEST(Routing, CostWeightedPrefersCheaperServiceTime)
{
    const RoutingPolicy *cw =
        routingPolicy(RoutingPolicyKind::COST_WEIGHTED);
    std::vector<MemberView> members(2);
    members[0].member = 0;
    members[0].phaseServiceRatePerS = 10.0;
    members[0].hourlyCostUsd = 10.0; // fast but expensive
    members[1].member = 1;
    members[1].phaseServiceRatePerS = 5.0;
    members[1].hourlyCostUsd = 1.0; // half speed, tenth the price
    const RouteRequest req{1, 512, 64};
    EXPECT_EQ(cw->pick(RoutePhase::PREFILL, req, members), 1u);
}

// ---- cluster equivalence pins ----------------------------------------------

TEST(Cluster, SingleMonolithicMemberMatchesReplicaBitExactly)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const LengthDistribution prompt =
        LengthDistribution::uniform(256, 768, 64);
    const LengthDistribution output =
        LengthDistribution::uniform(32, 96, 16);
    const SchedulerConfig sched;

    auto replica_trace =
        TraceWorkload::poisson(1.0, prompt, output, 150.0, 23);
    const ReplicaMetrics replica =
        simulateReplica(cost, sched, *replica_trace);

    ClusterConfig cfg;
    cfg.pools.resize(1);
    cfg.pools[0].name = "a100";
    cfg.pools[0].cost = &cost;
    cfg.pools[0].scheduler = sched;
    auto cluster_trace =
        TraceWorkload::poisson(1.0, prompt, output, 150.0, 23);
    const ClusterMetrics cluster =
        simulateCluster(cfg, *cluster_trace);

    EXPECT_EQ(fingerprint(replica), fingerprint(cluster.aggregate));
    EXPECT_EQ(cluster.kvTransfers, 0u);
    ASSERT_EQ(cluster.pools.size(), 1u);
    EXPECT_EQ(cluster.pools[0].routedPrefill, replica.arrivals);
}

TEST(Cluster, Batch1ZeroCostDisaggReproducesMonolithicExactly)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const SchedulerConfig sched;
    // Requests spaced far beyond their service time: every phase runs
    // at batch 1 with an idle handoff, so the only possible divergence
    // is the migration machinery itself.
    const std::vector<TraceRequest> schedule = {
        {0.0, 512, 32}, {1000.0, 512, 48}, {2000.0, 256, 32}};

    auto mono_trace = TraceWorkload::fixedSchedule(schedule);
    const ReplicaMetrics mono =
        simulateReplica(cost, sched, *mono_trace);

    ClusterConfig cfg;
    cfg.pools.resize(2);
    cfg.pools[0].name = "prefill";
    cfg.pools[0].role = PoolRole::PREFILL;
    cfg.pools[0].cost = &cost;
    cfg.pools[1].name = "decode";
    cfg.pools[1].role = PoolRole::DECODE;
    cfg.pools[1].cost = &cost;
    cfg.kvTransfer = KvTransferConfig::free();
    auto disagg_trace = TraceWorkload::fixedSchedule(schedule);
    const ClusterMetrics disagg =
        simulateCluster(cfg, *disagg_trace);

    ASSERT_EQ(disagg.aggregate.requests.size(), mono.requests.size());
    for (std::size_t i = 0; i < mono.requests.size(); ++i) {
        const RequestRecord &m = mono.requests[i];
        const RequestRecord &d = disagg.aggregate.requests[i];
        EXPECT_DOUBLE_EQ(d.firstTokenS, m.firstTokenS);
        EXPECT_DOUBLE_EQ(d.finishS, m.finishS);
        EXPECT_DOUBLE_EQ(d.ttftS(), m.ttftS());
    }
    EXPECT_DOUBLE_EQ(disagg.aggregate.ttft().meanS,
                     mono.ttft().meanS);
    EXPECT_DOUBLE_EQ(disagg.aggregate.ttft().p99S, mono.ttft().p99S);
    EXPECT_DOUBLE_EQ(disagg.aggregate.tbt().meanS, mono.tbt().meanS);
    EXPECT_DOUBLE_EQ(disagg.aggregate.tbt().p99S, mono.tbt().p99S);
    EXPECT_EQ(disagg.kvTransfers, schedule.size());
    EXPECT_DOUBLE_EQ(disagg.kvTransferTotalS, 0.0);
}

TEST(Cluster, KvTransferChargesExactlyLatencyPlusBytesOverBandwidth)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    const std::vector<TraceRequest> schedule = {
        {0.0, 512, 32}, {1000.0, 512, 32}};

    ClusterConfig cfg;
    cfg.pools.resize(2);
    cfg.pools[0].name = "prefill";
    cfg.pools[0].role = PoolRole::PREFILL;
    cfg.pools[0].cost = &cost;
    cfg.pools[1].name = "decode";
    cfg.pools[1].role = PoolRole::DECODE;
    cfg.pools[1].cost = &cost;
    cfg.kvTransfer.latencyS = 0.25;
    cfg.kvTransfer.bandwidthBytesPerS = 1e9;

    auto trace = TraceWorkload::fixedSchedule(schedule);
    const ClusterMetrics m = simulateCluster(cfg, *trace);

    const double bytes = cost.kvBytesPerTokenPerDevice() *
                         cost.system().tensorParallel * 512;
    const double per_transfer = 0.25 + bytes / 1e9;
    EXPECT_EQ(m.kvTransfers, 2u);
    EXPECT_DOUBLE_EQ(m.kvBytesTransferred, 2 * bytes);
    EXPECT_DOUBLE_EQ(m.kvTransferTotalS, 2 * per_transfer);

    // The transfer delays the decode phase, not the first token: the
    // first TBT gap absorbs the whole cost.
    ASSERT_FALSE(m.aggregate.tbtGapsS.empty());
    EXPECT_GE(m.aggregate.tbt().maxS, per_transfer);
}

TEST(Cluster, ValidationRejectsMalformedConfigs)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);

    ClusterConfig empty;
    EXPECT_THROW(empty.validate(), FatalError);

    ClusterConfig null_cost;
    null_cost.pools.resize(1);
    EXPECT_THROW(null_cost.validate(), FatalError);

    // A PREFILL pool without a DECODE pool has nowhere to ship KV.
    ClusterConfig prefill_only;
    prefill_only.pools.resize(1);
    prefill_only.pools[0].role = PoolRole::PREFILL;
    prefill_only.pools[0].cost = &cost;
    EXPECT_THROW(prefill_only.validate(), FatalError);

    KvTransferConfig kv;
    kv.latencyS = -1.0;
    EXPECT_THROW(kv.validate(), FatalError);
}

// ---- heterogeneous fleets and routing determinism --------------------------

ClusterConfig
mixedFleetConfig(const IterationCostModel &a100,
                 const IterationCostModel &h20,
                 RoutingPolicyKind routing)
{
    ClusterConfig cfg;
    cfg.pools.resize(2);
    cfg.pools[0].name = "a100";
    cfg.pools[0].cost = &a100;
    cfg.pools[0].replicas = 2;
    cfg.pools[0].hourlyCostUsdPerReplica = 8.0;
    cfg.pools[1].name = "h20";
    cfg.pools[1].cost = &h20;
    cfg.pools[1].replicas = 2;
    cfg.pools[1].hourlyCostUsdPerReplica = 4.0;
    cfg.routing = routing;
    return cfg;
}

std::unique_ptr<TraceWorkload>
mixedFleetTrace()
{
    return TraceWorkload::poisson(
        2.0, LengthDistribution::uniform(256, 768, 64),
        LengthDistribution::uniform(32, 96, 16), 120.0, 31);
}

TEST(Cluster, RoutingIsDeterministicAcrossThreadCounts)
{
    const core::Workload w = testWorkload();
    const IterationCostModel a100 = testCost(w);
    const IterationCostModel h20 = testCost(w, hw::modeledH20Style());

    for (RoutingPolicyKind kind :
         {RoutingPolicyKind::JOIN_SHORTEST_QUEUE,
          RoutingPolicyKind::PHASE_AFFINITY,
          RoutingPolicyKind::COST_WEIGHTED}) {
        const ClusterConfig cfg = mixedFleetConfig(a100, h20, kind);
        auto serial_trace = mixedFleetTrace();
        const std::string serial =
            fingerprint(simulateCluster(cfg, *serial_trace));

        // Concurrent runs share the two cost-model memo tables — the
        // fan-out the TSan job watches — and every run must match the
        // serial bytes regardless of worker count.
        for (unsigned workers : {1u, 7u}) {
            common::ThreadPool pool(workers);
            std::vector<std::string> prints(8);
            pool.parallelFor(prints.size(), [&](std::size_t i) {
                auto trace = mixedFleetTrace();
                prints[i] =
                    fingerprint(simulateCluster(cfg, *trace));
            });
            for (const std::string &p : prints)
                EXPECT_EQ(p, serial);
        }
    }
}

TEST(Cluster, PhaseAffinityRoutesPrefillsToFasterPool)
{
    const core::Workload w = testWorkload();
    const IterationCostModel a100 = testCost(w);
    const IterationCostModel h20 = testCost(w, hw::modeledH20Style());
    // The H20-style part's TPP cap makes its prefill far slower than
    // the A100's, so phase-affinity should send most prompts left.
    const ClusterConfig cfg = mixedFleetConfig(
        a100, h20, RoutingPolicyKind::PHASE_AFFINITY);
    auto trace = mixedFleetTrace();
    const ClusterMetrics m = simulateCluster(cfg, *trace);
    ASSERT_EQ(m.pools.size(), 2u);
    EXPECT_GT(m.pools[0].routedPrefill, m.pools[1].routedPrefill);
    EXPECT_EQ(m.pools[0].routedPrefill + m.pools[1].routedPrefill,
              m.aggregate.arrivals);
}

/**
 * ClusterConfig::queueEngine drives the cluster's single global
 * event queue; a disaggregated run with real (nonzero-cost) KV
 * transfers exercises every event kind — including KV_DONE and the
 * slot-map transfer recycling — so calendar and heap runs must be
 * bit-identical.
 */
TEST(Cluster, QueueEngineDoesNotChangeClusterBytes)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    ClusterConfig cfg;
    cfg.pools.resize(2);
    cfg.pools[0].name = "prefill";
    cfg.pools[0].role = PoolRole::PREFILL;
    cfg.pools[0].cost = &cost;
    cfg.pools[0].replicas = 2;
    cfg.pools[1].name = "decode";
    cfg.pools[1].role = PoolRole::DECODE;
    cfg.pools[1].cost = &cost;
    cfg.pools[1].replicas = 2;
    cfg.kvTransfer.latencyS = 5e-3;

    auto cal_trace = mixedFleetTrace();
    const std::string cal =
        fingerprint(simulateCluster(cfg, *cal_trace));

    cfg.queueEngine = QueueEngine::LEGACY_HEAP;
    auto heap_trace = mixedFleetTrace();
    const std::string heap =
        fingerprint(simulateCluster(cfg, *heap_trace));

    EXPECT_EQ(cal, heap);
    EXPECT_FALSE(cal.empty());
}

// ---- streaming histograms --------------------------------------------------

TEST(Histogram, PercentilesWithinRelativeErrorBound)
{
    LatencyHistogram h;
    std::vector<double> samples;
    for (int i = 1; i <= 2000; ++i) {
        const double s = 1e-3 * i; // 1 ms .. 2 s
        samples.push_back(s);
        h.record(s);
    }
    EXPECT_EQ(h.count, 2000u);
    for (double pct : {50.0, 90.0, 99.0}) {
        const double exact =
            samples[static_cast<std::size_t>(pct / 100 *
                                             samples.size()) -
                    1];
        EXPECT_NEAR(h.percentileS(pct), exact, exact * 0.02);
    }
    EXPECT_DOUBLE_EQ(h.percentileS(100.0), h.maxS);
    EXPECT_NEAR(h.meanS(), 1.0005, 1e-9);
}

TEST(Histogram, MergeEqualsCombinedRecording)
{
    LatencyHistogram a, b, all;
    for (int i = 1; i <= 500; ++i) {
        const double s = 3e-4 * i;
        (i % 2 ? a : b).record(s);
        all.record(s);
    }
    a.merge(b);
    EXPECT_EQ(a.count, all.count);
    EXPECT_DOUBLE_EQ(a.sumS, all.sumS);
    EXPECT_DOUBLE_EQ(a.maxS, all.maxS);
    EXPECT_EQ(a.buckets, all.buckets);
}

TEST(Cluster, HistogramPercentilesTrackExactWhenRecordsOff)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);
    ClusterConfig cfg;
    cfg.pools.resize(1);
    cfg.pools[0].name = "a100";
    cfg.pools[0].cost = &cost;

    auto exact_trace = mixedFleetTrace();
    const ClusterMetrics exact = simulateCluster(cfg, *exact_trace);

    cfg.recordRequests = false;
    cfg.recordTbtGaps = false;
    auto stream_trace = mixedFleetTrace();
    const ClusterMetrics streamed =
        simulateCluster(cfg, *stream_trace);

    EXPECT_TRUE(streamed.aggregate.requests.empty());
    EXPECT_TRUE(streamed.aggregate.tbtGapsS.empty());
    EXPECT_EQ(streamed.completedRequests, exact.completedRequests);
    for (double pct : {50.0, 99.0}) {
        EXPECT_NEAR(streamed.ttftPercentileS(pct),
                    exact.ttftPercentileS(pct),
                    exact.ttftPercentileS(pct) * 0.02);
        EXPECT_NEAR(streamed.tbtPercentileS(pct),
                    exact.tbtPercentileS(pct),
                    exact.tbtPercentileS(pct) * 0.02);
    }
}

// ---- two-pool sizing -------------------------------------------------------

TEST(DisaggFleet, SizesBothPoolsAgainstSlo)
{
    const core::Workload w = testWorkload();
    const IterationCostModel cost = testCost(w);

    DisaggPoolSpec prefill;
    prefill.cost = &cost;
    prefill.hourlyCostUsdPerReplica = 8.0;
    DisaggPoolSpec decode = prefill;

    FleetDemand demand;
    demand.ratePerS = 2.0;
    demand.promptLen = LengthDistribution::fixed(512);
    demand.outputLen = LengthDistribution::fixed(64);
    demand.horizonS = 120.0;
    demand.seed = 5;

    SloTargets slo;
    slo.ttftMaxS = 5.0;
    slo.tbtMaxS = 0.200;

    const DisaggFleetPlan plan = sizeDisaggFleet(
        prefill, decode, KvTransferConfig{}, demand, slo);
    ASSERT_TRUE(plan.feasible);
    EXPECT_GE(plan.prefillReplicas, 1);
    EXPECT_GE(plan.decodeReplicas, 1);
    EXPECT_EQ(plan.devices,
              (plan.prefillReplicas + plan.decodeReplicas) *
                  static_cast<long>(cost.system().tensorParallel));
    EXPECT_GT(plan.probes, 0);
    EXPECT_TRUE(plan.aggregate.meetsSlo(slo));
    EXPECT_GT(plan.aggregate.goodputTokensPerS(), 0.0);
    // The fleet is priced: 8 $/h per replica on both sides.
    EXPECT_DOUBLE_EQ(plan.aggregate.fleetHourlyUsd,
                     8.0 * (plan.prefillReplicas +
                            plan.decodeReplicas));
}

} // namespace
} // namespace sim
} // namespace acs
