/**
 * @file
 * Unit tests for acs_model: Table 2 presets, parameter counting, and
 * the prefill/decode operator-graph builders.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "model/ops.hh"
#include "model/transformer.hh"

namespace acs {
namespace model {
namespace {

// ---- Table 2 presets -------------------------------------------------------

TEST(Table2, Gpt3Architecture)
{
    const TransformerConfig cfg = gpt3_175b();
    EXPECT_EQ(cfg.numLayers, 96);
    EXPECT_EQ(cfg.modelDim, 12288);
    EXPECT_EQ(cfg.ffnDim, 49152);
    EXPECT_EQ(cfg.numHeads, 96);
    EXPECT_EQ(cfg.numKvHeads, 96);
    EXPECT_EQ(cfg.activation, Activation::GELU);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Table2, Llama3Architecture)
{
    const TransformerConfig cfg = llama3_8b();
    EXPECT_EQ(cfg.numLayers, 32);
    EXPECT_EQ(cfg.modelDim, 4096);
    EXPECT_EQ(cfg.ffnDim, 14336);
    EXPECT_EQ(cfg.numHeads, 32);
    EXPECT_EQ(cfg.numKvHeads, 8);
    EXPECT_EQ(cfg.activation, Activation::SWIGLU);
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Table2, HeadDims)
{
    EXPECT_EQ(gpt3_175b().headDim(), 128);
    EXPECT_EQ(llama3_8b().headDim(), 128);
    EXPECT_EQ(gpt3_175b().kvDim(), 12288);
    EXPECT_EQ(llama3_8b().kvDim(), 1024);
}

TEST(Table2, ParameterCounts)
{
    // GPT-3 layer: 4 d^2 + 2 d ffn = 4*12288^2 + 2*12288*49152.
    EXPECT_EQ(gpt3_175b().paramsPerLayer(),
              4L * 12288 * 12288 + 2L * 12288 * 49152);
    // Llama layer: 2 d^2 + 2 d kv + 3 d ffn.
    EXPECT_EQ(llama3_8b().paramsPerLayer(),
              2L * 4096 * 4096 + 2L * 4096 * 1024 +
              3L * 4096 * 14336);
}

TEST(Table2, TotalParamsNearNominal)
{
    // Excluding embeddings: GPT-3 ~174B of its 175B.
    EXPECT_NEAR(static_cast<double>(gpt3_175b().totalParams()), 174e9,
                5e9);
    EXPECT_NEAR(static_cast<double>(llama3_8b().totalParams()), 7e9,
                1e9);
}

TEST(TransformerConfig, ValidateRejectsBadDims)
{
    TransformerConfig cfg = gpt3_175b();
    cfg.numHeads = 7; // does not divide modelDim
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = llama3_8b();
    cfg.numKvHeads = 3; // does not divide numHeads
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = gpt3_175b();
    cfg.numLayers = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(InferenceSetting, DefaultsMatchPaper)
{
    const InferenceSetting s;
    EXPECT_EQ(s.batch, 32);
    EXPECT_EQ(s.inputLen, 2048);
    EXPECT_EQ(s.outputLen, 1024);
    EXPECT_EQ(s.bytesPerValue, 2);
    EXPECT_EQ(s.decodeContextLen(), 2048 + 512);
}

TEST(InferenceSetting, Validation)
{
    InferenceSetting s;
    s.batch = 0;
    EXPECT_THROW(s.validate(), FatalError);
    s = InferenceSetting{};
    s.inputLen = -1;
    EXPECT_THROW(s.validate(), FatalError);
}

TEST(KvCache, FormulaAndSharding)
{
    const TransformerConfig cfg = gpt3_175b();
    const InferenceSetting s;
    // 2 (K and V) * batch * ctx * kvDim * bytes.
    EXPECT_DOUBLE_EQ(kvCacheBytesPerLayer(cfg, s, 2048, 1),
                     2.0 * 32 * 2048 * 12288 * 2);
    EXPECT_DOUBLE_EQ(kvCacheBytesPerLayer(cfg, s, 2048, 4),
                     2.0 * 32 * 2048 * 12288 * 2 / 4);
}

TEST(KvCache, GqaShrinksCache)
{
    const InferenceSetting s;
    const double gqa =
        kvCacheBytesPerLayer(llama3_8b(), s, 2048, 1);
    TransformerConfig mha = llama3_8b();
    mha.numKvHeads = mha.numHeads;
    EXPECT_DOUBLE_EQ(kvCacheBytesPerLayer(mha, s, 2048, 1) / gqa, 4.0);
}

TEST(KvCache, Validation)
{
    EXPECT_THROW(kvCacheBytesPerLayer(gpt3_175b(), InferenceSetting{},
                                      0, 1),
                 FatalError);
    EXPECT_THROW(kvCacheBytesPerLayer(gpt3_175b(), InferenceSetting{},
                                      2048, 0),
                 FatalError);
}

// ---- graph builders ----------------------------------------------------------

TEST(Graphs, PrefillOpSequenceGelu)
{
    const LayerGraph g =
        buildPrefillGraph(gpt3_175b(), InferenceSetting{}, 4);
    std::vector<std::string> names;
    for (const Op &op : g.ops)
        names.push_back(op.name);
    const std::vector<std::string> expected = {
        "pre-norm", "qkv-proj", "attn-score", "softmax", "attn-value",
        "out-proj", "attn-allreduce", "residual-1", "post-norm",
        "ffn-up", "gelu", "ffn-down", "ffn-allreduce", "residual-2"};
    EXPECT_EQ(names, expected);
}

TEST(Graphs, SwigluUsesGateUpFusion)
{
    const LayerGraph g =
        buildPrefillGraph(llama3_8b(), InferenceSetting{}, 1);
    bool has_gate_up = false, has_swiglu = false, has_gelu = false;
    for (const Op &op : g.ops) {
        has_gate_up |= op.name == "ffn-gate-up";
        has_swiglu |= op.name == "swiglu";
        has_gelu |= op.name == "gelu";
    }
    EXPECT_TRUE(has_gate_up);
    EXPECT_TRUE(has_swiglu);
    EXPECT_FALSE(has_gelu);
}

TEST(Graphs, SingleDeviceHasNoAllreduce)
{
    const LayerGraph g =
        buildPrefillGraph(llama3_8b(), InferenceSetting{}, 1);
    for (const Op &op : g.ops)
        EXPECT_NE(op.kind, OpKind::ALLREDUCE) << op.name;
}

TEST(Graphs, TensorParallelHasTwoAllreduces)
{
    const LayerGraph g =
        buildPrefillGraph(gpt3_175b(), InferenceSetting{}, 4);
    int allreduces = 0;
    for (const Op &op : g.ops)
        allreduces += op.kind == OpKind::ALLREDUCE;
    EXPECT_EQ(allreduces, 2);
}

TEST(Graphs, PrefillFlopsMatchAnalyticApproximation)
{
    // Dominant term: 2 * tokens * params / tp; attention adds a few %.
    const InferenceSetting s;
    const LayerGraph g = buildPrefillGraph(gpt3_175b(), s, 4);
    const double tokens = 32.0 * 2048.0;
    const double dense = 2.0 * tokens * gpt3_175b().paramsPerLayer() / 4;
    EXPECT_GT(g.totalFlops(), dense);
    EXPECT_LT(g.totalFlops(), dense * 1.15);
}

TEST(Graphs, WeightBytesAreShardedParams)
{
    const InferenceSetting s;
    for (int tp : {1, 2, 4}) {
        const LayerGraph g = buildPrefillGraph(gpt3_175b(), s, tp);
        EXPECT_NEAR(g.totalWeightBytes(),
                    2.0 * gpt3_175b().paramsPerLayer() / tp,
                    1e-3 * g.totalWeightBytes())
            << "tp=" << tp;
    }
}

TEST(Graphs, DecodeMatmulsAreSkinny)
{
    const LayerGraph g =
        buildDecodeGraph(gpt3_175b(), InferenceSetting{}, 4);
    for (const Op &op : g.ops) {
        if (op.kind != OpKind::MATMUL || !op.mm.weightStationary)
            continue;
        EXPECT_EQ(op.mm.m, 32) << op.name; // batch rows only
    }
}

TEST(Graphs, DecodeAttentionUsesContextLength)
{
    const InferenceSetting s;
    const LayerGraph g = buildDecodeGraph(gpt3_175b(), s, 4);
    for (const Op &op : g.ops) {
        if (op.name == "attn-score") {
            EXPECT_EQ(op.mm.m, 1);
            EXPECT_EQ(op.mm.n, s.decodeContextLen());
            EXPECT_EQ(op.mm.k, 128);
            EXPECT_EQ(op.mm.batchCount, 32L * 96 / 4);
        }
    }
}

TEST(Graphs, DecodeFlopsFarBelowPrefill)
{
    const InferenceSetting s;
    const double p =
        buildPrefillGraph(gpt3_175b(), s, 4).totalFlops();
    const double d = buildDecodeGraph(gpt3_175b(), s, 4).totalFlops();
    EXPECT_LT(d * 100.0, p);
}

TEST(Graphs, GqaSharesKvOperands)
{
    // Llama's 8 KV heads mean the attention K/V operand bytes are
    // 1/4 of what full MHA would read.
    const InferenceSetting s;
    TransformerConfig mha = llama3_8b();
    mha.numKvHeads = mha.numHeads;
    const LayerGraph gqa = buildDecodeGraph(llama3_8b(), s, 1);
    const LayerGraph full = buildDecodeGraph(mha, s, 1);
    auto attn_input = [](const LayerGraph &g) {
        for (const Op &op : g.ops) {
            if (op.name == "attn-score")
                return op.inputBytes;
        }
        return 0.0;
    };
    EXPECT_LT(attn_input(gqa), attn_input(full));
}

TEST(Graphs, InvalidTensorParallelIsFatal)
{
    EXPECT_THROW(buildPrefillGraph(llama3_8b(), InferenceSetting{}, 0),
                 FatalError);
    // 16 does not divide Llama's 8 KV heads.
    EXPECT_THROW(buildPrefillGraph(llama3_8b(), InferenceSetting{}, 16),
                 FatalError);
    // 5 does not divide GPT-3's 96 heads.
    EXPECT_THROW(buildPrefillGraph(gpt3_175b(), InferenceSetting{}, 5),
                 FatalError);
}

TEST(Graphs, AllOpsHaveNonNegativeFootprints)
{
    for (int tp : {1, 4}) {
        for (const LayerGraph &g :
             {buildPrefillGraph(gpt3_175b(), InferenceSetting{}, tp),
              buildDecodeGraph(gpt3_175b(), InferenceSetting{}, tp)}) {
            for (const Op &op : g.ops) {
                EXPECT_GE(op.flops, 0.0) << op.name;
                EXPECT_GE(op.weightBytes, 0.0) << op.name;
                EXPECT_GE(op.inputBytes, 0.0) << op.name;
                EXPECT_GE(op.outputBytes, 0.0) << op.name;
                EXPECT_GE(op.commBytes, 0.0) << op.name;
            }
        }
    }
}

TEST(Graphs, ShardingConservesTotalFlops)
{
    // Matmul FLOPs per device x tp should equal the tp=1 FLOPs
    // (allreduce adds no FLOPs in this model).
    const InferenceSetting s;
    const double one =
        buildPrefillGraph(gpt3_175b(), s, 1).totalFlops();
    for (int tp : {2, 4, 8}) {
        const LayerGraph g = buildPrefillGraph(gpt3_175b(), s, tp);
        EXPECT_NEAR(g.totalFlops() * tp, one, 0.02 * one) << tp;
    }
}

TEST(Graphs, AllreducePayloadIsActivationSized)
{
    const InferenceSetting s;
    const LayerGraph g = buildPrefillGraph(gpt3_175b(), s, 4);
    for (const Op &op : g.ops) {
        if (op.kind == OpKind::ALLREDUCE) {
            EXPECT_DOUBLE_EQ(op.commBytes,
                             32.0 * 2048 * 12288 * 2);
        }
    }
}


TEST(Table2, Llama70bExtensionPreset)
{
    const TransformerConfig cfg = llama3_70b();
    EXPECT_EQ(cfg.numLayers, 80);
    EXPECT_EQ(cfg.modelDim, 8192);
    EXPECT_EQ(cfg.ffnDim, 28672);
    EXPECT_EQ(cfg.numHeads, 64);
    EXPECT_EQ(cfg.numKvHeads, 8);
    EXPECT_EQ(cfg.headDim(), 128);
    EXPECT_NO_THROW(cfg.validate());
    // ~70B parameters (excluding embeddings).
    EXPECT_NEAR(static_cast<double>(cfg.totalParams()), 68e9, 3e9);
}

TEST(Graphs, Llama70bGraphsBuildAtTp4)
{
    const InferenceSetting s;
    const LayerGraph prefill = buildPrefillGraph(llama3_70b(), s, 4);
    const LayerGraph decode = buildDecodeGraph(llama3_70b(), s, 4);
    EXPECT_GT(prefill.totalFlops(), decode.totalFlops());
    EXPECT_NEAR(prefill.totalWeightBytes(),
                2.0 * llama3_70b().paramsPerLayer() / 4.0,
                1e-3 * prefill.totalWeightBytes());
}

TEST(OpKind, Names)
{
    EXPECT_EQ(toString(OpKind::MATMUL), "matmul");
    EXPECT_EQ(toString(OpKind::VECTOR), "vector");
    EXPECT_EQ(toString(OpKind::ALLREDUCE), "allreduce");
    EXPECT_EQ(toString(Activation::GELU), "GELU");
    EXPECT_EQ(toString(Activation::SWIGLU), "SwiGLU");
}

/** Property sweep: graphs stay well-formed across TP degrees. */
class GraphTpSweep : public ::testing::TestWithParam<int>
{};

TEST_P(GraphTpSweep, DecodeGraphWellFormed)
{
    const int tp = GetParam();
    const LayerGraph g =
        buildDecodeGraph(gpt3_175b(), InferenceSetting{}, tp);
    EXPECT_GT(g.totalFlops(), 0.0);
    EXPECT_GT(g.totalWeightBytes(), 0.0);
    int allreduces = 0;
    for (const Op &op : g.ops)
        allreduces += op.kind == OpKind::ALLREDUCE;
    EXPECT_EQ(allreduces, tp > 1 ? 2 : 0);
}

INSTANTIATE_TEST_SUITE_P(TpDegrees, GraphTpSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

} // anonymous namespace
} // namespace model
} // namespace acs
