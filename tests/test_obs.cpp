/**
 * @file
 * Unit tests for acs_obs: counters, scoped timers, trace spans,
 * Chrome-trace export, thread aggregation, and the instrumentation
 * wired through the DSE pipeline.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "common/units.hh"
#include "core/study.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "hw/presets.hh"
#include "obs/obs.hh"

namespace acs {
namespace obs {
namespace {

/** Every test runs with a clean, enabled recorder and disables after. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setEnabled(true);
        reset();
    }

    void TearDown() override
    {
        setEnabled(false);
        reset();
    }
};

TEST_F(ObsTest, DisabledRecordsNothing)
{
    setEnabled(false);
    counterAdd("c");
    recordDuration("t", 0.5);
    { TraceSpan span("s"); }
    { ScopedTimer timer("st"); }
    EXPECT_EQ(counterValue("c"), 0u);
    EXPECT_EQ(timerStat("t").count, 0u);
    EXPECT_EQ(timerStat("st").count, 0u);
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST_F(ObsTest, CountersAccumulate)
{
    counterAdd("bugs");
    counterAdd("bugs", 41);
    EXPECT_EQ(counterValue("bugs"), 42u);
    EXPECT_EQ(counterValue("unknown"), 0u);

    const auto all = counterValues();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].first, "bugs");
    EXPECT_EQ(all[0].second, 42u);
}

TEST_F(ObsTest, ScopedTimerRecordsDurations)
{
    for (int i = 0; i < 3; ++i) {
        ScopedTimer timer("stage");
    }
    const TimerStat s = timerStat("stage");
    EXPECT_EQ(s.count, 3u);
    EXPECT_GE(s.maxS, s.minS);
    EXPECT_GE(s.totalS, s.maxS);
    EXPECT_GE(s.meanS(), s.minS);
}

TEST_F(ObsTest, RecordDurationFillsHistogramBuckets)
{
    recordDuration("h", 1e-6);  // 1000 ns -> bucket 9
    recordDuration("h", 1e-3);  // 1e6 ns -> bucket 19
    const TimerStat s = timerStat("h");
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.buckets[9], 1u);
    EXPECT_EQ(s.buckets[19], 1u);
    std::uint64_t total = 0;
    for (int b = 0; b < HISTOGRAM_BUCKETS; ++b)
        total += s.buckets[b];
    EXPECT_EQ(total, 2u);
    EXPECT_NEAR(s.minS, 1e-6, 1e-12);
    EXPECT_NEAR(s.maxS, 1e-3, 1e-9);
}

TEST_F(ObsTest, TraceSpansBecomeEvents)
{
    {
        TraceSpan outer("outer");
        TraceSpan inner("inner");
    }
    EXPECT_EQ(traceEventCount(), 2u);
    // Spans double as timers.
    EXPECT_EQ(timerStat("outer").count, 1u);
    EXPECT_EQ(timerStat("inner").count, 1u);
}

TEST_F(ObsTest, ChromeTraceIsWellFormedJson)
{
    {
        TraceSpan span("a \"quoted\"\nname");
    }
    { TraceSpan span("plain"); }
    std::ostringstream os;
    writeChromeTrace(os);
    const std::string json = os.str();

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"plain\""), std::string::npos);
    // Escaped, not raw.
    EXPECT_NE(json.find("a \\\"quoted\\\"\\nname"), std::string::npos);
    EXPECT_EQ(json.find("\"quoted\"\n"), std::string::npos);
    // Balanced braces/brackets (structural sanity in lieu of a JSON
    // parser).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_EQ(droppedEventCount(), 0u);
}

TEST_F(ObsTest, ThreadsAggregateAndKeepPerThreadCounts)
{
    constexpr int THREADS = 4;
    constexpr int PER_THREAD = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < THREADS; ++t) {
        pool.emplace_back([] {
            for (int i = 0; i < PER_THREAD; ++i)
                counterAdd("mt");
        });
    }
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(counterValue("mt"),
              static_cast<std::uint64_t>(THREADS) * PER_THREAD);

    const auto per_thread = counterValuesPerThread("mt");
    EXPECT_EQ(per_thread.size(), static_cast<std::size_t>(THREADS));
    std::uint64_t sum = 0;
    for (const auto &[tid, value] : per_thread) {
        EXPECT_EQ(value, static_cast<std::uint64_t>(PER_THREAD));
        sum += value;
    }
    EXPECT_EQ(sum, counterValue("mt"));
}

TEST_F(ObsTest, ResetClearsEverything)
{
    counterAdd("c");
    recordDuration("t", 1.0);
    { TraceSpan span("s"); }
    reset();
    EXPECT_EQ(counterValue("c"), 0u);
    EXPECT_EQ(timerStat("t").count, 0u);
    EXPECT_EQ(traceEventCount(), 0u);
    EXPECT_TRUE(counterValues().empty());
    EXPECT_TRUE(timerStats().empty());
}

TEST_F(ObsTest, SummaryTableHasTimerAndCounterRows)
{
    counterAdd("counter.a", 7);
    recordDuration("timer.b", 0.001);
    const Table t = summaryTable();
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("counter.a"), std::string::npos);
    EXPECT_NE(os.str().find("timer.b"), std::string::npos);
}

TEST_F(ObsTest, EnableFromEnvHonoursAcsTrace)
{
    setEnabled(false);
    unsetenv("ACS_TRACE");
    EXPECT_EQ(enableFromEnv(), "");
    EXPECT_FALSE(enabled());

    setenv("ACS_TRACE", "/tmp/acs_obs_test.json", 1);
    EXPECT_EQ(enableFromEnv(), "/tmp/acs_obs_test.json");
    EXPECT_TRUE(enabled());
    unsetenv("ACS_TRACE");
}

// ---- pipeline instrumentation ----------------------------------------------

core::Workload
smallWorkload()
{
    core::Workload w;
    w.model = model::llama3_8b();
    w.setting = model::InferenceSetting{};
    w.system.tensorParallel = 1;
    return w;
}

TEST_F(ObsTest, EvaluatorPipelineEmitsCountersAndSpans)
{
    const core::Workload w = smallWorkload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    const std::vector<hw::HardwareConfig> cfgs{hw::modeledA100(),
                                               hw::modeledA800()};
    const auto designs = evaluator.evaluateAllParallel(cfgs, 2);
    ASSERT_EQ(designs.size(), 2u);

    EXPECT_EQ(counterValue("dse.designs.evaluated"), 2u);
    EXPECT_EQ(timerStat("dse.evaluate").count, 2u);
    // Prefill + decode spans per design.
    EXPECT_EQ(timerStat("perf.prefill").count, 2u);
    EXPECT_EQ(timerStat("perf.decode").count, 2u);
    // Every op was timed and tallied against a bound.
    const std::uint64_t ops = counterValue("perf.ops.timed");
    EXPECT_GT(ops, 0u);
    EXPECT_EQ(counterValue("perf.bound.compute") +
                  counterValue("perf.bound.hbm") +
                  counterValue("perf.bound.l2") +
                  counterValue("perf.bound.interconnect"),
              ops);
    // Worker tallies cover all designs.
    std::uint64_t worker_total = 0;
    for (const auto &[tid, n] : counterValuesPerThread(
             "dse.worker.designs"))
        worker_total += n;
    EXPECT_EQ(worker_total, 2u);
}

TEST_F(ObsTest, SweepGenerationIsCounted)
{
    const auto cfgs =
        dse::table3Space(4800.0, {600.0 * units::GBPS}).generate();
    EXPECT_EQ(counterValue("dse.sweep.points"), cfgs.size());
    EXPECT_EQ(timerStat("dse.sweep.generate").count, 1u);
}

} // anonymous namespace
} // namespace obs
} // namespace acs
