/**
 * @file
 * Unit tests for acs_dse: sweep generation (Tables 3/5), design
 * evaluation, compliance filters, and the distribution/Pareto
 * analyses.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "common/units.hh"
#include "core/study.hh"
#include "dse/analysis.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "hw/presets.hh"
#include "perf/gemm_cache.hh"

namespace acs {
namespace dse {
namespace {

core::Workload
smallWorkload()
{
    // Llama on one device: cheapest evaluation for unit tests.
    core::Workload w;
    w.model = model::llama3_8b();
    w.setting = model::InferenceSetting{};
    w.system.tensorParallel = 1;
    return w;
}

DesignEvaluator
makeEvaluator()
{
    const core::Workload w = smallWorkload();
    return DesignEvaluator(w.model, w.setting, w.system);
}

// ---- sweep spaces -----------------------------------------------------------

TEST(SweepSpace, Table3SizeMatchesPaper)
{
    // 2 dims x 4 lanes x 4 L1 x 4 L2 x 4 memBW x 1 devBW = 512.
    EXPECT_EQ(table3Space(4800.0, {600.0 * units::GBPS}).size(), 512u);
    // x 3 device bandwidths = 1536 (Fig. 7).
    EXPECT_EQ(table3Space(2400.0,
                          {500.0 * units::GBPS, 700.0 * units::GBPS,
                           900.0 * units::GBPS})
                  .size(),
              1536u);
}

TEST(SweepSpace, Table5SizeMatchesPaper)
{
    // 3 dims x 4 lanes x 4 L1 x 4 L2 x 4 memBW x 3 devBW = 2304.
    EXPECT_EQ(table5Space().size(), 2304u);
}

TEST(SweepSpace, GenerateProducesEveryPoint)
{
    const SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    EXPECT_EQ(space.generate().size(), space.size());
}

TEST(SweepSpace, AllGeneratedPointsRespectTppTarget)
{
    for (double target : {1600.0, 2400.0, 4800.0}) {
        const SweepSpace space =
            table3Space(target, {600.0 * units::GBPS});
        for (const hw::HardwareConfig &cfg : space.generate()) {
            EXPECT_LE(cfg.tpp(), target * (1.0 + 1e-9)) << cfg.name;
            // And near the target: adding one core would exceed it.
            hw::HardwareConfig plus = cfg;
            plus.coreCount += 1;
            EXPECT_GT(plus.tpp(), target) << cfg.name;
        }
    }
}

TEST(SweepSpace, GeneratedNamesAreUnique)
{
    const auto cfgs =
        table3Space(4800.0, {600.0 * units::GBPS}).generate();
    std::set<std::string> names;
    for (const auto &cfg : cfgs)
        names.insert(cfg.name);
    EXPECT_EQ(names.size(), cfgs.size());
}

TEST(SweepSpace, DeviceBandwidthRealizedAs50GbpsPhys)
{
    SweepSpace space = table3Space(4800.0, {500.0 * units::GBPS});
    for (const auto &cfg : space.generate()) {
        EXPECT_EQ(cfg.devicePhyCount, 10);
        EXPECT_DOUBLE_EQ(cfg.deviceBandwidth(), 500.0 * units::GBPS);
    }
}

TEST(SweepSpace, TinyDeviceBandwidthClampsToOnePhy)
{
    // Below 25 GB/s the nearest-PHY rounding used to yield zero PHYs
    // (an interconnect-less design); it must clamp to one.
    SweepSpace space = table3Space(4800.0, {10.0 * units::GBPS});
    const auto cfgs = space.generate();
    ASSERT_EQ(cfgs.size(), space.size());
    for (const auto &cfg : cfgs) {
        EXPECT_EQ(cfg.devicePhyCount, 1) << cfg.name;
        EXPECT_DOUBLE_EQ(cfg.deviceBandwidth(), 50.0 * units::GBPS);
    }
}

TEST(SweepSpace, EmptyParameterListIsFatal)
{
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.l2Bytes.clear();
    EXPECT_THROW(space.generate(), FatalError);
    space = table3Space(4800.0, {600.0 * units::GBPS});
    space.tppTarget = 0.0;
    EXPECT_THROW(space.generate(), FatalError);
}

TEST(SweepSpace, ImpossibleCorePointsAreSkipped)
{
    SweepSpace space = table3Space(100.0, {600.0 * units::GBPS});
    space.systolicDims = {32};
    space.lanesPerCore = {8};
    // 32x32x8 = 8192 FPUs/core exceeds a 100-TPP budget.
    EXPECT_TRUE(space.generate().empty());
}

// ---- evaluation ---------------------------------------------------------------

TEST(DesignEvaluator, FieldsAreConsistent)
{
    const DesignEvaluator evaluator = makeEvaluator();
    const EvaluatedDesign d = evaluator.evaluate(hw::modeledA100());
    EXPECT_DOUBLE_EQ(d.tpp, d.config.tpp());
    EXPECT_GT(d.dieAreaMm2, 0.0);
    EXPECT_NEAR(d.perfDensity, d.tpp / d.dieAreaMm2, 1e-9);
    EXPECT_EQ(d.underReticle,
              d.dieAreaMm2 <= area::RETICLE_LIMIT_MM2);
    EXPECT_GT(d.dieCostUsd, 0.0);
    EXPECT_GT(d.goodDieCostUsd, d.dieCostUsd); // yield < 1
    EXPECT_GT(d.ttftS, 0.0);
    EXPECT_GT(d.tbtS, 0.0);
}

TEST(DesignEvaluator, CostProductsAreMsTimesDollars)
{
    const DesignEvaluator evaluator = makeEvaluator();
    const EvaluatedDesign d = evaluator.evaluate(hw::modeledA100());
    EXPECT_NEAR(d.ttftCostProduct(),
                units::toMs(d.ttftS) * d.dieCostUsd, 1e-9);
    EXPECT_NEAR(d.tbtCostProduct(), units::toMs(d.tbtS) * d.dieCostUsd,
                1e-9);
}

TEST(DesignEvaluator, ToSpecMarksDataCenter)
{
    const DesignEvaluator evaluator = makeEvaluator();
    const EvaluatedDesign d = evaluator.evaluate(hw::modeledA100());
    const policy::DeviceSpec spec = d.toSpec();
    EXPECT_EQ(spec.market, policy::MarketSegment::DATA_CENTER);
    EXPECT_DOUBLE_EQ(spec.tpp, d.tpp);
    EXPECT_DOUBLE_EQ(spec.memCapacityGB, 80.0);
    EXPECT_DOUBLE_EQ(spec.deviceBandwidthGBps, 600.0);
}

TEST(DesignEvaluator, EvaluateAllPreservesOrder)
{
    const DesignEvaluator evaluator = makeEvaluator();
    std::vector<hw::HardwareConfig> cfgs{hw::modeledA100(),
                                         hw::modeledA800()};
    const auto designs = evaluator.evaluateAll(cfgs);
    ASSERT_EQ(designs.size(), 2u);
    EXPECT_EQ(designs[0].config.name, "modeled-A100");
    EXPECT_EQ(designs[1].config.name, "modeled-A800");
}

TEST(DesignEvaluator, ParallelMatchesSerialExactly)
{
    const DesignEvaluator evaluator = makeEvaluator();
    // A small but non-trivial slice of the Table-3 space.
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.l1BytesPerCore = {192.0 * units::KIB, 512.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB};
    space.memBandwidths = {2.0 * units::TBPS, 3.2 * units::TBPS};
    const auto cfgs = space.generate();
    ASSERT_GE(cfgs.size(), 8u);

    const auto serial = evaluator.evaluateAll(cfgs);
    const unsigned hw_threads = std::thread::hardware_concurrency();
    for (unsigned threads : {1u, 2u, hw_threads}) {
        const auto parallel =
            evaluator.evaluateAllParallel(cfgs, threads);
        ASSERT_EQ(parallel.size(), serial.size())
            << threads << " threads";
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].config.name, serial[i].config.name);
            // Bit-exact: the evaluators are const and every model is
            // deterministic, so threading must not change a single
            // result.
            EXPECT_EQ(parallel[i].ttftS, serial[i].ttftS)
                << serial[i].config.name << " @" << threads;
            EXPECT_EQ(parallel[i].tbtS, serial[i].tbtS)
                << serial[i].config.name << " @" << threads;
            EXPECT_EQ(parallel[i].tpp, serial[i].tpp);
            EXPECT_EQ(parallel[i].dieAreaMm2, serial[i].dieAreaMm2);
            EXPECT_EQ(parallel[i].dieCostUsd, serial[i].dieCostUsd);
            EXPECT_EQ(parallel[i].goodDieCostUsd,
                      serial[i].goodDieCostUsd);
            EXPECT_EQ(parallel[i].underReticle,
                      serial[i].underReticle);
        }
    }
}

TEST(DesignEvaluator, InvalidSystemIsFatal)
{
    const core::Workload w = smallWorkload();
    perf::SystemConfig bad{0};
    EXPECT_THROW(DesignEvaluator(w.model, w.setting, bad), FatalError);
}

// ---- filters and selectors -------------------------------------------------------

std::vector<EvaluatedDesign>
syntheticDesigns()
{
    std::vector<EvaluatedDesign> out;
    for (int i = 0; i < 5; ++i) {
        EvaluatedDesign d;
        d.config = hw::modeledA100();
        d.config.name = "d" + std::to_string(i);
        d.dieAreaMm2 = 500.0 + 200.0 * i; // 500..1300
        d.underReticle = d.dieAreaMm2 <= area::RETICLE_LIMIT_MM2;
        d.ttftS = 0.300 - 0.010 * i;
        d.tbtS = 0.0010 + 0.0001 * i;
        d.tpp = 4000.0;
        d.perfDensity = d.tpp / d.dieAreaMm2;
        d.dieCostUsd = 100.0;
        out.push_back(d);
    }
    return out;
}

TEST(Filters, ReticleKeepsSmallDies)
{
    const auto kept = filterReticle(syntheticDesigns());
    EXPECT_EQ(kept.size(), 2u); // 500 and 700 mm^2
    for (const auto &d : kept)
        EXPECT_LE(d.dieAreaMm2, area::RETICLE_LIMIT_MM2);
}

TEST(Filters, Oct2023UnregulatedFilter)
{
    // 4000 TPP needs PD < 1.6 -> area > 2500 mm^2; none qualify.
    EXPECT_TRUE(
        filterOct2023Unregulated(syntheticDesigns()).empty());

    auto designs = syntheticDesigns();
    designs[0].tpp = 1000.0; // under every threshold
    EXPECT_EQ(filterOct2023Unregulated(designs).size(), 1u);
}

TEST(Selectors, MinTtftAndMinTbt)
{
    const auto designs = syntheticDesigns();
    EXPECT_EQ(minTtft(designs).config.name, "d4");
    EXPECT_EQ(minTbt(designs).config.name, "d0");
    EXPECT_THROW(minTtft({}), FatalError);
    EXPECT_THROW(minTbt({}), FatalError);
}

// ---- analysis ----------------------------------------------------------------------

TEST(Analysis, MetricHelpers)
{
    EvaluatedDesign d;
    d.ttftS = 0.25;
    d.tbtS = 0.0014;
    EXPECT_DOUBLE_EQ(ttftMs(d), 250.0);
    EXPECT_DOUBLE_EQ(tbtMs(d), 1.4);
}

TEST(Analysis, FixedParameterPredicate)
{
    EvaluatedDesign d;
    d.config = hw::modeledA100();
    EXPECT_TRUE(fixedParameter(policy::ArchParameter::LANES_PER_CORE,
                               4.0)(d));
    EXPECT_FALSE(fixedParameter(policy::ArchParameter::LANES_PER_CORE,
                                2.0)(d));
    EXPECT_TRUE(fixedParameter(policy::ArchParameter::MEM_BANDWIDTH,
                               2.0 * units::TBPS)(d));
}

TEST(Analysis, IndicatorStudyBaselineFirst)
{
    const auto designs = syntheticDesigns();
    const auto dists = indicatorStudy(
        designs, {{"big-die", [](const EvaluatedDesign &d) {
                       return d.dieAreaMm2 > 1000.0;
                   }}});
    ASSERT_EQ(dists.size(), 2u);
    EXPECT_EQ(dists[0].label, "TPP Only");
    EXPECT_EQ(dists[0].designCount, designs.size());
    EXPECT_EQ(dists[1].label, "big-die");
    EXPECT_EQ(dists[1].designCount, 2u);
    EXPECT_GE(dists[1].ttftNarrowing, 1.0);
}

TEST(Analysis, IndicatorStudyDropsEmptyGroups)
{
    const auto dists = indicatorStudy(
        syntheticDesigns(),
        {{"nothing", [](const EvaluatedDesign &) { return false; }}});
    EXPECT_EQ(dists.size(), 1u); // baseline only
}

TEST(Analysis, IndicatorStudyEmptyBaselineIsFatal)
{
    EXPECT_THROW(indicatorStudy({}, {}), FatalError);
}

TEST(Analysis, ParetoFrontOnSyntheticSet)
{
    // In the synthetic set TTFT falls while TBT rises with i, so every
    // design is Pareto-optimal for (ttft, tbt).
    const auto designs = syntheticDesigns();
    const auto front = paretoFront(designs, ttftMs, tbtMs);
    EXPECT_EQ(front.size(), designs.size());
}

TEST(Analysis, ParetoFrontRemovesDominatedPoints)
{
    auto designs = syntheticDesigns();
    // Make d1 dominated by d0 on both metrics.
    designs[1].ttftS = designs[0].ttftS + 0.01;
    designs[1].tbtS = designs[0].tbtS + 0.01;
    const auto front = paretoFront(designs, ttftMs, tbtMs);
    for (const auto &d : front)
        EXPECT_NE(d.config.name, "d1");
}

TEST(Analysis, ParetoFrontIsSortedAndUndominated)
{
    const auto designs = syntheticDesigns();
    const auto front = paretoFront(designs, ttftMs, tbtMs);
    for (std::size_t i = 1; i < front.size(); ++i) {
        EXPECT_LE(ttftMs(front[i - 1]), ttftMs(front[i]));
        EXPECT_GT(tbtMs(front[i - 1]), tbtMs(front[i]));
    }
}


TEST(SweepSpace, ChipletDimensionMultipliesSpace)
{
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.diesPerPackage = {1, 2, 4};
    EXPECT_EQ(space.size(), 3u * 512u);
    const auto cfgs = space.generate();
    EXPECT_EQ(cfgs.size(), space.size());
    for (const auto &cfg : cfgs) {
        // Package TPP stays under the target regardless of die count.
        EXPECT_LE(cfg.tpp(), 4800.0 * (1.0 + 1e-9)) << cfg.name;
    }
}

TEST(SweepSpace, ChipletEntriesMustBePositive)
{
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.diesPerPackage = {0};
    EXPECT_THROW(space.generate(), FatalError);
}

TEST(Workloads, RegistryResolvesNames)
{
    EXPECT_EQ(core::workloadByName("gpt3").model.name, "GPT-3 175B");
    EXPECT_EQ(core::workloadByName("llama").model.name, "Llama 3 8B");
    EXPECT_EQ(core::workloadByName("llama70b").model.name,
              "Llama 3 70B");
    EXPECT_EQ(core::workloadByName("mixtral").model.name,
              "Mixtral 8x7B");
    EXPECT_THROW(core::workloadByName("gpt5"), FatalError);
}

// ---- end-to-end sweep sanity ---------------------------------------------------------

TEST(SweepIntegration, Table3SweepEvaluatesCleanly)
{
    const core::SanctionsStudy study;
    const auto designs = study.runSweep(
        table3Space(4800.0, {600.0 * units::GBPS}), smallWorkload());
    EXPECT_EQ(designs.size(), 512u);
    for (const auto &d : designs) {
        EXPECT_GT(d.ttftS, 0.0);
        EXPECT_GT(d.tbtS, 0.0);
        EXPECT_GT(d.dieAreaMm2, 0.0);
        // At or under the target; coarse-grained cores (32x32 x 8
        // lanes is 8192 FPUs/core) can land up to ~8% below it.
        EXPECT_LE(d.tpp, 4800.0 * (1.0 + 1e-9));
        EXPECT_GE(d.tpp, 4800.0 * 0.90);
    }
}

// ---- streaming pipeline ----------------------------------------------------

TEST(SweepPlan, PointMatchesGenerate)
{
    const SweepSpace space = table5Space();
    const SweepPlan plan(space);
    const auto cfgs = space.generate();
    ASSERT_EQ(plan.pointCount(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const hw::HardwareConfig cfg = plan.point(i);
        EXPECT_EQ(cfg.name, cfgs[i].name) << i;
        EXPECT_EQ(cfg.coreCount, cfgs[i].coreCount) << i;
        EXPECT_EQ(cfg.memBandwidth, cfgs[i].memBandwidth) << i;
    }
    EXPECT_THROW(plan.point(plan.pointCount()), FatalError);
}

TEST(SweepPlan, NamesAreByteIdenticalToStreamFormatting)
{
    // Design names are compiled from to_chars fragments at plan
    // construction (glibc's float printf serializes across sweep
    // workers, so point() must not format numbers). The committed
    // CSVs embed the historical ostringstream names, so the fragment
    // path must reproduce them byte for byte — including the
    // fractional mem-bandwidths (2.4, 2.8) that exercise %g.
    std::vector<SweepSpace> spaces;
    spaces.push_back(table3Space(4800.0, {600.0 * units::GBPS}));
    spaces.back().diesPerPackage = {1, 2};
    spaces.push_back(table5Space());

    for (const SweepSpace &space : spaces) {
        const SweepPlan plan(space);
        std::size_t index = 0;
        for (int dies : space.diesPerPackage) {
            for (int dim : space.systolicDims) {
                for (int lanes : space.lanesPerCore) {
                    const int cores = hw::coresForTpp(
                        space.tppTarget / dies, dim, dim, lanes,
                        space.base.clockHz, space.base.opBitwidth);
                    if (cores < 1)
                        continue;
                    for (double l1 : space.l1BytesPerCore)
                    for (double l2 : space.l2Bytes)
                    for (double mem_bw : space.memBandwidths)
                    for (double dev_bw : space.deviceBandwidths) {
                        std::ostringstream name;
                        name << "dse-" << dim << "x" << dim << "-l"
                             << lanes << "-c" << cores << "-L1."
                             << l1 / units::KIB << "K-L2."
                             << l2 / units::MIB << "M-hbm"
                             << mem_bw / units::TBPS << "T-dev"
                             << dev_bw / units::GBPS << "G";
                        if (dies > 1)
                            name << "-d" << dies;
                        ASSERT_LT(index, plan.pointCount());
                        EXPECT_EQ(plan.point(index).name, name.str())
                            << index;
                        ++index;
                    }
                }
            }
        }
        EXPECT_EQ(index, plan.pointCount());
    }
}

TEST(SweepSpace, ForEachMatchesGenerate)
{
    const SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    std::size_t seen = 0;
    space.forEach([&](const hw::HardwareConfig &cfg, std::size_t i) {
        ASSERT_LT(i, cfgs.size());
        EXPECT_EQ(i, seen);
        EXPECT_EQ(cfg.name, cfgs[i].name);
        ++seen;
    });
    EXPECT_EQ(seen, cfgs.size());
}

TEST(Streaming, MatchesMaterializedPipelineExactly)
{
    // The acceptance bar: evaluateStream over the Table 5 space must
    // reproduce evaluateAll + filters + argmins bit-for-bit at every
    // thread count.
    const DesignEvaluator evaluator = makeEvaluator();
    const SweepSpace space = table5Space();
    const auto designs = evaluator.evaluateAll(space.generate());
    const std::size_t n_reticle = filterReticle(designs).size();
    const std::size_t n_unreg =
        filterOct2023Unregulated(designs).size();
    const EvaluatedDesign &best_ttft = minTtft(designs);
    const EvaluatedDesign &best_tbt = minTbt(designs);

    for (unsigned threads : {1u, 2u, 8u}) {
        const StreamStats stats =
            evaluator.evaluateStream(space, nullptr, nullptr, threads);
        EXPECT_EQ(stats.evaluated, designs.size()) << threads;
        EXPECT_EQ(stats.kept, designs.size()) << threads;
        EXPECT_EQ(stats.underReticle, n_reticle) << threads;
        EXPECT_EQ(stats.oct2023Unregulated, n_unreg) << threads;
        ASSERT_TRUE(stats.bestTtft && stats.bestTbt) << threads;
        EXPECT_EQ(stats.bestTtft->config.name, best_ttft.config.name);
        EXPECT_EQ(stats.bestTtft->ttftS, best_ttft.ttftS) << threads;
        EXPECT_EQ(stats.bestTbt->config.name, best_tbt.config.name);
        EXPECT_EQ(stats.bestTbt->tbtS, best_tbt.tbtS) << threads;
    }
}

TEST(Streaming, PredicateMatchesFilteredArgmin)
{
    const DesignEvaluator evaluator = makeEvaluator();
    const SweepSpace space = table5Space();
    const auto kept = filterReticle(evaluator.evaluateAll(
        space.generate()));
    ASSERT_FALSE(kept.empty());
    const EvaluatedDesign &best_ttft = minTtft(kept);

    for (unsigned threads : {1u, 2u, 8u}) {
        const StreamStats stats = evaluator.evaluateStream(
            space,
            [](const EvaluatedDesign &d) { return d.underReticle; },
            nullptr, threads);
        EXPECT_EQ(stats.evaluated, space.size()) << threads;
        EXPECT_EQ(stats.kept, kept.size()) << threads;
        EXPECT_EQ(stats.underReticle, kept.size()) << threads;
        ASSERT_TRUE(stats.bestTtft) << threads;
        EXPECT_EQ(stats.bestTtft->config.name, best_ttft.config.name);
        EXPECT_EQ(stats.bestTtft->ttftS, best_ttft.ttftS) << threads;
    }
}

TEST(Streaming, VisitorSeesEveryKeptDesign)
{
    const DesignEvaluator evaluator = makeEvaluator();
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.l1BytesPerCore = {192.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB};

    std::mutex mu;
    std::set<std::size_t> indices;
    const StreamStats stats = evaluator.evaluateStream(
        space, nullptr,
        [&](const EvaluatedDesign &, std::size_t i) {
            const std::lock_guard<std::mutex> lock(mu);
            indices.insert(i);
        });
    EXPECT_EQ(indices.size(), stats.kept);
    EXPECT_EQ(stats.kept, space.size());
    // Indices cover exactly [0, size).
    EXPECT_EQ(*indices.begin(), 0u);
    EXPECT_EQ(*indices.rbegin(), space.size() - 1);
}

TEST(Streaming, EmptyKeptSetHasNoArgmin)
{
    const DesignEvaluator evaluator = makeEvaluator();
    SweepSpace space = table3Space(4800.0, {600.0 * units::GBPS});
    space.l1BytesPerCore = {192.0 * units::KIB};
    space.l2Bytes = {32.0 * units::MIB};
    space.memBandwidths = {2.0 * units::TBPS};
    const StreamStats stats = evaluator.evaluateStream(
        space, [](const EvaluatedDesign &) { return false; });
    EXPECT_EQ(stats.evaluated, space.size());
    EXPECT_EQ(stats.kept, 0u);
    EXPECT_FALSE(stats.bestTtft);
    EXPECT_FALSE(stats.bestTbt);
}

TEST(Filters, RvalueOverloadsMatchLvalue)
{
    const auto designs = syntheticDesigns();

    auto moved = syntheticDesigns();
    const auto rv_reticle = filterReticle(std::move(moved));
    const auto lv_reticle = filterReticle(designs);
    ASSERT_EQ(rv_reticle.size(), lv_reticle.size());
    for (std::size_t i = 0; i < lv_reticle.size(); ++i)
        EXPECT_EQ(rv_reticle[i].config.name, lv_reticle[i].config.name);

    auto moved2 = syntheticDesigns();
    moved2[0].tpp = 1000.0;
    auto lv_in = moved2;
    const auto rv_unreg = filterOct2023Unregulated(std::move(moved2));
    const auto lv_unreg = filterOct2023Unregulated(lv_in);
    ASSERT_EQ(rv_unreg.size(), lv_unreg.size());
    for (std::size_t i = 0; i < lv_unreg.size(); ++i)
        EXPECT_EQ(rv_unreg[i].config.name, lv_unreg[i].config.name);
}

// ---- axis factorization + feasibleSize --------------------------------------

TEST(SweepSpace, AxesMatchEnumerationOrderAndRawSize)
{
    const SweepSpace space = table3Space(4800.0, {500.0 * units::GBPS,
                                                  700.0 * units::GBPS,
                                                  900.0 * units::GBPS});
    const auto axes = space.axes();
    ASSERT_FALSE(axes.empty());
    // The raw cartesian size is the product of the axis counts.
    std::size_t product = 1;
    std::size_t comm_only = 0;
    for (const SweepAxis &axis : axes) {
        product *= axis.count;
        if (axis.effect == AxisEffect::COMM_ONLY)
            ++comm_only;
    }
    EXPECT_EQ(product, space.size());
    // Exactly one comm-only axis today (deviceBandwidths), and the
    // enumeration invariant keeps it innermost (last).
    EXPECT_EQ(comm_only, 1u);
    EXPECT_STREQ(axes.back().name, "deviceBandwidths");
    EXPECT_EQ(axes.back().effect, AxisEffect::COMM_ONLY);
    EXPECT_EQ(axes.back().count, space.deviceBandwidths.size());
}

TEST(SweepSpace, FeasibleSizeMatchesGenerateUnderSkips)
{
    // A TPP budget small enough that the widest (dim, lanes) combos
    // cannot fit one core: size() keeps counting the raw product while
    // feasibleSize() counts what generate() actually produces.
    SweepSpace space = table3Space(150.0, {600.0 * units::GBPS});
    const auto cfgs = space.generate();
    EXPECT_EQ(space.feasibleSize(), cfgs.size());
    EXPECT_LT(space.feasibleSize(), space.size());
    ASSERT_GT(space.feasibleSize(), 0u) << "space unexpectedly empty";

    // Flat-index addressing must agree with the compacted enumeration:
    // skipped outer combinations shift every later block down.
    const SweepPlan plan(space);
    ASSERT_EQ(plan.pointCount(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_EQ(plan.point(i).name, cfgs[i].name) << i;

    // Fully feasible spaces collapse the distinction.
    const SweepSpace full = table3Space(4800.0, {600.0 * units::GBPS});
    EXPECT_EQ(full.feasibleSize(), full.size());
}

TEST(SweepSpace, FineSpaceIsAdaptiveScale)
{
    // The adaptive engine's target space: >= 10^8 feasible designs,
    // dense inner axes, the comm-only device axis innermost. The
    // memoized feasibleSize() makes this cheap — nothing here may
    // materialize the space.
    const SweepSpace fine = fineSpace();
    EXPECT_GE(fine.feasibleSize(), std::size_t{100'000'000});
    EXPECT_EQ(fine.feasibleSize(), SweepPlan(fine).pointCount());
    const auto axes = fine.axes();
    EXPECT_STREQ(axes.back().name, "deviceBandwidths");
    EXPECT_EQ(axes.back().effect, AxisEffect::COMM_ONLY);
}

TEST(SweepPlan, CommOnlyRunsShareComputeProjection)
{
    // Designs within one commOnlyRunLength() run must differ only in
    // the interconnect realization (and name) — this adjacency is what
    // the sweep-scoped GEMM cache exploits.
    const SweepSpace space = table3Space(4800.0, {500.0 * units::GBPS,
                                                  700.0 * units::GBPS,
                                                  900.0 * units::GBPS});
    const SweepPlan plan(space);
    const std::size_t run = plan.commOnlyRunLength();
    ASSERT_EQ(run, 3u);
    ASSERT_EQ(plan.pointCount() % run, 0u);
    for (std::size_t base = 0; base < plan.pointCount(); base += run) {
        const hw::HardwareConfig first = plan.point(base);
        std::set<int> phys{first.devicePhyCount};
        for (std::size_t j = 1; j < run; ++j) {
            const hw::HardwareConfig cfg = plan.point(base + j);
            EXPECT_EQ(cfg.systolicDimX, first.systolicDimX);
            EXPECT_EQ(cfg.systolicDimY, first.systolicDimY);
            EXPECT_EQ(cfg.lanesPerCore, first.lanesPerCore);
            EXPECT_EQ(cfg.coreCount, first.coreCount);
            EXPECT_EQ(cfg.diesPerPackage, first.diesPerPackage);
            EXPECT_EQ(cfg.l1BytesPerCore, first.l1BytesPerCore);
            EXPECT_EQ(cfg.l2Bytes, first.l2Bytes);
            EXPECT_EQ(cfg.memBandwidth, first.memBandwidth);
            phys.insert(cfg.devicePhyCount);
        }
        // The comm-only axis really varies inside the run.
        EXPECT_EQ(phys.size(), run) << "run at " << base;
    }
}

// ---- sweep-scoped GEMM cache -------------------------------------------------

/** A trimmed TILE_SIM-relevant space: fast, but multi-valued on every
 *  axis class (two comm-only values per compute projection). */
SweepSpace
tinyTileSimSpace()
{
    SweepSpace space = table3Space(4800.0, {400.0 * units::GBPS,
                                            600.0 * units::GBPS});
    space.systolicDims = {16};
    space.lanesPerCore = {2, 4};
    space.l1BytesPerCore.resize(2);
    space.l2Bytes.resize(2);
    space.memBandwidths.resize(2);
    return space;
}

TEST(GemmCacheSweep, CacheOnOffBitIdenticalAcrossEntryPoints)
{
    const core::Workload w = smallWorkload();
    perf::PerfParams on;
    on.gemmMode = perf::GemmMode::TILE_SIM;
    ASSERT_TRUE(on.cacheTileSimGemms); // hoisted cache is the default
    perf::PerfParams off = on;
    off.cacheTileSimGemms = false;
    const DesignEvaluator cached(w.model, w.setting, w.system, on);
    const DesignEvaluator plain(w.model, w.setting, w.system, off);

    const SweepSpace space = tinyTileSimSpace();
    const auto cfgs = space.generate();
    const auto a = cached.evaluateAll(cfgs);
    const auto b = plain.evaluateAll(cfgs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ttftS, b[i].ttftS) << i;
        EXPECT_EQ(a[i].tbtS, b[i].tbtS) << i;
        EXPECT_EQ(a[i].config.name, b[i].config.name) << i;
    }

    const auto c = cached.evaluateAllParallel(cfgs, 4);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ttftS, c[i].ttftS) << i;
        EXPECT_EQ(a[i].tbtS, c[i].tbtS) << i;
    }

    for (unsigned threads : {1u, 4u}) {
        const StreamStats son =
            cached.evaluateStream(space, nullptr, nullptr, threads);
        const StreamStats soff =
            plain.evaluateStream(space, nullptr, nullptr, threads);
        ASSERT_TRUE(son.bestTtft && soff.bestTtft) << threads;
        EXPECT_EQ(son.bestTtft->ttftS, soff.bestTtft->ttftS) << threads;
        EXPECT_EQ(son.bestTbt->tbtS, soff.bestTbt->tbtS) << threads;
        EXPECT_EQ(son.bestTtft->config.name,
                  soff.bestTtft->config.name) << threads;
    }
}

TEST(GemmCacheSweep, CallerInstalledCacheStaysBitIdenticalWhenWarm)
{
    // A session-scoped cache handle (PerfParams::gemmCache) must serve
    // the second sweep from hits without perturbing a single bit.
    const core::Workload w = smallWorkload();
    perf::GemmCache cache;
    perf::PerfParams params;
    params.gemmMode = perf::GemmMode::TILE_SIM;
    params.gemmCache = &cache;
    const DesignEvaluator evaluator(w.model, w.setting, w.system,
                                    params);
    const SweepSpace space = tinyTileSimSpace();
    const auto cfgs = space.generate();
    const auto cold = evaluator.evaluateAll(cfgs);
    const auto warm_stats = cache.stats();
    EXPECT_GT(warm_stats.entries, 0u);
    const auto warm = evaluator.evaluateAllParallel(cfgs, 4);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].ttftS, warm[i].ttftS) << i;
        EXPECT_EQ(cold[i].tbtS, warm[i].tbtS) << i;
    }
    // The warm sweep's GEMMs were all hits: no new entries appeared.
    const auto final_stats = cache.stats();
    EXPECT_EQ(final_stats.entries, warm_stats.entries);
    EXPECT_GT(final_stats.hits, warm_stats.hits);
}

} // anonymous namespace
} // namespace dse
} // namespace acs
