/**
 * @file
 * Unit tests for the historical export-control metrics (CTP and APP,
 * Sec. 6.1).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/presets.hh"
#include "policy/historical.hh"

namespace acs {
namespace policy {
namespace {

// ---- CTP ----------------------------------------------------------------------

TEST(Ctp, SingleResourceFullWordIsUnadjusted)
{
    EXPECT_DOUBLE_EQ(
        compositeTheoreticalPerformance({{1000.0, 64}}), 1000.0);
}

TEST(Ctp, WordLengthScalesLinearlyAbove32Bits)
{
    EXPECT_DOUBLE_EQ(
        compositeTheoreticalPerformance({{1000.0, 32}}), 500.0);
    EXPECT_DOUBLE_EQ(
        compositeTheoreticalPerformance({{1000.0, 128}}), 2000.0);
}

TEST(Ctp, ShortWordsUseOffsetFormula)
{
    // L < 32: factor = 0.3 + L/96.
    EXPECT_NEAR(compositeTheoreticalPerformance({{1000.0, 16}}),
                1000.0 * (0.3 + 16.0 / 96.0), 1e-9);
}

TEST(Ctp, AggregationWeightsSecondaryResources)
{
    // R1' + 0.75 R2', strongest first regardless of input order.
    const double ctp = compositeTheoreticalPerformance(
        {{500.0, 64}, {1000.0, 64}});
    EXPECT_DOUBLE_EQ(ctp, 1000.0 + 0.75 * 500.0);
}

TEST(Ctp, Validation)
{
    EXPECT_THROW(compositeTheoreticalPerformance({}), FatalError);
    EXPECT_THROW(compositeTheoreticalPerformance({{0.0, 64}}),
                 FatalError);
    EXPECT_THROW(compositeTheoreticalPerformance({{100.0, 0}}),
                 FatalError);
}

// ---- APP ----------------------------------------------------------------------

TEST(App, WeightsVectorAndScalarDifferently)
{
    EXPECT_DOUBLE_EQ(adjustedPeakPerformance({{10.0, true}}), 9.0);
    EXPECT_DOUBLE_EQ(adjustedPeakPerformance({{10.0, false}}), 3.0);
    EXPECT_DOUBLE_EQ(
        adjustedPeakPerformance({{10.0, true}, {10.0, false}}), 12.0);
}

TEST(App, Validation)
{
    EXPECT_THROW(adjustedPeakPerformance({}), FatalError);
    EXPECT_THROW(adjustedPeakPerformance({{-1.0, true}}), FatalError);
}

// ---- metricHistory ----------------------------------------------------------------

TEST(MetricHistory, A100ValuesAreConsistent)
{
    const MetricHistory h = metricHistory(hw::modeledA100());
    EXPECT_NEAR(h.tpp, 4990.5, 1.0);
    // CTP dominated by the tensor path: ~312 TOPS at 16 bit ->
    // 312e6 Mops x 16/64 = 78e6 MTOPS, plus the vector contribution.
    EXPECT_GT(h.ctpMtops, 7.5e7);
    EXPECT_LT(h.ctpMtops, 2.5e8);
    // APP: FP64 at half the modeled FP32 vector rate, 0.9 weight.
    const double fp64_tflops =
        hw::modeledA100().peakVectorFlops() / 2.0 / 1e12;
    EXPECT_NEAR(h.appWt, 0.9 * fp64_tflops, 1e-6);
}

TEST(MetricHistory, TppIgnoresVectorOnlyUpgrades)
{
    // A bigger vector engine moves CTP and APP but not TPP — the
    // metric drift the paper discusses.
    hw::HardwareConfig beefy = hw::modeledA100();
    beefy.vectorWidth *= 4;
    const MetricHistory base = metricHistory(hw::modeledA100());
    const MetricHistory up = metricHistory(beefy);
    EXPECT_DOUBLE_EQ(up.tpp, base.tpp);
    EXPECT_GT(up.appWt, base.appWt);
    EXPECT_GT(up.ctpMtops, base.ctpMtops);
}

TEST(MetricHistory, AppIgnoresTensorUpgrades)
{
    hw::HardwareConfig tensor = hw::modeledA100();
    tensor.systolicDimX = 32;
    tensor.systolicDimY = 32;
    const MetricHistory base = metricHistory(hw::modeledA100());
    const MetricHistory up = metricHistory(tensor);
    EXPECT_DOUBLE_EQ(up.appWt, base.appWt);
    EXPECT_GT(up.tpp, base.tpp);
}

TEST(MetricHistory, ChipletAggregation)
{
    hw::HardwareConfig mcm = hw::modeledA100();
    mcm.diesPerPackage = 2;
    const MetricHistory one = metricHistory(hw::modeledA100());
    const MetricHistory two = metricHistory(mcm);
    EXPECT_NEAR(two.tpp, 2.0 * one.tpp, 1e-6);
    EXPECT_NEAR(two.appWt, 2.0 * one.appWt, 1e-9);
}

} // anonymous namespace
} // namespace policy
} // namespace acs
