/**
 * @file
 * Unit tests for the serving-capacity module.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "hw/presets.hh"
#include "model/transformer.hh"
#include "serve/capacity.hh"

namespace acs {
namespace serve {
namespace {

perf::InferenceResult
a100Result()
{
    const perf::InferenceSimulator sim(hw::modeledA100());
    return sim.run(model::gpt3_175b(), model::InferenceSetting{},
                   perf::SystemConfig{4});
}

TEST(Slo, Validation)
{
    Slo slo;
    slo.ttftMaxS = 0.0;
    EXPECT_THROW(slo.validate(), FatalError);
    slo = Slo{};
    slo.tbtMaxS = -1.0;
    EXPECT_THROW(slo.validate(), FatalError);
    EXPECT_NO_THROW(Slo{}.validate());
}

TEST(Serving, EstimateReflectsFullModelLatencies)
{
    const auto result = a100Result();
    const auto e = estimateServing(result, 4, Slo{60.0, 0.300});
    EXPECT_DOUBLE_EQ(e.ttftS, result.ttftFullModelS);
    EXPECT_DOUBLE_EQ(e.tbtS, result.tbtFullModelS);
    EXPECT_NEAR(e.tokensPerSecondPerDevice,
                result.throughputTokensPerS() / 4.0, 1e-9);
}

TEST(Serving, SloBoundsAreChecked)
{
    const auto result = a100Result();
    // GPT-3 full-model TBT ~135 ms: a 300 ms SLO passes, 50 ms fails.
    EXPECT_TRUE(estimateServing(result, 4, Slo{60.0, 0.300}).meetsSlo());
    const auto strict = estimateServing(result, 4, Slo{60.0, 0.050});
    EXPECT_TRUE(strict.meetsTtftSlo);
    EXPECT_FALSE(strict.meetsTbtSlo);
    EXPECT_FALSE(strict.meetsSlo());
}

TEST(Serving, FleetGrowsInTpUnits)
{
    const auto result = a100Result();
    const auto e = estimateServing(result, 4, Slo{60.0, 0.300});
    const FleetPlan plan = planFleet(e, 4, 1e6);
    EXPECT_GT(plan.devices, 0);
    EXPECT_EQ(plan.devices % 4, 0);
    EXPECT_GT(plan.utilization, 0.0);
    EXPECT_LE(plan.utilization, 1.0);
    EXPECT_TRUE(plan.feasible);
}

TEST(Serving, HigherDemandNeedsMoreDevices)
{
    const auto result = a100Result();
    const auto e = estimateServing(result, 4, Slo{60.0, 0.300});
    EXPECT_LE(planFleet(e, 4, 1e5).devices,
              planFleet(e, 4, 1e6).devices);
}

TEST(Serving, SlowerHardwareNeedsMoreDevices)
{
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = 0.8e12;
    const perf::InferenceSimulator sim(slow);
    const auto slow_result =
        sim.run(model::gpt3_175b(), model::InferenceSetting{},
                perf::SystemConfig{4});
    const Slo slo{60.0, 0.500};
    const auto fast_e = estimateServing(a100Result(), 4, slo);
    const auto slow_e = estimateServing(slow_result, 4, slo);
    EXPECT_GT(planFleet(slow_e, 4, 1e6).devices,
              planFleet(fast_e, 4, 1e6).devices);
}

TEST(Serving, Validation)
{
    const auto e = estimateServing(a100Result(), 4, Slo{});
    EXPECT_THROW(planFleet(e, 0, 1e6), FatalError);
    EXPECT_THROW(planFleet(e, 4, 0.0), FatalError);
    EXPECT_THROW(estimateServing(a100Result(), 0, Slo{}), FatalError);
    perf::InferenceResult empty;
    EXPECT_THROW(estimateServing(empty, 4, Slo{}), FatalError);
}

} // anonymous namespace
} // namespace serve
} // namespace acs
