/**
 * @file
 * Property suite for the closed-form wave-aggregation GEMM engine.
 *
 * The AGGREGATED tile-sim engine derives each wave from O(1) shape
 * class counts; LEGACY_WALK is the original per-tile walk. The two
 * must be bit-identical — not merely close — on every field of the
 * trace, because TILE_SIM sweep results are compared across runs and
 * modes byte-for-byte. This suite drives both engines over randomized
 * skinny / square / remainder-heavy shapes and a spread of device
 * geometries, plus a direct check that the closed-form tile-N shrink
 * in chooseTiles reproduces the historical halving cascade.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <random>
#include <string>
#include <vector>

#include "common/units.hh"
#include "hw/presets.hh"
#include "perf/matmul_model.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {
namespace {

model::Op
weightGemm(long m, long n, long k, long batch = 1)
{
    model::Op op;
    op.name = "gemm";
    op.kind = model::OpKind::MATMUL;
    op.mm = {m, n, k, batch, true};
    op.flops = 2.0 * static_cast<double>(batch) * m * n * k;
    op.weightBytes = 2.0 * static_cast<double>(batch) * k * n;
    op.inputBytes = 2.0 * static_cast<double>(batch) * m * k;
    op.outputBytes = 2.0 * static_cast<double>(batch) * m * n;
    return op;
}

/** Device geometries that exercise different tile sizes and wave
 * shapes: the calibrated A100, its export variant, a small-L1 design
 * (tiny tiles, many remainder classes) and a few-arrays design (many
 * waves, frequent partial final wave). */
std::vector<hw::HardwareConfig>
propertyConfigs()
{
    std::vector<hw::HardwareConfig> cfgs;
    cfgs.push_back(hw::modeledA100());
    cfgs.push_back(hw::modeledA800());

    hw::HardwareConfig small_l1 = hw::modeledA100();
    small_l1.name = "small-l1";
    small_l1.l1BytesPerCore = 32.0 * units::KIB;
    small_l1.validate();
    cfgs.push_back(small_l1);

    hw::HardwareConfig few_arrays = hw::modeledA100();
    few_arrays.name = "few-arrays";
    few_arrays.coreCount = 9;
    few_arrays.lanesPerCore = 2;
    few_arrays.validate();
    cfgs.push_back(few_arrays);
    return cfgs;
}

void
expectTracesBitIdentical(const GemmTrace &fast, const GemmTrace &ref,
                         const std::string &label)
{
    EXPECT_EQ(fast.tileM, ref.tileM) << label;
    EXPECT_EQ(fast.tileN, ref.tileN) << label;
    EXPECT_EQ(fast.totalTiles(), ref.totalTiles()) << label;
    EXPECT_EQ(fast.totalS, ref.totalS) << label;
    ASSERT_EQ(fast.waves.size(), ref.waves.size()) << label;
    for (std::size_t w = 0; w < ref.waves.size(); ++w) {
        const WaveRecord &a = fast.waves[w];
        const WaveRecord &b = ref.waves[w];
        EXPECT_EQ(a.waveIndex, b.waveIndex) << label << " wave " << w;
        EXPECT_EQ(a.tilesInWave, b.tilesInWave) << label << " wave " << w;
        // Bit-exact doubles: both engines must execute the same
        // arithmetic in the same order.
        EXPECT_EQ(a.computeS, b.computeS) << label << " wave " << w;
        EXPECT_EQ(a.globalBufS, b.globalBufS) << label << " wave " << w;
        EXPECT_EQ(a.hbmS, b.hbmS) << label << " wave " << w;
        EXPECT_EQ(a.startS, b.startS) << label << " wave " << w;
        EXPECT_EQ(a.endS, b.endS) << label << " wave " << w;
    }
}

void
runEquivalence(const hw::HardwareConfig &cfg, const model::Op &op,
               const std::string &label)
{
    PerfParams fast_params;
    fast_params.tileSimEngine = TileSimEngine::AGGREGATED;
    PerfParams ref_params;
    ref_params.tileSimEngine = TileSimEngine::LEGACY_WALK;

    const GemmTrace fast = simulateGemm(cfg, op, fast_params);
    const GemmTrace ref = simulateGemm(cfg, op, ref_params);
    expectTracesBitIdentical(fast, ref, label);

    // The summary path must see the exact doubles of the trace path.
    const GemmSummary s = simulateGemmSummary(cfg, op, fast_params);
    EXPECT_EQ(s.tileM, fast.tileM) << label;
    EXPECT_EQ(s.tileN, fast.tileN) << label;
    EXPECT_EQ(s.waves, static_cast<long>(fast.waves.size())) << label;
    EXPECT_EQ(s.totalTiles, fast.totalTiles()) << label;
    EXPECT_EQ(s.totalS, fast.totalS) << label;
}

TEST(GemmProperty, RandomShapesMatchLegacyWalkBitwise)
{
    // Deterministic seed: failures must reproduce.
    std::mt19937 rng(20250806);
    const auto cfgs = propertyConfigs();

    std::uniform_int_distribution<long> skinny_m(1, 64);
    std::uniform_int_distribution<long> wide_n(1024, 16384);
    std::uniform_int_distribution<long> square(64, 3000);
    std::uniform_int_distribution<long> heavy(65, 2048);
    std::uniform_int_distribution<long> kdim(64, 8192);
    std::uniform_int_distribution<long> batch(1, 24);
    std::uniform_int_distribution<int> family(0, 2);

    for (int trial = 0; trial < 60; ++trial) {
        long m = 0;
        long n = 0;
        switch (family(rng)) {
        case 0: // skinny decode-like: tall arrays of column tiles
            m = skinny_m(rng);
            n = wide_n(rng);
            break;
        case 1: // square-ish prefill block
            m = square(rng);
            n = square(rng);
            break;
        default: // remainder-heavy: odd extents off tile multiples
            m = heavy(rng) | 1;
            n = heavy(rng) | 1;
            break;
        }
        const long k = kdim(rng);
        const long b = batch(rng);
        const auto &cfg = cfgs[trial % cfgs.size()];
        runEquivalence(cfg, weightGemm(m, n, k, b),
                       cfg.name + " m=" + std::to_string(m) +
                           " n=" + std::to_string(n) +
                           " k=" + std::to_string(k) +
                           " b=" + std::to_string(b));
    }
}

TEST(GemmProperty, EdgeShapesMatchLegacyWalkBitwise)
{
    const auto cfgs = propertyConfigs();
    const struct
    {
        long m, n, k, batch;
    } shapes[] = {
        {1, 1, 64, 1},          // single tiny tile
        {1, 65536, 4096, 1},    // one row of column tiles
        {65536, 1, 4096, 1},    // one column of row tiles
        {31, 12288, 12288, 1},  // decode GEMV, remainder m
        {209, 353, 512, 20},    // remainders on both axes, batched
        {4096, 4096, 4096, 1},  // exact tile multiples
        {100, 100, 512, 7},     // both-axis remainders, odd batch
    };
    for (const auto &s : shapes) {
        for (const auto &cfg : cfgs) {
            runEquivalence(cfg, weightGemm(s.m, s.n, s.k, s.batch),
                           cfg.name + " m=" + std::to_string(s.m) +
                               " n=" + std::to_string(s.n) +
                               " b=" + std::to_string(s.batch));
        }
    }
}

// ---- chooseTiles closed form ------------------------------------------------

/** The historical tile-N shrink: halve (clamping at dim_y) until the
 * tile count covers every systolic array. */
long
referenceHalvingCascade(long m, long n, long batch, long tile_m,
                        long tile_n, long dim_y, long arrays)
{
    const auto tiles = [&]() {
        return batch * ((m + tile_m - 1) / tile_m) *
               ((n + tile_n - 1) / tile_n);
    };
    while (tiles() < arrays && tile_n > dim_y)
        tile_n = std::max(tile_n / 2, dim_y);
    return tile_n;
}

/** The closed form now in chooseTiles (matmul_model.cc), restated. */
long
closedFormShrink(long m, long n, long batch, long tile_m, long tile_n,
                 long dim_y, long arrays)
{
    if (tile_n <= dim_y)
        return tile_n;
    const long row_tiles = batch * ((m + tile_m - 1) / tile_m);
    if (row_tiles * ((n + tile_n - 1) / tile_n) >= arrays)
        return tile_n;
    const long need_cols = (arrays + row_tiles - 1) / row_tiles;
    const long t_max = (n + need_cols - 2) / (need_cols - 1) - 1;
    const long target = std::max(t_max, dim_y);
    if (tile_n > target) {
        const int shift = std::bit_width(
            static_cast<unsigned long long>(tile_n / (target + 1)));
        tile_n >>= shift;
    }
    return std::max(tile_n, dim_y);
}

TEST(GemmProperty, ClosedFormTileShrinkMatchesHalvingCascade)
{
    std::mt19937 rng(7);
    std::uniform_int_distribution<long> mdist(1, 70000);
    std::uniform_int_distribution<long> ndist(1, 70000);
    std::uniform_int_distribution<long> bdist(1, 32);
    std::uniform_int_distribution<long> tdist(1, 1024);
    std::uniform_int_distribution<int> ydist(2, 7); // dim_y = 4..128
    std::uniform_int_distribution<long> adist(1, 2048);

    for (int trial = 0; trial < 5000; ++trial) {
        const long m = mdist(rng);
        const long n = ndist(rng);
        const long b = bdist(rng);
        const long dim_y = 1L << ydist(rng);
        // chooseTiles only ever shrinks a tile_n that starts >= dim_y
        // (the L1 budget is floored at the array dims).
        const long tile_m = std::max(tdist(rng), 1L);
        const long tile_n = std::max(tdist(rng), dim_y);
        const long arrays = adist(rng);
        EXPECT_EQ(closedFormShrink(m, n, b, tile_m, tile_n, dim_y,
                                   arrays),
                  referenceHalvingCascade(m, n, b, tile_m, tile_n,
                                          dim_y, arrays))
            << "m=" << m << " n=" << n << " b=" << b
            << " tileM=" << tile_m << " tileN=" << tile_n
            << " dimY=" << dim_y << " arrays=" << arrays;
    }
}

TEST(GemmProperty, SimulatorTileChoiceAgreesWithAnalyticModel)
{
    // End-to-end: the closed-form shrink inside chooseTiles feeds both
    // the analytic model and the simulator identically.
    std::mt19937 rng(11);
    std::uniform_int_distribution<long> mdist(1, 8192);
    std::uniform_int_distribution<long> ndist(1, 16384);
    for (const auto &cfg : propertyConfigs()) {
        const MatmulModel model(cfg, PerfParams{});
        for (int trial = 0; trial < 10; ++trial) {
            const auto op =
                weightGemm(mdist(rng), ndist(rng), 4096);
            const MatmulTiming t = model.time(op);
            const GemmSummary s = simulateGemmSummary(cfg, op);
            EXPECT_EQ(s.tileM, t.tileM) << cfg.name;
            EXPECT_EQ(s.tileN, t.tileN) << cfg.name;
        }
    }
}

} // anonymous namespace
} // namespace perf
} // namespace acs
