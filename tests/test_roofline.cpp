/**
 * @file
 * Unit tests for the roofline analysis and the parallel sweep
 * evaluator.
 */

#include <gtest/gtest.h>

#include "core/study.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "hw/presets.hh"
#include "perf/roofline.hh"

namespace acs {
namespace {

// ---- roofline -------------------------------------------------------------

class RooflineFixture : public ::testing::Test
{
  protected:
    hw::HardwareConfig cfg_ = hw::modeledA100();
    model::InferenceSetting setting_;
};

TEST_F(RooflineFixture, RidgeIsPeakOverBandwidth)
{
    const auto graph =
        model::buildPrefillGraph(model::gpt3_175b(), setting_, 4);
    const auto a = perf::analyzeRoofline(cfg_, graph, 4);
    EXPECT_DOUBLE_EQ(a.ridgeIntensity, a.peakFlops / a.memBandwidth);
    EXPECT_GT(a.ridgeIntensity, 50.0);  // A100-class: ~180 FLOPs/B
    EXPECT_LT(a.ridgeIntensity, 500.0);
}

TEST_F(RooflineFixture, PrefillGemmsAreComputeBound)
{
    const auto graph =
        model::buildPrefillGraph(model::gpt3_175b(), setting_, 4);
    const auto a = perf::analyzeRoofline(cfg_, graph, 4);
    for (const auto &p : a.points) {
        if (p.name == "qkv-proj" || p.name == "ffn-up" ||
            p.name == "ffn-down") {
            EXPECT_TRUE(p.computeBound) << p.name;
        }
        if (p.name == "softmax" || p.name == "pre-norm") {
            EXPECT_FALSE(p.computeBound) << p.name;
        }
    }
}

TEST_F(RooflineFixture, DecodeGemmsAreBandwidthBound)
{
    const auto graph =
        model::buildDecodeGraph(model::gpt3_175b(), setting_, 4);
    const auto a = perf::analyzeRoofline(cfg_, graph, 4);
    for (const auto &p : a.points) {
        if (p.name == "qkv-proj" || p.name == "ffn-up" ||
            p.name == "ffn-down") {
            EXPECT_FALSE(p.computeBound) << p.name;
        }
    }
}

TEST_F(RooflineFixture, AchievedNeverExceedsCeilingMuch)
{
    // The model must respect the roofline up to its efficiency and
    // overhead constants (allow modest slack).
    for (const auto &graph :
         {model::buildPrefillGraph(model::gpt3_175b(), setting_, 4),
          model::buildDecodeGraph(model::gpt3_175b(), setting_, 4)}) {
        const auto a = perf::analyzeRoofline(cfg_, graph, 4);
        for (const auto &p : a.points) {
            EXPECT_LE(p.achievedFlops, a.peakFlops * 1.01) << p.name;
            EXPECT_LE(p.achievedFlops, p.rooflineFlops * 1.3)
                << p.name;
        }
    }
}

TEST_F(RooflineFixture, CollectivesAreSkipped)
{
    const auto graph =
        model::buildPrefillGraph(model::gpt3_175b(), setting_, 4);
    const auto a = perf::analyzeRoofline(cfg_, graph, 4);
    for (const auto &p : a.points)
        EXPECT_EQ(p.name.find("allreduce"), std::string::npos);
    // Two allreduces skipped from the 14-op graph.
    EXPECT_EQ(a.points.size(), graph.ops.size() - 2);
}

// ---- parallel evaluation ------------------------------------------------------

TEST(ParallelEvaluate, MatchesSerialResults)
{
    const core::Workload w = core::llamaWorkload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    const auto cfgs =
        dse::table3Space(2400.0, {600.0 * 1e9}).generate();
    ASSERT_GE(cfgs.size(), 100u);

    const auto serial = evaluator.evaluateAll(cfgs);
    const auto parallel = evaluator.evaluateAllParallel(cfgs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].config.name, parallel[i].config.name);
        EXPECT_DOUBLE_EQ(serial[i].ttftS, parallel[i].ttftS);
        EXPECT_DOUBLE_EQ(serial[i].tbtS, parallel[i].tbtS);
        EXPECT_DOUBLE_EQ(serial[i].dieAreaMm2, parallel[i].dieAreaMm2);
    }
}

TEST(ParallelEvaluate, HandlesDegenerateInputs)
{
    const core::Workload w = core::llamaWorkload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    EXPECT_TRUE(evaluator.evaluateAllParallel({}, 8).empty());
    const auto one =
        evaluator.evaluateAllParallel({hw::modeledA100()}, 8);
    EXPECT_EQ(one.size(), 1u);
}

TEST(ParallelEvaluate, DefaultThreadCountWorks)
{
    const core::Workload w = core::llamaWorkload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    std::vector<hw::HardwareConfig> cfgs(8, hw::modeledA100());
    const auto out = evaluator.evaluateAllParallel(cfgs);
    EXPECT_EQ(out.size(), 8u);
    for (const auto &d : out)
        EXPECT_DOUBLE_EQ(d.ttftS, out[0].ttftS);
}

} // anonymous namespace
} // namespace acs
