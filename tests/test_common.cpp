/**
 * @file
 * Unit tests for acs_common: logging, statistics, tables, scatter
 * plots, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/flat_memo.hh"
#include "common/logging.hh"
#include "common/ring.hh"
#include "common/rng.hh"
#include "common/scatter.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace acs {
namespace {

// ---- logging -----------------------------------------------------------

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalMessageIsPreserved)
{
    try {
        fatal("the message");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("the message"),
                  std::string::npos);
    }
}

TEST(Logging, FatalIfOnlyThrowsWhenConditionHolds)
{
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "boom"), FatalError);
}

TEST(Logging, PanicIfOnlyThrowsWhenConditionHolds)
{
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "boom"), PanicError);
}

TEST(Logging, FatalErrorIsNotPanicError)
{
    EXPECT_THROW(fatal("user error"), std::runtime_error);
    EXPECT_THROW(panic("bug"), std::logic_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("a warning"));
    setVerbose(false);
    EXPECT_NO_THROW(inform("suppressed"));
    setVerbose(true);
}

// ---- units -------------------------------------------------------------

TEST(Units, ByteMultipliers)
{
    EXPECT_DOUBLE_EQ(units::KIB, 1024.0);
    EXPECT_DOUBLE_EQ(units::MIB, 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(units::GB, 1e9);
    EXPECT_DOUBLE_EQ(units::TBPS, 1e12);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(units::toMs(0.25), 250.0);
    EXPECT_DOUBLE_EQ(units::toGBps(600e9), 600.0);
}

// ---- stats -------------------------------------------------------------

TEST(Stats, SummarizeSingleValue)
{
    const SummaryStats s = summarize({42.0});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min, 42.0);
    EXPECT_DOUBLE_EQ(s.max, 42.0);
    EXPECT_DOUBLE_EQ(s.mean, 42.0);
    EXPECT_DOUBLE_EQ(s.median, 42.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(Stats, SummarizeKnownSample)
{
    const SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.p25, 2.0);
    EXPECT_DOUBLE_EQ(s.p75, 4.0);
    EXPECT_DOUBLE_EQ(s.range(), 4.0);
    EXPECT_DOUBLE_EQ(s.iqr(), 2.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(Stats, SummarizeIsOrderInvariant)
{
    const SummaryStats a = summarize({3.0, 1.0, 2.0});
    const SummaryStats b = summarize({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(a.median, b.median);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.min, b.min);
}

TEST(Stats, SummarizeEmptyIsFatal)
{
    EXPECT_THROW(summarize({}), FatalError);
}

TEST(Stats, MedianOfEvenSampleInterpolates)
{
    EXPECT_DOUBLE_EQ(summarize({1.0, 2.0, 3.0, 4.0}).median, 2.5);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> v{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
}

TEST(Stats, PercentileInterpolatesLinearly)
{
    EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Stats, PercentileValidatesRank)
{
    EXPECT_THROW(percentile({1.0}, -1.0), FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), FatalError);
    EXPECT_THROW(percentile({}, 50.0), FatalError);
}

TEST(Stats, NarrowingFactorBasic)
{
    const SummaryStats wide = summarize({0.0, 10.0});
    const SummaryStats narrow = summarize({4.0, 6.0});
    EXPECT_DOUBLE_EQ(narrowingFactor(wide, narrow), 5.0);
}

TEST(Stats, NarrowingFactorZeroRangeIsInfinite)
{
    const SummaryStats wide = summarize({0.0, 10.0});
    const SummaryStats point = summarize({5.0});
    EXPECT_TRUE(std::isinf(narrowingFactor(wide, point)));
}

TEST(Stats, NarrowingFactorBothZeroIsOne)
{
    const SummaryStats a = summarize({5.0});
    EXPECT_DOUBLE_EQ(narrowingFactor(a, a), 1.0);
}

/** Property sweep: percentiles are monotone in the rank. */
class PercentileMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(PercentileMonotone, NonDecreasingInRank)
{
    const std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
    const double q = GetParam();
    EXPECT_LE(percentile(v, q), percentile(v, std::min(100.0, q + 10.0)));
}

INSTANTIATE_TEST_SUITE_P(Ranks, PercentileMonotone,
                         ::testing::Values(0.0, 10.0, 25.0, 40.0, 50.0,
                                           65.0, 80.0, 90.0));

// ---- table -------------------------------------------------------------

TEST(Table, RequiresColumns)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, RowColumnMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CountsRows)
{
    Table t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"x"});
    t.addRow({"y"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PrintContainsHeadersAndCells)
{
    Table t({"metric", "value"});
    t.addRow({"ttft", "275"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("metric"), std::string::npos);
    EXPECT_NE(oss.str().find("275"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"name"});
    t.addRow({"a,b"});
    t.addRow({"say \"hi\""});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_NE(oss.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(oss.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmtPercent(0.271, 1), "27.1%");
    EXPECT_EQ(fmtPercent(-0.04, 1), "-4.0%");
}

// ---- scatter -----------------------------------------------------------

TEST(Scatter, ValidatesGridSize)
{
    EXPECT_THROW(ScatterPlot("t", "x", "y", 4, 24), FatalError);
    EXPECT_THROW(ScatterPlot("t", "x", "y", 72, 2), FatalError);
}

TEST(Scatter, MismatchedSeriesIsFatal)
{
    ScatterPlot p("t", "x", "y");
    ScatterSeries s{"s", '*', {1.0, 2.0}, {1.0}};
    EXPECT_THROW(p.addSeries(s), FatalError);
}

TEST(Scatter, EmptyPlotWarnsWithoutOutputGrid)
{
    ScatterPlot p("empty", "x", "y");
    std::ostringstream oss;
    EXPECT_NO_THROW(p.print(oss));
    EXPECT_EQ(oss.str().find("legend"), std::string::npos);
}

TEST(Scatter, PrintsLegendAndTitle)
{
    ScatterPlot p("my plot", "x", "y");
    p.addSeries({"dots", 'o', {1.0, 2.0, 3.0}, {1.0, 4.0, 9.0}});
    std::ostringstream oss;
    p.print(oss);
    EXPECT_NE(oss.str().find("my plot"), std::string::npos);
    EXPECT_NE(oss.str().find("[o] dots (3)"), std::string::npos);
    EXPECT_NE(oss.str().find('o'), std::string::npos);
}

TEST(Scatter, RespectsExplicitLimitsByClipping)
{
    ScatterPlot p("clip", "x", "y");
    p.addSeries({"s", '#', {1.0, 100.0}, {1.0, 100.0}});
    p.setLimits({0.0, 10.0, 0.0, 10.0});
    std::ostringstream oss;
    EXPECT_NO_THROW(p.print(oss));
}

TEST(Scatter, IdenticalPointsDoNotCrash)
{
    ScatterPlot p("degenerate", "x", "y");
    p.addSeries({"s", '#', {5.0, 5.0}, {5.0, 5.0}});
    std::ostringstream oss;
    EXPECT_NO_THROW(p.print(oss));
}

// ---- rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

// ---- ring queue --------------------------------------------------------

TEST(RingQueue, FifoAcrossGrowthAndWraparound)
{
    common::RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    // Interleave pushes and pops so the live range wraps the ring
    // repeatedly while the buffer grows through several capacities.
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 7; ++i)
            q.push_back(next_in++);
        for (int i = 0; i < 5; ++i) {
            EXPECT_EQ(q.front(), next_out);
            q.pop_front();
            ++next_out;
        }
    }
    EXPECT_EQ(q.size(),
              static_cast<std::size_t>(next_in - next_out));
    while (!q.empty()) {
        EXPECT_EQ(q.front(), next_out++);
        q.pop_front();
    }
    EXPECT_EQ(next_in, next_out);
}

TEST(RingQueue, ReservePreservesContents)
{
    common::RingQueue<int> q;
    for (int i = 0; i < 10; ++i)
        q.push_back(i);
    for (int i = 0; i < 4; ++i)
        q.pop_front(); // head off zero so reserve re-seats a wrap
    q.reserve(1024);
    EXPECT_EQ(q.size(), 6u);
    for (int i = 4; i < 10; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
}

TEST(RingQueue, EmptyAccessPanics)
{
    common::RingQueue<int> q;
    EXPECT_THROW(q.front(), PanicError);
    EXPECT_THROW(q.pop_front(), PanicError);
    q.push_back(1);
    q.pop_front();
    EXPECT_THROW(q.pop_front(), PanicError);
}

// ---- atomic flat memo ---------------------------------------------------

TEST(FlatMemo, InsertAndFindRoundTripsExactBits)
{
    common::AtomicFlatMemo memo(64);
    EXPECT_EQ(memo.capacity(), 64u);
    double out = 0.0;
    EXPECT_FALSE(memo.find(42, &out));
    const double value = 0.12345678901234567;
    EXPECT_TRUE(memo.insert(42, value));
    ASSERT_TRUE(memo.find(42, &out));
    EXPECT_EQ(out, value); // exact bits, not approximate
    EXPECT_EQ(memo.entries(), 1u);

    // Idempotent re-store of identical bits (the racing-compute
    // contract) neither grows the table nor changes the value.
    EXPECT_TRUE(memo.insert(42, value));
    EXPECT_EQ(memo.entries(), 1u);
    ASSERT_TRUE(memo.find(42, &out));
    EXPECT_EQ(out, value);
}

TEST(FlatMemo, CapacityRoundsUpToPowerOfTwo)
{
    common::AtomicFlatMemo memo(100);
    EXPECT_EQ(memo.capacity(), 128u);
    common::AtomicFlatMemo tiny(1);
    EXPECT_EQ(tiny.capacity(), 64u);
}

TEST(FlatMemo, OverflowDropsInsertAndCounts)
{
    common::AtomicFlatMemo memo(64);
    for (std::uint64_t k = 1; k <= 64; ++k)
        EXPECT_TRUE(memo.insert(k, static_cast<double>(k)));
    EXPECT_EQ(memo.entries(), 64u);
    EXPECT_EQ(memo.overflows(), 0u);

    // Table full: the 65th key is dropped and tallied, and every
    // existing entry still reads back its exact value.
    EXPECT_FALSE(memo.insert(65, 65.0));
    EXPECT_EQ(memo.overflows(), 1u);
    double out = 0.0;
    EXPECT_FALSE(memo.find(65, &out));
    for (std::uint64_t k = 1; k <= 64; ++k) {
        ASSERT_TRUE(memo.find(k, &out));
        EXPECT_EQ(out, static_cast<double>(k));
    }
}

TEST(FlatMemo, ReservedKeyZeroPanics)
{
    common::AtomicFlatMemo memo(64);
    EXPECT_THROW(memo.insert(0, 1.0), PanicError);
}

} // anonymous namespace
} // namespace acs
