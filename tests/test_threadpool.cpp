/**
 * @file
 * Unit tests for common::ThreadPool: batch completion, work
 * distribution, reuse, nesting, and exception safety.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

namespace acs {
namespace common {
namespace {

TEST(ThreadPool, EmptyBatchIsANoOp)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    constexpr std::size_t N = 10000;
    std::vector<std::atomic<int>> hits(N);
    pool.parallelFor(N, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < N; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, MoreTasksThanWorkers)
{
    // 2 workers + caller, 97 indices (not a multiple of any chunk).
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    pool.parallelFor(97, [&](std::size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 97L * 96L / 2L);
}

TEST(ThreadPool, FewerTasksThanWorkers)
{
    ThreadPool pool(8);
    std::atomic<int> calls{0};
    pool.parallelFor(3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> calls{0};
        pool.parallelFor(64, [&](std::size_t) { ++calls; }, 4);
        ASSERT_EQ(calls.load(), 64) << "round " << round;
    }
}

TEST(ThreadPool, SerialFastPathPreservesOrder)
{
    // chunk >= count forces the serial fast path (what a zero-worker
    // pool on a 1-core host always takes): plain loop order, no
    // synchronization.
    ThreadPool pool(2);
    std::vector<std::size_t> order;
    pool.parallelFor(
        8, [&](std::size_t i) { order.push_back(i); }, 8);
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  },
                                  1),
                 std::runtime_error);
    // Pool must remain usable after a failed batch.
    std::atomic<int> calls{0};
    pool.parallelFor(10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, NestedExceptionCapturedAndRethrownAtNestedCaller)
{
    ThreadPool pool(2);
    // An exception inside a *nested* batch must surface at the nested
    // parallelFor call (which runs inline on the submitting lane), be
    // catchable there, and — when the outer task lets it escape —
    // propagate out of the outer batch without wedging the pool.
    std::atomic<int> nested_caught{0};
    pool.parallelFor(4, [&](std::size_t) {
        try {
            pool.parallelFor(3, [](std::size_t j) {
                if (j == 1)
                    throw std::runtime_error("nested");
            });
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "nested");
            ++nested_caught;
        }
    });
    EXPECT_EQ(nested_caught.load(), 4);

    // Uncaught in the outer task: the outer batch rethrows it.
    EXPECT_THROW(pool.parallelFor(2,
                                  [&](std::size_t) {
                                      pool.parallelFor(
                                          2, [](std::size_t) {
                                              throw std::runtime_error(
                                                  "escape");
                                          });
                                  }),
                 std::runtime_error);

    // Pool still healthy after both failure shapes.
    std::atomic<int> calls{0};
    pool.parallelFor(8, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallelFor(4, [&](std::size_t) {
        // Nested submissions must not deadlock on the pool; they run
        // inline on the submitting lane.
        pool.parallelFor(5, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 4 * 5);
}

TEST(ThreadPool, SharedPoolIsSingleton)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.concurrency(), 1u);
    std::atomic<int> calls{0};
    a.parallelFor(16, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, NullFunctionIsFatal)
{
    ThreadPool pool(1);
    EXPECT_ANY_THROW(
        pool.parallelFor(4, std::function<void(std::size_t)>{}));
}

} // anonymous namespace
} // namespace common
} // namespace acs
