/**
 * @file
 * Tests for the policy co-evolution subsystem: the parameterized rule
 * family (bit-exact against the canonical classifiers over the whole
 * device catalogue), input validation, the shared escape-space
 * enumerations, and the arms-race engine's structural contracts —
 * monotone trajectories, thread-count-independent fingerprints,
 * re-run reproducibility, and AdaptiveSearch (not exhaustive sweep)
 * as the designer's inner loop.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "coevo/arms_race.hh"
#include "coevo/escape.hh"
#include "core/acs.hh"

using namespace acs;

namespace {

/** The segments the Oct-2023 rule distinguishes. */
const policy::MarketSegment kSegments[] = {
    policy::MarketSegment::DATA_CENTER,
    policy::MarketSegment::CONSUMER,
    policy::MarketSegment::WORKSTATION,
};

} // namespace

// ---- ParamRule bit-exactness over the device database ----------------------

TEST(ParamRule, Oct2022BitExactOnEntireDatabase)
{
    const devices::Database db;
    const policy::ParamRule rule = policy::ParamRule::oct2022();
    rule.validate();
    ASSERT_GT(db.size(), 0u);
    for (const auto &rec : db.all()) {
        const policy::DeviceSpec spec = rec.toSpec();
        EXPECT_EQ(rule.classify(spec),
                  policy::Oct2022Rule::classify(spec))
            << rec.name;
    }
}

TEST(ParamRule, Oct2023BitExactOnEntireDatabase)
{
    const devices::Database db;
    const policy::ParamRule rule = policy::ParamRule::oct2023();
    rule.validate();
    for (const auto &rec : db.all()) {
        const policy::DeviceSpec spec = rec.toSpec();
        EXPECT_EQ(rule.classify(spec),
                  policy::Oct2023Rule::classify(spec))
            << rec.name;
        // The generalization must agree under *every* claimed segment,
        // not just the marketed one — the arms-race designer exploits
        // exactly this reclassification channel.
        for (const policy::MarketSegment seg : kSegments) {
            EXPECT_EQ(rule.classifyAs(spec, seg),
                      policy::Oct2023Rule::classifyAs(spec, seg))
                << rec.name << " as " << toString(seg);
        }
    }
}

TEST(ParamRule, CombinedIsUnionOfBothGenerations)
{
    const devices::Database db;
    const policy::ParamRule combined = policy::ParamRule::combined();
    for (const auto &rec : db.all()) {
        const policy::DeviceSpec spec = rec.toSpec();
        const bool burdened =
            policy::isRegulated(combined.classify(spec));
        const bool either =
            policy::isRegulated(policy::Oct2022Rule::classify(spec)) ||
            policy::isRegulated(policy::Oct2023Rule::classify(spec));
        EXPECT_EQ(burdened, either) << rec.name;
    }
}

// ---- input validation ------------------------------------------------------

TEST(ParamRule, ValidationNamesTheOffendingValue)
{
    policy::ParamRule nan_rule = policy::ParamRule::oct2023();
    nan_rule.tppMid = NAN;
    try {
        nan_rule.validate();
        FAIL() << "NaN threshold accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("tppMid is NaN"),
                  std::string::npos)
            << e.what();
    }

    policy::ParamRule neg_rule = policy::ParamRule::oct2023();
    neg_rule.pdLow = -1.6;
    try {
        neg_rule.validate();
        FAIL() << "negative threshold accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("pdLow"), std::string::npos) << msg;
        EXPECT_NE(msg.find("-1.6"), std::string::npos) << msg;
    }

    policy::ParamRule inverted = policy::ParamRule::oct2023();
    inverted.tppLow = inverted.tppMid + 100.0;
    try {
        inverted.validate();
        FAIL() << "inverted thresholds accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("inverted thresholds"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("tppLow"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tppMid"), std::string::npos) << msg;
    }
}

TEST(FirmwareLicenseRule, ValidationNamesTheOffendingValue)
{
    policy::FirmwareLicenseRule nan_rule;
    nan_rule.coverageTpp = NAN;
    EXPECT_THROW(nan_rule.validate(), FatalError);

    policy::FirmwareLicenseRule neg_rule;
    neg_rule.throttleTpp = -4800.0;
    try {
        neg_rule.validate();
        FAIL() << "negative throttle accepted";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("throttleTpp"), std::string::npos) << msg;
        EXPECT_NE(msg.find("-4800"), std::string::npos) << msg;
    }

    policy::FirmwareLicenseRule inverted;
    inverted.throttleTpp = inverted.coverageTpp + 1.0;
    try {
        inverted.validate();
        FAIL() << "throttle above coverage accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("inverted thresholds"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ArmsRaceConfigTest, RejectsBadKnobs)
{
    coevo::ArmsRaceConfig bad_rounds;
    bad_rounds.rounds = 0;
    EXPECT_THROW(coevo::ArmsRace{bad_rounds}, FatalError);

    coevo::ArmsRaceConfig bad_budget;
    bad_budget.collateralBudget = -0.1;
    EXPECT_THROW(coevo::ArmsRace{bad_budget}, FatalError);

    coevo::ArmsRaceConfig nan_budget;
    nan_budget.collateralBudget = NAN;
    EXPECT_THROW(coevo::ArmsRace{nan_budget}, FatalError);

    coevo::ArmsRaceConfig bad_step;
    bad_step.tightenStep = 1.0;
    EXPECT_THROW(coevo::ArmsRace{bad_step}, FatalError);
}

// ---- firmware mechanism structure ------------------------------------------

TEST(FirmwareLicenseRule, MetersFp16EquivalentOpsSoRelabelingBuysNothing)
{
    // An FP16 design relabeled INT8 halves its *claimed* TPP but
    // retires the same operations: the firmware meters FP16-equivalent
    // TPP, so coverage and throttle are unchanged.
    hw::HardwareConfig fp16 = hw::modeledA100();
    hw::HardwareConfig int8 = fp16;
    int8.opBitwidth = 8;
    EXPECT_LT(int8.tpp(), fp16.tpp());
    const double fp16eq_a = fp16.peakTensorTops() * 16.0;
    const double fp16eq_b = int8.peakTensorTops() * 16.0;
    EXPECT_DOUBLE_EQ(fp16eq_a, fp16eq_b);

    policy::FirmwareLicenseRule fw;
    fw.coverageTpp = 4800.0;
    fw.throttleTpp = 2400.0;
    EXPECT_EQ(fw.covered(fp16eq_a), fw.covered(fp16eq_b));
    EXPECT_DOUBLE_EQ(fw.throughputScale(fp16eq_a),
                     fw.throughputScale(fp16eq_b));
}

TEST(FirmwareLicenseRule, ThrottleScalesSustainedThroughput)
{
    policy::FirmwareLicenseRule fw;
    fw.coverageTpp = 4800.0;
    fw.throttleTpp = 2400.0;
    EXPECT_DOUBLE_EQ(fw.throughputScale(9600.0), 0.25);
    EXPECT_DOUBLE_EQ(fw.throughputScale(4800.0), 0.5);
    // Under coverage: native speed.
    EXPECT_DOUBLE_EQ(fw.throughputScale(4799.0), 1.0);
    // Throttle at/above the device's throughput never speeds it up.
    fw.throttleTpp = 4800.0;
    EXPECT_DOUBLE_EQ(fw.throughputScale(4800.0), 1.0);
}

// ---- escape-space enumerations (the static benches source these) -----------

TEST(EscapeSpace, EnumerationsMatchTheStaticBenches)
{
    EXPECT_EQ(coevo::mcmChipletCounts(), (std::vector<int>{4, 5, 6, 8}));
    EXPECT_EQ(coevo::gamingEscapeDims(),
              (std::vector<int>{4, 8, 16, 32}));
    EXPECT_EQ(coevo::gamingEscapeMemTbps(),
              (std::vector<double>{0.8, 1.2, 1.6, 2.0, 2.8}));

    const coevo::L2PaddingGrid grid = coevo::l2PaddingGrid();
    EXPECT_DOUBLE_EQ(grid.startMib, 40.0);
    EXPECT_DOUBLE_EQ(grid.stopMib, 2048.0);
    EXPECT_DOUBLE_EQ(grid.stepMib, 8.0);

    const auto &genealogy = coevo::complianceSkuGenealogy();
    ASSERT_EQ(genealogy.size(), 6u);
    EXPECT_STREQ(genealogy.front().flagship, "NVIDIA A100 80GB");
    EXPECT_STREQ(genealogy.front().sku, "NVIDIA A800");
    EXPECT_STREQ(genealogy.back().sku, "NVIDIA RTX 4090D");
}

TEST(EscapeSpace, PortfolioTracksTheRuleParameters)
{
    // Canonical rule: spaces one under each live tier, an INT8 twin of
    // the top target, and the consumer-rebranding space.
    const auto canonical =
        coevo::designerEscapeSpaces(policy::ParamRule::combined());
    ASSERT_GE(canonical.size(), 4u);
    bool has_int8 = false, has_consumer = false;
    for (const auto &es : canonical) {
        EXPECT_GT(es.space.size(), 0u) << es.label;
        if (es.label.find("int8") != std::string::npos)
            has_int8 = true;
        if (es.marketedAs == policy::MarketSegment::CONSUMER)
            has_consumer = true;
    }
    EXPECT_TRUE(has_int8);
    EXPECT_TRUE(has_consumer);

    // Tightening the license tier moves the top target down with it.
    policy::ParamRule tightened = policy::ParamRule::combined();
    tightened.tppLicense = 2400.0;
    tightened.tppMid = std::min(tightened.tppMid, 2400.0);
    const auto shifted = coevo::designerEscapeSpaces(tightened);
    EXPECT_NE(shifted.front().label, canonical.front().label);
    EXPECT_NE(shifted.front().label.find("2399"), std::string::npos)
        << shifted.front().label;
}

// ---- arms-race engine ------------------------------------------------------

namespace {

coevo::ArmsRaceConfig
smallRace(coevo::Mechanism mechanism, unsigned threads = 0)
{
    coevo::ArmsRaceConfig cfg;
    cfg.mechanism = mechanism;
    cfg.rounds = 5;
    cfg.collateralBudget = 0.10;
    cfg.threads = threads;
    return cfg;
}

} // namespace

TEST(ArmsRaceTest, TrajectoryIsMonotoneNonIncreasing)
{
    for (const coevo::Mechanism m :
         {coevo::Mechanism::THRESHOLD, coevo::Mechanism::FIRMWARE}) {
        coevo::ArmsRace race(smallRace(m));
        const coevo::ArmsRaceResult res = race.run();
        ASSERT_EQ(res.rounds.size(), 6u) << toString(m);
        double prev = INFINITY;
        for (const coevo::RoundRecord &r : res.rounds) {
            EXPECT_LE(r.designer.escapedPerf, prev + 1e-12)
                << toString(m) << " round " << r.round;
            prev = r.designer.escapedPerf;
            EXPECT_LE(r.collateral, 0.10 + 1e-12);
        }
    }
}

TEST(ArmsRaceTest, DesignerReusesAdaptiveSearchNotExhaustiveSweep)
{
    coevo::ArmsRace race(smallRace(coevo::Mechanism::THRESHOLD));
    const coevo::BestResponse br =
        race.designerResponse(policy::ParamRule::combined());
    EXPECT_TRUE(std::isfinite(br.ttftS));
    EXPECT_GT(br.escapedPerf, 0.0);
    ASSERT_GT(br.spacePoints, 0u);
    // The whole point of reusing dse::AdaptiveSearch: a strict
    // fraction of the escape portfolio is ever evaluated.
    EXPECT_LT(br.evaluated, br.spacePoints);
}

TEST(ArmsRaceTest, FingerprintIndependentOfThreadCount)
{
    coevo::ArmsRace one(smallRace(coevo::Mechanism::THRESHOLD, 1));
    coevo::ArmsRace seven(smallRace(coevo::Mechanism::THRESHOLD, 7));
    const coevo::ArmsRaceResult a = one.run();
    const coevo::ArmsRaceResult b = seven.run();
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.roundsToFixedPoint, b.roundsToFixedPoint);
}

TEST(ArmsRaceTest, RerunReproducesTheSameFixedPoint)
{
    coevo::ArmsRace race(smallRace(coevo::Mechanism::FIRMWARE));
    const coevo::ArmsRaceResult first = race.run();
    // Second run on the same engine replays from the warm memo;
    // a fresh engine recomputes everything. All three must agree.
    const coevo::ArmsRaceResult warm = race.run();
    coevo::ArmsRace fresh(smallRace(coevo::Mechanism::FIRMWARE));
    const coevo::ArmsRaceResult cold = fresh.run();
    EXPECT_EQ(first.fingerprint(), warm.fingerprint());
    EXPECT_EQ(first.fingerprint(), cold.fingerprint());
    EXPECT_EQ(first.roundsToFixedPoint, cold.roundsToFixedPoint);
}

TEST(ArmsRaceTest, FirmwareIsImmuneToBitWidthGaming)
{
    // Against the threshold rule the INT8 twin wins the opening round
    // outright (relabeling halves claimed TPP); against the firmware
    // meter the winning escape is never an INT8 space.
    coevo::ArmsRace thr(smallRace(coevo::Mechanism::THRESHOLD));
    const coevo::BestResponse thr_br =
        thr.designerResponse(policy::ParamRule::combined());
    EXPECT_NE(thr_br.spaceLabel.find("int8"), std::string::npos)
        << thr_br.spaceLabel;

    coevo::ArmsRace fw(smallRace(coevo::Mechanism::FIRMWARE));
    const coevo::BestResponse fw_br =
        fw.designerResponse(policy::FirmwareLicenseRule{});
    EXPECT_EQ(fw_br.spaceLabel.find("int8"), std::string::npos)
        << fw_br.spaceLabel;
}

TEST(ArmsRaceTest, FrontierCoversBothMechanismsAndIsMonotoneInBudget)
{
    coevo::ArmsRace race(smallRace(coevo::Mechanism::THRESHOLD));
    const std::vector<double> budgets = {0.0, 0.10};
    const auto frontier = race.frontier(budgets);
    ASSERT_EQ(frontier.size(), 4u);
    // Threshold points first, then firmware; within a mechanism a
    // larger budget can only help the regulator.
    EXPECT_EQ(frontier[0].mechanism, coevo::Mechanism::THRESHOLD);
    EXPECT_EQ(frontier[2].mechanism, coevo::Mechanism::FIRMWARE);
    EXPECT_GE(frontier[0].escapedPerf, frontier[1].escapedPerf - 1e-12);
    EXPECT_GE(frontier[2].escapedPerf, frontier[3].escapedPerf - 1e-12);
    for (const auto &p : frontier)
        EXPECT_LE(p.collateral, p.budget + 1e-12);
}

TEST(ArmsRaceTest, MechanismNamesRoundTrip)
{
    EXPECT_EQ(coevo::mechanismFromString("threshold"),
              coevo::Mechanism::THRESHOLD);
    EXPECT_EQ(coevo::mechanismFromString("firmware"),
              coevo::Mechanism::FIRMWARE);
    EXPECT_EQ(toString(coevo::Mechanism::THRESHOLD), "threshold");
    EXPECT_EQ(toString(coevo::Mechanism::FIRMWARE), "firmware");
    EXPECT_THROW(coevo::mechanismFromString("tariff"), FatalError);
}
