/**
 * @file
 * common::ShardedCache: single-thread semantics plus a multithreaded
 * stress run with deliberately colliding keys. The stress test is also
 * part of the ThreadSanitizer CI job (.github/workflows/ci.yml), which
 * rebuilds it with -fsanitize=thread.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/sharded_cache.hh"

namespace acs {
namespace common {
namespace {

using Cache = ShardedCache<int, double>;

TEST(ShardedCache, FindMissesOnEmptyAndTalliesMiss)
{
    Cache cache;
    double out = -1.0;
    EXPECT_FALSE(cache.find(7, &out));
    EXPECT_EQ(out, -1.0);
    const Cache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.hitRate(), 0.0);
}

TEST(ShardedCache, InsertThenFindHits)
{
    Cache cache;
    EXPECT_TRUE(cache.insert(7, 3.5));
    double out = 0.0;
    EXPECT_TRUE(cache.find(7, &out));
    EXPECT_EQ(out, 3.5);
    const Cache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.hitRate(), 1.0);
}

TEST(ShardedCache, InsertIsFirstWriterWins)
{
    Cache cache;
    EXPECT_TRUE(cache.insert(1, 10.0));
    EXPECT_FALSE(cache.insert(1, 99.0)); // loser's value is dropped
    double out = 0.0;
    ASSERT_TRUE(cache.find(1, &out));
    EXPECT_EQ(out, 10.0);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, GetOrComputeComputesOncePerKey)
{
    Cache cache;
    int calls = 0;
    const auto compute = [&calls]() {
        ++calls;
        return 2.5;
    };
    EXPECT_EQ(cache.getOrCompute(3, compute), 2.5);
    EXPECT_EQ(cache.getOrCompute(3, compute), 2.5);
    EXPECT_EQ(calls, 1);
    const Cache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(ShardedCache, GetOrComputeReturnsFirstWritersValue)
{
    Cache cache;
    cache.insert(5, 1.0);
    // A racing computation that lost the insert race must still return
    // the winning entry's value, not its own.
    double out = 0.0;
    ASSERT_TRUE(cache.find(5, &out));
    EXPECT_EQ(cache.getOrCompute(5, [] { return 2.0; }), 1.0);
}

TEST(ShardedCache, ClearDropsEntriesAndTallies)
{
    Cache cache;
    cache.insert(1, 1.0);
    cache.insert(2, 2.0);
    double out;
    cache.find(1, &out);
    cache.find(9, &out);
    cache.clear();
    const Cache::Stats s = cache.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.entries, 0u);
    EXPECT_FALSE(cache.find(1, &out));
}

TEST(ShardedCache, ShardCountRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(Cache(0).shardCount(), 1u);
    EXPECT_EQ(Cache(1).shardCount(), 1u);
    EXPECT_EQ(Cache(3).shardCount(), 4u);
    EXPECT_EQ(Cache(64).shardCount(), 64u);
    EXPECT_EQ(Cache(65).shardCount(), 128u);
}

/** Hash that collapses the key space onto very few shards. */
struct CollidingHash
{
    std::size_t operator()(int key) const
    {
        return static_cast<std::size_t>(key % 3);
    }
};

/**
 * Many threads hammer a small key set through both getOrCompute and
 * find/insert. With deterministic values keyed off the key, every
 * observed value must be consistent, entries must equal the unique key
 * count, and the exact per-shard tallies must satisfy
 * hits + misses == lookups issued.
 */
TEST(ShardedCache, MultithreadedStressWithCollidingKeys)
{
    ShardedCache<int, std::uint64_t, CollidingHash> cache(8);
    constexpr int THREADS = 8;
    constexpr int ITERS = 4000;
    constexpr int KEYS = 17; // >> shard count under CollidingHash

    std::vector<std::thread> crew;
    crew.reserve(THREADS);
    for (int t = 0; t < THREADS; ++t) {
        crew.emplace_back([&cache, t]() {
            for (int i = 0; i < ITERS; ++i) {
                const int key = (i + t) % KEYS;
                const std::uint64_t expect =
                    static_cast<std::uint64_t>(key) * 1000003u;
                if (i % 2 == 0) {
                    const std::uint64_t got = cache.getOrCompute(
                        key, [expect]() { return expect; });
                    ASSERT_EQ(got, expect);
                } else {
                    std::uint64_t got = 0;
                    if (cache.find(key, &got))
                        ASSERT_EQ(got, expect);
                    else
                        cache.insert(key, expect);
                }
            }
        });
    }
    for (std::thread &t : crew)
        t.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.entries, static_cast<std::size_t>(KEYS));
    // Every iteration issues exactly one tallied lookup (getOrCompute's
    // internal find, or the explicit find); inserts don't tally.
    EXPECT_EQ(s.hits + s.misses,
              static_cast<std::uint64_t>(THREADS) * ITERS);
    // At most one miss per (key, racing thread); in practice nearly
    // every lookup after warm-up hits.
    EXPECT_GE(s.hits, static_cast<std::uint64_t>(THREADS) * ITERS -
                          static_cast<std::uint64_t>(KEYS) * THREADS);

    // All values are still the deterministic function of the key.
    for (int key = 0; key < KEYS; ++key) {
        std::uint64_t got = 0;
        ASSERT_TRUE(cache.find(key, &got));
        EXPECT_EQ(got, static_cast<std::uint64_t>(key) * 1000003u);
    }
}

} // anonymous namespace
} // namespace common
} // namespace acs
