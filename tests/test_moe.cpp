/**
 * @file
 * Tests for the mixture-of-experts extension: parameter counting,
 * graph construction, and the bandwidth-boundedness property that
 * motivates the ext_moe bench.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "model/ops.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"

namespace acs {
namespace model {
namespace {

TEST(Moe, MixtralPreset)
{
    const TransformerConfig cfg = mixtral_8x7b();
    EXPECT_TRUE(cfg.isMoe());
    EXPECT_EQ(cfg.numExperts, 8);
    EXPECT_EQ(cfg.expertsPerToken, 2);
    EXPECT_EQ(cfg.modelDim, 4096);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_FALSE(llama3_8b().isMoe());
}

TEST(Moe, ParameterCountScalesWithExperts)
{
    // Mixtral-8x7B: attention as Llama 8B, FFN x8 + router.
    const long dense_ffn = 3L * 4096 * 14336;
    const long expected =
        llama3_8b().paramsPerLayer() - dense_ffn + 8 * dense_ffn +
        4096L * 8;
    EXPECT_EQ(mixtral_8x7b().paramsPerLayer(), expected);
    // Nominal total ~46-47B (the "8x7B" branding double counts).
    EXPECT_NEAR(static_cast<double>(mixtral_8x7b().totalParams()),
                46e9, 3e9);
}

TEST(Moe, ValidationOfRoutingFanOut)
{
    TransformerConfig cfg = mixtral_8x7b();
    cfg.expertsPerToken = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.expertsPerToken = 9; // > numExperts
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = mixtral_8x7b();
    cfg.numExperts = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Moe, GraphHasRouterAndExpertOps)
{
    const LayerGraph g =
        buildPrefillGraph(mixtral_8x7b(), InferenceSetting{}, 4);
    bool router = false, topk = false, up = false, down = false,
         combine = false, dense_ffn = false;
    for (const Op &op : g.ops) {
        router |= op.name == "moe-router";
        topk |= op.name == "moe-topk";
        up |= op.name == "moe-expert-gate-up";
        down |= op.name == "moe-expert-down";
        combine |= op.name == "moe-combine";
        dense_ffn |= op.name == "ffn-gate-up" || op.name == "ffn-down";
    }
    EXPECT_TRUE(router);
    EXPECT_TRUE(topk);
    EXPECT_TRUE(up);
    EXPECT_TRUE(down);
    EXPECT_TRUE(combine);
    EXPECT_FALSE(dense_ffn);
}

TEST(Moe, ExpertFlopsScaleWithTopK)
{
    // Top-2 routing does ~2x the dense-FFN FLOPs per token.
    const InferenceSetting s;
    const double moe =
        buildPrefillGraph(mixtral_8x7b(), s, 1).totalFlops();
    const double dense =
        buildPrefillGraph(llama3_8b(), s, 1).totalFlops();
    EXPECT_GT(moe, dense * 1.5);
    EXPECT_LT(moe, dense * 2.5);
}

TEST(Moe, DecodeTouchesAllExpertWeights)
{
    // 32 decode tokens x top-2 = 64 routed slots > 8 experts: every
    // expert's weights stream for only a handful of tokens each.
    const InferenceSetting s;
    const LayerGraph g = buildDecodeGraph(mixtral_8x7b(), s, 1);
    double expert_weights = 0.0;
    for (const Op &op : g.ops) {
        if (op.name.rfind("moe-expert", 0) == 0)
            expert_weights += op.weightBytes;
    }
    // All 8 experts' SwiGLU weights: 8 * 3 * d * ffn * 2 bytes.
    EXPECT_DOUBLE_EQ(expert_weights, 8.0 * 3 * 4096 * 14336 * 2);
}

TEST(Moe, DecodeIsMoreBandwidthBoundThanDense)
{
    // Per active-parameter FLOP, MoE decode moves far more weight
    // bytes: its TBT degrades more than dense when memory bandwidth
    // is capped — the ext_moe bench's headline.
    const InferenceSetting s;
    const perf::SystemConfig sys{4};
    hw::HardwareConfig fast = hw::modeledA100();
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = 0.8 * units::TBPS;

    auto tbt = [&](const TransformerConfig &m,
                   const hw::HardwareConfig &c) {
        return perf::InferenceSimulator(c).run(m, s, sys).tbtS;
    };
    const double moe_ratio =
        tbt(mixtral_8x7b(), slow) / tbt(mixtral_8x7b(), fast);
    const double dense_ratio =
        tbt(llama3_8b(), slow) / tbt(llama3_8b(), fast);
    EXPECT_GT(moe_ratio, dense_ratio);
}

TEST(Moe, PrefillAmortizesExpertWeights)
{
    // With 65536 prefill tokens the expert weights amortize and MoE
    // prefill stays compute-bound like dense prefill.
    const InferenceSetting s;
    const perf::InferenceSimulator sim(hw::modeledA100());
    const auto g = buildPrefillGraph(mixtral_8x7b(), s, 4);
    const auto r = sim.simulateLayer(g, 4);
    for (std::size_t i = 0; i < g.ops.size(); ++i) {
        if (g.ops[i].name == "moe-expert-gate-up") {
            EXPECT_EQ(r.ops[i].bound, perf::Bound::COMPUTE)
                << "prefill expert GEMM should be compute bound";
        }
    }
}

} // anonymous namespace
} // namespace model
} // namespace acs
