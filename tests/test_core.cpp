/**
 * @file
 * Integration tests for acs_core: the study API and the paper's
 * headline shapes (tolerant ranges so the tests assert reproduction,
 * not bit-exactness).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "core/study.hh"

namespace acs {
namespace core {
namespace {

class StudyFixture : public ::testing::Test
{
  protected:
    SanctionsStudy study_;
};

// ---- API basics -------------------------------------------------------------

TEST_F(StudyFixture, WorkloadsMatchSec32)
{
    const Workload gpt3 = gpt3Workload();
    EXPECT_EQ(gpt3.model.name, "GPT-3 175B");
    EXPECT_EQ(gpt3.setting.batch, 32);
    EXPECT_EQ(gpt3.setting.inputLen, 2048);
    EXPECT_EQ(gpt3.setting.outputLen, 1024);
    EXPECT_EQ(gpt3.system.tensorParallel, 4);

    const Workload llama = llamaWorkload();
    EXPECT_EQ(llama.model.name, "Llama 3 8B");
    EXPECT_EQ(llama.system.tensorParallel, 4);
}

TEST_F(StudyFixture, BaselineIsTheModeledA100)
{
    const auto baseline = study_.evaluateBaseline(gpt3Workload());
    EXPECT_EQ(baseline.config.name, "modeled-A100");
    EXPECT_NEAR(baseline.tpp, 4990.5, 1.0);
}

TEST_F(StudyFixture, DesignReportDeltasAreRelative)
{
    const DesignReport report =
        study_.evaluateDesign(hw::modeledA100(), gpt3Workload());
    EXPECT_NEAR(report.ttftDelta(), 0.0, 1e-12);
    EXPECT_NEAR(report.tbtDelta(), 0.0, 1e-12);
}

TEST_F(StudyFixture, ClassifyA100UnderAllRules)
{
    const DesignReport report =
        study_.evaluateDesign(hw::modeledA100(), gpt3Workload());
    EXPECT_EQ(report.rules.oct2022,
              policy::Classification::LICENSE_REQUIRED);
    // Modeled A100 TPP 4990 >= 4800 -> DC license, non-DC NAC.
    EXPECT_EQ(report.rules.oct2023DataCenter,
              policy::Classification::LICENSE_REQUIRED);
    EXPECT_EQ(report.rules.oct2023NonDataCenter,
              policy::Classification::NAC_ELIGIBLE);
}

TEST_F(StudyFixture, A800StyleDesignEscapesOct2022Only)
{
    const DesignReport report =
        study_.evaluateDesign(hw::modeledA800(), gpt3Workload());
    EXPECT_EQ(report.rules.oct2022,
              policy::Classification::NOT_APPLICABLE);
    EXPECT_TRUE(policy::isRegulated(report.rules.oct2023DataCenter));
}

// ---- paper headline shapes -----------------------------------------------------

TEST_F(StudyFixture, Fig5TppScalingDominatesPrefill)
{
    // Sec. 4.1: +25% TPP (4000 -> 5000) cuts TTFT by ~16%.
    const Workload w = gpt3Workload();
    auto with_cores = [&](double tpp) {
        hw::HardwareConfig cfg = hw::modeledA100();
        cfg.coreCount = hw::coresForTpp(tpp, 16, 16, 4, cfg.clockHz);
        return study_.evaluateDesign(cfg, w).design;
    };
    const auto d4000 = with_cores(4000.0);
    const auto d5000 = with_cores(5000.0);
    const double delta = d5000.ttftS / d4000.ttftS - 1.0;
    EXPECT_LT(delta, -0.10);
    EXPECT_GT(delta, -0.25);
}

TEST_F(StudyFixture, Fig5DeviceBandwidthBarelyMovesTbt)
{
    // Sec. 4.1: 600 -> 1000 GB/s only changes TBT by ~0.27%.
    const Workload w = gpt3Workload();
    auto with_bw = [&](int phys) {
        hw::HardwareConfig cfg = hw::modeledA100();
        cfg.coreCount = 103;
        cfg.devicePhyCount = phys;
        return study_.evaluateDesign(cfg, w).design;
    };
    const auto d600 = with_bw(12);
    const auto d1000 = with_bw(20);
    const double delta = std::abs(d1000.tbtS / d600.tbtS - 1.0);
    EXPECT_LT(delta, 0.01);
    EXPECT_GT(delta, 0.0005);
}

TEST_F(StudyFixture, Fig6CompliantDesignsBeatA100)
{
    // Sec. 4.2 headline: manufacturable Oct-2022-compliant designs
    // improve TTFT slightly and TBT by ~27% (GPT-3) via 3.2 TB/s HBM.
    const Workload w = gpt3Workload();
    const auto baseline = study_.evaluateBaseline(w);
    const auto designs = dse::filterReticle(study_.runSweep(
        dse::table3Space(4800.0, {600.0 * units::GBPS}), w));
    ASSERT_FALSE(designs.empty());

    const auto &best_ttft = dse::minTtft(designs);
    const double ttft_delta = best_ttft.ttftS / baseline.ttftS - 1.0;
    EXPECT_LT(ttft_delta, 0.0);
    EXPECT_GT(ttft_delta, -0.12); // small improvement only

    const auto &best_tbt = dse::minTbt(designs);
    const double tbt_delta = best_tbt.tbtS / baseline.tbtS - 1.0;
    EXPECT_LT(tbt_delta, -0.20);
    EXPECT_GT(tbt_delta, -0.45);
    // The paper's mechanism: the fast-decode design maxes HBM.
    EXPECT_DOUBLE_EQ(best_tbt.config.memBandwidth, 3.2 * units::TBPS);
}

TEST_F(StudyFixture, Fig7All4800DesignsViolatePd)
{
    // Sec. 4.3: the PD floor invalidates every 4800-TPP design.
    const Workload w = gpt3Workload();
    const auto designs = study_.runSweep(
        dse::table3Space(4800.0, {500.0 * units::GBPS}), w);
    for (const auto &d : designs) {
        EXPECT_TRUE(policy::isRegulated(
            policy::Oct2023Rule::classify(d.toSpec())))
            << d.config.name;
    }
}

TEST_F(StudyFixture, Fig7Compliant2400TtftMuchSlowerThanA100)
{
    // Sec. 4.3: fastest compliant 2400-TPP TTFT is ~79% slower (GPT-3).
    const Workload w = gpt3Workload();
    const auto baseline = study_.evaluateBaseline(w);
    const auto compliant = dse::filterOct2023Unregulated(
        dse::filterReticle(study_.runSweep(
            dse::table3Space(2400.0, {500.0 * units::GBPS,
                                      700.0 * units::GBPS,
                                      900.0 * units::GBPS}),
            w)));
    ASSERT_FALSE(compliant.empty());
    const double delta =
        dse::minTtft(compliant).ttftS / baseline.ttftS - 1.0;
    EXPECT_GT(delta, 0.50);
    EXPECT_LT(delta, 1.20);
    // But decode still improves (memory bandwidth unregulated).
    EXPECT_LT(dse::minTbt(compliant).tbtS, baseline.tbtS);
}

TEST_F(StudyFixture, Table4ComplianceRoughlyDoublesGoodDieCost)
{
    const Workload w = gpt3Workload();
    const auto designs = dse::filterReticle(study_.runSweep(
        dse::table3Space(2400.0, {500.0 * units::GBPS,
                                  700.0 * units::GBPS,
                                  900.0 * units::GBPS}),
        w));
    std::vector<dse::EvaluatedDesign> ok, bad;
    for (const auto &d : designs) {
        if (policy::Oct2023Rule::classify(d.toSpec()) ==
            policy::Classification::NOT_APPLICABLE) {
            ok.push_back(d);
        } else {
            bad.push_back(d);
        }
    }
    ASSERT_FALSE(ok.empty());
    ASSERT_FALSE(bad.empty());
    const auto &best_ok = dse::minTtft(ok);
    const auto &best_bad = dse::minTbt(bad); // representative cheap one
    EXPECT_GT(best_ok.dieAreaMm2, 700.0); // PD floor forces big dies
    EXPECT_GT(best_ok.goodDieCostUsd, best_bad.goodDieCostUsd);
}

TEST_F(StudyFixture, Fig12MemoryBandwidthIsTheTbtIndicator)
{
    // Sec. 5.3: fixing 0.8 TB/s memory BW slows median TBT by ~110%
    // (GPT-3) and narrows the distribution by >10x.
    const Workload w = gpt3Workload();
    const auto baseline = study_.evaluateBaseline(w);
    const auto designs = dse::filterReticle(
        study_.runSweep(dse::table5Space(), w));
    const auto dists = dse::indicatorStudy(
        designs,
        {{"0.8TB/s", dse::fixedParameter(
                         policy::ArchParameter::MEM_BANDWIDTH,
                         0.8 * units::TBPS)}});
    ASSERT_EQ(dists.size(), 2u);
    const double median_slowdown =
        dists[1].tbt.median / units::toMs(baseline.tbtS) - 1.0;
    EXPECT_GT(median_slowdown, 0.60);
    EXPECT_GT(dists[1].tbtNarrowing, 10.0);
}

TEST_F(StudyFixture, Fig12SmallL1IsTheTtftIndicator)
{
    // Sec. 5.3: 32 KB L1 devices have the slowest median TTFT.
    const Workload w = gpt3Workload();
    const auto baseline = study_.evaluateBaseline(w);
    const auto designs = dse::filterReticle(
        study_.runSweep(dse::table5Space(), w));
    const auto dists = dse::indicatorStudy(
        designs,
        {{"32KB", dse::fixedParameter(
                      policy::ArchParameter::L1_PER_CORE,
                      32.0 * units::KIB)}});
    const double median_slowdown =
        dists[1].ttft.median / units::toMs(baseline.ttftS) - 1.0;
    EXPECT_GT(median_slowdown, 0.35);
    EXPECT_LT(median_slowdown, 1.00);
    // And it is slower than the unconstrained median.
    EXPECT_GT(dists[1].ttft.median, dists[0].ttft.median);
}

TEST_F(StudyFixture, CustomPerfParamsPropagate)
{
    perf::PerfParams params;
    params.kernelOverheadS = 0.0;
    const SanctionsStudy fast(params);
    const auto with = study_.evaluateBaseline(gpt3Workload());
    const auto without = fast.evaluateBaseline(gpt3Workload());
    EXPECT_LT(without.tbtS, with.tbtS);
    EXPECT_DOUBLE_EQ(fast.params().kernelOverheadS, 0.0);
}

} // anonymous namespace
} // namespace core
} // namespace acs
