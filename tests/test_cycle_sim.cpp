/**
 * @file
 * Property and validation suite for the cycle-level GEMM engine.
 *
 * Three contracts, mirroring the TILE_SIM suite
 * (tests/test_gemm_property.cpp):
 *
 *  1. Bit-exactness: the event-coalesced engine — with and without
 *     periodic replay — must match the naive per-cycle LEGACY_TICK
 *     reference on every CycleStats field (cycle counts AND the stall
 *     breakdown), over randomized skinny / square / remainder-heavy
 *     shapes. replayedTiles is the one field replay is allowed (and
 *     expected) to change.
 *  2. Regime behaviour: scratchpad-capacity serialization and DRAM
 *     bank queueing — the effects the closed forms cannot see — must
 *     appear exactly in the configurations built to provoke them.
 *  3. Cross-mode validation: on sampled fig06/07-space designs the
 *     three GEMM modes must agree within a bounded relative error
 *     (the documented outliers are spad-capacity and DRAM-bound
 *     corners, where CYCLE_SIM legitimately diverges — docs/PERF.md).
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hh"
#include "core/study.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "hw/presets.hh"
#include "perf/cycle_sim.hh"
#include "perf/gemm_cache.hh"
#include "perf/matmul_model.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {
namespace {

model::Op
weightGemm(long m, long n, long k, long batch = 1)
{
    model::Op op;
    op.name = "gemm";
    op.kind = model::OpKind::MATMUL;
    op.mm = {m, n, k, batch, true};
    op.flops = 2.0 * static_cast<double>(batch) * m * n * k;
    op.weightBytes = 2.0 * static_cast<double>(batch) * k * n;
    op.inputBytes = 2.0 * static_cast<double>(batch) * m * k;
    op.outputBytes = 2.0 * static_cast<double>(batch) * m * n;
    return op;
}

/**
 * Device geometries small enough for the naive per-cycle reference to
 * stay affordable (its cost is makespan x arrays): a few-arrays A100
 * variant, its small-L1 twin (tiny tiles, many remainder classes),
 * and a tiny 8x8-array design (deep k-chunking, fast ticks).
 */
std::vector<hw::HardwareConfig>
tickableConfigs()
{
    std::vector<hw::HardwareConfig> cfgs;

    hw::HardwareConfig few_arrays = hw::modeledA100();
    few_arrays.name = "few-arrays";
    few_arrays.coreCount = 9;
    few_arrays.lanesPerCore = 2;
    few_arrays.validate();
    cfgs.push_back(few_arrays);

    hw::HardwareConfig small_l1 = few_arrays;
    small_l1.name = "few-arrays-small-l1";
    small_l1.l1BytesPerCore = 32.0 * units::KIB;
    small_l1.validate();
    cfgs.push_back(small_l1);

    hw::HardwareConfig tiny = hw::modeledA100();
    tiny.name = "tiny-8x8";
    tiny.coreCount = 4;
    tiny.lanesPerCore = 2;
    tiny.systolicDimX = 8;
    tiny.systolicDimY = 8;
    tiny.validate();
    cfgs.push_back(tiny);
    return cfgs;
}

/** All fields equal; replayedTiles too unless @p allow_replay. */
void
expectStatsBitIdentical(const CycleStats &a, const CycleStats &b,
                        const std::string &label,
                        bool allow_replay = false)
{
    EXPECT_EQ(a.tileM, b.tileM) << label;
    EXPECT_EQ(a.tileN, b.tileN) << label;
    EXPECT_EQ(a.totalTiles, b.totalTiles) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalS, b.totalS) << label;
    EXPECT_EQ(a.computeBusyCycles, b.computeBusyCycles) << label;
    EXPECT_EQ(a.fillStallCycles, b.fillStallCycles) << label;
    EXPECT_EQ(a.dramQueueCycles, b.dramQueueCycles) << label;
    EXPECT_EQ(a.l2QueueCycles, b.l2QueueCycles) << label;
    EXPECT_EQ(a.spadSerialCycles, b.spadSerialCycles) << label;
    EXPECT_EQ(a.overlapOk, b.overlapOk) << label;
    EXPECT_EQ(a.events, b.events) << label;
    if (!allow_replay) {
        EXPECT_EQ(a.replayedTiles, b.replayedTiles) << label;
    }
}

void
runEquivalence(const hw::HardwareConfig &cfg, const model::Op &op,
               const std::string &label)
{
    PerfParams tick;
    tick.cycleEngine = CycleEngine::LEGACY_TICK;
    PerfParams coalesced;
    coalesced.cycleEngine = CycleEngine::COALESCED;
    coalesced.cycleReplay = false;
    PerfParams replay;
    replay.cycleEngine = CycleEngine::COALESCED;
    replay.cycleReplay = true;

    const CycleStats ref = simulateGemmCycles(cfg, op, tick);
    const CycleStats fast = simulateGemmCycles(cfg, op, coalesced);
    const CycleStats fwd = simulateGemmCycles(cfg, op, replay);
    expectStatsBitIdentical(fast, ref, label + " [coalesced vs tick]");
    expectStatsBitIdentical(fwd, ref, label + " [replay vs tick]",
                            /*allow_replay=*/true);
}

TEST(CycleProperty, RandomShapesCoalescedMatchesNaiveTick)
{
    // Deterministic seed: failures must reproduce.
    std::mt19937 rng(20260809);
    const auto cfgs = tickableConfigs();

    std::uniform_int_distribution<long> skinny_m(1, 64);
    std::uniform_int_distribution<long> wide_n(512, 4096);
    std::uniform_int_distribution<long> square(64, 640);
    std::uniform_int_distribution<long> heavy(65, 512);
    std::uniform_int_distribution<long> kdim(64, 2048);
    std::uniform_int_distribution<long> batch(1, 8);
    std::uniform_int_distribution<int> family(0, 2);

    for (int trial = 0; trial < 24; ++trial) {
        long m = 0;
        long n = 0;
        switch (family(rng)) {
        case 0: // skinny decode-like: one row of column tiles
            m = skinny_m(rng);
            n = wide_n(rng);
            break;
        case 1: // square-ish prefill block
            m = square(rng);
            n = square(rng);
            break;
        default: // remainder-heavy: odd extents off tile multiples
            m = heavy(rng) | 1;
            n = heavy(rng) | 1;
            break;
        }
        const long k = kdim(rng);
        const long b = batch(rng);
        const auto &cfg = cfgs[trial % cfgs.size()];
        runEquivalence(cfg, weightGemm(m, n, k, b),
                       cfg.name + " m=" + std::to_string(m) +
                           " n=" + std::to_string(n) +
                           " k=" + std::to_string(k) +
                           " b=" + std::to_string(b));
    }
}

TEST(CycleProperty, EdgeShapesMatchNaiveTick)
{
    const auto cfgs = tickableConfigs();
    const struct
    {
        long m, n, k, batch;
    } shapes[] = {
        {1, 1, 64, 1},        // single tiny tile
        {1, 4096, 512, 1},    // one row of column tiles
        {4096, 1, 512, 1},    // one column of row tiles
        {31, 2048, 1024, 1},  // decode GEMV, remainder m
        {209, 353, 512, 5},   // remainders on both axes, batched
        {512, 512, 512, 1},   // exact tile multiples
        {100, 100, 512, 7},   // both-axis remainders, odd batch
    };
    for (const auto &s : shapes) {
        for (const auto &cfg : cfgs) {
            runEquivalence(cfg, weightGemm(s.m, s.n, s.k, s.batch),
                           cfg.name + " m=" + std::to_string(s.m) +
                               " n=" + std::to_string(s.n) +
                               " b=" + std::to_string(s.batch));
        }
    }
}

TEST(CycleSim, ReplayFiresOnSteadyStateAndStaysExact)
{
    // Shapes with a long periodic interior on the full A100: replay
    // must actually fast-forward (the sweep-tractability claim) and
    // stay bit-identical to the live coalesced run. The tick
    // reference is far too slow here — exactness versus live
    // coalesced (itself pinned to the tick above) is the contract.
    const hw::HardwareConfig cfg = hw::modeledA100();
    PerfParams live;
    live.cycleReplay = false;
    PerfParams replay;
    replay.cycleReplay = true;

    // Replay needs a long periodic interior: each array must run
    // dozens of same-class tiles so the checkpoint signatures can
    // both match and leave whole periods to skip. Shapes whose grid
    // barely covers the array count (a handful of tiles per array)
    // legitimately never fire — those stay fully live.
    struct ShapeCase
    {
        model::Op op;
        std::int64_t minFrac; // replayedTiles > totalTiles / minFrac
    };
    const ShapeCase shapes[] = {
        {weightGemm(16384, 4096, 512), 2},     // long prefill block
        {weightGemm(512, 4096, 1024, 128), 3}, // batched decode stream
    };
    for (const ShapeCase &sc : shapes) {
        const model::Op &op = sc.op;
        const CycleStats a = simulateGemmCycles(cfg, op, live);
        const CycleStats b = simulateGemmCycles(cfg, op, replay);
        const std::string label =
            "m=" + std::to_string(op.mm.m) +
            " b=" + std::to_string(op.mm.batchCount);
        expectStatsBitIdentical(b, a, label, /*allow_replay=*/true);
        EXPECT_EQ(a.replayedTiles, 0) << label;
        EXPECT_GT(b.replayedTiles, 0) << label;
        // Most of the GEMM must be fast-forwarded, not re-simulated.
        EXPECT_GT(b.replayedTiles, b.totalTiles / sc.minFrac) << label;
    }
}

TEST(CycleSim, SpadCapacitySerializesFills)
{
    // A 128x128 array with an A100 L1 cannot double-buffer its tile
    // working set: fills must wait for compute to drain. This is the
    // first documented divergence regime versus the closed forms.
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "big-array";
    cfg.coreCount = 4;
    cfg.lanesPerCore = 2;
    cfg.systolicDimX = 128;
    cfg.systolicDimY = 128;
    cfg.validate();

    const model::Op op = weightGemm(2048, 2048, 1024);
    const CycleStats s = simulateGemmCycles(cfg, op);
    EXPECT_FALSE(s.overlapOk);
    EXPECT_GT(s.spadSerialCycles, 0);

    // With a roomy L1 the same schedule overlaps its fills.
    hw::HardwareConfig roomy = cfg;
    roomy.l1BytesPerCore = 4096.0 * units::KIB;
    roomy.validate();
    const CycleStats r = simulateGemmCycles(roomy, op);
    EXPECT_TRUE(r.overlapOk);
    EXPECT_EQ(r.spadSerialCycles, 0);
}

TEST(CycleSim, DramQueueingAppearsWhenBandwidthStarved)
{
    // Starving HBM bandwidth stretches bank service times until fill
    // requests queue — the second documented divergence regime.
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.name = "starved-hbm";
    cfg.coreCount = 9;
    cfg.lanesPerCore = 2;
    cfg.memBandwidth = 20e9;
    cfg.validate();

    const model::Op op = weightGemm(512, 512, 512, 4);
    const CycleStats starved = simulateGemmCycles(cfg, op);
    EXPECT_GT(starved.dramQueueCycles, 0);

    hw::HardwareConfig fat = cfg;
    fat.memBandwidth = 2.0e12;
    fat.validate();
    const CycleStats roomy = simulateGemmCycles(fat, op);
    EXPECT_LT(roomy.dramQueueCycles, starved.dramQueueCycles);
    EXPECT_LT(roomy.cycles, starved.cycles);
}

TEST(CycleSim, MatmulModelRoutesCycleMode)
{
    const hw::HardwareConfig cfg = hw::modeledA100();
    PerfParams params;
    params.gemmMode = GemmMode::CYCLE_SIM;
    const MatmulModel model(cfg, params);
    const model::Op op = weightGemm(32, 12288, 4096, 8);

    const MatmulTiming t = model.time(op);
    const CycleStats s = simulateGemmCycles(cfg, op, params);
    EXPECT_EQ(t.totalS, s.totalS);
    EXPECT_EQ(t.tileM, s.tileM);
    EXPECT_EQ(t.tileN, s.tileN);
    // The analytic decomposition still labels the binding resource.
    EXPECT_GT(t.utilization, 0.0);
}

// ---- Cross-mode validation on the figure spaces -----------------------------

/**
 * Relative-error bound for cycle_sim versus the other two modes on
 * the fig06/07 spaces. Wide by design: the cycle model charges real
 * prologue/drain, integer rounding, bank queueing, and spad
 * serialization that the closed forms amortize away, and the
 * documented outlier corners (spad-capacity-bound large arrays,
 * DRAM-bound low-bandwidth points) sit near the edges of this band.
 * docs/PERF.md tabulates typical errors, which are much tighter.
 */
constexpr double REL_LO = 0.30;
constexpr double REL_HI = 3.0;

void
expectModesAgree(const dse::SweepSpace &space, int samples,
                 const std::string &label)
{
    core::Workload w;
    w.model = model::llama3_8b();
    w.setting = model::InferenceSetting{};
    w.system.tensorParallel = 1;

    PerfParams analytic;
    analytic.gemmMode = GemmMode::ANALYTIC;
    PerfParams tile;
    tile.gemmMode = GemmMode::TILE_SIM;
    PerfParams cycle;
    cycle.gemmMode = GemmMode::CYCLE_SIM;

    const dse::DesignEvaluator ea(w.model, w.setting, w.system, analytic);
    const dse::DesignEvaluator et(w.model, w.setting, w.system, tile);
    const dse::DesignEvaluator ec(w.model, w.setting, w.system, cycle);

    const auto cfgs = space.generate();
    ASSERT_GT(cfgs.size(), 0u);
    const std::size_t stride = std::max<std::size_t>(
        1, cfgs.size() / static_cast<std::size_t>(samples));
    for (std::size_t i = 0; i < cfgs.size(); i += stride) {
        const auto &cfg = cfgs[i];
        const auto a = ea.evaluate(cfg);
        const auto t = et.evaluate(cfg);
        const auto c = ec.evaluate(cfg);
        const std::string where = label + " " + cfg.name;
        EXPECT_GT(c.ttftS / a.ttftS, REL_LO) << where;
        EXPECT_LT(c.ttftS / a.ttftS, REL_HI) << where;
        EXPECT_GT(c.tbtS / a.tbtS, REL_LO) << where;
        EXPECT_LT(c.tbtS / a.tbtS, REL_HI) << where;
        EXPECT_GT(c.ttftS / t.ttftS, REL_LO) << where;
        EXPECT_LT(c.ttftS / t.ttftS, REL_HI) << where;
        EXPECT_GT(c.tbtS / t.tbtS, REL_LO) << where;
        EXPECT_LT(c.tbtS / t.tbtS, REL_HI) << where;
    }
}

TEST(CrossMode, BoundedRelativeErrorOnFig06Designs)
{
    expectModesAgree(
        dse::table3Space(2400.0, {600.0 * units::GBPS}), 6, "fig06");
}

TEST(CrossMode, BoundedRelativeErrorOnFig07Designs)
{
    expectModesAgree(
        dse::table3Space(1600.0, {700.0 * units::GBPS}), 4, "fig07");
}

// ---- GemmCache integration --------------------------------------------------

TEST(CycleCache, SharedCacheFanOutMatchesUncached)
{
    // Several threads hammer one GemmCache with the same CYCLE_SIM
    // shapes (the TSan job runs this): every hit must return the
    // exact bits the uncached path computes.
    const hw::HardwareConfig cfg = hw::modeledA100();
    std::vector<model::Op> ops;
    for (long b : {1, 2, 4, 8})
        ops.push_back(weightGemm(32, 4096, 4096, b));
    ops.push_back(weightGemm(1024, 1024, 1024));
    ops.push_back(weightGemm(209, 353, 512, 5));

    PerfParams base;
    base.gemmMode = GemmMode::CYCLE_SIM;
    std::vector<double> expected;
    {
        const MatmulModel model(cfg, base);
        for (const auto &op : ops)
            expected.push_back(model.time(op).totalS);
    }

    GemmCache cache;
    PerfParams cached = base;
    cached.gemmCache = &cache;
    constexpr int THREADS = 4;
    std::vector<std::vector<double>> got(THREADS);
    std::vector<std::thread> workers;
    for (int t = 0; t < THREADS; ++t) {
        workers.emplace_back([&, t] {
            const MatmulModel model(cfg, cached);
            for (const auto &op : ops)
                got[static_cast<std::size_t>(t)].push_back(
                    model.time(op).totalS);
        });
    }
    for (auto &th : workers)
        th.join();
    for (int t = 0; t < THREADS; ++t)
        for (std::size_t i = 0; i < ops.size(); ++i)
            EXPECT_EQ(got[static_cast<std::size_t>(t)][i], expected[i])
                << "thread " << t << " op " << i;
    EXPECT_GT(cache.size(), 0u);
}

TEST(CycleCache, SweepCacheOnOffByteIdentical)
{
    // The evaluator's hoisted sweep cache must not change a single
    // bit of CYCLE_SIM sweep output (same contract as TILE_SIM).
    core::Workload w;
    w.model = model::llama3_8b();
    w.setting = model::InferenceSetting{};
    w.system.tensorParallel = 1;

    auto space = dse::table3Space(2400.0, {600.0 * units::GBPS});
    auto cfgs = space.generate();
    cfgs.resize(std::min<std::size_t>(cfgs.size(), 6));

    PerfParams on;
    on.gemmMode = GemmMode::CYCLE_SIM;
    on.cacheTileSimGemms = true;
    PerfParams off = on;
    off.cacheTileSimGemms = false;

    const auto cached =
        dse::DesignEvaluator(w.model, w.setting, w.system, on)
            .evaluateAll(cfgs);
    const auto plain =
        dse::DesignEvaluator(w.model, w.setting, w.system, off)
            .evaluateAll(cfgs);
    ASSERT_EQ(cached.size(), plain.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
        EXPECT_EQ(cached[i].ttftS, plain[i].ttftS) << i;
        EXPECT_EQ(cached[i].tbtS, plain[i].tbtS) << i;
    }
}

} // anonymous namespace
} // namespace perf
} // namespace acs
