/**
 * @file
 * Unit tests for acs_policy: the Oct-2022/Oct-2023 ACR classifiers
 * (Table 1), the Dec-2024 HBM rule, marketing-consistency analysis,
 * and the architecture-first policy framework.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "policy/acr_rules.hh"
#include "policy/arch_policy.hh"
#include "policy/marketing.hh"

namespace acs {
namespace policy {
namespace {

DeviceSpec
spec(double tpp, double dev_bw, double area,
     MarketSegment market = MarketSegment::DATA_CENTER)
{
    DeviceSpec s;
    s.name = "test-device";
    s.tpp = tpp;
    s.deviceBandwidthGBps = dev_bw;
    s.dieAreaMm2 = area;
    s.market = market;
    s.memCapacityGB = 16.0;
    s.memBandwidthGBps = 500.0;
    return s;
}

// ---- DeviceSpec ------------------------------------------------------------

TEST(DeviceSpec, PerfDensity)
{
    EXPECT_DOUBLE_EQ(spec(4800.0, 600.0, 800.0).perfDensity(), 6.0);
}

TEST(DeviceSpec, PlanarProcessHasNoPerfDensity)
{
    DeviceSpec s = spec(4800.0, 600.0, 800.0);
    s.nonPlanarTransistor = false;
    EXPECT_DOUBLE_EQ(s.perfDensity(), 0.0);
}

TEST(DeviceSpec, ZeroAreaHasNoPerfDensity)
{
    EXPECT_DOUBLE_EQ(spec(4800.0, 600.0, 0.0).perfDensity(), 0.0);
}

TEST(MarketSegment, NonDataCenterPredicates)
{
    EXPECT_FALSE(isNonDataCenter(MarketSegment::DATA_CENTER));
    EXPECT_TRUE(isNonDataCenter(MarketSegment::CONSUMER));
    EXPECT_TRUE(isNonDataCenter(MarketSegment::WORKSTATION));
}

TEST(Names, EnumsRoundTrip)
{
    EXPECT_EQ(toString(MarketSegment::DATA_CENTER), "data-center");
    EXPECT_EQ(toString(Classification::NAC_ELIGIBLE), "nac-eligible");
    EXPECT_EQ(toString(MarketingConsistency::FALSE_DC), "false-dc");
}

// ---- Oct 2022 (Table 1a) -----------------------------------------------------

TEST(Oct2022, RequiresBothThresholds)
{
    using R = Oct2022Rule;
    EXPECT_EQ(R::classify(spec(4800.0, 600.0, 800.0)),
              Classification::LICENSE_REQUIRED);
    EXPECT_EQ(R::classify(spec(4799.0, 900.0, 800.0)),
              Classification::NOT_APPLICABLE);
    EXPECT_EQ(R::classify(spec(16000.0, 599.0, 800.0)),
              Classification::NOT_APPLICABLE);
    EXPECT_EQ(R::classify(spec(1000.0, 100.0, 800.0)),
              Classification::NOT_APPLICABLE);
}

TEST(Oct2022, BoundariesAreInclusive)
{
    // "over 4800" in prose, but the A100 (4992, 600) is regulated and
    // the A800 (4992, 400) escapes — thresholds bind with >=.
    EXPECT_TRUE(isRegulated(
        Oct2022Rule::classify(spec(4800.0, 600.0, 800.0))));
    EXPECT_FALSE(isRegulated(
        Oct2022Rule::classify(spec(4800.0, 599.99, 800.0))));
}

TEST(Oct2022, IgnoresMarketSegment)
{
    EXPECT_EQ(Oct2022Rule::classify(
                  spec(5000.0, 700.0, 800.0, MarketSegment::CONSUMER)),
              Classification::LICENSE_REQUIRED);
}

// ---- Oct 2023 (Table 1b) -----------------------------------------------------

TEST(Oct2023, DataCenterLicenseByTppAlone)
{
    EXPECT_EQ(Oct2023Rule::classify(spec(4800.0, 0.0, 1e6)),
              Classification::LICENSE_REQUIRED);
}

TEST(Oct2023, DataCenterLicenseByDensity)
{
    // TPP >= 1600 and PD >= 5.92.
    EXPECT_EQ(Oct2023Rule::classify(spec(1600.0, 0.0, 270.0)),
              Classification::LICENSE_REQUIRED);
    EXPECT_EQ(Oct2023Rule::classify(spec(1599.0, 0.0, 100.0)),
              Classification::NOT_APPLICABLE);
}

TEST(Oct2023, DataCenterNacTierOne)
{
    // 2400 <= TPP < 4800 and 1.6 <= PD < 5.92.
    EXPECT_EQ(Oct2023Rule::classify(spec(2400.0, 0.0, 1000.0)),
              Classification::NAC_ELIGIBLE); // PD 2.4
    EXPECT_EQ(Oct2023Rule::classify(spec(2400.0, 0.0, 1501.0)),
              Classification::NOT_APPLICABLE); // PD < 1.6
}

TEST(Oct2023, DataCenterNacTierTwo)
{
    // TPP >= 1600 and 3.2 <= PD < 5.92.
    EXPECT_EQ(Oct2023Rule::classify(spec(1600.0, 0.0, 500.0)),
              Classification::NAC_ELIGIBLE); // PD 3.2
    EXPECT_EQ(Oct2023Rule::classify(spec(1600.0, 0.0, 501.0)),
              Classification::NOT_APPLICABLE); // PD just under 3.2
}

TEST(Oct2023, NonDataCenterOnlyTppMatters)
{
    EXPECT_EQ(Oct2023Rule::classify(
                  spec(4800.0, 0.0, 100.0, MarketSegment::CONSUMER)),
              Classification::NAC_ELIGIBLE);
    EXPECT_EQ(Oct2023Rule::classify(
                  spec(4799.0, 0.0, 100.0, MarketSegment::CONSUMER)),
              Classification::NOT_APPLICABLE);
    EXPECT_EQ(Oct2023Rule::classify(
                  spec(4800.0, 0.0, 100.0, MarketSegment::WORKSTATION)),
              Classification::NAC_ELIGIBLE);
}

TEST(Oct2023, ClassifyAsOverridesMarketing)
{
    const DeviceSpec consumer =
        spec(2898.0, 64.0, 608.5, MarketSegment::CONSUMER);
    EXPECT_EQ(Oct2023Rule::classify(consumer),
              Classification::NOT_APPLICABLE);
    EXPECT_EQ(Oct2023Rule::classifyAs(consumer,
                                      MarketSegment::DATA_CENTER),
              Classification::NAC_ELIGIBLE);
}

TEST(Oct2023, PlanarDeviceEscapesDensityTiers)
{
    DeviceSpec s = spec(2400.0, 0.0, 400.0);
    s.nonPlanarTransistor = false; // PD = 0
    EXPECT_EQ(Oct2023Rule::classify(s),
              Classification::NOT_APPLICABLE);
}

// Paper worked examples (Sec. 2.5).
TEST(Oct2023, MinDieAreaWorkedExamples)
{
    EXPECT_NEAR(Oct2023Rule::minUnregulatedDieArea(2399.0), 749.7, 0.1);
    EXPECT_NEAR(Oct2023Rule::minUnregulatedDieArea(4799.0), 2999.4,
                0.1);
    EXPECT_NEAR(Oct2023Rule::minNacDieArea(1600.0), 270.3, 0.1);
    EXPECT_DOUBLE_EQ(Oct2023Rule::minUnregulatedDieArea(1599.0), 0.0);
    EXPECT_DOUBLE_EQ(Oct2023Rule::minNacDieArea(1599.0), 0.0);
}

TEST(Oct2023, MinDieAreaFatalAtLicenseTpp)
{
    EXPECT_THROW(Oct2023Rule::minUnregulatedDieArea(4800.0),
                 FatalError);
    EXPECT_THROW(Oct2023Rule::minNacDieArea(5000.0), FatalError);
    EXPECT_THROW(Oct2023Rule::minUnregulatedDieArea(-1.0), FatalError);
}

/**
 * Property: an area strictly above the floor deregulates the device,
 * and an area 10% below it does not.
 */
class DieAreaFloor : public ::testing::TestWithParam<double>
{};

TEST_P(DieAreaFloor, FloorSeparatesRegulatedFromUnregulated)
{
    const double tpp = GetParam();
    const double floor = Oct2023Rule::minUnregulatedDieArea(tpp);
    ASSERT_GT(floor, 0.0);
    EXPECT_EQ(Oct2023Rule::classify(spec(tpp, 0.0, floor * 1.001)),
              Classification::NOT_APPLICABLE);
    EXPECT_TRUE(isRegulated(
        Oct2023Rule::classify(spec(tpp, 0.0, floor * 0.9))));
}

INSTANTIATE_TEST_SUITE_P(Tpps, DieAreaFloor,
                         ::testing::Values(1600.0, 1900.0, 2200.0,
                                           2399.0, 2400.0, 3000.0,
                                           4000.0, 4799.0));

// ---- Dec 2024 HBM rule --------------------------------------------------------

TEST(HbmRule, DensityTiers)
{
    HbmPackageSpec pkg{"hbm", 200.0, 110.0}; // 1.82 GB/s/mm^2
    EXPECT_EQ(Dec2024HbmRule::classify(pkg),
              Classification::NOT_APPLICABLE);
    pkg.bandwidthGBps = 275.0; // 2.5
    EXPECT_EQ(Dec2024HbmRule::classify(pkg),
              Classification::NAC_ELIGIBLE);
    pkg.bandwidthGBps = 400.0; // 3.64
    EXPECT_EQ(Dec2024HbmRule::classify(pkg),
              Classification::LICENSE_REQUIRED);
}

TEST(HbmRule, BoundaryAtControlDensityIsUnregulated)
{
    // "greater than 2 GB/s/mm^2" — exactly 2.0 is not covered.
    const HbmPackageSpec pkg{"hbm", 220.0, 110.0};
    EXPECT_EQ(Dec2024HbmRule::classify(pkg),
              Classification::NOT_APPLICABLE);
}

TEST(HbmRule, ZeroAreaIsFatal)
{
    const HbmPackageSpec pkg{"hbm", 200.0, 0.0};
    EXPECT_THROW(pkg.bandwidthDensity(), FatalError);
}

// ---- marketing analysis ---------------------------------------------------------

TEST(Marketing, FalseDataCenterDetected)
{
    // NAC-regulated as DC, unregulated as consumer (e.g. L40-class).
    const auto c = analyzeMarketing(spec(2898.0, 64.0, 608.5));
    EXPECT_EQ(c, MarketingConsistency::FALSE_DC);
}

TEST(Marketing, ConsistentDataCenterFlagship)
{
    // Licensed as DC, NAC as consumer -> regulated both ways.
    const auto c = analyzeMarketing(spec(15824.0, 900.0, 814.0));
    EXPECT_EQ(c, MarketingConsistency::CONSISTENT_DC);
}

TEST(Marketing, FalseNonDataCenterDetected)
{
    // RTX 4080-class: unregulated consumer, licensed if DC-marketed.
    const auto c = analyzeMarketing(
        spec(3118.0, 63.0, 378.6, MarketSegment::CONSUMER));
    EXPECT_EQ(c, MarketingConsistency::FALSE_NON_DC);
}

TEST(Marketing, ConsistentConsumer)
{
    const auto c = analyzeMarketing(
        spec(800.0, 0.0, 400.0, MarketSegment::CONSUMER));
    EXPECT_EQ(c, MarketingConsistency::CONSISTENT_NON_DC);
}

TEST(Marketing, SummaryCounts)
{
    const std::vector<DeviceSpec> specs = {
        spec(2898.0, 64.0, 608.5),                              // F-DC
        spec(15824.0, 900.0, 814.0),                            // C-DC
        spec(3118.0, 63.0, 378.6, MarketSegment::CONSUMER),     // F-NDC
        spec(800.0, 0.0, 400.0, MarketSegment::CONSUMER),       // C-NDC
    };
    const MarketingSummary s = summarizeMarketing(specs);
    EXPECT_EQ(s.falseDc, 1);
    EXPECT_EQ(s.consistentDc, 1);
    EXPECT_EQ(s.falseNonDc, 1);
    EXPECT_EQ(s.consistentNonDc, 1);
}

// ---- architectural data-center classifier ------------------------------------------

TEST(ArchClassifier, ThresholdsAreStrict)
{
    DeviceSpec s = spec(1000.0, 0.0, 500.0);
    s.memCapacityGB = 32.0;
    s.memBandwidthGBps = 1600.0;
    EXPECT_FALSE(ArchDataCenterClassifier::isDataCenter(s));
    s.memCapacityGB = 32.01;
    EXPECT_TRUE(ArchDataCenterClassifier::isDataCenter(s));
    s.memCapacityGB = 16.0;
    s.memBandwidthGBps = 1601.0;
    EXPECT_TRUE(ArchDataCenterClassifier::isDataCenter(s));
}

TEST(ArchClassifier, AnalyzesAgainstMarketing)
{
    DeviceSpec gaming = spec(5285.0, 63.0, 608.5,
                             MarketSegment::CONSUMER);
    gaming.memCapacityGB = 24.0;
    gaming.memBandwidthGBps = 1008.0;
    EXPECT_EQ(ArchDataCenterClassifier::analyze(gaming),
              MarketingConsistency::CONSISTENT_NON_DC);

    DeviceSpec l4 = spec(968.0, 64.0, 294.5);
    l4.memCapacityGB = 24.0;
    l4.memBandwidthGBps = 300.0;
    EXPECT_EQ(ArchDataCenterClassifier::analyze(l4),
              MarketingConsistency::FALSE_DC);
}

// ---- architecture-first policy framework --------------------------------------------

TEST(ArchPolicy, EmptyPolicyIsVacuouslyCompliant)
{
    const ArchPolicy p("empty");
    EXPECT_TRUE(p.compliant(hw::modeledA100()));
    EXPECT_TRUE(p.violations(hw::modeledA100()).empty());
}

TEST(ArchPolicy, ParameterValueReadsEveryField)
{
    const hw::HardwareConfig cfg = hw::modeledA100();
    EXPECT_NEAR(parameterValue(cfg, ArchParameter::TPP), 4990.5, 1.0);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::MEM_BANDWIDTH),
                     2.0 * units::TBPS);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::MEM_CAPACITY),
                     80.0 * units::GB);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::L1_PER_CORE),
                     192.0 * units::KIB);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::L2_SIZE),
                     40.0 * units::MIB);
    EXPECT_DOUBLE_EQ(
        parameterValue(cfg, ArchParameter::DEVICE_BANDWIDTH),
        600.0 * units::GBPS);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::SYSTOLIC_DIM),
                     16.0);
    EXPECT_DOUBLE_EQ(parameterValue(cfg, ArchParameter::LANES_PER_CORE),
                     4.0);
}

TEST(ArchPolicy, ViolationsAreReported)
{
    ArchPolicy p("strict");
    p.addLimit(ArchParameter::MEM_BANDWIDTH, 1.0 * units::TBPS);
    p.addLimit(ArchParameter::TPP, 10000.0);
    const auto violations = p.violations(hw::modeledA100());
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("mem-bandwidth"), std::string::npos);
    EXPECT_FALSE(p.compliant(hw::modeledA100()));
}

TEST(ArchPolicy, NegativeCeilingIsFatal)
{
    ArchPolicy p("bad");
    EXPECT_THROW(p.addLimit(ArchParameter::TPP, -1.0), FatalError);
}

TEST(ArchPolicy, GamingFocusedBlocksA100ClassDesigns)
{
    // Sec. 5.4: the gaming policy caps systolic dims and memory
    // bandwidth — an A100 (16x16 arrays, 2 TB/s HBM) violates both.
    const ArchPolicy p = ArchPolicy::gamingFocused();
    EXPECT_FALSE(p.compliant(hw::modeledA100()));
    EXPECT_EQ(p.violations(hw::modeledA100()).size(), 2u);
}

TEST(ArchPolicy, GamingFocusedAllowsGamingClassDesigns)
{
    hw::HardwareConfig gaming = hw::modeledA100();
    gaming.systolicDimX = 8;
    gaming.systolicDimY = 8;
    gaming.memBandwidth = 1.0 * units::TBPS;
    EXPECT_TRUE(ArchPolicy::gamingFocused().compliant(gaming));
}

TEST(ArchPolicy, CombinedPoliciesMatchSec53)
{
    const ArchPolicy bw = ArchPolicy::tppPlusMemoryBandwidth();
    EXPECT_EQ(bw.limits().size(), 2u);
    EXPECT_FALSE(bw.compliant(hw::modeledA100())); // A100 exceeds both
    hw::HardwareConfig limited = hw::modeledA100();
    limited.coreCount = 99;
    limited.memBandwidth = 0.8 * units::TBPS;
    EXPECT_TRUE(bw.compliant(limited));

    const ArchPolicy l1 = ArchPolicy::tppPlusL1Cache();
    hw::HardwareConfig small_l1 = limited;
    small_l1.l1BytesPerCore = 32.0 * units::KIB;
    EXPECT_TRUE(l1.compliant(small_l1));
}

} // anonymous namespace
} // namespace policy
} // namespace acs
