/**
 * @file
 * Property-based fuzzing across random hardware configurations: every
 * model in the library must stay total, finite, and internally
 * consistent anywhere in the valid configuration space.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "area/area_model.hh"
#include "area/cost_model.hh"
#include "area/power_model.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "model/transformer.hh"
#include "perf/graphics_model.hh"
#include "perf/simulator.hh"
#include "policy/acr_rules.hh"
#include "policy/historical.hh"

namespace acs {
namespace {

/** Draw a random valid HardwareConfig. */
hw::HardwareConfig
randomConfig(Rng &rng)
{
    static const int dims[] = {4, 8, 16, 32};
    static const int lanes[] = {1, 2, 4, 8};

    hw::HardwareConfig cfg;
    cfg.name = "fuzz";
    cfg.systolicDimX = dims[rng.below(4)];
    cfg.systolicDimY = dims[rng.below(4)];
    cfg.lanesPerCore = lanes[rng.below(4)];
    cfg.coreCount = 1 + static_cast<int>(rng.below(256));
    cfg.vectorWidth = 8 << rng.below(3);
    cfg.clockHz = rng.uniform(0.8e9, 2.2e9);
    cfg.opBitwidth = rng.below(2) ? 16 : 8;
    cfg.l1BytesPerCore = rng.uniform(16.0, 2048.0) * units::KIB;
    cfg.l2Bytes = rng.uniform(4.0, 128.0) * units::MIB;
    cfg.memCapacityBytes = rng.uniform(8.0, 256.0) * units::GB;
    cfg.memBandwidth = rng.uniform(0.2, 6.0) * units::TBPS;
    cfg.devicePhyCount = static_cast<int>(rng.below(25));
    cfg.perPhyBandwidth = 50.0 * units::GBPS;
    cfg.diesPerPackage = 1 + static_cast<int>(rng.below(4));
    return cfg;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(Fuzz, HardwareInvariantsHold)
{
    Rng rng(GetParam());
    for (int i = 0; i < 40; ++i) {
        const hw::HardwareConfig cfg = randomConfig(rng);
        ASSERT_NO_THROW(cfg.validate());
        EXPECT_GT(cfg.tpp(), 0.0);
        EXPECT_GT(cfg.peakTensorTops(), 0.0);
        EXPECT_GT(cfg.peakVectorFlops(), 0.0);
        EXPECT_GE(cfg.deviceBandwidth(), 0.0);
        EXPECT_GT(cfg.l1BytesPerLane(), 0.0);
    }
}

TEST_P(Fuzz, AreaAndCostStayFiniteAndConsistent)
{
    Rng rng(GetParam() * 31 + 7);
    const area::AreaModel area_model;
    const area::CostModel cost_model;
    for (int i = 0; i < 40; ++i) {
        const hw::HardwareConfig cfg = randomConfig(rng);
        const double a = area_model.dieArea(cfg);
        ASSERT_TRUE(std::isfinite(a));
        EXPECT_GT(a, 0.0);
        EXPECT_NEAR(area_model.perfDensity(cfg), cfg.tpp() / a, 1e-9);

        const double per_die = a / cfg.diesPerPackage;
        if (cost_model.diesPerWafer(per_die) > 0) {
            const double cost = cost_model.dieCostUsd(
                per_die, cfg.process);
            EXPECT_GT(cost, 0.0);
            EXPECT_GE(cost_model.goodDieCostUsd(per_die, cfg.process),
                      cost);
        }
    }
}

TEST_P(Fuzz, SimulatorStaysFiniteAndOrdered)
{
    Rng rng(GetParam() * 97 + 13);
    const model::InferenceSetting setting;
    const auto llama = model::llama3_8b();
    for (int i = 0; i < 12; ++i) {
        hw::HardwareConfig cfg = randomConfig(rng);
        // Interconnect needed when TP > 1.
        const int tp = cfg.devicePhyCount > 0 && rng.below(2) ? 4 : 1;
        const perf::InferenceSimulator sim(cfg);
        const auto r = sim.run(llama, setting,
                               perf::SystemConfig{tp});
        ASSERT_TRUE(std::isfinite(r.ttftS));
        ASSERT_TRUE(std::isfinite(r.tbtS));
        EXPECT_GT(r.ttftS, 0.0);
        EXPECT_GT(r.tbtS, 0.0);
        EXPECT_LT(r.tbtS, r.ttftS); // decode step << full prefill
        EXPECT_GT(r.throughputTokensPerS(), 0.0);
        for (const auto &op : r.prefill.ops) {
            EXPECT_GE(op.latencyS, 0.0) << op.name;
            EXPECT_LE(op.utilization, 1.0 + 1e-9) << op.name;
        }
    }
}

TEST_P(Fuzz, PolicyClassifiersAreTotal)
{
    Rng rng(GetParam() * 193 + 29);
    const area::AreaModel area_model;
    for (int i = 0; i < 60; ++i) {
        const hw::HardwareConfig cfg = randomConfig(rng);
        policy::DeviceSpec spec;
        spec.name = cfg.name;
        spec.tpp = cfg.tpp();
        spec.deviceBandwidthGBps =
            units::toGBps(cfg.deviceBandwidth());
        spec.dieAreaMm2 = area_model.dieArea(cfg);
        spec.memCapacityGB = cfg.memCapacityBytes / units::GB;
        spec.memBandwidthGBps = units::toGBps(cfg.memBandwidth);
        // Both rules must produce a classification without throwing.
        ASSERT_NO_THROW(policy::Oct2022Rule::classify(spec));
        ASSERT_NO_THROW(policy::Oct2023Rule::classify(spec));
        // Rule consistency: an Oct-2023 license by TPP implies the
        // Oct-2022 TPP threshold is also met.
        if (spec.tpp >= 4800.0 && spec.deviceBandwidthGBps >= 600.0) {
            EXPECT_TRUE(policy::isRegulated(
                policy::Oct2022Rule::classify(spec)));
        }
    }
}

TEST_P(Fuzz, GraphicsAndPowerStayFinite)
{
    Rng rng(GetParam() * 389 + 41);
    const area::PowerModel power_model;
    const auto workload = model::GraphicsWorkload::aaa1440p();
    for (int i = 0; i < 30; ++i) {
        const hw::HardwareConfig cfg = randomConfig(rng);
        const perf::GraphicsModel gfx(cfg);
        const auto frame = gfx.frameTime(workload, rng.below(2) == 0);
        ASSERT_TRUE(std::isfinite(frame.frameS));
        EXPECT_GT(frame.fps(), 0.0);

        const area::ActivityProfile activity{rng.uniform(),
                                             rng.uniform(),
                                             rng.uniform(0.0, 8.0)};
        const auto p = power_model.power(cfg, activity);
        ASSERT_TRUE(std::isfinite(p.totalW()));
        EXPECT_GE(p.totalW(), p.staticW());
    }
}

TEST_P(Fuzz, HistoricalMetricsStayFinite)
{
    Rng rng(GetParam() * 769 + 53);
    for (int i = 0; i < 40; ++i) {
        const hw::HardwareConfig cfg = randomConfig(rng);
        const policy::MetricHistory h = policy::metricHistory(cfg);
        ASSERT_TRUE(std::isfinite(h.ctpMtops));
        ASSERT_TRUE(std::isfinite(h.appWt));
        EXPECT_GT(h.ctpMtops, 0.0);
        EXPECT_GT(h.appWt, 0.0);
        EXPECT_NEAR(h.tpp, cfg.tpp(), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // anonymous namespace
} // namespace acs
