/**
 * @file
 * Unit tests for acs_hw: the hardware template, TPP math (Eq. 1), and
 * the presets.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/config.hh"
#include "hw/presets.hh"

namespace acs {
namespace hw {
namespace {

// ---- derived metrics ----------------------------------------------------

TEST(HardwareConfig, A100TppMatchesPaper)
{
    // 108 cores x 4 lanes x 16x16 FPUs x 2 ops x 1.41 GHz x 16 bit
    // = 4990.5 TPP; the paper quotes the A100 at 4992.
    const HardwareConfig cfg = modeledA100();
    EXPECT_NEAR(cfg.tpp(), 4990.5, 1.0);
    EXPECT_NEAR(cfg.peakTensorTops(), 311.9, 0.1);
}

TEST(HardwareConfig, A100DeviceBandwidthIs600GBps)
{
    EXPECT_DOUBLE_EQ(modeledA100().deviceBandwidth(),
                     600.0 * units::GBPS);
}

TEST(HardwareConfig, A800ReducesOnlyBandwidth)
{
    const HardwareConfig a100 = modeledA100();
    const HardwareConfig a800 = modeledA800();
    EXPECT_DOUBLE_EQ(a100.tpp(), a800.tpp());
    EXPECT_DOUBLE_EQ(a800.deviceBandwidth(), 400.0 * units::GBPS);
}

TEST(HardwareConfig, H20StyleCapsTppKeepsMemory)
{
    const HardwareConfig h20 = modeledH20Style();
    EXPECT_LT(h20.tpp(), 4800.0);
    EXPECT_GT(h20.memBandwidth, modeledA100().memBandwidth);
}

TEST(HardwareConfig, TotalCountsComposeMultiplicatively)
{
    HardwareConfig cfg = modeledA100();
    cfg.coreCount = 3;
    cfg.lanesPerCore = 5;
    cfg.systolicDimX = 7;
    cfg.systolicDimY = 11;
    cfg.diesPerPackage = 2;
    EXPECT_EQ(cfg.totalSystolicArrays(), 3 * 5 * 2);
    EXPECT_EQ(cfg.totalSystolicFpus(), 3L * 5 * 7 * 11 * 2);
}

TEST(HardwareConfig, TppScalesWithBitwidth)
{
    HardwareConfig cfg = modeledA100();
    const double tpp16 = cfg.tpp();
    cfg.opBitwidth = 8;
    EXPECT_NEAR(cfg.tpp(), tpp16 / 2.0, 1e-9);
}

TEST(HardwareConfig, ChipletPackageAggregatesTpp)
{
    // TPP is aggregated over all dies in the package (Sec. 2.1).
    HardwareConfig cfg = modeledA100();
    const double one_die = cfg.tpp();
    cfg.diesPerPackage = 2;
    EXPECT_NEAR(cfg.tpp(), 2.0 * one_die, 1e-6);
}

TEST(HardwareConfig, L1PerLaneDividesByLanes)
{
    HardwareConfig cfg = modeledA100();
    EXPECT_DOUBLE_EQ(cfg.l1BytesPerLane(), 192.0 * units::KIB / 4);
    cfg.lanesPerCore = 1;
    EXPECT_DOUBLE_EQ(cfg.l1BytesPerLane(), 192.0 * units::KIB);
}

TEST(HardwareConfig, VectorPeakCountsFmaAsTwoOps)
{
    HardwareConfig cfg = modeledA100();
    const double expected = 2.0 * 108 * 4 * 32 * cfg.clockHz;
    EXPECT_DOUBLE_EQ(cfg.peakVectorFlops(), expected);
}

// ---- validation ----------------------------------------------------------

struct InvalidField
{
    const char *name;
    void (*mutate)(HardwareConfig &);
};

class ValidateRejects : public ::testing::TestWithParam<InvalidField>
{};

TEST_P(ValidateRejects, EachInvalidFieldIsFatal)
{
    HardwareConfig cfg = modeledA100();
    GetParam().mutate(cfg);
    EXPECT_THROW(cfg.validate(), FatalError) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Fields, ValidateRejects,
    ::testing::Values(
        InvalidField{"cores", [](HardwareConfig &c) { c.coreCount = 0; }},
        InvalidField{"lanes",
                     [](HardwareConfig &c) { c.lanesPerCore = 0; }},
        InvalidField{"dimx",
                     [](HardwareConfig &c) { c.systolicDimX = 0; }},
        InvalidField{"dimy",
                     [](HardwareConfig &c) { c.systolicDimY = -1; }},
        InvalidField{"vector",
                     [](HardwareConfig &c) { c.vectorWidth = 0; }},
        InvalidField{"clock", [](HardwareConfig &c) { c.clockHz = 0.0; }},
        InvalidField{"bitwidth",
                     [](HardwareConfig &c) { c.opBitwidth = 0; }},
        InvalidField{"l1",
                     [](HardwareConfig &c) { c.l1BytesPerCore = 0.0; }},
        InvalidField{"l2", [](HardwareConfig &c) { c.l2Bytes = -1.0; }},
        InvalidField{"memcap",
                     [](HardwareConfig &c) { c.memCapacityBytes = 0.0; }},
        InvalidField{"membw",
                     [](HardwareConfig &c) { c.memBandwidth = 0.0; }},
        InvalidField{"phys",
                     [](HardwareConfig &c) { c.devicePhyCount = -1; }},
        InvalidField{"phybw",
                     [](HardwareConfig &c) { c.perPhyBandwidth = -1.0; }},
        InvalidField{"dies",
                     [](HardwareConfig &c) { c.diesPerPackage = 0; }}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(HardwareConfig, DefaultPresetValidates)
{
    EXPECT_NO_THROW(modeledA100().validate());
    EXPECT_NO_THROW(modeledA800().validate());
    EXPECT_NO_THROW(modeledH20Style().validate());
}

TEST(HardwareConfig, ZeroPhyCountIsValid)
{
    // PCIe-only consumer devices have no dedicated interconnect PHYs.
    HardwareConfig cfg = modeledA100();
    cfg.devicePhyCount = 0;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_DOUBLE_EQ(cfg.deviceBandwidth(), 0.0);
}

// ---- Eq. 1: FPmax and core-count solving ---------------------------------

TEST(Eq1, FpMaxKnownValue)
{
    // 4800 TPP at 1.41 GHz FP16: 4800e12 / (2 * 1.41e9 * 16) = 106382.
    EXPECT_EQ(fpMaxForTpp(4800.0, 1.41e9, 16), 106382);
}

TEST(Eq1, FpMaxValidatesArguments)
{
    EXPECT_THROW(fpMaxForTpp(0.0, 1.41e9), FatalError);
    EXPECT_THROW(fpMaxForTpp(4800.0, 0.0), FatalError);
    EXPECT_THROW(fpMaxForTpp(4800.0, 1.41e9, 0), FatalError);
}

TEST(Eq1, CoresForTppA100Class)
{
    // 16x16 x 4 lanes = 1024 FPUs/core -> 103 cores at 4800 TPP.
    EXPECT_EQ(coresForTpp(4800.0, 16, 16, 4, 1.41e9), 103);
}

TEST(Eq1, CoresForTppValidates)
{
    EXPECT_THROW(coresForTpp(4800.0, 0, 16, 4, 1.41e9), FatalError);
    EXPECT_THROW(coresForTpp(4800.0, 16, 16, 0, 1.41e9), FatalError);
}

/**
 * Property: the solved core count is maximal — the resulting config is
 * at or under the TPP target and one more core exceeds it.
 */
struct Eq1Case
{
    double tpp;
    int dim;
    int lanes;
};

class CoresForTppMaximal : public ::testing::TestWithParam<Eq1Case>
{};

TEST_P(CoresForTppMaximal, AtOrUnderTargetAndMaximal)
{
    const auto [tpp, dim, lanes] = GetParam();
    const double clock = 1.41e9;
    const int cores = coresForTpp(tpp, dim, dim, lanes, clock);
    ASSERT_GE(cores, 1);

    HardwareConfig cfg = modeledA100();
    cfg.systolicDimX = dim;
    cfg.systolicDimY = dim;
    cfg.lanesPerCore = lanes;
    cfg.coreCount = cores;
    cfg.clockHz = clock;
    EXPECT_LE(cfg.tpp(), tpp * (1.0 + 1e-12));

    cfg.coreCount = cores + 1;
    EXPECT_GT(cfg.tpp(), tpp);
}

INSTANTIATE_TEST_SUITE_P(
    Space, CoresForTppMaximal,
    ::testing::Values(Eq1Case{1600.0, 4, 1}, Eq1Case{1600.0, 16, 4},
                      Eq1Case{2400.0, 8, 2}, Eq1Case{2400.0, 16, 8},
                      Eq1Case{4800.0, 16, 1}, Eq1Case{4800.0, 16, 4},
                      Eq1Case{4800.0, 32, 2}, Eq1Case{4800.0, 32, 8},
                      Eq1Case{8000.0, 16, 4}, Eq1Case{7000.0, 32, 1}));

TEST(Eq1, TooSmallBudgetYieldsZeroCores)
{
    // A 32x32 array with 8 lanes is 8192 FPUs/core; a tiny TPP budget
    // cannot fit one core.
    EXPECT_EQ(coresForTpp(100.0, 32, 32, 8, 1.41e9), 0);
}

TEST(ProcessNode, Names)
{
    EXPECT_EQ(toString(ProcessNode::N7), "7nm");
    EXPECT_EQ(toString(ProcessNode::N16), "16nm");
    EXPECT_EQ(toString(ProcessNode::N12), "12nm");
    EXPECT_EQ(toString(ProcessNode::N5), "5nm");
}

} // anonymous namespace
} // namespace hw
} // namespace acs
