/**
 * @file
 * Unit tests for acs_perf: the GEMM/vector/collective latency models
 * and the per-layer inference simulator, including the calibration
 * ranges that anchor the paper's baselines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "perf/gemm_cache.hh"
#include "perf/simulator.hh"
#include "perf/tile_sim.hh"

namespace acs {
namespace perf {
namespace {

model::Op
weightGemm(long m, long n, long k)
{
    model::Op op;
    op.name = "gemm";
    op.kind = model::OpKind::MATMUL;
    op.mm = {m, n, k, 1, true};
    op.flops = 2.0 * m * n * k;
    op.weightBytes = 2.0 * k * n;
    op.inputBytes = 2.0 * m * k;
    op.outputBytes = 2.0 * m * n;
    return op;
}

model::Op
vectorOp(double elements)
{
    model::Op op;
    op.name = "vec";
    op.kind = model::OpKind::VECTOR;
    op.flops = 5.0 * elements;
    op.inputBytes = 2.0 * elements;
    op.outputBytes = 2.0 * elements;
    return op;
}

model::Op
allreduceOp(double bytes)
{
    model::Op op;
    op.name = "ar";
    op.kind = model::OpKind::ALLREDUCE;
    op.commBytes = bytes;
    return op;
}

// ---- MatmulModel -----------------------------------------------------------

TEST(MatmulModel, RejectsWrongKind)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    EXPECT_THROW(m.time(vectorOp(100.0)), FatalError);
}

TEST(MatmulModel, RejectsDegenerateDims)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    model::Op op = weightGemm(0, 10, 10);
    EXPECT_THROW(m.time(op), FatalError);
}

TEST(MatmulModel, UtilizationIsAFraction)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    for (long mm : {1L, 32L, 2048L, 65536L}) {
        const MatmulTiming t = m.time(weightGemm(mm, 12288, 12288));
        EXPECT_GT(t.utilization, 0.0);
        EXPECT_LE(t.utilization, 1.0);
    }
}

TEST(MatmulModel, LargePrefillGemmIsComputeBoundAtHighUtil)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    const MatmulTiming t = m.time(weightGemm(65536, 12288, 12288));
    EXPECT_EQ(t.bound, Bound::COMPUTE);
    EXPECT_GT(t.utilization, 0.85); // "near peak FLOPs during prefill"
}

TEST(MatmulModel, SkinnyDecodeGemmIsHbmBound)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    const MatmulTiming t = m.time(weightGemm(32, 12288, 12288));
    EXPECT_EQ(t.bound, Bound::HBM);
}

TEST(MatmulModel, TileNeverExceedsProblem)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    const MatmulTiming t = m.time(weightGemm(8, 40, 512));
    EXPECT_LE(t.tileM, 8);
    EXPECT_LE(t.tileN, 40);
}

TEST(MatmulModel, MoreCoresReduceComputeTime)
{
    hw::HardwareConfig small = hw::modeledA100();
    small.coreCount = 54;
    const MatmulModel m_small(small, PerfParams{});
    const MatmulModel m_big(hw::modeledA100(), PerfParams{});
    const auto op = weightGemm(65536, 12288, 12288);
    EXPECT_GT(m_small.time(op).computeS, m_big.time(op).computeS);
}

TEST(MatmulModel, HigherMemBandwidthReducesHbmTime)
{
    hw::HardwareConfig fast = hw::modeledA100();
    fast.memBandwidth = 3.2 * units::TBPS;
    const MatmulModel m_slow(hw::modeledA100(), PerfParams{});
    const MatmulModel m_fast(fast, PerfParams{});
    const auto op = weightGemm(32, 12288, 12288);
    EXPECT_GT(m_slow.time(op).hbmS, m_fast.time(op).hbmS);
}

TEST(MatmulModel, SmallL1InflatesGlobalBufferTraffic)
{
    hw::HardwareConfig tiny = hw::modeledA100();
    tiny.l1BytesPerCore = 32.0 * units::KIB;
    tiny.lanesPerCore = 8;
    tiny.coreCount = hw::coresForTpp(4800.0, 16, 16, 8, tiny.clockHz);
    const MatmulModel m_tiny(tiny, PerfParams{});
    const MatmulModel m_a100(hw::modeledA100(), PerfParams{});
    const auto op = weightGemm(65536, 12288, 12288);
    EXPECT_GT(m_tiny.time(op).globalBufS, m_a100.time(op).globalBufS);
}

TEST(MatmulModel, L2BlockingModelsCapacityLimitedRestreaming)
{
    // The no-blocking ablation is an idealization (every operand
    // streams exactly once); the capacity-aware model must charge at
    // least that much, and a bigger global buffer must reduce the
    // re-streaming.
    PerfParams params;
    const auto op = weightGemm(65536, 12288, 12288);

    PerfParams ideal = params;
    ideal.modelL2Blocking = false;
    const double ideal_traffic =
        MatmulModel(hw::modeledA100(), ideal).time(op).hbmTrafficBytes;
    const double real_traffic =
        MatmulModel(hw::modeledA100(), params).time(op).hbmTrafficBytes;
    EXPECT_GE(real_traffic, ideal_traffic);

    hw::HardwareConfig big_l2 = hw::modeledA100();
    big_l2.l2Bytes = 80.0 * units::MIB;
    EXPECT_LT(MatmulModel(big_l2, params).time(op).hbmTrafficBytes,
              real_traffic);
}

TEST(MatmulModel, TotalIsBindingResourcePlusOverhead)
{
    const PerfParams params;
    const MatmulModel m(hw::modeledA100(), params);
    const MatmulTiming t = m.time(weightGemm(4096, 4096, 4096));
    const double expected =
        std::max({t.computeS, t.hbmS, t.globalBufS}) +
        params.kernelOverheadS;
    EXPECT_DOUBLE_EQ(t.totalS, expected);
}

TEST(MatmulModel, GlobalBufferBandwidthScalesWithTpp)
{
    // Equal-TPP designs have equal global-buffer bandwidth by
    // construction (bandwidth is sized to the compute).
    const PerfParams params;
    hw::HardwareConfig a = hw::modeledA100();
    hw::HardwareConfig b = hw::modeledA100();
    b.lanesPerCore = 1;
    b.coreCount = a.coreCount * 4;
    EXPECT_NEAR(MatmulModel(a, params).globalBufferBandwidth(),
                MatmulModel(b, params).globalBufferBandwidth(), 1.0);
}

TEST(Bound, Names)
{
    EXPECT_EQ(toString(Bound::COMPUTE), "compute");
    EXPECT_EQ(toString(Bound::HBM), "hbm");
    EXPECT_EQ(toString(Bound::GLOBAL_BUFFER), "global-buffer");
    EXPECT_EQ(toString(Bound::INTERCONNECT), "interconnect");
}

// ---- VectorModel -----------------------------------------------------------

TEST(VectorModel, RejectsWrongKind)
{
    const VectorModel v(hw::modeledA100(), PerfParams{});
    EXPECT_THROW(v.time(weightGemm(8, 8, 8)), FatalError);
}

TEST(VectorModel, SmallTensorServedByGlobalBuffer)
{
    const VectorModel v(hw::modeledA100(), PerfParams{});
    const VectorTiming t = v.time(vectorOp(32.0 * 12288));
    EXPECT_TRUE(t.servedByGlobalBuffer);
}

TEST(VectorModel, HugeTensorStreamsFromHbm)
{
    const VectorModel v(hw::modeledA100(), PerfParams{});
    const VectorTiming t = v.time(vectorOp(65536.0 * 12288));
    EXPECT_FALSE(t.servedByGlobalBuffer);
    EXPECT_EQ(t.bound, Bound::HBM);
}

TEST(VectorModel, MemoryTimeUsesWorkingSetOverBandwidth)
{
    const PerfParams params;
    const hw::HardwareConfig cfg = hw::modeledA100();
    const VectorModel v(cfg, params);
    const double elements = 65536.0 * 12288;
    const VectorTiming t = v.time(vectorOp(elements));
    EXPECT_NEAR(t.memoryS,
                4.0 * elements /
                    (cfg.memBandwidth * params.memEfficiency),
                1e-9);
}

// ---- CommModel -------------------------------------------------------------

TEST(CommModel, SingleDeviceIsFree)
{
    const CommModel c(hw::modeledA100(), PerfParams{});
    EXPECT_DOUBLE_EQ(c.time(allreduceOp(1e9), 1).totalS, 0.0);
}

TEST(CommModel, RingVolumeFormula)
{
    const PerfParams params;
    const hw::HardwareConfig cfg = hw::modeledA100();
    const CommModel c(cfg, params);
    const double payload = 1e9;
    const CommTiming t = c.time(allreduceOp(payload), 4);
    const double link = cfg.deviceBandwidth() / 2.0 *
                        params.interconnectEfficiency;
    EXPECT_NEAR(t.wireS, 2.0 * 0.75 * payload / link, 1e-12);
    EXPECT_NEAR(t.latencyS, 6.0 * params.allreduceStepLatencyS, 1e-15);
}

TEST(CommModel, NoInterconnectWithTpIsFatal)
{
    hw::HardwareConfig cfg = hw::modeledA100();
    cfg.devicePhyCount = 0;
    const CommModel c(cfg, PerfParams{});
    EXPECT_THROW(c.time(allreduceOp(1e6), 4), FatalError);
    EXPECT_NO_THROW(c.time(allreduceOp(1e6), 1));
}

TEST(CommModel, MoreBandwidthIsFaster)
{
    hw::HardwareConfig fast = hw::modeledA100();
    fast.devicePhyCount = 20; // 1 TB/s
    const CommModel slow(hw::modeledA100(), PerfParams{});
    const CommModel quick(fast, PerfParams{});
    EXPECT_GT(slow.time(allreduceOp(1e9), 4).totalS,
              quick.time(allreduceOp(1e9), 4).totalS);
}

TEST(CommModel, RejectsWrongKind)
{
    const CommModel c(hw::modeledA100(), PerfParams{});
    EXPECT_THROW(c.time(vectorOp(10.0), 4), FatalError);
}

// ---- InferenceSimulator ------------------------------------------------------

class SimulatorFixture : public ::testing::Test
{
  protected:
    InferenceSimulator sim_{hw::modeledA100()};
    model::InferenceSetting setting_;
};

TEST_F(SimulatorFixture, LayerLatencyIsSumOfOps)
{
    const auto graph =
        model::buildDecodeGraph(model::gpt3_175b(), setting_, 4);
    const LayerResult r = sim_.simulateLayer(graph, 4);
    double sum = 0.0;
    for (const OpTiming &op : r.ops)
        sum += op.latencyS;
    EXPECT_NEAR(r.latencyS, sum, 1e-12);
    EXPECT_EQ(r.ops.size(), graph.ops.size());
}

TEST_F(SimulatorFixture, Gpt3BaselineCalibration)
{
    // Paper baselines (modeled A100, one layer): TTFT ~275 ms,
    // TBT ~1.43 ms. Our analytical substitute must stay in range.
    SystemConfig sys{4};
    const InferenceResult r =
        sim_.run(model::gpt3_175b(), setting_, sys);
    EXPECT_GT(units::toMs(r.ttftS), 200.0);
    EXPECT_LT(units::toMs(r.ttftS), 330.0);
    EXPECT_GT(units::toMs(r.tbtS), 1.1);
    EXPECT_LT(units::toMs(r.tbtS), 1.7);
}

TEST_F(SimulatorFixture, LlamaBaselineCalibration)
{
    // Paper: Llama 3 TTFT ~46 ms, TBT ~0.56 ms per layer.
    SystemConfig sys{4};
    const InferenceResult r =
        sim_.run(model::llama3_8b(), setting_, sys);
    EXPECT_GT(units::toMs(r.ttftS), 30.0);
    EXPECT_LT(units::toMs(r.ttftS), 65.0);
    EXPECT_GT(units::toMs(r.tbtS), 0.30);
    EXPECT_LT(units::toMs(r.tbtS), 0.60);
}

TEST_F(SimulatorFixture, FullModelScalesByLayerCount)
{
    SystemConfig sys{4};
    const InferenceResult r =
        sim_.run(model::gpt3_175b(), setting_, sys);
    EXPECT_DOUBLE_EQ(r.ttftFullModelS, r.ttftS * 96);
    EXPECT_DOUBLE_EQ(r.tbtFullModelS, r.tbtS * 96);
}

TEST_F(SimulatorFixture, DecodeIsFasterThanPrefillPerLayer)
{
    SystemConfig sys{4};
    const InferenceResult r =
        sim_.run(model::gpt3_175b(), setting_, sys);
    EXPECT_LT(r.tbtS, r.ttftS / 10.0);
}

TEST_F(SimulatorFixture, Gpt3DoesNotFitOneDevice)
{
    const InferenceResult one =
        sim_.run(model::gpt3_175b(), setting_, SystemConfig{1});
    EXPECT_FALSE(one.fitsMemory);
    EXPECT_NEAR(one.weightBytesPerDevice, 348e9, 5e9);
}

TEST_F(SimulatorFixture, LlamaFitsOneDevice)
{
    const InferenceResult one =
        sim_.run(model::llama3_8b(), setting_, SystemConfig{1});
    EXPECT_TRUE(one.fitsMemory);
}

TEST_F(SimulatorFixture, PrefillMfuIsHighDecodeMfuIsLow)
{
    // Sec. 3.1: near-peak FLOPs in prefill, low utilization in decode.
    SystemConfig sys{4};
    const InferenceResult r =
        sim_.run(model::gpt3_175b(), setting_, sys);
    const double peak =
        sim_.device().peakTensorTops() * 1e12;
    EXPECT_GT(r.prefill.mfu(peak), 0.5);
    EXPECT_LT(r.decode.mfu(peak), 0.1);
}

TEST_F(SimulatorFixture, InvalidSystemIsFatal)
{
    EXPECT_THROW(sim_.run(model::gpt3_175b(), setting_,
                          SystemConfig{0}),
                 FatalError);
}

/**
 * Property: decode latency is non-increasing in memory bandwidth
 * (the paper's core decode claim).
 */
class MemBwMonotone : public ::testing::TestWithParam<double>
{};

TEST_P(MemBwMonotone, TbtNonIncreasingInMemBandwidth)
{
    const double bw = GetParam();
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = bw;
    hw::HardwareConfig fast = slow;
    fast.memBandwidth = bw * 1.25;
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const double tbt_slow =
        InferenceSimulator(slow).run(model::gpt3_175b(), setting, sys)
            .tbtS;
    const double tbt_fast =
        InferenceSimulator(fast).run(model::gpt3_175b(), setting, sys)
            .tbtS;
    EXPECT_LE(tbt_fast, tbt_slow * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, MemBwMonotone,
                         ::testing::Values(0.8e12, 1.2e12, 1.6e12,
                                           2.0e12, 2.4e12, 2.8e12));

/** Property: prefill latency is non-increasing in core count (TPP). */
class TppMonotone : public ::testing::TestWithParam<int>
{};

TEST_P(TppMonotone, TtftNonIncreasingInCores)
{
    hw::HardwareConfig few = hw::modeledA100();
    few.coreCount = GetParam();
    hw::HardwareConfig many = few;
    many.coreCount = GetParam() + 24;
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const double t_few =
        InferenceSimulator(few).run(model::gpt3_175b(), setting, sys)
            .ttftS;
    const double t_many =
        InferenceSimulator(many).run(model::gpt3_175b(), setting, sys)
            .ttftS;
    EXPECT_LE(t_many, t_few * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Cores, TppMonotone,
                         ::testing::Values(54, 72, 86, 103, 108, 128));

TEST(PerfParams, AblationSwitchesChangeResults)
{
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const double base =
        InferenceSimulator(hw::modeledA100())
            .run(model::gpt3_175b(), setting, sys).ttftS;

    PerfParams no_fill;
    no_fill.modelPipelineFill = false;
    const double without =
        InferenceSimulator(hw::modeledA100(), no_fill)
            .run(model::gpt3_175b(), setting, sys).ttftS;
    EXPECT_LT(without, base); // removing a loss term speeds things up
}

TEST(PerfParams, KernelOverheadDominatesTinyOps)
{
    PerfParams params;
    params.kernelOverheadS = 1e-3;
    const InferenceSimulator sim(hw::modeledA100(), params);
    const auto graph = model::buildDecodeGraph(model::gpt3_175b(),
                                               model::InferenceSetting{},
                                               4);
    const LayerResult r = sim.simulateLayer(graph, 4);
    // 12 matmul/vector kernels x 1 ms dominate everything else
    // (collectives pay hop latency instead of launch overhead).
    EXPECT_GT(r.latencyS, 12e-3);
}


TEST(PerfParams, TileSimModeStaysCloseToAnalytic)
{
    PerfParams detailed;
    detailed.gemmMode = GemmMode::TILE_SIM;
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const auto analytic =
        InferenceSimulator(hw::modeledA100())
            .run(model::gpt3_175b(), setting, sys);
    const auto simulated =
        InferenceSimulator(hw::modeledA100(), detailed)
            .run(model::gpt3_175b(), setting, sys);
    EXPECT_NEAR(simulated.ttftS, analytic.ttftS, 0.15 * analytic.ttftS);
    EXPECT_NEAR(simulated.tbtS, analytic.tbtS, 0.25 * analytic.tbtS);
}

TEST(PerfParams, MultiPassVectorSlowsUnfusedKernels)
{
    PerfParams multipass;
    multipass.modelMultiPassVector = true;
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const auto fused = InferenceSimulator(hw::modeledA100())
                           .run(model::gpt3_175b(), setting, sys);
    const auto unfused =
        InferenceSimulator(hw::modeledA100(), multipass)
            .run(model::gpt3_175b(), setting, sys);
    // Prefill softmax makes three passes over a multi-GB tensor.
    EXPECT_GT(unfused.ttftS, fused.ttftS);
}

TEST(LayerResult, MfuValidation)
{
    LayerResult r;
    r.flops = 100.0;
    r.latencyS = 1.0;
    EXPECT_DOUBLE_EQ(r.mfu(1000.0), 0.1);
    EXPECT_THROW(r.mfu(0.0), PanicError);
}

// ---- op-shape memoization ---------------------------------------------------

TEST(OpShapeMemo, MemoOnOffBitIdentical)
{
    // Memoized timings must be byte-for-byte what re-timing would
    // produce: identical shapes reuse the stored result, so the run's
    // doubles cannot drift.
    for (const model::TransformerConfig &m :
         {model::gpt3_175b(), model::llama3_8b()}) {
        PerfParams on;
        on.memoizeOps = true;
        PerfParams off;
        off.memoizeOps = false;
        const InferenceSimulator sim_on(hw::modeledA100(), on);
        const InferenceSimulator sim_off(hw::modeledA100(), off);
        const model::InferenceSetting setting;
        const SystemConfig sys{4};
        const InferenceResult a = sim_on.run(m, setting, sys);
        const InferenceResult b = sim_off.run(m, setting, sys);
        EXPECT_EQ(a.ttftS, b.ttftS) << m.name;
        EXPECT_EQ(a.tbtS, b.tbtS) << m.name;
        EXPECT_EQ(a.ttftFullModelS, b.ttftFullModelS) << m.name;
        EXPECT_EQ(a.tbtFullModelS, b.tbtFullModelS) << m.name;
        EXPECT_EQ(a.fitsMemory, b.fitsMemory) << m.name;
        ASSERT_EQ(a.prefill.ops.size(), b.prefill.ops.size());
        for (std::size_t i = 0; i < a.prefill.ops.size(); ++i) {
            EXPECT_EQ(a.prefill.ops[i].latencyS,
                      b.prefill.ops[i].latencyS)
                << m.name << " prefill op " << i;
            EXPECT_EQ(a.prefill.ops[i].bound, b.prefill.ops[i].bound);
        }
        ASSERT_EQ(a.decode.ops.size(), b.decode.ops.size());
        for (std::size_t i = 0; i < a.decode.ops.size(); ++i) {
            EXPECT_EQ(a.decode.ops[i].latencyS,
                      b.decode.ops[i].latencyS)
                << m.name << " decode op " << i;
        }
    }
}

// ---- TILE_SIM GEMM mode -----------------------------------------------------

TEST(GemmMode, TileSimTimingComesFromWaveSimulator)
{
    PerfParams params;
    params.gemmMode = GemmMode::TILE_SIM;
    const MatmulModel m(hw::modeledA100(), params);
    for (const model::Op &op :
         {weightGemm(32, 12288, 12288), weightGemm(2048, 4096, 4096),
          weightGemm(209, 353, 512)}) {
        const MatmulTiming t = m.time(op);
        const GemmSummary s =
            simulateGemmSummary(hw::modeledA100(), op, params);
        EXPECT_EQ(t.totalS, s.totalS) << op.name;
        EXPECT_EQ(t.tileM, s.tileM) << op.name;
        EXPECT_EQ(t.tileN, s.tileN) << op.name;
    }
}

TEST(GemmMode, TileSimMemoOnOffBitIdentical)
{
    // Memoization must stay bit-exact when the memoized timings come
    // from the wave simulator instead of the closed form — TILE_SIM
    // sweeps lean on the memo to amortize the per-shape schedule.
    PerfParams on;
    on.gemmMode = GemmMode::TILE_SIM;
    on.memoizeOps = true;
    PerfParams off = on;
    off.memoizeOps = false;
    const model::TransformerConfig m = model::llama3_8b();
    const model::InferenceSetting setting;
    const SystemConfig sys{1};
    const InferenceResult a =
        InferenceSimulator(hw::modeledA100(), on).run(m, setting, sys);
    const InferenceResult b =
        InferenceSimulator(hw::modeledA100(), off).run(m, setting, sys);
    EXPECT_EQ(a.ttftS, b.ttftS);
    EXPECT_EQ(a.tbtS, b.tbtS);
    EXPECT_EQ(a.ttftFullModelS, b.ttftFullModelS);
    EXPECT_EQ(a.tbtFullModelS, b.tbtFullModelS);
}

TEST(GemmMode, TileSimEnginesAgreeThroughSimulator)
{
    // End to end through the layer simulator, the aggregated engine
    // and the legacy walk must be interchangeable.
    PerfParams fast;
    fast.gemmMode = GemmMode::TILE_SIM;
    fast.tileSimEngine = TileSimEngine::AGGREGATED;
    PerfParams ref = fast;
    ref.tileSimEngine = TileSimEngine::LEGACY_WALK;
    const model::TransformerConfig m = model::llama3_8b();
    const model::InferenceSetting setting;
    const SystemConfig sys{1};
    const InferenceResult a =
        InferenceSimulator(hw::modeledA100(), fast).run(m, setting, sys);
    const InferenceResult b =
        InferenceSimulator(hw::modeledA100(), ref).run(m, setting, sys);
    EXPECT_EQ(a.ttftS, b.ttftS);
    EXPECT_EQ(a.tbtS, b.tbtS);
}

TEST(GemmMode, FlagParsingRoundTrips)
{
    GemmMode mode = GemmMode::ANALYTIC;
    EXPECT_TRUE(parseGemmMode("tile_sim", &mode));
    EXPECT_EQ(mode, GemmMode::TILE_SIM);
    EXPECT_TRUE(parseGemmMode("analytic", &mode));
    EXPECT_EQ(mode, GemmMode::ANALYTIC);
    EXPECT_TRUE(parseGemmMode("cycle_sim", &mode));
    EXPECT_EQ(mode, GemmMode::CYCLE_SIM);
    EXPECT_STREQ(toString(GemmMode::ANALYTIC), "analytic");
    EXPECT_STREQ(toString(GemmMode::TILE_SIM), "tile_sim");
    EXPECT_STREQ(toString(GemmMode::CYCLE_SIM), "cycle_sim");
    // Unknown names leave the mode untouched.
    mode = GemmMode::TILE_SIM;
    EXPECT_FALSE(parseGemmMode("roofline", &mode));
    EXPECT_EQ(mode, GemmMode::TILE_SIM);
}

TEST(OpShapeMemo, PrebuiltGraphRunMatchesConvenienceOverload)
{
    const InferenceSimulator sim(hw::modeledA100());
    const model::TransformerConfig m = model::gpt3_175b();
    const model::InferenceSetting setting;
    const SystemConfig sys{4};
    const auto prefill =
        model::buildPrefillGraph(m, setting, sys.tensorParallel);
    const auto decode =
        model::buildDecodeGraph(m, setting, sys.tensorParallel);
    const InferenceResult a = sim.run(m, setting, sys);
    const InferenceResult b = sim.run(m, setting, sys, prefill, decode);
    EXPECT_EQ(a.ttftS, b.ttftS);
    EXPECT_EQ(a.tbtS, b.tbtS);
    EXPECT_EQ(a.weightBytesPerDevice, b.weightBytesPerDevice);
    EXPECT_EQ(a.kvCacheBytesPerDevice, b.kvCacheBytesPerDevice);
}

TEST(MatmulModel, BoundIsArgmaxOfResourceTimes)
{
    const MatmulModel m(hw::modeledA100(), PerfParams{});
    for (const model::Op &op :
         {weightGemm(1, 12288, 12288), weightGemm(2048, 12288, 12288),
          weightGemm(512, 128, 49152)}) {
        const MatmulTiming t = m.time(op);
        const double max_t =
            std::max({t.computeS, t.hbmS, t.globalBufS});
        switch (t.bound) {
          case Bound::COMPUTE:
            EXPECT_EQ(t.computeS, max_t) << op.name;
            break;
          case Bound::HBM:
            EXPECT_EQ(t.hbmS, max_t) << op.name;
            break;
          case Bound::GLOBAL_BUFFER:
            EXPECT_EQ(t.globalBufS, max_t) << op.name;
            break;
          default:
            FAIL() << "unexpected bound for " << op.name;
        }
    }
}

// ---- GemmCache (cross-design memoization) ----------------------------------

TEST(GemmCache, HitReturnsIdenticalBitsAndTallies)
{
    GemmCache cache;
    PerfParams params;
    params.gemmMode = GemmMode::TILE_SIM;
    params.gemmCache = &cache;
    params.memoizeOps = false; // isolate the cross-design cache
    const MatmulModel m(hw::modeledA100(), params);
    const model::Op op = weightGemm(2048, 4096, 4096);

    const MatmulTiming miss = m.time(op); // populates the cache
    const MatmulTiming hit = m.time(op);  // must be served from it
    EXPECT_EQ(miss.totalS, hit.totalS);
    EXPECT_EQ(miss.computeS, hit.computeS);
    EXPECT_EQ(miss.hbmS, hit.hbmS);
    EXPECT_EQ(miss.tileM, hit.tileM);
    EXPECT_EQ(miss.tileN, hit.tileN);
    EXPECT_EQ(miss.bound, hit.bound);

    const GemmCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
}

TEST(GemmCache, AnalyticModeNeverConsultsTheCache)
{
    GemmCache cache;
    PerfParams params; // gemmMode stays ANALYTIC
    params.gemmCache = &cache;
    const MatmulModel m(hw::modeledA100(), params);
    (void)m.time(weightGemm(2048, 4096, 4096));
    const GemmCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 0u);
    EXPECT_EQ(s.hits + s.misses, 0u);
}

TEST(GemmCache, KeyIgnoresInterconnectFields)
{
    // Designs differing only along comm-only axes (device PHYs) must
    // share one cache entry: that is the axis-factorization the sweep
    // drivers exploit (docs/PERF.md).
    PerfParams params;
    params.gemmMode = GemmMode::TILE_SIM;
    const model::Op op = weightGemm(2048, 4096, 4096);
    hw::HardwareConfig a = hw::modeledA100();
    hw::HardwareConfig b = a;
    b.name = "comm-variant";
    b.devicePhyCount = a.devicePhyCount + 7;
    b.perPhyBandwidth = 2.0 * a.perPhyBandwidth;
    b.memCapacityBytes = 2.0 * a.memCapacityBytes;
    const std::uint64_t fp = fingerprintGemmParams(params);
    EXPECT_EQ(makeGemmCacheKey(a, op, params, fp),
              makeGemmCacheKey(b, op, params, fp));

    // End to end: a model on the comm-variant hits the entry the
    // original populated, bit-exactly.
    GemmCache cache;
    params.gemmCache = &cache;
    params.memoizeOps = false;
    const MatmulTiming ta = MatmulModel(a, params).time(op);
    const MatmulTiming tb = MatmulModel(b, params).time(op);
    EXPECT_EQ(ta.totalS, tb.totalS);
    const GemmCache::Stats s = cache.stats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.hits, 1u);
}

TEST(GemmCache, KeyCanonicalizesCoresTimesLanesIntoArrayCount)
{
    // TILE_SIM timing depends on the total systolic-array count, not
    // the cores/lanes split, so the key canonicalizes the product.
    PerfParams params;
    params.gemmMode = GemmMode::TILE_SIM;
    const model::Op op = weightGemm(2048, 4096, 4096);
    hw::HardwareConfig a = hw::modeledA100();
    ASSERT_EQ(a.coreCount % 2, 0);
    hw::HardwareConfig b = a;
    b.coreCount = a.coreCount / 2;
    b.lanesPerCore = a.lanesPerCore * 2;
    const std::uint64_t fp = fingerprintGemmParams(params);
    EXPECT_EQ(makeGemmCacheKey(a, op, params, fp).arrays,
              makeGemmCacheKey(b, op, params, fp).arrays);
}

TEST(GemmCache, KeyDropsL2ForNonWeightStationaryOps)
{
    // L2 blocking only models weight-stationary GEMMs; for the rest
    // the key canonicalizes l2Bytes to zero so attention GEMMs share
    // entries across the whole l2Bytes sweep axis.
    PerfParams params;
    params.gemmMode = GemmMode::TILE_SIM;
    ASSERT_TRUE(params.modelL2Blocking);
    model::Op act = weightGemm(2048, 4096, 4096);
    act.mm.weightStationary = false;
    hw::HardwareConfig a = hw::modeledA100();
    hw::HardwareConfig b = a;
    b.l2Bytes = 2.0 * a.l2Bytes;
    const std::uint64_t fp = fingerprintGemmParams(params);
    EXPECT_EQ(makeGemmCacheKey(a, act, params, fp),
              makeGemmCacheKey(b, act, params, fp));

    // Weight-stationary ops DO key on L2 (blockedHbmTraffic reads it).
    const model::Op ws = weightGemm(2048, 4096, 4096);
    EXPECT_FALSE(makeGemmCacheKey(a, ws, params, fp) ==
                 makeGemmCacheKey(b, ws, params, fp));
}

TEST(GemmCache, ParamsFingerprintSeparatesTimingConstants)
{
    // One cache must never serve timings computed under different
    // model constants: the params fingerprint is part of the key.
    PerfParams a;
    a.gemmMode = GemmMode::TILE_SIM;
    PerfParams b = a;
    b.memEfficiency = a.memEfficiency * 0.5;
    PerfParams c = a;
    c.tileSimEngine = TileSimEngine::LEGACY_WALK;
    EXPECT_NE(fingerprintGemmParams(a), fingerprintGemmParams(b));
    // Engine choice is timing-invariant (proved bit-identical by
    // tests/test_gemm_property.cpp) but fingerprinted anyway so a
    // shared cache never mixes engines within one sweep.
    EXPECT_NE(fingerprintGemmParams(a), fingerprintGemmParams(c));

    const model::Op op = weightGemm(2048, 4096, 4096);
    const hw::HardwareConfig cfg = hw::modeledA100();
    EXPECT_FALSE(makeGemmCacheKey(cfg, op, a, fingerprintGemmParams(a)) ==
                 makeGemmCacheKey(cfg, op, b, fingerprintGemmParams(b)));
}

} // anonymous namespace
} // namespace perf
} // namespace acs
