/**
 * @file
 * Unit tests for the rendering workload descriptions and the
 * frame-time proxy (Sec. 5.4 substrate).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/units.hh"
#include "hw/presets.hh"
#include "model/graphics.hh"
#include "perf/graphics_model.hh"
#include "policy/arch_policy.hh"

namespace acs {
namespace {

using model::GraphicsWorkload;
using perf::FrameResult;
using perf::GraphicsModel;
using perf::GraphicsParams;

// ---- workloads --------------------------------------------------------------

TEST(GraphicsWorkload, PixelAndFragmentCounts)
{
    const GraphicsWorkload w = GraphicsWorkload::esports1080p();
    EXPECT_DOUBLE_EQ(w.pixels(), 1920.0 * 1080.0);
    EXPECT_DOUBLE_EQ(w.fragments(), w.pixels() * w.overdraw);
}

TEST(GraphicsWorkload, PresetsValidate)
{
    EXPECT_NO_THROW(GraphicsWorkload::aaa1440p().validate());
    EXPECT_NO_THROW(GraphicsWorkload::esports1080p().validate());
    EXPECT_NO_THROW(GraphicsWorkload::rayTraced4k().validate());
}

TEST(GraphicsWorkload, ValidationRejectsBadFields)
{
    GraphicsWorkload w = GraphicsWorkload::aaa1440p();
    w.width = 0;
    EXPECT_THROW(w.validate(), FatalError);
    w = GraphicsWorkload::aaa1440p();
    w.overdraw = 0.0;
    EXPECT_THROW(w.validate(), FatalError);
    w = GraphicsWorkload::aaa1440p();
    w.textureBytesPerFragment = -1.0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(GraphicsWorkload, PresetsOrderedByIntensity)
{
    // esports < AAA < ray-traced in per-frame shading work.
    const double e = GraphicsWorkload::esports1080p().fragments() *
                     GraphicsWorkload::esports1080p()
                         .shadeFlopsPerFragment;
    const double a = GraphicsWorkload::aaa1440p().fragments() *
                     GraphicsWorkload::aaa1440p().shadeFlopsPerFragment;
    const double r = GraphicsWorkload::rayTraced4k().fragments() *
                     GraphicsWorkload::rayTraced4k()
                         .shadeFlopsPerFragment;
    EXPECT_LT(e, a);
    EXPECT_LT(a, r);
}

// ---- frame-time model ---------------------------------------------------------

TEST(GraphicsModel, FrameTimeIsPositiveAndDecomposed)
{
    const GraphicsModel model(hw::modeledA100());
    const FrameResult r =
        model.frameTime(GraphicsWorkload::aaa1440p());
    EXPECT_GT(r.geometryS, 0.0);
    EXPECT_GT(r.shadeS, 0.0);
    EXPECT_GT(r.textureS, 0.0);
    EXPECT_GT(r.rasterS, 0.0);
    EXPECT_DOUBLE_EQ(r.upscaleS, 0.0);
    EXPECT_GT(r.frameS, 0.0);
    EXPECT_GT(r.fps(), 0.0);
}

TEST(GraphicsModel, A100ClassFpsIsPlausible)
{
    const GraphicsModel model(hw::modeledA100());
    const double fps =
        model.frameTime(GraphicsWorkload::aaa1440p()).fps();
    EXPECT_GT(fps, 60.0);
    EXPECT_LT(fps, 5000.0);
}

TEST(GraphicsModel, HbmBandwidthBarelyMattersForGaming)
{
    // The core Sec. 5.4 claim: texture traffic is latency-bound, so
    // halving HBM bandwidth costs only a few percent of FPS.
    hw::HardwareConfig fast = hw::modeledA100();
    hw::HardwareConfig slow = hw::modeledA100();
    slow.memBandwidth = 1.0 * units::TBPS;
    const GraphicsWorkload w = GraphicsWorkload::aaa1440p();
    const double f_fast = GraphicsModel(fast).frameTime(w).fps();
    const double f_slow = GraphicsModel(slow).frameTime(w).fps();
    EXPECT_GT(f_slow / f_fast, 0.90);
}

TEST(GraphicsModel, SystolicArraysDoNotAffectRasterFps)
{
    hw::HardwareConfig big = hw::modeledA100();
    hw::HardwareConfig small = hw::modeledA100();
    small.systolicDimX = 4;
    small.systolicDimY = 4;
    const GraphicsWorkload w = GraphicsWorkload::esports1080p();
    EXPECT_DOUBLE_EQ(GraphicsModel(big).frameTime(w).fps(),
                     GraphicsModel(small).frameTime(w).fps());
}

TEST(GraphicsModel, VectorThroughputDrivesFps)
{
    hw::HardwareConfig weak = hw::modeledA100();
    weak.vectorWidth = 8;
    const GraphicsWorkload w = GraphicsWorkload::aaa1440p();
    EXPECT_LT(GraphicsModel(weak).frameTime(w).fps(),
              GraphicsModel(hw::modeledA100()).frameTime(w).fps());
}

TEST(GraphicsModel, BiggerL2RaisesTextureHitRate)
{
    hw::HardwareConfig small = hw::modeledA100();
    small.l2Bytes = 8.0 * units::MIB;
    hw::HardwareConfig big = hw::modeledA100();
    big.l2Bytes = 64.0 * units::MIB;
    EXPECT_LT(GraphicsModel(small).textureHitRate(),
              GraphicsModel(big).textureHitRate());
    EXPECT_LE(GraphicsModel(big).textureHitRate(), 1.0);
}

TEST(GraphicsModel, TextureBandwidthIsLatencyCapped)
{
    const GraphicsParams params;
    const double cap =
        params.textureInflightBytes / params.memLatencyS;
    hw::HardwareConfig cfg = hw::modeledA100(); // 2 TB/s >> cap
    EXPECT_DOUBLE_EQ(GraphicsModel(cfg).textureBandwidth(), cap);
    cfg.memBandwidth = cap / 2.0; // slower than the concurrency limit
    EXPECT_DOUBLE_EQ(GraphicsModel(cfg).textureBandwidth(), cap / 2.0);
}

TEST(GraphicsModel, TensorUpscalerAddsTimeAndNeedsArrays)
{
    const GraphicsModel model(hw::modeledA100());
    const GraphicsWorkload w = GraphicsWorkload::aaa1440p();
    const FrameResult without = model.frameTime(w, false);
    const FrameResult with = model.frameTime(w, true);
    EXPECT_GT(with.upscaleS, 0.0);
    EXPECT_GT(with.frameS, without.frameS);
}

TEST(GraphicsModel, InvalidParamsAreFatal)
{
    GraphicsParams params;
    params.memLatencyS = 0.0;
    EXPECT_THROW(GraphicsModel(hw::modeledA100(), params), FatalError);
    params = GraphicsParams{};
    params.cacheHitBase = 0.9;
    params.cacheHitMax = 0.5;
    EXPECT_THROW(GraphicsModel(hw::modeledA100(), params), FatalError);
}

TEST(GraphicsModel, ZeroFrameTimeFpsPanics)
{
    FrameResult r;
    EXPECT_THROW(r.fps(), PanicError);
}

/**
 * Property (the Sec. 5.4 selectivity claim): across workloads, a
 * gaming-policy-compliant redesign keeps >= 90% of FPS.
 */
class PolicySelectivity
    : public ::testing::TestWithParam<GraphicsWorkload>
{};

TEST_P(PolicySelectivity, CompliantDesignRetainsFps)
{
    hw::HardwareConfig compliant = hw::modeledA100();
    compliant.systolicDimX = 8;
    compliant.systolicDimY = 8;
    compliant.memBandwidth = 1.0 * units::TBPS;
    ASSERT_TRUE(policy::ArchPolicy::gamingFocused()
                    .compliant(compliant));
    const double base = GraphicsModel(hw::modeledA100())
                            .frameTime(GetParam())
                            .fps();
    const double kept =
        GraphicsModel(compliant).frameTime(GetParam()).fps();
    EXPECT_GT(kept / base, 0.90);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PolicySelectivity,
    ::testing::Values(GraphicsWorkload::esports1080p(),
                      GraphicsWorkload::aaa1440p(),
                      GraphicsWorkload::rayTraced4k()),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // anonymous namespace
} // namespace acs
