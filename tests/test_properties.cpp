/**
 * @file
 * Broad property sweeps across the library: catalogue-wide classifier
 * totality, exhaustive rule quadrants, collective scaling, graphics
 * resolution scaling, and table/scatter rendering details.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/acs.hh"

namespace acs {
namespace {

// ---- catalogue-wide totality -------------------------------------------------

TEST(CatalogueProperties, EveryDeviceClassifiesUnderEveryRule)
{
    const devices::Database db;
    for (const auto &spec : db.allSpecs()) {
        ASSERT_NO_THROW(policy::Oct2022Rule::classify(spec))
            << spec.name;
        ASSERT_NO_THROW(policy::Oct2023Rule::classify(spec))
            << spec.name;
        ASSERT_NO_THROW(policy::analyzeMarketing(spec)) << spec.name;
        ASSERT_NO_THROW(policy::ArchDataCenterClassifier::analyze(spec))
            << spec.name;
        EXPECT_GE(spec.perfDensity(), 0.0) << spec.name;
    }
}

TEST(CatalogueProperties, Oct2023IsStricterThanOct2022)
{
    // Sec. 2.2: the Oct-2023 update only added coverage — every
    // device regulated in 2022 stays regulated in 2023 (in our
    // catalogue; the rule text permits exceptions only via the
    // dropped bandwidth clause, which none of these devices uses).
    const devices::Database db;
    for (const auto &spec : db.allSpecs()) {
        if (policy::isRegulated(policy::Oct2022Rule::classify(spec))) {
            EXPECT_TRUE(policy::isRegulated(
                policy::Oct2023Rule::classify(spec)))
                << spec.name;
        }
    }
}

TEST(CatalogueProperties, MarketingSegmentsPartitionTheCatalogue)
{
    const devices::Database db;
    const auto dc = db.bySegment(policy::MarketSegment::DATA_CENTER);
    const auto cons = db.bySegment(policy::MarketSegment::CONSUMER);
    const auto work = db.bySegment(policy::MarketSegment::WORKSTATION);
    EXPECT_EQ(dc.size() + cons.size() + work.size(), db.size());
}

// ---- exhaustive Oct-2022 quadrants ---------------------------------------------

struct Quadrant
{
    double tpp;
    double bw;
    bool regulated;
};

class Oct2022Quadrants : public ::testing::TestWithParam<Quadrant>
{};

TEST_P(Oct2022Quadrants, MatchesTruthTable)
{
    const auto [tpp, bw, regulated] = GetParam();
    policy::DeviceSpec spec;
    spec.tpp = tpp;
    spec.deviceBandwidthGBps = bw;
    spec.dieAreaMm2 = 800.0;
    EXPECT_EQ(policy::isRegulated(policy::Oct2022Rule::classify(spec)),
              regulated);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTable, Oct2022Quadrants,
    ::testing::Values(Quadrant{4800.0, 600.0, true},
                      Quadrant{4800.0, 599.9, false},
                      Quadrant{4799.9, 600.0, false},
                      Quadrant{4799.9, 599.9, false},
                      Quadrant{20000.0, 1000.0, true},
                      Quadrant{20000.0, 0.0, false},
                      Quadrant{0.1, 1000.0, false}));

// ---- allreduce scaling ------------------------------------------------------------

class AllreduceScaling : public ::testing::TestWithParam<int>
{};

TEST_P(AllreduceScaling, LatencyGrowsWithParticipants)
{
    const int tp = GetParam();
    const perf::CommModel comm(hw::modeledA100(), perf::PerfParams{});
    model::Op op;
    op.kind = model::OpKind::ALLREDUCE;
    op.commBytes = 100e6;
    const double t_now = comm.time(op, tp).totalS;
    const double t_more = comm.time(op, tp * 2).totalS;
    EXPECT_GT(t_more, t_now);
    // Ring volume approaches 2x payload asymptotically.
    const perf::PerfParams params;
    const double limit =
        2.0 * op.commBytes /
        (hw::modeledA100().deviceBandwidth() / 2.0 *
         params.interconnectEfficiency);
    EXPECT_LT(comm.time(op, tp).wireS, limit);
}

INSTANTIATE_TEST_SUITE_P(Tps, AllreduceScaling,
                         ::testing::Values(2, 3, 4, 6, 8, 16));

// ---- graphics resolution scaling -----------------------------------------------------

class ResolutionScaling
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(ResolutionScaling, FrameTimeGrowsWithPixels)
{
    const auto [w, h] = GetParam();
    model::GraphicsWorkload base =
        model::GraphicsWorkload::aaa1440p();
    model::GraphicsWorkload big = base;
    big.width = w;
    big.height = h;
    const perf::GraphicsModel model(hw::modeledA100());
    if (big.pixels() > base.pixels()) {
        EXPECT_GT(model.frameTime(big).frameS,
                  model.frameTime(base).frameS);
    } else {
        EXPECT_LE(model.frameTime(big).frameS,
                  model.frameTime(base).frameS);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Resolutions, ResolutionScaling,
    ::testing::Values(std::make_pair(1280, 720),
                      std::make_pair(1920, 1080),
                      std::make_pair(3840, 2160),
                      std::make_pair(7680, 4320)));

// ---- rendering details ---------------------------------------------------------------

TEST(Rendering, TableColumnsAlignToWidestCell)
{
    Table t({"a", "bb"});
    t.addRow({"xxxxx", "y"});
    std::ostringstream oss;
    t.print(oss);
    // Header row pads "a" to the 5-wide first column.
    const std::string first_line =
        oss.str().substr(0, oss.str().find('\n'));
    EXPECT_EQ(first_line, "a      bb");
}

TEST(Rendering, ScatterPlacesSinglePointAtCorners)
{
    // Two points spanning the range land on opposite grid corners.
    ScatterPlot p("corners", "x", "y", 16, 8);
    p.addSeries({"s", '#', {0.0, 1.0}, {0.0, 1.0}});
    std::ostringstream oss;
    p.print(oss);
    const std::string out = oss.str();
    // The high point renders on an earlier line than the low point.
    const auto first_hash = out.find('#');
    const auto last_hash = out.rfind('#');
    EXPECT_NE(first_hash, std::string::npos);
    EXPECT_NE(first_hash, last_hash);
}

TEST(Rendering, CsvRowCountMatchesTable)
{
    Table t({"h1", "h2"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream oss;
    t.printCsv(oss);
    int newlines = 0;
    for (char c : oss.str())
        newlines += c == '\n';
    EXPECT_EQ(newlines, 3); // header + 2 rows
}

// ---- cross-model consistency -----------------------------------------------------------

TEST(Consistency, EvaluatorAndSimulatorAgree)
{
    // DesignEvaluator must report exactly what InferenceSimulator
    // computes for the same workload.
    const core::Workload w = core::gpt3Workload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    const auto d = evaluator.evaluate(hw::modeledA100());
    const auto r = perf::InferenceSimulator(hw::modeledA100())
                       .run(w.model, w.setting, w.system);
    EXPECT_DOUBLE_EQ(d.ttftS, r.ttftS);
    EXPECT_DOUBLE_EQ(d.tbtS, r.tbtS);
}

TEST(Consistency, AreaModelAndEvaluatorAgree)
{
    const core::Workload w = core::llamaWorkload();
    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system);
    const auto d = evaluator.evaluate(hw::modeledA100());
    EXPECT_DOUBLE_EQ(d.dieAreaMm2,
                     area::AreaModel{}.dieArea(hw::modeledA100()));
    EXPECT_DOUBLE_EQ(
        d.dieCostUsd,
        area::CostModel{}.dieCostUsd(d.dieAreaMm2,
                                     hw::ProcessNode::N7));
}

TEST(Consistency, TppInvariantUnderLaneCoreExchange)
{
    // Halving lanes while doubling cores preserves TPP exactly.
    hw::HardwareConfig a = hw::modeledA100(); // 108 cores x 4 lanes
    hw::HardwareConfig b = a;
    b.lanesPerCore = 2;
    b.coreCount = 216;
    EXPECT_DOUBLE_EQ(a.tpp(), b.tpp());
    EXPECT_EQ(a.totalSystolicFpus(), b.totalSystolicFpus());
}

} // anonymous namespace
} // namespace acs
