/**
 * @file
 * Bit-identity pinning of the SoA batch kernels (perf/batch_eval.hh)
 * against the scalar op models: every lane of a batched evaluation
 * must reproduce the scalar MatmulModel/VectorModel/CommModel result
 * exactly (EXPECT_DOUBLE_EQ) across the fig06 design space and the
 * real op shapes of the paper's workloads, under every ANALYTIC-mode
 * params variation. TILE_SIM does not support batching; the sweep
 * drivers must keep producing identical results there too (scalar
 * fallback), which the end-to-end A/B test covers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "core/study.hh"
#include "dse/evaluate.hh"
#include "dse/sweep.hh"
#include "perf/batch_eval.hh"
#include "perf/comm_model.hh"
#include "perf/matmul_model.hh"
#include "perf/vector_model.hh"

namespace acs {
namespace perf {
namespace {

/** The fig06 space (Table 3 at TPP 4800, one device bandwidth). */
dse::SweepSpace
fig06Space()
{
    return dse::table3Space(4800.0, {600.0 * units::GBPS});
}

/** Per-op scalar-vs-batch comparison over every fig06 design. */
void
expectBatchMatchesScalar(const core::Workload &w, const PerfParams &params)
{
    const dse::SweepSpace space = fig06Space();
    const std::vector<hw::HardwareConfig> cfgs = space.generate();
    ASSERT_FALSE(cfgs.empty());

    DesignBatch batch;
    batch.reserve(cfgs.size());
    for (const hw::HardwareConfig &cfg : cfgs)
        batch.push(cfg);

    const dse::DesignEvaluator evaluator(w.model, w.setting, w.system,
                                         params);
    std::vector<double> out(cfgs.size());
    for (const model::LayerGraph *graph :
         {&evaluator.prefillGraph(), &evaluator.decodeGraph()}) {
        for (const model::Op &op : graph->ops) {
            switch (op.kind) {
              case model::OpKind::MATMUL:
                batchMatmulTotalS(batch, op, params, out.data());
                for (std::size_t i = 0; i < cfgs.size(); ++i) {
                    const MatmulModel scalar(cfgs[i], params);
                    EXPECT_DOUBLE_EQ(out[i], scalar.time(op).totalS)
                        << op.name << " design " << i;
                }
                break;
              case model::OpKind::VECTOR:
                batchVectorTotalS(batch, op, params, out.data());
                for (std::size_t i = 0; i < cfgs.size(); ++i) {
                    const VectorModel scalar(cfgs[i], params);
                    EXPECT_DOUBLE_EQ(out[i], scalar.time(op).totalS)
                        << op.name << " design " << i;
                }
                break;
              case model::OpKind::ALLREDUCE:
                batchAllreduceTotalS(batch, op,
                                     w.system.tensorParallel, params,
                                     out.data());
                for (std::size_t i = 0; i < cfgs.size(); ++i) {
                    const CommModel scalar(cfgs[i], params);
                    EXPECT_DOUBLE_EQ(
                        out[i],
                        scalar.time(op, w.system.tensorParallel).totalS)
                        << op.name << " design " << i;
                }
                break;
            }
        }
    }
}

TEST(BatchEval, MatchesScalarModelsDefaultParams)
{
    expectBatchMatchesScalar(core::gpt3Workload(), PerfParams{});
}

TEST(BatchEval, MatchesScalarModelsSingleDevice)
{
    // TP=1: the allreduce kernel's degenerate zero-fill path.
    expectBatchMatchesScalar(core::llamaWorkload(), PerfParams{});
    core::Workload w = core::llamaWorkload();
    w.system.tensorParallel = 1;
    expectBatchMatchesScalar(w, PerfParams{});
}

TEST(BatchEval, MatchesScalarModelsAblations)
{
    // Every modeling switch the ANALYTIC kernels branch on.
    PerfParams p;
    p.modelTiling = false;
    expectBatchMatchesScalar(core::gpt3Workload(), p);

    p = PerfParams{};
    p.modelL2Blocking = false;
    expectBatchMatchesScalar(core::gpt3Workload(), p);

    p = PerfParams{};
    p.modelPipelineFill = false;
    expectBatchMatchesScalar(core::gpt3Workload(), p);

    p = PerfParams{};
    p.modelMultiPassVector = true;
    expectBatchMatchesScalar(core::gpt3Workload(), p);
}

/** End-to-end A/B: the streaming sweep with the batch path on vs off
 *  must produce bit-identical argmins and tallies — for ANALYTIC mode
 *  (batched vs scalar) and TILE_SIM (where the batch switch must be a
 *  no-op and the scalar/cache pipeline runs either way). */
void
expectStreamABIdentical(PerfParams params)
{
    const core::Workload w = core::gpt3Workload();
    const dse::SweepSpace space = fig06Space();

    params.batchAnalyticEval = true;
    const dse::DesignEvaluator on(w.model, w.setting, w.system, params);
    const dse::StreamStats a = on.evaluateStream(space);

    params.batchAnalyticEval = false;
    const dse::DesignEvaluator off(w.model, w.setting, w.system, params);
    const dse::StreamStats b = off.evaluateStream(space);

    ASSERT_TRUE(a.bestTtft && b.bestTtft && a.bestTbt && b.bestTbt);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.underReticle, b.underReticle);
    EXPECT_EQ(a.oct2023Unregulated, b.oct2023Unregulated);
    EXPECT_EQ(a.bestTtftIndex, b.bestTtftIndex);
    EXPECT_EQ(a.bestTbtIndex, b.bestTbtIndex);
    EXPECT_EQ(a.bestTtft->ttftS, b.bestTtft->ttftS);
    EXPECT_EQ(a.bestTtft->tbtS, b.bestTtft->tbtS);
    EXPECT_EQ(a.bestTbt->ttftS, b.bestTbt->ttftS);
    EXPECT_EQ(a.bestTbt->tbtS, b.bestTbt->tbtS);
    EXPECT_EQ(a.bestTtft->config.name, b.bestTtft->config.name);
    EXPECT_EQ(a.bestTbt->config.name, b.bestTbt->config.name);
}

TEST(BatchEval, StreamBatchToggleBitIdenticalAnalytic)
{
    expectStreamABIdentical(PerfParams{});
}

TEST(BatchEval, StreamBatchToggleBitIdenticalTileSim)
{
    PerfParams p;
    p.gemmMode = GemmMode::TILE_SIM;
    expectStreamABIdentical(p);
}

} // namespace
} // namespace perf
} // namespace acs
