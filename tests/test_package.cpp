/**
 * @file
 * Unit tests for the multi-chip-module packaging cost model
 * (Sec. 2.3) and the derived throughput metrics (Sec. 3.1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "area/package_model.hh"
#include "common/logging.hh"
#include "hw/presets.hh"
#include "model/transformer.hh"
#include "perf/simulator.hh"

namespace acs {
namespace {

using area::PackageCost;
using area::PackageCostModel;
using area::PackageParams;

// ---- packaging cost ---------------------------------------------------------

TEST(PackageModel, SingleDieCostBreakdown)
{
    const PackageCostModel model;
    const PackageCost c =
        model.packagedDeviceCost(1, 500.0, hw::ProcessNode::N7);
    EXPECT_GT(c.siliconUsd, 0.0);
    EXPECT_GT(c.substrateUsd, 0.0);
    EXPECT_GT(c.assemblyUsd, 0.0);
    EXPECT_NEAR(c.assemblyYield, 0.99, 1e-12);
    EXPECT_NEAR(c.totalUsd,
                (c.siliconUsd + c.substrateUsd + c.assemblyUsd) /
                    c.assemblyYield,
                1e-9);
}

TEST(PackageModel, SiliconUsesKnownGoodDieCost)
{
    const PackageCostModel model;
    const PackageCost c =
        model.packagedDeviceCost(4, 200.0, hw::ProcessNode::N7);
    EXPECT_NEAR(c.siliconUsd,
                4.0 * model.dieCostModel().goodDieCostUsd(
                          200.0, hw::ProcessNode::N7),
                1e-9);
}

TEST(PackageModel, ChipletsImproveSiliconYieldEconomics)
{
    // Same total silicon as a reticle-size monolith, split four ways:
    // the silicon component must be cheaper (better yield).
    const PackageCostModel model;
    const double total = 840.0;
    const PackageCost mono =
        model.packagedDeviceCost(1, total, hw::ProcessNode::N7);
    const PackageCost quad =
        model.packagedDeviceCost(4, total / 4.0, hw::ProcessNode::N7);
    EXPECT_LT(quad.siliconUsd, mono.siliconUsd);
}

TEST(PackageModel, AssemblyYieldCompounds)
{
    const PackageCostModel model;
    const PackageCost c8 =
        model.packagedDeviceCost(8, 100.0, hw::ProcessNode::N7);
    EXPECT_NEAR(c8.assemblyYield, std::pow(0.99, 8), 1e-12);
}

TEST(PackageModel, Validation)
{
    const PackageCostModel model;
    EXPECT_THROW(
        model.packagedDeviceCost(0, 100.0, hw::ProcessNode::N7),
        FatalError);
    EXPECT_THROW(
        model.packagedDeviceCost(1, 0.0, hw::ProcessNode::N7),
        FatalError);

    PackageParams bad;
    bad.assemblyYieldPerDie = 0.0;
    EXPECT_THROW(PackageCostModel(area::CostModel{}, bad), FatalError);
    bad = PackageParams{};
    bad.substrateAreaFactor = 0.5;
    EXPECT_THROW(PackageCostModel(area::CostModel{}, bad), FatalError);
}

TEST(PackageModel, BestChipletCountSkipsOverReticleSplits)
{
    const PackageCostModel model;
    // 3000 mm^2 cannot be one or two dies (> 860 mm^2 each).
    const int best =
        model.bestChipletCount(3000.0, hw::ProcessNode::N7, 1, 16);
    EXPECT_GE(best, 4);
    EXPECT_THROW(
        model.bestChipletCount(30000.0, hw::ProcessNode::N7, 1, 4),
        FatalError);
    EXPECT_THROW(
        model.bestChipletCount(0.0, hw::ProcessNode::N7),
        FatalError);
    EXPECT_THROW(
        model.bestChipletCount(3000.0, hw::ProcessNode::N7, 4, 2),
        FatalError);
}

TEST(PackageModel, BestChipletCountBalancesYieldVsAssembly)
{
    // The optimum is interior: neither the minimum feasible split nor
    // the maximum allowed (assembly costs eventually dominate).
    const PackageCostModel model;
    const int best =
        model.bestChipletCount(3000.0, hw::ProcessNode::N7, 4, 64);
    EXPECT_GE(best, 4);
    EXPECT_LT(best, 64);
}

/** Property: packaged cost is monotone in die count at fixed total. */
class SplitMonotone : public ::testing::TestWithParam<int>
{};

TEST_P(SplitMonotone, CostIsFiniteAndPositive)
{
    const PackageCostModel model;
    const int dies = GetParam();
    const PackageCost c = model.packagedDeviceCost(
        dies, 3000.0 / dies, hw::ProcessNode::N7);
    EXPECT_GT(c.totalUsd, 0.0);
    EXPECT_LT(c.totalUsd, 1e6);
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitMonotone,
                         ::testing::Values(4, 5, 6, 8, 10, 12, 16));

// ---- derived throughput metrics (Sec. 3.1) ----------------------------------------

TEST(ThroughputMetrics, DerivedFromTtftAndTbt)
{
    const perf::InferenceSimulator sim(hw::modeledA100());
    const model::InferenceSetting setting;
    const auto r =
        sim.run(model::llama3_8b(), setting, perf::SystemConfig{4});
    EXPECT_EQ(r.numLayers, 32);
    EXPECT_EQ(r.batch, 32);
    EXPECT_EQ(r.outputLen, 1024);
    EXPECT_NEAR(r.endToEndLatencyS(),
                r.ttftFullModelS + 1024.0 * r.tbtFullModelS, 1e-9);
    EXPECT_NEAR(r.decodeThroughputTokensPerS(),
                32.0 / r.tbtFullModelS, 1e-6);
    EXPECT_NEAR(r.throughputTokensPerS(),
                32.0 * 1024.0 / r.endToEndLatencyS(), 1e-6);
}

TEST(ThroughputMetrics, ThroughputBelowDecodeThroughput)
{
    // Prefill time makes end-to-end throughput strictly lower than
    // steady-state decode throughput.
    const perf::InferenceSimulator sim(hw::modeledA100());
    const auto r = sim.run(model::gpt3_175b(),
                           model::InferenceSetting{},
                           perf::SystemConfig{4});
    EXPECT_LT(r.throughputTokensPerS(),
              r.decodeThroughputTokensPerS());
}

} // anonymous namespace
} // namespace acs
